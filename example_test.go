package xpgraph_test

import (
	"fmt"
	"sort"

	xpgraph "repro"
)

// The canonical session: open a store on the simulated two-socket Optane
// machine, apply updates, and read the merged neighbor view.
func Example() {
	machine := xpgraph.NewDefaultMachine()
	g, err := xpgraph.Open(machine, xpgraph.Options{Name: "example", NumVertices: 8})
	if err != nil {
		panic(err)
	}
	g.AddEdge(1, 2)
	g.AddEdges([]xpgraph.Edge{{Src: 1, Dst: 3}, {Src: 2, Dst: 1}})
	g.DelEdge(1, 3)

	ctx := xpgraph.NewQueryCtx(0)
	nbrs := g.NbrsOut(ctx, 1, nil)
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	fmt.Println(nbrs)
	// Output: [2]
}

// Crash recovery: the heap (simulated PMEM) survives; every DRAM
// structure is rebuilt by Recover.
func ExampleRecover() {
	machine := xpgraph.NewDefaultMachine()
	heap := xpgraph.NewHeap(machine)
	opts := xpgraph.Options{Name: "recover-example", NumVertices: 8}

	g, err := xpgraph.New(machine, heap, nil, opts)
	if err != nil {
		panic(err)
	}
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g = nil // crash: the Store and all DRAM state are gone

	recovered, _, err := xpgraph.Recover(machine, heap, nil, opts)
	if err != nil {
		panic(err)
	}
	ctx := xpgraph.NewQueryCtx(0)
	nbrs := recovered.NbrsOut(ctx, 1, nil)
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	fmt.Println(nbrs)
	// Output: [2 3]
}

// Snapshots give a stable view while ingestion continues.
func ExampleStore_Snapshot() {
	machine := xpgraph.NewDefaultMachine()
	g, err := xpgraph.Open(machine, xpgraph.Options{Name: "snap-example", NumVertices: 8})
	if err != nil {
		panic(err)
	}
	g.AddEdge(1, 2)

	ctx := xpgraph.NewQueryCtx(0)
	snap := g.Snapshot(ctx)
	g.AddEdge(1, 3) // arrives after the snapshot

	old := snap.NbrsOut(ctx, 1, nil)
	live := g.NbrsOut(ctx, 1, nil)
	fmt.Println(len(old), len(live))
	// Output: 1 2
}
