// Command xpgraphd runs an XPGraph store as an HTTP graph service on the
// simulated Optane machine — the application-server deployment a
// downstream adopter would build on the library.
//
//	xpgraphd -addr :7611 -vertices 1048576
//
//	curl -X POST localhost:7611/v1/edges -d '{"edges":[{"src":1,"dst":2}]}'
//	curl localhost:7611/v1/vertices/1/out
//	curl -X POST localhost:7611/v1/query/bfs -d '{"root":1}'
//	curl localhost:7611/v1/stats
//	curl localhost:7611/v1/metrics
//
// Bulk loaders should prefer the binary batch endpoint (the wire format
// is in DESIGN.md §10.1; ingest.EncodeBatch produces it):
//
//	curl -X POST localhost:7611/v1/ingest/bin \
//	     -H 'Content-Type: application/x-xpgraph-batch' \
//	     --data-binary @edges.xpb
//
// Writes are batched through a bounded ingest queue and reads serve from
// the latest published snapshot (see package server). Only /v1 routes are
// served: the pre-/v1 unversioned aliases were removed and answer 404
// with a Link header pointing at the successor. With -varint-adj new
// adjacency blocks use the delta-varint encoding (more edges per 256 B
// XPLine; see DESIGN.md §10.2).
//
// With -shards N the daemon runs the partitioned cluster layer
// (DESIGN.md §11): vertices hash-partition across N shard stores, each
// on its own simulated machine, and -replicas M adds M log-shipping read
// replicas per shard (again one machine each) that serve a partition's
// reads if its leader dies. Responses carry the epoch vector (one epoch
// per shard; length 1 on a single-shard deployment):
//
//	xpgraphd -shards 4 -replicas 1 -preload TT
//
// The leader→replica shipping path is a fallible RPC (DESIGN.md §14):
// -chaos arms seeded fault injection on every shipping link so operators
// can watch the retry/dedupe/resync machinery work under /v1/metrics and
// /v1/healthz (replica_states):
//
//	xpgraphd -shards 2 -replicas 1 -chaos "seed=7,drop=0.05,dup=0.02,delay=0.1:2ms"
//
// Optionally pre-loads a catalog dataset (-preload FS -scale 0.1) so the
// service starts with a realistic graph.
//
// The property graph layer (DESIGN.md §13) is on by default: register
// edge labels via POST /v1/labels, ingest typed batches over the binary
// endpoint (frame ops 0x04/0x05), and run filtered traversals
// (POST /v1/query/khop with types/filter, POST /v1/query/path). Disable
// with -props=false; -prop-log-mb sizes the per-shard column log.
//
// With -media-guard the store runs checksummed adjacency blocks and log
// records, a scrubber (-scrub-every, or POST /v1/scrub), and degraded-mode
// serving: GET /v1/healthz reports the ok/degraded/readonly health state
// and reads of media-damaged data answer 503 instead of wrong edges. An
// optional -archive-ssd-mb SSD archive gives the scrubber a complete
// rebuild source. See DESIGN.md §9.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting
// new work, drains the ingest queue (every accepted edge is applied), runs
// a final vertex-buffer flush so the graph is durable in PMEM adjacency
// lists, writes the -trace file if one was requested, and exits 0. The
// drain is bounded by -shutdown-timeout: if the deadline fires first the
// daemon logs it and exits 1 with the remaining queued writes unapplied.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/xpsim"
)

func main() {
	addr := flag.String("addr", ":7611", "listen address")
	vertices := flag.Uint("vertices", 1<<20, "initial vertex-ID space")
	shards := flag.Int("shards", 1, "partition count: vertices hash across this many shard stores, each on its own simulated machine (DESIGN.md §11)")
	replicas := flag.Int("replicas", 0, "log-shipping read replicas per shard, each on its own simulated machine")
	pmemGB := flag.Int64("pmem-gb", 4, "simulated PMEM per NUMA node (GiB)")
	threads := flag.Int("threads", 16, "archive threads")
	qthreads := flag.Int("qthreads", 32, "query threads")
	queueCap := flag.Int("queue-cap", 1<<16, "ingest queue capacity (edges)")
	batchEdges := flag.Int("batch-edges", 4096, "edges applied per ingest batch")
	linger := flag.Duration("linger", 2*time.Millisecond, "batching linger time")
	adaptive := flag.Bool("adaptive", false, "AIMD adaptive admission: auto-tune batch size, linger and the 429 threshold from observed queue depth and batch latency (DESIGN.md §12.3)")
	adaptiveTarget := flag.Duration("adaptive-target", 0, "applied-batch latency target for -adaptive (default 2ms)")
	flushEvery := flag.Duration("flush-every", 5*time.Second, "periodic vertex-buffer flush (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline; requests past it answer 503 deadline_exceeded (0 disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "bound on graceful shutdown: HTTP drain plus ingest-queue drain share this budget (0 waits forever)")
	mediaGuard := flag.Bool("media-guard", false, "checksummed media-error detection, scrubbing, and quarantine (see DESIGN.md §9)")
	varintAdj := flag.Bool("varint-adj", false, "delta-varint compressed adjacency blocks (see DESIGN.md §10.2)")
	props := flag.Bool("props", true, "property graph layer: typed edges, vertex properties, filtered traversals (DESIGN.md §13)")
	propLogMB := flag.Int64("prop-log-mb", 16, "property column log per shard, in MiB (requires -props)")
	archiveSSDMB := flag.Int64("archive-ssd-mb", 0, "SSD edge archive for scrub rebuilds, in MiB (requires -media-guard)")
	scrubEvery := flag.Duration("scrub-every", 0, "periodic media scrub pass (requires -media-guard; 0 disables)")
	ueDecay := flag.Float64("ue-decay", 0, "per-read probability a media line decays uncorrectable — demo/chaos knob (requires -media-guard)")
	chaosSpec := flag.String("chaos", "", `seeded fault injection on the leader→replica shipping links, e.g. "seed=7,drop=0.05,dup=0.02,delay=0.1:2ms,part=2x40@400" (requires -replicas; DESIGN.md §14.4)`)
	preload := flag.String("preload", "", "catalog dataset to pre-load (TT, FS, ...)")
	scale := flag.Float64("scale", 0.1, "pre-load edge scale")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the phase timeline on shutdown")
	flag.Parse()

	if *ueDecay > 0 && !*mediaGuard {
		log.Fatal("xpgraphd: -ue-decay requires -media-guard")
	}
	if *shards < 1 {
		log.Fatal("xpgraphd: -shards must be >= 1")
	}
	// Every shard leader and every replica is its own simulated machine —
	// its own failure domain, DIMMs and telemetry.
	newNode := func(name string) (*core.Store, error) {
		m := xpsim.NewMachine(2, *pmemGB<<30, xpsim.DefaultLatency())
		if *mediaGuard {
			// Arm the fault model so operators can exercise UE injection and
			// the health endpoint reports live UE-line counts.
			faults := m.TrackFaults()
			if *ueDecay > 0 {
				faults.SetDecay(*ueDecay, 0x5EED_DECA)
			}
		}
		return core.New(m, pmem.NewHeap(m), nil, core.Options{
			Name:            name,
			NumVertices:     uint32(*vertices),
			ArchiveThreads:  *threads,
			NUMA:            core.NUMASubgraph,
			AdjBytes:        (*pmemGB << 30) / 4,
			MediaGuard:      *mediaGuard,
			CompressedAdj:   *varintAdj,
			ArchiveSSDBytes: *archiveSSDMB << 20,
			Props:           *props,
			PropLogBytes:    *propLogMB << 20,
		})
	}

	stores := make([]*core.Store, *shards)
	for i := range stores {
		var err error
		stores[i], err = newNode(fmt.Sprintf("xpgraphd-s%d", i))
		if err != nil {
			log.Fatal(err)
		}
	}
	ccfg := cluster.Config{
		Replicas:       *replicas,
		QueueCap:       *queueCap,
		BatchEdges:     *batchEdges,
		Linger:         *linger,
		FlushEvery:     *flushEvery,
		ScrubEvery:     *scrubEvery,
		Adaptive:       *adaptive,
		AdaptiveTarget: *adaptiveTarget,
	}
	if *replicas > 0 {
		ccfg.ReplicaFactory = func(shardID, replica int) (*core.Store, error) {
			return newNode(fmt.Sprintf("xpgraphd-s%d-r%d", shardID, replica))
		}
	}
	if *chaosSpec != "" {
		if *replicas < 1 {
			log.Fatal("xpgraphd: -chaos requires -replicas (it injects faults on the shipping links)")
		}
		plan, parts, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		var links []chaos.Link
		for s := 0; s < *shards; s++ {
			for r := 0; r < *replicas; r++ {
				links = append(links, chaos.Link{Shard: s, Replica: r})
			}
		}
		parts.Finish(plan, links)
		ccfg.Transport = cluster.NewChaosTransport(plan)
		fmt.Fprintf(os.Stderr, "xpgraphd: chaos armed on %d shipping link(s): %s\n", len(links), *chaosSpec)
	}
	cl, err := cluster.New(stores, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	// Start before pre-loading so the followers exist and the bulk load
	// ships to them too (Start is idempotent; the server calls it again).
	if err := cl.Start(); err != nil {
		log.Fatal(err)
	}

	if *preload != "" {
		ds, err := gen.ByName(*preload)
		if err != nil {
			log.Fatal(err)
		}
		n := int64(float64(ds.Edges) * *scale)
		fmt.Fprintf(os.Stderr, "pre-loading %d edges of %s across %d shard(s)...\n", n, ds.Full, *shards)
		simNs, err := cl.IngestLocal(gen.RMAT(ds.Scale, n, ds.Seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded in %.3fs simulated\n", float64(simNs)/1e9)
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(1 << 16)
	}
	srv := server.NewCluster(cl, server.Config{
		QueryThreads:   *qthreads,
		QueueCap:       *queueCap,
		BatchEdges:     *batchEdges,
		Linger:         *linger,
		FlushEvery:     *flushEvery,
		Tracer:         tracer,
		RequestTimeout: *requestTimeout,
		ScrubEvery:     *scrubEvery,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errC := make(chan error, 1)
	go func() { errC <- httpSrv.ListenAndServe() }()

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGINT, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "xpgraphd listening on %s\n", *addr)

	select {
	case err := <-errC:
		srv.Close()
		log.Fatal(err)
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "xpgraphd: %s — draining...\n", sig)
	}

	// The HTTP drain and the ingest-queue drain share one shutdown budget
	// so a wedged drain cannot hold the process hostage forever.
	var deadline <-chan struct{}
	ctx := context.Background()
	if *shutdownTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *shutdownTimeout)
		defer cancel()
		deadline = ctx.Done()
	}

	// Stop accepting connections, let in-flight requests finish.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "xpgraphd: http shutdown: %v\n", err)
	}
	// Apply every queued write and flush vertex buffers to PMEM — but
	// give up when the shutdown deadline fires rather than drain forever.
	drained := make(chan struct{})
	go func() { srv.Shutdown(); close(drained) }()
	select {
	case <-drained:
	case <-deadline:
		fmt.Fprintf(os.Stderr,
			"xpgraphd: shutdown deadline (%v) fired before the ingest drain finished; exiting with queued writes unapplied\n",
			*shutdownTimeout)
		os.Exit(1)
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath, srv.Tracer()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "xpgraphd: drained and flushed; bye")
}

// writeTrace dumps the tracer ring as Chrome trace-event JSON.
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	spans := t.Snapshot()
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xpgraphd: wrote %d phase spans to %s\n", len(spans), path)
	return nil
}
