// Command xpgraphd runs an XPGraph store as an HTTP graph service on the
// simulated Optane machine — the application-server deployment a
// downstream adopter would build on the library.
//
//	xpgraphd -addr :7611 -vertices 1048576
//
//	curl -X POST localhost:7611/v1/edges -d '{"edges":[{"src":1,"dst":2}]}'
//	curl localhost:7611/v1/vertices/1/out
//	curl -X POST localhost:7611/v1/query/bfs -d '{"root":1}'
//	curl localhost:7611/v1/stats
//	curl localhost:7611/v1/metrics
//
// Writes are batched through a bounded ingest queue and reads serve from
// the latest published snapshot (see package server). The unversioned
// routes still work but are deprecated.
//
// Optionally pre-loads a catalog dataset (-preload FS -scale 0.1) so the
// service starts with a realistic graph.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/xpsim"
)

func main() {
	addr := flag.String("addr", ":7611", "listen address")
	vertices := flag.Uint("vertices", 1<<20, "initial vertex-ID space")
	pmemGB := flag.Int64("pmem-gb", 4, "simulated PMEM per NUMA node (GiB)")
	threads := flag.Int("threads", 16, "archive threads")
	qthreads := flag.Int("qthreads", 32, "query threads")
	queueCap := flag.Int("queue-cap", 1<<16, "ingest queue capacity (edges)")
	batchEdges := flag.Int("batch-edges", 4096, "edges applied per ingest batch")
	linger := flag.Duration("linger", 2*time.Millisecond, "batching linger time")
	flushEvery := flag.Duration("flush-every", 5*time.Second, "periodic vertex-buffer flush (0 disables)")
	preload := flag.String("preload", "", "catalog dataset to pre-load (TT, FS, ...)")
	scale := flag.Float64("scale", 0.1, "pre-load edge scale")
	flag.Parse()

	machine := xpsim.NewMachine(2, *pmemGB<<30, xpsim.DefaultLatency())
	store, err := core.New(machine, pmem.NewHeap(machine), nil, core.Options{
		Name:           "xpgraphd",
		NumVertices:    uint32(*vertices),
		ArchiveThreads: *threads,
		NUMA:           core.NUMASubgraph,
		AdjBytes:       (*pmemGB << 30) / 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *preload != "" {
		ds, err := gen.ByName(*preload)
		if err != nil {
			log.Fatal(err)
		}
		n := int64(float64(ds.Edges) * *scale)
		fmt.Fprintf(os.Stderr, "pre-loading %d edges of %s...\n", n, ds.Full)
		rep, err := store.Ingest(gen.RMAT(ds.Scale, n, ds.Seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded in %.3fs simulated\n", float64(rep.TotalNs())/1e9)
	}

	srv := server.New(store, machine, server.Config{
		QueryThreads: *qthreads,
		QueueCap:     *queueCap,
		BatchEdges:   *batchEdges,
		Linger:       *linger,
		FlushEvery:   *flushEvery,
	})
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "xpgraphd listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
