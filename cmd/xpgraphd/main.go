// Command xpgraphd runs an XPGraph store as an HTTP graph service on the
// simulated Optane machine — the application-server deployment a
// downstream adopter would build on the library.
//
//	xpgraphd -addr :7611 -vertices 1048576
//
//	curl -X POST localhost:7611/v1/edges -d '{"edges":[{"src":1,"dst":2}]}'
//	curl localhost:7611/v1/vertices/1/out
//	curl -X POST localhost:7611/v1/query/bfs -d '{"root":1}'
//	curl localhost:7611/v1/stats
//	curl localhost:7611/v1/metrics
//
// Writes are batched through a bounded ingest queue and reads serve from
// the latest published snapshot (see package server). The unversioned
// routes still work but are deprecated.
//
// Optionally pre-loads a catalog dataset (-preload FS -scale 0.1) so the
// service starts with a realistic graph.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting
// new work, drains the ingest queue (every accepted edge is applied), runs
// a final vertex-buffer flush so the graph is durable in PMEM adjacency
// lists, writes the -trace file if one was requested, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/xpsim"
)

func main() {
	addr := flag.String("addr", ":7611", "listen address")
	vertices := flag.Uint("vertices", 1<<20, "initial vertex-ID space")
	pmemGB := flag.Int64("pmem-gb", 4, "simulated PMEM per NUMA node (GiB)")
	threads := flag.Int("threads", 16, "archive threads")
	qthreads := flag.Int("qthreads", 32, "query threads")
	queueCap := flag.Int("queue-cap", 1<<16, "ingest queue capacity (edges)")
	batchEdges := flag.Int("batch-edges", 4096, "edges applied per ingest batch")
	linger := flag.Duration("linger", 2*time.Millisecond, "batching linger time")
	flushEvery := flag.Duration("flush-every", 5*time.Second, "periodic vertex-buffer flush (0 disables)")
	preload := flag.String("preload", "", "catalog dataset to pre-load (TT, FS, ...)")
	scale := flag.Float64("scale", 0.1, "pre-load edge scale")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the phase timeline on shutdown")
	flag.Parse()

	machine := xpsim.NewMachine(2, *pmemGB<<30, xpsim.DefaultLatency())
	store, err := core.New(machine, pmem.NewHeap(machine), nil, core.Options{
		Name:           "xpgraphd",
		NumVertices:    uint32(*vertices),
		ArchiveThreads: *threads,
		NUMA:           core.NUMASubgraph,
		AdjBytes:       (*pmemGB << 30) / 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *preload != "" {
		ds, err := gen.ByName(*preload)
		if err != nil {
			log.Fatal(err)
		}
		n := int64(float64(ds.Edges) * *scale)
		fmt.Fprintf(os.Stderr, "pre-loading %d edges of %s...\n", n, ds.Full)
		rep, err := store.Ingest(gen.RMAT(ds.Scale, n, ds.Seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded in %.3fs simulated\n", float64(rep.TotalNs())/1e9)
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(1 << 16)
	}
	srv := server.New(store, machine, server.Config{
		QueryThreads: *qthreads,
		QueueCap:     *queueCap,
		BatchEdges:   *batchEdges,
		Linger:       *linger,
		FlushEvery:   *flushEvery,
		Tracer:       tracer,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errC := make(chan error, 1)
	go func() { errC <- httpSrv.ListenAndServe() }()

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGINT, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "xpgraphd listening on %s\n", *addr)

	select {
	case err := <-errC:
		srv.Close()
		log.Fatal(err)
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "xpgraphd: %s — draining...\n", sig)
	}

	// Stop accepting connections, let in-flight requests finish.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "xpgraphd: http shutdown: %v\n", err)
	}
	// Apply every queued write and flush vertex buffers to PMEM.
	srv.Shutdown()

	if *tracePath != "" {
		if err := writeTrace(*tracePath, srv.Tracer()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "xpgraphd: drained and flushed; bye")
}

// writeTrace dumps the tracer ring as Chrome trace-event JSON.
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	spans := t.Snapshot()
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xpgraphd: wrote %d phase spans to %s\n", len(spans), path)
	return nil
}
