// Command xpgraph drives the XPGraph reproduction: it generates workloads,
// ingests and queries graphs on the simulated Optane machine, exercises
// crash recovery, and regenerates every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	xpgraph bench   -exp fig11 [-scale 1] [-datasets TT,FS] [-threads 16]
//	xpgraph bench   -exp all   # every experiment, printed in order
//	xpgraph ingest  -dataset FS [-scale 0.25] [-system xpgraph|xpgraph-b|graphone-p|graphone-n|graphone-d]
//	xpgraph query   -dataset FS [-scale 0.25] [-algo bfs|pagerank|cc|onehop]
//	xpgraph recover -dataset FS [-scale 0.25]
//	xpgraph gen     -dataset FS -out fs.bin [-scale 1]
//	xpgraph list    # datasets and experiments
//
// `xpgraph bench -exp wire -json BENCH_6.json` writes the experiment's
// machine-readable report, and `xpgraph benchgate -new BENCH_6.json
// [-baseline old.json]` enforces the PR-6 acceptance gates on it (binary
// ingest ≥2× JSON decode throughput; varint adjacency ≥1.5× the fixed
// layout's edges per 256 B XPLine; no regression vs the committed
// baseline). Likewise `bench -exp cluster -json BENCH_7.json` +
// `benchgate` gate the PR-7 multi-shard scaling claim (4-shard ingest
// ≥2× a single shard); benchgate dispatches on the report's
// "experiment" field.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analytics"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphone"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/soak"
	"repro/internal/xpsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "bench":
		err = cmdBench(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "recover":
		err = cmdRecover(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "benchgate":
		err = cmdBenchgate(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "list":
		err = cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpgraph:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xpgraph <bench|ingest|query|recover|gen|list> [flags]
  bench   -exp <fig3..fig20|table2|table3|ablation|ext-*|wire|all> [-scale f] [-datasets A,B]
          [-threads n] [-qthreads n] [-format table|csv] [-lat model.json] [-trace out.json]
          [-json out.json]
  ingest  -dataset D [-scale f] [-system s] [-threads n] [-save state.xpg]
  query   -dataset D [-scale f] [-algo bfs|pagerank|cc|onehop|khop|triangles] [-qthreads n]
  recover -dataset D [-scale f] [-load state.xpg]
  gen     -dataset D -out file [-scale f]
  benchgate -new report.json [-baseline committed.json] [-tol f]
  soak    -scenario <short-mix|bursty-ingest|fault-storm|sustained-overload> [-seed n] [-adaptive]
          [-horizon d] [-dump dir] [-json out.json]
  list`)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment name or 'all'")
	scale := fs.Float64("scale", 1.0, "edge-count scale factor")
	datasets := fs.String("datasets", "", "comma-separated dataset filter")
	threads := fs.Int("threads", 16, "archive threads")
	qthreads := fs.Int("qthreads", 96, "query threads")
	format := fs.String("format", "table", "output format: table|csv")
	latPath := fs.String("lat", "", "JSON latency-model override (see xpsim.LoadLatency)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the phase timeline to this file")
	jsonPath := fs.String("json", "", "write the experiment's machine-readable report to this file (single -exp only)")
	fs.Parse(args)

	cfg := bench.Config{EdgeScale: *scale, ArchiveThreads: *threads, QueryThreads: *qthreads}
	if *tracePath != "" {
		// A full experiment emits a span per phase per batch; size the
		// ring well past fig11's batch count so nothing is overwritten.
		cfg.Tracer = obs.NewTracer(1 << 16)
	}
	if *latPath != "" {
		lat, err := xpsim.LoadLatency(*latPath)
		if err != nil {
			return err
		}
		cfg.Latency = &lat
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	emit := func(t bench.Table) {
		if *format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", t.Exp, t.Title, t.CSV())
			return
		}
		fmt.Println(t)
	}
	if *exp != "all" {
		t, err := bench.Run(*exp, cfg)
		if err != nil {
			return err
		}
		emit(t)
		if err := writeBenchJSON(*jsonPath, t); err != nil {
			return err
		}
		return writeTrace(*tracePath, cfg.Tracer)
	}
	if *jsonPath != "" {
		return fmt.Errorf("bench: -json needs a single -exp, not 'all'")
	}
	for _, e := range bench.Experiments() {
		fmt.Fprintf(os.Stderr, "running %s: %s...\n", e.Name, e.Title)
		t, err := bench.Run(e.Name, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		emit(t)
	}
	return writeTrace(*tracePath, cfg.Tracer)
}

// writeTrace dumps the tracer ring as Chrome trace-event JSON, viewable
// in chrome://tracing or https://ui.perfetto.dev.
func writeTrace(path string, t *obs.Tracer) error {
	if path == "" || t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	spans := t.Snapshot()
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d phase spans to %s (dropped %d; open in chrome://tracing)\n",
		len(spans), path, t.Dropped())
	return nil
}

// writeBenchJSON dumps the experiment's machine-readable payload.
func writeBenchJSON(path string, t bench.Table) error {
	if path == "" {
		return nil
	}
	if t.JSON == nil {
		return fmt.Errorf("bench: experiment %s has no machine-readable report", t.Exp)
	}
	buf, err := json.MarshalIndent(t.JSON, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s report to %s\n", t.Exp, path)
	return nil
}

// cmdBenchgate enforces the acceptance gates on a machine-readable
// bench report, dispatching on its "experiment" field: "wire" (PR-6:
// decode throughput + adjacency density) or "cluster" (PR-7: multi-shard
// ingest scaling). With -baseline it also fails on regressions against a
// committed report of the same experiment. Simulated-clock numbers are
// deterministic at a fixed scale; host-clock ones are only gated in
// ratio form.
func cmdBenchgate(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ExitOnError)
	newPath := fs.String("new", "", "bench report to check (from: xpgraph bench -exp <wire|cluster> -json)")
	basePath := fs.String("baseline", "", "committed baseline report to compare against")
	tol := fs.Float64("tol", 0.05, "allowed fractional regression vs the baseline")
	fs.Parse(args)
	if *newPath == "" {
		return fmt.Errorf("benchgate: -new is required")
	}
	exp, raw, err := readBenchReport(*newPath)
	if err != nil {
		return err
	}
	var baseRaw []byte
	if *basePath != "" {
		baseExp, buf, err := readBenchReport(*basePath)
		if err != nil {
			return err
		}
		if baseExp != exp {
			return fmt.Errorf("benchgate: baseline %s is a %q report, new is %q", *basePath, baseExp, exp)
		}
		baseRaw = buf
	}
	switch exp {
	case "wire":
		return gateWire(raw, baseRaw, *tol)
	case "cluster":
		return gateCluster(raw, baseRaw, *tol)
	case "soak":
		return gateSoak(raw, baseRaw, *tol)
	case "prop":
		return gateProp(raw, baseRaw, *tol)
	default:
		return fmt.Errorf("benchgate: no gates defined for experiment %q", exp)
	}
}

// gateSoak enforces the PR-8 adaptive-admission gates on a soak bench
// report: under the bursty-ingest scenario the AIMD controller must
// achieve >= 1.2x lower p99 read latency than the static defaults (or
// >= 1.2x fewer 429s at equal p99), it must actually have tuned, and
// neither mode may violate the scenario's own SLO. With a baseline the
// adaptive advantage must not regress by more than tol.
func gateSoak(raw, baseRaw []byte, tol float64) error {
	cur, err := decodeReports[bench.SoakReport](raw)
	if err != nil {
		return err
	}

	var fails []string
	check := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	byMode := map[string]bench.SoakReport{}
	for _, r := range cur {
		byMode[r.Mode] = r
		fmt.Printf("%-8s %6d reads  p99 %8.2fus  wr p99 %6.2fms  shed %d  tuned %d/%d  violations %d\n",
			r.Mode, r.Reads, r.ReadP99Us, r.WriteP99Ms, r.Shed429, r.TuneDecreases, r.TuneIncreases, r.Violations)
	}
	st, okS := byMode["static"]
	ad, okA := byMode["adaptive"]
	if !okS || !okA {
		return fmt.Errorf("benchgate: soak report needs both a static and an adaptive row")
	}
	check(st.Violations == 0, "static run violated the scenario SLO (%d violations)", st.Violations)
	check(ad.Violations == 0, "adaptive run violated the scenario SLO (%d violations)", ad.Violations)
	check(ad.TuneDecreases > 0, "adaptive run never tuned (0 decreases); the comparison is vacuous")
	check(st.Reads > 0 && ad.Reads > 0, "degenerate run: %d/%d reads", st.Reads, ad.Reads)

	// The headline claim: >= 1.2x lower p99 read latency, or >= 1.2x
	// fewer 429s at (approximately) equal p99.
	p99Win := ad.ReadP99Us > 0 && st.ReadP99Us >= 1.2*ad.ReadP99Us
	shedWin := ad.Shed429 > 0 && float64(st.Shed429) >= 1.2*float64(ad.Shed429) &&
		ad.ReadP99Us <= 1.05*st.ReadP99Us
	check(p99Win || shedWin,
		"adaptive admission is not >= 1.2x better: p99 %.2fus vs static %.2fus, shed %d vs %d",
		ad.ReadP99Us, st.ReadP99Us, ad.Shed429, st.Shed429)

	if baseRaw != nil {
		base, err := decodeReports[bench.SoakReport](baseRaw)
		if err != nil {
			return err
		}
		baseByMode := map[string]bench.SoakReport{}
		for _, r := range base {
			baseByMode[r.Mode] = r
		}
		bs, okS := baseByMode["static"]
		ba, okA := baseByMode["adaptive"]
		// Only comparable at the same virtual horizon (same -scale);
		// otherwise the headline >= 1.2x floor above is the whole gate.
		if okS && okA && ba.ReadP99Us > 0 && ad.ReadP99Us > 0 &&
			ba.HorizonS == ad.HorizonS && bs.HorizonS == st.HorizonS {
			baseAdv := bs.ReadP99Us / ba.ReadP99Us
			curAdv := st.ReadP99Us / ad.ReadP99Us
			check(curAdv >= baseAdv*(1-tol),
				"adaptive p99 advantage regressed: %.2fx vs baseline %.2fx", curAdv, baseAdv)
		}
	}
	return gateVerdict(fails)
}

// gateWire enforces the PR-6 gates: binary ingest >= 2x JSON decode
// throughput, varint adjacency >= 1.5x the fixed layout's edges per
// XPLine, and no regression vs the committed baseline.
func gateWire(raw, baseRaw []byte, tol float64) error {
	cur, err := decodeReports[bench.WireReport](raw)
	if err != nil {
		return err
	}

	var fails []string
	check := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	for _, r := range cur {
		// Absolute gates from the PR acceptance criteria.
		check(r.BinSpeedup >= 2.0,
			"%s: binary ingest decode only %.2fx JSON (need >= 2x)", r.Dataset, r.BinSpeedup)
		check(r.Varint.EdgesPerLine >= 1.5*r.Fixed.EdgesPerLine,
			"%s: varint density %.2f edges/line vs fixed %.2f (need >= 1.5x)",
			r.Dataset, r.Varint.EdgesPerLine, r.Fixed.EdgesPerLine)
		check(r.Varint.MediaWriteBytesPerEdge > 0 && r.Fixed.MediaWriteBytesPerEdge > 0,
			"%s: missing media write traffic measurements", r.Dataset)
		fmt.Printf("%-4s bin_speedup %.2fx  density fixed %.2f varint %.2f (%.2fx)  wr B/edge fixed %.1f varint %.1f\n",
			r.Dataset, r.BinSpeedup, r.Fixed.EdgesPerLine, r.Varint.EdgesPerLine,
			r.DensityGain, r.Fixed.MediaWriteBytesPerEdge, r.Varint.MediaWriteBytesPerEdge)
	}

	if baseRaw != nil {
		base, err := decodeReports[bench.WireReport](baseRaw)
		if err != nil {
			return err
		}
		byName := map[string]bench.WireReport{}
		for _, r := range base {
			byName[r.Dataset] = r
		}
		for _, r := range cur {
			b, ok := byName[r.Dataset]
			if !ok {
				continue
			}
			floor := 1 - tol
			check(r.Varint.EdgesPerLine >= b.Varint.EdgesPerLine*floor,
				"%s: varint density regressed: %.3f vs baseline %.3f edges/line",
				r.Dataset, r.Varint.EdgesPerLine, b.Varint.EdgesPerLine)
			check(r.DensityGain >= b.DensityGain*floor,
				"%s: density gain regressed: %.3fx vs baseline %.3fx",
				r.Dataset, r.DensityGain, b.DensityGain)
			// Host-clock throughput is noisy across machines; allow a wide
			// band but catch order-of-magnitude regressions in the ratio.
			check(r.BinSpeedup >= b.BinSpeedup*0.5,
				"%s: binary/JSON decode ratio collapsed: %.2fx vs baseline %.2fx",
				r.Dataset, r.BinSpeedup, b.BinSpeedup)
		}
	}
	return gateVerdict(fails)
}

// gateCluster enforces the PR-7 gates on a cluster-scaling report: the
// sweep must reach 4 shards and ingest at >= 2x the single-shard
// throughput there, and (vs a baseline at the same scale) neither the
// speedup nor the absolute simulated throughput may regress. All
// numbers are simulated-clock, so at a fixed scale they are exact.
func gateCluster(raw, baseRaw []byte, tol float64) error {
	cur, err := decodeReports[bench.ClusterReport](raw)
	if err != nil {
		return err
	}

	var fails []string
	check := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	maxShards := map[string]bench.ClusterReport{}
	for _, r := range cur {
		if b, ok := maxShards[r.Dataset]; !ok || r.Shards > b.Shards {
			maxShards[r.Dataset] = r
		}
		fmt.Printf("%-4s %d shard(s)  %.3f sim s  %.2f Medges/s  speedup %.2fx\n",
			r.Dataset, r.Shards, r.SimSeconds, r.MEdgesPerSec, r.Speedup)
	}
	for _, r := range cur {
		m := maxShards[r.Dataset]
		if r.Shards != m.Shards {
			continue
		}
		check(r.Shards >= 4, "%s: sweep tops out at %d shards (need >= 4)", r.Dataset, r.Shards)
		check(r.MEdgesPerSec > 0, "%s: missing throughput measurement", r.Dataset)
		check(r.Speedup >= 2.0,
			"%s: %d-shard ingest only %.2fx a single shard (need >= 2x)", r.Dataset, r.Shards, r.Speedup)
	}

	if baseRaw != nil {
		base, err := decodeReports[bench.ClusterReport](baseRaw)
		if err != nil {
			return err
		}
		type key struct {
			ds     string
			shards int
			edges  int64
		}
		byKey := map[key]bench.ClusterReport{}
		for _, r := range base {
			byKey[key{r.Dataset, r.Shards, r.Edges}] = r
		}
		for _, r := range cur {
			b, ok := byKey[key{r.Dataset, r.Shards, r.Edges}]
			if !ok {
				continue // different scale: nothing comparable
			}
			floor := 1 - tol
			check(r.Speedup >= b.Speedup*floor,
				"%s@%d: scaling regressed: %.2fx vs baseline %.2fx",
				r.Dataset, r.Shards, r.Speedup, b.Speedup)
			check(r.MEdgesPerSec >= b.MEdgesPerSec*floor,
				"%s@%d: ingest throughput regressed: %.2f vs baseline %.2f Medges/s",
				r.Dataset, r.Shards, r.MEdgesPerSec, b.MEdgesPerSec)
		}
	}
	return gateVerdict(fails)
}

// gateProp enforces the PR-9 property-graph gates on a prop bench
// report: the filtered 2-hop with the label predicate pushed into
// adjacency decode must read >= 2x fewer media lines than the
// read-all-then-filter traversal, and typed-edge ingest must hold
// >= 0.8x the plain pipeline's throughput. Both sides are
// simulated-clock / simulated-media, so at a fixed scale the numbers
// are exact; the baseline comparison only applies at matching edge
// counts.
func gateProp(raw, baseRaw []byte, tol float64) error {
	cur, err := decodeReports[bench.PropReport](raw)
	if err != nil {
		return err
	}

	var fails []string
	check := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	for _, r := range cur {
		fmt.Printf("%-4s rd lines filtered %d / read-all %d (%.2fx)  ingest plain %.2f / typed %.2f Medges/s (%.3fx)\n",
			r.Dataset, r.FilteredMediaReadLines, r.ReadAllMediaReadLines, r.MediaReadSavings,
			r.PlainIngestMEdgesPerSec, r.TypedIngestMEdgesPerSec, r.TypedIngestRatio)
		check(r.FilteredMediaReadLines > 0 && r.ReadAllMediaReadLines > 0,
			"%s: degenerate media measurement (%d filtered / %d read-all lines)",
			r.Dataset, r.FilteredMediaReadLines, r.ReadAllMediaReadLines)
		check(r.MediaReadSavings >= 2.0,
			"%s: filtered 2-hop reads only %.2fx fewer media lines than read-all-then-filter (need >= 2x)",
			r.Dataset, r.MediaReadSavings)
		check(r.FilteredReached > 0,
			"%s: filtered traversal reached nothing; the savings are vacuous", r.Dataset)
		check(r.PlainIngestMEdgesPerSec > 0 && r.TypedIngestMEdgesPerSec > 0,
			"%s: missing ingest throughput measurements", r.Dataset)
		check(r.TypedIngestRatio >= 0.8,
			"%s: typed ingest only %.3fx plain throughput (need >= 0.8x)", r.Dataset, r.TypedIngestRatio)
	}

	if baseRaw != nil {
		base, err := decodeReports[bench.PropReport](baseRaw)
		if err != nil {
			return err
		}
		type key struct {
			ds    string
			edges int64
		}
		byKey := map[key]bench.PropReport{}
		for _, r := range base {
			byKey[key{r.Dataset, r.Edges}] = r
		}
		for _, r := range cur {
			b, ok := byKey[key{r.Dataset, r.Edges}]
			if !ok {
				continue // different scale: nothing comparable
			}
			floor := 1 - tol
			check(r.MediaReadSavings >= b.MediaReadSavings*floor,
				"%s: pushdown savings regressed: %.2fx vs baseline %.2fx",
				r.Dataset, r.MediaReadSavings, b.MediaReadSavings)
			check(r.TypedIngestRatio >= b.TypedIngestRatio*floor,
				"%s: typed ingest ratio regressed: %.3fx vs baseline %.3fx",
				r.Dataset, r.TypedIngestRatio, b.TypedIngestRatio)
		}
	}
	return gateVerdict(fails)
}

// cmdSoak runs one soak scenario (internal/soak) against the full
// server/cluster/ingest/core stack and reports its SLO verdict: exit 0
// when the scenario meets its spec, exit 1 with the violations (and a
// replayable failure dump when -dump is set) otherwise.
func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	name := fs.String("scenario", soak.ShortMix, "builtin scenario: "+strings.Join(soak.Names(), ", "))
	seed := fs.Uint64("seed", 0, "override the scenario seed (0 keeps the builtin default)")
	adaptive := fs.Bool("adaptive", false, "enable the AIMD adaptive admission controller (DESIGN.md §12.3)")
	horizon := fs.Duration("horizon", 0, "override the virtual horizon (0 keeps the builtin default)")
	dump := fs.String("dump", "", "directory for the failure dump (report+scenario JSON, Chrome trace, metrics) on SLO violation")
	jsonPath := fs.String("json", "", "write the report JSON to this file")
	fs.Parse(args)

	sc, err := soak.ByName(*name)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *adaptive {
		sc.Adaptive = true
	}
	if *horizon > 0 {
		sc.Horizon = *horizon
	}
	rep, err := soak.Run(sc, *dump)
	if err != nil {
		return err
	}
	fmt.Printf("soak %s seed %d (adaptive=%v): %d reads, %d khops, %d edges accepted over %.1fs virtual\n",
		rep.Scenario, rep.Seed, rep.Adaptive, rep.Reads, rep.KHops, rep.EdgesAccepted, rep.HorizonS)
	fmt.Printf("  read p50/p95/p99/max %.2f/%.2f/%.2f/%.2f us   write p50/p99 %.2f/%.2f ms\n",
		rep.ReadP50Us, rep.ReadP95Us, rep.ReadP99Us, rep.ReadMaxUs, rep.WriteP50Ms, rep.WriteP99Ms)
	fmt.Printf("  shed 429 %d/%d parts   read errors %d/%d   health %s   max queue %d edges\n",
		rep.Shed429, rep.WriteParts, rep.ReadErrors, rep.Reads, rep.FinalHealth, rep.MaxQueueDepthEdges)
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.Failed() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "soak SLO FAIL:", v)
		}
		if *dump != "" {
			fmt.Fprintf(os.Stderr, "soak: dump in %s; replay with: xpgraph soak -scenario %s -seed %d\n",
				*dump, sc.Name, sc.Seed)
		}
		return fmt.Errorf("soak: %d SLO violation(s)", len(rep.Violations))
	}
	fmt.Println("soak: SLO met")
	return nil
}

// gateVerdict prints and folds the failure list into the exit status.
func gateVerdict(fails []string) error {
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "benchgate FAIL:", f)
		}
		return fmt.Errorf("benchgate: %d gate(s) failed", len(fails))
	}
	fmt.Println("benchgate: all gates passed")
	return nil
}

// readBenchReport loads a bench JSON report and returns its experiment
// name plus the raw document for typed decoding.
func readBenchReport(path string) (string, []byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var doc struct {
		Experiment string `json:"experiment"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Experiment == "" {
		return "", nil, fmt.Errorf("%s: not a bench report (no experiment field)", path)
	}
	return doc.Experiment, buf, nil
}

// decodeReports extracts the typed report list from a raw bench report.
func decodeReports[T any](raw []byte) ([]T, error) {
	var doc struct {
		Reports []T `json:"reports"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	if len(doc.Reports) == 0 {
		return nil, fmt.Errorf("bench report has no reports")
	}
	return doc.Reports, nil
}

// cliAdjBytes sizes adjacency regions consistently across CLI commands so
// that `recover -load` re-attaches to regions created by `ingest -save`.
func cliAdjBytes(edges int) int64 { return int64(edges)*16 + (16 << 20) }

func loadDataset(name string, scale float64) (gen.Dataset, []graph.Edge, error) {
	ds, err := gen.ByName(name)
	if err != nil {
		return gen.Dataset{}, nil, err
	}
	n := int64(float64(ds.Edges) * scale)
	if n < 1024 {
		n = 1024
	}
	return ds, gen.RMAT(ds.Scale, n, ds.Seed), nil
}

func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dataset := fs.String("dataset", "FS", "catalog dataset")
	scale := fs.Float64("scale", 0.25, "edge-count scale factor")
	system := fs.String("system", "xpgraph", "xpgraph|xpgraph-b|xpgraph-d|graphone-p|graphone-n|graphone-d")
	threads := fs.Int("threads", 16, "archive threads")
	save := fs.String("save", "", "write the simulated PMEM to this file after ingesting (xpgraph systems only)")
	fs.Parse(args)

	ds, edges, err := loadDataset(*dataset, *scale)
	if err != nil {
		return err
	}
	m := xpsim.NewMachine(2, int64(len(edges))*48+(256<<20), xpsim.DefaultLatency())
	adjBytes := int64(len(edges))*32 + (32 << 20)

	switch *system {
	case "xpgraph", "xpgraph-b", "xpgraph-d":
		opts := core.Options{Name: "cli", NumVertices: ds.NumVertices(),
			ArchiveThreads: *threads, NUMA: core.NUMASubgraph, AdjBytes: cliAdjBytes(len(edges)),
			Battery: *system == "xpgraph-b"}
		var h *pmem.Heap
		if *system == "xpgraph-d" {
			opts.Medium = core.MediumDRAM
			opts.NUMA = core.NUMANone
		} else {
			h = pmem.NewHeap(m)
		}
		s, err := core.New(m, h, nil, opts)
		if err != nil {
			return err
		}
		m.ResetStats()
		rep, err := s.Ingest(edges)
		if err != nil {
			return err
		}
		st := m.TotalStats()
		u := s.MemUsage()
		fmt.Printf("%s ingested %d edges of %s\n", *system, rep.Edges, ds.Full)
		fmt.Printf("  sim total %.3fs (log %.3fs, buffer %.3fs, flush %.3fs; %d batches, %d flush-alls)\n",
			f(rep.TotalNs()), f(rep.LogNs), f(rep.BufferNs), f(rep.FlushNs), rep.Batches, rep.FlushAlls)
		fmt.Printf("  pmem media read %.3f GB, write %.3f GB\n",
			float64(st.MediaReadBytes())/1e9, float64(st.MediaWriteBytes())/1e9)
		fmt.Printf("  memory: meta %.1f MB DRAM, vbuf %.1f MB DRAM, elog %.1f MB, pblk %.1f MB PMEM\n",
			mbf(u.MetaDRAM), mbf(u.VbufDRAM), mbf(u.ElogPMEM), mbf(u.PblkPMEM))
		if *save != "" {
			if h == nil {
				return fmt.Errorf("-save needs a PMEM-backed system")
			}
			if err := pmem.SaveFile(*save, h); err != nil {
				return err
			}
			fmt.Printf("  simulated PMEM saved to %s (recover with: xpgraph recover -load %s)\n", *save, *save)
		}
	case "graphone-p", "graphone-n", "graphone-d":
		variant := map[string]graphone.Variant{
			"graphone-p": graphone.VariantP,
			"graphone-n": graphone.VariantN,
			"graphone-d": graphone.VariantD,
		}[*system]
		var h *pmem.Heap
		if variant != graphone.VariantD {
			h = pmem.NewHeap(m)
		}
		s, err := graphone.New(m, h, nil, graphone.Options{Name: "cli",
			NumVertices: ds.NumVertices(), ArchiveThreads: *threads,
			AdjBytes: adjBytes, Variant: variant})
		if err != nil {
			return err
		}
		m.ResetStats()
		rep, err := s.Ingest(edges)
		if err != nil {
			return err
		}
		st := m.TotalStats()
		fmt.Printf("%s ingested %d edges of %s\n", *system, rep.Edges, ds.Full)
		fmt.Printf("  sim total %.3fs (log %.3fs, archive %.3fs; %d batches)\n",
			f(rep.TotalNs()), f(rep.LogNs), f(rep.ArchiveNs), rep.Batches)
		fmt.Printf("  pmem media read %.3f GB, write %.3f GB\n",
			float64(st.MediaReadBytes())/1e9, float64(st.MediaWriteBytes())/1e9)
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dataset := fs.String("dataset", "FS", "catalog dataset")
	scale := fs.Float64("scale", 0.25, "edge-count scale factor")
	algo := fs.String("algo", "bfs", "bfs|pagerank|cc|onehop|khop|triangles")
	qthreads := fs.Int("qthreads", 96, "query threads")
	fs.Parse(args)

	ds, edges, err := loadDataset(*dataset, *scale)
	if err != nil {
		return err
	}
	m := xpsim.NewMachine(2, int64(len(edges))*48+(256<<20), xpsim.DefaultLatency())
	s, err := core.New(m, pmem.NewHeap(m), nil, core.Options{Name: "cli",
		NumVertices: ds.NumVertices(), ArchiveThreads: 16, NUMA: core.NUMASubgraph,
		AdjBytes: int64(len(edges))*16 + (32 << 20)})
	if err != nil {
		return err
	}
	if _, err := s.Ingest(edges); err != nil {
		return err
	}
	e := analytics.NewEngine(s, &m.Lat, *qthreads)
	switch *algo {
	case "bfs":
		r := e.BFS(1)
		fmt.Printf("BFS from 1 on %s: visited %d vertices in %d levels, sim %.3fs\n",
			ds.Full, r.Visited, r.Levels, f(r.SimNs))
	case "pagerank":
		r := e.PageRank(10)
		best, bi := 0.0, 0
		for i, v := range r.Ranks {
			if v > best {
				best, bi = v, i
			}
		}
		fmt.Printf("PageRank(10) on %s: top vertex %d (rank %.6f), sim %.3fs\n", ds.Full, bi, best, f(r.SimNs))
	case "cc":
		r := e.CC()
		fmt.Printf("CC on %s: %d components, sim %.3fs\n", ds.Full, r.Components, f(r.SimNs))
	case "onehop":
		r := e.OneHop(1<<14, 0xBEEF)
		fmt.Printf("1-hop on %s: %d queries touched %d neighbors, sim %.3fs\n",
			ds.Full, r.Queried, r.Touched, f(r.SimNs))
	case "khop":
		r := e.KHop(1, 3)
		fmt.Printf("3-hop from 1 on %s: reached %d vertices %v, sim %.3fs\n",
			ds.Full, r.Reached, r.PerHop, f(r.SimNs))
	case "triangles":
		r := e.Triangles()
		fmt.Printf("triangles on %s: %d, sim %.3fs\n", ds.Full, r.Triangles, f(r.SimNs))
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	dataset := fs.String("dataset", "FS", "catalog dataset")
	scale := fs.Float64("scale", 0.25, "edge-count scale factor")
	load := fs.String("load", "", "recover from a PMEM image written by 'ingest -save' instead of ingesting in-process")
	fs.Parse(args)

	ds, edges, err := loadDataset(*dataset, *scale)
	if err != nil {
		return err
	}
	opts := core.Options{Name: "cli", NumVertices: ds.NumVertices(),
		ArchiveThreads: 16, NUMA: core.NUMASubgraph,
		AdjBytes: cliAdjBytes(len(edges))}

	var m *xpsim.Machine
	var h *pmem.Heap
	if *load != "" {
		// Cross-process: only the image file survived the "power loss".
		m, h, err = pmem.LoadFile(*load)
		if err != nil {
			return err
		}
		fmt.Printf("loaded simulated PMEM from %s; recovering...\n", *load)
	} else {
		m = xpsim.NewMachine(2, int64(len(edges))*48+(256<<20), xpsim.DefaultLatency())
		h = pmem.NewHeap(m)
		s, err := core.New(m, h, nil, opts)
		if err != nil {
			return err
		}
		if _, err := s.Ingest(edges); err != nil {
			return err
		}
		fmt.Printf("ingested %d edges of %s; simulating power failure...\n", len(edges), ds.Full)
		s = nil // crash: every DRAM structure is gone
	}
	_ = ds
	rs, rep, err := core.Recover(m, h, nil, opts)
	if err != nil {
		return err
	}
	fmt.Printf("recovered: %d blocks scanned, %d log edges replayed (%d deduped), sim %.3fs\n",
		rep.BlocksScanned, rep.Replayed, rep.DedupSkipped, f(rep.SimNs))
	vctx := xpsim.NewCtx(xpsim.NodeUnbound)
	vrep, err := rs.Verify(vctx)
	if err != nil {
		return fmt.Errorf("post-recovery verify FAILED: %w", err)
	}
	fmt.Printf("verified: %d chains, %d PMEM records, %d buffered records — consistent\n",
		vrep.ChainsWalked, vrep.AdjRecords, vrep.BufRecords)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dataset := fs.String("dataset", "FS", "catalog dataset")
	scale := fs.Float64("scale", 1.0, "edge-count scale factor")
	out := fs.String("out", "", "output file (binary edge list)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	ds, edges, err := loadDataset(*dataset, *scale)
	if err != nil {
		return err
	}
	if err := gen.WriteEdgeFile(*out, edges); err != nil {
		return err
	}
	fmt.Printf("wrote %d edges of %s to %s (%.1f MB)\n", len(edges), ds.Full, *out,
		float64(len(edges)*8)/1e6)
	return nil
}

func cmdList() error {
	fmt.Println("datasets (scaled ~1/1024 stand-ins of Table II):")
	for _, d := range gen.Catalog() {
		fmt.Printf("  %-4s %-12s 2^%d vertices, %d edges (paper: %s vertices, %s edges)\n",
			d.Name, d.Full, d.Scale, d.Edges, d.PaperV, d.PaperE)
	}
	fmt.Println("experiments:")
	for _, e := range bench.Experiments() {
		fmt.Printf("  %-7s %s\n", e.Name, e.Title)
	}
	return nil
}

func f(ns int64) float64  { return float64(ns) / 1e9 }
func mbf(b int64) float64 { return float64(b) / 1e6 }
