package xpgraph_test

import (
	"testing"

	xpgraph "repro"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	m := xpgraph.NewDefaultMachine()
	g, err := xpgraph.Open(m, xpgraph.Options{Name: "api", NumVertices: 64,
		LogCapacity: 1 << 10, ArchiveThreshold: 1 << 6, ArchiveThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdges([]xpgraph.Edge{{Src: 1, Dst: 3}, {Src: 2, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := g.DelEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	ctx := xpgraph.NewQueryCtx(0)
	out := g.NbrsOut(ctx, 1, nil)
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("out(1) = %v, want [2]", out)
	}
	in := g.NbrsIn(ctx, 1, nil)
	if len(in) != 1 || in[0] != 2 {
		t.Fatalf("in(1) = %v, want [2]", in)
	}
}

func TestPublicAPICrashRecovery(t *testing.T) {
	m := xpgraph.NewDefaultMachine()
	h := xpgraph.NewHeap(m)
	opts := xpgraph.Options{Name: "apirec", NumVertices: 128,
		LogCapacity: 1 << 10, ArchiveThreshold: 1 << 6, ArchiveThreads: 4}
	g, err := xpgraph.New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	edges := xpgraph.RMAT(7, 500, 3)
	if err := g.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	ctx := xpgraph.NewQueryCtx(0)
	want := len(g.NbrsOut(ctx, 0, nil))

	g = nil // crash
	rg, rep, err := xpgraph.Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimNs <= 0 {
		t.Fatal("recovery must cost simulated time")
	}
	if got := len(rg.NbrsOut(ctx, 0, nil)); got != want {
		t.Fatalf("recovered out(0) = %d nbrs, want %d", got, want)
	}
}

func TestDatasetCatalogExported(t *testing.T) {
	if len(xpgraph.Datasets()) != 7 {
		t.Fatal("catalog should expose the seven Table II datasets")
	}
	if _, err := xpgraph.DatasetByName("YW"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSnapshot(t *testing.T) {
	m := xpgraph.NewDefaultMachine()
	g, err := xpgraph.Open(m, xpgraph.Options{Name: "snapapi", NumVertices: 16,
		LogCapacity: 256, ArchiveThreshold: 4, ArchiveThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ctx := xpgraph.NewQueryCtx(0)
	snap := g.Snapshot(ctx)
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	old := snap.NbrsOut(ctx, 1, nil)
	if len(old) != 1 || old[0] != 2 {
		t.Fatalf("snapshot view = %v, want [2]", old)
	}
	if live := g.NbrsOut(ctx, 1, nil); len(live) != 2 {
		t.Fatalf("live view = %v", live)
	}
}
