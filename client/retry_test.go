package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock stubs the client's retry backoff: it records every wait the
// retry loop asked for instead of actually sleeping, so the tests
// assert the Retry-After handling without real time passing.
type fakeClock struct {
	mu    sync.Mutex
	waits []time.Duration
	// cancelAfter, when > 0, makes the sleep report ctx cancellation on
	// that (1-based) call.
	cancelAfter int
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.waits = append(f.waits, d)
	n := len(f.waits)
	f.mu.Unlock()
	if f.cancelAfter > 0 && n >= f.cancelAfter {
		return context.Canceled
	}
	return ctx.Err()
}

func (f *fakeClock) recorded() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.waits...)
}

// shed429 builds a stub server that sheds the first n writes with 429 +
// the given per-attempt Retry-After values, then accepts.
func shed429(t *testing.T, calls *atomic.Int64, retryAfter []string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(retryAfter) {
			w.Header().Set("Retry-After", retryAfter[n-1])
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"queue_full","message":"full","shard":0}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"accepted":1,"epoch":2,"epoch_vector":[2]}`)
	}))
}

// TestRetryHonorsJitteredRetryAfter pins that each retry sleeps exactly
// the delay the server's jittered Retry-After advertised — observed on
// a fake clock, so varying server-side jitter (1s/3s/2s) is asserted
// wait-for-wait without the test actually waiting.
func TestRetryHonorsJitteredRetryAfter(t *testing.T) {
	var calls atomic.Int64
	stub := shed429(t, &calls, []string{"1", "3", "2"})
	defer stub.Close()

	clk := &fakeClock{}
	c := New(stub.URL, Options{Retries: 3})
	c.sleep = clk.sleep

	ir, err := c.AddEdges(context.Background(), []Edge{{Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", ir.Accepted)
	}
	if calls.Load() != 4 { // 3 sheds + the success
		t.Fatalf("calls = %d, want 4", calls.Load())
	}
	want := []time.Duration{time.Second, 3 * time.Second, 2 * time.Second}
	got := clk.recorded()
	if len(got) != len(want) {
		t.Fatalf("waits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestRetryWaitCappedByMaxRetryWait pins the bound: a server advertising
// a huge Retry-After cannot park the caller past Options.MaxRetryWait.
func TestRetryWaitCappedByMaxRetryWait(t *testing.T) {
	var calls atomic.Int64
	stub := shed429(t, &calls, []string{"3600", "3600"})
	defer stub.Close()

	clk := &fakeClock{}
	c := New(stub.URL, Options{Retries: 2, MaxRetryWait: 2 * time.Second})
	c.sleep = clk.sleep

	if _, err := c.AddEdges(context.Background(), []Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	for i, w := range clk.recorded() {
		if w != 2*time.Second {
			t.Fatalf("wait %d = %v, want the 2s cap", i, w)
		}
	}
	if len(clk.recorded()) != 2 {
		t.Fatalf("waits = %v, want exactly 2 capped waits", clk.recorded())
	}
}

// TestRetryBoundedThenTypedError pins the retry budget end to end on the
// fake clock: Retries sheds exhaust the budget (initial + Retries
// requests, one recorded wait per retry), and the caller gets the final
// 429 as a typed *APIError — not a generic error, not a hang.
func TestRetryBoundedThenTypedError(t *testing.T) {
	var calls atomic.Int64
	stub := shed429(t, &calls, []string{"1", "1", "1", "1", "1", "1", "1", "1"})
	defer stub.Close()

	clk := &fakeClock{}
	c := New(stub.URL, Options{Retries: 2})
	c.sleep = clk.sleep

	_, err := c.AddEdges(context.Background(), []Edge{{Src: 1, Dst: 2}})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != 429 || ae.Code != "queue_full" || ae.RetryAfter != time.Second {
		t.Fatalf("APIError = %+v", ae)
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if len(clk.recorded()) != 2 { // the final 429 is returned, not slept on
		t.Fatalf("waits = %v, want exactly 2 (no sleep after the last attempt)", clk.recorded())
	}
}

// TestRetryStopsOnContextCancel pins that a context cancelled mid-wait
// aborts the retry loop with the context's error instead of burning the
// remaining budget.
func TestRetryStopsOnContextCancel(t *testing.T) {
	var calls atomic.Int64
	stub := shed429(t, &calls, []string{"1", "1", "1", "1"})
	defer stub.Close()

	clk := &fakeClock{cancelAfter: 1}
	c := New(stub.URL, Options{Retries: 4})
	c.sleep = clk.sleep

	_, err := c.AddEdges(context.Background(), []Edge{{Src: 1, Dst: 2}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancellation)", calls.Load())
	}
}
