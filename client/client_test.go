package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/xpsim"
)

func testService(t *testing.T) *Client {
	t.Helper()
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	st, err := core.New(m, pmem.NewHeap(m), nil, core.Options{
		Name: "clienttest", NumVertices: 1 << 10, LogCapacity: 1 << 14,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, m, server.Config{QueryThreads: 4, Linger: time.Millisecond})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return New(ts.URL, Options{})
}

// TestRoundTrip drives the typed client end to end against a real
// server: JSON ingest, binary ingest, point reads, degree, stats,
// health, admin, and the analytics queries — asserting the epoch vector
// arrives everywhere (length 1: single-shard deployment).
func TestRoundTrip(t *testing.T) {
	c := testService(t)
	ctx := context.Background()

	ir, err := c.AddEdges(ctx, []Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 3 || ir.Epoch == 0 || len(ir.EpochVector) != 1 {
		t.Fatalf("AddEdges = %+v", ir)
	}

	ir, err = c.AddEdgesBinary(ctx, []Edge{{Src: 3, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 1 {
		t.Fatalf("AddEdgesBinary = %+v", ir)
	}

	nb, err := c.OutNeighbors(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Neighbors) != 2 || len(nb.EpochVector) != 1 {
		t.Fatalf("OutNeighbors(1) = %+v", nb)
	}
	in, err := c.InNeighbors(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Neighbors) != 2 {
		t.Fatalf("InNeighbors(3) = %+v", in)
	}
	dg, err := c.Degree(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Out != 2 {
		t.Fatalf("Degree(1) = %+v", dg)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.LoggedEdges != 4 || st.Shards != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Shards) != 1 {
		t.Fatalf("Healthz = %+v", h)
	}

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch <= ir.Epoch {
		t.Fatalf("Snapshot epoch %d did not advance past %d", snap.Epoch, ir.Epoch)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(ctx, 1); err != nil {
		t.Fatal(err)
	}

	bfs, err := c.BFS(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Visited != 3 {
		t.Fatalf("BFS = %+v", bfs)
	}
	pr, err := c.PageRank(ctx, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Top) != 2 {
		t.Fatalf("PageRank = %+v", pr)
	}
	cc, err := c.CC(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Components == 0 {
		t.Fatalf("CC = %+v", cc)
	}
	kh, err := c.KHop(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kh.Reached == 0 {
		t.Fatalf("KHop = %+v", kh)
	}
}

// TestRetryOn429 pins the retry contract: a write shed with 429 +
// Retry-After is replayed (honoring the header) until it succeeds,
// within Options.Retries.
func TestRetryOn429(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/edges" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"queue_full","message":"full","shard":0}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"accepted":1,"epoch":2,"epoch_vector":[2]}`)
	}))
	defer stub.Close()

	c := New(stub.URL, Options{Retries: 3})
	ir, err := c.AddEdges(context.Background(), []Edge{{Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 1 || calls.Load() != 3 {
		t.Fatalf("accepted=%d calls=%d, want 1 accepted after 3 calls", ir.Accepted, calls.Load())
	}
}

// TestRetryExhaustion: when every attempt sheds, the final 429 surfaces
// as a typed *APIError carrying the shard attribution.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"code":"queue_full","message":"full","shard":2,"epoch_vector":[1,1,1,1]}}`)
	}))
	defer stub.Close()

	c := New(stub.URL, Options{Retries: 2})
	_, err := c.AddEdges(context.Background(), []Edge{{Src: 1, Dst: 2}})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != 429 || ae.Code != "queue_full" || ae.Shard == nil || *ae.Shard != 2 || len(ae.EpochVector) != 4 {
		t.Fatalf("APIError = %+v", ae)
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

// TestNo503Retry: 503 circuit_open is NOT retried — it surfaces
// immediately for the caller to decide.
func TestNo503Retry(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"circuit_open","message":"open"}}`)
	}))
	defer stub.Close()

	c := New(stub.URL, Options{Retries: 5})
	_, err := c.AddEdges(context.Background(), []Edge{{Src: 1, Dst: 2}})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "circuit_open" {
		t.Fatalf("err = %v, want circuit_open APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want exactly 1 (no 503 retry)", calls.Load())
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ae.RetryAfter)
	}
}
