package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/xpsim"
)

// typedService is testService with the property layer attached.
func typedService(t *testing.T) *Client {
	t.Helper()
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	st, err := core.New(m, pmem.NewHeap(m), nil, core.Options{
		Name: "clienttyped", NumVertices: 1 << 10, LogCapacity: 1 << 14,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 2, Props: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, m, server.Config{QueryThreads: 4, Linger: time.Millisecond})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return New(ts.URL, Options{})
}

// TestTypedWire is the table-driven stub test of the property-graph
// client surface: each method must hit its route with the documented
// method and JSON body, and decode the documented response shape.
func TestTypedWire(t *testing.T) {
	type recorded struct {
		method, path, ctype string
		body                []byte
	}
	cases := []struct {
		name     string
		call     func(ctx context.Context, c *Client) (any, error)
		method   string
		path     string
		wantBody map[string]any // JSON requests only; nil skips the check
		respond  string
		verify   func(t *testing.T, got any)
	}{
		{
			name: "Labels",
			call: func(ctx context.Context, c *Client) (any, error) {
				return c.Labels(ctx)
			},
			method:  http.MethodGet,
			path:    "/v1/labels",
			respond: `{"labels":["","follows"],"epoch":3,"epoch_vector":[3]}`,
			verify: func(t *testing.T, got any) {
				lt := got.(LabelTable)
				if len(lt.Labels) != 2 || lt.Labels[1] != "follows" || lt.Epoch != 3 {
					t.Fatalf("LabelTable = %+v", lt)
				}
			},
		},
		{
			name: "RegisterLabel",
			call: func(ctx context.Context, c *Client) (any, error) {
				return c.RegisterLabel(ctx, "follows")
			},
			method:   http.MethodPost,
			path:     "/v1/labels",
			wantBody: map[string]any{"name": "follows"},
			respond:  `{"id":1,"name":"follows","epoch":4,"epoch_vector":[4]}`,
			verify: func(t *testing.T, got any) {
				l := got.(Label)
				if l.ID != 1 || l.Name != "follows" {
					t.Fatalf("Label = %+v", l)
				}
			},
		},
		{
			name: "KHopFiltered",
			call: func(ctx context.Context, c *Client) (any, error) {
				return c.KHopFiltered(ctx, 7, 2, []string{"follows"},
					&Filter{Key: 1, Op: "ge", Value: 10})
			},
			method: http.MethodPost,
			path:   "/v1/query/khop",
			wantBody: map[string]any{
				"root": float64(7), "k": float64(2),
				"types":  []any{"follows"},
				"filter": map[string]any{"key": float64(1), "op": "ge", "value": float64(10)},
			},
			respond: `{"root":7,"reached":2,"per_hop":[1,1],"epoch":5,"epoch_vector":[5]}`,
			verify: func(t *testing.T, got any) {
				kh := got.(KHopResult)
				if kh.Reached != 2 || len(kh.PerHop) != 2 {
					t.Fatalf("KHopResult = %+v", kh)
				}
			},
		},
		{
			name: "Path",
			call: func(ctx context.Context, c *Client) (any, error) {
				return c.Path(ctx, 1, 9, 4, []string{"follows"}, nil)
			},
			method: http.MethodPost,
			path:   "/v1/query/path",
			wantBody: map[string]any{
				"root": float64(1), "target": float64(9), "max_depth": float64(4),
				"types": []any{"follows"}, "filter": nil,
			},
			respond: `{"root":1,"target":9,"found":true,"path":[1,4,9],"hops":2,"epoch":6,"epoch_vector":[6]}`,
			verify: func(t *testing.T, got any) {
				p := got.(PathResult)
				if !p.Found || p.Hops != 2 || len(p.Path) != 3 {
					t.Fatalf("PathResult = %+v", p)
				}
			},
		},
		{
			name: "AddTypedEdges",
			call: func(ctx context.Context, c *Client) (any, error) {
				return c.AddTypedEdges(ctx, []Edge{{Src: 1, Dst: 2}}, []uint16{1},
					[]PropSet{{V: 2, Key: 1, Val: 42}})
			},
			method:  http.MethodPost,
			path:    "/v1/ingest/bin",
			respond: `{"accepted":1,"batches":1,"epoch":7,"epoch_vector":[7]}`,
			verify: func(t *testing.T, got any) {
				ir := got.(IngestResult)
				if ir.Accepted != 1 || ir.Epoch != 7 {
					t.Fatalf("IngestResult = %+v", ir)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rec recorded
			stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				rec.method, rec.path = r.Method, r.URL.Path
				rec.ctype = r.Header.Get("Content-Type")
				rec.body, _ = io.ReadAll(r.Body)
				w.Header().Set("Content-Type", "application/json")
				io.WriteString(w, tc.respond)
			}))
			defer stub.Close()

			got, err := tc.call(context.Background(), New(stub.URL, Options{}))
			if err != nil {
				t.Fatal(err)
			}
			if rec.method != tc.method || rec.path != tc.path {
				t.Fatalf("request = %s %s, want %s %s", rec.method, rec.path, tc.method, tc.path)
			}
			if tc.wantBody != nil {
				var sent map[string]any
				if err := json.Unmarshal(rec.body, &sent); err != nil {
					t.Fatalf("body %q: %v", rec.body, err)
				}
				for k, want := range tc.wantBody {
					if gotv, ok := sent[k]; !ok || !jsonEq(gotv, want) {
						t.Fatalf("body[%q] = %#v, want %#v (body %s)", k, gotv, want, rec.body)
					}
				}
			}
			tc.verify(t, got)
		})
	}
}

func jsonEq(a, b any) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) == string(bb)
}

// TestTypedRoundTrip drives the property-graph surface end to end
// against a real single-shard server: register labels, ingest a typed
// batch with vertex properties, and assert the filtered traversals
// prune exactly what the types/filter pair says.
func TestTypedRoundTrip(t *testing.T) {
	c := typedService(t)
	ctx := context.Background()

	follows, err := c.RegisterLabel(ctx, "follows")
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := c.RegisterLabel(ctx, "blocks")
	if err != nil {
		t.Fatal(err)
	}
	if follows.ID == 0 || blocks.ID == 0 || follows.ID == blocks.ID {
		t.Fatalf("label ids: follows=%d blocks=%d", follows.ID, blocks.ID)
	}

	// 1-follows->2-follows->3, 1-blocks->4, plus an untyped 1->5.
	// age: v2=30, v3=10, v4=30 (v5 unset).
	ir, err := c.AddTypedEdges(ctx,
		[]Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 1, Dst: 4}},
		[]uint16{follows.ID, follows.ID, blocks.ID},
		[]PropSet{{V: 2, Key: 1, Val: 30}, {V: 3, Key: 1, Val: 10}, {V: 4, Key: 1, Val: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 3 {
		t.Fatalf("AddTypedEdges = %+v", ir)
	}
	if _, err := c.AddEdges(ctx, []Edge{{Src: 1, Dst: 5}}); err != nil {
		t.Fatal(err)
	}

	lt, err := c.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.Labels) != 3 || lt.Labels[follows.ID] != "follows" {
		t.Fatalf("Labels = %+v", lt)
	}

	// Unfiltered 1-hop sees all three out-edges of 1.
	kh, err := c.KHop(ctx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kh.Reached != 3 {
		t.Fatalf("unfiltered KHop = %+v", kh)
	}
	// Typed: only the follows chain.
	kh, err = c.KHopFiltered(ctx, 1, 2, []string{"follows"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if kh.Reached != 2 {
		t.Fatalf("follows KHop = %+v", kh)
	}
	// Typed + predicate: age>=20 keeps v2, prunes v3 and v4.
	kh, err = c.KHopFiltered(ctx, 1, 2, []string{"follows"}, &Filter{Key: 1, Op: "ge", Value: 20})
	if err != nil {
		t.Fatal(err)
	}
	if kh.Reached != 1 {
		t.Fatalf("filtered KHop = %+v", kh)
	}

	p, err := c.Path(ctx, 1, 3, 4, []string{"follows"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Found || p.Hops != 2 || len(p.Path) != 3 || p.Path[0] != 1 || p.Path[2] != 3 {
		t.Fatalf("Path = %+v", p)
	}
	// No follows path to the blocked vertex.
	p, err = c.Path(ctx, 1, 4, 4, []string{"follows"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Found {
		t.Fatalf("Path to blocked vertex = %+v, want not found", p)
	}

	// Unknown type names and bad K bounds answer 400 invalid_argument.
	var ae *APIError
	if _, err := c.KHopFiltered(ctx, 1, 2, []string{"nope"}, nil); !errors.As(err, &ae) ||
		ae.Status != http.StatusBadRequest || ae.Code != "invalid_argument" {
		t.Fatalf("unknown type err = %v", err)
	}
	if _, err := c.KHop(ctx, 1, -1); !errors.As(err, &ae) ||
		ae.Status != http.StatusBadRequest || ae.Code != "invalid_argument" {
		t.Fatalf("negative k err = %v", err)
	}
	if _, err := c.KHop(ctx, 1, 1<<20); !errors.As(err, &ae) || ae.Code != "invalid_argument" {
		t.Fatalf("absurd k err = %v", err)
	}
}

// TestNoPropertyLayer pins the typed surface's failure mode against a
// store built without the property columns: label registration answers
// 501 no_property_layer instead of pretending.
func TestNoPropertyLayer(t *testing.T) {
	c := testService(t)
	var ae *APIError
	if _, err := c.RegisterLabel(context.Background(), "follows"); !errors.As(err, &ae) ||
		ae.Status != http.StatusNotImplemented || ae.Code != "no_property_layer" {
		t.Fatalf("RegisterLabel err = %v, want 501 no_property_layer", err)
	}
}
