package client

import (
	"context"
	"encoding/json"
	"net/http"

	"repro/internal/graph"
	"repro/internal/ingest"
)

// The property-graph surface of the /v1 API (DESIGN.md §13): typed-edge
// ingest over the XPB1 binary transport, the label table, and the
// filtered traversals whose predicates the server pushes down into the
// storage layer.

// PropSet is one vertex-property write, aliased from the core graph
// type so property batches flow between client and library uncopied.
type PropSet = graph.PropSet

// Filter is a vertex-property predicate: keep a neighbor only when its
// property Key relates to Value under Op — one of "eq", "ne", "lt",
// "le", "gt", "ge", "exists" (Value ignored for exists). A vertex with
// no value under Key fails every op except "ne".
type Filter struct {
	Key   uint16 `json:"key"`
	Op    string `json:"op"`
	Value int64  `json:"value"`
}

// LabelTable is the edge-label table: Labels[id] names label id, with
// id 0 the default (untyped) label whose name is "".
type LabelTable struct {
	Labels      []string `json:"labels"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// Label reports a registration.
type Label struct {
	ID          uint16   `json:"id"`
	Name        string   `json:"name"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// PathResult reports a filtered shortest-path search.
type PathResult struct {
	Root        VID      `json:"root"`
	Target      VID      `json:"target"`
	Found       bool     `json:"found"`
	Path        []VID    `json:"path"`
	Hops        int      `json:"hops"`
	SimMs       float64  `json:"sim_ms"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// Labels reads the edge-label table.
func (c *Client) Labels(ctx context.Context) (LabelTable, error) {
	var out LabelTable
	err := c.do(ctx, http.MethodGet, "/labels", "", nil, &out)
	return out, err
}

// RegisterLabel registers an edge-label name cluster-wide and returns
// its id. Idempotent: registering an existing name returns its id.
func (c *Client) RegisterLabel(ctx context.Context, name string) (Label, error) {
	var out Label
	body, _ := json.Marshal(map[string]string{"name": name})
	err := c.do(ctx, http.MethodPost, "/labels", "application/json", body, &out)
	return out, err
}

// AddTypedEdges ingests a typed batch over the XPB1 binary transport:
// edges[i] carries labels[i] (short or nil labels slices pad with the
// default label), props are vertex-property writes riding in the same
// batch. Typed batches apply synchronously under the owner shards'
// write locks — read-your-writes, no async option.
func (c *Client) AddTypedEdges(ctx context.Context, edges []Edge, labels []uint16, props []PropSet) (IngestResult, error) {
	var out IngestResult
	body := ingest.EncodeTypedBatch(edges, labels, props)
	err := c.do(ctx, http.MethodPost, "/ingest/bin", ingest.ContentTypeBatch, body, &out)
	return out, err
}

// SetProps writes vertex properties without edges.
func (c *Client) SetProps(ctx context.Context, props []PropSet) (IngestResult, error) {
	return c.AddTypedEdges(ctx, nil, nil, props)
}

// KHopFiltered explores root's k-hop neighborhood expanding only edges
// whose label name is in types (all when empty) and whose destination
// passes filter (nil for none). The server pushes both down into the
// traversal, so pruned vertices never cost media reads at the next hop.
func (c *Client) KHopFiltered(ctx context.Context, root VID, k int, types []string, filter *Filter) (KHopResult, error) {
	var out KHopResult
	body, _ := json.Marshal(map[string]any{
		"root": root, "k": k, "types": types, "filter": filter,
	})
	err := c.do(ctx, http.MethodPost, "/query/khop", "application/json", body, &out)
	return out, err
}

// Path finds a shortest path (by hop count) from root to target through
// edges passing the types/filter predicate, exploring at most maxDepth
// hops (0 for the server default).
func (c *Client) Path(ctx context.Context, root, target VID, maxDepth int, types []string, filter *Filter) (PathResult, error) {
	var out PathResult
	body, _ := json.Marshal(map[string]any{
		"root": root, "target": target, "max_depth": maxDepth,
		"types": types, "filter": filter,
	})
	err := c.do(ctx, http.MethodPost, "/query/path", "application/json", body, &out)
	return out, err
}
