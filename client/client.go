// Package client is the typed Go client of the XPGraph /v1 HTTP API —
// the counterpart of internal/server's surface, so a downstream program
// drives a graph service without hand-rolling JSON or the binary batch
// framing.
//
// It wraps every /v1 route: JSON and binary (XPB1) ingest, the
// vertex point reads, the admin operations, and the analytics queries.
// All responses carry the cluster's epoch vector (length 1 against a
// single-shard deployment) alongside the scalar epoch.
//
// # Retry policy
//
// Writes shed with 429 queue_full carry a jittered Retry-After header;
// the client honors it — sleeping the advertised delay (bounded by
// Options.MaxRetryWait and the request context) and retrying up to
// Options.Retries times before surfacing the 429 as an *APIError. Only
// 429 is retried: 503s (circuit_open, media_error, partition_down,
// shutting_down) describe conditions a tight retry loop would worsen,
// so they surface immediately with their typed code and the caller
// decides.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/ingest"
)

// Edge is one directed edge, aliased from the core graph type so edge
// slices flow between the client and the library without copying.
type Edge = graph.Edge

// VID is a vertex identifier.
type VID = graph.VID

// Options tunes a Client. The zero value is usable.
type Options struct {
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Retries is how many times a 429 queue_full write is retried after
	// honoring its Retry-After delay (default 3; 0 uses the default,
	// negative disables retries).
	Retries int
	// MaxRetryWait caps one Retry-After sleep (default 5s) so a
	// misbehaving server cannot park the caller for minutes.
	MaxRetryWait time.Duration
}

// Client talks to one XPGraph server. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
	opts Options
	// sleep waits out one Retry-After delay, honoring ctx cancellation.
	// Tests stub it with a fake clock to assert the retry loop's waits
	// without real time passing.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"; with or without the /v1 suffix).
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.MaxRetryWait <= 0 {
		opts.MaxRetryWait = 5 * time.Second
	}
	base := strings.TrimSuffix(baseURL, "/")
	base = strings.TrimSuffix(base, "/v1")
	return &Client{base: base, http: opts.HTTPClient, opts: opts, sleep: realSleep}
}

// realSleep is the production retry backoff: a timer bounded by ctx.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// APIError is a non-2xx /v1 response: the HTTP status plus the decoded
// error envelope, including the shard attribution and epoch vector the
// cluster API adds when a failure belongs to one partition.
type APIError struct {
	Status      int
	Code        string
	Message     string
	Shard       *int
	EpochVector []uint64
	// RetryAfter is the parsed Retry-After delay of a 429/503, zero when
	// absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Shard != nil {
		return fmt.Sprintf("xpgraph: %s (http %d, shard %d): %s", e.Code, e.Status, *e.Shard, e.Message)
	}
	return fmt.Sprintf("xpgraph: %s (http %d): %s", e.Code, e.Status, e.Message)
}

// ---- response shapes (wire mirrors of internal/server's) ----

// IngestResult reports an accepted write.
type IngestResult struct {
	Accepted    int64    `json:"accepted"`
	SimMs       float64  `json:"sim_ms"`
	Batches     int64    `json:"batches"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// Neighbors reports a point read.
type Neighbors struct {
	Vertex      VID      `json:"vertex"`
	Neighbors   []uint32 `json:"neighbors"`
	SimUs       float64  `json:"sim_us"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// Degree reports record counts.
type Degree struct {
	Vertex      VID      `json:"vertex"`
	Out         int      `json:"out"`
	In          int      `json:"in"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// Stats reports cluster-aggregated store and machine statistics.
type Stats struct {
	NumVertices     VID      `json:"num_vertices"`
	LoggedEdges     int64    `json:"logged_edges"`
	MetaDRAMBytes   int64    `json:"meta_dram_bytes"`
	VbufDRAMBytes   int64    `json:"vbuf_dram_bytes"`
	ElogPMEMBytes   int64    `json:"elog_pmem_bytes"`
	PblkPMEMBytes   int64    `json:"pblk_pmem_bytes"`
	MediaReadBytes  int64    `json:"pmem_media_read_bytes"`
	MediaWriteBytes int64    `json:"pmem_media_write_bytes"`
	Shards          int      `json:"shards"`
	Epoch           uint64   `json:"epoch"`
	EpochVector     []uint64 `json:"epoch_vector"`
}

// ShardHealth is one partition's health detail.
type ShardHealth struct {
	Shard          int      `json:"shard"`
	Status         string   `json:"status"`
	ServingReplica bool     `json:"serving_replica,omitempty"`
	Epoch          uint64   `json:"epoch"`
	ReplicaEpochs  []uint64 `json:"replica_epochs,omitempty"`
	BreakerOpen    bool     `json:"breaker_open,omitempty"`
}

// Health is the healthz body: the aggregate state plus per-shard detail.
type Health struct {
	Status                string        `json:"status"`
	Epoch                 uint64        `json:"epoch"`
	EpochVector           []uint64      `json:"epoch_vector"`
	DamagedVertices       int           `json:"damaged_vertices"`
	UnrecoverableVertices int           `json:"unrecoverable_vertices"`
	BreakerOpen           bool          `json:"breaker_open"`
	Shards                []ShardHealth `json:"shards"`
}

// SnapshotResult reports an explicit publication.
type SnapshotResult struct {
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// ScrubResult reports one scrub pass.
type ScrubResult struct {
	VerticesScanned int64    `json:"vertices_scanned"`
	Damaged         int64    `json:"damaged"`
	Repaired        int64    `json:"repaired"`
	Unrecoverable   int64    `json:"unrecoverable"`
	SimMs           float64  `json:"sim_ms"`
	Health          string   `json:"health"`
	Epoch           uint64   `json:"epoch"`
	EpochVector     []uint64 `json:"epoch_vector"`
}

// BFSResult reports a traversal.
type BFSResult struct {
	Root        VID      `json:"root"`
	Visited     int64    `json:"visited"`
	Levels      int      `json:"levels"`
	SimMs       float64  `json:"sim_ms"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// RankedVertex pairs a vertex with its PageRank.
type RankedVertex struct {
	Vertex VID     `json:"vertex"`
	Rank   float64 `json:"rank"`
}

// PageRankResult reports the top-ranked vertices.
type PageRankResult struct {
	Top         []RankedVertex `json:"top"`
	SimMs       float64        `json:"sim_ms"`
	Epoch       uint64         `json:"epoch"`
	EpochVector []uint64       `json:"epoch_vector"`
}

// CCResult reports connected components.
type CCResult struct {
	Components  int      `json:"components"`
	SimMs       float64  `json:"sim_ms"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// KHopResult reports a bounded exploration.
type KHopResult struct {
	Root        VID      `json:"root"`
	Reached     int64    `json:"reached"`
	PerHop      []int64  `json:"per_hop"`
	SimMs       float64  `json:"sim_ms"`
	Epoch       uint64   `json:"epoch"`
	EpochVector []uint64 `json:"epoch_vector"`
}

// ---- plumbing ----

type edgeJSON struct {
	Src VID `json:"src"`
	Dst VID `json:"dst"`
}

func edgesBody(edges []Edge) []byte {
	wire := make([]edgeJSON, len(edges))
	for i, e := range edges {
		wire[i] = edgeJSON{Src: e.Src, Dst: e.Dst}
	}
	b, _ := json.Marshal(map[string][]edgeJSON{"edges": wire})
	return b
}

// do runs one request with the retry loop. body is replayable (a byte
// slice re-wrapped per attempt); out, when non-nil, receives the decoded
// 2xx body.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	retries := c.opts.Retries
	if retries < 0 {
		retries = 0
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+"/v1"+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			var derr error
			if out != nil {
				derr = json.NewDecoder(resp.Body).Decode(out)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return derr
		}
		apiErr := decodeAPIError(resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
			return apiErr
		}
		// 429 queue_full: honor the jittered Retry-After, bounded, then
		// replay the identical request.
		wait := apiErr.RetryAfter
		if wait > c.opts.MaxRetryWait {
			wait = c.opts.MaxRetryWait
		}
		if wait > 0 {
			if err := c.sleep(ctx, wait); err != nil {
				return err
			}
		}
	}
}

func decodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: "internal"}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	var envelope struct {
		Error struct {
			Code        string   `json:"code"`
			Message     string   `json:"message"`
			Shard       *int     `json:"shard"`
			EpochVector []uint64 `json:"epoch_vector"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error.Code != "" {
		ae.Code = envelope.Error.Code
		ae.Message = envelope.Error.Message
		ae.Shard = envelope.Error.Shard
		ae.EpochVector = envelope.Error.EpochVector
	} else {
		ae.Message = resp.Status
	}
	return ae
}

// ---- writes ----

// AddEdges ingests a batch over the JSON transport and waits until it is
// readable (read-your-writes across every shard it touched).
func (c *Client) AddEdges(ctx context.Context, edges []Edge) (IngestResult, error) {
	var out IngestResult
	err := c.do(ctx, http.MethodPost, "/edges", "application/json", edgesBody(edges), &out)
	return out, err
}

// DeleteEdges removes a batch (tombstone records; see DESIGN.md).
func (c *Client) DeleteEdges(ctx context.Context, edges []Edge) (IngestResult, error) {
	var out IngestResult
	err := c.do(ctx, http.MethodDelete, "/edges", "application/json", edgesBody(edges), &out)
	return out, err
}

// AddEdgesBinary ingests a batch over the allocation-free XPB1 binary
// transport (POST /v1/ingest/bin) — the bulk-load fast path.
func (c *Client) AddEdgesBinary(ctx context.Context, edges []Edge) (IngestResult, error) {
	var out IngestResult
	body := ingest.EncodeBatch(edges, false)
	err := c.do(ctx, http.MethodPost, "/ingest/bin", ingest.ContentTypeBatch, body, &out)
	return out, err
}

// ---- reads ----

// OutNeighbors resolves v's out-neighbors through the media-checked
// path on v's owner shard.
func (c *Client) OutNeighbors(ctx context.Context, v VID) (Neighbors, error) {
	var out Neighbors
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/vertices/%d/out", v), "", nil, &out)
	return out, err
}

// InNeighbors resolves v's in-neighbors, unioned across every shard.
func (c *Client) InNeighbors(ctx context.Context, v VID) (Neighbors, error) {
	var out Neighbors
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/vertices/%d/in", v), "", nil, &out)
	return out, err
}

// Degree reads v's stored out/in record counts.
func (c *Client) Degree(ctx context.Context, v VID) (Degree, error) {
	var out Degree
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/vertices/%d/degree", v), "", nil, &out)
	return out, err
}

// Stats reads cluster-aggregated statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/stats", "", nil, &out)
	return out, err
}

// Healthz reads aggregate and per-shard health. A readonly cluster
// answers 503 with the same body; that surfaces as an *APIError.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/healthz", "", nil, &out)
	return out, err
}

// ---- admin ----

// Snapshot publishes fresh snapshots on every live shard.
func (c *Client) Snapshot(ctx context.Context) (SnapshotResult, error) {
	var out SnapshotResult
	err := c.do(ctx, http.MethodPost, "/snapshot", "", nil, &out)
	return out, err
}

// Flush drains every shard's vertex buffers to PMEM.
func (c *Client) Flush(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/flush", "", nil, nil)
}

// Scrub runs one synchronous media-scrub pass on every live shard.
func (c *Client) Scrub(ctx context.Context) (ScrubResult, error) {
	var out ScrubResult
	err := c.do(ctx, http.MethodPost, "/scrub", "", nil, &out)
	return out, err
}

// Compact compacts one vertex's adjacency chains on its owner shard.
func (c *Client) Compact(ctx context.Context, v VID) error {
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/compact/%d", v), "", nil, nil)
}

// ---- analytics ----

// BFS runs a traversal from root over the pinned cluster view.
func (c *Client) BFS(ctx context.Context, root VID) (BFSResult, error) {
	var out BFSResult
	body, _ := json.Marshal(map[string]VID{"root": root})
	err := c.do(ctx, http.MethodPost, "/query/bfs", "application/json", body, &out)
	return out, err
}

// PageRank runs iterations of PageRank and returns the top-k vertices.
func (c *Client) PageRank(ctx context.Context, iterations, top int) (PageRankResult, error) {
	var out PageRankResult
	body, _ := json.Marshal(map[string]int{"iterations": iterations, "top": top})
	err := c.do(ctx, http.MethodPost, "/query/pagerank", "application/json", body, &out)
	return out, err
}

// CC counts connected components.
func (c *Client) CC(ctx context.Context) (CCResult, error) {
	var out CCResult
	err := c.do(ctx, http.MethodPost, "/query/cc", "application/json", []byte("{}"), &out)
	return out, err
}

// KHop explores the k-hop neighborhood of root.
func (c *Client) KHop(ctx context.Context, root VID, k int) (KHopResult, error) {
	var out KHopResult
	body, _ := json.Marshal(map[string]any{"root": root, "k": k})
	err := c.do(ctx, http.MethodPost, "/query/khop", "application/json", body, &out)
	return out, err
}
