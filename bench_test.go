package xpgraph_test

import (
	"testing"

	"repro/internal/bench"
)

// One benchmark per table/figure of the paper's evaluation. Each runs the
// full experiment harness at a reduced edge scale so the whole suite
// finishes quickly; `go run ./cmd/xpgraph bench -exp all -scale 1`
// regenerates the full-scale numbers recorded in EXPERIMENTS.md.
//
// Reported metrics: sim_ms_row0 is the simulated time of the experiment's
// first measured cell, so regressions in the modelled systems (not just
// in Go implementation speed) show up in benchmark diffs.

const benchScale = 0.08

func runExp(b *testing.B, name string, datasets ...string) {
	b.Helper()
	cfg := bench.Config{EdgeScale: benchScale, Datasets: datasets,
		ArchiveThreads: 16, QueryThreads: 32}
	for i := 0; i < b.N; i++ {
		tb, err := bench.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", name)
		}
	}
}

// Fig. 3: GraphOne-D vs GraphOne-P phase split and PMEM amplification.
func BenchmarkFig03_Motivation(b *testing.B) { runExp(b, "fig3", "FS") }

// Fig. 4: NUMA effect and archive-thread sweep for GraphOne.
func BenchmarkFig04_GraphOneNUMA(b *testing.B) { runExp(b, "fig4", "FS") }

// Fig. 11: ingestion time of the non-volatile systems on two
// representative graphs (full seven-graph run via the CLI).
func BenchmarkFig11_IngestNonVolatile(b *testing.B) { runExp(b, "fig11", "TT", "FS") }

// Fig. 12: ingestion time of the volatile systems.
func BenchmarkFig12_IngestVolatile(b *testing.B) { runExp(b, "fig12", "TT", "FS") }

// Fig. 13: PMEM read/write data amount.
func BenchmarkFig13_PMEMTraffic(b *testing.B) { runExp(b, "fig13", "TT", "FS") }

// Fig. 14: query performance (1-hop, BFS, PageRank, CC).
func BenchmarkFig14_Queries(b *testing.B) { runExp(b, "fig14", "FS") }

// Fig. 15: recovery performance.
func BenchmarkFig15_Recovery(b *testing.B) { runExp(b, "fig15", "FS") }

// Fig. 16: fixed per-vertex buffer size sweep.
func BenchmarkFig16_FixedBuffers(b *testing.B) { runExp(b, "fig16", "YW") }

// Fig. 17: hierarchical buffers vs fixed.
func BenchmarkFig17_HierBuffers(b *testing.B) { runExp(b, "fig17", "YW") }

// Fig. 18: NUMA accessing strategies.
func BenchmarkFig18_NUMAStrategies(b *testing.B) { runExp(b, "fig18", "FS") }

// Fig. 19: vertex-buffer pool size sweep.
func BenchmarkFig19_PoolSweep(b *testing.B) { runExp(b, "fig19", "FS") }

// Fig. 20: XPGraph archive-thread sweep.
func BenchmarkFig20_ThreadSweep(b *testing.B) { runExp(b, "fig20", "FS") }

// Table II: dataset statistics.
func BenchmarkTable2_Datasets(b *testing.B) { runExp(b, "table2", "TT", "FS") }

// Table III: memory usage breakdown.
func BenchmarkTable3_MemoryUsage(b *testing.B) { runExp(b, "table3", "TT", "FS") }
