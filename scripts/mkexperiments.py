import re

results = open('/root/repo/results_full.txt').read()
tmpl = open('/root/repo/scripts/EXPERIMENTS.tmpl.md').read()

# Parse sections into (header, columns, rows-of-strings).
sections = {}
cur, buf = None, []
for line in results.splitlines():
    m = re.match(r'^== (\S+): .*==$', line)
    if m:
        if cur:
            sections[cur] = buf
        cur, buf = m.group(1), [line]
    elif cur is not None:
        buf.append(line)
if cur:
    sections[cur] = buf


def block(name):
    lines = [l.rstrip() for l in sections[name]]
    while lines and lines[-1].strip() == '':
        lines.pop()
    return '\n'.join(lines)


def rows(name):
    lines = [l for l in sections[name] if l.strip() and not l.startswith('==') and not l.startswith('note:')]
    cols = lines[0].split()
    out = []
    for l in lines[1:]:
        out.append(dict(zip(cols, l.split())))
    return out


def f(x):
    return float(x.rstrip('x'))

# Derived summaries.
r11 = rows('fig11')
sp = [f(r['XP_speedup_vs_GoP']) for r in r11]
nratio = [f(r['GraphOne-N']) / f(r['GraphOne-P']) for r in r11]
bgain = [100 * (1 - f(r['XPGraph-B']) / f(r['XPGraph'])) for r in r11]
subs = {
    'fig11_range': '%.2f-%.2fx' % (min(sp), max(sp)),
    'fig11_n': '%.1f-%.1fx' % (min(nratio), max(nratio)),
    'fig11_b': '%.0f-%.0f%%' % (min(bgain), max(bgain)),
    'sum_fig11': '%.2f-%.2fx; -N %.1f-%.1fx worse; -B up to %.0f%%' % (min(sp), max(sp), min(nratio), max(nratio), max(bgain)),
}

r3 = rows('fig3')
pd = f(r3[1]['total_s']) / f(r3[0]['total_s'])
subs['sum_fig3'] = '-P %.1fx slower; archiving dominates; w-amp %.1fx' % (pd, f(r3[1]['w_amp']))

r4 = rows('fig4')
pNorm = next(r for r in r4 if r['system'] == 'GraphOne-P' and r['config'] == 'normal')
pBind = next(r for r in r4 if r['system'] == 'GraphOne-P' and r['config'] == 'bind-1-node')
subs['sum_fig4a'] = 'binding speeds -P %.1fx, -D unchanged' % (f(pNorm['ingest_s']) / f(pBind['ingest_s']))
p8 = next(r for r in r4 if r['system'] == 'GraphOne-P' and r['config'] == 'threads=8')
p32 = next(r for r in r4 if r['system'] == 'GraphOne-P' and r['config'] == 'threads=32')
subs['sum_fig4b'] = 'valley at 8; 32 threads %.1fx worse' % (f(p32['ingest_s']) / f(p8['ingest_s']))

r12 = rows('fig12')
ooms = sum(1 for r in r12 if r['GraphOne-D(DO)'] == 'OOM')
subs['sum_fig12'] = '%d graphs OOM on DRAM-only; XPGraph-D faster on most rows' % ooms

r13 = rows('fig13')
by = {}
for r in r13:
    by.setdefault(r['dataset'], {})[r['system']] = r
wred = [f(v['GraphOne-P']['write_GB']) / f(v['XPGraph']['write_GB']) for v in by.values()]
rred = [f(v['GraphOne-P']['read_GB']) / f(v['XPGraph']['read_GB']) for v in by.values()]
subs['sum_fig13'] = 'writes %.1f-%.1fx less, reads %.1f-%.1fx less' % (min(wred), max(wred), min(rred), max(rred))

r14 = rows('fig14')
by14 = {}
for r in r14:
    by14.setdefault(r['dataset'], {})[r['system']] = r
ratios = {}
for alg in ['bfs_s', 'pagerank_s', 'cc_s']:
    vals = []
    for v in by14.values():
        a, b = f(v['GraphOne-P'][alg]), f(v['XPGraph'][alg])
        if b > 0:
            vals.append(a / b)
    ratios[alg] = max(vals)
subs['fig14_range'] = 'up to %.2fx (BFS), %.2fx (PageRank), %.2fx (CC)' % (ratios['bfs_s'], ratios['pagerank_s'], ratios['cc_s'])
subs['sum_fig14'] = subs['fig14_range']

r15 = rows('fig15')
small = [f(r['speedup']) for r in r15 if r['dataset'] in ('TT', 'FS', 'UK', 'YW')]
subs['fig15_range'] = '%.1f-%.1fx' % (min(small), max(small))
allsp = [f(r['speedup']) for r in r15]
subs['sum_fig15'] = '%.1f-%.1fx (real graphs), up to %.0fx (Kron)' % (min(small), max(small), max(allsp))

r16 = rows('fig16')
oom16 = [r['buf_bytes'] for r in r16 if r['ingest_s'] == 'OOM']
subs['sum_fig16'] = 'monotone speed/DRAM trade; OOM at %s B' % (oom16[0] if oom16 else 'none')

r17 = rows('fig17')
fx = next(r for r in r17 if r['config'] == 'fixed-256')
hi = next(r for r in r17 if r['config'] == 'hier-16..256')
frac = f(hi['vbuf_peak_MB']) / f(fx['vbuf_peak_MB'])
subs['fig17_frac'] = '%.0f%%' % (100 * frac)
subs['sum_fig17'] = 'same speed at %.0f%% of fixed-256 DRAM' % (100 * frac)

r18 = rows('fig18')
by18 = {}
for r in r18:
    by18.setdefault(r['dataset'], {})[r['strategy']] = r
gains = []
qg = []
for v in by18.values():
    gains.append(100 * (1 - f(v['NUMA-bind-SG']['ingest_s']) / f(v['no-bind']['ingest_s'])))
    qg.append(100 * (f(v['no-bind']['bfs_s']) / f(v['NUMA-bind-SG']['bfs_s']) - 1))
subs['sum_fig18'] = 'SG ingest +%.0f-%.0f%%; SG BFS up to +%.0f%%; OIG worst for queries' % (min(gains), max(gains), max(qg))

r19 = rows('fig19')
subs['sum_fig19'] = 'gains up to 16 MB, flat past 32 MB'
r20 = rows('fig20')
first, last = f(r20[0]['ingest_s']), f(r20[-1]['ingest_s'])
subs['sum_fig20'] = '%.1fx from 1 to 95 threads, still improving at 95' % (first / last)

for name in sections:
    tmpl = tmpl.replace('{{%s}}' % name, block(name))
for k, v in subs.items():
    tmpl = tmpl.replace('{{%s}}' % k, v)

left = re.findall(r'\{\{[^}]+\}\}', tmpl)
open('/root/repo/EXPERIMENTS.md', 'w').write(tmpl)
print('unresolved placeholders:', left)
