#!/usr/bin/env bash
# Reproduce the full evaluation, mirroring the paper artifact's run.sh:
# unit/property tests, every table and figure at full (1/1024) scale, and
# the quick-scale benchmark suite. Results land in results/.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== tests ==" | tee results/progress.txt
go test ./... 2>&1 | tee results/test_output.txt

echo "== full-scale evaluation (fig3..fig20, tables, extensions) ==" | tee -a results/progress.txt
go run ./cmd/xpgraph bench -exp all -scale 1 | tee results/results_full.txt

echo "== quick-scale benchmarks ==" | tee -a results/progress.txt
go test -bench=. -benchmem ./... 2>&1 | tee results/bench_output.txt

echo "done; see results/" | tee -a results/progress.txt
