#!/usr/bin/env bash
# Pre-PR gate: static checks, formatting, build, and race-detector tests
# over the concurrency-sensitive packages. Run from the repo root:
#
#   bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt"
# Only files tracked by git: stray worktrees/vendored copies don't gate.
unformatted=$(git ls-files '*.go' | xargs gofmt -l)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test -race (server, core)"
go test -race ./internal/server/... ./internal/core/...

echo "check.sh: all green"
