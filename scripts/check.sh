#!/usr/bin/env bash
# Pre-PR gate: static checks, formatting, build, and race-detector tests
# over the concurrency-sensitive packages. Run from the repo root:
#
#   bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== staticcheck"
# Pinned so local runs and CI agree on the finding set. Installed in CI
# (see .github/workflows/ci.yml); locally the step is skipped with a
# warning when the tool is absent, since offline sandboxes cannot fetch
# it and vet/gofmt still gate above.
STATICCHECK_VERSION="2025.1.1"
if command -v staticcheck >/dev/null 2>&1; then
    have=$(staticcheck -version 2>/dev/null || true)
    if [[ "$have" != *"$STATICCHECK_VERSION"* ]]; then
        echo "warning: staticcheck is $have, CI pins $STATICCHECK_VERSION" >&2
    fi
    staticcheck ./...
else
    echo "warning: staticcheck not installed; skipping (CI enforces it at $STATICCHECK_VERSION)" >&2
fi

echo "== gofmt"
# Only files tracked by git: stray worktrees/vendored copies don't gate.
unformatted=$(git ls-files '*.go' | xargs gofmt -l)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test -race -short ./..."
# Short mode caps the exhaustive crash-point sweeps to deterministic
# subsamples; the full sweeps run under plain `go test ./...` (and in CI).
go test -race -short ./...

echo "== crash-point sweeps (capped, native)"
go test -run Crash -short ./internal/crashtest/ ./internal/core/ ./internal/elog/

echo "== cluster router + failover (-race)"
# The partitioned-cluster suite under the race detector: the 4-shard
# differential vs a single store, replica log-shipping convergence,
# leader-kill failover (replica serving / typed degradation), and the
# partition-map stability properties (DESIGN.md §11).
go test -race -run 'TestCluster|TestFailover|TestReplica|TestShutdown|TestEpochVector|TestBreaker' ./internal/cluster/
go test -race -run 'TestHash64|TestOwner|TestSlot|TestSplit|TestNewSlotMap' ./internal/shard/

echo "== chaos differential sweep (capped, -race)"
# Seeded chaos schedules (drops, dups, delays, reorders, partitions) over
# a 4-shard+replicas cluster must converge edge-for-edge and
# label/prop-for-prop with a reference store once the chaos heals
# (DESIGN.md §14.5). Short mode caps the sweep at 2 schedules; a failure
# prints the exact -chaostest.seed replay command. The nightly widens the
# sweep and the workload.
go test -race -short ./internal/chaostest/

echo "== wire bench + benchgate (DESIGN.md §10.3)"
# Regenerate the binary-ingest/varint-density report at the same scale
# as the committed BENCH_6.json and gate it: absolute floors (binary
# decode >= 2x JSON, varint >= 1.5x fixed edges-per-XPLine) plus
# no-regression against the committed baseline. Density numbers come
# from the simulator and are deterministic; the decode speedup is
# host-clock, so the baseline comparison gives it a loose bound.
wire_report=$(mktemp -t bench6.XXXXXX.json)
cluster_report=$(mktemp -t bench7.XXXXXX.json)
soak_report=$(mktemp -t bench8.XXXXXX.json)
prop_report=$(mktemp -t bench9.XXXXXX.json)
trap 'rm -f "$wire_report" "$cluster_report" "$soak_report" "$prop_report"' EXIT
go run ./cmd/xpgraph bench -exp wire -scale 0.5 -json "$wire_report" >/dev/null
go run ./cmd/xpgraph benchgate -new "$wire_report" -baseline BENCH_6.json

echo "== cluster bench + benchgate (DESIGN.md §11)"
# Regenerate the multi-shard ingest-scaling report at the committed
# BENCH_7.json scale and gate it: 4-shard ingest >= 2x a single shard,
# plus no-regression against the committed baseline. All numbers are
# simulated-clock, so at a fixed scale the comparison is exact.
go run ./cmd/xpgraph bench -exp cluster -scale 0.5 -json "$cluster_report" >/dev/null
go run ./cmd/xpgraph benchgate -new "$cluster_report" -baseline BENCH_7.json

echo "== soak harness (short) + adaptive-admission benchgate (DESIGN.md §12)"
# Short soak coverage ran above inside `go test -race -short ./...`
# (deterministic short-mix replay + the fault-storm SLO-failure dump);
# here the bursty-ingest static-vs-adaptive comparison regenerates and
# gates: adaptive p99 >= 1.2x better (or >= 1.2x fewer 429s at equal
# p99), the controller actually tuned, no SLO violations, plus
# no-regression against the committed BENCH_8.json. Full scale, unlike
# the benches above: the builtin horizon is only 2 virtual seconds, and
# a shorter one samples too little burst congestion for the adaptive
# advantage to register. All numbers are simulated-clock, so the gates
# are exact.
go run ./cmd/xpgraph bench -exp soak -json "$soak_report" >/dev/null
go run ./cmd/xpgraph benchgate -new "$soak_report" -baseline BENCH_8.json

echo "== property-graph bench + benchgate (DESIGN.md §13)"
# Regenerate the filter-pushdown / typed-ingest report at the committed
# BENCH_9.json scale and gate it: the filtered 2-hop reads >= 2x fewer
# media lines than read-all-then-filter, typed ingest holds >= 0.8x
# plain throughput, plus no-regression against the committed baseline.
# All numbers are simulated-clock / simulated-media, so at a fixed
# scale the comparison is exact.
go run ./cmd/xpgraph bench -exp prop -scale 0.5 -json "$prop_report" >/dev/null
go run ./cmd/xpgraph benchgate -new "$prop_report" -baseline BENCH_9.json

echo "== media-scrub differentials (short)"
# The UE-injection differential harness (DESIGN.md §9): every read under
# injected media errors matches the oracle or fails typed, scrubs repair
# or honestly refuse, quarantine survives recovery. Fast and
# deterministic, so the whole suite gates here; the nightly workflow
# repeats it under -race -count=5.
go test -short ./internal/scrubtest/

echo "check.sh: all green"
