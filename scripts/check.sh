#!/usr/bin/env bash
# Pre-PR gate: static checks, formatting, build, and race-detector tests
# over the concurrency-sensitive packages. Run from the repo root:
#
#   bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt"
# Only files tracked by git: stray worktrees/vendored copies don't gate.
unformatted=$(git ls-files '*.go' | xargs gofmt -l)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test -race -short ./..."
# Short mode caps the exhaustive crash-point sweeps to deterministic
# subsamples; the full sweeps run under plain `go test ./...` (and in CI).
go test -race -short ./...

echo "== crash-point sweeps (capped, native)"
go test -run Crash -short ./internal/crashtest/ ./internal/core/ ./internal/elog/

echo "check.sh: all green"
