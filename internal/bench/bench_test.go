package bench

import (
	"strconv"
	"strings"
	"testing"
)

// quickCfg keeps unit-test runs fast; shape assertions still hold at this
// scale.
func quickCfg(datasets ...string) Config {
	return Config{EdgeScale: 0.04, Datasets: datasets, ArchiveThreads: 16, QueryThreads: 16}
}

func cellF(t *testing.T, tb Table, row int, col string) float64 {
	t.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", col, tb.Columns)
	}
	v := strings.TrimSuffix(tb.Rows[row][ci], "x")
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("cell %d/%s = %q: %v", row, col, tb.Rows[row][ci], err)
	}
	return f
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig3", "fig4", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "table2", "table3"}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.Name] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %s not registered", w)
		}
	}
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFig3Shape(t *testing.T) {
	tb, err := Run("fig3", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = GraphOne-D, row 1 = GraphOne-P.
	d := cellF(t, tb, 0, "total_s")
	p := cellF(t, tb, 1, "total_s")
	if p <= d*2 {
		t.Errorf("GraphOne-P (%f) should be several times GraphOne-D (%f)", p, d)
	}
	if amp := cellF(t, tb, 1, "w_amp"); amp < 2 {
		t.Errorf("write amplification %f, want heavy", amp)
	}
	// Archiving dominates logging on PMEM.
	if cellF(t, tb, 1, "archive_s") <= cellF(t, tb, 1, "log_s") {
		t.Error("archiving should dominate on PMEM")
	}
}

func TestFig11Shape(t *testing.T) {
	tb, err := Run("fig11", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	goP := cellF(t, tb, 0, "GraphOne-P")
	goN := cellF(t, tb, 0, "GraphOne-N")
	xp := cellF(t, tb, 0, "XPGraph")
	xpB := cellF(t, tb, 0, "XPGraph-B")
	if xp >= goP {
		t.Errorf("XPGraph (%f) should beat GraphOne-P (%f)", xp, goP)
	}
	if goN < goP*4 {
		t.Errorf("GraphOne-N (%f) should be much slower than GraphOne-P (%f)", goN, goP)
	}
	if xpB > xp*1.05 {
		t.Errorf("XPGraph-B (%f) should not be slower than XPGraph (%f)", xpB, xp)
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment sweep")
	}
	tb, err := Run("fig14", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 0 = GraphOne-P, 1 = XPGraph.
	if bfsGo, bfsXp := cellF(t, tb, 0, "bfs_s"), cellF(t, tb, 1, "bfs_s"); bfsXp >= bfsGo {
		t.Errorf("XPGraph BFS (%f) should beat GraphOne-P (%f)", bfsXp, bfsGo)
	}
	if prGo, prXp := cellF(t, tb, 0, "pagerank_s"), cellF(t, tb, 1, "pagerank_s"); prXp >= prGo {
		t.Errorf("XPGraph PageRank (%f) should beat GraphOne-P (%f)", prXp, prGo)
	}
}

func TestFig15Shape(t *testing.T) {
	tb, err := Run("fig15", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	// The replay window covers the whole stream at this tiny scale (no
	// flush-all ever triggers), so the quick-run speedup is a floor; the
	// full-scale run lands near the paper's 5.2-9.5x band.
	if sp := cellF(t, tb, 0, "speedup"); sp < 1.4 {
		t.Errorf("XPGraph recovery speedup %fx, want >= 1.4x (paper: 5.2-9.5x)", sp)
	}
}

func TestFig16And17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment sweep")
	}
	tb, err := Run("fig16", quickCfg("YW"))
	if err != nil {
		t.Fatal(err)
	}
	// Larger buffers => faster ingest (compare 8B vs 256B rows).
	var t8, t256 float64
	for i, r := range tb.Rows {
		switch r[1] {
		case "8":
			t8 = cellF(t, tb, i, "ingest_s")
		case "256":
			t256 = cellF(t, tb, i, "ingest_s")
		}
	}
	if t256 >= t8 {
		t.Errorf("256B buffers (%f) should ingest faster than 8B (%f)", t256, t8)
	}

	tb17, err := Run("fig17", quickCfg("YW"))
	if err != nil {
		t.Fatal(err)
	}
	var fixed256T, fixed256M, hier256T, hier256M float64
	for i, r := range tb17.Rows {
		switch r[1] {
		case "fixed-256":
			fixed256T, fixed256M = cellF(t, tb17, i, "ingest_s"), cellF(t, tb17, i, "vbuf_peak_MB")
		case "hier-16..256":
			hier256T, hier256M = cellF(t, tb17, i, "ingest_s"), cellF(t, tb17, i, "vbuf_peak_MB")
		}
	}
	if hier256M >= fixed256M*0.7 {
		t.Errorf("hierarchical DRAM %fMB should be well under fixed %fMB", hier256M, fixed256M)
	}
	if hier256T > fixed256T*1.3 {
		t.Errorf("hierarchical time %f should stay near fixed %f", hier256T, fixed256T)
	}
}

func TestFig20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment sweep")
	}
	tb, err := Run("fig20", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, tb, 0, "ingest_s")
	last := cellF(t, tb, len(tb.Rows)-1, "ingest_s")
	if last >= first {
		t.Errorf("XPGraph at 95 threads (%f) should beat 1 thread (%f)", last, first)
	}
}

func TestTables(t *testing.T) {
	tb2, err := Run("table2", quickCfg("TT", "FS"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb2.Rows) != 2 {
		t.Fatalf("table2 rows = %d", len(tb2.Rows))
	}
	tb3, err := Run("table3", quickCfg("TT"))
	if err != nil {
		t.Fatal(err)
	}
	if cellF(t, tb3, 0, "pblk_MB") <= 0 {
		t.Error("pblk usage must be positive")
	}
	if s := tb3.String(); !strings.Contains(s, "table3") {
		t.Error("String() should include the experiment name")
	}
}

func TestCSVRendering(t *testing.T) {
	tb := Table{Exp: "x", Columns: []string{"a", "b"},
		Rows: [][]string{{"1", "two, \"quoted\""}}}
	got := tb.CSV()
	want := "a,b\n1,\"two, \"\"quoted\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFig4Shape(t *testing.T) {
	tb, err := Run("fig4", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	var pNormal, pBound, p8, p32 float64
	for i, r := range tb.Rows {
		switch {
		case r[1] == "GraphOne-P" && r[2] == "normal":
			pNormal = cellF(t, tb, i, "ingest_s")
		case r[1] == "GraphOne-P" && r[2] == "bind-1-node":
			pBound = cellF(t, tb, i, "ingest_s")
		case r[1] == "GraphOne-P" && r[2] == "threads=8":
			p8 = cellF(t, tb, i, "ingest_s")
		case r[1] == "GraphOne-P" && r[2] == "threads=32":
			p32 = cellF(t, tb, i, "ingest_s")
		}
	}
	if pBound >= pNormal {
		t.Errorf("bound GraphOne-P (%f) should beat unbound (%f)", pBound, pNormal)
	}
	if p32 <= p8 {
		t.Errorf("GraphOne-P at 32 threads (%f) should be slower than at 8 (%f)", p32, p8)
	}
}

func TestFig19Shape(t *testing.T) {
	tb, err := Run("fig19", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	var t1, t32 float64
	for i, r := range tb.Rows {
		switch r[1] {
		case "1":
			t1 = cellF(t, tb, i, "ingest_s")
		case "32":
			t32 = cellF(t, tb, i, "ingest_s")
		}
	}
	if t32 >= t1 {
		t.Errorf("32MB pool (%f) should beat 1MB pool (%f)", t32, t1)
	}
}
