package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/xpsim"
)

func init() {
	register("wire", "Binary batch ingest protocol + delta-varint adjacency density", wire)
}

// WireFormatStats is one adjacency format's density measurement after
// ingest + flush + whole-store compaction.
type WireFormatStats struct {
	// EdgesPerLine is live records per 256 B XPLine of block footprint
	// (headers included — the real on-media cost).
	EdgesPerLine float64 `json:"edges_per_line"`
	// PayloadBytesPerEdge is the encoded payload cost of one record.
	PayloadBytesPerEdge float64 `json:"payload_bytes_per_edge"`
	// MediaWriteBytesPerEdge is total simulated media write traffic of
	// the whole ingest+flush+compact run, per input edge.
	MediaWriteBytesPerEdge float64 `json:"media_write_bytes_per_edge"`
}

// WireReport is the machine-readable result behind BENCH_6.json.
type WireReport struct {
	Dataset string `json:"dataset"`
	Edges   int64  `json:"edges"`
	// Decode throughput of the two ingest wire formats (host clock,
	// same machine for both, so only the ratio is meaningful).
	JSONIngestEdgesPerSec float64 `json:"json_ingest_edges_per_sec"`
	BinIngestEdgesPerSec  float64 `json:"bin_ingest_edges_per_sec"`
	BinSpeedup            float64 `json:"bin_speedup"`
	// BinBytesPerEdge / JSONBytesPerEdge compare the request body sizes.
	JSONBytesPerEdge float64 `json:"json_bytes_per_edge"`
	BinBytesPerEdge  float64 `json:"bin_bytes_per_edge"`

	Fixed  WireFormatStats `json:"fixed"`
	Varint WireFormatStats `json:"varint"`
	// DensityGain is varint edges-per-line over fixed edges-per-line.
	DensityGain float64 `json:"density_gain"`
}

// jsonBodyFor renders edges as the POST /v1/edges JSON request body.
func jsonBodyFor(edges []graph.Edge) []byte {
	type edgeJSON struct {
		Src uint32 `json:"src"`
		Dst uint32 `json:"dst"`
	}
	var body struct {
		Edges []edgeJSON `json:"edges"`
	}
	body.Edges = make([]edgeJSON, len(edges))
	for i, e := range edges {
		body.Edges[i] = edgeJSON{Src: e.Src, Dst: e.Dst}
	}
	buf, err := json.Marshal(body)
	if err != nil {
		panic(err) // static shape; cannot fail
	}
	return buf
}

// decodeRate times fn over the body a few times and reports the best
// edges-per-second rate (host clock; the decoders are pure CPU).
func decodeRate(nEdges int, rounds int, fn func() error) (float64, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best <= 0 {
		best = time.Nanosecond
	}
	return float64(nEdges) / best.Seconds(), nil
}

// wire regenerates the PR-6 evaluation: binary batch decode throughput
// vs the JSON handler path, and delta-varint adjacency density vs the
// fixed 4-byte layout on a power-law ingest.
func wire(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "TT")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "wire",
		Title: "Binary batch ingest + delta-varint adjacency blocks",
		Columns: []string{"dataset", "edges", "json_Medges_s", "bin_Medges_s", "bin_speedup",
			"fixed_edges_per_line", "varint_edges_per_line", "density_gain",
			"fixed_wr_B_edge", "varint_wr_B_edge"},
		Notes: []string{
			"decode throughput is host-clock (transport decode only); density is simulated media layout",
			"edges_per_line = live records per 256 B XPLine of adjacency block footprint after compaction",
		},
	}
	var reports []WireReport

	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		rep := WireReport{Dataset: ds.Name, Edges: int64(len(edges))}

		// Transport decode throughput: the same edge stream through the
		// streaming JSON decoder and the binary batch decoder, both into
		// a reused destination buffer.
		jsonBody := jsonBodyFor(edges)
		binBody := ingest.EncodeBatch(edges, true)
		rep.JSONBytesPerEdge = float64(len(jsonBody)) / float64(len(edges))
		rep.BinBytesPerEdge = float64(len(binBody)) / float64(len(edges))
		dst := make([]graph.Edge, 0, len(edges))
		const rounds = 3
		rep.JSONIngestEdgesPerSec, err = decodeRate(len(edges), rounds, func() error {
			var derr error
			dst, derr = ingest.DecodeJSONEdges(bytes.NewReader(jsonBody), dst[:0], false, 0)
			return derr
		})
		if err != nil {
			return Table{}, fmt.Errorf("wire: json decode: %w", err)
		}
		rep.BinIngestEdgesPerSec, err = decodeRate(len(edges), rounds, func() error {
			var derr error
			dst, derr = ingest.DecodeBatch(bytes.NewReader(binBody), dst[:0], 0)
			return derr
		})
		if err != nil {
			return Table{}, fmt.Errorf("wire: binary decode: %w", err)
		}
		rep.BinSpeedup = rep.BinIngestEdgesPerSec / rep.JSONIngestEdgesPerSec

		// Adjacency density: ingest + flush + whole-store compaction on
		// both block formats, measuring the live layout and the total
		// media write traffic.
		for _, varint := range []bool{false, true} {
			s, m, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) {
				o.CompressedAdj = varint
			})
			if err != nil {
				return Table{}, err
			}
			m.ResetStats()
			if _, err := s.Ingest(edges); err != nil {
				return Table{}, err
			}
			if err := s.FlushAllVbufs(); err != nil {
				return Table{}, err
			}
			ctx := xpsim.NewCtx(xpsim.NodeUnbound)
			if err := s.CompactAllAdjs(ctx); err != nil {
				return Table{}, err
			}
			ls := s.AdjLayout(ctx)
			st := m.TotalStats()
			fs := WireFormatStats{
				MediaWriteBytesPerEdge: float64(st.MediaWriteBytes()) / float64(len(edges)),
			}
			if ls.Records > 0 {
				fs.PayloadBytesPerEdge = float64(ls.PayloadBytes) / float64(ls.Records)
			}
			if ls.BlockBytes > 0 {
				fs.EdgesPerLine = float64(ls.Records) * float64(xpsim.XPLineSize) / float64(ls.BlockBytes)
			}
			if varint {
				rep.Varint = fs
			} else {
				rep.Fixed = fs
			}
		}
		if rep.Fixed.EdgesPerLine > 0 {
			rep.DensityGain = rep.Varint.EdgesPerLine / rep.Fixed.EdgesPerLine
		}

		t.Rows = append(t.Rows, []string{
			ds.Name, fmt.Sprintf("%d", len(edges)),
			fmt.Sprintf("%.2f", rep.JSONIngestEdgesPerSec/1e6),
			fmt.Sprintf("%.2f", rep.BinIngestEdgesPerSec/1e6),
			fmt.Sprintf("%.2fx", rep.BinSpeedup),
			fmt.Sprintf("%.1f", rep.Fixed.EdgesPerLine),
			fmt.Sprintf("%.1f", rep.Varint.EdgesPerLine),
			fmt.Sprintf("%.2fx", rep.DensityGain),
			fmt.Sprintf("%.1f", rep.Fixed.MediaWriteBytesPerEdge),
			fmt.Sprintf("%.1f", rep.Varint.MediaWriteBytesPerEdge),
		})
		reports = append(reports, rep)
	}
	t.JSON = map[string]any{"experiment": "wire", "reports": reports}
	return t, nil
}
