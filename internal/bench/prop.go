package bench

import (
	"fmt"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prop"
	"repro/internal/xpsim"
)

func init() {
	register("prop", "Typed edges + property columns: filter pushdown media savings and typed-ingest overhead", propExp)
}

// propHotMod labels one edge in propHotMod with the hot label the
// filtered traversal selects on; the rest split across two cold labels.
const propHotMod = 8

// propRoots is how many traversal roots the k-hop measurements
// aggregate over (spread deterministically across the vertex space so
// the numbers do not hinge on one root's degree).
const propRoots = 64

// PropReport is the machine-readable result behind BENCH_9.json. All
// numbers are simulated-clock / simulated-media, so at a fixed scale
// they are deterministic.
type PropReport struct {
	Dataset string `json:"dataset"`
	Edges   int64  `json:"edges"`
	// HotLabelFraction is the selectivity of the filtered traversal's
	// label (fraction of edges carrying it).
	HotLabelFraction float64 `json:"hot_label_fraction"`
	Roots            int     `json:"roots"`

	// Filtered 2-hop with the Types predicate pushed into adjacency
	// decode, vs the same traversal reading every edge and filtering
	// post-hoc. Each side runs on its own identically-built store so
	// neither inherits the other's XPBuffer warmth.
	FilteredMediaReadLines int64 `json:"filtered_media_read_lines"`
	ReadAllMediaReadLines  int64 `json:"read_all_media_read_lines"`
	// MediaReadSavings is read-all lines over filtered lines (the PR-9
	// gate wants >= 2x).
	MediaReadSavings float64 `json:"media_read_savings"`
	FilteredReached  int64   `json:"filtered_reached"`
	ReadAllReached   int64   `json:"read_all_reached"`

	// Ingest throughput on the simulated clock, final flush included —
	// the typed path pays for column-log appends at every flush point.
	PlainIngestMEdgesPerSec float64 `json:"plain_ingest_medges_per_sim_sec"`
	TypedIngestMEdgesPerSec float64 `json:"typed_ingest_medges_per_sim_sec"`
	// TypedIngestRatio is typed over plain (the PR-9 gate wants >= 0.8).
	TypedIngestRatio float64 `json:"typed_ingest_ratio"`
}

// propLabelsFor assigns the benchmark labeling: edge i carries the hot
// label when i%propHotMod == 0, otherwise one of two cold labels.
func propLabelsFor(n int, hot, coldA, coldB uint16) []uint16 {
	labels := make([]uint16, n)
	for i := range labels {
		switch {
		case i%propHotMod == 0:
			labels[i] = hot
		case i%2 == 0:
			labels[i] = coldA
		default:
			labels[i] = coldB
		}
	}
	return labels
}

// propRootsFor spreads traversal roots deterministically over the
// vertex space (Weyl sequence on a large odd multiplier).
func propRootsFor(numV uint32) []graph.VID {
	roots := make([]graph.VID, propRoots)
	for i := range roots {
		roots[i] = graph.VID((uint64(i+1) * 2654435761) % uint64(numV))
	}
	return roots
}

// buildTypedStore ingests the typed workload into a fresh
// property-enabled store and flushes it so queries read PMEM adjacency,
// not resident vertex buffers.
func buildTypedStore(edges []graph.Edge, labels []uint16, ds gen.Dataset, cfg Config) (*core.Store, *xpsim.Machine, core.IngestReport, error) {
	s, m, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) {
		o.Props = true
		// Every edge in this workload carries a non-default label (one
		// 16 B column record each; 15 ride per 256 B block): size the
		// column log for the stream instead of the 1 MiB default.
		o.PropLogBytes = int64(len(edges))*20 + (1 << 20)
	})
	if err != nil {
		return nil, nil, core.IngestReport{}, err
	}
	for _, name := range []string{"hot", "cold-a", "cold-b"} {
		if _, err := s.RegisterLabel(name); err != nil {
			return nil, nil, core.IngestReport{}, err
		}
	}
	if _, err := s.IngestTyped(edges, labels); err != nil {
		return nil, nil, core.IngestReport{}, err
	}
	if err := s.FlushAllVbufs(); err != nil {
		return nil, nil, core.IngestReport{}, err
	}
	return s, m, s.Report(), nil
}

// khopLines runs the 2-hop traversal from every root under f and
// reports (media lines read, vertices reached). Stats are reset first,
// so the count is the traversal's own traffic.
func khopLines(e *analytics.Engine, m *xpsim.Machine, roots []graph.VID, f prop.Filter) (int64, int64, error) {
	m.ResetStats()
	var reached int64
	for _, root := range roots {
		res, err := e.KHopFiltered(root, 2, f)
		if err != nil {
			return 0, 0, err
		}
		reached += res.Reached
	}
	return m.TotalStats().MediaReadLines, reached, nil
}

// propExp regenerates the PR-9 evaluation: a typed 2-hop with the label
// filter pushed into adjacency decode against read-all-then-filter, and
// typed-edge ingest against the plain pipeline. Pushdown saves media by
// shrinking the frontier — a pruned hop-1 neighbor's adjacency is never
// read at hop 2; the post-hoc filter in the baseline costs no media (the
// label index is DRAM), so the measured gap is pure frontier shrinkage.
func propExp(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "TT")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "prop",
		Title: "Typed edges + property columns: pushdown vs read-all-then-filter, typed ingest overhead",
		Columns: []string{"dataset", "edges", "hot_frac",
			"filtered_rd_lines", "readall_rd_lines", "rd_savings",
			"plain_Medges_s", "typed_Medges_s", "typed_ratio"},
		Notes: []string{
			"rd_lines = simulated media XPLines read by a 2-hop from 64 roots (cold store per side)",
			"pushdown prunes the frontier during adjacency decode; read-all expands everything and filters in DRAM",
			"ingest rates are simulated-clock (final flush included); typed adds column-log appends at flush points",
		},
	}
	var reports []PropReport

	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		labels := propLabelsFor(len(edges), 1, 2, 3)
		rep := PropReport{
			Dataset:          ds.Name,
			Edges:            int64(len(edges)),
			HotLabelFraction: 1.0 / float64(propHotMod),
			Roots:            propRoots,
		}
		roots := propRootsFor(ds.NumVertices())

		// Filtered 2-hop on a typed store: the hot-label predicate rides
		// down into VisitOutTyped.
		sF, mF, typedRep, err := buildTypedStore(edges, labels, ds, cfg)
		if err != nil {
			return Table{}, fmt.Errorf("prop: typed build: %w", err)
		}
		eF := analytics.NewEngine(sF, &mF.Lat, cfg.QueryThreads)
		rep.FilteredMediaReadLines, rep.FilteredReached, err =
			khopLines(eF, mF, roots, prop.Filter{Types: []uint16{1}})
		if err != nil {
			return Table{}, fmt.Errorf("prop: filtered khop: %w", err)
		}

		// Read-all-then-filter on an identically-built store: expand every
		// edge (empty filter), filter afterwards against the DRAM label
		// index (no media charge — the baseline's media cost is the
		// traversal itself).
		sA, mA, _, err := buildTypedStore(edges, labels, ds, cfg)
		if err != nil {
			return Table{}, fmt.Errorf("prop: baseline build: %w", err)
		}
		eA := analytics.NewEngine(sA, &mA.Lat, cfg.QueryThreads)
		rep.ReadAllMediaReadLines, rep.ReadAllReached, err =
			khopLines(eA, mA, roots, prop.Filter{})
		if err != nil {
			return Table{}, fmt.Errorf("prop: read-all khop: %w", err)
		}
		if rep.FilteredMediaReadLines > 0 {
			rep.MediaReadSavings = float64(rep.ReadAllMediaReadLines) / float64(rep.FilteredMediaReadLines)
		}

		// Typed ingest throughput came from the filtered store's build;
		// plain runs the same stream through a property-less store.
		sP, _, err := newXPGraph(edges, ds.NumVertices(), cfg)
		if err != nil {
			return Table{}, err
		}
		if _, err := sP.Ingest(edges); err != nil {
			return Table{}, err
		}
		if err := sP.FlushAllVbufs(); err != nil {
			return Table{}, err
		}
		plainRep := sP.Report()
		if ns := plainRep.TotalNs(); ns > 0 {
			rep.PlainIngestMEdgesPerSec = float64(len(edges)) / (float64(ns) / 1e9) / 1e6
		}
		if ns := typedRep.TotalNs(); ns > 0 {
			rep.TypedIngestMEdgesPerSec = float64(len(edges)) / (float64(ns) / 1e9) / 1e6
		}
		if rep.PlainIngestMEdgesPerSec > 0 {
			rep.TypedIngestRatio = rep.TypedIngestMEdgesPerSec / rep.PlainIngestMEdgesPerSec
		}

		t.Rows = append(t.Rows, []string{
			ds.Name, fmt.Sprintf("%d", len(edges)),
			fmt.Sprintf("%.3f", rep.HotLabelFraction),
			fmt.Sprintf("%d", rep.FilteredMediaReadLines),
			fmt.Sprintf("%d", rep.ReadAllMediaReadLines),
			fmt.Sprintf("%.2fx", rep.MediaReadSavings),
			fmt.Sprintf("%.2f", rep.PlainIngestMEdgesPerSec),
			fmt.Sprintf("%.2f", rep.TypedIngestMEdgesPerSec),
			fmt.Sprintf("%.3f", rep.TypedIngestRatio),
		})
		reports = append(reports, rep)
	}
	t.JSON = map[string]any{"experiment": "prop", "reports": reports}
	return t, nil
}
