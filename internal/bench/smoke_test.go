package bench

import "testing"

// TestAllExperimentsSmoke runs every registered experiment at a tiny scale
// so each code path (including the extension experiments and error
// handling) executes in CI. Shape assertions live in the dedicated tests;
// this one only demands successful, non-empty output.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep skipped in -short mode")
	}
	cfg := Config{EdgeScale: 0.01, ArchiveThreads: 8, QueryThreads: 8,
		Datasets: []string{"TT"}}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			dss := cfg
			switch e.Name {
			case "fig16", "fig17":
				dss.Datasets = []string{"YW"}
			}
			tb, err := e.Run(dss.withDefaults())
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			if tb.String() == "" || tb.CSV() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}
