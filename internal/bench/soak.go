package bench

import (
	"fmt"
	"time"

	"repro/internal/soak"
)

func init() {
	register("soak", "Adaptive vs static admission under the bursty-ingest soak", soakExp)
}

// SoakReport is one mode's run of the bursty-ingest soak scenario —
// the rows behind BENCH_8.json. The gate compares the static and
// adaptive rows: the AIMD controller must cut the p99 read latency by
// >= 1.2x (or shed >= 1.2x fewer 429s at equal p99).
type SoakReport struct {
	Mode     string  `json:"mode"` // "static" or "adaptive"
	Scenario string  `json:"scenario"`
	Seed     uint64  `json:"seed"`
	HorizonS float64 `json:"horizon_s"`

	Reads         int64   `json:"reads"`
	EdgesAccepted int64   `json:"edges_accepted"`
	ReadP50Us     float64 `json:"read_p50_us"`
	ReadP95Us     float64 `json:"read_p95_us"`
	ReadP99Us     float64 `json:"read_p99_us"`
	WriteP99Ms    float64 `json:"write_p99_ms"`
	Shed429       int64   `json:"shed_429"`
	WriteParts    int64   `json:"write_parts"`
	Violations    int     `json:"violations"`

	// TuneDecreases/TuneIncreases are the AIMD controller's steps (zero
	// in static mode, and proof the adaptive run actually tuned).
	TuneDecreases int64 `json:"tune_decreases"`
	TuneIncreases int64 `json:"tune_increases"`
}

// soakExp runs the bursty-ingest soak scenario twice — static pipeline
// defaults, then the AIMD adaptive admission controller — on identical
// seeds and virtual load, and reports both. EdgeScale scales the
// virtual horizon (the warm load stays fixed: it positions the run in
// the store's spike-free steady state; see soak.BurstyIngest).
func soakExp(cfg Config) (Table, error) {
	sc, err := soak.ByName(soak.BurstyIngest)
	if err != nil {
		return Table{}, err
	}
	if cfg.EdgeScale != 1 {
		sc.Horizon = time.Duration(float64(sc.Horizon) * cfg.EdgeScale)
		if sc.Horizon < time.Second {
			sc.Horizon = time.Second
		}
	}

	t := Table{Exp: "soak",
		Title:   "Adaptive vs static admission under the bursty-ingest soak",
		Columns: []string{"mode", "reads", "p50_us", "p95_us", "p99_us", "wr_p99_ms", "shed", "tuned"},
		Notes: []string{
			"one shard under periodic ingest bursts; latencies are simulated (lock wait + media cost)",
			"identical seed and virtual load in both modes; only the admission policy differs",
		},
	}
	var reports []SoakReport
	for _, mode := range []string{"static", "adaptive"} {
		sc.Adaptive = mode == "adaptive"
		rep, err := soak.Run(sc, "")
		if err != nil {
			return Table{}, fmt.Errorf("soak %s: %w", mode, err)
		}
		r := SoakReport{
			Mode:          mode,
			Scenario:      rep.Scenario,
			Seed:          rep.Seed,
			HorizonS:      rep.HorizonS,
			Reads:         rep.Reads,
			EdgesAccepted: rep.EdgesAccepted,
			ReadP50Us:     rep.ReadP50Us,
			ReadP95Us:     rep.ReadP95Us,
			ReadP99Us:     rep.ReadP99Us,
			WriteP99Ms:    rep.WriteP99Ms,
			Shed429:       rep.Shed429,
			WriteParts:    rep.WriteParts,
			Violations:    len(rep.Violations),
		}
		for _, tr := range rep.FinalTuning {
			r.TuneDecreases += tr.Decreases
			r.TuneIncreases += tr.Increases
		}
		reports = append(reports, r)
		t.Rows = append(t.Rows, []string{
			mode, fmt.Sprintf("%d", r.Reads),
			fmt.Sprintf("%.2f", r.ReadP50Us),
			fmt.Sprintf("%.2f", r.ReadP95Us),
			fmt.Sprintf("%.2f", r.ReadP99Us),
			fmt.Sprintf("%.2f", r.WriteP99Ms),
			fmt.Sprintf("%d", r.Shed429),
			fmt.Sprintf("%d/%d", r.TuneDecreases, r.TuneIncreases),
		})
	}
	t.JSON = map[string]any{"experiment": "soak", "reports": reports}
	return t, nil
}
