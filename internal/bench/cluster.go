package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pmem"
)

func init() {
	register("cluster", "Partitioned multi-shard ingest scaling (1 vs 4 shards)", clusterExp)
}

// clusterShardCounts is the scaling sweep; the acceptance gate reads the
// largest one (4 shards >= 2x a single shard).
var clusterShardCounts = []int{1, 2, 4}

// ClusterReport is one (dataset, shard count) row behind BENCH_7.json.
type ClusterReport struct {
	Dataset string `json:"dataset"`
	Shards  int    `json:"shards"`
	Edges   int64  `json:"edges"`
	// SimSeconds is the summed simulated time of synchronized ingest
	// rounds: each round routes one chunk and costs the slowest shard's
	// application (shards are independent machines applying in parallel).
	SimSeconds   float64 `json:"sim_seconds"`
	MEdgesPerSec float64 `json:"medges_per_sec"`
	// Speedup is this shard count's ingest throughput over the 1-shard
	// run of the same dataset.
	Speedup float64 `json:"speedup"`
}

// newClusterStores builds one leader store per shard, each on its own
// two-socket machine — a shard is its own simulated PM box, which is
// what makes the scaling claim honest: adding shards adds devices.
func newClusterStores(n int, edges int64, numV uint32, cfg Config) ([]*core.Store, error) {
	perShard := edges/int64(n) + 1
	stores := make([]*core.Store, n)
	for i := range stores {
		m := newMachine(perShard)
		s, err := core.New(m, pmem.NewHeap(m), nil, core.Options{
			Name:           fmt.Sprintf("cl%d", i),
			NumVertices:    numV,
			ArchiveThreads: cfg.ArchiveThreads,
			NUMA:           core.NUMASubgraph,
			AdjBytes:       adjBytesFor(perShard, m.Sockets),
		})
		if err != nil {
			return nil, err
		}
		s.SetTracer(cfg.Tracer)
		stores[i] = s
	}
	return stores, nil
}

// clusterExp measures routed ingest throughput of the partitioned
// cluster at 1, 2 and 4 shards over the same edge stream. The workload
// is the bulk-load path (IngestLocal: split by the partition map, apply
// per shard, publish) driven in synchronized chunks, so a round costs
// the slowest shard — exactly the parallelism the hash-slot partition
// map is supposed to buy. Replication is off: followers apply
// asynchronously on their own machines and do not sit on the ingest
// path's simulated clock.
func clusterExp(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "TT")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "cluster",
		Title:   "Partitioned multi-shard ingest scaling",
		Columns: []string{"dataset", "shards", "edges", "sim_s", "Medges_s", "speedup"},
		Notes: []string{
			"each shard is its own simulated two-socket PM machine; rounds are synchronized, so a round costs the slowest shard",
			"speedup is vs the 1-shard run of the same dataset on the same machine model",
		},
	}
	var reports []ClusterReport

	const chunk = 1 << 16
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		var baseSec float64
		for _, nsh := range clusterShardCounts {
			stores, err := newClusterStores(nsh, int64(len(edges)), ds.NumVertices(), cfg)
			if err != nil {
				return Table{}, err
			}
			cl, err := cluster.New(stores, cluster.Config{})
			if err != nil {
				return Table{}, err
			}
			if err := cl.Start(); err != nil {
				return Table{}, err
			}
			var simNs int64
			for off := 0; off < len(edges); off += chunk {
				end := off + chunk
				if end > len(edges) {
					end = len(edges)
				}
				ns, err := cl.IngestLocal(edges[off:end])
				if err != nil {
					cl.Close()
					return Table{}, fmt.Errorf("cluster: %d shards: %w", nsh, err)
				}
				simNs += ns
			}
			cl.Close()

			rep := ClusterReport{
				Dataset:    ds.Name,
				Shards:     nsh,
				Edges:      int64(len(edges)),
				SimSeconds: float64(simNs) / 1e9,
			}
			if simNs > 0 {
				rep.MEdgesPerSec = float64(len(edges)) / (float64(simNs) / 1e9) / 1e6
			}
			if nsh == 1 {
				baseSec = rep.SimSeconds
			}
			if rep.SimSeconds > 0 {
				rep.Speedup = baseSec / rep.SimSeconds
			}
			reports = append(reports, rep)
			t.Rows = append(t.Rows, []string{
				ds.Name, fmt.Sprintf("%d", nsh), fmt.Sprintf("%d", len(edges)),
				fmt.Sprintf("%.3f", rep.SimSeconds),
				fmt.Sprintf("%.2f", rep.MEdgesPerSec),
				fmt.Sprintf("%.2fx", rep.Speedup),
			})
		}
	}
	t.JSON = map[string]any{"experiment": "cluster", "reports": reports}
	return t, nil
}
