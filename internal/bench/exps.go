package bench

import (
	"errors"
	"fmt"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphone"
	"repro/internal/mem"
	"repro/internal/view"
	"repro/internal/xpsim"
)

func init() {
	register("fig3", "GraphOne-D vs GraphOne-P: phase times and PMEM amounts (motivation)", fig3)
	register("fig4", "NUMA effect and archive-thread sweep for GraphOne (motivation)", fig4)
	register("fig11", "Graph ingestion time, non-volatile systems", fig11)
	register("fig12", "Graph ingestion time, volatile systems (DRAM-only and Memory Mode)", fig12)
	register("fig13", "PMEM read and write data amount during ingestion", fig13)
	register("fig14", "Graph query performance (1-hop, BFS, PageRank, CC)", fig14)
	register("fig15", "Graph recovery performance", fig15)
	register("fig16", "Fixed per-vertex buffer size sweep (time and DRAM demand)", fig16)
	register("fig17", "Hierarchical buffer max-size sweep vs fixed buffers", fig17)
	register("fig18", "NUMA-friendly accessing strategies (ingest and BFS)", fig18)
	register("fig19", "Vertex-buffer memory pool size sweep", fig19)
	register("fig20", "XPGraph archive-thread sweep", fig20)
	register("table2", "Dataset statistics (scaled stand-ins)", table2)
	register("table3", "Memory usage breakdown of XPGraph", table3)
	register("ablation", "XPGraph technique ablation (extension)", ablation)
	register("ext-ssd", "SSD-supported XPGraph prototype (extension)", extSSD)
	register("ext-hotcold", "Hot vs flushed vertex-buffer query cost (extension)", extHotCold)
	register("ext-evolving", "Mixed add/delete update stream (extension)", extEvolving)
}

// ---- Fig. 3: motivation, GraphOne-D vs -P ----

func fig3(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig3", Title: "GraphOne on DRAM vs PMEM: phase split and PMEM traffic (FS)",
		Columns: []string{"dataset", "system", "log_s", "archive_s", "total_s", "pmem_read_GB", "pmem_write_GB", "w_amp"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		for _, v := range []graphone.Variant{graphone.VariantD, graphone.VariantP} {
			s, m, err := newGraphOne(edges, ds.NumVertices(), cfg, v, false, 0)
			if err != nil {
				return Table{}, err
			}
			m.ResetStats()
			rep, err := s.Ingest(edges)
			if err != nil {
				return Table{}, err
			}
			st := m.TotalStats()
			t.Rows = append(t.Rows, []string{ds.Name, v.String(), secs(rep.LogNs), secs(rep.ArchiveNs),
				secs(rep.TotalNs()), gb(st.MediaReadBytes()), gb(st.MediaWriteBytes()),
				fmt.Sprintf("%.2f", st.WriteAmplification())})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.3: archiving dominates on PMEM; ~10x read and ~8.6x write amplification",
		"logging is sequential and stays cheap on both media")
	return t, nil
}

// ---- Fig. 4: NUMA effect and thread sweep ----

func fig4(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig4", Title: "GraphOne NUMA binding and archive-thread scaling (FS)",
		Columns: []string{"dataset", "system", "config", "ingest_s"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		run := func(v graphone.Variant, bind bool, threads int) (int64, error) {
			s, _, err := newGraphOne(edges, ds.NumVertices(), cfg, v, bind, threads)
			if err != nil {
				return 0, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return 0, err
			}
			return rep.TotalNs(), nil
		}
		// 4a: normal vs bound to one node.
		for _, v := range []graphone.Variant{graphone.VariantD, graphone.VariantP} {
			for _, bind := range []bool{false, true} {
				ns, err := run(v, bind, 0)
				if err != nil {
					return Table{}, err
				}
				cfgName := "normal"
				if bind {
					cfgName = "bind-1-node"
				}
				t.Rows = append(t.Rows, []string{ds.Name, v.String(), cfgName, secs(ns)})
			}
		}
		// 4b: thread sweep.
		for _, v := range []graphone.Variant{graphone.VariantD, graphone.VariantP} {
			for _, th := range []int{1, 2, 4, 8, 16, 32} {
				ns, err := run(v, false, th)
				if err != nil {
					return Table{}, err
				}
				t.Rows = append(t.Rows, []string{ds.Name, v.String(), fmt.Sprintf("threads=%d", th), secs(ns)})
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.4a: NUMA effects much larger for GraphOne-P than GraphOne-D",
		"paper Fig.4b: GraphOne-P degrades past 8 archiving threads")
	return t, nil
}

// ---- Fig. 11: ingestion, non-volatile systems ----

func fig11(cfg Config) (Table, error) {
	dss, err := datasets(cfg, allNames...)
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig11", Title: "Ingestion time, non-volatile systems",
		Columns: []string{"dataset", "GraphOne-P", "GraphOne-N", "XPGraph", "XPGraph-B", "XP_speedup_vs_GoP"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		var goP, goN, xp, xpB int64
		{
			s, _, err := newGraphOne(edges, ds.NumVertices(), cfg, graphone.VariantP, false, 0)
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return Table{}, err
			}
			goP = rep.TotalNs()
		}
		{
			s, _, err := newGraphOne(edges, ds.NumVertices(), cfg, graphone.VariantN, false, 0)
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return Table{}, err
			}
			goN = rep.TotalNs()
		}
		for _, battery := range []bool{false, true} {
			b := battery
			s, _, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) { o.Battery = b })
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return Table{}, err
			}
			if cfg.Tracer != nil {
				// Complete the pipeline so the trace shows the full
				// logging/buffering/flushing split (Fig. 3a); the
				// reported ingestion time above is already captured.
				if err := s.FlushAllVbufs(); err != nil {
					return Table{}, err
				}
			}
			if battery {
				xpB = rep.TotalNs()
			} else {
				xp = rep.TotalNs()
			}
		}
		t.Rows = append(t.Rows, []string{ds.Name, secs(goP), secs(goN), secs(xp), secs(xpB), ratio(goP, xp)})
	}
	t.Notes = append(t.Notes,
		"paper Fig.11: XPGraph 3.01-3.95x faster than GraphOne-P; GraphOne-N an order of magnitude slower; XPGraph-B up to 23% over XPGraph")
	return t, nil
}

// ---- Fig. 12: ingestion, volatile systems ----

func fig12(cfg Config) (Table, error) {
	dss, err := datasets(cfg, allNames...)
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig12", Title: "Ingestion time, volatile systems (DO=DRAM-only, MM=memory mode)",
		Columns: []string{"dataset", "GraphOne-D(DO)", "XPGraph-D(DO)", "GraphOne-D(MM)", "XPGraph-D(MM)"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		cell := func(run func() (int64, error)) string {
			ns, err := run()
			if err != nil {
				if errors.Is(err, mem.ErrOOM) {
					return "OOM"
				}
				return "err:" + err.Error()
			}
			return secs(ns)
		}
		goDO := cell(func() (int64, error) {
			s, _, err := newGraphOne(edges, ds.NumVertices(), cfg, graphone.VariantD, false, 0)
			if err != nil {
				return 0, err
			}
			rep, err := s.Ingest(edges)
			return rep.TotalNs(), err
		})
		xpDO := cell(func() (int64, error) {
			s, _, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) {
				o.Medium = core.MediumDRAM
				o.NUMA = core.NUMANone
				o.PoolMax = ScaledDRAMBytes / 2
			})
			if err != nil {
				return 0, err
			}
			rep, err := s.Ingest(edges)
			return rep.TotalNs(), err
		})
		goMM := cell(func() (int64, error) {
			s, _, err := newGraphOne(edges, ds.NumVertices(), cfg, graphone.VariantMM, false, 0)
			if err != nil {
				return 0, err
			}
			rep, err := s.Ingest(edges)
			return rep.TotalNs(), err
		})
		xpMM := cell(func() (int64, error) {
			s, _, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) {
				o.Medium = core.MediumMemoryMode
				o.NUMA = core.NUMANone
			})
			if err != nil {
				return 0, err
			}
			rep, err := s.Ingest(edges)
			return rep.TotalNs(), err
		})
		t.Rows = append(t.Rows, []string{ds.Name, goDO, xpDO, goMM, xpMM})
	}
	t.Notes = append(t.Notes,
		"paper Fig.12: large graphs OOM on DRAM-only; XPGraph-D up to 73% (DO) / 76% (MM) faster than GraphOne-D",
		fmt.Sprintf("scaled machine DRAM = %d MB", ScaledDRAMBytes>>20))
	return t, nil
}

// ---- Fig. 13: PMEM traffic ----

func fig13(cfg Config) (Table, error) {
	dss, err := datasets(cfg, allNames...)
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig13", Title: "PMEM read/write data amount during ingestion (GB)",
		Columns: []string{"dataset", "system", "read_GB", "write_GB"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		type sys struct {
			name string
			run  func() (*xpsim.Machine, error)
		}
		systems := []sys{
			{"GraphOne-P", func() (*xpsim.Machine, error) {
				s, m, err := newGraphOne(edges, ds.NumVertices(), cfg, graphone.VariantP, false, 0)
				if err != nil {
					return nil, err
				}
				m.ResetStats()
				_, err = s.Ingest(edges)
				return m, err
			}},
			{"GraphOne-N", func() (*xpsim.Machine, error) {
				s, m, err := newGraphOne(edges, ds.NumVertices(), cfg, graphone.VariantN, false, 0)
				if err != nil {
					return nil, err
				}
				m.ResetStats()
				_, err = s.Ingest(edges)
				return m, err
			}},
			{"XPGraph", func() (*xpsim.Machine, error) {
				s, m, err := newXPGraph(edges, ds.NumVertices(), cfg)
				if err != nil {
					return nil, err
				}
				m.ResetStats()
				_, err = s.Ingest(edges)
				return m, err
			}},
			{"XPGraph-B", func() (*xpsim.Machine, error) {
				s, m, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) { o.Battery = true })
				if err != nil {
					return nil, err
				}
				m.ResetStats()
				_, err = s.Ingest(edges)
				return m, err
			}},
		}
		for _, sy := range systems {
			m, err := sy.run()
			if err != nil {
				return Table{}, err
			}
			st := m.TotalStats()
			t.Rows = append(t.Rows, []string{ds.Name, sy.name, gb(st.MediaReadBytes()), gb(st.MediaWriteBytes())})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.13: XPGraph reads 2.29-4.17x and writes 2.02-3.44x less than GraphOne-P; XPGraph-B further -31%/-47%")
	return t, nil
}

// ---- Fig. 14: query performance ----

func fig14(cfg Config) (Table, error) {
	dss, err := datasets(cfg, allNames...)
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig14", Title: "Query performance (seconds of simulated time)",
		Columns: []string{"dataset", "system", "1hop_s", "bfs_s", "pagerank_s", "cc_s"}}
	// 2^24 one-hop queries in the paper; scaled by 1/1024 -> 2^14, then
	// by the edge scale.
	oneHopCount := int(float64(1<<14) * cfg.EdgeScale)
	if oneHopCount < 256 {
		oneHopCount = 256
	}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		type prep struct {
			name string
			view view.View
			lat  *xpsim.LatencyModel
		}
		var preps []prep
		{
			s, m, err := newGraphOne(edges, ds.NumVertices(), cfg, graphone.VariantP, false, 0)
			if err != nil {
				return Table{}, err
			}
			if _, err := s.Ingest(edges); err != nil {
				return Table{}, err
			}
			preps = append(preps, prep{"GraphOne-P", s, &m.Lat})
		}
		{
			s, m, err := newXPGraph(edges, ds.NumVertices(), cfg)
			if err != nil {
				return Table{}, err
			}
			if _, err := s.Ingest(edges); err != nil {
				return Table{}, err
			}
			preps = append(preps, prep{"XPGraph", s, &m.Lat})
		}
		for _, p := range preps {
			e := analytics.NewEngine(p.view, p.lat, cfg.QueryThreads)
			oh := e.OneHop(oneHopCount, 0xBEEF)
			var bfsNs int64
			for _, root := range bfsRoots(ds) {
				bfsNs += e.BFS(root).SimNs
			}
			pr := e.PageRank(10)
			cc := e.CC()
			t.Rows = append(t.Rows, []string{ds.Name, p.name,
				secs(oh.SimNs), secs(bfsNs), secs(pr.SimNs), secs(cc.SimNs)})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.14: 1-hop comparable (within ~30%); XPGraph up to 4.46x (BFS), 3.57x (PageRank), 4.23x (CC) faster")
	return t, nil
}

// bfsRoots returns the paper's "three random roots" deterministically.
func bfsRoots(ds gen.Dataset) []graph.VID {
	n := ds.NumVertices()
	return []graph.VID{1 % n, (n / 3) % n, (2*n/3 + 1) % n}
}

// ---- Fig. 15: recovery ----

func fig15(cfg Config) (Table, error) {
	dss, err := datasets(cfg, allNames...)
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig15", Title: "Recovery time after a crash (seconds of simulated time)",
		Columns: []string{"dataset", "GraphOne_rebuild_s", "XPGraph_recover_s", "speedup"}}
	// GraphOne recovers by re-archiving with threshold 2^27 (paper);
	// scaled by 1/1024 -> 2^17.
	const rebuildThreshold = 1 << 17
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		goMachine := newMachine(int64(len(edges)))
		_, goNs, err := graphone.Rebuild(goMachine, pmemHeap(goMachine), graphone.Options{
			Name: "rb", NumVertices: ds.NumVertices(), ArchiveThreads: cfg.ArchiveThreads,
			AdjBytes: adjBytesFor(int64(len(edges)), 1), Variant: graphone.VariantP,
		}, edges, rebuildThreshold)
		if err != nil {
			return Table{}, err
		}
		// XPGraph: ingest, crash (drop DRAM state), recover.
		s, m, err := newXPGraph(edges, ds.NumVertices(), cfg)
		if err != nil {
			return Table{}, err
		}
		if _, err := s.Ingest(edges); err != nil {
			return Table{}, err
		}
		heap := s.Heap()
		opts := s.Options()
		s = nil // crash: all DRAM state gone
		_, rec, err := core.Recover(m, heap, nil, opts)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{ds.Name, secs(goNs), secs(rec.SimNs), ratio(goNs, rec.SimNs)})
	}
	t.Notes = append(t.Notes,
		"paper Fig.15: XPGraph recovers 5.20-9.47x faster than GraphOne's re-archiving")
	return t, nil
}

// ---- Fig. 16: fixed buffer sweep ----

func fig16(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "YW")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig16", Title: "Fixed per-vertex buffer sizes: ingest time and DRAM demand",
		Columns: []string{"dataset", "buf_bytes", "ingest_s", "vbuf_peak_MB"}}
	// The DRAM cap is scaled so the paper's OOM point (512 B buffers on
	// YahooWeb) falls in the same place against this layout: 256 B
	// buffers (~88 MB of buffers + ~96 MB vertex metadata) fit, 512 B
	// (~176 MB of buffers) do not.
	const fig16DRAM = 240 << 20
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		for _, bufBytes := range []int64{0, 8, 16, 32, 64, 128, 256, 512} {
			bb := bufBytes
			budget := mem.NewBudget(fig16DRAM)
			m := newMachine(int64(len(edges)))
			h := pmemHeap(m)
			o := core.Options{Name: "f16", NumVertices: ds.NumVertices(),
				ArchiveThreads: cfg.ArchiveThreads, NUMA: core.NUMASubgraph,
				PoolBulk: 4 << 20, // fine-grained bulks so footprint tracks demand
				AdjBytes: adjBytesFor(int64(len(edges)), m.Sockets)}
			if bb == 0 {
				o.Buffer = core.BufferNone
			} else {
				o.Buffer = core.BufferFixed
				o.MinBufBytes, o.MaxBufBytes = bb, bb
			}
			s, err := core.New(m, h, budget, o)
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				if errors.Is(err, mem.ErrOOM) {
					t.Rows = append(t.Rows, []string{ds.Name, fmt.Sprint(bb), "OOM", "OOM"})
					continue
				}
				return Table{}, err
			}
			if rep.PoolFallbacks > 0 {
				// The pool hit the DRAM budget mid-run; the store
				// degraded to direct writes where the paper's system
				// would have failed its allocation — report the OOM.
				t.Rows = append(t.Rows, []string{ds.Name, fmt.Sprint(bb), "OOM", "OOM"})
				continue
			}
			t.Rows = append(t.Rows, []string{ds.Name, fmt.Sprint(bb),
				secs(rep.TotalNs()), mb(s.Pool().Peak())})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.16: larger fixed buffers reduce ingest time but inflate DRAM; 512 B OOMs on YahooWeb")
	return t, nil
}

// ---- Fig. 17: hierarchical buffer sweep ----

func fig17(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "YW")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig17", Title: "Hierarchical buffers (16B..max) vs best fixed buffers",
		Columns: []string{"dataset", "config", "ingest_s", "vbuf_peak_MB"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		run := func(name string, o core.Options) error {
			m := newMachine(int64(len(edges)))
			h := pmemHeap(m)
			o.Name = "f17"
			o.NumVertices = ds.NumVertices()
			o.ArchiveThreads = cfg.ArchiveThreads
			o.NUMA = core.NUMASubgraph
			o.AdjBytes = adjBytesFor(int64(len(edges)), m.Sockets)
			s, err := core.New(m, h, nil, o)
			if err != nil {
				return err
			}
			if _, err := s.Ingest(edges); err != nil {
				return err
			}
			t.Rows = append(t.Rows, []string{ds.Name, name,
				secs(s.Report().TotalNs()), mb(s.Pool().Peak())})
			return nil
		}
		if err := run("fixed-128", core.Options{Buffer: core.BufferFixed, MinBufBytes: 128, MaxBufBytes: 128}); err != nil {
			return Table{}, err
		}
		if err := run("fixed-256", core.Options{Buffer: core.BufferFixed, MinBufBytes: 256, MaxBufBytes: 256}); err != nil {
			return Table{}, err
		}
		for _, max := range []int64{64, 128, 256, 512} {
			if err := run(fmt.Sprintf("hier-16..%d", max),
				core.Options{Buffer: core.BufferHierarchical, MinBufBytes: 16, MaxBufBytes: max}); err != nil {
				return Table{}, err
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.17: hierarchical 16..256B matches the best fixed setting's speed at less than half the DRAM")
	return t, nil
}

// ---- Fig. 18: NUMA strategies ----

func fig18(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS", "YW", "K29")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig18", Title: "NUMA accessing strategies: ingest and BFS",
		Columns: []string{"dataset", "strategy", "ingest_s", "bfs_s"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		for _, mode := range []struct {
			name string
			m    core.NUMAMode
		}{{"no-bind", core.NUMANone}, {"NUMA-bind-OIG", core.NUMAOutIn}, {"NUMA-bind-SG", core.NUMASubgraph}} {
			md := mode.m
			s, m, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) { o.NUMA = md })
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return Table{}, err
			}
			e := analytics.NewEngine(s, &m.Lat, cfg.QueryThreads)
			if md == core.NUMANone {
				e.SetBinding(false)
			}
			var bfsNs int64
			for _, root := range bfsRoots(ds) {
				bfsNs += e.BFS(root).SimNs
			}
			t.Rows = append(t.Rows, []string{ds.Name, mode.name, secs(rep.TotalNs()), secs(bfsNs)})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.18: binding improves ingest 5-23%; sub-graph binding improves BFS up to 54% while out/in-graph binding can hurt queries")
	return t, nil
}

// ---- Fig. 19: pool size sweep ----

func fig19(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS", "YW", "K29")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig19", Title: "Vertex-buffer pool size sweep (paper GB -> scaled MB)",
		Columns: []string{"dataset", "pool_MB", "ingest_s", "flush_alls"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		for _, poolMB := range []int64{1, 2, 4, 8, 16, 32, 64, 96} {
			pm := poolMB << 20
			s, _, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) {
				o.PoolMax = pm
				o.PoolBulk = pm / int64(2*cfg.ArchiveThreads)
			})
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{ds.Name, fmt.Sprint(poolMB), secs(rep.TotalNs()),
				fmt.Sprint(rep.FlushAlls)})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.19: big gains up to 16 GB (scaled: MB), flat beyond 32; oversized pools cost nothing (lazy allocation)")
	return t, nil
}

// ---- Fig. 20: XPGraph thread sweep ----

func fig20(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "fig20", Title: "XPGraph archive-thread sweep (FS)",
		Columns: []string{"dataset", "threads", "ingest_s"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		for _, th := range []int{1, 2, 4, 8, 16, 32, 48, 64, 95} {
			th := th
			s, _, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) { o.ArchiveThreads = th })
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{ds.Name, fmt.Sprint(th), secs(rep.TotalNs())})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig.20: XPGraph keeps scaling with archive threads, peaking at the machine's 95 threads")
	return t, nil
}

// ---- Table II: dataset statistics ----

func table2(cfg Config) (Table, error) {
	dss, err := datasets(cfg, allNames...)
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "table2", Title: "Datasets (scaled ~1/1024 stand-ins of Table II)",
		Columns: []string{"dataset", "paper_V", "paper_E", "V", "E", "bin_MB", "deg1-2_pct"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		h := gen.DegreeHistogram(edges, ds.NumVertices())
		nonZero := h[1] + h[2] + h[3] + h[4]
		pct := 0.0
		if nonZero > 0 {
			pct = 100 * float64(h[1]) / float64(nonZero)
		}
		t.Rows = append(t.Rows, []string{ds.Name, ds.PaperV, ds.PaperE,
			fmt.Sprint(ds.NumVertices()), fmt.Sprint(len(edges)),
			mb(int64(len(edges)) * graph.EdgeBytes), fmt.Sprintf("%.1f", pct)})
	}
	t.Notes = append(t.Notes, "paper §III-C: vertices with degree 1-2 exceed 40% of non-zero vertices in real graphs")
	return t, nil
}

// ---- Table III: memory usage ----

func table3(cfg Config) (Table, error) {
	dss, err := datasets(cfg, allNames...)
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "table3", Title: "Memory usage of XPGraph (MB; paper Table III is GB at 1024x scale)",
		Columns: []string{"dataset", "meta_dram_MB", "vbuf_dram_MB", "input_MB", "elog_MB", "pblk_MB"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		s, _, err := newXPGraph(edges, ds.NumVertices(), cfg)
		if err != nil {
			return Table{}, err
		}
		if _, err := s.Ingest(edges); err != nil {
			return Table{}, err
		}
		u := s.MemUsage()
		t.Rows = append(t.Rows, []string{ds.Name, mb(u.MetaDRAM), mb(u.VbufDRAM),
			mb(int64(len(edges)) * graph.EdgeBytes), mb(u.ElogPMEM), mb(u.PblkPMEM)})
	}
	t.Notes = append(t.Notes,
		"paper Table III: DRAM usage is limited and tunable; PMEM holds input, 8GB elog (scaled 8MB) and adjacency blocks")
	return t, nil
}

// ---- Extensions beyond the paper's figures ----

// ablation isolates each XPGraph technique's contribution by disabling
// them one at a time — the design-choice ablation DESIGN.md calls for.
func ablation(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "ablation", Title: "XPGraph technique ablation (ingest time)",
		Columns: []string{"dataset", "config", "ingest_s", "pmem_write_GB"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		run := func(name string, f xpOpt) error {
			s, m, err := newXPGraph(edges, ds.NumVertices(), cfg, f)
			if err != nil {
				return err
			}
			m.ResetStats()
			rep, err := s.Ingest(edges)
			if err != nil {
				return err
			}
			st := m.TotalStats()
			t.Rows = append(t.Rows, []string{ds.Name, name, secs(rep.TotalNs()), gb(st.MediaWriteBytes())})
			return nil
		}
		cases := []struct {
			name string
			f    xpOpt
		}{
			{"full", func(o *core.Options) {}},
			{"no-proactive-flush", func(o *core.Options) { o.DisableProactiveFlush = true }},
			{"fixed-64B-buffers", func(o *core.Options) { o.Buffer = core.BufferFixed; o.MinBufBytes = 64; o.MaxBufBytes = 64 }},
			{"no-buffering", func(o *core.Options) { o.Buffer = core.BufferNone }},
			{"no-numa-binding", func(o *core.Options) { o.NUMA = core.NUMANone }},
		}
		for _, c := range cases {
			if err := run(c.name, c.f); err != nil {
				return Table{}, err
			}
		}
	}
	t.Notes = append(t.Notes,
		"extension experiment: each row disables one technique of §III; 'no-buffering' approximates GraphOne's write path inside XPGraph")
	return t, nil
}

// extSSD measures the SSD-supported XPGraph prototype (§V-F future work):
// the same workload on ample PMEM vs a PMEM arena one-eighth the size
// with SSD overflow.
func extSSD(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "ext-ssd", Title: "SSD-supported XPGraph (PMEM-overflow prototype)",
		Columns: []string{"dataset", "config", "ingest_s", "bfs_s", "ssd_MB"}}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		need := adjBytesFor(int64(len(edges)), 2)
		run := func(name string, adjBytes, overflow int64) error {
			s, m, err := newXPGraph(edges, ds.NumVertices(), cfg, func(o *core.Options) {
				o.AdjBytes = adjBytes
				o.SSDOverflow = overflow
			})
			if err != nil {
				return err
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				return err
			}
			e := analytics.NewEngine(s, &m.Lat, cfg.QueryThreads)
			bfs := e.BFS(bfsRoots(ds)[0])
			t.Rows = append(t.Rows, []string{ds.Name, name, secs(rep.TotalNs()),
				secs(bfs.SimNs), mb(s.SSDBytes())})
			return nil
		}
		if err := run("pmem-only", need, 0); err != nil {
			return Table{}, err
		}
		// An arena far below the flushed-adjacency footprint forces
		// most blocks onto the SSD.
		small := int64(len(edges))/4 + (16 << 10)
		if err := run("small-pmem+ssd", small, 4*need); err != nil {
			return Table{}, err
		}
	}
	t.Notes = append(t.Notes,
		"extension experiment: graphs larger than PMEM keep working with cold adjacency blocks on NVMe")
	return t, nil
}

// extHotCold isolates the buffer-as-cache effect behind Fig. 14's query
// wins (§V-C): the same queries on a hot store (vertex buffers resident
// after ingest) and a cold one (all buffers flushed to PMEM).
func extHotCold(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "ext-hotcold", Title: "Query cost with hot vs flushed vertex buffers",
		Columns: []string{"dataset", "state", "1hop_s", "bfs_s", "pmem_read_GB"}}
	oneHopCount := int(float64(1<<14) * cfg.EdgeScale)
	if oneHopCount < 256 {
		oneHopCount = 256
	}
	for _, ds := range dss {
		edges := edgesFor(ds, cfg)
		s, m, err := newXPGraph(edges, ds.NumVertices(), cfg)
		if err != nil {
			return Table{}, err
		}
		if _, err := s.Ingest(edges); err != nil {
			return Table{}, err
		}
		e := analytics.NewEngine(s, &m.Lat, cfg.QueryThreads)
		measure := func(state string) {
			before := m.SnapshotStats()
			oh := e.OneHop(oneHopCount, 0xBEEF)
			var bfsNs int64
			for _, root := range bfsRoots(ds) {
				bfsNs += e.BFS(root).SimNs
			}
			delta := m.SnapshotStats().Sub(before)
			t.Rows = append(t.Rows, []string{ds.Name, state,
				secs(oh.SimNs), secs(bfsNs), gb(delta.MediaReadBytes())})
		}
		measure("hot-buffers")
		if err := s.FlushAllVbufs(); err != nil {
			return Table{}, err
		}
		measure("flushed")
	}
	t.Notes = append(t.Notes,
		"extension experiment: resident vertex buffers serve recent neighbors from DRAM (§III-B note, §V-C)")
	return t, nil
}

// extEvolving runs a deletion-heavy update stream (adds + 15% deletes of
// live edges) through both PMEM systems — the evolving-graph shape of the
// paper's title that the bulk-load figures do not exercise.
func extEvolving(cfg Config) (Table, error) {
	dss, err := datasets(cfg, "FS")
	if err != nil {
		return Table{}, err
	}
	t := Table{Exp: "ext-evolving", Title: "Mixed add/delete stream (15% deletions)",
		Columns: []string{"dataset", "system", "ingest_s", "speedup"}}
	for _, ds := range dss {
		n := int64(float64(ds.Edges) * cfg.EdgeScale)
		if n < 1024 {
			n = 1024
		}
		updates := gen.Evolving(ds.Scale, n, 0.15, ds.Seed^0xDE1)
		var goNs int64
		{
			s, _, err := newGraphOne(updates, ds.NumVertices(), cfg, graphone.VariantP, false, 0)
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(updates)
			if err != nil {
				return Table{}, err
			}
			goNs = rep.TotalNs()
			t.Rows = append(t.Rows, []string{ds.Name, "GraphOne-P", secs(goNs), "-"})
		}
		{
			s, _, err := newXPGraph(updates, ds.NumVertices(), cfg)
			if err != nil {
				return Table{}, err
			}
			rep, err := s.Ingest(updates)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{ds.Name, "XPGraph", secs(rep.TotalNs()), ratio(goNs, rep.TotalNs())})
		}
	}
	t.Notes = append(t.Notes,
		"extension experiment: deletions are logged records like adds, so the XPLine-friendly advantage carries over")
	return t, nil
}
