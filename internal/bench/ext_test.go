package bench

import "testing"

func TestAblationShape(t *testing.T) {
	tb, err := Run("ablation", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	var full, noBuf float64
	for i, r := range tb.Rows {
		switch r[1] {
		case "full":
			full = cellF(t, tb, i, "ingest_s")
		case "no-buffering":
			noBuf = cellF(t, tb, i, "ingest_s")
		}
	}
	if noBuf <= full {
		t.Errorf("disabling vertex buffering (%f) should cost more than full XPGraph (%f)", noBuf, full)
	}
}

func TestExtSSDShape(t *testing.T) {
	tb, err := Run("ext-ssd", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	pm := cellF(t, tb, 0, "ingest_s")
	tiered := cellF(t, tb, 1, "ingest_s")
	ssdMB := cellF(t, tb, 1, "ssd_MB")
	if tiered <= pm {
		t.Errorf("tiered ingest (%f) should cost more than pure PMEM (%f)", tiered, pm)
	}
	if ssdMB <= 0 {
		t.Error("overflow run should place bytes on the SSD")
	}
}

func TestExtHotColdShape(t *testing.T) {
	tb, err := Run("ext-hotcold", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	hotRead := cellF(t, tb, 0, "pmem_read_GB")
	coldRead := cellF(t, tb, 1, "pmem_read_GB")
	if hotRead >= coldRead {
		t.Errorf("hot-buffer queries read %f GB from PMEM vs flushed %f GB; buffers should absorb reads", hotRead, coldRead)
	}
}

func TestExtEvolvingShape(t *testing.T) {
	tb, err := Run("ext-evolving", quickCfg("FS"))
	if err != nil {
		t.Fatal(err)
	}
	goP := cellF(t, tb, 0, "ingest_s")
	xp := cellF(t, tb, 1, "ingest_s")
	if xp >= goP {
		t.Errorf("XPGraph (%f) should beat GraphOne-P (%f) on evolving streams too", xp, goP)
	}
}
