// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation (§II-C and §V), each building the
// workload, running the systems under comparison, and returning a
// printable table. The regenerated quantity is simulated time / simulated
// device traffic; the reproduction target is the paper's shape (who wins,
// by what factor, where crossovers fall), not absolute numbers.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphone"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

// Config tunes a run.
type Config struct {
	// EdgeScale scales the catalog edge counts (1.0 = the full ~1/1024
	// scale of DESIGN.md; benches use smaller values for quick runs).
	EdgeScale float64
	// Datasets restricts the experiment to these catalog names (nil:
	// per-experiment defaults).
	Datasets []string
	// ArchiveThreads is the unified archiving parallelism (§V-B: 16).
	ArchiveThreads int
	// QueryThreads is the query parallelism (§V-C: 96).
	QueryThreads int
	// Latency overrides the calibrated machine model (nil: defaults).
	Latency *xpsim.LatencyModel
	// Tracer, when non-nil, is attached to every store an experiment
	// builds, recording logging/buffering/flushing phase spans on the
	// simulated clock (export with obs.WriteChromeTrace).
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.EdgeScale <= 0 {
		c.EdgeScale = 1
	}
	if c.ArchiveThreads <= 0 {
		c.ArchiveThreads = 16
	}
	if c.QueryThreads <= 0 {
		c.QueryThreads = 96
	}
	return c
}

// ScaledDRAMBytes is the machine DRAM capacity used by the volatile-system
// experiments. The paper's testbed has 128 GB; the scaled value is chosen
// so the paper's OOM boundary (YahooWeb, Kron29 and Kron30 fail on
// DRAM-only systems; Kron28 and smaller fit — §II-C, Fig. 12) falls in
// the same place against this implementation's memory layout constants.
const ScaledDRAMBytes = 120 << 20

// Table is one regenerated table/figure.
type Table struct {
	Exp     string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// JSON, when non-nil, is the experiment's machine-readable payload
	// (written by `xpgraph bench -json`); experiments without one fall
	// back to the tabular shape.
	JSON any
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.Exp, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment describes a runnable experiment.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config) (Table, error)
}

var registry []Experiment

func register(name, title string, run func(Config) (Table, error)) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment { return registry }

// Run executes one experiment by name.
func Run(name string, cfg Config) (Table, error) {
	latOverride = cfg.Latency
	for _, e := range registry {
		if e.Name == name {
			return e.Run(cfg.withDefaults())
		}
	}
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	sort.Strings(names)
	return Table{}, fmt.Errorf("bench: unknown experiment %q (have: %s)", name, strings.Join(names, ", "))
}

// ---- workload cache ----

var (
	edgeCacheMu sync.Mutex
	edgeCache   = map[string][]graph.Edge{}
)

// edgesFor materializes (and caches) a dataset's edge stream at the
// configured scale.
func edgesFor(ds gen.Dataset, cfg Config) []graph.Edge {
	n := int64(float64(ds.Edges) * cfg.EdgeScale)
	if n < 1024 {
		n = 1024
	}
	key := fmt.Sprintf("%s/%d", ds.Name, n)
	edgeCacheMu.Lock()
	defer edgeCacheMu.Unlock()
	if e, ok := edgeCache[key]; ok {
		return e
	}
	e := gen.RMAT(ds.Scale, n, ds.Seed)
	edgeCache[key] = e
	return e
}

// datasets resolves the experiment's dataset list.
func datasets(cfg Config, defaults ...string) ([]gen.Dataset, error) {
	names := cfg.Datasets
	if len(names) == 0 {
		names = defaults
	}
	var out []gen.Dataset
	for _, n := range names {
		ds, err := gen.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// allNames is the full Table II list.
var allNames = []string{"TT", "FS", "UK", "YW", "K28", "K29", "K30"}

// ---- machine and store builders ----

// latOverride holds the CLI's latency override for machine construction.
// It is set once by Run before dispatching (experiments build machines
// deep inside helpers; threading it everywhere would add noise).
var latOverride *xpsim.LatencyModel

// newMachine sizes a simulated two-socket testbed for the workload.
func newMachine(edges int64) *xpsim.Machine {
	lat := xpsim.DefaultLatency()
	if latOverride != nil {
		lat = *latOverride
	}
	per := edges*48 + (256 << 20)
	return xpsim.NewMachine(2, per, lat)
}

// adjBytesFor sizes adjacency regions generously for the edge count.
func adjBytesFor(edges int64, parts int) int64 {
	return edges*32/int64(parts) + (32 << 20)
}

type xpOpt func(*core.Options)

// newXPGraph builds an XPGraph (or variant) over a fresh machine.
func newXPGraph(edges []graph.Edge, numV uint32, cfg Config, opts ...xpOpt) (*core.Store, *xpsim.Machine, error) {
	o := core.Options{
		Name:           "xp",
		NumVertices:    numV,
		ArchiveThreads: cfg.ArchiveThreads,
		NUMA:           core.NUMASubgraph,
	}
	for _, f := range opts {
		f(&o)
	}
	m := newMachine(int64(len(edges)))
	parts := 1
	if o.NUMA == core.NUMASubgraph {
		parts = m.Sockets
	}
	if o.AdjBytes == 0 {
		o.AdjBytes = adjBytesFor(int64(len(edges)), parts)
	}
	var h *pmem.Heap
	var budget *mem.Budget
	if o.Medium == core.MediumPMEM {
		h = pmem.NewHeap(m)
	}
	if o.Medium == core.MediumDRAM {
		budget = mem.NewBudget(ScaledDRAMBytes)
	}
	s, err := core.New(m, h, budget, o)
	if err == nil {
		s.SetTracer(cfg.Tracer)
	}
	return s, m, err
}

// newGraphOne builds a GraphOne variant over a fresh machine.
func newGraphOne(edges []graph.Edge, numV uint32, cfg Config, variant graphone.Variant, bind bool, threads int) (*graphone.Store, *xpsim.Machine, error) {
	m := newMachine(int64(len(edges)))
	var h *pmem.Heap
	var budget *mem.Budget
	switch variant {
	case graphone.VariantP, graphone.VariantN:
		h = pmem.NewHeap(m)
	case graphone.VariantD:
		budget = mem.NewBudget(ScaledDRAMBytes)
	}
	if threads <= 0 {
		threads = cfg.ArchiveThreads
	}
	s, err := graphone.New(m, h, budget, graphone.Options{
		Name:           "go",
		NumVertices:    numV,
		ArchiveThreads: threads,
		AdjBytes:       adjBytesFor(int64(len(edges)), 1),
		Variant:        variant,
		BindSingleNode: bind,
	})
	if err == nil {
		s.SetTracer(cfg.Tracer)
	}
	return s, m, err
}

// ---- formatting ----

// pmemHeap builds a heap over the machine.
func pmemHeap(m *xpsim.Machine) *pmem.Heap { return pmem.NewHeap(m) }

func secs(ns int64) string  { return fmt.Sprintf("%.3f", float64(ns)/1e9) }
func gb(bytes int64) string { return fmt.Sprintf("%.3f", float64(bytes)/1e9) }
func mb(bytes int64) string { return fmt.Sprintf("%.1f", float64(bytes)/1e6) }
func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

// CSV renders the table as RFC-4180-ish CSV for machine consumption.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
