package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSpanJSONRoundTrip pins the Span wire shape.
func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{Name: "buffer", Cat: "phase", Lane: LaneBuffering, StartNs: 1500, DurNs: 2500}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Span
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round-trip changed span: %+v != %+v", out, in)
	}
}

// chromeEvent is the subset of the trace-event format the viewers need.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestChromeTraceFormat: the export must be a JSON array of complete
// events (ph "X", ts/dur in µs) plus thread_name metadata for used lanes.
func TestChromeTraceFormat(t *testing.T) {
	spans := []Span{
		{Name: "log", Lane: LaneLogging, StartNs: 0, DurNs: 1000},
		{Name: "buffer", Lane: LaneBuffering, StartNs: 1000, DurNs: 2500},
		{Name: "flush d0/p1", Cat: "worker", Lane: LaneWorkerBase + 1, StartNs: 3500, DurNs: 123},
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, b.String())
	}

	var meta, complete []chromeEvent
	for _, e := range events {
		switch e.Ph {
		case "M":
			meta = append(meta, e)
		case "X":
			complete = append(complete, e)
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	if len(complete) != len(spans) {
		t.Fatalf("got %d complete events, want %d", len(complete), len(spans))
	}
	// Metadata names the two fixed lanes in use (worker lanes are unnamed).
	names := map[int64]string{}
	for _, e := range meta {
		if e.Name != "thread_name" || e.Pid != 0 {
			t.Fatalf("bad metadata event %+v", e)
		}
		names[e.Tid], _ = e.Args["name"].(string)
	}
	if names[LaneLogging] != "logging" || names[LaneBuffering] != "buffering" {
		t.Fatalf("lane metadata wrong: %v", names)
	}
	// ns → µs conversion, pid 0, lane as tid.
	e := complete[1]
	if e.Name != "buffer" || e.Cat != "phase" || e.Ts != 1.0 || e.Dur != 2.5 ||
		e.Pid != 0 || e.Tid != LaneBuffering {
		t.Fatalf("complete event wrong: %+v", e)
	}
	if w := complete[2]; w.Cat != "worker" || w.Dur != 0.123 {
		t.Fatalf("worker event wrong: %+v", w)
	}
}

// TestTracerRingBounded: the ring keeps the most recent capSpans spans,
// oldest-first, and counts overwrites.
func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.EmitPhase("s", LaneLogging, int64(i), 1)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	got := tr.Snapshot()
	for i, s := range got {
		if want := int64(6 + i); s.StartNs != want {
			t.Fatalf("span %d StartNs = %d, want %d (oldest-first)", i, s.StartNs, want)
		}
	}
}

// TestTracerDrain: Drain returns everything once, then the ring is empty.
func TestTracerDrain(t *testing.T) {
	tr := NewTracer(8)
	tr.EmitPhase("a", LaneLogging, 0, 1)
	tr.EmitPhase("b", LaneFlushing, 1, 1)
	first := tr.Drain()
	if len(first) != 2 || first[0].Name != "a" || first[1].Name != "b" {
		t.Fatalf("first drain = %+v", first)
	}
	if second := tr.Drain(); len(second) != 0 {
		t.Fatalf("second drain returned %d spans, want 0", len(second))
	}
	// The ring is reusable after a drain.
	tr.EmitPhase("c", LaneLogging, 2, 1)
	if got := tr.Drain(); len(got) != 1 || got[0].Name != "c" {
		t.Fatalf("post-drain emit lost: %+v", got)
	}
}

// TestNilTracer: every method on a nil tracer is a safe no-op — the
// disabled fast path instrumented code relies on.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Span{})
	tr.EmitPhase("x", LaneLogging, 0, 1)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports buffered spans")
	}
	if tr.Snapshot() != nil || tr.Drain() != nil {
		t.Fatal("nil tracer returned spans")
	}
}
