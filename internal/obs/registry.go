// Package obs is the unified observability layer of the reproduction: a
// dependency-free metrics registry (counters, gauges, histograms with
// fixed log-scale buckets) with Prometheus text-format and JSON
// exposition, a device-telemetry collector over the simulated Optane
// machine (device.go), and a phase tracer recording spans on the
// simulated clock into a bounded ring exportable as Chrome trace-event
// JSON (trace.go).
//
// Everything paper-relevant — media read/write lines and amplification
// (Fig. 3b, Fig. 13), XPBuffer hit/eviction behaviour, local vs remote
// NUMA traffic (Fig. 4, Fig. 18), and the logging/buffering/flushing
// phase split (Fig. 3a) — becomes an always-on, scrapeable, traceable
// surface instead of ad-hoc calls inside bench code.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric for exposition (# TYPE line).
type Kind int

// Metric kinds, matching the Prometheus type vocabulary.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value pair attached to a sample.
type Label struct {
	Key, Value string
}

// Bucket is one histogram bucket in cumulative form: Count observations
// were <= UpperBound.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// Sample is one gathered metric value. For histograms, Buckets carries
// the cumulative bucket counts (the +Inf bucket is implicit: it equals
// Count) and Sum/Count the classic summary pair.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	Value  float64

	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Collector produces samples at scrape time. Instruments (Counter,
// Gauge, Histogram) are collectors of themselves; composite collectors
// (the machine collector, store gauges) snapshot live state per scrape.
type Collector interface {
	Collect(emit func(Sample))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(Sample))

// Collect implements Collector.
func (f CollectorFunc) Collect(emit func(Sample)) { f(emit) }

// WithLabels wraps a collector so every sample it emits carries the
// extra constant labels (prepended, so a sample's own labels stay last).
// This is how one registry hosts N copies of the same metric family —
// e.g. per-shard store gauges in a cluster — without renaming anything.
func WithLabels(c Collector, labels ...Label) Collector {
	if len(labels) == 0 {
		return c
	}
	return CollectorFunc(func(emit func(Sample)) {
		c.Collect(func(s Sample) {
			ls := make([]Label, 0, len(labels)+len(s.Labels))
			ls = append(ls, labels...)
			ls = append(ls, s.Labels...)
			s.Labels = ls
			emit(s)
		})
	})
}

// Registry holds collectors and gathers them into one exposition.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector

	// parent/labels implement Sub: a sub-registry holds no collectors of
	// its own, it forwards label-wrapped registrations to the root.
	parent *Registry
	labels []Label
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Sub returns a registry that forwards every Register into r with the
// given constant labels attached (on top of r's own, when r is itself a
// Sub). Code written against a plain registry — core.Store's
// RegisterMetrics, for instance — can then be instantiated N times with
// distinguishing labels: register each instance through its own Sub and
// the shared exposition keeps every series separable.
func (r *Registry) Sub(labels ...Label) *Registry {
	ls := make([]Label, 0, len(r.labels)+len(labels))
	ls = append(ls, r.labels...)
	ls = append(ls, labels...)
	return &Registry{parent: r.root(), labels: ls}
}

func (r *Registry) root() *Registry {
	if r.parent != nil {
		return r.parent
	}
	return r
}

// Register adds a collector. Name collisions are not policed: the
// exposition merges samples by name, so two collectors emitting the same
// family with different labels compose naturally.
func (r *Registry) Register(c Collector) {
	c = WithLabels(c, r.labels...)
	root := r.root()
	root.mu.Lock()
	root.collectors = append(root.collectors, c)
	root.mu.Unlock()
}

// Gather collects every sample, sorted by name then label signature, so
// expositions are deterministic. Gathering a Sub gathers its root: there
// is exactly one exposition per registry tree.
func (r *Registry) Gather() []Sample {
	r = r.root()
	r.mu.Lock()
	cs := make([]Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	var out []Sample
	for _, c := range cs {
		c.Collect(func(s Sample) { out = append(out, s) })
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelSig(out[i].Labels) < labelSig(out[j].Labels)
	})
	return out
}

func labelSig(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// ---- Prometheus text exposition ----

// WritePrometheus renders the registry in the Prometheus text format
// (version 0.0.4): # HELP and # TYPE once per family, then one line per
// sample; histograms expand into _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastName := ""
	for _, s := range r.Gather() {
		if s.Name != lastName {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
			lastName = s.Name
		}
		switch s.Kind {
		case KindHistogram:
			for _, bk := range s.Buckets {
				ls := append(append([]Label{}, s.Labels...), Label{"le", formatFloat(bk.UpperBound)})
				writeLine(&b, s.Name+"_bucket", ls, float64(bk.Count))
			}
			ls := append(append([]Label{}, s.Labels...), Label{"le", "+Inf"})
			writeLine(&b, s.Name+"_bucket", ls, float64(s.Count))
			writeLine(&b, s.Name+"_sum", s.Labels, s.Sum)
			writeLine(&b, s.Name+"_count", s.Labels, float64(s.Count))
		default:
			writeLine(&b, s.Name, s.Labels, s.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeLine(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ---- JSON exposition ----

// jsonSample is the wire shape of one sample in the JSON exposition.
type jsonSample struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Bounds []float64         `json:"bucket_bounds,omitempty"`
	Counts []uint64          `json:"bucket_counts,omitempty"`
}

// JSONSamples converts the gathered samples into the JSON exposition
// shape (used by WriteJSON and by tests).
func (r *Registry) JSONSamples() []jsonSample {
	samples := r.Gather()
	out := make([]jsonSample, 0, len(samples))
	for _, s := range samples {
		js := jsonSample{Name: s.Name, Kind: s.Kind.String(), Value: s.Value, Sum: s.Sum, Count: s.Count}
		if len(s.Labels) > 0 {
			js.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				js.Labels[l.Key] = l.Value
			}
		}
		for _, bk := range s.Buckets {
			js.Bounds = append(js.Bounds, bk.UpperBound)
			js.Counts = append(js.Counts, bk.Count)
		}
		out = append(out, js)
	}
	return out
}

// WriteJSON renders the registry as a JSON document:
// {"metrics":[{name, kind, labels, value | sum/count/buckets}, ...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.JSONSamples()
	var b strings.Builder
	b.WriteString(`{"metrics":[`)
	for i, s := range samples {
		if i > 0 {
			b.WriteByte(',')
		}
		writeJSONSample(&b, s)
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeJSONSample hand-rolls the encoding so the registry stays
// dependency-free beyond the stdlib and field order stays deterministic.
func writeJSONSample(b *strings.Builder, s jsonSample) {
	fmt.Fprintf(b, `{"name":%q,"kind":%q`, s.Name, s.Kind)
	if len(s.Labels) > 0 {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(`,"labels":{`)
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%q:%q", k, s.Labels[k])
		}
		b.WriteByte('}')
	}
	if s.Kind == KindHistogram.String() {
		fmt.Fprintf(b, `,"sum":%s,"count":%d`, jsonFloat(s.Sum), s.Count)
		b.WriteString(`,"bucket_bounds":[`)
		for i, v := range s.Bounds {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(jsonFloat(v))
		}
		b.WriteString(`],"bucket_counts":[`)
		for i, v := range s.Counts {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(v, 10))
		}
		b.WriteString(`]`)
	} else {
		fmt.Fprintf(b, `,"value":%s`, jsonFloat(s.Value))
	}
	b.WriteByte('}')
}

func jsonFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- instruments ----

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	labels     []Label
	v          atomic.Int64
}

// NewCounter builds a counter; labels are optional name=value pairs.
func NewCounter(name, help string, labels ...Label) *Counter {
	return &Counter{name: name, help: help, labels: labels}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be >= 0; negative deltas are ignored to keep the
// counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Collect implements Collector.
func (c *Counter) Collect(emit func(Sample)) {
	emit(Sample{Name: c.name, Help: c.help, Kind: KindCounter, Labels: c.labels, Value: float64(c.v.Load())})
}

// Gauge is a settable value.
type Gauge struct {
	name, help string
	labels     []Label
	bits       atomic.Uint64
}

// NewGauge builds a gauge.
func NewGauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{name: name, help: help, labels: labels}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Collect implements Collector.
func (g *Gauge) Collect(emit func(Sample)) {
	emit(Sample{Name: g.name, Help: g.help, Kind: KindGauge, Labels: g.labels, Value: g.Value()})
}

// GaugeFunc evaluates fn at every scrape — the natural shape for
// occupancy gauges over live structures (pool bytes, log cursors).
type GaugeFunc struct {
	name, help string
	labels     []Label
	fn         func() float64
}

// NewGaugeFunc builds a callback gauge.
func NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	return &GaugeFunc{name: name, help: help, labels: labels, fn: fn}
}

// Collect implements Collector.
func (g *GaugeFunc) Collect(emit func(Sample)) {
	emit(Sample{Name: g.name, Help: g.help, Kind: KindGauge, Labels: g.labels, Value: g.fn()})
}

// Histogram counts observations into fixed buckets. Buckets are chosen
// at construction (log-scale helpers below) and never reallocated, so
// Observe is a binary search plus two atomic adds.
type Histogram struct {
	name, help string
	labels     []Label
	bounds     []float64      // ascending upper bounds
	counts     []atomic.Int64 // one per bound (non-cumulative)
	inf        atomic.Int64   // observations above the last bound
	sumBits    atomic.Uint64  // float64 bits, CAS-accumulated
	count      atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds.
func NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{name: name, help: help, labels: labels}
	h.bounds = append([]float64(nil), bounds...)
	h.counts = make([]atomic.Int64, len(bounds))
	return h
}

// DefBuckets is a log-scale default for request latencies in seconds:
// 100 µs to ~105 s in powers of two.
var DefBuckets = LogBuckets(1e-4, 2, 21)

// LogBuckets returns n log-scale bucket bounds: start, start*factor,
// start*factor^2, ... — the fixed log-scale buckets the paper-style
// latency and size distributions want.
func LogBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: LogBuckets needs start>0, factor>1, n>=1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports total observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Collect implements Collector, emitting cumulative bucket counts.
func (h *Histogram) Collect(emit func(Sample)) {
	s := Sample{Name: h.name, Help: h.help, Kind: KindHistogram, Labels: h.labels}
	var cum uint64
	for i, b := range h.bounds {
		cum += uint64(h.counts[i].Load())
		s.Buckets = append(s.Buckets, Bucket{UpperBound: b, Count: cum})
	}
	s.Count = cum + uint64(h.inf.Load())
	s.Sum = math.Float64frombits(h.sumBits.Load())
	emit(s)
}

// HistogramVec is a histogram family keyed by one label's value —
// enough for per-endpoint latency without a full label-tuple machinery.
type HistogramVec struct {
	name, help string
	labelKey   string
	bounds     []float64

	mu   sync.Mutex
	kids map[string]*Histogram
}

// NewHistogramVec builds the family.
func NewHistogramVec(name, help, labelKey string, bounds []float64) *HistogramVec {
	return &HistogramVec{name: name, help: help, labelKey: labelKey, bounds: bounds,
		kids: make(map[string]*Histogram)}
}

// With returns (creating on first use) the child histogram for the label
// value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[value]
	if !ok {
		h = NewHistogram(v.name, v.help, v.bounds, Label{v.labelKey, value})
		v.kids[value] = h
	}
	return h
}

// Collect implements Collector.
func (v *HistogramVec) Collect(emit func(Sample)) {
	v.mu.Lock()
	kids := make([]*Histogram, 0, len(v.kids))
	for _, h := range v.kids {
		kids = append(kids, h)
	}
	v.mu.Unlock()
	for _, h := range kids {
		h.Collect(emit)
	}
}

// CounterVec is a counter family keyed by one label's value.
type CounterVec struct {
	name, help string
	labelKey   string

	mu   sync.Mutex
	kids map[string]*Counter
}

// NewCounterVec builds the family.
func NewCounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{name: name, help: help, labelKey: labelKey, kids: make(map[string]*Counter)}
}

// With returns (creating on first use) the child counter.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = NewCounter(v.name, v.help, Label{v.labelKey, value})
		v.kids[value] = c
	}
	return c
}

// Collect implements Collector.
func (v *CounterVec) Collect(emit func(Sample)) {
	v.mu.Lock()
	kids := make([]*Counter, 0, len(v.kids))
	for _, c := range v.kids {
		kids = append(kids, c)
	}
	v.mu.Unlock()
	for _, c := range kids {
		c.Collect(emit)
	}
}
