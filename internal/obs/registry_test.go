package obs

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// parsePromLine splits a sample line into name, labels, value, failing the
// test on any deviation from the text-format grammar.
func parsePromLine(t *testing.T, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			t.Fatalf("unterminated label set in %q", line)
		}
		for _, pair := range strings.Split(rest[i+1:j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("bad label pair %q in %q", pair, line)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("label value not quoted in %q", line)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = rest[j+1:]
	} else {
		k := strings.IndexByte(rest, ' ')
		if k < 0 {
			t.Fatalf("no value in %q", line)
		}
		name = rest[:k]
		rest = rest[k:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "+Inf" {
		return name, labels, math.Inf(1)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return name, labels, v
}

// TestPrometheusGrammar validates the whole exposition line by line: every
// line is a well-formed HELP, TYPE, or sample line; HELP/TYPE appear once
// per family and precede its samples.
func TestPrometheusGrammar(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("test_ops_total", "Operations.", Label{"shard", "a"})
	c.Add(7)
	g := NewGauge("test_depth", `Queue "depth" with\escapes.`)
	g.Set(3.5)
	h := NewHistogram("test_lat_seconds", "Latency.", LogBuckets(0.001, 10, 3))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99)
	r.Register(c)
	r.Register(g)
	r.Register(h)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}

	typed := map[string]string{}
	helped := map[string]bool{}
	values := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(f) != 2 || f[1] == "" {
				t.Fatalf("malformed HELP %q", line)
			}
			if helped[f[0]] {
				t.Fatalf("duplicate HELP for %s", f[0])
			}
			helped[f[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line[len("# TYPE "):])
			if len(f) != 2 {
				t.Fatalf("malformed TYPE %q", line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q in %q", f[1], line)
			}
			if _, dup := typed[f[0]]; dup {
				t.Fatalf("duplicate TYPE for %s", f[0])
			}
			typed[f[0]] = f[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment %q", line)
		default:
			name, labels, v := parsePromLine(t, line)
			family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if _, ok := typed[family]; !ok {
				if _, ok := typed[name]; !ok {
					t.Fatalf("sample %q precedes its TYPE line", line)
				}
			}
			key := name
			if le, ok := labels["le"]; ok {
				key += "/le=" + le
			}
			values[key] = v
		}
	}

	if values["test_ops_total"] != 7 {
		t.Fatalf("counter = %v, want 7", values["test_ops_total"])
	}
	if values["test_depth"] != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", values["test_depth"])
	}
	if typed["test_lat_seconds"] != "histogram" {
		t.Fatalf("histogram TYPE = %q", typed["test_lat_seconds"])
	}
	// Cumulative buckets: 0.0005 <= 0.001; 0.05 <= 0.1; 99 only in +Inf.
	if values["test_lat_seconds_bucket/le=0.001"] != 1 ||
		values["test_lat_seconds_bucket/le=0.01"] != 1 ||
		values["test_lat_seconds_bucket/le=0.1"] != 2 ||
		values["test_lat_seconds_bucket/le=+Inf"] != 3 {
		t.Fatalf("bucket counts wrong: %v", values)
	}
	if values["test_lat_seconds_count"] != 3 {
		t.Fatalf("_count = %v, want 3", values["test_lat_seconds_count"])
	}
	if got, want := values["test_lat_seconds_sum"], 0.0005+0.05+99; math.Abs(got-want) > 1e-9 {
		t.Fatalf("_sum = %v, want %v", got, want)
	}
}

// TestPrometheusLabelEscaping pins the escaping rules for label values.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("esc_total", "h", Label{"p", `a"b\c` + "\n"})
	c.Inc()
	r.Register(c)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{p="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition %q missing %q", b.String(), want)
	}
}

// TestHistogramBucketsCumulative checks monotonicity of the gathered
// cumulative buckets and the +Inf/count identity under many observations.
func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram("h", "", LogBuckets(1, 2, 10))
	for i := 0; i < 5000; i++ {
		h.Observe(float64(i % 1500))
	}
	var s Sample
	h.Collect(func(x Sample) { s = x })
	prev := uint64(0)
	for i, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket %d (le=%g) count %d < previous %d — not cumulative",
				i, b.UpperBound, b.Count, prev)
		}
		prev = b.Count
	}
	if s.Count < prev {
		t.Fatalf("total count %d < last bucket %d", s.Count, prev)
	}
	if s.Count != 5000 {
		t.Fatalf("count = %d, want 5000", s.Count)
	}
}

// TestJSONExposition round-trips the JSON document through encoding/json
// and checks the histogram shape carries bounds and counts pairwise.
func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("j_ops_total", "h", Label{"k", "v"})
	c.Add(3)
	h := NewHistogram("j_lat", "h", []float64{1, 2, 4})
	h.Observe(1.5)
	h.Observe(100)
	r.Register(c)
	r.Register(h)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Kind   string            `json:"kind"`
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
			Sum    float64           `json:"sum"`
			Count  uint64            `json:"count"`
			Bounds []float64         `json:"bucket_bounds"`
			Counts []uint64          `json:"bucket_counts"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("JSON exposition does not parse: %v\n%s", err, b.String())
	}
	byName := map[string]int{}
	for i, m := range doc.Metrics {
		byName[m.Name] = i
	}
	cm := doc.Metrics[byName["j_ops_total"]]
	if cm.Kind != "counter" || cm.Value != 3 || cm.Labels["k"] != "v" {
		t.Fatalf("counter sample wrong: %+v", cm)
	}
	hm := doc.Metrics[byName["j_lat"]]
	if hm.Kind != "histogram" || hm.Count != 2 || len(hm.Bounds) != len(hm.Counts) {
		t.Fatalf("histogram sample wrong: %+v", hm)
	}
	if hm.Counts[0] != 0 || hm.Counts[1] != 1 || hm.Counts[2] != 1 {
		t.Fatalf("cumulative counts wrong: %v", hm.Counts)
	}
}

// TestCounterMonotone: negative Add deltas must be ignored.
func TestCounterMonotone(t *testing.T) {
	c := NewCounter("c", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5 (negative add must be ignored)", c.Value())
	}
}

// TestVecChildren: one child per label value, stable identity.
func TestVecChildren(t *testing.T) {
	hv := NewHistogramVec("v", "", "route", []float64{1})
	if hv.With("/a") != hv.With("/a") {
		t.Fatal("HistogramVec.With not stable")
	}
	hv.With("/a").Observe(0.5)
	hv.With("/b").Observe(2)
	n := 0
	hv.Collect(func(s Sample) {
		n++
		if len(s.Labels) != 1 || s.Labels[0].Key != "route" {
			t.Fatalf("child labels wrong: %+v", s.Labels)
		}
	})
	if n != 2 {
		t.Fatalf("collected %d children, want 2", n)
	}
	cv := NewCounterVec("cv", "", "route")
	cv.With("/a").Inc()
	cv.With("/a").Inc()
	if cv.With("/a").Value() != 2 {
		t.Fatal("CounterVec child not shared")
	}
}
