package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Well-known trace lanes (Chrome tid values). One lane per pipeline
// phase reproduces the Fig. 3a phase split visually; per-worker lanes
// start at LaneWorkerBase.
const (
	LaneLogging    = 1
	LaneBuffering  = 2
	LaneFlushing   = 3
	LaneCompaction = 4
	LaneRecovery   = 5
	LaneArchive    = 6 // GraphOne's combined buffering+flushing archive phase
	LaneWorkerBase = 16
)

// laneNames labels the fixed lanes in trace viewers via thread_name
// metadata events.
var laneNames = map[int64]string{
	LaneLogging:    "logging",
	LaneBuffering:  "buffering",
	LaneFlushing:   "flushing",
	LaneCompaction: "compaction",
	LaneRecovery:   "recovery",
	LaneArchive:    "archive",
}

// Span is one completed phase on the simulated clock. StartNs/DurNs are
// simulated nanoseconds (xpsim.Ctx cost), not host time: the trace
// reconstructs the timeline the cost model computed, which is the
// timeline the paper's figures are drawn in.
type Span struct {
	Name    string `json:"name"`
	Cat     string `json:"cat,omitempty"`
	Lane    int64  `json:"lane"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Tracer records spans into a bounded ring. The zero value is unusable;
// build one with NewTracer. A nil *Tracer is the disabled fast path:
// every method nil-checks first, so instrumented hot loops pay one
// predictable branch when tracing is off.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int   // ring write position
	filled  bool  // ring has wrapped at least once
	dropped int64 // spans overwritten after the ring wrapped
}

// DefaultRingSpans bounds the span ring when callers pass cap <= 0.
const DefaultRingSpans = 4096

// NewTracer builds a tracer holding the most recent capSpans spans
// (DefaultRingSpans if capSpans <= 0).
func NewTracer(capSpans int) *Tracer {
	if capSpans <= 0 {
		capSpans = DefaultRingSpans
	}
	return &Tracer{ring: make([]Span, 0, capSpans)}
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one span. Nil-safe no-op when the tracer is disabled.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.filled = true
		t.dropped++
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.mu.Unlock()
}

// EmitPhase is the common-case helper: one span of dur simulated ns
// starting at startNs on the given lane.
func (t *Tracer) EmitPhase(name string, lane int64, startNs, durNs int64) {
	if t == nil {
		return
	}
	t.Emit(Span{Name: name, Cat: "phase", Lane: lane, StartNs: startNs, DurNs: durNs})
}

// Len reports the number of buffered spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped reports how many spans were overwritten because the ring
// wrapped.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the buffered spans oldest-first without clearing.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.orderedLocked()
}

// Drain returns the buffered spans oldest-first and clears the ring —
// the GET /v1/trace contract: each scrape hands the caller everything
// recorded since the previous one.
func (t *Tracer) Drain() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.orderedLocked()
	t.ring = t.ring[:0]
	t.next = 0
	t.filled = false
	return out
}

func (t *Tracer) orderedLocked() []Span {
	out := make([]Span, 0, len(t.ring))
	if t.filled {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON array
// (the "JSON array format" chrome://tracing and Perfetto load
// directly): one complete event (ph "X") per span with ts/dur in
// microseconds, plus thread_name metadata events (ph "M") naming the
// fixed lanes. All events use pid 0 — there is one simulated process.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	var b strings.Builder
	b.WriteString("[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
			first = false
		}
		b.WriteString(s)
	}
	lanes := map[int64]bool{}
	for _, s := range spans {
		lanes[s.Lane] = true
	}
	for lane, name := range laneNames {
		if lanes[lane] {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":%d,"args":{"name":%q}}`, lane, name))
		}
	}
	for _, s := range spans {
		cat := s.Cat
		if cat == "" {
			cat = "phase"
		}
		emit(fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d}`,
			s.Name, cat, microseconds(s.StartNs), microseconds(s.DurNs), s.Lane))
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// microseconds formats simulated ns as a decimal µs value without
// losing sub-µs precision.
func microseconds(ns int64) string {
	whole := ns / 1000
	frac := ns % 1000
	if frac == 0 {
		return fmt.Sprintf("%d", whole)
	}
	return fmt.Sprintf("%d.%03d", whole, frac)
}

// WriteJSON renders spans via WriteChromeTrace; alias kept so call
// sites read naturally (tracer output is JSON, the dialect is Chrome).
func (t *Tracer) WriteJSON(w io.Writer) error {
	return WriteChromeTrace(w, t.Snapshot())
}
