package obs

import (
	"strconv"

	"repro/internal/xpsim"
)

// MachineCollector snapshots every device of a simulated Optane machine
// at scrape time: media read/write lines and bytes, read/write
// amplification (Fig. 3b, Fig. 13), XPBuffer hit/miss/eviction counts,
// and local vs remote access ratio per NUMA node (Fig. 4, Fig. 18).
// Each series carries a node="N" label; counters are cheap snapshots
// (the XPBuffer is not drained, so media write counts may lag by up to
// one buffer's worth of dirty lines).
type MachineCollector struct {
	m *xpsim.Machine
}

// NewMachineCollector wraps a machine for registration.
func NewMachineCollector(m *xpsim.Machine) *MachineCollector {
	return &MachineCollector{m: m}
}

// Collect implements Collector.
func (mc *MachineCollector) Collect(emit func(Sample)) {
	for _, d := range mc.m.Devices() {
		st := d.Stats()
		node := Label{"node", strconv.Itoa(d.Node())}
		counter := func(name, help string, v int64) {
			emit(Sample{Name: name, Help: help, Kind: KindCounter, Labels: []Label{node}, Value: float64(v)})
		}
		gauge := func(name, help string, v float64) {
			emit(Sample{Name: name, Help: help, Kind: KindGauge, Labels: []Label{node}, Value: v})
		}
		counter("xpsim_media_read_lines_total", "XPLines read from 3D-XPoint media (XPBuffer misses + RMW).", st.MediaReadLines)
		counter("xpsim_media_write_lines_total", "XPLines written to 3D-XPoint media (dirty evictions + flushes).", st.MediaWriteLines)
		counter("xpsim_media_read_bytes_total", "Bytes read from media (lines x 256 B XPLine).", st.MediaReadBytes())
		counter("xpsim_media_write_bytes_total", "Bytes written to media (lines x 256 B XPLine).", st.MediaWriteBytes())
		counter("xpsim_req_read_bytes_total", "Bytes software requested to read from the device.", st.ReqReadBytes)
		counter("xpsim_req_write_bytes_total", "Bytes software requested to write to the device.", st.ReqWriteBytes)
		gauge("xpsim_read_amplification", "Media bytes read per requested byte (Fig. 3b).", st.ReadAmplification())
		gauge("xpsim_write_amplification", "Media bytes written per requested byte (Fig. 3b, Fig. 13).", st.WriteAmplification())
		counter("xpsim_flushes_total", "Explicit clwb-style line flushes issued.", st.Flushes)
		counter("xpsim_read_ue_total", "Checked reads that hit an uncorrectable line or a dead device.", st.ReadUEs)
		counter("xpbuffer_hits_total", "XPBuffer (write-combining cache) hits.", st.BufHits)
		counter("xpbuffer_misses_total", "XPBuffer misses.", st.BufMisses)
		counter("xpbuffer_evictions_total", "Dirty XPBuffer lines written back on capacity eviction.", st.BufEvictions)
		gauge("xpbuffer_hit_ratio", "XPBuffer hits / (hits + misses).", ratio(st.BufHits, st.BufHits+st.BufMisses))
		counter("xpsim_local_accesses_total", "Line accesses issued from the device's own socket.", st.LocalAccesses)
		counter("xpsim_remote_accesses_total", "Line accesses issued from a remote socket (UPI traffic, Fig. 4).", st.RemoteAccesses)
		gauge("xpsim_local_access_ratio", "Local accesses / all accesses for this node (1.0 = perfectly NUMA-local, Fig. 18).", ratio(st.LocalAccesses, st.LocalAccesses+st.RemoteAccesses))
		gauge("xpsim_device_touched_bytes", "Host memory materialized to back this simulated device.", float64(d.TouchedBytes()))
	}
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
