// Package graphone implements the comparison baseline: GraphOne (Kumar &
// Huang, FAST'19), the state-of-the-art in-memory evolving-graph store the
// paper evaluates against (§II-B, §V-A). It keeps the hybrid format — a
// circular edge log for fresh updates plus per-vertex adjacency lists for
// archived ones — and archives with the global batched *edge-centric*
// strategy: count per-vertex degree increments, allocate each vertex's
// chunk for the batch, then append neighbors one at a time. Those per-edge
// 4-byte writes are exactly what read-modify-writes 256-byte XPLines when
// the adjacency lists live on PMEM (§II-C).
//
// Variants follow the paper: GraphOne-D (all DRAM), GraphOne-P (edge log
// and adjacency on interleaved PMEM via mmap), GraphOne-N (adjacency
// through a file system), and GraphOne-D on Optane Memory Mode.
package graphone

import (
	"fmt"

	"repro/internal/adj"
	"repro/internal/elog"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/pmfs"
	"repro/internal/shard"
	"repro/internal/view"
	"repro/internal/xpsim"
)

// Variant selects the storage substrate.
type Variant int

const (
	// VariantD is the original DRAM-resident GraphOne.
	VariantD Variant = iota
	// VariantP moves the edge log and adjacency lists to app-direct
	// PMEM (mmap-style, Ext4-DAX equivalent), metadata stays in DRAM.
	VariantP
	// VariantN stores adjacency lists through file I/O on a PMEM file
	// system (the NOVA configuration), everything else in DRAM.
	VariantN
	// VariantMM runs the DRAM design on Optane in Memory Mode.
	VariantMM
)

func (v Variant) String() string {
	switch v {
	case VariantD:
		return "GraphOne-D"
	case VariantP:
		return "GraphOne-P"
	case VariantN:
		return "GraphOne-N"
	case VariantMM:
		return "GraphOne-MM"
	}
	return fmt.Sprintf("GraphOne(%d)", int(v))
}

// Options configure a Store.
type Options struct {
	Name             string
	NumVertices      graph.VID
	LogCapacity      int64 // circular edge log entries (default 1M)
	ArchiveThreshold int64 // default 2^16, as in the paper
	ArchiveThreads   int   // default 16
	AdjBytes         int64 // adjacency arena size (per direction)
	Variant          Variant
	// BindSingleNode restricts both memory placement and archiving
	// threads to NUMA node 0 (the Fig. 4a "bind one node" run).
	BindSingleNode bool
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "graphone"
	}
	if o.NumVertices == 0 {
		o.NumVertices = 1024
	}
	if o.LogCapacity <= 0 {
		o.LogCapacity = 1 << 20
	}
	if o.ArchiveThreshold <= 0 {
		o.ArchiveThreshold = 1 << 16
	}
	if o.ArchiveThreads <= 0 {
		o.ArchiveThreads = 16
	}
	if o.AdjBytes <= 0 {
		o.AdjBytes = 64 << 20
	}
	return o
}

// IngestReport summarizes one ingestion in simulated time; logging and
// archiving run as parallel pipelines (§II-B), so the total is their max.
type IngestReport struct {
	Edges     int64
	LogNs     int64
	ArchiveNs int64
	Batches   int64
}

// TotalNs is the simulated wall time.
func (r IngestReport) TotalNs() int64 {
	if r.LogNs > r.ArchiveNs {
		return r.LogNs
	}
	return r.ArchiveNs
}

// Store is a GraphOne instance.
type Store struct {
	opts    Options
	machine *xpsim.Machine
	heap    *pmem.Heap
	budget  *mem.Budget
	lat     *xpsim.LatencyModel

	log  *elog.Log
	adjs [2]*adj.Store // out, in

	records  [2][]uint32
	epoch    uint32
	degEp    [2][]uint32
	degInc   [2][]uint32
	delVerts [2]map[graph.VID]struct{}

	metaBytes int64
	report    IngestReport

	// Phase tracing (nil = disabled); lane cursors as in core.Store.
	tracer  *obs.Tracer
	laneEnd [obs.LaneWorkerBase]int64
}

// SetTracer attaches (or detaches, with nil) a phase tracer; GraphOne
// emits logging spans and combined archive spans (its buffering and
// flushing are one edge-centric phase, §II-B).
func (s *Store) SetTracer(t *obs.Tracer) { s.tracer = t }

// emitSpan places a span at the end of lane and advances the cursor.
func (s *Store) emitSpan(name string, lane int64, durNs int64) {
	start := s.laneEnd[lane]
	s.laneEnd[lane] += durNs
	s.tracer.EmitPhase(name, lane, start, durNs)
}

// RegisterMetrics registers the baseline's occupancy gauges and
// pipeline counters with a registry (the GraphOne analogue of
// core.Store.RegisterMetrics, so the server scrapes either engine).
func (s *Store) RegisterMetrics(r *obs.Registry) {
	gauge := func(name, help string, fn func() float64) {
		r.Register(obs.NewGaugeFunc(name, help, fn))
	}
	gauge("xpgraph_vertices", "Current vertex-ID space of the store.",
		func() float64 { return float64(s.NumVertices()) })
	gauge("xpgraph_elog_capacity_edges", "Circular edge log capacity in edges.",
		func() float64 { return float64(s.log.Cap()) })
	gauge("xpgraph_elog_logged_edges", "Total edges ever appended to the log (head cursor).",
		func() float64 { return float64(s.log.Head()) })
	gauge("xpgraph_elog_buffered_edges", "Edges archived out of the log (buffered cursor).",
		func() float64 { return float64(s.log.Buffered()) })
	gauge("xpgraph_elog_pending_buffer_edges", "Edges logged but not yet archived.",
		func() float64 { return float64(s.log.PendingBuffer()) })
	gauge("xpgraph_elog_pmem_bytes", "Bytes of the circular edge log.",
		func() float64 { return float64(s.log.Bytes()) })
	gauge("xpgraph_pblk_pmem_bytes", "Bytes of archived adjacency blocks.",
		func() float64 { return float64(s.adjs[0].Bytes() + s.adjs[1].Bytes()) })
	r.Register(obs.CollectorFunc(func(emit func(obs.Sample)) {
		rep := s.Report()
		counter := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v})
		}
		counter("xpgraph_ingested_edges_total", "Edges accepted through the logging pipeline.", float64(rep.Edges))
		counter("xpgraph_buffer_phases_total", "Archiving phases executed.", float64(rep.Batches))
		counter("xpgraph_phase_seconds_total", "Simulated seconds spent per pipeline phase.",
			float64(rep.LogNs)/1e9, obs.Label{Key: "phase", Value: "logging"})
		counter("xpgraph_phase_seconds_total", "Simulated seconds spent per pipeline phase.",
			float64(rep.ArchiveNs)/1e9, obs.Label{Key: "phase", Value: "archive"})
	}))
}

// Store conforms to the canonical read surface, so analytics and the
// server run identically over the baseline.
var _ view.View = (*Store)(nil)

// New builds a GraphOne store. heap may be nil for VariantD/VariantMM.
func New(machine *xpsim.Machine, heap *pmem.Heap, budget *mem.Budget, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{opts: opts, machine: machine, heap: heap, budget: budget, lat: &machine.Lat}

	logBytes := opts.LogCapacity*graph.EdgeBytes + 4096
	var logMem mem.Mem
	var adjMems [2]mem.Mem
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)

	placement := pmem.Placement{Kind: pmem.Interleave}
	if opts.BindSingleNode {
		placement = pmem.Placement{Kind: pmem.Bind, Node: 0}
	}

	switch opts.Variant {
	case VariantD:
		logMem = mem.NewDRAM(s.lat, logBytes, budget)
		adjMems[0] = mem.NewDRAM(s.lat, opts.AdjBytes, budget)
		adjMems[1] = mem.NewDRAM(s.lat, opts.AdjBytes, budget)
	case VariantMM:
		logMem = mem.NewMemoryMode(s.lat, logBytes)
		adjMems[0] = mem.NewMemoryMode(s.lat, opts.AdjBytes)
		adjMems[1] = mem.NewMemoryMode(s.lat, opts.AdjBytes)
	case VariantP:
		if heap == nil {
			return nil, fmt.Errorf("graphone: VariantP needs a PMEM heap")
		}
		lr, err := heap.Map(opts.Name+"-elog", logBytes, placement)
		if err != nil {
			return nil, err
		}
		logMem = lr
		for d := 0; d < 2; d++ {
			r, err := heap.Map(fmt.Sprintf("%s-adj-%d", opts.Name, d), opts.AdjBytes, placement)
			if err != nil {
				return nil, err
			}
			adjMems[d] = r
		}
	case VariantN:
		if heap == nil {
			return nil, fmt.Errorf("graphone: VariantN needs a PMEM heap")
		}
		// Log and metadata stay in DRAM; adjacency goes through the
		// file system.
		logMem = mem.NewDRAM(s.lat, logBytes, budget)
		fsRegion, err := heap.Map(opts.Name+"-fs", 2*opts.AdjBytes+(4<<20), placement)
		if err != nil {
			return nil, err
		}
		fs := pmfs.NewFS(fsRegion, s.lat)
		for d := 0; d < 2; d++ {
			fm, err := pmfs.NewFileMem(ctx, fs, fmt.Sprintf("adj-%d.dat", d), opts.AdjBytes)
			if err != nil {
				return nil, err
			}
			adjMems[d] = fm
		}
	default:
		return nil, fmt.Errorf("graphone: unknown variant %d", opts.Variant)
	}

	var err error
	s.log, err = elog.Create(ctx, logMem, opts.LogCapacity, false)
	if err != nil {
		return nil, err
	}
	for d := 0; d < 2; d++ {
		s.adjs[d] = adj.New(adjMems[d], s.lat, opts.NumVertices, adj.Options{Sizing: adj.GraphOneSizing, VolatileCounts: true})
	}
	s.ensureVertices(opts.NumVertices)
	return s, nil
}

func (s *Store) ensureVertices(n graph.VID) {
	cur := graph.VID(len(s.records[0]))
	if n <= cur {
		return
	}
	grow := int(n - cur)
	for d := 0; d < 2; d++ {
		s.records[d] = append(s.records[d], make([]uint32, grow)...)
		s.degEp[d] = append(s.degEp[d], make([]uint32, grow)...)
		s.degInc[d] = append(s.degInc[d], make([]uint32, grow)...)
		s.adjs[d].EnsureVertices(n)
	}
	s.metaBytes += int64(grow) * 24
	_ = s.budget.Charge(int64(grow) * 24)
}

// NumVertices reports the vertex-ID space.
func (s *Store) NumVertices() graph.VID { return graph.VID(len(s.records[0])) }

// Report returns the accumulated ingest report.
func (s *Store) Report() IngestReport { return s.report }

// ResetReport clears it.
func (s *Store) ResetReport() { s.report = IngestReport{} }

// Variant reports the configured variant.
func (s *Store) Variant() Variant { return s.opts.Variant }

const logChunk = 4096

// Ingest streams edges through the logging + archiving pipeline.
func (s *Store) Ingest(edges []graph.Edge) (IngestReport, error) {
	before := s.report
	s.ensureVertices(graph.MaxVID(edges) + 1)
	logCtx := xpsim.NewCtx(s.logNode())
	i := 0
	for i < len(edges) {
		end := i + logChunk
		if end > len(edges) {
			end = len(edges)
		}
		n, err := s.log.Append(logCtx, edges[i:end])
		i += n
		s.report.Edges += int64(n)
		if err != nil && err != elog.ErrFull {
			return IngestReport{}, err
		}
		if err == elog.ErrFull || s.log.PendingBuffer() >= s.opts.ArchiveThreshold {
			if aerr := s.archive(); aerr != nil {
				return IngestReport{}, aerr
			}
		}
	}
	if err := s.ArchiveAll(); err != nil {
		return IngestReport{}, err
	}
	s.report.LogNs += logCtx.Cost.Ns()
	s.emitSpan("log", obs.LaneLogging, logCtx.Cost.Ns())
	r := s.report
	r.Edges -= before.Edges
	r.LogNs -= before.LogNs
	r.ArchiveNs -= before.ArchiveNs
	r.Batches -= before.Batches
	return r, nil
}

func (s *Store) logNode() int {
	if s.opts.BindSingleNode {
		return 0
	}
	return xpsim.NodeUnbound
}

// ArchiveAll archives every logged edge.
func (s *Store) ArchiveAll() error {
	for s.log.PendingBuffer() > 0 {
		if err := s.archive(); err != nil {
			return err
		}
	}
	return nil
}

// archive runs one global batched edge-centric archiving phase (§II-B):
// degree counting, per-vertex chunk allocation, then parallel per-edge
// neighbor appends.
func (s *Store) archive() error {
	from, to := s.log.Buffered(), s.log.Head()
	if to == from {
		return nil
	}
	if max := from + 4*s.opts.ArchiveThreshold; to > max {
		to = max
	}
	s.epoch++
	s.report.Batches++
	threads := s.opts.ArchiveThreads

	coord := xpsim.NewCtx(s.logNode())
	batch := s.log.Read(coord, from, to, nil)
	s.ensureVertices(graph.MaxVID(batch) + 1)

	nRanges := shard.RangesPerWorker * threads
	width := shard.Width(int64(s.NumVertices()), nRanges)
	shards := make([][][]shard.Entry, 2)
	for d := 0; d < 2; d++ {
		shards[d] = make([][]shard.Entry, nRanges)
	}
	// Degree-counting pass plus sharding (both DRAM work).
	for _, e := range batch {
		for d := 0; d < 2; d++ {
			var v graph.VID
			var nbr uint32
			if d == 0 {
				v, nbr = e.Src, e.Dst
			} else {
				v, nbr = e.Target(), e.Src|(e.Dst&graph.DelFlag)
			}
			if s.degEp[d][v] != s.epoch {
				s.degEp[d][v] = s.epoch
				s.degInc[d][v] = 0
			}
			s.degInc[d][v]++
			r := shard.RangeOf(v, width, nRanges)
			shards[d][r] = append(shards[d][r], shard.Entry{V: v, Nbr: nbr})
		}
	}
	s.lat.DRAM(coord, int64(len(batch))*graph.EdgeBytes*2, true, true)
	s.lat.CPU(coord, int64(len(batch))*4)

	// Parallel edge-centric archiving: each worker first allocates the
	// exactly-sized per-vertex chunks for its ranges (the vertices of a
	// range belong to that worker alone), then appends neighbors one at
	// a time — each append one small write into its vertex's chunk.
	var archiveErr error
	nodeOf := xpsim.Unpinned
	if s.opts.BindSingleNode {
		nodeOf = xpsim.PinnedTo(0)
	}
	var phaseNs int64
	for d := 0; d < 2; d++ {
		assign := shard.Balance(shards[d], threads)
		dur := xpsim.ParallelN(threads, s.opts.ArchiveThreads, nodeOf, func(w int, ctx *xpsim.Ctx) {
			for _, ri := range assign[w] {
				for _, se := range shards[d][ri] {
					v := se.V
					if s.degEp[d][v] == s.epoch && s.degInc[d][v] > 0 {
						s.lat.CPU(ctx, 4)
						if err := s.adjs[d].Reserve(ctx, v, int(s.degInc[d][v])); err != nil {
							archiveErr = err
							return
						}
						s.degInc[d][v] = 0 // allocate once per batch
					}
				}
			}
			var one [1]uint32
			for _, ri := range assign[w] {
				for _, se := range shards[d][ri] {
					s.lat.CPU(ctx, 6)
					s.records[d][se.V]++
					if se.Nbr&graph.DelFlag != 0 {
						if s.delVerts[d] == nil {
							s.delVerts[d] = make(map[graph.VID]struct{})
						}
						s.delVerts[d][se.V] = struct{}{}
					}
					one[0] = se.Nbr
					if err := s.adjs[d].Append(ctx, se.V, one[:]); err != nil {
						archiveErr = err
						return
					}
				}
			}
		})
		if int64(dur) > phaseNs {
			phaseNs = int64(dur)
		}
		if archiveErr != nil {
			return archiveErr
		}
	}
	s.log.MarkBuffered(coord, to)
	s.log.MarkFlushed(coord, to)
	s.report.ArchiveNs += coord.Cost.Ns() + phaseNs
	s.emitSpan("archive", obs.LaneArchive, coord.Cost.Ns()+phaseNs)
	return nil
}

// AddEdge logs one edge.
func (s *Store) AddEdge(src, dst graph.VID) error {
	_, err := s.Ingest([]graph.Edge{{Src: src, Dst: dst}})
	return err
}

// DelEdge logs one deletion.
func (s *Store) DelEdge(src, dst graph.VID) error {
	_, err := s.Ingest([]graph.Edge{graph.Del(src, dst)})
	return err
}

// NbrsOut returns v's archived out-neighbors (tombstones resolved).
func (s *Store) NbrsOut(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	return s.nbrs(ctx, 0, v, dst)
}

// NbrsIn returns v's archived in-neighbors.
func (s *Store) NbrsIn(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	return s.nbrs(ctx, 1, v, dst)
}

func (s *Store) nbrs(ctx *xpsim.Ctx, d int, v graph.VID, dst []uint32) []uint32 {
	if v >= s.NumVertices() {
		return dst
	}
	start := len(dst)
	dst = s.adjs[d].Neighbors(ctx, v, dst)
	return resolveTombstones(dst, start)
}

// VisitOut streams v's archived out-neighbors without allocating
// (tombstoned vertices fall back to the resolved path).
func (s *Store) VisitOut(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	s.visit(ctx, 0, v, fn)
}

// VisitIn streams v's archived in-neighbors.
func (s *Store) VisitIn(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	s.visit(ctx, 1, v, fn)
}

func (s *Store) visit(ctx *xpsim.Ctx, d int, v graph.VID, fn func(nbr uint32)) {
	if v >= s.NumVertices() {
		return
	}
	if _, tombstoned := s.delVerts[d][v]; tombstoned {
		for _, nbr := range s.nbrs(ctx, d, v, nil) {
			fn(nbr)
		}
		return
	}
	s.adjs[d].Visit(ctx, v, fn)
}

// Degree reports archived records of v.
func (s *Store) Degree(d int, v graph.VID) int {
	if v >= s.NumVertices() {
		return 0
	}
	return int(s.records[d][v])
}

// PartitionNode reports where v's data lives; GraphOne interleaves, so
// queries cannot exploit locality.
func (s *Store) PartitionNode(d int, v graph.VID) int {
	if s.opts.BindSingleNode {
		return 0
	}
	return xpsim.NodeUnbound
}

// NumPartitions reports 1: GraphOne has no NUMA-aware partitioning.
func (s *Store) NumPartitions() int { return 1 }

// OutNode and InNode report the NUMA home of v's adjacency data; GraphOne
// interleaves everything, so queries cannot exploit locality.
func (s *Store) OutNode(v graph.VID) int { return s.PartitionNode(0, v) }

// InNode reports the NUMA home of v's in-adjacency.
func (s *Store) InNode(v graph.VID) int { return s.PartitionNode(1, v) }

// OutDegree reports the archived out-record count of v.
func (s *Store) OutDegree(v graph.VID) int { return s.Degree(0, v) }

// MemUsage mirrors core.MemUsage fields for the benches.
type MemUsage struct {
	MetaDRAM int64
	ElogPMEM int64
	PblkPMEM int64
}

// MemUsage reports the breakdown.
func (s *Store) MemUsage() MemUsage {
	return MemUsage{
		MetaDRAM: s.metaBytes,
		ElogPMEM: s.log.Bytes(),
		PblkPMEM: s.adjs[0].Bytes() + s.adjs[1].Bytes(),
	}
}

// resolveTombstones removes deletion records (and one matching neighbor
// each) from dst[start:].
func resolveTombstones(dst []uint32, start int) []uint32 {
	recs := dst[start:]
	var dels map[uint32]int
	for _, r := range recs {
		if r&graph.DelFlag != 0 {
			if dels == nil {
				dels = make(map[uint32]int)
			}
			dels[r&^graph.DelFlag]++
		}
	}
	if dels == nil {
		return dst
	}
	out := recs[:0]
	for _, r := range recs {
		if r&graph.DelFlag != 0 {
			continue
		}
		if n := dels[r]; n > 0 {
			dels[r] = n - 1
			continue
		}
		out = append(out, r)
	}
	return dst[:start+len(out)]
}
