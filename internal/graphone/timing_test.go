package graphone

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func TestHostTimingG(t *testing.T) {
	ds, _ := gen.ByName("FS")
	edges := ds.Generate()
	for _, v := range []Variant{VariantD, VariantP} {
		m := xpsim.NewMachine(2, 2<<30, xpsim.DefaultLatency())
		h := pmem.NewHeap(m)
		s, err := New(m, h, nil, Options{Name: "fs", NumVertices: ds.NumVertices(),
			AdjBytes: 512 << 20, ArchiveThreads: 16, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		rep, err := s.Ingest(edges)
		if err != nil {
			t.Fatal(err)
		}
		st := m.TotalStats()
		t.Logf("%s host=%v sim=%v log=%v archive=%v readGB=%.2f writeGB=%.2f wamp=%.2f ramp=%.2f",
			v, time.Since(t0), time.Duration(rep.TotalNs()), time.Duration(rep.LogNs),
			time.Duration(rep.ArchiveNs), float64(st.MediaReadBytes())/1e9,
			float64(st.MediaWriteBytes())/1e9, st.WriteAmplification(), st.ReadAmplification())
	}
}
