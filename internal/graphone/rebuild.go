package graphone

import (
	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

// Rebuild measures GraphOne's crash recovery. The paper notes GraphOne
// recovers by "re-building the data structure, by just running the
// archiving process worked on bulk of data" with a large archiving
// threshold (2^27 edges in the paper; pass the scaled equivalent). The
// durable edge data already exists before the crash, so loading it into
// the log costs nothing here; what recovery pays for is re-reading the
// bulk and redoing all archiving work — which is why XPGraph, which only
// reloads block headers and replays a small log window, recovers 5-9x
// faster (Fig. 15).
//
// Rebuild returns the recovered store and the simulated recovery time in
// nanoseconds.
func Rebuild(machine *xpsim.Machine, heap *pmem.Heap, opts Options, edges []graph.Edge, threshold int64) (*Store, int64, error) {
	opts = opts.withDefaults()
	opts.LogCapacity = int64(len(edges)) + 1024 // the durable bulk
	if threshold > 0 {
		opts.ArchiveThreshold = threshold
	}
	s, err := New(machine, heap, nil, opts)
	if err != nil {
		return nil, 0, err
	}
	// Stage the pre-crash durable data without charging simulated time:
	// it was written before the crash being recovered from.
	setup := xpsim.NewCtx(xpsim.NodeUnbound)
	if _, err := s.log.Append(setup, edges); err != nil {
		return nil, 0, err
	}
	s.ResetReport()
	if err := s.ArchiveAll(); err != nil {
		return nil, 0, err
	}
	return s, s.report.ArchiveNs, nil
}
