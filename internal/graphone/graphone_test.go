package graphone

import (
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func testMachine() (*xpsim.Machine, *pmem.Heap) {
	m := xpsim.NewMachine(2, 512<<20, xpsim.DefaultLatency())
	return m, pmem.NewHeap(m)
}

func sortedU32(u []uint32) []uint32 {
	v := append([]uint32(nil), u...)
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v
}

func sameMultiset(a, b []uint32) bool {
	a, b = sortedU32(a), sortedU32(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func buildRef(edges []graph.Edge) (out, in map[graph.VID][]uint32) {
	out, in = map[graph.VID][]uint32{}, map[graph.VID][]uint32{}
	rm := func(s []uint32, v uint32) []uint32 {
		for i := len(s) - 1; i >= 0; i-- {
			if s[i] == v {
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	for _, e := range edges {
		if e.IsDelete() {
			out[e.Src] = rm(out[e.Src], e.Target())
			in[e.Target()] = rm(in[e.Target()], e.Src)
			continue
		}
		out[e.Src] = append(out[e.Src], e.Dst)
		in[e.Dst] = append(in[e.Dst], e.Src)
	}
	return out, in
}

func checkStore(t *testing.T, s *Store, edges []graph.Edge, numV graph.VID) {
	t.Helper()
	out, in := buildRef(edges)
	ctx := xpsim.NewCtx(0)
	for v := graph.VID(0); v < numV; v++ {
		if got := s.NbrsOut(ctx, v, nil); !sameMultiset(got, out[v]) {
			t.Fatalf("vertex %d out: got %d nbrs, want %d", v, len(got), len(out[v]))
		}
		if got := s.NbrsIn(ctx, v, nil); !sameMultiset(got, in[v]) {
			t.Fatalf("vertex %d in: got %d nbrs, want %d", v, len(got), len(in[v]))
		}
	}
}

func TestIngestAllVariants(t *testing.T) {
	edges := gen.RMAT(9, 8000, 21)
	for name, variant := range map[string]Variant{
		"D": VariantD, "P": VariantP, "N": VariantN, "MM": VariantMM,
	} {
		t.Run(name, func(t *testing.T) {
			m, h := testMachine()
			s, err := New(m, h, nil, Options{Name: "g" + name, NumVertices: 512,
				LogCapacity: 1 << 13, ArchiveThreshold: 1 << 9, ArchiveThreads: 4, Variant: variant})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Ingest(edges)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Edges != int64(len(edges)) || rep.TotalNs() <= 0 || rep.Batches == 0 {
				t.Fatalf("bad report %+v", rep)
			}
			checkStore(t, s, edges, 512)
		})
	}
}

func TestDeletion(t *testing.T) {
	m, h := testMachine()
	s, err := New(m, h, nil, Options{Name: "del", NumVertices: 8, LogCapacity: 64,
		ArchiveThreshold: 4, ArchiveThreads: 2, Variant: VariantP})
	if err != nil {
		t.Fatal(err)
	}
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, graph.Del(0, 1)}
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	checkStore(t, s, edges, 8)
}

func TestPSlowerThanD(t *testing.T) {
	// The §II-C observation that motivates the whole paper: moving
	// GraphOne to PMEM costs several times the ingest time.
	edges := gen.RMAT(11, 60000, 33)
	opt := func(v Variant, name string) Options {
		return Options{Name: name, NumVertices: 2048, LogCapacity: 1 << 15,
			ArchiveThreshold: 1 << 12, ArchiveThreads: 16, Variant: v}
	}
	m1, h1 := testMachine()
	d, err := New(m1, h1, nil, opt(VariantD, "gd"))
	if err != nil {
		t.Fatal(err)
	}
	repD, err := d.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	m2, h2 := testMachine()
	p, err := New(m2, h2, nil, opt(VariantP, "gp"))
	if err != nil {
		t.Fatal(err)
	}
	repP, err := p.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(repP.TotalNs()) / float64(repD.TotalNs())
	if ratio < 2.5 {
		t.Errorf("GraphOne-P/GraphOne-D ingest ratio = %.2f, want >= 2.5 (paper: 6.37x)", ratio)
	}
	// Logging is NOT the bottleneck; archiving is (Fig. 3a).
	if repP.ArchiveNs < repP.LogNs {
		t.Errorf("archiving (%d) should dominate logging (%d) on PMEM", repP.ArchiveNs, repP.LogNs)
	}
}

func TestAmplificationOnPMEM(t *testing.T) {
	// Fig. 3b: archiving brings heavy read/write amplification.
	edges := gen.RMAT(11, 60000, 34)
	m, h := testMachine()
	s, err := New(m, h, nil, Options{Name: "amp", NumVertices: 2048,
		LogCapacity: 1 << 15, ArchiveThreshold: 1 << 12, ArchiveThreads: 16, Variant: VariantP})
	if err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	st := m.TotalStats()
	if amp := st.WriteAmplification(); amp < 2 {
		t.Errorf("write amplification = %.2f, want heavy (paper: 8.56x)", amp)
	}
	if st.MediaReadBytes() < st.ReqWriteBytes {
		t.Errorf("expected RMW media reads to exceed requested write bytes")
	}
}

func TestBindSingleNodeFasterOnPMEM(t *testing.T) {
	// Fig. 4a: binding one NUMA node avoids remote PMEM accesses and
	// speeds GraphOne-P up despite halving parallel resources.
	edges := gen.RMAT(11, 60000, 35)
	run := func(bind bool) int64 {
		m, h := testMachine()
		s, err := New(m, h, nil, Options{Name: "b", NumVertices: 2048,
			LogCapacity: 1 << 15, ArchiveThreshold: 1 << 12, ArchiveThreads: 16,
			Variant: VariantP, BindSingleNode: bind})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Ingest(edges)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalNs()
	}
	normal, bound := run(false), run(true)
	if bound >= normal {
		t.Errorf("bound ingest %dns >= unbound %dns; NUMA binding should win on PMEM", bound, normal)
	}
}

func TestThreadSweepCollapse(t *testing.T) {
	// Fig. 4b: GraphOne-P degrades with too many archiving threads.
	edges := gen.RMAT(11, 60000, 36)
	run := func(threads int) int64 {
		m, h := testMachine()
		s, err := New(m, h, nil, Options{Name: "t", NumVertices: 2048,
			LogCapacity: 1 << 15, ArchiveThreshold: 1 << 12, ArchiveThreads: threads, Variant: VariantP})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Ingest(edges)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ArchiveNs
	}
	t8, t32 := run(8), run(32)
	if t32 <= t8 {
		t.Errorf("32 threads (%dns) should be slower than 8 (%dns) for GraphOne-P", t32, t8)
	}
}

func TestRebuildRecovery(t *testing.T) {
	edges := gen.RMAT(9, 5000, 37)
	m, h := testMachine()
	s, simNs, err := Rebuild(m, h, Options{Name: "rb", NumVertices: 512,
		ArchiveThreads: 4, Variant: VariantP}, edges, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	if simNs <= 0 {
		t.Fatal("recovery must cost simulated time")
	}
	checkStore(t, s, edges, 512)
}

func TestDRAMBudgetOOM(t *testing.T) {
	m, _ := testMachine()
	budget := mem.NewBudget(64 << 10)
	s, err := New(m, nil, budget, Options{Name: "oom", NumVertices: 512,
		LogCapacity: 1 << 12, ArchiveThreshold: 1 << 8, ArchiveThreads: 2, Variant: VariantD})
	if err != nil {
		return // construction OOM is fine
	}
	if _, err := s.Ingest(gen.RMAT(10, 30000, 4)); err == nil {
		t.Fatal("expected OOM")
	}
}

func TestGraphOneAPISurface(t *testing.T) {
	m, h := testMachine()
	s, err := New(m, h, nil, Options{Name: "api", NumVertices: 16,
		LogCapacity: 256, ArchiveThreshold: 4, ArchiveThreads: 2, Variant: VariantP})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.DelEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(3, 1); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	if got := s.NbrsOut(ctx, 1, nil); len(got) != 0 {
		t.Fatalf("out(1) after del = %v", got)
	}
	var in []uint32
	s.VisitIn(ctx, 1, func(n uint32) { in = append(in, n) })
	if len(in) != 1 || in[0] != 3 {
		t.Fatalf("VisitIn(1) = %v", in)
	}
	var out []uint32
	s.VisitOut(ctx, 3, func(n uint32) { out = append(out, n) })
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("VisitOut(3) = %v", out)
	}
	if s.Variant() != VariantP || s.Variant().String() != "GraphOne-P" {
		t.Fatal("variant accessors")
	}
	if VariantN.String() != "GraphOne-N" || VariantMM.String() != "GraphOne-MM" || Variant(9).String() == "" {
		t.Fatal("variant names")
	}
	if s.Degree(0, 3) != 1 || s.Degree(0, 999) != 0 || s.OutDegree(3) != 1 {
		t.Fatal("degrees")
	}
	if s.NumPartitions() != 1 || s.PartitionNode(0, 1) != xpsim.NodeUnbound ||
		s.OutNode(1) != s.InNode(1) {
		t.Fatal("partition surface")
	}
	if s.Report().Edges != 3 {
		t.Fatalf("report edges = %d", s.Report().Edges)
	}
	u := s.MemUsage()
	if u.ElogPMEM == 0 || u.MetaDRAM == 0 {
		t.Fatalf("mem usage %+v", u)
	}
	// Bound variant reports node 0 everywhere.
	s2, err := New(m, nil, nil, Options{Name: "apib", NumVertices: 8, Variant: VariantD, BindSingleNode: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.PartitionNode(0, 5) != 0 {
		t.Fatal("bound store should report node 0")
	}
}
