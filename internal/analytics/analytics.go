// Package analytics implements the graph query workloads of the paper's
// evaluation (§V-C, Fig. 14): the one-hop neighbor query, BFS, PageRank
// and Connected Components, all written against a store-agnostic View so
// they run identically on XPGraph and GraphOne.
//
// Parallel queries follow §III-D's CPU-binding strategy: at the start of
// each computing iteration, vertices are classified by the NUMA node that
// owns their adjacency data and each class is processed by worker threads
// bound to that node's cores — avoiding both remote PMEM reads and
// per-vertex thread migration.
package analytics

import (
	"repro/internal/graph"
	"repro/internal/view"
	"repro/internal/xpsim"
)

// Engine runs queries over a view.View — the one canonical read
// surface — with a fixed thread budget. It never sees a concrete store
// type: a single core.Snapshot and a partitioned cluster.ClusterView
// run every algorithm identically. (The old `analytics.View` alias is
// gone; depend on view.View directly.)
type Engine struct {
	view    view.View
	lat     *xpsim.LatencyModel
	threads int
	sockets int
	// bind classifies work by NUMA node before running (§III-D); false
	// reproduces the unbound baseline of Fig. 18.
	bind bool
}

// NewEngine builds a query engine. threads is the total query
// parallelism (the paper uses all 96 hardware threads).
func NewEngine(view view.View, lat *xpsim.LatencyModel, threads int) *Engine {
	if threads <= 0 {
		threads = 1
	}
	return &Engine{view: view, lat: lat, threads: threads, sockets: 2, bind: true}
}

// SetSockets tells the engine how many sockets the machine has; threads
// bound to one node cannot exceed that node's share of the cores — the
// load-imbalance problem of out/in-graph binding (§V-E, Fig. 18).
func (e *Engine) SetSockets(n int) {
	if n > 0 {
		e.sockets = n
	}
}

// SetBinding toggles NUMA-classified query binding.
func (e *Engine) SetBinding(on bool) { e.bind = on }

// classify buckets vertices by owning node. Unbound vertices all land in
// one bucket keyed by xpsim.NodeUnbound.
func (e *Engine) classify(vs []graph.VID, nodeOf func(graph.VID) int) map[int][]graph.VID {
	buckets := make(map[int][]graph.VID)
	if !e.bind {
		buckets[xpsim.NodeUnbound] = vs
		return buckets
	}
	for _, v := range vs {
		n := nodeOf(v)
		buckets[n] = append(buckets[n], v)
	}
	return buckets
}

// parRun processes the vertex buckets: each bucket gets an equal share of
// the threads, bound to the bucket's node, and all buckets run
// concurrently — the phase's simulated time is the slowest bucket.
func (e *Engine) parRun(buckets map[int][]graph.VID, work func(ctx *xpsim.Ctx, v graph.VID)) int64 {
	if len(buckets) == 0 {
		return 0
	}
	per := e.threads / len(buckets)
	if per < 1 {
		per = 1
	}
	// A bound bucket can only use its node's cores.
	perNodeCap := e.threads / e.sockets
	if perNodeCap < 1 {
		perNodeCap = 1
	}
	var phaseNs int64
	for node, vs := range buckets {
		workers := per
		// contention is per-device pressure: workers bound to one node
		// all hammer that node's DIMMs, while unbound workers spread
		// across the sockets — this asymmetry is why concentrating all
		// query threads on one socket (out/in-graph binding) loses to
		// both spreading and sub-graph binding (§V-E, Fig. 18).
		contention := workers
		if node == xpsim.NodeUnbound {
			contention = workers / e.sockets
			if contention < 1 {
				contention = 1
			}
		} else if workers > perNodeCap {
			workers = perNodeCap
			contention = workers
		}
		n := node
		dur := xpsim.ParallelN(workers, contention, func(int) int { return n }, func(w int, ctx *xpsim.Ctx) {
			for i := w; i < len(vs); i += workers {
				work(ctx, vs[i])
			}
		})
		if int64(dur) > phaseNs {
			phaseNs = int64(dur)
		}
	}
	return phaseNs
}

// OneHopResult reports the one-hop neighbor query workload.
type OneHopResult struct {
	SimNs   int64
	Queried int64
	Touched int64 // neighbor records fetched
}

// OneHop queries the out-neighbors of `count` random non-zero-degree
// vertices (the paper uses 2^24; pass the scaled equivalent).
func (e *Engine) OneHop(count int, seed uint64) OneHopResult {
	numV := e.view.NumVertices()
	if numV == 0 {
		return OneHopResult{}
	}
	// Sample non-zero-degree vertices deterministically.
	vs := make([]graph.VID, 0, count)
	state := seed
	for attempts := 0; len(vs) < count && attempts < count*64; attempts++ {
		state = state*6364136223846793005 + 1442695040888963407
		v := graph.VID((state >> 33) % uint64(numV))
		if e.view.OutDegree(v) > 0 {
			vs = append(vs, v)
		}
	}
	var touched int64
	ns := e.parRun(e.classify(vs, e.view.OutNode), func(ctx *xpsim.Ctx, v graph.VID) {
		var n int64
		e.view.VisitOut(ctx, v, func(uint32) { n++ })
		touched += n
		e.lat.CPU(ctx, n)
	})
	return OneHopResult{SimNs: ns, Queried: int64(len(vs)), Touched: touched}
}

// BFSResult reports one traversal.
type BFSResult struct {
	SimNs   int64
	Visited int64
	Levels  int
}

// BFS traverses the connected out-subgraph from root, level-synchronous,
// classifying each frontier by NUMA node before processing (§III-D).
func (e *Engine) BFS(root graph.VID) BFSResult {
	numV := e.view.NumVertices()
	if root >= numV {
		return BFSResult{}
	}
	visited := make([]bool, numV)
	visited[root] = true
	frontier := []graph.VID{root}
	res := BFSResult{Visited: 1}
	for len(frontier) > 0 {
		res.Levels++
		var next []graph.VID
		ns := e.parRun(e.classify(frontier, e.view.OutNode), func(ctx *xpsim.Ctx, v graph.VID) {
			e.view.VisitOut(ctx, v, func(nb uint32) {
				e.lat.CPU(ctx, 2)
				if nb < uint32(numV) && !visited[nb] {
					visited[nb] = true
					next = append(next, graph.VID(nb))
				}
			})
		})
		res.SimNs += ns
		res.Visited += int64(len(next))
		frontier = next
	}
	return res
}

// PageRankResult reports a PageRank run.
type PageRankResult struct {
	SimNs int64
	Ranks []float64
}

// PageRank runs the standard pull-based iteration (damping 0.85) for
// `iters` iterations (the paper uses ten).
func (e *Engine) PageRank(iters int) PageRankResult {
	numV := int(e.view.NumVertices())
	if numV == 0 {
		return PageRankResult{}
	}
	const d = 0.85
	rank := make([]float64, numV)
	next := make([]float64, numV)
	for v := range rank {
		rank[v] = 1.0 / float64(numV)
	}
	all := make([]graph.VID, numV)
	for v := range all {
		all[v] = graph.VID(v)
	}
	buckets := e.classify(all, e.view.InNode)
	var res PageRankResult
	for it := 0; it < iters; it++ {
		ns := e.parRun(buckets, func(ctx *xpsim.Ctx, v graph.VID) {
			var sum float64
			e.view.VisitIn(ctx, v, func(u uint32) {
				e.lat.CPU(ctx, 3)
				if int(u) >= numV {
					return
				}
				if deg := e.view.OutDegree(graph.VID(u)); deg > 0 {
					sum += rank[u] / float64(deg)
				}
			})
			next[v] = (1-d)/float64(numV) + d*sum
		})
		rank, next = next, rank
		res.SimNs += ns
	}
	res.Ranks = rank
	return res
}

// CCResult reports a connected-components run.
type CCResult struct {
	SimNs      int64
	Components int
	Labels     []uint32
}

// CC finds connected components of the undirected view (out ∪ in edges)
// by label propagation to convergence.
func (e *Engine) CC() CCResult {
	numV := int(e.view.NumVertices())
	if numV == 0 {
		return CCResult{}
	}
	labels := make([]uint32, numV)
	for v := range labels {
		labels[v] = uint32(v)
	}
	all := make([]graph.VID, numV)
	for v := range all {
		all[v] = graph.VID(v)
	}
	buckets := e.classify(all, e.view.OutNode)
	var res CCResult
	for changed := true; changed; {
		changed = false
		ns := e.parRun(buckets, func(ctx *xpsim.Ctx, v graph.VID) {
			min := labels[v]
			scan := func(u uint32) {
				e.lat.CPU(ctx, 2)
				if int(u) < numV && labels[u] < min {
					min = labels[u]
				}
			}
			e.view.VisitOut(ctx, v, scan)
			e.view.VisitIn(ctx, v, scan)
			if min < labels[v] {
				labels[v] = min
				changed = true
			}
		})
		res.SimNs += ns
	}
	comps := make(map[uint32]bool)
	for _, l := range labels {
		comps[l] = true
	}
	res.Components = len(comps)
	res.Labels = labels
	return res
}
