package analytics

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/xpsim"
)

// KHopResult reports a bounded-depth neighborhood query.
type KHopResult struct {
	SimNs   int64
	Reached int64 // vertices within k hops (excluding the root)
	PerHop  []int64
}

// KHop explores the out-neighborhood of root up to k hops — the
// generalization of the one-hop query of §V-C that graph-serving
// workloads (friends-of-friends, fraud rings) issue constantly.
func (e *Engine) KHop(root graph.VID, k int) KHopResult {
	numV := e.view.NumVertices()
	if root >= numV || k <= 0 {
		return KHopResult{}
	}
	visited := make([]bool, numV)
	visited[root] = true
	frontier := []graph.VID{root}
	var res KHopResult
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []graph.VID
		ns := e.parRun(e.classify(frontier, e.view.OutNode), func(ctx *xpsim.Ctx, v graph.VID) {
			e.view.VisitOut(ctx, v, func(nb uint32) {
				e.lat.CPU(ctx, 2)
				if nb < uint32(numV) && !visited[nb] {
					visited[nb] = true
					next = append(next, graph.VID(nb))
				}
			})
		})
		res.SimNs += ns
		res.PerHop = append(res.PerHop, int64(len(next)))
		res.Reached += int64(len(next))
		frontier = next
	}
	return res
}

// TriangleResult reports a triangle count.
type TriangleResult struct {
	SimNs     int64
	Triangles int64
}

// Triangles counts undirected triangles with the standard
// merge-intersection over degree-ordered adjacency: each vertex's
// undirected neighbor set is materialized once (sorted, deduplicated),
// and each edge (u,v) with rank(u) < rank(v) contributes the size of the
// intersection of their higher-ranked neighbors.
func (e *Engine) Triangles() TriangleResult {
	numV := int(e.view.NumVertices())
	if numV == 0 {
		return TriangleResult{}
	}
	// Materialize undirected, deduplicated adjacency (charged reads).
	adj := make([][]uint32, numV)
	all := make([]graph.VID, numV)
	for v := range all {
		all[v] = graph.VID(v)
	}
	var res TriangleResult
	res.SimNs += e.parRun(e.classify(all, e.view.OutNode), func(ctx *xpsim.Ctx, v graph.VID) {
		var set []uint32
		collect := func(u uint32) {
			if int(u) < numV && u != uint32(v) {
				set = append(set, u)
			}
		}
		e.view.VisitOut(ctx, v, collect)
		e.view.VisitIn(ctx, v, collect)
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		dedup := set[:0]
		for i, u := range set {
			if i == 0 || u != set[i-1] {
				dedup = append(dedup, u)
			}
		}
		e.lat.CPU(ctx, int64(len(set)))
		adj[v] = dedup
	})

	// rank(v): by degree then ID — keeps hub work subquadratic.
	rank := make([]int32, numV)
	order := make([]int32, numV)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(adj[order[i]]), len(adj[order[j]])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	for r, v := range order {
		rank[v] = int32(r)
	}

	res.SimNs += e.parRun(e.classify(all, e.view.OutNode), func(ctx *xpsim.Ctx, v graph.VID) {
		for _, u := range adj[v] {
			if rank[u] <= rank[v] {
				continue
			}
			// Intersect higher-ranked neighbors of v and u.
			a, b := adj[v], adj[u]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				e.lat.CPU(ctx, 1)
				switch {
				case a[i] == b[j]:
					if rank[a[i]] > rank[u] {
						res.Triangles++
					}
					i++
					j++
				case a[i] < b[j]:
					i++
				default:
					j++
				}
			}
		}
	})
	return res
}

// DegreeHistogramResult buckets out-degrees the way §III-C discusses.
type DegreeHistogramResult struct {
	SimNs   int64
	Buckets [5]int64 // 0, 1-2, 3-7, 8-63, 64+
}

// DegreeHistogram classifies every vertex by stored out-degree.
func (e *Engine) DegreeHistogram() DegreeHistogramResult {
	numV := int(e.view.NumVertices())
	var res DegreeHistogramResult
	for v := 0; v < numV; v++ {
		d := e.view.OutDegree(graph.VID(v))
		switch {
		case d == 0:
			res.Buckets[0]++
		case d <= 2:
			res.Buckets[1]++
		case d <= 7:
			res.Buckets[2]++
		case d <= 63:
			res.Buckets[3]++
		default:
			res.Buckets[4]++
		}
	}
	return res
}
