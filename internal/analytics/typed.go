package analytics

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prop"
	"repro/internal/view"
	"repro/internal/xpsim"
)

// Typed traversals (DESIGN.md §13). The filter is pushed down into the
// view layer — VisitOutTyped prunes while the adjacency stream decodes —
// so a pruned vertex never joins the frontier and its adjacency lists
// are never read at the next hop. That frontier shrinkage, not the
// per-edge label test, is where a selective filter saves media reads
// over traverse-all-then-filter (the BENCH_9 gate measures exactly
// this).

// ErrNoTypedView reports a typed traversal over a view that does not
// implement the typed surface (e.g. the GraphOne baseline).
var ErrNoTypedView = fmt.Errorf("analytics: view has no typed read surface")

// typedView asserts the engine's view up to the typed surface.
func (e *Engine) typedView() (view.Full, error) {
	tv, ok := e.view.(view.Full)
	if !ok {
		return nil, ErrNoTypedView
	}
	return tv, nil
}

// KHopFiltered is KHop expanding only edges that pass f: an edge is
// followed when its label is in f.Types and its destination passes the
// property predicate. With an empty filter it degenerates to KHop.
func (e *Engine) KHopFiltered(root graph.VID, k int, f prop.Filter) (KHopResult, error) {
	tv, err := e.typedView()
	if err != nil {
		return KHopResult{}, err
	}
	if err := f.Validate(); err != nil {
		return KHopResult{}, err
	}
	numV := e.view.NumVertices()
	if root >= numV || k <= 0 {
		return KHopResult{}, nil
	}
	visited := make([]bool, numV)
	visited[root] = true
	frontier := []graph.VID{root}
	var res KHopResult
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []graph.VID
		var verr error
		ns := e.parRun(e.classify(frontier, e.view.OutNode), func(ctx *xpsim.Ctx, v graph.VID) {
			err := tv.VisitOutTyped(ctx, v, f, func(nb uint32, _ uint16) {
				e.lat.CPU(ctx, 2)
				if nb < uint32(numV) && !visited[nb] {
					visited[nb] = true
					next = append(next, graph.VID(nb))
				}
			})
			if err != nil && verr == nil {
				verr = err
			}
		})
		if verr != nil {
			return KHopResult{}, verr
		}
		res.SimNs += ns
		res.PerHop = append(res.PerHop, int64(len(next)))
		res.Reached += int64(len(next))
		frontier = next
	}
	return res, nil
}

// PathResult reports a filtered shortest-path search.
type PathResult struct {
	SimNs int64
	Found bool
	// Path is the vertex sequence root..target inclusive when found.
	Path []graph.VID
	Hops int
}

// Path finds a shortest path (by hop count) from root to target through
// edges passing f, exploring at most maxDepth hops. The same pushdown
// applies: pruned edges never extend the search frontier.
func (e *Engine) Path(root, target graph.VID, maxDepth int, f prop.Filter) (PathResult, error) {
	tv, err := e.typedView()
	if err != nil {
		return PathResult{}, err
	}
	if err := f.Validate(); err != nil {
		return PathResult{}, err
	}
	numV := e.view.NumVertices()
	if root >= numV || target >= numV || maxDepth <= 0 {
		return PathResult{}, nil
	}
	if root == target {
		return PathResult{Found: true, Path: []graph.VID{root}}, nil
	}
	const noParent = ^uint32(0)
	parent := make([]uint32, numV)
	for i := range parent {
		parent[i] = noParent
	}
	parent[root] = uint32(root)
	frontier := []graph.VID{root}
	var res PathResult
	for hop := 0; hop < maxDepth && len(frontier) > 0 && !res.Found; hop++ {
		var next []graph.VID
		var verr error
		ns := e.parRun(e.classify(frontier, e.view.OutNode), func(ctx *xpsim.Ctx, v graph.VID) {
			err := tv.VisitOutTyped(ctx, v, f, func(nb uint32, _ uint16) {
				e.lat.CPU(ctx, 2)
				if nb < uint32(numV) && parent[nb] == noParent {
					parent[nb] = uint32(v)
					if graph.VID(nb) == target {
						res.Found = true
					}
					next = append(next, graph.VID(nb))
				}
			})
			if err != nil && verr == nil {
				verr = err
			}
		})
		if verr != nil {
			return PathResult{}, verr
		}
		res.SimNs += ns
		frontier = next
	}
	if !res.Found {
		return res, nil
	}
	// Walk the parent chain back from the target.
	var rev []graph.VID
	for v := target; ; v = graph.VID(parent[v]) {
		rev = append(rev, v)
		if v == root {
			break
		}
	}
	res.Path = make([]graph.VID, len(rev))
	for i, v := range rev {
		res.Path[len(rev)-1-i] = v
	}
	res.Hops = len(res.Path) - 1
	return res, nil
}
