package analytics

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pmem"
	"repro/internal/view"
	"repro/internal/xpsim"
)

// TestAnalyticsOnLiveSnapshotUnderIngest is the acceptance test for
// snapshot-isolated analytics: BFS, PageRank and CC run against a live
// core.Snapshot (through view.Guard) while a concurrent goroutine keeps
// ingesting into the same store, and their results must be identical to
// a quiesced run over the same snapshot epoch. Run under -race.
func TestAnalyticsOnLiveSnapshotUnderIngest(t *testing.T) {
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	st, err := core.New(m, pmem.NewHeap(m), nil, core.Options{
		Name: "live", NumVertices: 256, LogCapacity: 1 << 12,
		ArchiveThreshold: 1 << 7, ArchiveThreads: 3})
	if err != nil {
		t.Fatal(err)
	}

	base := gen.RMAT(8, 3000, 77)
	if _, err := st.Ingest(base); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := st.Snapshot(ctx)
	defer snap.Close()

	// Quiesced reference: run over the snapshot with nothing else going on.
	quiet := NewEngine(snap, &m.Lat, 4)
	wantBFS := quiet.BFS(0)
	wantPR := quiet.PageRank(5)
	wantCC := quiet.CC()

	// Concurrent run: same snapshot behind a guard, with a writer
	// applying ingest chunks under the exclusive lock the whole time.
	var mu sync.RWMutex
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		extra := gen.RMAT(8, 6000, 78)
		for i := 0; ; i = (i + 256) % len(extra) {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			end := i + 256
			if end > len(extra) {
				end = len(extra)
			}
			mu.Lock()
			_, err := st.Ingest(extra[i:end])
			mu.Unlock()
			if err != nil {
				writerDone <- err
				return
			}
		}
	}()

	live := NewEngine(view.Guard(snap, &mu), &m.Lat, 4)
	gotBFS := live.BFS(0)
	gotPR := live.PageRank(5)
	gotCC := live.CC()

	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}

	if gotBFS.Visited != wantBFS.Visited || gotBFS.Levels != wantBFS.Levels {
		t.Fatalf("BFS drifted under ingest: got %d visited/%d levels, want %d/%d",
			gotBFS.Visited, gotBFS.Levels, wantBFS.Visited, wantBFS.Levels)
	}
	if len(gotPR.Ranks) != len(wantPR.Ranks) {
		t.Fatalf("PageRank size drifted: %d vs %d", len(gotPR.Ranks), len(wantPR.Ranks))
	}
	for v := range gotPR.Ranks {
		// Exact equality is intended: per-vertex rank sums read a fixed
		// neighbor sequence from the snapshot, so the float arithmetic
		// is bit-identical regardless of interleaving.
		if gotPR.Ranks[v] != wantPR.Ranks[v] {
			t.Fatalf("PageRank drifted at vertex %d: %g != %g", v, gotPR.Ranks[v], wantPR.Ranks[v])
		}
	}
	if gotCC.Components != wantCC.Components {
		t.Fatalf("CC drifted: %d components, want %d", gotCC.Components, wantCC.Components)
	}
	for v := range gotCC.Labels {
		if gotCC.Labels[v] != wantCC.Labels[v] {
			t.Fatalf("CC label drifted at vertex %d: %d != %d", v, gotCC.Labels[v], wantCC.Labels[v])
		}
	}

	// The live store did move on while the analytics ran.
	if st.NumVertices() < snap.NumVertices() {
		t.Fatal("store lost vertices?")
	}
}
