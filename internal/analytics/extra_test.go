package analytics

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestKHop(t *testing.T) {
	// Line graph 0->1->...->9: k hops reach exactly k vertices.
	e := NewEngine(newMapView(10, lineGraph(10)), testLat(), 4)
	for k := 1; k <= 4; k++ {
		res := e.KHop(0, k)
		if res.Reached != int64(k) {
			t.Fatalf("KHop(0,%d) reached %d, want %d", k, res.Reached, k)
		}
		if len(res.PerHop) != k || res.PerHop[k-1] != 1 {
			t.Fatalf("per-hop = %v", res.PerHop)
		}
	}
	if res := e.KHop(0, 100); res.Reached != 9 {
		t.Fatalf("unbounded-ish KHop reached %d, want 9", res.Reached)
	}
	if res := e.KHop(99, 2); res.Reached != 0 {
		t.Fatal("out-of-range root must reach nothing")
	}
}

func TestTrianglesKnownGraphs(t *testing.T) {
	// A triangle plus a dangling edge: exactly one triangle.
	tri := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3}}
	e := NewEngine(newMapView(5, tri), testLat(), 2)
	if got := e.Triangles().Triangles; got != 1 {
		t.Fatalf("triangle graph: %d, want 1", got)
	}

	// K4 has 4 triangles; direction and duplicate edges must not matter.
	var k4 []graph.Edge
	for i := uint32(0); i < 4; i++ {
		for j := uint32(0); j < 4; j++ {
			if i != j {
				k4 = append(k4, graph.Edge{Src: i, Dst: j})
			}
		}
	}
	e = NewEngine(newMapView(4, k4), testLat(), 2)
	if got := e.Triangles().Triangles; got != 4 {
		t.Fatalf("K4: %d triangles, want 4", got)
	}

	// A line has none.
	e = NewEngine(newMapView(10, lineGraph(10)), testLat(), 2)
	if got := e.Triangles().Triangles; got != 0 {
		t.Fatalf("line: %d triangles, want 0", got)
	}
}

func TestTrianglesMatchesBruteForce(t *testing.T) {
	edges := gen.RMAT(6, 300, 20)
	mv := newMapView(64, edges)
	got := NewEngine(mv, testLat(), 4).Triangles().Triangles

	// Brute force on the undirected simple graph.
	und := make([][]bool, 64)
	for i := range und {
		und[i] = make([]bool, 64)
	}
	for _, e := range edges {
		if e.Src != e.Dst {
			und[e.Src][e.Dst] = true
			und[e.Dst][e.Src] = true
		}
	}
	var want int64
	for a := 0; a < 64; a++ {
		for b := a + 1; b < 64; b++ {
			if !und[a][b] {
				continue
			}
			for c := b + 1; c < 64; c++ {
				if und[a][c] && und[b][c] {
					want++
				}
			}
		}
	}
	if got != want {
		t.Fatalf("triangles = %d, brute force = %d", got, want)
	}
}

func TestDegreeHistogramEngine(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 2, Dst: 1}}
	e := NewEngine(newMapView(4, edges), testLat(), 2)
	h := e.DegreeHistogram()
	// Degrees: v0=0, v1=1, v2=2, v3=0.
	if h.Buckets[0] != 2 || h.Buckets[1] != 2 {
		t.Fatalf("histogram = %v", h.Buckets)
	}
}
