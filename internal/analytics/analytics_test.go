package analytics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

// mapView is a plain in-memory reference view.
type mapView struct {
	n        graph.VID
	out, in  map[graph.VID][]uint32
	nodeOfFn func(graph.VID) int
}

func newMapView(numV graph.VID, edges []graph.Edge) *mapView {
	mv := &mapView{n: numV, out: map[graph.VID][]uint32{}, in: map[graph.VID][]uint32{}}
	for _, e := range edges {
		mv.out[e.Src] = append(mv.out[e.Src], e.Dst)
		mv.in[e.Dst] = append(mv.in[e.Dst], e.Src)
	}
	return mv
}

func (m *mapView) NumVertices() graph.VID { return m.n }
func (m *mapView) NbrsOut(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	return append(dst, m.out[v]...)
}
func (m *mapView) NbrsIn(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	return append(dst, m.in[v]...)
}
func (m *mapView) VisitOut(ctx *xpsim.Ctx, v graph.VID, fn func(uint32)) {
	for _, u := range m.out[v] {
		fn(u)
	}
}
func (m *mapView) VisitIn(ctx *xpsim.Ctx, v graph.VID, fn func(uint32)) {
	for _, u := range m.in[v] {
		fn(u)
	}
}
func (m *mapView) OutNode(v graph.VID) int {
	if m.nodeOfFn != nil {
		return m.nodeOfFn(v)
	}
	return xpsim.NodeUnbound
}
func (m *mapView) InNode(v graph.VID) int    { return m.OutNode(v) }
func (m *mapView) OutDegree(v graph.VID) int { return len(m.out[v]) }

func testLat() *xpsim.LatencyModel {
	lat := xpsim.DefaultLatency()
	return &lat
}

func lineGraph(n int) []graph.Edge {
	var es []graph.Edge
	for i := 0; i < n-1; i++ {
		es = append(es, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1)})
	}
	return es
}

func TestBFSLineGraph(t *testing.T) {
	e := NewEngine(newMapView(10, lineGraph(10)), testLat(), 4)
	res := e.BFS(0)
	if res.Visited != 10 || res.Levels != 10 {
		t.Fatalf("BFS on line: visited=%d levels=%d, want 10/10", res.Visited, res.Levels)
	}
	// From the middle, only the suffix is reachable.
	res = e.BFS(5)
	if res.Visited != 5 {
		t.Fatalf("BFS from 5: visited=%d, want 5", res.Visited)
	}
}

func TestBFSMatchesReferenceOnRMAT(t *testing.T) {
	edges := gen.RMAT(10, 8000, 9)
	mv := newMapView(1024, edges)
	e := NewEngine(mv, testLat(), 8)
	res := e.BFS(0)

	// Reference BFS.
	visited := make([]bool, 1024)
	visited[0] = true
	q := []graph.VID{0}
	count := 1
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range mv.out[v] {
			if !visited[u] {
				visited[u] = true
				count++
				q = append(q, graph.VID(u))
			}
		}
	}
	if res.Visited != int64(count) {
		t.Fatalf("BFS visited %d, reference %d", res.Visited, count)
	}
}

func TestCCComponents(t *testing.T) {
	// Two triangles and 4 isolated vertices: 2 + 4 components.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}}
	e := NewEngine(newMapView(10, edges), testLat(), 4)
	res := e.CC()
	if res.Components != 6 {
		t.Fatalf("CC = %d components, want 6", res.Components)
	}
	if res.Labels[1] != res.Labels[2] || res.Labels[0] != res.Labels[1] {
		t.Fatal("triangle not merged")
	}
	if res.Labels[0] == res.Labels[3] {
		t.Fatal("separate components merged")
	}
}

func TestPageRankProperties(t *testing.T) {
	edges := gen.RMAT(8, 2000, 10)
	mv := newMapView(256, edges)
	e := NewEngine(mv, testLat(), 4)
	res := e.PageRank(10)
	var sum float64
	for _, r := range res.Ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Ranks approximately sum to <=1 (dangling vertices leak mass in
	// this formulation, as in most graph-system implementations).
	if sum <= 0 || sum > 1.0001 {
		t.Fatalf("rank sum = %f", sum)
	}
	// A hub with many in-edges must outrank an untouched vertex.
	var hub graph.VID
	best := 0
	for v, ins := range mv.in {
		if len(ins) > best {
			best = len(ins)
			hub = v
		}
	}
	var lone graph.VID
	for v := graph.VID(0); v < 256; v++ {
		if len(mv.in[v]) == 0 {
			lone = v
			break
		}
	}
	if res.Ranks[hub] <= res.Ranks[lone] {
		t.Fatalf("hub rank %g <= lone rank %g", res.Ranks[hub], res.Ranks[lone])
	}
}

func TestPageRankDeterministic(t *testing.T) {
	edges := gen.RMAT(8, 2000, 11)
	a := NewEngine(newMapView(256, edges), testLat(), 4).PageRank(5)
	b := NewEngine(newMapView(256, edges), testLat(), 8).PageRank(5)
	for i := range a.Ranks {
		if math.Abs(a.Ranks[i]-b.Ranks[i]) > 1e-12 {
			t.Fatal("PageRank result depends on thread count")
		}
	}
}

func TestOneHop(t *testing.T) {
	edges := gen.RMAT(8, 2000, 12)
	e := NewEngine(newMapView(256, edges), testLat(), 4)
	res := e.OneHop(100, 42)
	if res.Queried != 100 || res.Touched <= 0 {
		t.Fatalf("one-hop queried=%d touched=%d", res.Queried, res.Touched)
	}
}

func TestAnalyticsOnXPGraph(t *testing.T) {
	// End-to-end: the algorithms agree between the reference view and a
	// real XPGraph store holding the same edges.
	edges := gen.RMAT(9, 6000, 13)
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	s, err := core.New(m, h, nil, core.Options{Name: "an", NumVertices: 512,
		LogCapacity: 1 << 13, ArchiveThreshold: 1 << 9, ArchiveThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	ref := NewEngine(newMapView(512, edges), testLat(), 4)
	got := NewEngine(s, &m.Lat, 4)

	if a, b := got.BFS(0), ref.BFS(0); a.Visited != b.Visited {
		t.Fatalf("BFS visited %d vs reference %d", a.Visited, b.Visited)
	}
	if a, b := got.CC(), ref.CC(); a.Components != b.Components {
		t.Fatalf("CC %d vs reference %d", a.Components, b.Components)
	}
	a, b := got.PageRank(10), ref.PageRank(10)
	for i := range a.Ranks {
		if math.Abs(a.Ranks[i]-b.Ranks[i]) > 1e-9 {
			t.Fatalf("PageRank diverges at %d: %g vs %g", i, a.Ranks[i], b.Ranks[i])
		}
	}
	if a.SimNs <= 0 {
		t.Fatal("query must cost simulated time")
	}
}

func TestBindingReducesQueryCost(t *testing.T) {
	// Sub-graph partitioned data: bound queries avoid remote reads.
	edges := gen.RMAT(10, 30000, 14)
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	s, err := core.New(m, h, nil, core.Options{Name: "bind", NumVertices: 1024,
		LogCapacity: 1 << 15, ArchiveThreshold: 1 << 10, ArchiveThreads: 8,
		NUMA: core.NUMASubgraph})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAllVbufs(); err != nil { // force queries to PMEM
		t.Fatal(err)
	}
	bound := NewEngine(s, &m.Lat, 8)
	unbound := NewEngine(s, &m.Lat, 8)
	unbound.SetBinding(false)
	rb, ru := bound.BFS(0), unbound.BFS(0)
	if rb.Visited != ru.Visited {
		t.Fatal("binding changed traversal result")
	}
	if rb.SimNs >= ru.SimNs {
		t.Errorf("bound BFS %dns >= unbound %dns; binding should win", rb.SimNs, ru.SimNs)
	}
}

func TestOutInBindingHurtsQueries(t *testing.T) {
	// §V-E / Fig. 18: out/in-graph binding concentrates all out-neighbor
	// queries on one socket's cores, so BFS is slower than with the
	// load-balanced sub-graph binding.
	edges := gen.RMAT(10, 30000, 15)
	run := func(mode core.NUMAMode) int64 {
		m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
		h := pmem.NewHeap(m)
		s, err := core.New(m, h, nil, core.Options{Name: "oig", NumVertices: 1024,
			LogCapacity: 1 << 15, ArchiveThreshold: 1 << 10, ArchiveThreads: 8, NUMA: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(edges); err != nil {
			t.Fatal(err)
		}
		if err := s.FlushAllVbufs(); err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s, &m.Lat, 16)
		return e.BFS(0).SimNs
	}
	oig := run(core.NUMAOutIn)
	sg := run(core.NUMASubgraph)
	if sg >= oig {
		t.Errorf("sub-graph BFS (%d) should beat out/in-graph binding (%d)", sg, oig)
	}
}

func TestCCDeterministicAcrossThreads(t *testing.T) {
	edges := gen.RMAT(9, 4000, 16)
	a := NewEngine(newMapView(512, edges), testLat(), 2).CC()
	b := NewEngine(newMapView(512, edges), testLat(), 16).CC()
	if a.Components != b.Components {
		t.Fatalf("CC components differ by thread count: %d vs %d", a.Components, b.Components)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("CC labels differ by thread count")
		}
	}
}

func TestOneHopSkipsZeroDegree(t *testing.T) {
	// Only vertex 7 has out-edges; every sample must be vertex 7.
	edges := []graph.Edge{{Src: 7, Dst: 1}, {Src: 7, Dst: 2}}
	mv := newMapView(64, edges)
	e := NewEngine(mv, testLat(), 2)
	res := e.OneHop(50, 9)
	if res.Queried != 50 || res.Touched != 100 {
		t.Fatalf("one-hop queried=%d touched=%d, want 50/100", res.Queried, res.Touched)
	}
}

func TestMoreThreadsReduceSimTime(t *testing.T) {
	edges := gen.RMAT(10, 20000, 17)
	mv := newMapView(1024, edges)
	t1 := NewEngine(mv, testLat(), 1).PageRank(3).SimNs
	t8 := NewEngine(mv, testLat(), 8).PageRank(3).SimNs
	if t8 >= t1 {
		t.Errorf("8 query threads (%d) should beat 1 (%d)", t8, t1)
	}
}
