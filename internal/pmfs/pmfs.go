// Package pmfs is a minimal simulated PMEM file system, the substrate for
// the GraphOne-N baseline (GraphOne doing adjacency I/O through file
// system calls on a NOVA-style PMEM file system, §V-A). Data still lands
// on the simulated Optane devices; what the file system adds is the
// per-operation cost of going through the kernel — VFS dispatch, metadata
// and log management — which is exactly why the paper finds file-I/O based
// graph stores an order of magnitude slower than mmap-based ones
// (Fig. 11; NOVA-Fortis, Fig. 10 of [79]).
package pmfs

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/xpsim"
)

// extentSize is the allocation granularity of the file system.
const extentSize = 1 << 20

// journalRecordBytes is the metadata a log-structured PMEM file system
// persists per mutating operation (NOVA: a log entry with inode update,
// allocation info and checksums). This is what makes GraphOne-N's media
// traffic an order of magnitude above the mmap-based GraphOne-P in the
// paper's Fig. 13 — every 4-byte neighbor write drags file-system
// metadata with it.
const journalRecordBytes = 512

// FS is the simulated file system over a PMEM region.
type FS struct {
	m   mem.Mem
	lat *xpsim.LatencyModel

	mu         sync.Mutex
	files      map[string]*File
	journalOff int64 // bump cursor inside the journal area
	journalLen int64
}

// NewFS builds a file system backed by m.
func NewFS(m mem.Mem, lat *xpsim.LatencyModel) *FS {
	fs := &FS{m: m, lat: lat, files: make(map[string]*File)}
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	// Reserve a circular journal area up front.
	fs.journalLen = 16 << 20
	off, err := m.Alloc(ctx, fs.journalLen, xpsim.XPLineSize)
	if err != nil {
		// Degenerate backing store: journal traffic is skipped.
		fs.journalLen = 0
	}
	fs.journalOff = off
	return fs
}

// journal appends one metadata record for a mutating operation.
func (fs *FS) journal(ctx *xpsim.Ctx) {
	if fs.journalLen == 0 {
		return
	}
	fs.mu.Lock()
	pos := fs.journalOff
	fs.journalOff += journalRecordBytes
	if fs.journalOff+journalRecordBytes > fs.journalLen {
		fs.journalOff = 0
	}
	fs.mu.Unlock()
	rec := make([]byte, journalRecordBytes)
	fs.m.Write(ctx, pos, rec)
}

// File is a byte stream mapped onto region extents.
type File struct {
	fs   *FS
	name string

	mu      sync.Mutex
	extents []int64 // region offset of each extent
	size    int64
}

// Create makes (or truncates) a file. One VFS operation.
func (fs *FS) Create(ctx *xpsim.Ctx, name string) (*File, error) {
	ctx.Cost.Add(fs.lat.VFSOp)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &File{fs: fs, name: name}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file. One VFS operation.
func (fs *FS) Open(ctx *xpsim.Ctx, name string) (*File, error) {
	ctx.Cost.Add(fs.lat.VFSOp)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("pmfs: %s: no such file", name)
	}
	return f, nil
}

// Size reports the file length.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *File) ensure(ctx *xpsim.Ctx, size int64) error {
	for int64(len(f.extents))*extentSize < size {
		off, err := f.fs.m.Alloc(ctx, extentSize, xpsim.XPLineSize)
		if err != nil {
			return fmt.Errorf("pmfs: grow %s: %w", f.name, err)
		}
		f.extents = append(f.extents, off)
	}
	if size > f.size {
		f.size = size
	}
	return nil
}

// WriteAt is a pwrite(2): one VFS operation, one journal record, plus the
// data traffic.
func (f *File) WriteAt(ctx *xpsim.Ctx, off int64, p []byte) error {
	ctx.Cost.Add(f.fs.lat.VFSOp)
	f.fs.journal(ctx)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.ensure(ctx, off+int64(len(p))); err != nil {
		return err
	}
	for len(p) > 0 {
		e := off / extentSize
		within := off % extentSize
		n := int64(len(p))
		if n > extentSize-within {
			n = extentSize - within
		}
		f.fs.m.Write(ctx, f.extents[e]+within, p[:n])
		p = p[n:]
		off += n
	}
	return nil
}

// ReadAt is a pread(2): one VFS operation plus the data traffic.
func (f *File) ReadAt(ctx *xpsim.Ctx, off int64, p []byte) error {
	ctx.Cost.Add(f.fs.lat.VFSOp)
	f.mu.Lock()
	defer f.mu.Unlock()
	if off+int64(len(p)) > f.size {
		return fmt.Errorf("pmfs: read past EOF of %s", f.name)
	}
	for len(p) > 0 {
		e := off / extentSize
		within := off % extentSize
		n := int64(len(p))
		if n > extentSize-within {
			n = extentSize - within
		}
		f.fs.m.Read(ctx, f.extents[e]+within, p[:n])
		p = p[n:]
		off += n
	}
	return nil
}

// FileMem adapts a File to the mem.Mem interface, so a graph store
// written against flat memory can be rebased onto file I/O — which is
// precisely how the paper builds GraphOne-N ("only changes the adjacency
// list related memory interfaces based operations to file-I/O based
// operations", §V-A).
type FileMem struct {
	f    *File
	size int64

	mu    sync.Mutex
	alloc int64
}

var _ mem.Mem = (*FileMem)(nil)

// NewFileMem creates a file-backed memory of `size` bytes.
func NewFileMem(ctx *xpsim.Ctx, fs *FS, name string, size int64) (*FileMem, error) {
	f, err := fs.Create(ctx, name)
	if err != nil {
		return nil, err
	}
	return &FileMem{f: f, size: size}, nil
}

// Read implements mem.Mem (a pread per call).
func (fm *FileMem) Read(ctx *xpsim.Ctx, off int64, p []byte) {
	if err := fm.f.ReadAt(ctx, off, p); err != nil {
		panic(err)
	}
}

// Write implements mem.Mem (a pwrite per call).
func (fm *FileMem) Write(ctx *xpsim.Ctx, off int64, p []byte) {
	if err := fm.f.WriteAt(ctx, off, p); err != nil {
		panic(err)
	}
}

// Flush implements mem.Mem: an fsync-like VFS call.
func (fm *FileMem) Flush(ctx *xpsim.Ctx, off, n int64) {
	ctx.Cost.Add(fm.f.fs.lat.VFSOp)
}

// Alloc implements mem.Mem: file offsets are handed out bump-style; the
// file grows lazily on write.
func (fm *FileMem) Alloc(ctx *xpsim.Ctx, n, align int64) (int64, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	base := fm.alloc
	if align > 0 {
		base = (base + align - 1) / align * align
	}
	if base+n > fm.size {
		return 0, fmt.Errorf("pmfs: file memory %s full", fm.f.name)
	}
	// Ensure backing extents exist so later reads in [0,alloc) succeed.
	fm.f.mu.Lock()
	err := fm.f.ensure(ctx, base+n)
	fm.f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	fm.alloc = base + n
	return base, nil
}

// AllocBytes implements mem.Mem.
func (fm *FileMem) AllocBytes() int64 {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	return fm.alloc
}

// Size implements mem.Mem.
func (fm *FileMem) Size() int64 { return fm.size }

// NodeOf implements mem.Mem: locality is hidden behind the kernel.
func (fm *FileMem) NodeOf(int64) int { return -1 }

// Persistent implements mem.Mem.
func (fm *FileMem) Persistent() bool { return true }
