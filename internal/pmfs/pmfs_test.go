package pmfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func testFS(t *testing.T) (*FS, *xpsim.Ctx) {
	t.Helper()
	m := xpsim.NewMachine(2, 64<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, err := h.Map("fs", 32<<20, pmem.Placement{Kind: pmem.Interleave})
	if err != nil {
		t.Fatal(err)
	}
	return NewFS(r, &m.Lat), xpsim.NewCtx(0)
}

func TestFileReadWrite(t *testing.T) {
	fs, ctx := testFS(t)
	f, err := fs.Create(ctx, "adj.dat")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("persisted through the kernel")
	if err := f.WriteAt(ctx, 100, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := f.ReadAt(ctx, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	if f.Size() != 100+int64(len(want)) {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestOpenMissing(t *testing.T) {
	fs, ctx := testFS(t)
	if _, err := fs.Open(ctx, "nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, ctx := testFS(t)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, 0, []byte("xy"))
	if err := f.ReadAt(ctx, 0, make([]byte, 10)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestWriteAcrossExtents(t *testing.T) {
	fs, ctx := testFS(t)
	f, _ := fs.Create(ctx, "big")
	want := make([]byte, extentSize+4096)
	rand.New(rand.NewSource(1)).Read(want)
	off := int64(extentSize - 2048)
	if err := f.WriteAt(ctx, off, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := f.ReadAt(ctx, off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("extent-straddling write corrupted data")
	}
}

func TestVFSOverheadCharged(t *testing.T) {
	fs, ctx := testFS(t)
	f, _ := fs.Create(ctx, "f")
	lat := xpsim.DefaultLatency()
	before := ctx.Cost.Ns()
	f.WriteAt(ctx, 0, []byte{1, 2, 3, 4})
	if ctx.Cost.Ns()-before < lat.VFSOp {
		t.Fatalf("pwrite charged %dns, want at least the VFS overhead %dns",
			ctx.Cost.Ns()-before, lat.VFSOp)
	}
}

func TestFileIOMuchSlowerThanRegion(t *testing.T) {
	// The GraphOne-N motivation: per-neighbor 4-byte writes through the
	// file system are ~an order of magnitude slower than the same writes
	// through mapped memory.
	m := xpsim.NewMachine(2, 64<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, _ := h.Map("raw", 16<<20, pmem.Placement{Kind: pmem.Interleave})
	fileRegion, _ := h.Map("fsdata", 16<<20, pmem.Placement{Kind: pmem.Interleave})
	fs := NewFS(fileRegion, &m.Lat)
	setup := xpsim.NewCtx(0)
	fm, err := NewFileMem(setup, fs, "adj", 8<<20)
	if err != nil {
		t.Fatal(err)
	}

	mmapCtx, fileCtx := xpsim.NewCtx(0), xpsim.NewCtx(0)
	var v [4]byte
	for i := int64(0); i < 1000; i++ {
		r.Write(mmapCtx, r.UserStart()+i*1024, v[:])
		fm.Write(fileCtx, i*1024, v[:])
	}
	if fileCtx.Cost.Ns() < 4*mmapCtx.Cost.Ns() {
		t.Errorf("file I/O %dns vs mmap %dns; want >=4x slower", fileCtx.Cost.Ns(), mmapCtx.Cost.Ns())
	}
}

func TestFileMemMatchesShadow(t *testing.T) {
	f := func(seed int64) bool {
		m := xpsim.NewMachine(1, 32<<20, xpsim.DefaultLatency())
		h := pmem.NewHeap(m)
		r, err := h.Map("fs", 16<<20, pmem.Placement{Kind: pmem.Bind, Node: 0})
		if err != nil {
			return false
		}
		fs := NewFS(r, &m.Lat)
		ctx := xpsim.NewCtx(0)
		fm, err := NewFileMem(ctx, fs, "m", 1<<16)
		if err != nil {
			return false
		}
		if _, err := fm.Alloc(ctx, 1<<16, 1); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		shadow := make([]byte, 1<<16)
		for i := 0; i < 100; i++ {
			off := rng.Int63n(1<<16 - 300)
			n := 1 + rng.Int63n(299)
			if rng.Intn(2) == 0 {
				p := make([]byte, n)
				rng.Read(p)
				fm.Write(ctx, off, p)
				copy(shadow[off:], p)
			} else {
				p := make([]byte, n)
				fm.Read(ctx, off, p)
				if !bytes.Equal(p, shadow[off:off+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestJournalingAddsMediaTraffic(t *testing.T) {
	// NOVA-style metadata journaling: each pwrite drags a journal record
	// with it, multiplying small-write media traffic (the paper's
	// Fig. 13 GraphOne-N columns).
	m := xpsim.NewMachine(1, 128<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, _ := h.Map("fsj", 64<<20, pmem.Placement{Kind: pmem.Bind, Node: 0})
	fs := NewFS(r, &m.Lat)
	ctx := xpsim.NewCtx(0)
	f, _ := fs.Create(ctx, "adj")
	m.ResetStats()
	var v [4]byte
	const n = 2000
	for i := int64(0); i < n; i++ {
		f.WriteAt(ctx, i*1024, v[:])
	}
	st := m.TotalStats()
	if st.ReqWriteBytes < n*(4+journalRecordBytes) {
		t.Fatalf("journal bytes missing: req writes = %d", st.ReqWriteBytes)
	}
}
