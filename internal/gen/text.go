package gen

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ReadTextEdges parses the whitespace-separated edge-list text format used
// by SNAP and KONECT dataset dumps (the paper's real-world graphs ship in
// it): one "src dst" pair per line, with '#' and '%' comment lines
// ignored. Extra columns (weights, timestamps) are ignored.
func ReadTextEdges(r io.Reader) ([]graph.Edge, error) {
	var edges []graph.Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gen: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gen: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gen: line %d: bad destination %q: %v", lineNo, fields[1], err)
		}
		edges = append(edges, graph.Edge{Src: graph.VID(src), Dst: graph.VID(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edges, nil
}

// ReadTextEdgeFile loads a SNAP/KONECT-style text edge list from disk.
func ReadTextEdgeFile(path string) ([]graph.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTextEdges(f)
}

// WriteTextEdges writes edges in the same text format (deletions are
// written as "src dst -1" since the format has no deletion notion).
func WriteTextEdges(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		var err error
		if e.IsDelete() {
			_, err = fmt.Fprintf(bw, "%d %d -1\n", e.Src, e.Target())
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
