// Package gen produces evolving-graph workloads. The paper evaluates on
// four real-world graphs (Twitter, Friendster, UKdomain, YahooWeb) and
// three Graph500 Kronecker graphs (Kron28-30). The real graphs are not
// redistributable and the originals are billions of edges, so the catalog
// here provides ~1/1024-scale RMAT stand-ins that preserve each graph's
// |E|/|V| ratio and power-law degree skew — the two properties XPGraph's
// design decisions depend on (§III-C). The Kron graphs are generated with
// the Graph500 RMAT parameters directly, scaled the same way.
package gen

import (
	"fmt"

	"repro/internal/graph"
)

// splitmix64 is a tiny, fast, seedable RNG — edge generation dominates
// workload setup time, so math/rand is deliberately avoided.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (s *splitmix64) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// RMAT generates numEdges directed edges over 2^scale vertices using the
// recursive-matrix method with the Graph500 parameters
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05).
func RMAT(scale int, numEdges int64, seed uint64) []graph.Edge {
	const a, b, c = 0.57, 0.19, 0.19
	rng := splitmix64(seed)
	edges := make([]graph.Edge, numEdges)
	for i := range edges {
		var src, dst uint32
		for bit := 0; bit < scale; bit++ {
			r := rng.float()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = graph.Edge{Src: src, Dst: dst}
	}
	return edges
}

// Uniform generates numEdges edges uniformly over numV vertices
// (Erdős–Rényi-style; useful as a low-skew contrast workload).
func Uniform(numV uint32, numEdges int64, seed uint64) []graph.Edge {
	rng := splitmix64(seed)
	edges := make([]graph.Edge, numEdges)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: uint32(rng.next() % uint64(numV)),
			Dst: uint32(rng.next() % uint64(numV)),
		}
	}
	return edges
}

// Dataset describes one catalog workload.
type Dataset struct {
	Name  string // paper name (the generated stand-in is ~1/1024 scale)
	Full  string
	Scale int   // RMAT scale: 2^Scale vertices
	Edges int64 // edge count
	Seed  uint64
	// PaperV/PaperE record the original graph's size for documentation.
	PaperV, PaperE string
}

// NumVertices reports the vertex-ID space of the dataset.
func (d Dataset) NumVertices() uint32 { return 1 << d.Scale }

// Generate materializes the edge stream.
func (d Dataset) Generate() []graph.Edge { return RMAT(d.Scale, d.Edges, d.Seed) }

// BinBytes reports the binary edge-list size ("Bin Size" of Table II).
func (d Dataset) BinBytes() int64 { return d.Edges * graph.EdgeBytes }

// Catalog returns the seven evaluation datasets of Table II at ~1/1024
// scale, preserving each |E|/|V| ratio.
func Catalog() []Dataset {
	return []Dataset{
		{Name: "TT", Full: "Twitter", Scale: 16, Edges: 1_465_000, Seed: 0x7717, PaperV: "61.6M", PaperE: "1.5B"},
		{Name: "FS", Full: "Friendster", Scale: 16, Edges: 2_539_000, Seed: 0xF500, PaperV: "68.3M", PaperE: "2.6B"},
		{Name: "UK", Full: "UKdomain", Scale: 17, Edges: 3_027_000, Seed: 0x0071, PaperV: "101.7M", PaperE: "3.1B"},
		{Name: "YW", Full: "YahooWeb", Scale: 21, Edges: 6_445_000, Seed: 0x9A00, PaperV: "1.4B", PaperE: "6.6B"},
		{Name: "K28", Full: "Kron28", Scale: 18, Edges: 4_194_304, Seed: 0x2800, PaperV: "256M", PaperE: "4B"},
		{Name: "K29", Full: "Kron29", Scale: 19, Edges: 8_388_608, Seed: 0x2900, PaperV: "512M", PaperE: "8B"},
		{Name: "K30", Full: "Kron30", Scale: 20, Edges: 16_777_216, Seed: 0x3000, PaperV: "1B", PaperE: "16B"},
	}
}

// ByName finds a catalog dataset.
func ByName(name string) (Dataset, error) {
	for _, d := range Catalog() {
		if d.Name == name || d.Full == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// DegreeHistogram buckets out-degrees: [0]=deg 0, [1]=1-2, [2]=3-7,
// [3]=8-63, [4]=64+. Real-world graphs put >40%% of vertices in the 1-2
// bucket (§III-C); the catalog's RMAT stand-ins must too.
func DegreeHistogram(edges []graph.Edge, numV uint32) [5]int64 {
	deg := make([]uint32, numV)
	for _, e := range edges {
		if !e.IsDelete() && e.Src < numV {
			deg[e.Src]++
		}
	}
	var h [5]int64
	for _, d := range deg {
		switch {
		case d == 0:
			h[0]++
		case d <= 2:
			h[1]++
		case d <= 7:
			h[2]++
		case d <= 63:
			h[3]++
		default:
			h[4]++
		}
	}
	return h
}

// Evolving produces a mixed add/delete update stream over a power-law
// base: adds come from RMAT, and with probability delRatio an update
// deletes a previously added (still-live) edge — the evolving-graph
// workload shape of the paper's title that pure bulk loads do not
// exercise.
func Evolving(scale int, updates int64, delRatio float64, seed uint64) []graph.Edge {
	rng := splitmix64(seed)
	adds := RMAT(scale, updates, seed^0xE0177E)
	out := make([]graph.Edge, 0, updates)
	live := make([]graph.Edge, 0, updates)
	ai := 0
	for int64(len(out)) < updates {
		if len(live) > 0 && rng.float() < delRatio {
			i := int(rng.next() % uint64(len(live)))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			out = append(out, graph.Del(e.Src, e.Dst))
			continue
		}
		e := adds[ai%len(adds)]
		ai++
		out = append(out, e)
		live = append(live, e)
	}
	return out
}
