package gen

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// WriteEdgeFile saves edges in the binary edge-list format (8 bytes per
// edge), the input format of the paper's artifact.
func WriteEdgeFile(path string, edges []graph.Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var rec [graph.EdgeBytes]byte
	for _, e := range edges {
		e.Encode(rec[:])
		if _, err := w.Write(rec[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEdgeFile loads a binary edge list.
func ReadEdgeFile(path string) ([]graph.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%graph.EdgeBytes != 0 {
		return nil, fmt.Errorf("gen: %s: size %d not a multiple of %d", path, st.Size(), graph.EdgeBytes)
	}
	edges := make([]graph.Edge, 0, st.Size()/graph.EdgeBytes)
	r := bufio.NewReaderSize(f, 1<<20)
	var rec [graph.EdgeBytes]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return edges, nil
			}
			return nil, err
		}
		edges = append(edges, graph.DecodeEdge(rec[:]))
	}
}
