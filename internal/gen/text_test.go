package gen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestReadTextEdges(t *testing.T) {
	in := `# SNAP-style comment
% KONECT-style comment

1 2
3	4
5 6 1467552000
`
	edges, err := ReadTextEdges(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 5, Dst: 6}}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestReadTextEdgesErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "x 2\n", "1 y\n"} {
		if _, err := ReadTextEdges(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	want := RMAT(8, 200, 4)
	var buf bytes.Buffer
	if err := WriteTextEdges(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTextEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d edges back, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("text round trip mismatch")
		}
	}
}
