package gen

import (
	"strings"
	"testing"
)

// FuzzReadTextEdges must never panic and must only return edges for
// parseable lines.
func FuzzReadTextEdges(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("# comment\n\n5 6 99\n")
	f.Add("garbage line")
	f.Fuzz(func(t *testing.T, input string) {
		edges, err := ReadTextEdges(strings.NewReader(input))
		if err != nil {
			return
		}
		nonComment := 0
		for _, line := range strings.Split(input, "\n") {
			line = strings.TrimSpace(line)
			if line != "" && line[0] != '#' && line[0] != '%' {
				nonComment++
			}
		}
		if len(edges) != nonComment {
			t.Fatalf("parsed %d edges from %d data lines", len(edges), nonComment)
		}
	})
}
