package gen

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(10, 1000, 7)
	b := RMAT(10, 1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RMAT is not deterministic for a fixed seed")
		}
	}
	c := RMAT(10, 1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRMATInRange(t *testing.T) {
	f := func(seed uint64) bool {
		for _, e := range RMAT(8, 500, seed) {
			if e.Src >= 256 || e.Dst >= 256 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRMATPowerLawSkew(t *testing.T) {
	// §III-C: vertices with degree 1-2 should be the biggest non-zero
	// bucket, and some vertices should be very hot.
	edges := RMAT(16, 1<<20, 99)
	h := DegreeHistogram(edges, 1<<16)
	nonZero := h[1] + h[2] + h[3] + h[4]
	if h[1]*100 < nonZero*30 {
		t.Errorf("degree 1-2 bucket = %d of %d non-zero vertices; want power-law skew (>30%%)", h[1], nonZero)
	}
	if h[4] == 0 {
		t.Error("no vertex with degree >= 64; RMAT should produce hubs")
	}
}

func TestUniformInRange(t *testing.T) {
	for _, e := range Uniform(100, 1000, 3) {
		if e.Src >= 100 || e.Dst >= 100 {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d datasets, want 7 (Table II)", len(cat))
	}
	seen := map[string]bool{}
	for _, d := range cat {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		seen[d.Name] = true
		if d.Edges <= 0 || d.Scale <= 0 {
			t.Fatalf("dataset %s has bad geometry", d.Name)
		}
	}
	// Relative ordering by edge count matches Table II.
	if cat[0].Edges >= cat[1].Edges || cat[3].Edges <= cat[2].Edges {
		t.Error("catalog edge counts out of order vs Table II")
	}
	if _, err := ByName("FS"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should reject unknown names")
	}
}

func TestEdgeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.bin")
	want := RMAT(8, 321, 5)
	want = append(want, graph.Del(1, 2))
	if err := WriteEdgeFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestEncodeDecodeEdges(t *testing.T) {
	want := RMAT(6, 100, 11)
	got, err := graph.DecodeEdges(graph.EncodeEdges(want))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("binary edge list round trip failed")
		}
	}
	if _, err := graph.DecodeEdges(make([]byte, 7)); err == nil {
		t.Fatal("DecodeEdges should reject ragged input")
	}
}

func TestEvolvingStream(t *testing.T) {
	updates := Evolving(8, 5000, 0.2, 9)
	if len(updates) != 5000 {
		t.Fatalf("got %d updates", len(updates))
	}
	// Every deletion must target an edge that was added earlier and not
	// yet deleted.
	live := map[graph.Edge]int{}
	dels := 0
	for _, e := range updates {
		if e.IsDelete() {
			dels++
			k := graph.Edge{Src: e.Src, Dst: e.Target()}
			if live[k] == 0 {
				t.Fatalf("deletion of never-added edge %v", e)
			}
			live[k]--
			continue
		}
		live[e]++
	}
	if dels == 0 || dels > 2000 {
		t.Fatalf("deletions = %d, want roughly 20%% of 5000", dels)
	}
	// Deterministic.
	again := Evolving(8, 5000, 0.2, 9)
	for i := range updates {
		if updates[i] != again[i] {
			t.Fatal("Evolving is not deterministic")
		}
	}
}
