package elog

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/xpsim"
)

func BenchmarkAppend(b *testing.B) {
	lat := xpsim.DefaultLatency()
	space := mem.NewDRAM(&lat, 64<<20, nil)
	ctx := xpsim.NewCtx(0)
	l, err := Create(ctx, space, 1<<20, false)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]graph.Edge, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(ctx, batch); err != nil {
			l.MarkBuffered(ctx, l.Head())
			l.MarkFlushed(ctx, l.Buffered())
		}
	}
}
