package elog

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

var lastMachine *xpsim.Machine

func testLog(t *testing.T, capEntries int64, battery bool) (*Log, *pmem.Region, *xpsim.Ctx) {
	t.Helper()
	m := xpsim.NewMachine(2, 32<<20, xpsim.DefaultLatency())
	lastMachine = m
	h := pmem.NewHeap(m)
	r, err := h.Map("elog", 1<<20, pmem.Placement{Kind: pmem.Interleave})
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	l, err := Create(ctx, r, capEntries, battery)
	if err != nil {
		t.Fatal(err)
	}
	return l, r, ctx
}

func edges(n int, start uint32) []graph.Edge {
	es := make([]graph.Edge, n)
	for i := range es {
		es[i] = graph.Edge{Src: start + uint32(i), Dst: start + uint32(i) + 1}
	}
	return es
}

func TestAppendRead(t *testing.T) {
	l, _, ctx := testLog(t, 128, false)
	es := edges(10, 100)
	n, err := l.Append(ctx, es)
	if err != nil || n != 10 {
		t.Fatalf("Append = %d, %v", n, err)
	}
	got := l.Read(ctx, 0, 10, nil)
	for i := range es {
		if got[i] != es[i] {
			t.Fatalf("edge %d: got %v want %v", i, got[i], es[i])
		}
	}
}

func TestOverwriteProtection(t *testing.T) {
	l, _, ctx := testLog(t, 16, false)
	if n, err := l.Append(ctx, edges(16, 0)); err != nil || n != 16 {
		t.Fatalf("fill: %d %v", n, err)
	}
	// Nothing buffered or flushed: a further append must refuse.
	if n, err := l.Append(ctx, edges(1, 99)); !errors.Is(err, ErrFull) || n != 0 {
		t.Fatalf("overfull append = %d, %v; want 0, ErrFull", n, err)
	}
	// Buffering alone is NOT enough in the standard (non-battery)
	// variant: buffered-but-unflushed edges live only in DRAM.
	l.MarkBuffered(ctx, 16)
	if _, err := l.Append(ctx, edges(1, 99)); !errors.Is(err, ErrFull) {
		t.Fatal("non-battery log must not overwrite unflushed edges")
	}
	// After flushing they may be overwritten.
	l.MarkFlushed(ctx, 16)
	if n, err := l.Append(ctx, edges(8, 50)); err != nil || n != 8 {
		t.Fatalf("append after flush = %d, %v", n, err)
	}
}

func TestBatteryVariantOverwritesBuffered(t *testing.T) {
	l, _, ctx := testLog(t, 16, true)
	l.Append(ctx, edges(16, 0))
	l.MarkBuffered(ctx, 16)
	// XPGraph-B: buffered edges are protected by the battery; the head
	// may overwrite them without a flush.
	if n, err := l.Append(ctx, edges(4, 77)); err != nil || n != 4 {
		t.Fatalf("battery append = %d, %v", n, err)
	}
}

func TestPartialAppend(t *testing.T) {
	l, _, ctx := testLog(t, 16, false)
	n, err := l.Append(ctx, edges(20, 0))
	if !errors.Is(err, ErrFull) || n != 16 {
		t.Fatalf("partial append = %d, %v; want 16, ErrFull", n, err)
	}
}

func TestWrapAround(t *testing.T) {
	l, _, ctx := testLog(t, 8, false)
	l.Append(ctx, edges(8, 0))
	l.MarkBuffered(ctx, 8)
	l.MarkFlushed(ctx, 8)
	es := edges(6, 100)
	if n, err := l.Append(ctx, es); err != nil || n != 6 {
		t.Fatalf("wrap append = %d, %v", n, err)
	}
	got := l.Read(ctx, 8, 14, nil)
	for i := range es {
		if got[i] != es[i] {
			t.Fatalf("wrapped edge %d: got %v want %v", i, got[i], es[i])
		}
	}
}

func TestAttachRecoversCursors(t *testing.T) {
	l, r, ctx := testLog(t, 64, false)
	l.Append(ctx, edges(40, 0))
	l.MarkBuffered(ctx, 30)
	l.MarkFlushed(ctx, 20)

	// Simulated crash: rebuild the Log object purely from PMEM.
	l2, err := Attach(ctx, r, l.HeaderOffset(), l.BaseOffset(), false)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Head() != 40 || l2.Buffered() != 30 || l2.Flushed() != 20 || l2.Cap() != 64 {
		t.Fatalf("recovered cursors head=%d buffered=%d flushed=%d cap=%d",
			l2.Head(), l2.Buffered(), l2.Flushed(), l2.Cap())
	}
	// The replay window [flushed, head) survives verbatim.
	got := l2.Read(ctx, 20, 40, nil)
	for i, e := range got {
		want := graph.Edge{Src: uint32(20 + i), Dst: uint32(21 + i)}
		if e != want {
			t.Fatalf("replay edge %d = %v, want %v", i, e, want)
		}
	}
}

func TestDeletionFlagSurvivesLog(t *testing.T) {
	l, _, ctx := testLog(t, 16, false)
	del := graph.Del(3, 4)
	l.Append(ctx, []graph.Edge{del})
	got := l.Read(ctx, 0, 1, nil)
	if !got[0].IsDelete() || got[0].Target() != 4 || got[0].Src != 3 {
		t.Fatalf("deletion round-trip: %v", got[0])
	}
}

// Property: cursors stay ordered (flushed <= buffered <= head) and
// head-flushed never exceeds capacity, across random operation sequences.
func TestCursorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lat := xpsim.DefaultLatency()
		space := mem.NewDRAM(&lat, 1<<20, nil)
		ctx := xpsim.NewCtx(0)
		l, err := Create(ctx, space, 32, false)
		if err != nil {
			return false
		}
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0:
				l.Append(ctx, edges(rng.Intn(10)+1, rng.Uint32()>>8))
			case 1:
				room := l.Head() - l.Buffered()
				if room > 0 {
					l.MarkBuffered(ctx, l.Buffered()+rng.Int63n(room)+1)
				}
			case 2:
				room := l.Buffered() - l.Flushed()
				if room > 0 {
					l.MarkFlushed(ctx, l.Flushed()+rng.Int63n(room)+1)
				}
			}
			if !(l.Flushed() <= l.Buffered() && l.Buffered() <= l.Head()) {
				return false
			}
			if l.Head()-l.Flushed() > l.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLogAppendIsSequentialOnPMEM(t *testing.T) {
	// Logging is the cheap phase (Fig. 3a): appends must not incur
	// read-modify-write media reads.
	l, _, ctx := testLog(t, 4096, false)
	m := lastMachine
	m.ResetStats()
	l.Append(ctx, edges(4096, 0))
	s := m.TotalStats()
	if s.MediaReadLines > 8 {
		t.Fatalf("log append caused %d media reads; appends must stream", s.MediaReadLines)
	}
}

func TestPendingAndBytes(t *testing.T) {
	l, _, ctx := testLog(t, 32, false)
	l.Append(ctx, edges(10, 0))
	if l.PendingBuffer() != 10 || l.PendingFlush() != 0 {
		t.Fatalf("pending: buffer=%d flush=%d", l.PendingBuffer(), l.PendingFlush())
	}
	l.MarkBuffered(ctx, 6)
	if l.PendingBuffer() != 4 || l.PendingFlush() != 6 {
		t.Fatalf("pending after buffer: %d/%d", l.PendingBuffer(), l.PendingFlush())
	}
	if l.Bytes() != 64+32*8 {
		t.Fatalf("bytes = %d", l.Bytes())
	}
}
