package elog

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/pmem"
	"repro/internal/xpsim"
)

// fuzzLogSetup builds a small log in a real region with a representative
// cursor state (wrapped head, all three cursors distinct, slot 1), and
// returns the region, the log, and the raw header bytes.
func fuzzLogSetup(tb testing.TB) (*pmem.Region, *Log, []byte) {
	m := xpsim.NewMachine(2, 32<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, err := h.Map("fuzz-elog", 1<<16, pmem.Placement{Kind: pmem.Interleave})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	l, err := Create(ctx, r, 8, false)
	if err != nil {
		tb.Fatal(err)
	}
	// head=12 (wrapped), buffered=10, flushed=6, slot=1.
	if _, err := l.Append(ctx, edges(8, 0)); err != nil {
		tb.Fatal(err)
	}
	l.MarkBuffered(ctx, 8)
	l.MarkFlushedSlot(ctx, 6, 1)
	if _, err := l.Append(ctx, edges(4, 8)); err != nil {
		tb.Fatal(err)
	}
	l.MarkBuffered(ctx, 10)
	hdr := make([]byte, HeaderBytes)
	r.Read(ctx, l.HeaderOffset(), hdr)
	return r, l, hdr
}

// FuzzLogCursors mutates the persisted 64-byte cursor header and checks
// that Attach either reproduces a valid state or rejects it with an
// error — it must never panic, and when it accepts a header, reading the
// whole replay window [flushed, head) must stay inside the resident ring
// (no out-of-window replay) and return exactly head-flushed edges.
func FuzzLogCursors(f *testing.F) {
	_, _, valid := fuzzLogSetup(f)
	f.Add(valid)
	// The all-zero header of a just-created log (with cap patched in).
	empty := make([]byte, HeaderBytes)
	binary.LittleEndian.PutUint64(empty[offCap:], 8)
	f.Add(empty)
	// Interesting single-field corruptions.
	for _, mut := range []struct{ off, val uint64 }{
		{offHead, 1 << 40},            // head far beyond the ring
		{offBuf, 11},                  // buffered > head? (10 -> 11 keeps order; 13 breaks it)
		{offBuf, 13},                  // buffered ahead of head
		{offFlush, 11},                // flushed ahead of buffered
		{offFlush, uint64(6) | 1<<63}, // same cursor, other slot
		{offCap, 0},                   // zero capacity
		{offCap, 1 << 50},             // capacity beyond the region
		{offHead, ^uint64(0)},         // negative head when read as int64
	} {
		h := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(h[mut.off:], mut.val)
		f.Add(h)
	}
	f.Fuzz(func(t *testing.T, hdr []byte) {
		if len(hdr) != HeaderBytes {
			return
		}
		r, l, orig := fuzzLogSetup(t)
		ctx := xpsim.NewCtx(0)
		r.Write(ctx, l.HeaderOffset(), hdr)
		got, err := Attach(ctx, r, l.HeaderOffset(), l.BaseOffset(), false)
		if bytes.Equal(hdr, orig) {
			// Round-trip: the untouched header must attach and reproduce
			// the live cursors exactly.
			if err != nil {
				t.Fatalf("valid header rejected: %v", err)
			}
			if got.Head() != l.Head() || got.Buffered() != l.Buffered() ||
				got.Flushed() != l.Flushed() || got.AckSlot() != l.AckSlot() || got.Cap() != l.Cap() {
				t.Fatalf("round-trip mismatch: got head=%d buf=%d flush=%d slot=%d cap=%d, want head=%d buf=%d flush=%d slot=%d cap=%d",
					got.Head(), got.Buffered(), got.Flushed(), got.AckSlot(), got.Cap(),
					l.Head(), l.Buffered(), l.Flushed(), l.AckSlot(), l.Cap())
			}
		}
		if err != nil {
			return // corrupt header rejected: exactly what we want
		}
		// Accepted: every invariant replay relies on must hold.
		if got.Flushed() > got.Buffered() || got.Buffered() > got.Head() {
			t.Fatalf("accepted unordered cursors: flushed=%d buffered=%d head=%d",
				got.Flushed(), got.Buffered(), got.Head())
		}
		if got.Head()-got.Flushed() > got.Cap() {
			t.Fatalf("accepted out-of-window replay: window %d > cap %d",
				got.Head()-got.Flushed(), got.Cap())
		}
		if got.Cap() <= 0 {
			t.Fatalf("accepted non-positive cap %d", got.Cap())
		}
		// The whole replay window must be readable without panicking and
		// yield exactly window-many edges.
		win := got.Read(ctx, got.Flushed(), got.Head(), nil)
		if int64(len(win)) != got.Head()-got.Flushed() {
			t.Fatalf("replay window read %d edges, want %d", len(win), got.Head()-got.Flushed())
		}
	})
}
