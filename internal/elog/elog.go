// Package elog implements the consistency-guaranteed circular edge log of
// XPGraph (§III-B, Fig. 7). New edges append at the head; a buffering
// cursor tracks edges staged into DRAM vertex buffers; a flushing cursor
// tracks edges durably in PMEM adjacency lists. The log refuses to
// overwrite edges that are not yet flushed, so after a crash the edges in
// [flushed, head) can be replayed to rebuild the lost DRAM vertex buffers.
//
// The battery-backed variant (XPGraph-B, §IV-C) treats DRAM vertex buffers
// as part of the persistence domain, so the head may overwrite any edge
// that has been buffered, whether or not it was flushed.
package elog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/xpsim"
)

// ErrFull is returned by Append when advancing the head would overwrite
// edges the consistency rule still protects; the caller must run a
// buffering and/or flushing phase and retry.
var ErrFull = errors.New("elog: log full: flush required before overwriting")

// HeaderBytes is the size of the persisted cursor block; recovery uses it
// to locate the ring after the header.
const HeaderBytes = hdrBytes

const (
	hdrBytes = 64 // persisted cursor block: head, buffered, flushed
	offHead  = 0
	offBuf   = 8
	offFlush = 16
	offCap   = 24
)

// slotBit is the top bit of the persisted flushed word: it selects which
// adjacency count slot (0 or 1) is authoritative for recovery. Packing
// the slot into the flushed word makes "these counts are acked up to
// here" a single 8-byte store — atomic under powerfail semantics — which
// is what keeps a crash between count writeback and cursor writeback from
// double-counting replayed edges (see adj.Ack).
const slotBit = uint64(1) << 63

// maxCursor bounds cursor values so the slot bit can never be mistaken
// for log position.
const maxCursor = int64(slotBit - 1)

// Config selects optional log features.
type Config struct {
	// Battery treats DRAM vertex buffers as persistent (XPGraph-B §IV-C):
	// the head may overwrite buffered-but-unflushed edges, and header
	// flush ordering is skipped.
	Battery bool
	// Checksums appends a CRC32-C strip after the ring: one u32 per slot,
	// covering the record bytes seeded with the record's monotonic
	// counter (so a stale previous-cycle record can never verify). A
	// slot's checksum is written and flushed before the head cursor that
	// publishes the record, and VerifyWindow audits the resident window
	// against the strip — the media-error detection scrubbing relies on.
	// The checksum is per record, not per XPLine: ring wrap makes
	// line-granular checksums unsound (a line holds records from two
	// cycles mid-wrap).
	Checksums bool
}

// castagnoli is the CRC32-C table (hardware-accelerated polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recCRC is the strip checksum of one record: CRC32-C over the monotonic
// counter followed by the record bytes.
func recCRC(counter int64, rec []byte) uint32 {
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(counter))
	return crc32.Update(crc32.Checksum(seed[:], castagnoli), castagnoli, rec)
}

// Log is the circular edge log.
type Log struct {
	m       mem.Mem
	hdr     int64 // header offset within m
	base    int64 // data area offset
	cap     int64 // capacity in edges
	battery bool
	strip   int64 // CRC strip offset; 0 = checksums disabled

	// DRAM mirrors of the persisted cursors. All are monotonic edge
	// counters; ring positions are counter % cap.
	head     int64
	buffered int64
	flushed  int64
	slot     int // count slot selected by the persisted flushed word
}

// Create allocates and initializes a log of capEntries edges inside m.
func Create(ctx *xpsim.Ctx, m mem.Mem, capEntries int64, battery bool) (*Log, error) {
	return CreateWith(ctx, m, capEntries, Config{Battery: battery})
}

// CreateWith is Create with the full feature configuration.
func CreateWith(ctx *xpsim.Ctx, m mem.Mem, capEntries int64, cfg Config) (*Log, error) {
	if capEntries <= 0 {
		return nil, fmt.Errorf("elog: capacity must be positive")
	}
	hdr, err := m.Alloc(ctx, hdrBytes, xpsim.XPLineSize)
	if err != nil {
		return nil, fmt.Errorf("elog: %w", err)
	}
	base, err := m.Alloc(ctx, capEntries*graph.EdgeBytes, xpsim.XPLineSize)
	if err != nil {
		return nil, fmt.Errorf("elog: %w", err)
	}
	var strip int64
	if cfg.Checksums {
		if strip, err = m.Alloc(ctx, capEntries*4, xpsim.XPLineSize); err != nil {
			return nil, fmt.Errorf("elog: checksum strip: %w", err)
		}
	}
	l := &Log{m: m, hdr: hdr, base: base, cap: capEntries, battery: cfg.Battery, strip: strip}
	mem.WriteU64(m, ctx, hdr+offHead, 0)
	mem.WriteU64(m, ctx, hdr+offBuf, 0)
	mem.WriteU64(m, ctx, hdr+offFlush, 0)
	mem.WriteU64(m, ctx, hdr+offCap, uint64(capEntries))
	// Make the freshly initialized header durable, so a crash before the
	// first append recovers an empty log instead of a corrupt one.
	m.Flush(ctx, hdr, hdrBytes)
	return l, nil
}

// Attach reopens a log previously created at hdr/base in m — the recovery
// path: cursors are read back from persistent memory. Every invariant a
// later Read or Mark relies on is validated here, so a corrupt or torn
// header surfaces as an error instead of a panic or an out-of-window
// replay: cursors must be ordered, the unflushed window must still be
// resident (head-flushed <= cap), and the ring must fit the memory.
func Attach(ctx *xpsim.Ctx, m mem.Mem, hdr, base int64, battery bool) (*Log, error) {
	return AttachWith(ctx, m, hdr, base, Config{Battery: battery})
}

// AttachWith is Attach with the full feature configuration, which must
// match what the log was created with (the strip's location is re-derived
// from the allocation layout: it directly follows the ring, XPLine-
// aligned).
func AttachWith(ctx *xpsim.Ctx, m mem.Mem, hdr, base int64, cfg Config) (*Log, error) {
	l := &Log{m: m, hdr: hdr, base: base, battery: cfg.Battery}
	l.head = int64(mem.ReadU64(m, ctx, hdr+offHead))
	l.buffered = int64(mem.ReadU64(m, ctx, hdr+offBuf))
	rawFlush := mem.ReadU64(m, ctx, hdr+offFlush)
	l.slot = int(rawFlush >> 63)
	l.flushed = int64(rawFlush &^ slotBit)
	l.cap = int64(mem.ReadU64(m, ctx, hdr+offCap))
	switch {
	case l.cap <= 0 || l.cap > (m.Size()-base)/graph.EdgeBytes:
		return nil, fmt.Errorf("elog: corrupt header: cap=%d does not fit memory (%d bytes past base)",
			l.cap, m.Size()-base)
	case l.head < 0 || l.head > maxCursor || l.buffered < 0 || l.flushed > l.buffered || l.buffered > l.head:
		return nil, fmt.Errorf("elog: corrupt header: head=%d buffered=%d flushed=%d cap=%d",
			l.head, l.buffered, l.flushed, l.cap)
	case l.head-l.flushed > l.cap && !cfg.Battery:
		return nil, fmt.Errorf("elog: corrupt header: unflushed window %d exceeds cap %d (replay would read overwritten edges)",
			l.head-l.flushed, l.cap)
	case l.head-l.buffered > l.cap:
		return nil, fmt.Errorf("elog: corrupt header: unbuffered window %d exceeds cap %d",
			l.head-l.buffered, l.cap)
	}
	if cfg.Checksums {
		l.strip = (base + l.cap*graph.EdgeBytes + xpsim.XPLineSize - 1) / xpsim.XPLineSize * xpsim.XPLineSize
		if l.strip+l.cap*4 > m.Size() {
			return nil, fmt.Errorf("elog: checksum strip [%d,%d) does not fit memory", l.strip, l.strip+l.cap*4)
		}
	}
	return l, nil
}

// HeaderOffset and BaseOffset locate the log inside its memory for later
// Attach calls.
func (l *Log) HeaderOffset() int64 { return l.hdr }

// BaseOffset reports the data area offset.
func (l *Log) BaseOffset() int64 { return l.base }

// Cap reports the log capacity in edges.
func (l *Log) Cap() int64 { return l.cap }

// Head reports the total number of edges ever appended.
func (l *Log) Head() int64 { return l.head }

// Buffered reports how many edges have been staged to vertex buffers.
func (l *Log) Buffered() int64 { return l.buffered }

// Flushed reports how many edges are durable in PMEM adjacency lists.
func (l *Log) Flushed() int64 { return l.flushed }

// PendingBuffer reports edges logged but not yet buffered.
func (l *Log) PendingBuffer() int64 { return l.head - l.buffered }

// PendingFlush reports edges buffered but not yet flush-acknowledged.
func (l *Log) PendingFlush() int64 { return l.buffered - l.flushed }

// freeSpace is how many edges may be appended without violating the
// overwrite rule.
func (l *Log) freeSpace() int64 {
	guard := l.flushed
	if l.battery {
		guard = l.buffered
	}
	return l.cap - (l.head - guard)
}

// Append logs as many of the edges as currently fit and returns how many
// were accepted, with ErrFull if fewer than all (the logging thread then
// triggers buffering/flushing and retries, §IV-A). The head cursor is
// persisted after the batch, making the accepted edges durable.
func (l *Log) Append(ctx *xpsim.Ctx, edges []graph.Edge) (int, error) {
	n := int64(len(edges))
	if free := l.freeSpace(); n > free {
		n = free
	}
	if n == 0 && len(edges) > 0 {
		return 0, ErrFull
	}
	var rec [graph.EdgeBytes]byte
	for i := int64(0); i < n; i++ {
		edges[i].Encode(rec[:])
		pos := (l.head + i) % l.cap
		l.m.Write(ctx, l.base+pos*graph.EdgeBytes, rec[:])
	}
	// Crash-consistency ordering: the edge records must be durable before
	// the head cursor that publishes them, or recovery would replay
	// whatever stale ring bytes sit beyond the durable data. Flush the
	// written ring range (two spans when it wraps), then advance the
	// head, then flush the header line. Battery-backed stores skip the
	// ordering: their whole memory hierarchy is in the persistence
	// domain, so buffered lines survive power loss anyway (§IV-C).
	if l.strip != 0 {
		// The strip entry must be durable before the head that publishes
		// its record, same as the record bytes themselves — otherwise a
		// recovered log would flag a perfectly good record as corrupt.
		var cb [4]byte
		for i := int64(0); i < n; i++ {
			edges[i].Encode(rec[:])
			pos := (l.head + i) % l.cap
			binary.LittleEndian.PutUint32(cb[:], recCRC(l.head+i, rec[:]))
			l.m.Write(ctx, l.strip+pos*4, cb[:])
		}
	}
	if !l.battery {
		startPos := l.head % l.cap
		if startPos+n <= l.cap {
			l.m.Flush(ctx, l.base+startPos*graph.EdgeBytes, n*graph.EdgeBytes)
		} else {
			l.m.Flush(ctx, l.base+startPos*graph.EdgeBytes, (l.cap-startPos)*graph.EdgeBytes)
			l.m.Flush(ctx, l.base, (startPos+n-l.cap)*graph.EdgeBytes)
		}
		if l.strip != 0 {
			startPos := l.head % l.cap
			if startPos+n <= l.cap {
				l.m.Flush(ctx, l.strip+startPos*4, n*4)
			} else {
				l.m.Flush(ctx, l.strip+startPos*4, (l.cap-startPos)*4)
				l.m.Flush(ctx, l.strip, (startPos+n-l.cap)*4)
			}
		}
	}
	l.head += n
	mem.WriteU64(l.m, ctx, l.hdr+offHead, uint64(l.head))
	if !l.battery {
		l.m.Flush(ctx, l.hdr, hdrBytes)
	}
	if n < int64(len(edges)) {
		return int(n), ErrFull
	}
	return int(n), nil
}

// Read copies the edges with counters [from, to) into dst (wrapping
// around the ring as needed) and returns dst. The range must still be
// resident: from >= head-cap.
func (l *Log) Read(ctx *xpsim.Ctx, from, to int64, dst []graph.Edge) []graph.Edge {
	if from < l.head-l.cap || to > l.head || from > to {
		panic(fmt.Sprintf("elog: read [%d,%d) outside resident window [%d,%d]", from, to, l.head-l.cap, l.head))
	}
	var rec [graph.EdgeBytes]byte
	for i := from; i < to; i++ {
		pos := i % l.cap
		l.m.Read(ctx, l.base+pos*graph.EdgeBytes, rec[:])
		dst = append(dst, graph.DecodeEdge(rec[:]))
	}
	return dst
}

// MarkBuffered advances the buffered cursor to upTo and persists it.
func (l *Log) MarkBuffered(ctx *xpsim.Ctx, upTo int64) {
	if upTo < l.buffered || upTo > l.head {
		panic(fmt.Sprintf("elog: MarkBuffered(%d) outside [%d,%d]", upTo, l.buffered, l.head))
	}
	l.buffered = upTo
	mem.WriteU64(l.m, ctx, l.hdr+offBuf, uint64(upTo))
	if !l.battery {
		l.m.Flush(ctx, l.hdr, hdrBytes)
	}
}

// MarkFlushed advances the flushing cursor to upTo and persists it,
// keeping the current count slot. Only buffered edges can be
// flush-acknowledged.
func (l *Log) MarkFlushed(ctx *xpsim.Ctx, upTo int64) {
	l.MarkFlushedSlot(ctx, upTo, l.slot)
}

// AckSlot reports which adjacency count slot the persisted flushed word
// currently selects (see adj.Ack): the slot whose counts recovery will
// trust.
func (l *Log) AckSlot() int { return l.slot }

// MarkFlushedSlot advances the flushing cursor to upTo and atomically
// switches the authoritative adjacency count slot — the commit point of
// a crash-safe flushing phase. The caller must have made the slot's
// count writes durable (persist barrier) before calling: once the
// flushed word lands, recovery trusts them and stops replaying the
// edges they cover.
func (l *Log) MarkFlushedSlot(ctx *xpsim.Ctx, upTo int64, slot int) {
	if upTo < l.flushed || upTo > l.buffered {
		panic(fmt.Sprintf("elog: MarkFlushed(%d) outside [%d,%d]", upTo, l.flushed, l.buffered))
	}
	if slot != 0 && slot != 1 {
		panic(fmt.Sprintf("elog: bad ack slot %d", slot))
	}
	l.flushed = upTo
	l.slot = slot
	word := uint64(upTo)
	if slot == 1 {
		word |= slotBit
	}
	mem.WriteU64(l.m, ctx, l.hdr+offFlush, word)
	if !l.battery {
		l.m.Flush(ctx, l.hdr, hdrBytes)
	}
}

// Bytes reports the PMEM footprint of the log (header + ring + strip).
func (l *Log) Bytes() int64 {
	b := int64(hdrBytes) + l.cap*graph.EdgeBytes
	if l.strip != 0 {
		b += l.cap * 4
	}
	return b
}

// VerifyWindow audits the resident ring window [max(0, head-cap), head)
// through the media-error-checked read path, verifying each record against
// the checksum strip when one exists. It returns the monotonic counters of
// records that could not be read back as published — uncorrectable lines,
// or bytes that disagree with the checksum. An empty result means every
// resident record (including the [flushed, head) replay window a recovery
// would consume) is intact.
func (l *Log) VerifyWindow(ctx *xpsim.Ctx) []int64 {
	lo := l.head - l.cap
	if lo < 0 {
		lo = 0
	}
	var bad []int64
	var rec [graph.EdgeBytes]byte
	var cb [4]byte
	for i := lo; i < l.head; i++ {
		pos := i % l.cap
		if err := mem.ReadChecked(l.m, ctx, l.base+pos*graph.EdgeBytes, rec[:]); err != nil {
			bad = append(bad, i)
			continue
		}
		if l.strip == 0 {
			continue
		}
		if err := mem.ReadChecked(l.m, ctx, l.strip+pos*4, cb[:]); err != nil {
			bad = append(bad, i)
			continue
		}
		if binary.LittleEndian.Uint32(cb[:]) != recCRC(i, rec[:]) {
			bad = append(bad, i)
		}
	}
	return bad
}
