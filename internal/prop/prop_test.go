package prop

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func testRegion(t *testing.T, capBlocks int64) (*pmem.Region, *xpsim.Machine, int64) {
	t.Helper()
	m := xpsim.NewMachine(1, 64<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, err := h.Map("t-prop", BlockBytes+capBlocks*BlockBytes, pmem.Placement{Kind: pmem.Interleave})
	if err != nil {
		t.Fatal(err)
	}
	base := (r.UserStart() + BlockBytes - 1) / BlockBytes * BlockBytes
	return r, m, base
}

func TestBlockRoundTrip(t *testing.T) {
	recs := []Record{
		EdgeLabelRecord(1, 2, 7),
		VPropRecord(9, 3, -123456789),
		LabelDefRecord(4, "follows"),
	}
	var buf [BlockBytes]byte
	EncodeBlock(buf[:], recs, 5)
	got, patch, err := DecodeBlock(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if patch != 5 || len(got) != 3 {
		t.Fatalf("patch %d len %d", patch, len(got))
	}
	if got[0] != recs[0] || got[1] != recs[1] || got[2] != recs[2] {
		t.Fatalf("records differ: %+v vs %+v", got, recs)
	}
	if got[1].Value() != -123456789 {
		t.Fatalf("value %d", got[1].Value())
	}
	if got[2].LabelName() != "follows" {
		t.Fatalf("name %q", got[2].LabelName())
	}
	// Corrupt one byte: decode must fail, not return wrong records.
	buf[100] ^= 0xFF
	if _, _, err := DecodeBlock(buf[:]); err == nil {
		t.Fatal("corrupt block decoded cleanly")
	}
	// All-zero block is a clean end-of-log.
	var zero [BlockBytes]byte
	recs2, _, err := DecodeBlock(zero[:])
	if err != nil || recs2 != nil {
		t.Fatalf("zero block: %v %v", recs2, err)
	}
}

func TestApplyFlushAttach(t *testing.T) {
	r, _, base := testRegion(t, 64)
	lat := xpsim.DefaultLatency()
	s, err := Create(r, &lat, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)

	id, err := s.RegisterLabel(ctx, "follows")
	if err != nil || id != 1 {
		t.Fatalf("register: id %d err %v", id, err)
	}
	// Re-registering is idempotent.
	if id2, _ := s.RegisterLabel(ctx, "follows"); id2 != id {
		t.Fatalf("re-register gave %d", id2)
	}

	edges := []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}}
	s.ApplyEdgeLabels(edges, []uint16{id, 0, id})
	s.ApplyProps([]graph.PropSet{{V: 2, Key: 1, Val: 42}, {V: 2, Key: 1, Val: 43}})
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	if got := s.Label(1, 2); got != id {
		t.Fatalf("label(1,2)=%d", got)
	}
	if got := s.Label(1, 3); got != 0 {
		t.Fatalf("untyped edge label %d", got)
	}
	if v, ok := s.VProp(2, 1); !ok || v != 43 {
		t.Fatalf("vprop %d %v (want last-write-wins 43)", v, ok)
	}

	// Relabel back to default must round-trip through recovery too.
	s.ApplyEdgeLabels([]graph.Edge{{Src: 2, Dst: 3}}, []uint16{0})
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	s2, info, err := Attach(ctx, r, &lat, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if info.Unreadable != 0 || info.TornTail {
		t.Fatalf("clean attach reported damage: %+v", info)
	}
	if got := s2.Label(1, 2); got != id {
		t.Fatalf("recovered label(1,2)=%d", got)
	}
	if got := s2.Label(2, 3); got != 0 {
		t.Fatalf("recovered relabeled edge %d", got)
	}
	if v, ok := s2.VProp(2, 1); !ok || v != 43 {
		t.Fatalf("recovered vprop %d %v", v, ok)
	}
	if name := s2.LabelName(id); name != "follows" {
		t.Fatalf("recovered name %q", name)
	}
	if lid, ok := s2.LabelID("follows"); !ok || lid != id {
		t.Fatalf("recovered id %d %v", lid, ok)
	}
}

func TestTornTailTruncates(t *testing.T) {
	r, _, base := testRegion(t, 8)
	lat := xpsim.DefaultLatency()
	s, _ := Create(r, &lat, base, 8)
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	s.ApplyProps([]graph.PropSet{{V: 1, Key: 1, Val: 10}})
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	s.ApplyProps([]graph.PropSet{{V: 1, Key: 1, Val: 20}})
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Tear the newest block: flip a byte mid-record area.
	var b [1]byte
	off := base + 1*BlockBytes + 17
	r.Read(ctx, off, b[:])
	b[0] ^= 0xA5
	r.Write(ctx, off, b[:])
	r.Flush(ctx, off, 1)

	s2, info, err := Attach(ctx, r, &lat, base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail || info.Unreadable != 0 {
		t.Fatalf("want torn tail, got %+v", info)
	}
	if s2.Damaged() {
		t.Fatal("torn tail must not poison the store")
	}
	if v, ok := s2.VProp(1, 1); !ok || v != 10 {
		t.Fatalf("rolled-back vprop = %d %v (want flushed prefix 10)", v, ok)
	}
}

func TestMidLogDamageFailsClosed(t *testing.T) {
	r, _, base := testRegion(t, 8)
	lat := xpsim.DefaultLatency()
	s, _ := Create(r, &lat, base, 8)
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	for i := 0; i < 3; i++ {
		s.ApplyProps([]graph.PropSet{{V: uint32(i), Key: 1, Val: int64(i)}})
		if err := s.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the middle block: a later valid block exists, so this is
	// data loss, not a torn tail.
	var b [1]byte
	off := base + 1*BlockBytes + 9
	r.Read(ctx, off, b[:])
	b[0] ^= 0xA5
	r.Write(ctx, off, b[:])
	r.Flush(ctx, off, 1)

	s2, info, err := Attach(ctx, r, &lat, base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if info.Unreadable != 1 || !s2.Damaged() {
		t.Fatalf("mid-log damage not flagged: %+v damaged=%v", info, s2.Damaged())
	}
	if _, err := s2.LabelChecked(1, 2); err == nil {
		t.Fatal("checked read served a damaged store")
	}
	if _, _, err := s2.VPropChecked(1, 1); err == nil {
		t.Fatal("checked vprop served a damaged store")
	}
}

func TestScrubRebuildsUEBlock(t *testing.T) {
	r, m, base := testRegion(t, 16)
	lat := xpsim.DefaultLatency()
	s, _ := Create(r, &lat, base, 16)
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	faults := m.TrackFaults()

	s.ApplyProps([]graph.PropSet{{V: 7, Key: 2, Val: 99}})
	s.ApplyEdgeLabels([]graph.Edge{{Src: 4, Dst: 5}}, []uint16{3})
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Uncorrectable error on the first column block's line.
	node, line := r.LineAt(base)
	faults.InjectUE(node, line)

	rep, err := s.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadBlocks != 1 || rep.Rebuilt != 1 || rep.Unrecoverable != 0 {
		t.Fatalf("scrub report %+v", rep)
	}
	if s.Damaged() {
		t.Fatal("rebuilt store still damaged")
	}
	// Reads stay correct after the rebuild.
	if lbl, err := s.LabelChecked(4, 5); err != nil || lbl != 3 {
		t.Fatalf("post-scrub label %d %v", lbl, err)
	}
	// A second scrub pass skips the quarantined block and stays clean.
	rep2, err := s.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BadBlocks != 0 {
		t.Fatalf("second scrub still sees damage: %+v", rep2)
	}

	// Recovery over the patched image: the UE block is superseded by the
	// patch, so the attach is clean and the index is intact.
	s2, info, err := Attach(ctx, r, &lat, base, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Damaged() || info.Unreadable != 0 {
		t.Fatalf("patched image attach damaged: %+v", info)
	}
	if lbl := s2.Label(4, 5); lbl != 3 {
		t.Fatalf("recovered patched label %d", lbl)
	}
	if v, ok := s2.VProp(7, 2); !ok || v != 99 {
		t.Fatalf("recovered patched vprop %d %v", v, ok)
	}
}

func TestFilter(t *testing.T) {
	props := map[uint16]int64{1: 10}
	get := func(k uint16) (int64, bool) { v, ok := props[k]; return v, ok }

	f := Filter{}
	if !f.Empty() || !f.MatchLabel(5) || !f.MatchVertex(get) {
		t.Fatal("empty filter must accept everything")
	}
	f = Filter{Types: []uint16{2, 3}}
	if f.MatchLabel(1) || !f.MatchLabel(3) {
		t.Fatal("type set mismatch")
	}
	for _, tc := range []struct {
		op   string
		val  int64
		want bool
	}{
		{OpEq, 10, true}, {OpEq, 11, false},
		{OpNe, 10, false}, {OpNe, 11, true},
		{OpLt, 11, true}, {OpLt, 10, false},
		{OpLe, 10, true}, {OpGt, 9, true},
		{OpGe, 10, true}, {OpGe, 11, false},
		{OpExists, 0, true},
	} {
		f := Filter{Key: 1, Op: tc.op, Val: tc.val}
		if got := f.MatchVertex(get); got != tc.want {
			t.Fatalf("%s %d: got %v", tc.op, tc.val, got)
		}
	}
	// Unset property fails every real predicate.
	f = Filter{Key: 9, Op: OpExists}
	if f.MatchVertex(get) {
		t.Fatal("unset property passed exists")
	}
	if (Filter{Op: "bogus"}).Validate() == nil {
		t.Fatal("bogus op validated")
	}
}

func TestLogFull(t *testing.T) {
	r, _, base := testRegion(t, 2)
	lat := xpsim.DefaultLatency()
	s, _ := Create(r, &lat, base, 2)
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	for i := 0; i < 2*RecordsPerBlock; i++ {
		s.ApplyProps([]graph.PropSet{{V: uint32(i), Key: 1, Val: 1}})
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	s.ApplyProps([]graph.PropSet{{V: 999, Key: 1, Val: 1}})
	if err := s.Flush(ctx); err != ErrFull {
		t.Fatalf("want ErrFull, got %v", err)
	}
}
