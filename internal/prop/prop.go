package prop

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/xpsim"
)

var (
	// ErrFull reports an exhausted column log: no further property
	// writes are accepted until the store is recreated larger.
	ErrFull = errors.New("prop: property column log full")
	// ErrDamaged reports an unrecoverable column block: a mid-log block
	// failed its checksum (or sits on uncorrectable media) with no patch
	// to supersede it, so some property records are lost. Typed reads
	// fail with this instead of silently answering default labels.
	ErrDamaged = errors.New("prop: property columns damaged (unrecoverable block)")
	// ErrBadLabel reports an invalid label registration.
	ErrBadLabel = errors.New("prop: invalid label name")
)

// blockMeta is the DRAM mirror of one physical column block.
type blockMeta struct {
	recs []Record // current content (nil: unreadable, awaiting a patch)
	// patchOf is the physical block this one replaces (-1: normal).
	patchOf int
	// superseded marks a block whose content now lives in a later patch.
	superseded bool
}

// Store is the property column store of one graph shard. Mutations go
// through Apply*/RegisterLabel and become durable at the next Flush
// (which core ties to the same flush points as the vertex buffers); a
// crash rolls unflushed records back, so a recovered label is always
// either the last flushed value or the default — never garbage, because
// every block is CRC-guarded.
type Store struct {
	mu  sync.RWMutex
	m   mem.Mem
	lat *xpsim.LatencyModel

	base      int64
	capBlocks int64
	head      int64 // physical blocks written

	pending []Record
	blocks  []blockMeta

	labels  map[uint64]uint16
	vprops  map[uint64]int64
	names   []string // label id -> name; 0 is the default label ""
	damaged bool

	quarantined int64 // physical blocks retired by scrub
}

// RecoverInfo reports what Attach found in the durable image.
type RecoverInfo struct {
	Blocks      int64 // readable blocks (incl. patches)
	Records     int64 // live records applied to the index
	TornTail    bool  // a torn newest block was truncated
	BadBlocks   int64 // unreadable blocks (patched or unrecoverable)
	Unreadable  int64 // unreadable blocks with no patch (=> damaged)
	Quarantined int64 // blocks superseded by patches
}

// Create initializes an empty column store over m. base must be
// XPLine-aligned; the log spans [base, base+capBlocks*BlockBytes).
func Create(m mem.Mem, lat *xpsim.LatencyModel, base, capBlocks int64) (*Store, error) {
	if base%BlockBytes != 0 {
		return nil, fmt.Errorf("prop: base %d not block-aligned", base)
	}
	if base+capBlocks*BlockBytes > m.Size() {
		return nil, fmt.Errorf("prop: %d blocks at %d exceed region size %d", capBlocks, base, m.Size())
	}
	return &Store{
		m: m, lat: lat, base: base, capBlocks: capBlocks,
		labels: make(map[uint64]uint16),
		vprops: make(map[uint64]int64),
		names:  []string{""},
	}, nil
}

// Attach recovers a column store from the durable image: it scans blocks
// forward, truncates a torn tail, resolves patch blocks onto their
// targets, and rebuilds the DRAM index by replaying the logical record
// sequence. An unreadable block that no patch supersedes marks the store
// damaged: checked reads fail with ErrDamaged instead of silently
// answering defaults.
func Attach(ctx *xpsim.Ctx, m mem.Mem, lat *xpsim.LatencyModel, base, capBlocks int64) (*Store, RecoverInfo, error) {
	s, err := Create(m, lat, base, capBlocks)
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	var info RecoverInfo
	buf := make([]byte, BlockBytes)
	// Scan every physical block. Blocks are written strictly
	// sequentially, so the first all-zero block ends the log; a bad
	// block before it is either media damage (patched later or
	// unrecoverable) or — when nothing follows it — a torn tail.
	type scanned struct {
		recs  []Record
		patch uint16
		bad   bool
	}
	var scan []scanned
	for i := int64(0); i < capBlocks; i++ {
		rerr := mem.ReadChecked(s.m, ctx, s.base+i*BlockBytes, buf)
		if rerr != nil {
			scan = append(scan, scanned{bad: true})
			continue
		}
		recs, patch, derr := DecodeBlock(buf)
		if derr != nil {
			scan = append(scan, scanned{bad: true})
			continue
		}
		if recs == nil { // all-zero: end of log
			break
		}
		scan = append(scan, scanned{recs: recs, patch: patch})
	}
	// Trim trailing bad blocks: the newest one may be a torn tail (a
	// normal crash artifact, truncated without complaint).
	for len(scan) > 0 && scan[len(scan)-1].bad {
		scan = scan[:len(scan)-1]
		info.TornTail = true
		info.BadBlocks++
	}
	s.head = int64(len(scan))
	s.blocks = make([]blockMeta, len(scan))
	lastPatch := make(map[int]int) // target -> newest patch block
	for i, b := range scan {
		s.blocks[i] = blockMeta{recs: b.recs, patchOf: -1}
		if b.bad {
			info.BadBlocks++
			continue
		}
		info.Blocks++
		if b.patch > 0 {
			t := int(b.patch) - 1
			s.blocks[i].patchOf = t
			if t < i {
				if p, ok := lastPatch[t]; ok {
					s.blocks[p].superseded = true
				} else {
					info.Quarantined++
				}
				lastPatch[t] = i
				s.blocks[t].recs = b.recs
				s.blocks[t].superseded = true
			}
		}
	}
	// Replay the logical sequence: every non-patch block's (possibly
	// patched) records, in physical order.
	for i := range s.blocks {
		b := &s.blocks[i]
		if b.patchOf >= 0 {
			continue
		}
		if b.recs == nil {
			s.damaged = true
			info.Unreadable++
			continue
		}
		for _, r := range b.recs {
			s.applyIndex(r)
			info.Records++
		}
	}
	s.quarantined = info.Quarantined
	return s, info, nil
}

// applyIndex folds one record into the DRAM index (callers hold mu).
func (s *Store) applyIndex(r Record) {
	switch r.Kind {
	case KindEdgeLabel:
		k := uint64(r.Src)<<32 | uint64(r.Dst)
		if r.Lbl == graph.DefaultLabel {
			delete(s.labels, k)
		} else {
			s.labels[k] = r.Lbl
		}
	case KindVProp:
		s.vprops[uint64(r.Src)<<32|uint64(r.Lbl)] = r.Value()
	case KindLabelDef:
		for int(r.Lbl) >= len(s.names) {
			s.names = append(s.names, "")
		}
		s.names[r.Lbl] = r.LabelName()
	}
}

// RegisterLabel assigns the next label id to name, appends its def
// record, and flushes it durable before returning the id — so a crash
// can never re-assign the id to a different name after a caller has
// started using it. Registering an existing name returns its id.
func (s *Store) RegisterLabel(ctx *xpsim.Ctx, name string) (uint16, error) {
	if name == "" || len(name) > MaxLabelName {
		return 0, fmt.Errorf("%w: %q (1..%d bytes)", ErrBadLabel, name, MaxLabelName)
	}
	s.mu.Lock()
	for id, n := range s.names {
		if n == name {
			s.mu.Unlock()
			return uint16(id), nil
		}
	}
	id := uint16(len(s.names))
	s.names = append(s.names, name)
	s.pending = append(s.pending, LabelDefRecord(id, name))
	s.mu.Unlock()
	if err := s.Flush(ctx); err != nil {
		return 0, err
	}
	return id, nil
}

// SetLabelDef installs a (id, name) pair decided elsewhere — the path a
// cluster uses to broadcast one shard's registration to its peers and
// replicas with the identical id.
func (s *Store) SetLabelDef(ctx *xpsim.Ctx, id uint16, name string) error {
	if name == "" || len(name) > MaxLabelName {
		return fmt.Errorf("%w: %q (1..%d bytes)", ErrBadLabel, name, MaxLabelName)
	}
	s.mu.Lock()
	if int(id) < len(s.names) && s.names[id] == name {
		s.mu.Unlock()
		return nil
	}
	s.pending = append(s.pending, LabelDefRecord(id, name))
	s.applyIndex(LabelDefRecord(id, name))
	s.mu.Unlock()
	return s.Flush(ctx)
}

// LabelID resolves a registered label name.
func (s *Store) LabelID(name string) (uint16, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, n := range s.names {
		if id > 0 && n == name {
			return uint16(id), true
		}
	}
	return 0, false
}

// LabelName resolves a label id ("" for the default label or unknown).
func (s *Store) LabelName(id uint16) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) < len(s.names) {
		return s.names[id]
	}
	return ""
}

// Labels returns the label table: index = label id, names[0] = "" (the
// default label of untyped edges).
func (s *Store) Labels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.names...)
}

// ApplyEdgeLabels records the labels of a typed edge batch: labels[i] is
// the type of edges[i]. Default-label edges append no record (they read
// back as default with zero column cost — the mixed typed/untyped
// upgrade rule), unless they overwrite an earlier non-default label.
// Deletion records never carry labels.
func (s *Store) ApplyEdgeLabels(edges []graph.Edge, labels []uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range edges {
		if e.IsDelete() {
			continue
		}
		lbl := uint16(graph.DefaultLabel)
		if i < len(labels) {
			lbl = labels[i]
		}
		k := uint64(e.Src)<<32 | uint64(e.Dst)
		if lbl == graph.DefaultLabel {
			if _, relabel := s.labels[k]; !relabel {
				continue
			}
		}
		r := EdgeLabelRecord(e.Src, e.Dst, lbl)
		s.pending = append(s.pending, r)
		s.applyIndex(r)
	}
}

// ApplyProps records a batch of vertex-property writes.
func (s *Store) ApplyProps(sets []graph.PropSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range sets {
		r := VPropRecord(p.V, p.Key, p.Val)
		s.pending = append(s.pending, r)
		s.applyIndex(r)
	}
}

// Flush writes every pending record out as full column blocks (the last
// one possibly partial — blocks are never rewritten, so the next flush
// starts a fresh block). Records are durable in append order: a crash
// mid-flush keeps a prefix.
func (s *Store) Flush(ctx *xpsim.Ctx) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(ctx)
}

func (s *Store) flushLocked(ctx *xpsim.Ctx) error {
	var buf [BlockBytes]byte
	for len(s.pending) > 0 {
		if s.head >= s.capBlocks {
			return ErrFull
		}
		n := len(s.pending)
		if n > RecordsPerBlock {
			n = RecordsPerBlock
		}
		recs := append([]Record(nil), s.pending[:n]...)
		EncodeBlock(buf[:], recs, 0)
		off := s.base + s.head*BlockBytes
		s.m.Write(ctx, off, buf[:])
		s.m.Flush(ctx, off, BlockBytes)
		s.blocks = append(s.blocks, blockMeta{recs: recs, patchOf: -1})
		s.head++
		s.pending = s.pending[n:]
	}
	s.pending = nil
	return nil
}

// Label answers the type of edge (src, dst): the last applied label, or
// the default label for edges never typed. Unchecked — callers that must
// not serve defaults off damaged columns use LabelChecked.
func (s *Store) Label(src, dst uint32) uint16 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.labels[uint64(src)<<32|uint64(dst)]
}

// LabelChecked is Label, failing with ErrDamaged once an unrecoverable
// column block means the answer could be silently wrong.
func (s *Store) LabelChecked(src, dst uint32) (uint16, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.damaged {
		return 0, ErrDamaged
	}
	return s.labels[uint64(src)<<32|uint64(dst)], nil
}

// VProp reads vertex v's property key.
func (s *Store) VProp(v uint32, key uint16) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	val, ok := s.vprops[uint64(v)<<32|uint64(key)]
	return val, ok
}

// VPropChecked is VProp with the damage guard.
func (s *Store) VPropChecked(v uint32, key uint16) (int64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.damaged {
		return 0, false, ErrDamaged
	}
	val, ok := s.vprops[uint64(v)<<32|uint64(key)]
	return val, ok, nil
}

// VisitState enumerates the current property index — every live edge
// label and every live vertex property — under the shared lock. Either
// callback may be nil. Iteration order is unspecified; callers that
// need determinism sort. The cluster's snapshot resync uses this to
// transfer one follower's worth of typed state (DESIGN.md §14.3): the
// index is read-latest, so the transfer is idempotent under a later
// replay of the same records.
func (s *Store) VisitState(edge func(src, dst uint32, lbl uint16), vp func(v uint32, key uint16, val int64)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if edge != nil {
		for k, lbl := range s.labels {
			edge(uint32(k>>32), uint32(k), lbl)
		}
	}
	if vp != nil {
		for k, val := range s.vprops {
			vp(uint32(k>>32), uint16(k), val)
		}
	}
}

// Damaged reports whether an unrecoverable block poisons the columns.
func (s *Store) Damaged() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.damaged
}

// PendingRecords reports how many applied records await a flush.
func (s *Store) PendingRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pending)
}

// Blocks reports how many physical blocks the log holds.
func (s *Store) Blocks() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// Bytes reports the PMEM footprint of the written column log.
func (s *Store) Bytes() int64 { return s.Blocks() * BlockBytes }

// BlockOffsets lists the region-relative byte offset of every written
// physical block, in physical order — the media surface a scrub covers.
func (s *Store) BlockOffsets() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, s.head)
	for i := range out {
		out[i] = s.base + int64(i)*BlockBytes
	}
	return out
}

// ScrubReport summarizes one column scrub pass.
type ScrubReport struct {
	BlocksScanned int64
	BadBlocks     int64 // failed checksum or media read
	Rebuilt       int64 // re-published as patch blocks from the DRAM mirror
	Unrecoverable int64 // bad with no DRAM mirror to rebuild from
}

// Scrub verifies every live column block against its checksum through
// the media-checked read path. A bad block is rebuilt by appending a
// patch block carrying the same records (from the DRAM mirror) and the
// damaged physical block is retired — reads never touch it again. A bad
// block with no mirror (damage that predates this process) is counted
// unrecoverable and keeps the store damaged.
func (s *Store) Scrub(ctx *xpsim.Ctx) (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport
	buf := make([]byte, BlockBytes)
	head := s.head // patches appended during the pass are not re-scanned
	var blkbuf [BlockBytes]byte
	for i := int64(0); i < head; i++ {
		b := &s.blocks[i]
		if b.superseded {
			continue
		}
		rep.BlocksScanned++
		bad := false
		if err := mem.ReadChecked(s.m, ctx, s.base+i*BlockBytes, buf); err != nil {
			bad = true
		} else if _, _, err := DecodeBlock(buf); err != nil {
			bad = true
		}
		if !bad {
			continue
		}
		rep.BadBlocks++
		// Rebuild from the DRAM mirror: append a patch block that
		// logically replaces the damaged one, then retire it.
		target := i
		if b.patchOf >= 0 {
			target = int64(b.patchOf)
		}
		recs := s.blocks[target].recs
		if recs == nil {
			rep.Unrecoverable++
			s.damaged = true
			continue
		}
		if s.head >= s.capBlocks {
			rep.Unrecoverable++
			s.damaged = true
			continue
		}
		EncodeBlock(blkbuf[:], recs, uint16(target)+1)
		off := s.base + s.head*BlockBytes
		s.m.Write(ctx, off, blkbuf[:])
		s.m.Flush(ctx, off, BlockBytes)
		s.blocks = append(s.blocks, blockMeta{recs: recs, patchOf: int(target)})
		s.blocks[i].superseded = true
		if target != i {
			s.blocks[target].superseded = true
		}
		s.head++
		s.quarantined++
		rep.Rebuilt++
	}
	return rep, nil
}

// Quarantined reports how many physical blocks scrubs have retired.
func (s *Store) Quarantined() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.quarantined
}
