package prop

import "fmt"

// Predicate operators accepted by Filter.Op.
const (
	OpNone   = ""
	OpEq     = "eq"
	OpNe     = "ne"
	OpLt     = "lt"
	OpLe     = "le"
	OpGt     = "gt"
	OpGe     = "ge"
	OpExists = "exists"
)

// Filter is the pushdown predicate of a typed traversal: an edge is
// expanded only when its label is in Types (empty: any) AND its
// destination vertex satisfies the property predicate (Op empty: any).
// The view layer applies the filter while decoding, so a filtered k-hop
// never materializes — or charges media reads for — the pruned frontier.
type Filter struct {
	// Types is the accepted label-id set (nil/empty: all labels).
	Types []uint16
	// Key/Op/Val predicate the destination vertex's property Key.
	Key uint16
	Op  string
	Val int64
}

// Empty reports a filter that accepts everything.
func (f Filter) Empty() bool { return len(f.Types) == 0 && f.Op == OpNone }

// Validate rejects unknown operators before a traversal starts.
func (f Filter) Validate() error {
	switch f.Op {
	case OpNone, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpExists:
		return nil
	}
	return fmt.Errorf("prop: unknown filter op %q", f.Op)
}

// MatchLabel reports whether an edge label passes the type set.
func (f Filter) MatchLabel(lbl uint16) bool {
	if len(f.Types) == 0 {
		return true
	}
	for _, t := range f.Types {
		if t == lbl {
			return true
		}
	}
	return false
}

// MatchVertex reports whether a vertex passes the property predicate,
// reading its property through get (ok=false: property unset; an unset
// property fails every predicate except none).
func (f Filter) MatchVertex(get func(key uint16) (int64, bool)) bool {
	if f.Op == OpNone {
		return true
	}
	val, ok := get(f.Key)
	if !ok {
		return false
	}
	switch f.Op {
	case OpExists:
		return true
	case OpEq:
		return val == f.Val
	case OpNe:
		return val != f.Val
	case OpLt:
		return val < f.Val
	case OpLe:
		return val <= f.Val
	case OpGt:
		return val > f.Val
	case OpGe:
		return val >= f.Val
	}
	return false
}
