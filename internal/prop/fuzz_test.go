package prop

import (
	"bytes"
	"testing"
)

// FuzzPropColumnDecode throws arbitrary bytes at the column-block
// decoder: it must never panic, never accept a corrupted block, and
// round-trip every block it does accept.
func FuzzPropColumnDecode(f *testing.F) {
	var seed [BlockBytes]byte
	EncodeBlock(seed[:], []Record{
		EdgeLabelRecord(1, 2, 3),
		VPropRecord(4, 5, 6),
		LabelDefRecord(7, "knows"),
	}, 0)
	f.Add(seed[:])
	f.Add(make([]byte, BlockBytes))
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, patch, err := DecodeBlock(data)
		if err != nil {
			return
		}
		if recs == nil {
			return // zero block: clean end-of-log
		}
		if len(recs) == 0 || len(recs) > RecordsPerBlock {
			t.Fatalf("accepted impossible record count %d", len(recs))
		}
		// Whatever decoded must re-encode to the identical block (the
		// spare bytes are zero by construction).
		var re [BlockBytes]byte
		EncodeBlock(re[:], recs, patch)
		if !bytes.Equal(re[:], data[:BlockBytes]) {
			t.Fatalf("decode/encode round-trip mismatch")
		}
	})
}
