// Package prop is the property-graph layer of the store: typed edges
// (a small label id per edge) and last-write-wins vertex properties,
// persisted in PMEM-resident, CRC-guarded column blocks and mirrored in
// a DRAM index for constant-time lookups on the read path.
//
// # Block format (DESIGN.md §13)
//
// The column log is a sequence of 256 B blocks — one XPLine each, so a
// block write is a single failure-atomic media line:
//
//	[0:4)   crc32c over [4:256)
//	[4:6)   count  (uint16, 1..15 records)
//	[6:8)   patch  (uint16, 0 = normal; n>0: replaces block n-1)
//	[8:248) count × 16-byte records
//	[248:256) zero
//
// Blocks are written strictly sequentially and never rewritten in place,
// so a torn write can only affect the newest block: recovery truncates it
// and every earlier record stays durable (the same prefix-durability
// contract the edge log gives). A patch block re-publishes the records of
// an earlier block whose media went bad — the scrub rebuild path — and
// logically replaces it without touching the damaged line.
//
// # Record format
//
// Every record is 16 bytes:
//
//	[0]     kind   (1 = edge label, 2 = vertex property, 3 = label def)
//	[1]     zero
//	[2:4)   lbl    (edge label id / property key / label id)
//	[4:8)   src    (edge source / property vertex / name[0:4])
//	[8:12)  dst    (edge destination / value low half / name[4:8])
//	[12:16) ext    (value high half / name[8:12])
//
// Label-def names are at most 12 bytes, NUL-padded into src/dst/ext.
package prop

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// BlockBytes is one column block — exactly one 256 B XPLine.
	BlockBytes = 256
	// RecordBytes is the size of one encoded record.
	RecordBytes = 16
	// RecordsPerBlock is how many records one block holds.
	RecordsPerBlock = 15

	blockHdrBytes = 8
)

// Record kinds.
const (
	KindEdgeLabel = 1
	KindVProp     = 2
	KindLabelDef  = 3
)

// MaxLabelName bounds a label-def name (it is packed into one record).
const MaxLabelName = 12

// ErrBadBlock reports a column block that fails its checksum or carries
// a structurally impossible header.
var ErrBadBlock = errors.New("prop: corrupt column block")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded column-log record.
type Record struct {
	Kind uint8
	Lbl  uint16
	Src  uint32
	Dst  uint32
	Ext  uint32
}

// EdgeLabelRecord builds the record that sets the label of (src, dst).
func EdgeLabelRecord(src, dst uint32, lbl uint16) Record {
	return Record{Kind: KindEdgeLabel, Lbl: lbl, Src: src, Dst: dst}
}

// VPropRecord builds the record that sets property key of vertex v.
func VPropRecord(v uint32, key uint16, val int64) Record {
	return Record{Kind: KindVProp, Lbl: key, Src: v,
		Dst: uint32(uint64(val)), Ext: uint32(uint64(val) >> 32)}
}

// Value unpacks a KindVProp record's 64-bit value.
func (r Record) Value() int64 {
	return int64(uint64(r.Dst) | uint64(r.Ext)<<32)
}

// LabelDefRecord builds the record that registers name under label id.
// The name must fit MaxLabelName bytes.
func LabelDefRecord(id uint16, name string) Record {
	var b [12]byte
	copy(b[:], name)
	return Record{Kind: KindLabelDef, Lbl: id,
		Src: binary.LittleEndian.Uint32(b[0:4]),
		Dst: binary.LittleEndian.Uint32(b[4:8]),
		Ext: binary.LittleEndian.Uint32(b[8:12])}
}

// LabelName unpacks a KindLabelDef record's name.
func (r Record) LabelName() string {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:4], r.Src)
	binary.LittleEndian.PutUint32(b[4:8], r.Dst)
	binary.LittleEndian.PutUint32(b[8:12], r.Ext)
	n := 0
	for n < len(b) && b[n] != 0 {
		n++
	}
	return string(b[:n])
}

func (r Record) encode(p []byte) {
	p[0] = r.Kind
	p[1] = 0
	binary.LittleEndian.PutUint16(p[2:4], r.Lbl)
	binary.LittleEndian.PutUint32(p[4:8], r.Src)
	binary.LittleEndian.PutUint32(p[8:12], r.Dst)
	binary.LittleEndian.PutUint32(p[12:16], r.Ext)
}

func decodeRecord(p []byte) Record {
	return Record{
		Kind: p[0],
		Lbl:  binary.LittleEndian.Uint16(p[2:4]),
		Src:  binary.LittleEndian.Uint32(p[4:8]),
		Dst:  binary.LittleEndian.Uint32(p[8:12]),
		Ext:  binary.LittleEndian.Uint32(p[12:16]),
	}
}

// EncodeBlock renders up to RecordsPerBlock records into dst (BlockBytes
// long, zeroed by the caller or reused — it is fully overwritten).
// patch is 0 for a normal block, or target+1 when this block logically
// replaces an earlier one.
func EncodeBlock(dst []byte, recs []Record, patch uint16) {
	if len(dst) < BlockBytes {
		panic("prop: EncodeBlock buffer too small")
	}
	if len(recs) == 0 || len(recs) > RecordsPerBlock {
		panic(fmt.Sprintf("prop: EncodeBlock record count %d", len(recs)))
	}
	for i := range dst[:BlockBytes] {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint16(dst[4:6], uint16(len(recs)))
	binary.LittleEndian.PutUint16(dst[6:8], patch)
	for i, r := range recs {
		r.encode(dst[blockHdrBytes+i*RecordBytes:])
	}
	binary.LittleEndian.PutUint32(dst[0:4], crc32.Checksum(dst[4:BlockBytes], castagnoli))
}

// DecodeBlock parses one column block. It returns the records and the
// patch target (+1; 0 when the block is a normal in-place block), or
// ErrBadBlock when the checksum or header is invalid. A block that is
// entirely zero (never written) decodes to (nil, 0, nil).
func DecodeBlock(p []byte) (recs []Record, patch uint16, err error) {
	if len(p) < BlockBytes {
		return nil, 0, fmt.Errorf("%w: short block (%d bytes)", ErrBadBlock, len(p))
	}
	p = p[:BlockBytes]
	if isZero(p) {
		return nil, 0, nil
	}
	if got, want := crc32.Checksum(p[4:], castagnoli), binary.LittleEndian.Uint32(p[0:4]); got != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrBadBlock, want, got)
	}
	count := int(binary.LittleEndian.Uint16(p[4:6]))
	patch = binary.LittleEndian.Uint16(p[6:8])
	if count == 0 || count > RecordsPerBlock {
		return nil, 0, fmt.Errorf("%w: record count %d", ErrBadBlock, count)
	}
	if !isZero(p[blockHdrBytes+count*RecordBytes:]) {
		return nil, 0, fmt.Errorf("%w: nonzero padding", ErrBadBlock)
	}
	recs = make([]Record, count)
	for i := range recs {
		rp := p[blockHdrBytes+i*RecordBytes:]
		if rp[1] != 0 {
			return nil, 0, fmt.Errorf("%w: nonzero record pad", ErrBadBlock)
		}
		recs[i] = decodeRecord(rp)
	}
	for _, r := range recs {
		switch r.Kind {
		case KindEdgeLabel, KindVProp, KindLabelDef:
		default:
			return nil, 0, fmt.Errorf("%w: unknown record kind %d", ErrBadBlock, r.Kind)
		}
	}
	return recs, patch, nil
}

func isZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
