// Package xpsim simulates Intel Optane Persistent Memory (200 series) at
// the level of detail XPGraph's design depends on: 256-byte XPLine media
// granularity, an internal write-combining XPBuffer that turns partial-line
// writes into read-modify-write operations, NUMA locality with expensive
// remote accesses, and limited multi-threaded store performance.
//
// All simulated traffic is charged to a per-worker Cost (a simulated
// clock). Experiments report simulated time, which makes thread-scaling
// and NUMA experiments deterministic and reproducible on any host.
// Latency constants follow the empirical characterization of Optane in
// Yang et al., "An Empirical Guide to the Behavior and Use of Scalable
// Persistent Memory" (FAST'20), reference [81] of the XPGraph paper.
package xpsim

import (
	"encoding/json"
	"fmt"
	"os"
)

const (
	// XPLineSize is the physical access granularity of the 3D-XPoint
	// media (§II-A of the paper).
	XPLineSize = 256
	// CacheLineSize is the CPU cache line size; cache lines are the
	// granularity at which software traffic reaches the device.
	CacheLineSize = 64
)

// LatencyModel holds the latency and contention constants of the simulated
// machine. All latencies are in nanoseconds of simulated time.
type LatencyModel struct {
	// PMEM, charged per XPLine touched. Hits in the write-combining
	// path (CPU cache + XPBuffer under eADR) cost almost nothing; the
	// real prices are paid when lines move to/from the 3D-XPoint media.
	MediaRead int64 // miss: read one XPLine from the media
	BufRead   int64 // hit: read served from the combining buffers
	LineWrite int64 // miss: fill one XPLine toward the media
	BufWrite  int64 // hit: merge a store into an already-buffered line
	// A partial-line write that misses the XPBuffer additionally pays
	// MediaRead for the read-modify-write (§II-A item 2), unless the
	// write starts at the line boundary (streaming store heuristic:
	// appends/full-line fills do not read the old contents).

	// NUMA: remote (cross-socket) PMEM access multipliers (§II-A item 4).
	RemoteReadMul  float64
	RemoteWriteMul float64

	// Store contention (§II-A item 3): beyond Knee concurrent workers,
	// each access is slowed by 1 + Slope*(workers-Knee). Remote
	// multi-threaded stores degrade much faster, which is what makes
	// GraphOne-P collapse past 8 archiving threads (Fig. 4b) while
	// NUMA-bound XPGraph scales to 95 (Fig. 20).
	WriteKnee        int
	WriteSlope       float64
	RemoteWriteKnee  int
	RemoteWriteSlope float64
	ReadKnee         int
	ReadSlope        float64
	RemoteReadKnee   int
	RemoteReadSlope  float64

	// DRAM, charged per cache line touched.
	DRAMRead     int64 // random read
	DRAMWrite    int64 // random write
	DRAMSeqRead  int64 // sequential read
	DRAMSeqWrite int64 // sequential write
	DRAMCached   int64 // store to a recently-touched line (likely cached)

	// MemoryMode multipliers: Optane in Memory Mode behaves like slow
	// DRAM (the DRAM acts as a direct-mapped cache). Charged on DRAM
	// latencies for memory-mode spaces (Fig. 12).
	MemModeReadMul  float64
	MemModeWriteMul float64

	// CPUOp is the cost of one unit of CPU work (a few instructions:
	// hash, compare, pointer chase already in cache). Software charges
	// this explicitly so that PMEM savings do not produce absurd
	// speedups: compute does not vanish when storage gets faster.
	CPUOp int64

	// VFSOp is the per-system-call overhead of file I/O through a kernel
	// file system (VFS dispatch, metadata, journaling). This is what
	// makes the file-I/O based GraphOne-N an order of magnitude slower
	// than mmap-based designs (Fig. 11 and NOVA-Fortis Fig. 10).
	VFSOp int64
}

// DefaultLatency returns the latency model used by all experiments unless
// overridden. Values are rounded from FAST'20 measurements of Optane.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		MediaRead: 305,
		BufRead:   10,
		LineWrite: 140,
		BufWrite:  12,

		RemoteReadMul:  2.2,
		RemoteWriteMul: 2.2,

		WriteKnee:        16,
		WriteSlope:       0.05,
		RemoteWriteKnee:  8,
		RemoteWriteSlope: 0.21,
		ReadKnee:         24,
		ReadSlope:        0.02,
		RemoteReadKnee:   16,
		RemoteReadSlope:  0.03,

		DRAMRead:     85,
		DRAMWrite:    70,
		DRAMSeqRead:  16,
		DRAMSeqWrite: 14,
		DRAMCached:   30,

		MemModeReadMul:  2.6,
		MemModeWriteMul: 3.4,

		CPUOp: 4,
		VFSOp: 8000,
	}
}

// LoadLatency reads a LatencyModel from a JSON file, starting from the
// calibrated defaults so partial overrides work:
//
//	{"MediaRead": 400, "RemoteWriteMul": 3.0}
//
// This is the recalibration hook for users with different hardware
// measurements (e.g. Optane 100 series numbers from FAST'20).
func LoadLatency(path string) (LatencyModel, error) {
	lat := DefaultLatency()
	data, err := os.ReadFile(path)
	if err != nil {
		return lat, err
	}
	if err := json.Unmarshal(data, &lat); err != nil {
		return lat, fmt.Errorf("xpsim: parse %s: %w", path, err)
	}
	return lat, nil
}

// writeContention returns the multiplier for a store issued while
// `workers` workers are concurrently active, for a local or remote access.
func (l *LatencyModel) writeContention(workers int, remote bool) float64 {
	knee, slope := l.WriteKnee, l.WriteSlope
	if remote {
		knee, slope = l.RemoteWriteKnee, l.RemoteWriteSlope
	}
	if workers <= knee {
		return 1
	}
	return 1 + slope*float64(workers-knee)
}

// readContention returns the multiplier for a load issued while `workers`
// workers are concurrently active. Remote loads degrade much faster with
// concurrency — the cross-NUMA multi-threaded effect of FAST'20 that the
// paper's query binding exists to avoid.
func (l *LatencyModel) readContention(workers int, remote bool) float64 {
	knee, slope := l.ReadKnee, l.ReadSlope
	if remote {
		knee, slope = l.RemoteReadKnee, l.RemoteReadSlope
	}
	if workers <= knee {
		return 1
	}
	return 1 + slope*float64(workers-knee)
}
