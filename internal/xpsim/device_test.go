package xpsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testDevice(size int64) *Device {
	lat := DefaultLatency()
	return NewDevice(0, 2, size, &lat)
}

func TestDeviceReadAfterWrite(t *testing.T) {
	d := testDevice(1 << 20)
	ctx := NewCtx(0)
	want := []byte("hello, xpline world")
	d.Write(ctx, 12345, want)
	got := make([]byte, len(want))
	d.Read(ctx, 12345, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestDeviceZeroInitialized(t *testing.T) {
	d := testDevice(1 << 20)
	ctx := NewCtx(0)
	p := make([]byte, 512)
	for i := range p {
		p[i] = 0xff
	}
	d.Read(ctx, 777, p)
	for i, b := range p {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

// Property: arbitrary interleavings of reads and writes behave exactly
// like a plain byte array (the XPBuffer must never lose or corrupt data).
func TestDeviceMatchesShadowArray(t *testing.T) {
	const size = 1 << 16
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testDevice(size)
		ctx := NewCtx(0)
		shadow := make([]byte, size)
		for op := 0; op < 300; op++ {
			off := rng.Int63n(size - 1)
			n := 1 + rng.Int63n(min64(600, size-off))
			if rng.Intn(2) == 0 {
				p := make([]byte, n)
				rng.Read(p)
				d.Write(ctx, off, p)
				copy(shadow[off:], p)
			} else {
				p := make([]byte, n)
				d.Read(ctx, off, p)
				if !bytes.Equal(p, shadow[off:off+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestSmallRandomWritesAmplify(t *testing.T) {
	// The motivating observation (§II-C): scattered 4-byte writes cause
	// 256-byte read-modify-writes. Spread writes far apart so each
	// misses the XPBuffer.
	d := testDevice(64 << 20)
	ctx := NewCtx(0)
	rng := rand.New(rand.NewSource(1))
	const n = 4096
	for i := 0; i < n; i++ {
		off := rng.Int63n((64<<20)/XPLineSize) * XPLineSize
		// Offset 8 within the line: partial, not line-start.
		var v [4]byte
		d.Write(ctx, off+8, v[:])
	}
	s := d.Drain()
	if amp := s.WriteAmplification(); amp < 10 {
		t.Errorf("write amplification = %.1f, want >> 1 for scattered 4B writes", amp)
	}
	if s.MediaReadLines < n/2 {
		t.Errorf("media reads = %d, want RMW reads for most of %d scattered partial writes", s.MediaReadLines, n)
	}
}

func TestSequentialAppendDoesNotRMW(t *testing.T) {
	// Sequential log appends (8-byte edges) should combine in the
	// XPBuffer: no RMW media reads, ~1 media write per line.
	d := testDevice(1 << 20)
	ctx := NewCtx(0)
	var e [8]byte
	const n = 8192
	for i := int64(0); i < n; i++ {
		d.Write(ctx, i*8, e[:])
	}
	s := d.Drain()
	if s.MediaReadLines != 0 {
		t.Errorf("media reads = %d, want 0 for pure sequential appends", s.MediaReadLines)
	}
	wantLines := int64(n * 8 / XPLineSize)
	if s.MediaWriteLines < wantLines || s.MediaWriteLines > wantLines+64 {
		t.Errorf("media writes = %d lines, want about %d", s.MediaWriteLines, wantLines)
	}
	if amp := s.WriteAmplification(); amp > 1.5 {
		t.Errorf("write amplification = %.2f, want ~1 for sequential appends", amp)
	}
}

func TestFullLineWriteCheaperThanScattered(t *testing.T) {
	d := testDevice(16 << 20)
	// 64 scattered 4B writes to distinct lines...
	scattered := NewCtx(0)
	for i := int64(0); i < 64; i++ {
		var v [4]byte
		d.Write(scattered, i*XPLineSize*7+8, v[:])
	}
	// ...vs one 256B full-line write carrying the same payload.
	batched := NewCtx(0)
	var line [XPLineSize]byte
	d.Write(batched, 8<<20, line[:])
	if batched.Cost.Ns()*10 > scattered.Cost.Ns() {
		t.Errorf("full-line write cost %d ns vs scattered %d ns; want >=10x cheaper",
			batched.Cost.Ns(), scattered.Cost.Ns())
	}
}

func TestRemoteAccessCostsMore(t *testing.T) {
	lat := DefaultLatency()
	d := NewDevice(0, 2, 1<<20, &lat)
	local := NewCtx(0)
	remote := NewCtx(1)
	p := make([]byte, 4096)
	d.Write(local, 0, p)
	d.Write(remote, 512<<10, p)
	if remote.Cost.Ns() <= local.Cost.Ns() {
		t.Errorf("remote write %d ns <= local %d ns", remote.Cost.Ns(), local.Cost.Ns())
	}
	s := d.Stats()
	if s.RemoteAccesses == 0 || s.LocalAccesses == 0 {
		t.Errorf("locality counters not populated: %+v", s)
	}
}

func TestUnboundWorkerPlacement(t *testing.T) {
	// Unbound workers are spread round-robin across sockets: worker 0
	// lands on node 0 (local to device 0), worker 1 on node 1 (remote).
	lat := DefaultLatency()
	d := NewDevice(0, 2, 1<<20, &lat)
	w0 := &Ctx{Cost: &Cost{}, Node: NodeUnbound, Worker: 0, Workers: 2}
	w1 := &Ctx{Cost: &Cost{}, Node: NodeUnbound, Worker: 1, Workers: 2}
	p := make([]byte, 1024)
	d.Write(w0, 0, p)
	d.Write(w1, 4096, p)
	if w1.Cost.Ns() <= w0.Cost.Ns() {
		t.Errorf("worker on remote socket cost %d ns <= local %d ns", w1.Cost.Ns(), w0.Cost.Ns())
	}
}

func TestWriteContentionKnee(t *testing.T) {
	lat := DefaultLatency()
	// Remote writes degrade past the knee.
	if m8, m16 := lat.writeContention(8, true), lat.writeContention(16, true); m16 <= m8 {
		t.Errorf("remote contention at 16 workers (%.2f) should exceed 8 workers (%.2f)", m16, m8)
	}
	// Per-access slowdown at 2w workers must outweigh the 2x worker
	// speedup for remote stores past the knee (the Fig. 4b collapse)...
	if m := lat.writeContention(16, true); m <= 2 {
		t.Errorf("remote contention at 16 = %.2f, want > 2 so that 16 threads are slower than 8", m)
	}
	// ...but local stores must keep scaling to ~95 threads (Fig. 20).
	prev := 1e18
	for _, w := range []int{16, 32, 64, 95} {
		perWorker := lat.writeContention(w, false) / float64(w)
		if perWorker >= prev {
			t.Errorf("local write throughput should still improve at %d workers", w)
		}
		prev = perWorker
	}
}

func TestReserve(t *testing.T) {
	d := testDevice(4096)
	a, err := d.Reserve(100, 256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Reserve(100, 256)
	if err != nil {
		t.Fatal(err)
	}
	if a%256 != 0 || b%256 != 0 || b <= a {
		t.Fatalf("bad reservations a=%d b=%d", a, b)
	}
	if _, err := d.Reserve(1<<20, 1); err == nil {
		t.Fatal("expected out-of-space error")
	}
}

func TestParallelReturnsMaxWorker(t *testing.T) {
	dur := Parallel(4, Unpinned, func(w int, ctx *Ctx) {
		ctx.Cost.Add(int64(100 * (w + 1)))
	})
	if dur.Nanoseconds() != 400 {
		t.Fatalf("Parallel = %v, want 400ns (max worker)", dur)
	}
}

func TestFlushWritesBackDirtyLines(t *testing.T) {
	d := testDevice(1 << 20)
	ctx := NewCtx(0)
	p := make([]byte, XPLineSize)
	d.Write(ctx, 0, p)
	before := d.Stats().MediaWriteLines
	d.Flush(ctx, 0, XPLineSize)
	after := d.Stats().MediaWriteLines
	if after != before+1 {
		t.Fatalf("flush wrote back %d lines, want 1", after-before)
	}
	// Second flush of the now-clean line is a no-op.
	d.Flush(ctx, 0, XPLineSize)
	if got := d.Stats().MediaWriteLines; got != after {
		t.Fatalf("idempotent flush wrote %d extra lines", got-after)
	}
}

func TestMediaWriteAccounting(t *testing.T) {
	// Property: after drain, media write bytes >= requested bytes for
	// non-overlapping writes (the media can never write less than asked).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testDevice(1 << 20)
		ctx := NewCtx(0)
		var req int64
		for i := 0; i < 100; i++ {
			off := rng.Int63n(1<<20 - 512)
			n := 1 + rng.Int63n(511)
			p := make([]byte, n)
			d.Write(ctx, off, p)
			req += n
		}
		s := d.Drain()
		return s.MediaWriteBytes() >= 0 && s.ReqWriteBytes == req
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
