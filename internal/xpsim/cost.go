package xpsim

import "time"

// NodeUnbound marks a context whose issuing thread has not been pinned to
// a NUMA node by the software. The simulation still places the thread on a
// physical core (workers are spread round-robin across sockets), so an
// unbound thread touching interleaved PMEM sees ~50% remote lines — which
// is exactly the behaviour of an unpinned archiving thread in GraphOne-P.
const NodeUnbound = -1

// Cost is a per-worker simulated clock. All simulated device and DRAM
// traffic adds nanoseconds here; a parallel phase's simulated duration is
// the maximum Cost over its workers.
type Cost struct {
	ns int64
}

// Add charges ns nanoseconds of simulated time.
func (c *Cost) Add(ns int64) { c.ns += ns }

// AddF charges a float amount of simulated nanoseconds, rounding up so
// that no access is ever free.
func (c *Cost) AddF(ns float64) {
	n := int64(ns)
	if float64(n) < ns {
		n++
	}
	c.ns += n
}

// Ns reports the accumulated simulated nanoseconds.
func (c *Cost) Ns() int64 { return c.ns }

// Duration reports the accumulated simulated time.
func (c *Cost) Duration() time.Duration { return time.Duration(c.ns) }

// Reset zeroes the clock.
func (c *Cost) Reset() { c.ns = 0 }

// Ctx is the access context threaded through every simulated memory
// operation. It identifies the issuing worker's simulated clock, the NUMA
// node its thread runs on, and how many workers share the current parallel
// phase (for the contention model).
type Ctx struct {
	Cost    *Cost
	Node    int // NUMA node the issuing thread runs on; NodeUnbound if unpinned
	Worker  int // worker index within the current phase (scheduler placement hint)
	Workers int // concurrently active workers in the current phase (>=1)
}

// NewCtx returns a context for a single bound worker on the given node.
func NewCtx(node int) *Ctx {
	return &Ctx{Cost: &Cost{}, Node: node, Workers: 1}
}

// effectiveNode reports the physical node the context's thread runs on,
// given the machine has `sockets` sockets and the worker index hint `w`.
// Bound threads run where they were bound; unbound threads are spread
// round-robin by the scheduler.
func effectiveNode(node, w, sockets int) int {
	if node != NodeUnbound {
		return node
	}
	if sockets <= 0 {
		return 0
	}
	return w % sockets
}

// CPU charges `units` units of CPU work (model constant CPUOp each).
func (l *LatencyModel) CPU(ctx *Ctx, units int64) {
	ctx.Cost.Add(units * l.CPUOp)
}

// DRAM charges a DRAM access of n bytes. Random accesses pay per touched
// cache line; sequential accesses pay the streaming rate.
func (l *LatencyModel) DRAM(ctx *Ctx, n int64, write, sequential bool) {
	if n <= 0 {
		return
	}
	lines := (n + CacheLineSize - 1) / CacheLineSize
	var per int64
	switch {
	case write && sequential:
		per = l.DRAMSeqWrite
	case write:
		per = l.DRAMWrite
	case sequential:
		per = l.DRAMSeqRead
	default:
		per = l.DRAMRead
	}
	ctx.Cost.Add(lines * per)
}

// Parallel runs a simulated parallel phase with n workers and returns the
// maximum simulated cost across them (the phase's simulated duration).
//
// Workers execute sequentially on the host — the simulation is about
// simulated time, not host parallelism — which makes every experiment
// deterministic. nodeOf selects the NUMA node worker w is pinned to
// (return NodeUnbound for unpinned workers).
func Parallel(n int, nodeOf func(w int) int, fn func(w int, ctx *Ctx)) time.Duration {
	return ParallelN(n, n, nodeOf, fn)
}

// ParallelN is Parallel with an explicit contention level: `contention` is
// the number of workers concurrently hammering the same device, which can
// exceed n when other worker groups (e.g. the in-graph group on the same
// socket) run at the same time, or fall below n when unbound workers
// spread across several sockets' devices.
func ParallelN(n, contention int, nodeOf func(w int) int, fn func(w int, ctx *Ctx)) time.Duration {
	if n <= 0 {
		return 0
	}
	if contention < 1 {
		contention = 1
	}
	var max int64
	for w := 0; w < n; w++ {
		ctx := &Ctx{Cost: &Cost{}, Node: nodeOf(w), Worker: w, Workers: contention}
		fn(w, ctx)
		if ctx.Cost.Ns() > max {
			max = ctx.Cost.Ns()
		}
	}
	return time.Duration(max)
}

// Unpinned is a convenience nodeOf function for Parallel: no worker is
// pinned anywhere.
func Unpinned(int) int { return NodeUnbound }

// PinnedTo returns a nodeOf function pinning every worker to node.
func PinnedTo(node int) func(int) int { return func(int) int { return node } }
