package xpsim

// xpBuffer models the small write-combining buffer inside an Optane DIMM
// (§II-A, Fig. 1b). It is a set-associative cache of XPLines with LRU
// replacement. Writes that hit merge in the buffer without touching the
// 3D-XPoint media; partial-line writes that miss force a media read
// (read-modify-write); evicted dirty lines become media writes.
//
// The buffer only tracks line identity and dirtiness — data lives in the
// device's backing store, written through synchronously (eADR semantics:
// the buffer is inside the power-fail protected domain). With fault
// tracking enabled (faults.go) the device additionally maintains a
// durable image updated only when lines are written back, which models
// an ADR platform where buffered lines die with the power.
type xpBuffer struct {
	sets  int
	ways  int
	lines []xpLine // sets*ways entries
	tick  uint64
}

type xpLine struct {
	idx   int64 // XPLine index, -1 if invalid
	dirty bool
	used  uint64 // LRU timestamp
}

// newXPBuffer builds a buffer with the given set count and associativity.
// The real XPBuffer is ~16 KB: 64 lines.
func newXPBuffer(sets, ways int) *xpBuffer {
	b := &xpBuffer{sets: sets, ways: ways, lines: make([]xpLine, sets*ways)}
	for i := range b.lines {
		b.lines[i].idx = -1
	}
	return b
}

func (b *xpBuffer) set(idx int64) []xpLine {
	s := int(idx) & (b.sets - 1)
	return b.lines[s*b.ways : (s+1)*b.ways]
}

// capacityLines reports the buffer capacity in XPLines.
func (b *xpBuffer) capacityLines() int { return b.sets * b.ways }

// access looks up XPLine idx, inserting it on miss. It returns whether
// the lookup hit and, when a dirty line was written back to media, which
// line (wbLine = -1 if none): the evicted victim on a miss, or the line
// itself when its reuse window expired.
//
// window models multi-threaded sharing of the buffer: the simulation runs
// one worker's access stream at a time, but on real hardware `workers`
// concurrent streams interleave and each effectively owns only
// lines/workers entries. A resident line therefore only counts as a hit if
// its reuse distance (in this device's accesses) fits the window;
// otherwise the intervening traffic would have evicted it, so the access
// is charged as a miss (with a media write-back if the line was dirty).
func (b *xpBuffer) access(idx int64, write bool, window uint64) (hit bool, wbLine int64) {
	b.tick++
	set := b.set(idx)
	victim := 0
	for i := range set {
		if set[i].idx == idx {
			expired := window > 0 && b.tick-set[i].used > window
			wasDirty := set[i].dirty
			set[i].used = b.tick
			if write {
				set[i].dirty = true
			}
			if expired {
				// Evicted in the meantime by the other streams: its
				// dirty contents went to media, and this access must
				// re-fetch/rewrite it.
				if !write {
					set[i].dirty = false
				}
				if wasDirty {
					return false, idx
				}
				return false, -1
			}
			return true, -1
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	wbLine = -1
	if set[victim].idx >= 0 && set[victim].dirty {
		wbLine = set[victim].idx
	}
	set[victim] = xpLine{idx: idx, dirty: write, used: b.tick}
	return false, wbLine
}

// drain marks every buffered line clean and appends the indices of the
// dirty lines written back to media. Used when accounting finishes a run
// (so media write counters include data still sitting in the buffer) and
// by explicit writeback barriers.
func (b *xpBuffer) drain(dst []int64) []int64 {
	for i := range b.lines {
		if b.lines[i].idx >= 0 && b.lines[i].dirty {
			b.lines[i].dirty = false
			dst = append(dst, b.lines[i].idx)
		}
	}
	return dst
}

// flushLine writes back line idx if present and dirty, reporting whether a
// media write happened. Models a clwb-style explicit flush reaching the
// DIMM for one line.
func (b *xpBuffer) flushLine(idx int64) bool {
	set := b.set(idx)
	for i := range set {
		if set[i].idx == idx && set[i].dirty {
			set[i].dirty = false
			return true
		}
	}
	return false
}
