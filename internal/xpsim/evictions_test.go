package xpsim

import "testing"

// TestBufEvictionsCounted: streaming dirty writes over more lines than the
// XPBuffer holds must evict dirty lines, and every eviction is both
// counted in BufEvictions and materialized as a media write.
func TestBufEvictionsCounted(t *testing.T) {
	d := testDevice(1 << 22)
	ctx := NewCtx(0)
	line := make([]byte, XPLineSize)

	// The XPBuffer holds 64 lines; write 256 distinct dirty lines.
	for i := int64(0); i < 256; i++ {
		d.Write(ctx, i*XPLineSize, line)
	}
	st := d.Stats()
	if st.BufEvictions == 0 {
		t.Fatal("streaming past XPBuffer capacity produced no evictions")
	}
	// Dirty capacity evictions are a subset of media writes (flushes and
	// drains also write media), and here they are the only media writes.
	if st.MediaWriteLines != st.BufEvictions {
		t.Fatalf("MediaWriteLines = %d, BufEvictions = %d — a capacity eviction must write media exactly once",
			st.MediaWriteLines, st.BufEvictions)
	}
	// At most the resident 64 lines can still be dirty-unwritten.
	if st.BufEvictions < 256-64 {
		t.Fatalf("BufEvictions = %d, want >= %d", st.BufEvictions, 256-64)
	}
}

// TestDrainIsNotAnEviction: Drain writes back dirty lines but must not
// count them as capacity evictions.
func TestDrainIsNotAnEviction(t *testing.T) {
	d := testDevice(1 << 20)
	ctx := NewCtx(0)
	line := make([]byte, XPLineSize)
	for i := int64(0); i < 8; i++ { // fits in the buffer: no evictions
		d.Write(ctx, i*XPLineSize, line)
	}
	if ev := d.Stats().BufEvictions; ev != 0 {
		t.Fatalf("writes within capacity evicted %d lines", ev)
	}
	st := d.Drain()
	if st.BufEvictions != 0 {
		t.Fatalf("Drain counted %d evictions, want 0", st.BufEvictions)
	}
	if st.MediaWriteLines != 8 {
		t.Fatalf("Drain wrote %d lines, want 8", st.MediaWriteLines)
	}
}
