package xpsim

import "fmt"

// Machine is the simulated testbed: a multi-socket NUMA system with one
// Optane device group per socket. The paper's testbed is two sockets with
// 4x128 GB Optane each; the simulated capacity is configurable because the
// reproduction runs scaled-down datasets.
type Machine struct {
	Lat     LatencyModel
	Sockets int
	devices []*Device
	faults  *Faults
}

// NewMachine builds a machine with `sockets` NUMA nodes, each with
// `pmemPerNode` bytes of simulated PMEM.
func NewMachine(sockets int, pmemPerNode int64, lat LatencyModel) *Machine {
	if sockets < 1 {
		panic("xpsim: machine needs at least one socket")
	}
	m := &Machine{Lat: lat, Sockets: sockets}
	for n := 0; n < sockets; n++ {
		m.devices = append(m.devices, NewDevice(n, sockets, pmemPerNode, &m.Lat))
	}
	return m
}

// Device returns the PMEM device of the given NUMA node.
func (m *Machine) Device(node int) *Device {
	if node < 0 || node >= len(m.devices) {
		panic(fmt.Sprintf("xpsim: no device on node %d", node))
	}
	return m.devices[node]
}

// Devices returns all devices, indexed by node.
func (m *Machine) Devices() []*Device { return m.devices }

// TotalStats drains all XPBuffers and returns machine-wide counters.
func (m *Machine) TotalStats() Stats {
	var s Stats
	for _, d := range m.devices {
		s.Add(d.Drain())
	}
	return s
}

// SnapshotStats returns machine-wide counters without draining buffers
// (cheap; media write counts may lag by up to one XPBuffer).
func (m *Machine) SnapshotStats() Stats {
	var s Stats
	for _, d := range m.devices {
		s.Add(d.Stats())
	}
	return s
}

// ResetStats zeroes all device counters.
func (m *Machine) ResetStats() {
	for _, d := range m.devices {
		d.ResetStats()
	}
}

// TrackFaults switches every device from eADR to tracked-durability
// semantics and returns the machine's fault-injection state (see
// faults.go). Call it on a fresh machine, before any data is written;
// arm a FaultPlan on the returned Faults to schedule a crash.
func (m *Machine) TrackFaults() *Faults {
	if m.faults == nil {
		m.faults = &Faults{}
		for _, d := range m.devices {
			d.enableTracking(m.faults)
		}
	}
	return m.faults
}

// Faults returns the fault-injection state, or nil if TrackFaults was
// never called.
func (m *Machine) Faults() *Faults { return m.faults }

// CrashPoint marks a named crash site in store code (e.g. "flush:acked").
// With fault tracking enabled it counts the hit and, if the armed plan
// kills at this site, freezes the durable image here. A no-op otherwise,
// so store code can annotate crash sites unconditionally.
func (m *Machine) CrashPoint(name string) {
	if m.faults != nil {
		m.faults.onSite(name)
	}
}
