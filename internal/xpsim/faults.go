package xpsim

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements crash-point fault injection for the simulated
// Optane devices. The device model distinguishes two persistence domains:
// the 3D-XPoint media (durable) and the XPBuffer (volatile unless the
// platform has eADR). By default the simulator behaves as eADR — every
// write that reached the backing store survives. With fault tracking
// enabled the machine additionally maintains a *durable image* per device
// that is only updated at media-write events: dirty-line evictions,
// explicit clwb flushes, and drains. XPBuffer-resident lines that were
// never written back are simply absent from the durable image — exactly
// the data an ADR platform loses on power failure.
//
// A FaultPlan then selects a crash point: either the Nth media write
// after arming, or the Kth hit of a named crash-site hook (see
// Machine.CrashPoint). At the crash point the durable image freezes; the
// in-flight XPLine of a media-write kill can additionally be torn at
// 8-byte granularity (powerfail store atomicity), persisting a prefix or
// a pseudo-random interleave of old and new words. The live simulation
// continues unharmed — the harness later snapshots the frozen image
// (pmem.Heap.CrashClone) and recovers from it.

// TearMode selects what happens to the XPLine whose media write triggers
// the crash.
type TearMode int

const (
	// TearNone drops the in-flight line entirely: the crash happens just
	// before the Nth media write completes.
	TearNone TearMode = iota
	// TearPrefix persists only the first k 8-byte words of the line
	// (k derived from the plan seed); the rest keeps its old contents.
	TearPrefix
	// TearWords persists a seed-derived subset of the line's 8-byte
	// words, interleaving new and stale data.
	TearWords
)

func (t TearMode) String() string {
	switch t {
	case TearNone:
		return "none"
	case TearPrefix:
		return "prefix"
	case TearWords:
		return "words"
	}
	return fmt.Sprintf("TearMode(%d)", int(t))
}

// FaultPlan describes one injected crash. The zero plan never crashes
// (useful for probe runs that count media writes and crash-site hits).
type FaultPlan struct {
	// KillAtMediaWrite crashes at the Nth media-write event after the
	// plan is armed (1-based; 0 disables media-write kills). The Nth
	// line itself is dropped or torn per Tear; writes 1..N-1 persist.
	KillAtMediaWrite int64
	// KillAtSite crashes at a named crash-site hook (Machine.CrashPoint).
	// Empty disables site kills.
	KillAtSite string
	// KillAtSiteHit selects which hit of KillAtSite kills (1-based;
	// 0 means the first hit).
	KillAtSiteHit int64
	// Tear selects the in-flight-line behaviour for media-write kills.
	Tear TearMode
	// Seed drives the tear geometry (prefix length, word mask).
	Seed uint64
}

// Faults is the machine-wide fault-injection state shared by all devices.
// It is created by Machine.TrackFaults, which also switches every device
// from eADR to tracked-durability (ADR) semantics.
type Faults struct {
	mu   sync.Mutex
	plan FaultPlan

	armed       bool
	crashed     bool
	mediaWrites int64 // media-write events since arming
	siteHits    map[string]int64
	crashDesc   string

	// Media-error model (media.go). Deliberately NOT reset by Arm: crash
	// sweeps re-arm plans continuously, while media damage persists until
	// a scrubber remaps around it.
	ue           map[int]map[int64]bool    // node -> uncorrectable lines
	slow         map[int]map[int64]float64 // node -> line -> latency multiplier
	dead         map[int]bool              // failed whole-node devices
	decayPerRead float64                   // per-checked-read UE probability
	decaySeed    uint64                    // decay die seed
	readSeq      uint64                    // monotonic decay clock
}

// writeFate is what a media-write event does to the durable image.
type writeFate int

const (
	writeCommit  writeFate = iota // line persists fully
	writeDropped                  // crash already happened: nothing persists
	writeTear                     // crash now: line persists per tear mode
)

// Arm installs a fault plan. Media-write counting restarts from zero, so
// kill indexes are relative to the arming point (typically after store
// creation, so the sweep covers the workload, not the setup). Arming
// clears any previous crash.
func (f *Faults) Arm(plan FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
	f.armed = true
	f.crashed = false
	f.mediaWrites = 0
	f.crashDesc = ""
	f.siteHits = make(map[string]int64)
}

// Crashed reports whether the injected crash point has been reached.
func (f *Faults) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashDescription says where the crash tripped (empty if it has not).
func (f *Faults) CrashDescription() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashDesc
}

// MediaWrites reports media-write events observed since arming.
func (f *Faults) MediaWrites() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mediaWrites
}

// SiteHits returns a copy of the per-site hit counters since arming.
func (f *Faults) SiteHits() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.siteHits))
	for k, v := range f.siteHits {
		out[k] = v
	}
	return out
}

// Sites returns the names of all crash sites hit since arming, sorted.
func (f *Faults) Sites() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.siteHits))
	for k := range f.siteHits {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// onMediaWrite records one media-write event and decides the fate of the
// written line. Called by devices with their own lock held; f.mu is a
// leaf mutex below the device locks.
func (f *Faults) onMediaWrite() (writeFate, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return writeDropped, 0
	}
	if !f.armed {
		return writeCommit, 0
	}
	f.mediaWrites++
	n := f.mediaWrites
	if f.plan.KillAtMediaWrite > 0 && n == f.plan.KillAtMediaWrite {
		f.crashed = true
		f.crashDesc = fmt.Sprintf("media write %d (tear=%s)", n, f.plan.Tear)
		return writeTear, n
	}
	return writeCommit, n
}

// onSite records a hit of the named crash site and crashes if the plan
// says so.
func (f *Faults) onSite(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed || !f.armed {
		return
	}
	if f.siteHits == nil {
		f.siteHits = make(map[string]int64)
	}
	f.siteHits[name]++
	if f.plan.KillAtSite != name {
		return
	}
	want := f.plan.KillAtSiteHit
	if want <= 0 {
		want = 1
	}
	if f.siteHits[name] == want {
		f.crashed = true
		f.crashDesc = fmt.Sprintf("site %q hit %d", name, want)
	}
}

// tearLine merges the in-flight (new) line into the stale (old) durable
// contents per the plan's tear mode, at 8-byte word granularity — the
// powerfail atomicity unit of the platform. eventN varies the geometry
// per crash point so sweeps explore different tears.
func (f *Faults) tearLine(old, new []byte, eventN int64) []byte {
	f.mu.Lock()
	mode := f.plan.Tear
	seed := f.plan.Seed
	f.mu.Unlock()

	words := len(new) / 8
	out := make([]byte, len(new))
	copy(out, old)
	r := splitmix64(seed ^ uint64(eventN)*0x9E3779B97F4A7C15)
	switch mode {
	case TearNone:
		// Dropped entirely: keep old contents.
	case TearPrefix:
		k := int(r % uint64(words+1))
		copy(out[:k*8], new[:k*8])
	case TearWords:
		mask := splitmix64(r)
		for w := 0; w < words; w++ {
			if mask&(1<<uint(w%64)) != 0 {
				copy(out[w*8:w*8+8], new[w*8:w*8+8])
			}
		}
	}
	return out
}

// splitmix64 is the SplitMix64 mixing function — a tiny, deterministic
// PRNG step with no global state (Date/rand are off-limits in the
// deterministic simulation).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
