package xpsim

// ChunkStore is a sparse byte array: backing chunks are allocated on first
// touch. This keeps host memory proportional to data actually written, the
// way Linux only materializes touched pages of a large mapping (the paper
// relies on this in Fig. 19: oversized pools cost nothing until used).
type ChunkStore struct {
	size      int64
	chunkBits uint
	chunks    [][]byte
}

const defaultChunkBits = 20 // 1 MiB chunks

func NewChunkStore(size int64) *ChunkStore {
	cs := &ChunkStore{size: size, chunkBits: defaultChunkBits}
	n := (size + (1 << cs.chunkBits) - 1) >> cs.chunkBits
	cs.chunks = make([][]byte, n)
	return cs
}

func (cs *ChunkStore) chunkFor(off int64) ([]byte, int) {
	ci := off >> cs.chunkBits
	c := cs.chunks[ci]
	if c == nil {
		c = make([]byte, 1<<cs.chunkBits)
		cs.chunks[ci] = c
	}
	return c, int(off & ((1 << cs.chunkBits) - 1))
}

// ReadAt copies len(p) bytes at off into p. The range must lie in bounds.
func (cs *ChunkStore) ReadAt(p []byte, off int64) {
	for len(p) > 0 {
		c, i := cs.chunkFor(off)
		n := copy(p, c[i:])
		p = p[n:]
		off += int64(n)
	}
}

// WriteAt copies p into the store at off. The range must lie in bounds.
func (cs *ChunkStore) WriteAt(p []byte, off int64) {
	for len(p) > 0 {
		c, i := cs.chunkFor(off)
		n := copy(c[i:], p)
		p = p[n:]
		off += int64(n)
	}
}

// TouchedBytes reports how much backing memory has been materialized.
func (cs *ChunkStore) TouchedBytes() int64 {
	var n int64
	for _, c := range cs.chunks {
		if c != nil {
			n += int64(len(c))
		}
	}
	return n
}

// Export returns the materialized chunks (index -> contents) and the
// store size, for state serialization.
func (cs *ChunkStore) Export() (map[int][]byte, int64) {
	chunks := make(map[int][]byte)
	for i, c := range cs.chunks {
		if c != nil {
			chunks[i] = c
		}
	}
	return chunks, cs.size
}

// Clone returns a deep copy of the store.
func (cs *ChunkStore) Clone() *ChunkStore {
	n := NewChunkStore(cs.size)
	for i, c := range cs.chunks {
		if c != nil {
			nc := make([]byte, len(c))
			copy(nc, c)
			n.chunks[i] = nc
		}
	}
	return n
}

// Restore overwrites the store's chunks from an Export snapshot.
func (cs *ChunkStore) Restore(chunks map[int][]byte) {
	for i, c := range chunks {
		cs.chunks[i] = c
	}
}
