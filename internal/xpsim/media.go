package xpsim

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file implements the runtime media-error model layered on top of the
// crash-point injection of faults.go. Real Optane deployments must handle
// three classes of media anomaly beyond power failure:
//
//   - uncorrectable errors (UEs): an XPLine whose ECC can no longer
//     reconstruct the stored bits. The DIMM reports a poisoned read; any
//     consumer that ignores the poison gets garbage.
//   - latency spikes: lines in a marginal cell region that read orders of
//     magnitude slower while the controller retries ECC.
//   - whole-device failure: a DIMM (and with it a NUMA node's PMEM) drops
//     off the bus entirely.
//
// UEs are modelled destructively: when a line is marked uncorrectable its
// media bytes are overwritten with a deterministic pseudo-random pattern in
// BOTH the live store and the durable image. A plain Device.Read therefore
// returns silently corrupt data — exactly the hazard checksummed blocks and
// Device.ReadChecked exist to catch. ReadChecked consults the fault state
// per line and returns a typed *MediaError instead of garbage.
//
// UEs arise two ways: explicit injection (Machine.InjectUE, deterministic
// line lists for differential tests) and seeded decay (SetDecay), where
// every checked media read rolls a splitmix64 die and may discover a fresh
// UE on the line it touched. Both are deterministic given the seed.
//
// Media-fault state lives on Faults but is deliberately NOT reset by Arm:
// crash sweeps re-arm plans continuously, while bad lines stay bad until a
// scrubber remaps around them or ClearUE is called.

// MediaError is the typed error a checked device access returns when it
// touches an uncorrectable line or a failed device. Line is -1 for a
// whole-device (NUMA-node) failure.
type MediaError struct {
	Node int
	Line int64
}

func (e *MediaError) Error() string {
	if e.Line < 0 {
		return fmt.Sprintf("xpsim: media error: device on node %d failed", e.Node)
	}
	return fmt.Sprintf("xpsim: media error: uncorrectable XPLine %d on node %d", e.Line, e.Node)
}

// InjectUE marks one XPLine of a node's device uncorrectable. The caller
// (Machine.InjectUE) also scrambles the media bytes so unchecked readers
// see corruption, not stale-but-plausible data.
func (f *Faults) InjectUE(node int, line int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.markUELocked(node, line)
}

func (f *Faults) markUELocked(node int, line int64) {
	if f.ue == nil {
		f.ue = make(map[int]map[int64]bool)
	}
	if f.ue[node] == nil {
		f.ue[node] = make(map[int64]bool)
	}
	f.ue[node][line] = true
}

// ClearUE forgets a single uncorrectable line — the remap step of a scrub
// calls this once the data has been re-replicated elsewhere and nothing
// references the bad line any more.
func (f *Faults) ClearUE(node int, line int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ue[node] != nil {
		delete(f.ue[node], line)
	}
}

// ClearAllUEs forgets every uncorrectable line (test teardown helper; the
// scrambled media bytes stay scrambled).
func (f *Faults) ClearAllUEs() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ue = nil
}

// IsUE reports whether the line is currently marked uncorrectable.
func (f *Faults) IsUE(node int, line int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ue[node][line]
}

// UELines returns the sorted uncorrectable lines of one node.
func (f *Faults) UELines(node int) []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int64, 0, len(f.ue[node]))
	for li := range f.ue[node] {
		out = append(out, li)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UECount reports the total uncorrectable lines across all nodes.
func (f *Faults) UECount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, lines := range f.ue {
		n += len(lines)
	}
	return n
}

// SetDecay enables seeded media decay: every checked media read rolls a
// deterministic die and marks the line it touched uncorrectable with
// probability perRead. Zero disables decay.
func (f *Faults) SetDecay(perRead float64, seed uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.decayPerRead = perRead
	f.decaySeed = seed
}

// MarkSlow gives one line a read-latency multiplier (the ECC-retry spike
// of a marginal cell region). mul <= 1 clears the mark.
func (f *Faults) MarkSlow(node int, line int64, mul float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if mul <= 1 {
		if f.slow[node] != nil {
			delete(f.slow[node], line)
		}
		return
	}
	if f.slow == nil {
		f.slow = make(map[int]map[int64]float64)
	}
	if f.slow[node] == nil {
		f.slow[node] = make(map[int64]float64)
	}
	f.slow[node][line] = mul
}

// FailNode kills a whole node's device: every checked access on it errors
// until ReviveNode.
func (f *Faults) FailNode(node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead == nil {
		f.dead = make(map[int]bool)
	}
	f.dead[node] = true
}

// ReviveNode brings a failed device back (its data is intact — the model
// is a transient bus/controller failure, not data loss).
func (f *Faults) ReviveNode(node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.dead, node)
}

// NodeFailed reports whether the node's device is currently failed.
func (f *Faults) NodeFailed(node int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[node]
}

// DeadNodes returns the sorted list of failed nodes.
func (f *Faults) DeadNodes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.dead))
	for n := range f.dead {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// checkRead is consulted once per XPLine by Device.ReadChecked (device
// lock held; f.mu is a leaf below it). It reports whether the line reads
// as uncorrectable, the latency multiplier for this line (>= 1), and
// whether this very read is the decay roll that first discovered the UE —
// in which case the caller must scramble the media bytes.
func (f *Faults) checkRead(node int, line int64) (ue bool, mul float64, fresh bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mul = 1
	if m, ok := f.slow[node][line]; ok && m > mul {
		mul = m
	}
	if f.ue[node][line] {
		return true, mul, false
	}
	if f.decayPerRead > 0 {
		f.readSeq++
		h := splitmix64(uint64(node)<<48 ^ uint64(line)*0x9E3779B97F4A7C15 ^ f.readSeq)
		r := splitmix64(f.decaySeed ^ h)
		if float64(r>>11)/(1<<53) < f.decayPerRead {
			f.markUELocked(node, line)
			return true, mul, true
		}
	}
	return false, mul, false
}

// MediaFaultState is the serializable media-error state, carried across
// pmem.Heap.CrashClone: bad lines stay bad across a power cycle (UEs are
// media damage, not DRAM state), as do dead devices and the decay clock.
type MediaFaultState struct {
	UE           map[int][]int64
	Slow         map[int]map[int64]float64
	Dead         []int
	DecayPerRead float64
	DecaySeed    uint64
	ReadSeq      uint64
}

// ExportMediaState snapshots the media-error state.
func (f *Faults) ExportMediaState() MediaFaultState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := MediaFaultState{DecayPerRead: f.decayPerRead, DecaySeed: f.decaySeed, ReadSeq: f.readSeq}
	if len(f.ue) > 0 {
		st.UE = make(map[int][]int64, len(f.ue))
		for n, lines := range f.ue {
			for li := range lines {
				st.UE[n] = append(st.UE[n], li)
			}
			sort.Slice(st.UE[n], func(i, j int) bool { return st.UE[n][i] < st.UE[n][j] })
		}
	}
	if len(f.slow) > 0 {
		st.Slow = make(map[int]map[int64]float64, len(f.slow))
		for n, m := range f.slow {
			cp := make(map[int64]float64, len(m))
			for li, mul := range m {
				cp[li] = mul
			}
			st.Slow[n] = cp
		}
	}
	for n := range f.dead {
		st.Dead = append(st.Dead, n)
	}
	sort.Ints(st.Dead)
	return st
}

// RestoreMediaState overwrites the media-error state from a snapshot.
func (f *Faults) RestoreMediaState(st MediaFaultState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ue, f.slow, f.dead = nil, nil, nil
	for n, lines := range st.UE {
		for _, li := range lines {
			f.markUELocked(n, li)
		}
	}
	if len(st.Slow) > 0 {
		f.slow = make(map[int]map[int64]float64, len(st.Slow))
		for n, m := range st.Slow {
			cp := make(map[int64]float64, len(m))
			for li, mul := range m {
				cp[li] = mul
			}
			f.slow[n] = cp
		}
	}
	if len(st.Dead) > 0 {
		f.dead = make(map[int]bool, len(st.Dead))
		for _, n := range st.Dead {
			f.dead[n] = true
		}
	}
	f.decayPerRead = st.DecayPerRead
	f.decaySeed = st.DecaySeed
	f.readSeq = st.ReadSeq
}

// InjectUE marks one XPLine uncorrectable and scrambles its media bytes in
// both the live store and the durable image — a plain Read afterwards
// returns deterministic garbage, a ReadChecked returns *MediaError. Fault
// tracking is enabled on first use.
func (m *Machine) InjectUE(node int, line int64) {
	f := m.TrackFaults()
	f.InjectUE(node, line)
	m.Device(node).scrambleLine(line)
}

// scrambleLine overwrites one XPLine with a deterministic pseudo-random
// pattern in the live store and, when fault tracking is on, the durable
// image — modelling the unrecoverable bit rot behind a UE. The XPBuffer is
// metadata-only, so no cached copy can mask the corruption.
func (d *Device) scrambleLine(li int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.scrambleLineLocked(li)
}

func (d *Device) scrambleLineLocked(li int64) {
	d.checkRange(li*XPLineSize, XPLineSize)
	var buf [XPLineSize]byte
	s := splitmix64(uint64(d.node)<<52 ^ uint64(li)*0x9E3779B97F4A7C15)
	for w := 0; w < XPLineSize/8; w++ {
		s = splitmix64(s)
		binary.LittleEndian.PutUint64(buf[w*8:], s)
	}
	d.store.WriteAt(buf[:], li*XPLineSize)
	if d.durable != nil {
		d.durable.WriteAt(buf[:], li*XPLineSize)
	}
}

// ReadChecked is Device.Read with the media-error model applied: it
// charges the same simulated latency and moves the same counters, but
// consults the fault state per XPLine. A read touching an uncorrectable
// line (pre-injected or freshly decayed) fills p with whatever the media
// now holds AND returns a *MediaError naming the first bad line; a read on
// a failed device errors immediately. Slow lines multiply that line's
// latency. Without fault tracking it is exactly Read.
func (d *Device) ReadChecked(ctx *Ctx, off int64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if d.faults != nil && d.faults.NodeFailed(d.node) {
		return &MediaError{Node: d.node, Line: -1}
	}
	d.checkRange(off, int64(len(p)))
	remote := d.remote(ctx)
	rmul := 1.0
	if remote {
		rmul = d.lat.RemoteReadMul
	}
	rmul *= d.lat.readContention(ctx.Workers, remote)

	d.mu.Lock()
	window := d.window(ctx)
	first := off / XPLineSize
	last := (off + int64(len(p)) - 1) / XPLineSize
	var ns float64
	var merr *MediaError
	for li := first; li <= last; li++ {
		hit, wbLine := d.buf.access(li, false, window)
		if hit {
			d.stats.BufHits++
			ns += float64(d.lat.BufRead) * rmul
		} else {
			d.stats.BufMisses++
			d.stats.MediaReadLines++
			ns += float64(d.lat.MediaRead) * rmul
		}
		if wbLine >= 0 {
			d.stats.BufEvictions++
			d.mediaWrite(wbLine)
		}
		d.noteLocality(remote)
		if d.faults != nil {
			ue, mul, fresh := d.faults.checkRead(d.node, li)
			if mul > 1 {
				// ECC-retry latency spike on this line.
				ns += float64(d.lat.MediaRead) * (mul - 1) * rmul
			}
			if fresh {
				d.scrambleLineLocked(li)
			}
			if ue {
				d.stats.ReadUEs++
				if merr == nil {
					merr = &MediaError{Node: d.node, Line: li}
				}
			}
		}
	}
	// Copy after fault handling so a freshly-decayed line's scrambled
	// bytes — not its pre-decay contents — are what the caller sees.
	d.store.ReadAt(p, off)
	d.stats.ReqReadBytes += int64(len(p))
	d.mu.Unlock()
	ctx.Cost.AddF(ns)
	if merr != nil {
		return merr
	}
	return nil
}

// WriteChecked is Device.Write that errors instead of writing when the
// device's node has failed. Writes to uncorrectable lines succeed (the
// media cells still accept programming) but do NOT heal the UE mark —
// remapping is the scrubber's job, so a stale mark can never hide behind
// an overwrite.
func (d *Device) WriteChecked(ctx *Ctx, off int64, p []byte) error {
	if d.faults != nil && d.faults.NodeFailed(d.node) {
		return &MediaError{Node: d.node, Line: -1}
	}
	d.Write(ctx, off, p)
	return nil
}
