package xpsim

import "testing"

// Micro-benchmarks of the device model itself: these measure host-side
// ns/op of the simulator, not simulated time — they bound the simulation
// overhead per modelled access.

func BenchmarkDeviceSequentialWrite(b *testing.B) {
	d := testDevice(64 << 20)
	ctx := NewCtx(0)
	var rec [8]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(ctx, int64(i*8)%(32<<20), rec[:])
	}
}

func BenchmarkDeviceRandomSmallWrite(b *testing.B) {
	d := testDevice(64 << 20)
	ctx := NewCtx(0)
	var rec [4]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * 2654435761) % (63 << 20)
		d.Write(ctx, off, rec[:])
	}
}

func BenchmarkDeviceLineWrite(b *testing.B) {
	d := testDevice(64 << 20)
	ctx := NewCtx(0)
	var line [XPLineSize]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(ctx, (int64(i)*XPLineSize)%(32<<20), line[:])
	}
}

func BenchmarkDeviceRead(b *testing.B) {
	d := testDevice(64 << 20)
	ctx := NewCtx(0)
	var buf [64]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * 2654435761) % (63 << 20)
		d.Read(ctx, off, buf[:])
	}
}
