package xpsim

import (
	"fmt"
	"sync"
)

// Stats are PCM-style counters of traffic at one simulated DIMM. Media
// counters measure XPLines actually moved at the 3D-XPoint media — the
// quantity Intel PCM reports and the paper plots in Fig. 3b and Fig. 13.
// Req counters measure the bytes software asked for; the ratio of the two
// is the read/write amplification.
type Stats struct {
	MediaReadLines  int64 // XPLines read from media (XPBuffer misses + RMW)
	MediaWriteLines int64 // XPLines written to media (dirty evictions + flushes)
	ReqReadBytes    int64 // bytes software requested to read
	ReqWriteBytes   int64 // bytes software requested to write
	BufHits         int64 // XPBuffer hits
	BufMisses       int64 // XPBuffer misses
	BufEvictions    int64 // dirty XPBuffer lines written back on capacity eviction
	RemoteAccesses  int64 // line accesses issued from a remote socket
	LocalAccesses   int64 // line accesses issued from the local socket
	Flushes         int64 // explicit clwb-style line flushes
	ReadUEs         int64 // checked reads that hit an uncorrectable line
}

// MediaReadBytes reports bytes read from the media.
func (s Stats) MediaReadBytes() int64 { return s.MediaReadLines * XPLineSize }

// MediaWriteBytes reports bytes written to the media.
func (s Stats) MediaWriteBytes() int64 { return s.MediaWriteLines * XPLineSize }

// ReadAmplification is media bytes read per byte requested.
func (s Stats) ReadAmplification() float64 {
	if s.ReqReadBytes == 0 {
		return 0
	}
	return float64(s.MediaReadBytes()) / float64(s.ReqReadBytes)
}

// WriteAmplification is media bytes written per byte requested.
func (s Stats) WriteAmplification() float64 {
	if s.ReqWriteBytes == 0 {
		return 0
	}
	return float64(s.MediaWriteBytes()) / float64(s.ReqWriteBytes)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.MediaReadLines += o.MediaReadLines
	s.MediaWriteLines += o.MediaWriteLines
	s.ReqReadBytes += o.ReqReadBytes
	s.ReqWriteBytes += o.ReqWriteBytes
	s.BufHits += o.BufHits
	s.BufMisses += o.BufMisses
	s.BufEvictions += o.BufEvictions
	s.RemoteAccesses += o.RemoteAccesses
	s.LocalAccesses += o.LocalAccesses
	s.Flushes += o.Flushes
	s.ReadUEs += o.ReadUEs
}

// Sub returns s minus o (for before/after deltas around a phase).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		MediaReadLines:  s.MediaReadLines - o.MediaReadLines,
		MediaWriteLines: s.MediaWriteLines - o.MediaWriteLines,
		ReqReadBytes:    s.ReqReadBytes - o.ReqReadBytes,
		ReqWriteBytes:   s.ReqWriteBytes - o.ReqWriteBytes,
		BufHits:         s.BufHits - o.BufHits,
		BufMisses:       s.BufMisses - o.BufMisses,
		BufEvictions:    s.BufEvictions - o.BufEvictions,
		RemoteAccesses:  s.RemoteAccesses - o.RemoteAccesses,
		LocalAccesses:   s.LocalAccesses - o.LocalAccesses,
		Flushes:         s.Flushes - o.Flushes,
		ReadUEs:         s.ReadUEs - o.ReadUEs,
	}
}

// Device is one simulated Optane DIMM group attached to a NUMA node. All
// operations are safe for concurrent use; simulated cost is charged to the
// caller's Ctx.
type Device struct {
	node    int
	sockets int
	size    int64
	lat     *LatencyModel

	mu    sync.Mutex
	store *ChunkStore
	buf   *xpBuffer
	stats Stats
	alloc int64 // bump allocation pointer for region placement

	// Fault tracking (nil under eADR semantics): durable mirrors the
	// backing store but is only updated at media-write events, so it
	// holds exactly the bytes an ADR platform keeps across power loss.
	faults  *Faults
	durable *ChunkStore
}

// NewDevice builds a device of `size` bytes on `node` of a machine with
// `sockets` sockets.
func NewDevice(node, sockets int, size int64, lat *LatencyModel) *Device {
	return &Device{
		node:    node,
		sockets: sockets,
		size:    size,
		lat:     lat,
		store:   NewChunkStore(size),
		buf:     newXPBuffer(16, 4), // 64 XPLines = 16 KB, like real Optane
	}
}

// Node reports the NUMA node the device is attached to.
func (d *Device) Node() int { return d.node }

// Size reports the device capacity in bytes.
func (d *Device) Size() int64 { return d.size }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the XPBuffer keeps its contents).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// Drain writes back every dirty XPBuffer line so media write counters
// account for all data, then returns the updated snapshot.
func (d *Device) Drain() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, li := range d.buf.drain(nil) {
		d.mediaWrite(li)
	}
	return d.stats
}

// WritebackAll drains every dirty XPBuffer line to the media, charging
// the caller's clock per line — the sfence-after-clwb persist barrier a
// crash-consistent flush phase issues before advancing durable cursors.
// The XPBuffer holds at most 64 lines, so the barrier is cheap.
func (d *Device) WritebackAll(ctx *Ctx) {
	d.mu.Lock()
	lines := d.buf.drain(nil)
	for _, li := range lines {
		d.mediaWrite(li)
	}
	d.mu.Unlock()
	ctx.Cost.Add(int64(len(lines)) * d.lat.LineWrite)
}

// enableTracking switches the device from eADR to tracked-durability
// semantics: from now on only media-write events reach the durable image.
// The image is seeded from the current backing store — everything written
// before the switch was written under eADR and is durable by definition
// (this matters when tracking is enabled on a crash clone that was
// restored from a durable snapshot).
func (d *Device) enableTracking(f *Faults) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.faults == nil {
		d.faults = f
		d.durable = d.store.Clone()
	}
}

// mediaWrite commits one XPLine to the media: the durability event. The
// caller both holds d.mu and has already accounted the line in
// stats.MediaWriteLines or is about to — this helper owns the counter so
// the two can never diverge.
func (d *Device) mediaWrite(li int64) {
	d.stats.MediaWriteLines++
	if d.durable == nil {
		return
	}
	fate, eventN := d.faults.onMediaWrite()
	switch fate {
	case writeDropped:
		return
	case writeCommit:
		var line [XPLineSize]byte
		d.store.ReadAt(line[:], li*XPLineSize)
		d.durable.WriteAt(line[:], li*XPLineSize)
	case writeTear:
		var old, cur [XPLineSize]byte
		d.durable.ReadAt(old[:], li*XPLineSize)
		d.store.ReadAt(cur[:], li*XPLineSize)
		torn := d.faults.tearLine(old[:], cur[:], eventN)
		d.durable.WriteAt(torn, li*XPLineSize)
	}
}

// Reserve carves n bytes (aligned to align) out of the device for a
// region and returns the base offset. Reservations survive simulated
// crashes — they are the moral equivalent of pmem_map_file.
func (d *Device) Reserve(n, align int64) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	base := d.alloc
	if align > 0 {
		base = (base + align - 1) / align * align
	}
	if base+n > d.size {
		return 0, fmt.Errorf("xpsim: device node %d full: need %d bytes, %d free", d.node, n, d.size-base)
	}
	d.alloc = base + n
	return base, nil
}

func (d *Device) remote(ctx *Ctx) bool {
	return effectiveNode(ctx.Node, ctx.Worker, d.sockets) != d.node
}

// window computes the effective XPBuffer reuse window for a context: with
// w concurrent workers each stream owns ~1/w of the buffer.
func (d *Device) window(ctx *Ctx) uint64 {
	w := ctx.Workers
	if w <= 1 {
		return 0 // unlimited: the full LRU applies
	}
	win := d.buf.capacityLines() / w
	if win < 1 {
		win = 1
	}
	return uint64(win)
}

// Read copies len(p) bytes at off into p, charging simulated latency per
// XPLine touched.
func (d *Device) Read(ctx *Ctx, off int64, p []byte) {
	if len(p) == 0 {
		return
	}
	d.checkRange(off, int64(len(p)))
	remote := d.remote(ctx)
	rmul := 1.0
	if remote {
		rmul = d.lat.RemoteReadMul
	}
	rmul *= d.lat.readContention(ctx.Workers, remote)

	d.mu.Lock()
	d.store.ReadAt(p, off)
	window := d.window(ctx)
	first := off / XPLineSize
	last := (off + int64(len(p)) - 1) / XPLineSize
	var ns float64
	for li := first; li <= last; li++ {
		hit, wbLine := d.buf.access(li, false, window)
		if hit {
			d.stats.BufHits++
			ns += float64(d.lat.BufRead) * rmul
		} else {
			d.stats.BufMisses++
			d.stats.MediaReadLines++
			ns += float64(d.lat.MediaRead) * rmul
		}
		if wbLine >= 0 {
			d.stats.BufEvictions++
			d.mediaWrite(wbLine)
		}
		d.noteLocality(remote)
	}
	d.stats.ReqReadBytes += int64(len(p))
	d.mu.Unlock()
	ctx.Cost.AddF(ns)
}

// Write copies p to off, charging simulated latency per XPLine touched.
// Partial-line writes that miss the XPBuffer and do not start on a line
// boundary pay a media read (the read-modify-write of §II-A).
func (d *Device) Write(ctx *Ctx, off int64, p []byte) {
	if len(p) == 0 {
		return
	}
	d.checkRange(off, int64(len(p)))
	remote := d.remote(ctx)
	wmul := 1.0
	if remote {
		wmul = d.lat.RemoteWriteMul
	}
	wmul *= d.lat.writeContention(ctx.Workers, remote)

	d.mu.Lock()
	d.store.WriteAt(p, off)
	window := d.window(ctx)
	end := off + int64(len(p))
	first := off / XPLineSize
	last := (end - 1) / XPLineSize
	var ns float64
	for li := first; li <= last; li++ {
		lineStart := li * XPLineSize
		lineEnd := lineStart + XPLineSize
		covered := off <= lineStart && end >= lineEnd
		startsAtLine := off <= lineStart
		hit, wbLine := d.buf.access(li, true, window)
		if hit {
			d.stats.BufHits++
			ns += float64(d.lat.BufWrite) * wmul
		} else {
			d.stats.BufMisses++
			if !covered && !startsAtLine {
				// Read-modify-write: the old line contents must be
				// fetched to merge the partial update.
				d.stats.MediaReadLines++
				ns += float64(d.lat.MediaRead) * wmul
			}
			ns += float64(d.lat.LineWrite) * wmul
		}
		if wbLine >= 0 {
			d.stats.BufEvictions++
			d.mediaWrite(wbLine)
		}
		d.noteLocality(remote)
	}
	d.stats.ReqWriteBytes += int64(len(p))
	d.mu.Unlock()
	ctx.Cost.AddF(ns)
}

// Flush forces the lines covering [off, off+n) out of the XPBuffer to the
// media (the clwb-based proactive flush of §IV-A).
func (d *Device) Flush(ctx *Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	d.checkRange(off, n)
	d.mu.Lock()
	first := off / XPLineSize
	last := (off + n - 1) / XPLineSize
	var flushed int64
	for li := first; li <= last; li++ {
		if d.buf.flushLine(li) {
			d.mediaWrite(li)
			flushed++
		}
	}
	d.stats.Flushes += last - first + 1
	d.mu.Unlock()
	ctx.Cost.Add(flushed * d.lat.LineWrite)
}

func (d *Device) noteLocality(remote bool) {
	if remote {
		d.stats.RemoteAccesses++
	} else {
		d.stats.LocalAccesses++
	}
}

func (d *Device) checkRange(off, n int64) {
	if off < 0 || off+n > d.size {
		panic(fmt.Sprintf("xpsim: access [%d,%d) out of device bounds %d", off, off+n, d.size))
	}
}

// TouchedBytes reports materialized host memory backing this device.
func (d *Device) TouchedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store.TouchedBytes()
}

// DeviceState is the serializable content of a device: the media bytes
// that were ever touched plus the reservation pointer. XPBuffer state is
// deliberately not captured — under eADR it is part of the persistence
// domain and every write already reached the backing store.
type DeviceState struct {
	Node   int
	Size   int64
	Alloc  int64
	Chunks map[int][]byte
}

// ExportState snapshots the device after draining the XPBuffer.
func (d *Device) ExportState() DeviceState {
	d.Drain()
	d.mu.Lock()
	defer d.mu.Unlock()
	chunks, size := d.store.Export()
	return DeviceState{Node: d.node, Size: size, Alloc: d.alloc, Chunks: chunks}
}

// DurableState snapshots the bytes the device model says are durable at
// this instant, without draining the XPBuffer: with fault tracking
// enabled that is the durable image (XPBuffer-resident lines that were
// never written back are absent, and a torn crash line stays torn);
// without tracking the device is eADR and everything written through is
// durable. Chunks are deep-copied — the live device keeps running while
// the snapshot is recovered from.
func (d *Device) DurableState() DeviceState {
	d.mu.Lock()
	defer d.mu.Unlock()
	src := d.store
	if d.durable != nil {
		src = d.durable
	}
	chunks, size := src.Export()
	copied := make(map[int][]byte, len(chunks))
	for i, c := range chunks {
		nc := make([]byte, len(c))
		copy(nc, c)
		copied[i] = nc
	}
	return DeviceState{Node: d.node, Size: size, Alloc: d.alloc, Chunks: copied}
}

// RestoreState overwrites the device contents from a snapshot. The
// snapshot must match the device geometry.
func (d *Device) RestoreState(st DeviceState) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st.Size != d.size || st.Node != d.node {
		return fmt.Errorf("xpsim: snapshot geometry (node %d, %d bytes) does not match device (node %d, %d bytes)",
			st.Node, st.Size, d.node, d.size)
	}
	d.store.Restore(st.Chunks)
	d.alloc = st.Alloc
	return nil
}
