package xpsim

import (
	"os"
	"testing"
	"time"
)

func TestMachineTopology(t *testing.T) {
	m := NewMachine(2, 1<<20, DefaultLatency())
	if m.Sockets != 2 || len(m.Devices()) != 2 {
		t.Fatalf("machine shape: sockets=%d devices=%d", m.Sockets, len(m.Devices()))
	}
	for n := 0; n < 2; n++ {
		d := m.Device(n)
		if d.Node() != n {
			t.Fatalf("device %d reports node %d", n, d.Node())
		}
		if d.Size() != 1<<20 {
			t.Fatalf("device size %d", d.Size())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Device(99) must panic")
		}
	}()
	m.Device(99)
}

func TestMachineStatsAggregation(t *testing.T) {
	m := NewMachine(2, 1<<20, DefaultLatency())
	ctx := NewCtx(0)
	p := make([]byte, XPLineSize)
	m.Device(0).Write(ctx, 0, p)
	m.Device(1).Write(ctx, 0, p)

	snap := m.SnapshotStats()
	if snap.ReqWriteBytes != 2*XPLineSize {
		t.Fatalf("snapshot req writes = %d", snap.ReqWriteBytes)
	}
	total := m.TotalStats()
	if total.MediaWriteLines < 2 {
		t.Fatalf("drained media writes = %d, want >= 2 (one line per device)", total.MediaWriteLines)
	}
	if total.MediaWriteBytes() != total.MediaWriteLines*XPLineSize {
		t.Fatal("MediaWriteBytes inconsistent")
	}
	if total.ReadAmplification() != 0 {
		t.Fatalf("no reads issued, amplification = %f", total.ReadAmplification())
	}

	// Sub yields the delta of a phase.
	before := m.SnapshotStats()
	m.Device(0).Write(ctx, 4096, p)
	delta := m.SnapshotStats().Sub(before)
	if delta.ReqWriteBytes != XPLineSize {
		t.Fatalf("delta req writes = %d", delta.ReqWriteBytes)
	}

	m.ResetStats()
	if s := m.SnapshotStats(); s.ReqWriteBytes != 0 {
		t.Fatalf("reset left %d req bytes", s.ReqWriteBytes)
	}
	if m.Device(0).TouchedBytes() == 0 {
		t.Fatal("touched backing memory should be tracked")
	}
}

func TestCostHelpers(t *testing.T) {
	var c Cost
	c.Add(100)
	c.AddF(0.5) // rounds up: nothing is free
	if c.Ns() != 101 {
		t.Fatalf("cost = %d, want 101", c.Ns())
	}
	if c.Duration() != 101*time.Nanosecond {
		t.Fatalf("duration = %v", c.Duration())
	}
	c.Reset()
	if c.Ns() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLatencyHelpers(t *testing.T) {
	lat := DefaultLatency()
	ctx := NewCtx(0)
	lat.CPU(ctx, 10)
	if ctx.Cost.Ns() != 10*lat.CPUOp {
		t.Fatalf("CPU charge = %d", ctx.Cost.Ns())
	}
	ctx.Cost.Reset()
	lat.DRAM(ctx, 128, true, true)
	if ctx.Cost.Ns() != 2*lat.DRAMSeqWrite {
		t.Fatalf("sequential DRAM write = %d, want 2 lines", ctx.Cost.Ns())
	}
	ctx.Cost.Reset()
	lat.DRAM(ctx, 4, false, false)
	if ctx.Cost.Ns() != lat.DRAMRead {
		t.Fatalf("random DRAM read = %d", ctx.Cost.Ns())
	}
	// Read contention kicks in past the knee; remote reads degrade
	// faster (the cross-NUMA multi-threaded effect).
	if lat.readContention(lat.ReadKnee, false) != 1 || lat.readContention(lat.ReadKnee+10, false) <= 1 {
		t.Fatal("read contention shape wrong")
	}
	if lat.readContention(48, true) <= lat.readContention(48, false) {
		t.Fatal("remote read contention should exceed local")
	}
}

func TestPinnedToAndUnpinned(t *testing.T) {
	if PinnedTo(1)(7) != 1 {
		t.Fatal("PinnedTo must ignore the worker index")
	}
	if Unpinned(3) != NodeUnbound {
		t.Fatal("Unpinned must return NodeUnbound")
	}
	dur := Parallel(3, PinnedTo(1), func(w int, ctx *Ctx) {
		if ctx.Node != 1 || ctx.Workers != 3 || ctx.Worker != w {
			t.Errorf("ctx misconfigured: %+v", ctx)
		}
		ctx.Cost.Add(int64(w))
	})
	if dur != 2*time.Nanosecond {
		t.Fatalf("Parallel duration = %v", dur)
	}
}

func TestLoadLatency(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lat.json"
	if err := os.WriteFile(path, []byte(`{"MediaRead": 999, "RemoteWriteMul": 9.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	lat, err := LoadLatency(path)
	if err != nil {
		t.Fatal(err)
	}
	if lat.MediaRead != 999 || lat.RemoteWriteMul != 9.5 {
		t.Fatalf("overrides not applied: %+v", lat)
	}
	// Untouched fields keep the calibrated defaults.
	if lat.LineWrite != DefaultLatency().LineWrite {
		t.Fatal("defaults lost")
	}
	if _, err := LoadLatency(dir + "/missing.json"); err == nil {
		t.Fatal("missing file must error")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLatency(path); err == nil {
		t.Fatal("bad JSON must error")
	}
}
