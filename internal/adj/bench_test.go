package adj

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func benchStore(b *testing.B) (*Store, *xpsim.Ctx) {
	b.Helper()
	m := xpsim.NewMachine(1, 1<<30, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, err := h.Map("bench", 768<<20, pmem.Placement{Kind: pmem.Bind, Node: 0})
	if err != nil {
		b.Fatal(err)
	}
	return New(r, &m.Lat, 1<<16, Options{}), xpsim.NewCtx(0)
}

func BenchmarkAppendSingle(b *testing.B) {
	s, ctx := benchStore(b)
	one := []uint32{42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(ctx, uint32(i)&0xFFFF, one); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBatch63(b *testing.B) {
	// The XPGraph flush granularity: 63 neighbors in one write.
	s, ctx := benchStore(b)
	nbrs := make([]uint32, 63)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(ctx, uint32(i)&0xFFFF, nbrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighbors(b *testing.B) {
	s, ctx := benchStore(b)
	nbrs := make([]uint32, 63)
	for i := 0; i < 1024; i++ {
		if err := s.Append(ctx, uint32(i), nbrs); err != nil {
			b.Fatal(err)
		}
	}
	var dst []uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.Neighbors(ctx, uint32(i)&1023, dst[:0])
	}
}
