package adj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/xpsim"
)

// This file implements checksummed self-describing blocks and the scrub
// repair primitive.
//
// With Options.Checksums the two spare header words become per-slot
// CRC32-C checksums of the visible payload: the word at offCnt0 holds
// {cnt0 u32, crc0 u32} and the word at offCnt1 holds {cnt1, crc1}. Count
// and checksum share one 8-byte word, so powerfail atomicity guarantees a
// count can never become durable without the checksum covering exactly the
// records it makes visible. The running CRC is maintained in DRAM as
// records append (computed from the bytes software wrote, never from the
// media, so later media corruption cannot launder itself into the mirror)
// and persisted by the same Ack that persists the count.
//
// The store additionally mirrors each vertex's chain layout (block offsets
// and capacities) in DRAM. Verification and repair walk that mirror, so a
// scrambled on-media header — garbage vid, cap, prev — can be detected and
// routed around instead of derailing the walk into unrelated memory.

// castagnoli is the CRC32-C polynomial table (the checksum Optane DIMMs
// and most storage formats use; hardware-accelerated on x86).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a block whose media bytes read back fine (no UE)
// but disagree with the acknowledged checksum or the DRAM layout mirror —
// a torn write or silent corruption that checked reads refuse to serve.
type CorruptError struct {
	V      graph.VID
	Block  int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("adj: vertex %d block @%d corrupt: %s", e.V, e.Block, e.Reason)
}

// noteBlock registers off as the newest block of v's chain in the DRAM
// checksum mirrors.
func (s *Store) noteBlock(v graph.VID, off int64, capacity, crc uint32) {
	if s.crc == nil {
		s.crc = make(map[int64]uint32)
		s.caps = make(map[int64]uint32)
		s.chains = make(map[graph.VID][]int64)
	}
	s.crc[off] = crc
	s.caps[off] = capacity
	s.chains[v] = append([]int64{off}, s.chains[v]...)
}

// chainOf returns v's block chain newest-first. With Checksums it comes
// straight from the DRAM mirror; otherwise it is walked through the
// checked read path following on-media prev links, bounded and validated
// so corrupt links fail instead of panicking out of bounds.
func (s *Store) chainOf(ctx *xpsim.Ctx, v graph.VID) ([]int64, error) {
	if s.opts.Checksums {
		return s.chains[v], nil
	}
	var chain []int64
	off := s.tail[v]
	for off != 0 {
		if int64(len(chain)) > s.blocks {
			return nil, &CorruptError{V: v, Block: off, Reason: "prev links form a cycle"}
		}
		chain = append(chain, off)
		var hdr [headerBytes]byte
		if err := mem.ReadChecked(s.m, ctx, off, hdr[:]); err != nil {
			return nil, err
		}
		prev := int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign
		if prev < 0 || prev+headerBytes > s.m.Size() {
			return nil, &CorruptError{V: v, Block: off, Reason: fmt.Sprintf("prev link %d out of arena", prev)}
		}
		off = prev
	}
	return chain, nil
}

// visibleCnt resolves how many records of block off are visible, from DRAM
// state only (valid for Checksums stores, which are always CrashSafe).
func (s *Store) visibleCnt(v graph.VID, off int64) uint32 {
	return s.blockCnt(v, off, 0, s.caps[off])
}

// VerifyChain reads every visible byte of v's chain through the
// media-error-checked path and, with Checksums on, verifies each block's
// header fields and payload CRC32-C against the DRAM mirrors. It returns
// nil when everything matched, a *xpsim.MediaError when a read hit an
// uncorrectable line or failed device, and a *CorruptError when bytes read
// back cleanly but are not the bytes that were acknowledged.
func (s *Store) VerifyChain(ctx *xpsim.Ctx, v graph.VID) error {
	if int(v) >= len(s.tail) || s.tail[v] == 0 {
		return nil
	}
	chain, err := s.chainOf(ctx, v)
	if err != nil {
		return err
	}
	for _, off := range chain {
		var hdr [headerBytes]byte
		if err := mem.ReadChecked(s.m, ctx, off, hdr[:]); err != nil {
			return err
		}
		if !s.opts.Checksums {
			continue
		}
		if vid := binary.LittleEndian.Uint32(hdr[offVID:]); vid != uint32(v) {
			return &CorruptError{V: v, Block: off, Reason: fmt.Sprintf("header vid %d", vid)}
		}
		if c := binary.LittleEndian.Uint32(hdr[offCap:]); c != s.caps[off] {
			return &CorruptError{V: v, Block: off, Reason: fmt.Sprintf("header cap %d, expected %d", c, s.caps[off])}
		}
		cnt := s.visibleCnt(v, off)
		if cnt == 0 {
			continue
		}
		format := uint8(binary.LittleEndian.Uint32(hdr[offFmt:]))
		if format == fmtVarint {
			// The format word is not mirrored; a corrupted word routes the
			// decode down the wrong path, which the payload CRC then
			// catches (the consumed extents differ).
			if err := s.readBlockChecked(ctx, v, off, s.caps[off], cnt, true, nil); err != nil {
				return err
			}
			continue
		}
		buf := make([]byte, 4*cnt)
		if err := mem.ReadChecked(s.m, ctx, off+headerBytes, buf); err != nil {
			return err
		}
		if got := crc32.Checksum(buf, castagnoli); got != s.crc[off] {
			return &CorruptError{V: v, Block: off, Reason: fmt.Sprintf("payload crc %08x, acknowledged %08x", got, s.crc[off])}
		}
	}
	return nil
}

// readBlockChecked decodes cnt varint records of the block at off through
// the media-error-checked path, appending to *dst when dst is non-nil.
// With checkCRC it verifies the CRC32-C of the consumed byte extent
// against the acknowledged mirror. Decode failures (overlong varints,
// records claimed past the payload, deltas walking outside uint32) are
// reported as *CorruptError; uncorrectable lines as *xpsim.MediaError.
func (s *Store) readBlockChecked(ctx *xpsim.Ctx, v graph.VID, off int64, capacity, cnt uint32, checkCRC bool, dst *[]uint32) error {
	vr := newVarintReader(func(o int64, p []byte) error {
		return mem.ReadChecked(s.m, ctx, o, p)
	}, off+headerBytes, int64(capacity)*4, checkCRC)
	for i := uint32(0); i < cnt; i++ {
		nb, err := vr.next()
		if err != nil {
			if errors.Is(err, errVarintCorrupt) {
				return &CorruptError{V: v, Block: off, Reason: err.Error()}
			}
			return err
		}
		if dst != nil {
			*dst = append(*dst, nb)
		}
	}
	if checkCRC {
		if got := vr.sum(); got != s.crc[off] {
			return &CorruptError{V: v, Block: off, Reason: fmt.Sprintf("payload crc %08x, acknowledged %08x", got, s.crc[off])}
		}
	}
	return nil
}

// neighborsChecked is the shared body of the checked neighbor walks.
func (s *Store) neighborsChecked(ctx *xpsim.Ctx, v graph.VID, dst []uint32, oldestFirst bool) ([]uint32, error) {
	if int(v) >= len(s.tail) {
		return dst, nil
	}
	chain, err := s.chainOf(ctx, v)
	if err != nil {
		return dst, err
	}
	read := func(off int64) error {
		var hdr [headerBytes]byte
		if err := mem.ReadChecked(s.m, ctx, off, hdr[:]); err != nil {
			return err
		}
		var cnt uint32
		if s.opts.Checksums {
			cnt = s.visibleCnt(v, off)
		} else {
			cnt = s.blockCnt(v, off, binary.LittleEndian.Uint32(hdr[offCnt0:]), binary.LittleEndian.Uint32(hdr[offCap:]))
		}
		if cnt == 0 {
			return nil
		}
		if uint8(binary.LittleEndian.Uint32(hdr[offFmt:])) == fmtVarint {
			capacity := binary.LittleEndian.Uint32(hdr[offCap:])
			if s.opts.Checksums {
				capacity = s.caps[off]
			}
			return s.readBlockChecked(ctx, v, off, capacity, cnt, s.opts.Checksums, &dst)
		}
		buf := make([]byte, 4*cnt)
		if err := mem.ReadChecked(s.m, ctx, off+headerBytes, buf); err != nil {
			return err
		}
		if s.opts.Checksums {
			if got := crc32.Checksum(buf, castagnoli); got != s.crc[off] {
				return &CorruptError{V: v, Block: off, Reason: fmt.Sprintf("payload crc %08x, acknowledged %08x", got, s.crc[off])}
			}
		}
		for i := uint32(0); i < cnt; i++ {
			dst = append(dst, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return nil
	}
	if oldestFirst {
		for i := len(chain) - 1; i >= 0; i-- {
			if err := read(chain[i]); err != nil {
				return dst, err
			}
		}
	} else {
		for _, off := range chain {
			if err := read(off); err != nil {
				return dst, err
			}
		}
	}
	return dst, nil
}

// NeighborsChecked is Neighbors (newest block first) through the checked
// read path: instead of silently returning whatever the media holds, it
// reports a *xpsim.MediaError or *CorruptError when v's chain touches
// damaged or checksum-mismatched lines.
func (s *Store) NeighborsChecked(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	return s.neighborsChecked(ctx, v, dst, false)
}

// NeighborsOldestFirstChecked is NeighborsOldestFirst through the checked
// read path.
func (s *Store) NeighborsOldestFirstChecked(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	return s.neighborsChecked(ctx, v, dst, true)
}

// ChainSpans returns the {offset, size} of every block in v's chain from
// the DRAM layout mirror — the spans a scrubber quarantines when the
// vertex cannot be repaired. Checksums stores only.
func (s *Store) ChainSpans(v graph.VID) [][2]int64 {
	if !s.opts.Checksums {
		panic("adj: ChainSpans requires Checksums")
	}
	if int(v) >= len(s.tail) {
		return nil
	}
	spans := make([][2]int64, 0, len(s.chains[v]))
	for _, off := range s.chains[v] {
		spans = append(spans, [2]int64{off, headerBytes + 4*int64(s.caps[off])})
	}
	return spans
}

// Suspects returns the vertices whose media payload disagreed with the
// acknowledged checksum when the store was recovered — damage the scrubber
// should verify and repair first.
func (s *Store) Suspects() []graph.VID {
	out := make([]graph.VID, len(s.suspects))
	copy(out, s.suspects)
	return out
}

// ReplaceChain journals in a single exactly-sized block holding recs as
// vertex v's entire chain — the scrub repair primitive. It differs from
// Compact in two ways: recs is stored as given (the caller re-derived the
// raw record stream from the edge log or SSD archive; tombstones stay),
// and the old blocks are NOT recycled — they sit on quarantined media.
// Each old block gets a fresh dead header written over whatever the media
// holds (the cells still accept programming), so a later recovery scan
// parses the arena cleanly; the returned {offset, size} spans are what the
// caller must persist so recovery never hands the bad lines out again.
//
// The swap itself runs through the same redo journal as compactCrashSafe
// and has the same precondition: all of v's records flush-acknowledged at
// both slot parities.
func (s *Store) ReplaceChain(ctx *xpsim.Ctx, v graph.VID, recs []uint32) ([][2]int64, error) {
	if !s.opts.Checksums {
		panic("adj: ReplaceChain requires Checksums")
	}
	s.EnsureVertices(v + 1)
	if err := s.ensureJournal(ctx); err != nil {
		return nil, err
	}
	oldTail := s.tail[v]
	oldChain := s.chains[v]
	spans := make([][2]int64, 0, len(oldChain))
	for _, off := range oldChain {
		spans = append(spans, [2]int64{off, headerBytes + 4*int64(s.caps[off])})
	}

	// 1. Stage the replacement block under a dead vid (see compactCrashSafe
	// for the step-by-step crash argument; the journal protocol is shared).
	// recs is stored AS GIVEN in either format: a snapshot's record-count
	// bound may fall anywhere inside the rebuilt stream, so the repair
	// must not reorder it (unlike compaction, which may sort).
	var newOff int64
	var capacity int
	format := uint8(fmtFixed)
	var payload []byte
	var stagedCRC uint32
	if len(recs) > 0 {
		if s.opts.VarintBlocks {
			format = fmtVarint
			payload = encodeVarintRun(nil, 0, recs)
			capacity = varintCapacity(len(payload))
		} else {
			payload = encodeU32s(recs)
			capacity = len(recs)
		}
		var err error
		newOff, err = s.allocBlock(ctx, v, capacity)
		if err != nil {
			return nil, err
		}
		size := int64(headerBytes + 4*capacity)
		buf := make([]byte, size)
		binary.LittleEndian.PutUint32(buf[offVID:], deadVID)
		binary.LittleEndian.PutUint32(buf[offCap:], uint32(capacity))
		binary.LittleEndian.PutUint32(buf[offFmt:], uint32(format))
		binary.LittleEndian.PutUint32(buf[offCnt0:], uint32(len(recs)))
		binary.LittleEndian.PutUint32(buf[offCnt1:], uint32(len(recs)))
		copy(buf[headerBytes:], payload)
		stagedCRC = crc32.Checksum(payload, castagnoli)
		binary.LittleEndian.PutUint32(buf[offCRC0:], stagedCRC)
		binary.LittleEndian.PutUint32(buf[offCRC1:], stagedCRC)
		s.m.Write(ctx, newOff, buf)
		s.m.Flush(ctx, newOff, size)
		s.m.Flush(ctx, 0, 8)
		s.encBytes[format] += int64(len(payload))
		s.encRecs[format] += int64(len(recs))
	}

	// 2. Arm the journal.
	wA := s.journal + headerBytes
	mem.WriteU64(s.m, ctx, wA, uint64(v)|uint64(newOff/headerAlign)<<32)
	s.m.Flush(ctx, wA, 8)
	mem.WriteU64(s.m, ctx, wA+8, uint64(oldTail/headerAlign)|uint64(journalMagic)<<32)
	s.m.Flush(ctx, wA+8, 8)

	// 3. Commit the staged block.
	if newOff != 0 {
		mem.WriteU32(s.m, ctx, newOff+offVID, v)
		s.m.Flush(ctx, newOff, headerBytes)
	}

	// 4. Write dead headers over the old chain — from the DRAM layout, not
	// from media prev links a scrambled header could have corrupted. No
	// recycle: the blocks are quarantined.
	for _, off := range oldChain {
		var hdr [headerBytes]byte
		binary.LittleEndian.PutUint32(hdr[offVID:], deadVID)
		binary.LittleEndian.PutUint32(hdr[offCap:], s.caps[off])
		s.m.Write(ctx, off, hdr[:])
		s.m.Flush(ctx, off, headerBytes)
		delete(s.partialCnt, off)
		delete(s.pendCur, off)
		delete(s.pendPrev, off)
		delete(s.crc, off)
	}

	// 5. Disarm.
	mem.WriteU64(s.m, ctx, wA+8, 0)
	s.m.Flush(ctx, wA+8, 8)

	s.records[v] = uint32(len(recs))
	s.tail[v] = newOff
	s.tailCnt[v] = uint32(len(recs))
	s.tailCap[v] = uint32(capacity)
	s.tailFmt[v] = format
	s.tailBytes[v] = uint32(len(payload))
	s.lastVal[v] = 0
	if format == fmtVarint && len(recs) > 0 {
		s.lastVal[v] = recs[len(recs)-1]
	}
	delete(s.chains, v)
	if newOff != 0 {
		s.noteBlock(v, newOff, uint32(capacity), stagedCRC)
	}
	return spans, nil
}

// encodeU32s packs records little-endian, the block payload encoding.
func encodeU32s(recs []uint32) []byte {
	buf := make([]byte, 4*len(recs))
	for i, r := range recs {
		binary.LittleEndian.PutUint32(buf[i*4:], r)
	}
	return buf
}
