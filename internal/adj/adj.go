// Package adj implements persistent adjacency-list storage: per-vertex
// chains of neighbor blocks living in PMEM (or DRAM for the volatile
// variants). Blocks carry a persisted header {vid, cnt, cap, prev} so a
// recovering process can rebuild every chain with one sequential scan of
// the arena — the recovery scheme of §V-D.
//
// XPGraph appends whole drained vertex buffers (up to 63 neighbors) as one
// contiguous write — the single-XPLine flush of §III-B — while GraphOne's
// edge-centric archiving appends one 4-byte neighbor at a time; both paths
// go through Append, so the amplification difference between the two
// systems emerges purely from access patterns, as in the paper.
package adj

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/xpsim"
)

// blockHeader is {vid u32, cnt u32, cap u32, prev u32}; prev is the
// 16-byte-aligned offset of the previous block divided by headerAlign
// (0 = none).
const (
	headerBytes = 16
	headerAlign = 16
)

// deadVID marks a recycled block's header so the recovery scan skips it.
// The ID is reserved: no vertex may use it (it is also graph.DelFlag|...,
// which real vertex IDs cannot carry).
const deadVID = ^uint32(0)

// Sizing decides the capacity (in neighbors) of a new block for a vertex
// that already stores `degree` records and is receiving `incoming` more.
type Sizing func(degree, incoming int) int

// XPGraphSizing grows blocks with the vertex: small vertices get small
// blocks, hot vertices get room to absorb future flushes (amortizing
// block-chain overhead), capped at 1024 neighbors per block.
func XPGraphSizing(degree, incoming int) int {
	c := degree / 2
	if c < 12 {
		c = 12
	}
	if c > 1024 {
		c = 1024
	}
	if c < incoming {
		c = incoming
	}
	return c
}

// ExactSizing allocates exactly the incoming count (no growth headroom).
func ExactSizing(_, incoming int) int { return incoming }

// GraphOneSizing models GraphOne's adjacency chunks, which grow
// geometrically with the vertex degree (its store chains chunks of
// increasing sizes): a degree-d vertex's next chunk holds ~d more
// neighbors, so chains stay logarithmic in degree and queries touch a
// handful of chunks — Fig. 14's one-hop numbers are comparable between
// the systems for exactly this reason. What stays pathological on PMEM is
// the write pattern: archiving still fills these chunks one 4-byte
// neighbor at a time.
func GraphOneSizing(degree, incoming int) int {
	c := 4
	for c < degree {
		c *= 2
	}
	if c > 1024 {
		c = 1024
	}
	if c < incoming {
		c = incoming
	}
	return c
}

// Options configure a Store.
type Options struct {
	Sizing         Sizing
	ProactiveFlush bool // clwb adjacency data >= one XPLine (§IV-A)
	// VolatileCounts keeps per-block record counts in DRAM instead of
	// persisting them on every append. GraphOne keeps all metadata in
	// DRAM (§V-A) and recovers by re-archiving, so it never pays the
	// per-edge header write; XPGraph persists counts (amortized over
	// whole-buffer flushes) so its scan-based recovery works.
	VolatileCounts bool
}

// Store is one adjacency arena: one direction (out or in) of one
// partition of the graph.
type Store struct {
	m    mem.Mem
	lat  *xpsim.LatencyModel
	opts Options

	tail    []int64  // per-vertex offset of the newest block; 0 = none
	tailCnt []uint32 // DRAM mirror of the tail block's cnt
	tailCap []uint32 // DRAM mirror of the tail block's cap
	records []uint32 // total records (incl. tombstones) per vertex
	blocks  int64    // blocks allocated
	bytes   int64    // bytes allocated
	// partialCnt records counts of retired-but-not-full blocks when
	// counts are volatile (DRAM metadata); retired blocks are otherwise
	// exactly full.
	partialCnt map[int64]uint32
	// freeBlocks recycles compacted-away blocks by capacity, so repeated
	// compaction does not leak the bump-allocated arena.
	freeBlocks map[int][]int64
}

// New builds a store over m for vertices [0, maxV].
func New(m mem.Mem, lat *xpsim.LatencyModel, maxV graph.VID, opts Options) *Store {
	if opts.Sizing == nil {
		opts.Sizing = XPGraphSizing
	}
	s := &Store{m: m, lat: lat, opts: opts}
	s.EnsureVertices(maxV + 1)
	return s
}

// Mem exposes the backing memory.
func (s *Store) Mem() mem.Mem { return s.m }

// EnsureVertices grows the index to hold at least n vertices.
func (s *Store) EnsureVertices(n graph.VID) {
	for uint32(len(s.tail)) < n {
		s.tail = append(s.tail, make([]int64, int(n)-len(s.tail))...)
		s.tailCnt = append(s.tailCnt, make([]uint32, int(n)-len(s.tailCnt))...)
		s.tailCap = append(s.tailCap, make([]uint32, int(n)-len(s.tailCap))...)
		s.records = append(s.records, make([]uint32, int(n)-len(s.records))...)
	}
}

// NumVertices reports the index size.
func (s *Store) NumVertices() graph.VID { return graph.VID(len(s.tail)) }

// Records reports how many neighbor records (including deletion
// tombstones) vertex v stores.
func (s *Store) Records(v graph.VID) int {
	if int(v) >= len(s.records) {
		return 0
	}
	return int(s.records[v])
}

// Blocks reports total allocated blocks.
func (s *Store) Blocks() int64 { return s.blocks }

// Bytes reports total allocated block bytes (the paper's "Pblk" usage).
func (s *Store) Bytes() int64 { return s.bytes }

// Append stores nbrs for vertex v. Contiguous neighbors are written with
// a single memory operation, so a 63-neighbor vertex-buffer flush costs
// one XPLine-sized write while single-neighbor appends behave like
// GraphOne's scattered 4-byte stores.
func (s *Store) Append(ctx *xpsim.Ctx, v graph.VID, nbrs []uint32) error {
	s.EnsureVertices(v + 1)
	for len(nbrs) > 0 {
		free := int(s.tailCap[v] - s.tailCnt[v])
		if s.tail[v] == 0 || free == 0 {
			if err := s.newBlock(ctx, v, len(nbrs)); err != nil {
				return err
			}
			free = int(s.tailCap[v])
		}
		n := len(nbrs)
		if n > free {
			n = free
		}
		off := s.tail[v] + headerBytes + int64(s.tailCnt[v])*4
		buf := make([]byte, n*4)
		for i, nb := range nbrs[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], nb)
		}
		s.m.Write(ctx, off, buf)
		s.tailCnt[v] += uint32(n)
		if !s.opts.VolatileCounts {
			// Persist the record count in the block header.
			mem.WriteU32(s.m, ctx, s.tail[v]+4, s.tailCnt[v])
		}
		if s.opts.ProactiveFlush && int64(n*4) >= xpsim.XPLineSize {
			s.m.Flush(ctx, off, int64(n*4))
		}
		s.records[v] += uint32(n)
		nbrs = nbrs[n:]
	}
	return nil
}

// Reserve ensures v's tail block has room for at least n more neighbors,
// allocating a fresh block sized by the sizing policy otherwise. GraphOne's
// archiving uses it to allocate each vertex's per-batch chunk up front
// (degree counting pass, §II-B) before appending neighbors one by one.
func (s *Store) Reserve(ctx *xpsim.Ctx, v graph.VID, n int) error {
	s.EnsureVertices(v + 1)
	if s.tail[v] != 0 && int(s.tailCap[v]-s.tailCnt[v]) >= n {
		return nil
	}
	return s.newBlock(ctx, v, n)
}

// blockCnt resolves a block's record count honoring volatile counts.
func (s *Store) blockCnt(v graph.VID, off int64, persisted, capacity uint32) uint32 {
	if !s.opts.VolatileCounts {
		return persisted
	}
	if off == s.tail[v] {
		return s.tailCnt[v]
	}
	if c, ok := s.partialCnt[off]; ok {
		return c
	}
	return capacity // retired blocks are full unless recorded otherwise
}

func (s *Store) newBlock(ctx *xpsim.Ctx, v graph.VID, incoming int) error {
	if s.opts.VolatileCounts && s.tail[v] != 0 && s.tailCnt[v] < s.tailCap[v] {
		if s.partialCnt == nil {
			s.partialCnt = make(map[int64]uint32)
		}
		s.partialCnt[s.tail[v]] = s.tailCnt[v]
	}
	capacity := s.opts.Sizing(int(s.records[v]), incoming)
	size := int64(headerBytes + 4*capacity)
	var off int64
	if lst := s.freeBlocks[capacity]; len(lst) > 0 {
		off = lst[len(lst)-1]
		s.freeBlocks[capacity] = lst[:len(lst)-1]
		s.bytes -= size // re-added below; recycled blocks are not new bytes
		s.blocks--
	} else {
		var err error
		off, err = s.m.Alloc(ctx, size, headerAlign)
		if err != nil {
			return fmt.Errorf("adj: block for vertex %d: %w", v, err)
		}
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], v)
	binary.LittleEndian.PutUint32(hdr[4:8], 0)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(capacity))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(s.tail[v]/headerAlign))
	if s.opts.VolatileCounts {
		// GraphOne keeps chunk metadata (sizes, links) in its DRAM
		// vertex index, not in the chunk itself; charge a DRAM metadata
		// update and write the header bytes cost-free so the shared
		// on-media block format stays walkable in the simulation.
		free := &xpsim.Ctx{Cost: &xpsim.Cost{}, Node: ctx.Node, Worker: ctx.Worker, Workers: ctx.Workers}
		s.m.Write(free, off, hdr[:])
		s.lat.DRAM(ctx, headerBytes, true, false)
	} else {
		s.m.Write(ctx, off, hdr[:])
	}
	s.tail[v] = off
	s.tailCnt[v] = 0
	s.tailCap[v] = uint32(capacity)
	s.blocks++
	s.bytes += size
	return nil
}

// Neighbors appends vertex v's stored records to dst, newest block first
// (records inside a block stay in insertion order). Deletion tombstones
// are returned as-is; merging is the caller's concern.
func (s *Store) Neighbors(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	if int(v) >= len(s.tail) {
		return dst
	}
	off := s.tail[v]
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		cnt := s.blockCnt(v, off, binary.LittleEndian.Uint32(hdr[4:8]), binary.LittleEndian.Uint32(hdr[8:12]))
		prev := int64(binary.LittleEndian.Uint32(hdr[12:16])) * headerAlign
		if cnt > 0 {
			buf := make([]byte, cnt*4)
			s.m.Read(ctx, off+headerBytes, buf)
			for i := uint32(0); i < cnt; i++ {
				dst = append(dst, binary.LittleEndian.Uint32(buf[i*4:]))
			}
		}
		off = prev
	}
	return dst
}

// Visit streams vertex v's stored records to fn, newest block first,
// without allocating. Deletion tombstones are streamed as-is; callers
// needing resolved views use Neighbors.
func (s *Store) Visit(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	if int(v) >= len(s.tail) {
		return
	}
	off := s.tail[v]
	var buf [4 * 256]byte
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		cnt := s.blockCnt(v, off, binary.LittleEndian.Uint32(hdr[4:8]), binary.LittleEndian.Uint32(hdr[8:12]))
		prev := int64(binary.LittleEndian.Uint32(hdr[12:16])) * headerAlign
		data := off + headerBytes
		for cnt > 0 {
			n := cnt
			if n > uint32(len(buf)/4) {
				n = uint32(len(buf) / 4)
			}
			s.m.Read(ctx, data, buf[:4*n])
			for i := uint32(0); i < n; i++ {
				fn(binary.LittleEndian.Uint32(buf[i*4:]))
			}
			data += int64(4 * n)
			cnt -= n
		}
		off = prev
	}
}

// NeighborsOldestFirst appends vertex v's stored records to dst in
// insertion order (oldest block first) — the order snapshot-bounded reads
// need.
func (s *Store) NeighborsOldestFirst(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	if int(v) >= len(s.tail) {
		return dst
	}
	// Collect the chain tail->head, then read blocks in reverse.
	var chain []int64
	off := s.tail[v]
	for off != 0 {
		chain = append(chain, off)
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		off = int64(binary.LittleEndian.Uint32(hdr[12:16])) * headerAlign
	}
	for i := len(chain) - 1; i >= 0; i-- {
		b := chain[i]
		var hdr [headerBytes]byte
		s.m.Read(ctx, b, hdr[:])
		cnt := s.blockCnt(v, b, binary.LittleEndian.Uint32(hdr[4:8]), binary.LittleEndian.Uint32(hdr[8:12]))
		if cnt > 0 {
			buf := make([]byte, cnt*4)
			s.m.Read(ctx, b+headerBytes, buf)
			for j := uint32(0); j < cnt; j++ {
				dst = append(dst, binary.LittleEndian.Uint32(buf[j*4:]))
			}
		}
	}
	return dst
}

// Contains reports whether nbr already appears in v's stored records —
// the recovery dedup check of §III-B.
func (s *Store) Contains(ctx *xpsim.Ctx, v graph.VID, nbr uint32) bool {
	if int(v) >= len(s.tail) {
		return false
	}
	off := s.tail[v]
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		cnt := s.blockCnt(v, off, binary.LittleEndian.Uint32(hdr[4:8]), binary.LittleEndian.Uint32(hdr[8:12]))
		prev := int64(binary.LittleEndian.Uint32(hdr[12:16])) * headerAlign
		if cnt > 0 {
			buf := make([]byte, cnt*4)
			s.m.Read(ctx, off+headerBytes, buf)
			for i := uint32(0); i < cnt; i++ {
				if binary.LittleEndian.Uint32(buf[i*4:]) == nbr {
					return true
				}
			}
		}
		off = prev
	}
	return false
}

// Compact merges all of v's blocks (resolving deletion tombstones) into a
// single exactly-sized block — compact_adjs of Table I. The old blocks
// are marked dead on media (so scan recovery skips them) and recycled
// through per-capacity free lists.
func (s *Store) Compact(ctx *xpsim.Ctx, v graph.VID) error {
	if int(v) >= len(s.tail) || s.tail[v] == 0 {
		return nil
	}
	recs := s.Neighbors(ctx, v, nil)
	live := resolveTombstones(recs)

	// Release the old chain.
	off := s.tail[v]
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		capacity := int(binary.LittleEndian.Uint32(hdr[8:12]))
		prev := int64(binary.LittleEndian.Uint32(hdr[12:16])) * headerAlign
		s.free(ctx, off, capacity)
		off = prev
	}
	s.tail[v] = 0
	s.tailCnt[v] = 0
	s.tailCap[v] = 0
	s.records[v] = 0
	if len(live) == 0 {
		return nil
	}
	old := s.opts.Sizing
	s.opts.Sizing = ExactSizing
	err := s.Append(ctx, v, live)
	s.opts.Sizing = old
	return err
}

// free marks a block dead on media and recycles it.
func (s *Store) free(ctx *xpsim.Ctx, off int64, capacity int) {
	mem.WriteU32(s.m, ctx, off, deadVID)
	if s.freeBlocks == nil {
		s.freeBlocks = make(map[int][]int64)
	}
	s.freeBlocks[capacity] = append(s.freeBlocks[capacity], off)
	delete(s.partialCnt, off)
}

// resolveTombstones removes, for every deletion record, one matching
// neighbor record, returning the surviving neighbors.
func resolveTombstones(recs []uint32) []uint32 {
	var dels map[uint32]int
	for _, r := range recs {
		if r&graph.DelFlag != 0 {
			if dels == nil {
				dels = make(map[uint32]int)
			}
			dels[r&^graph.DelFlag]++
		}
	}
	if dels == nil {
		return recs
	}
	out := recs[:0]
	for _, r := range recs {
		if r&graph.DelFlag != 0 {
			continue
		}
		if n := dels[r]; n > 0 {
			dels[r] = n - 1
			continue
		}
		out = append(out, r)
	}
	return out
}

// RecoverableMem is the extra surface recovery needs: where the arena
// starts and how far it had grown before the crash.
type RecoverableMem interface {
	mem.Mem
	PersistedAllocOffset(ctx *xpsim.Ctx) int64
	UserStart() int64
}

// Recover rebuilds the DRAM index (tails, counts, degrees) by scanning
// the arena sequentially from its start to the persisted allocation
// pointer. Chains come back because each block persists its prev link;
// the tail of a chain is the one block no other block points to (offset
// order is not enough once compaction recycles blocks).
func Recover(ctx *xpsim.Ctx, m RecoverableMem, lat *xpsim.LatencyModel, opts Options) (*Store, error) {
	if opts.VolatileCounts {
		return nil, fmt.Errorf("adj: stores with volatile counts are not scan-recoverable (GraphOne recovers by re-archiving)")
	}
	s := New(m, lat, 0, opts)
	end := m.PersistedAllocOffset(ctx)
	off := align(m.UserStart(), headerAlign)
	type blk struct {
		off      int64
		cnt, cap uint32
	}
	live := make(map[graph.VID][]blk)
	pointedTo := make(map[int64]bool)
	for off+headerBytes <= end {
		var hdr [headerBytes]byte
		m.Read(ctx, off, hdr[:])
		v := binary.LittleEndian.Uint32(hdr[0:4])
		cnt := binary.LittleEndian.Uint32(hdr[4:8])
		capacity := binary.LittleEndian.Uint32(hdr[8:12])
		prev := int64(binary.LittleEndian.Uint32(hdr[12:16])) * headerAlign
		size := int64(headerBytes + 4*capacity)
		if capacity == 0 || off+size > end {
			return nil, fmt.Errorf("adj: corrupt block header at %d (cap=%d)", off, capacity)
		}
		if v == deadVID {
			// Recycled block awaiting reuse: skip, but remember it so
			// the recovered store keeps recycling.
			if s.freeBlocks == nil {
				s.freeBlocks = make(map[int][]int64)
			}
			s.freeBlocks[int(capacity)] = append(s.freeBlocks[int(capacity)], off)
			off = align(off+size, headerAlign)
			continue
		}
		s.EnsureVertices(v + 1)
		live[v] = append(live[v], blk{off: off, cnt: cnt, cap: capacity})
		if prev != 0 {
			pointedTo[prev] = true
		}
		s.records[v] += cnt
		s.blocks++
		s.bytes += size
		off = align(off+size, headerAlign)
	}
	for v, blks := range live {
		tails := 0
		for _, b := range blks {
			if !pointedTo[b.off] {
				s.tail[v] = b.off
				s.tailCnt[v] = b.cnt
				s.tailCap[v] = b.cap
				tails++
			}
		}
		if tails != 1 {
			return nil, fmt.Errorf("adj: vertex %d chain has %d tails (corrupt prev links)", v, tails)
		}
	}
	return s, nil
}

func align(x, a int64) int64 { return (x + a - 1) / a * a }
