// Package adj implements persistent adjacency-list storage: per-vertex
// chains of neighbor blocks living in PMEM (or DRAM for the volatile
// variants). Blocks carry a persisted header {vid, cap, prev, cnt0, cnt1}
// so a recovering process can rebuild every chain with one sequential scan
// of the arena — the recovery scheme of §V-D.
//
// XPGraph appends whole drained vertex buffers (up to 63 neighbors) as one
// contiguous write — the single-XPLine flush of §III-B — while GraphOne's
// edge-centric archiving appends one 4-byte neighbor at a time; both paths
// go through Append, so the amplification difference between the two
// systems emerges purely from access patterns, as in the paper.
//
// # Crash safety
//
// The header carries TWO count slots. In CrashSafe mode appends leave the
// persisted counts alone; a flushing phase calls Ack(slot) to write the
// changed blocks' counts into one slot, the caller makes them durable with
// a machine-wide writeback barrier, and then commits by flipping the slot
// selector bit stored in the edge log's flushed cursor (elog.
// MarkFlushedSlot) — a single atomic 8-byte store. Recovery trusts only
// the selected slot, so a crash anywhere inside a flushing phase leaves
// every acknowledged count intact and every unacknowledged record
// invisible; replaying the log window [flushed, head) then restores the
// unacknowledged records exactly once, with no content-based dedup.
package adj

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/xpsim"
)

// blockHeader is {vid u32, cap u32, prev u32, _ u32, cnt0 u32, _ u32,
// cnt1 u32, _ u32}; prev is the 16-byte-aligned offset of the previous
// block divided by headerAlign (0 = none). The count slots live in their
// own 8-byte words so a torn header line can never mix halves of two
// counts: powerfail atomicity is per 8-byte word.
const (
	headerBytes = 32
	headerAlign = 16

	offVID  = 0
	offCap  = 4
	offPrev = 8
	offCnt0 = 16
	offCRC0 = 20
	offCnt1 = 24
	offCRC1 = 28
)

// deadVID marks a recycled block's header so the recovery scan skips it.
// The ID is reserved: no vertex may use it (it is also graph.DelFlag|...,
// which real vertex IDs cannot carry).
const deadVID = ^uint32(0)

// journalVID marks the compaction journal pseudo-block (also reserved).
const journalVID = ^uint32(0) - 1

// journalMagic is the high half of the journal's second word while a
// compaction is in flight; recovery rolls the compaction forward iff it
// sees the magic.
const journalMagic = 0x4A524E4C // "JRNL"

// Sizing decides the capacity (in neighbors) of a new block for a vertex
// that already stores `degree` records and is receiving `incoming` more.
type Sizing func(degree, incoming int) int

// XPGraphSizing grows blocks with the vertex: small vertices get small
// blocks, hot vertices get room to absorb future flushes (amortizing
// block-chain overhead), capped at 1024 neighbors per block.
func XPGraphSizing(degree, incoming int) int {
	c := degree / 2
	if c < 12 {
		c = 12
	}
	if c > 1024 {
		c = 1024
	}
	if c < incoming {
		c = incoming
	}
	return c
}

// ExactSizing allocates exactly the incoming count (no growth headroom).
func ExactSizing(_, incoming int) int { return incoming }

// GraphOneSizing models GraphOne's adjacency chunks, which grow
// geometrically with the vertex degree (its store chains chunks of
// increasing sizes): a degree-d vertex's next chunk holds ~d more
// neighbors, so chains stay logarithmic in degree and queries touch a
// handful of chunks — Fig. 14's one-hop numbers are comparable between
// the systems for exactly this reason. What stays pathological on PMEM is
// the write pattern: archiving still fills these chunks one 4-byte
// neighbor at a time.
func GraphOneSizing(degree, incoming int) int {
	c := 4
	for c < degree {
		c *= 2
	}
	if c > 1024 {
		c = 1024
	}
	if c < incoming {
		c = incoming
	}
	return c
}

// Options configure a Store.
type Options struct {
	Sizing         Sizing
	ProactiveFlush bool // clwb adjacency data >= one XPLine (§IV-A)
	// VolatileCounts keeps per-block record counts in DRAM instead of
	// persisting them on every append. GraphOne keeps all metadata in
	// DRAM (§V-A) and recovers by re-archiving, so it never pays the
	// per-edge header write; XPGraph persists counts (amortized over
	// whole-buffer flushes) so its scan-based recovery works.
	VolatileCounts bool
	// CrashSafe defers count persistence to explicit Ack slots (see the
	// package comment) and runs compactions through a redo journal, so a
	// crash at any media-write boundary recovers without losing
	// acknowledged records or duplicating replayed ones. Incompatible
	// with VolatileCounts.
	CrashSafe bool
	// DeferCounts skips per-append count persistence without the Ack
	// machinery: counts live only in DRAM mirrors. For battery-backed
	// stores (XPGraph-B), whose DRAM is inside the persistence domain, the
	// mirrors are durable by definition and the PMEM count write is pure
	// overhead (§IV-C). Such stores are not scan-recoverable.
	DeferCounts bool
	// Checksums turns the two spare header words into per-slot CRC32-C
	// checksums of the visible payload (see check.go): Ack persists
	// {cnt, crc} as one 8-byte powerfail-atomic word, checked walks verify
	// payloads against DRAM mirrors, and recovery flags blocks whose media
	// bytes disagree with the acknowledged checksum. Requires CrashSafe
	// (the checksum lifecycle rides the Ack slots).
	Checksums bool
	// VarintBlocks makes NEW blocks use the delta-varint payload encoding
	// (varint.go) instead of fixed 4-byte neighbor slots. The format is
	// negotiated per block through the offFmt header word, so chains may
	// mix formats freely: a store recovered from fixed-width media keeps
	// reading its old blocks while appending compressed ones.
	VarintBlocks bool
}

// Store is one adjacency arena: one direction (out or in) of one
// partition of the graph.
type Store struct {
	m    mem.Mem
	lat  *xpsim.LatencyModel
	opts Options

	tail    []int64  // per-vertex offset of the newest block; 0 = none
	tailCnt []uint32 // DRAM mirror of the tail block's cnt
	tailCap []uint32 // DRAM mirror of the tail block's cap
	records []uint32 // total records (incl. tombstones) per vertex
	blocks  int64    // blocks allocated
	bytes   int64    // bytes allocated
	// Delta-varint tail state (varint.go): the tail block's format, the
	// byte cursor inside its payload, and the delta predecessor for the
	// next appended record. All rebuilt by recovery.
	tailFmt   []uint8
	tailBytes []uint32
	lastVal   []uint32
	// encBytes/encRecs count payload bytes and records written through
	// the append and compaction paths, per format — the obs feed for
	// edges-per-XPLine accounting. encScratch is the reusable varint
	// encode buffer.
	encBytes   [2]int64
	encRecs    [2]int64
	encScratch []byte
	// partialCnt records counts of retired-but-not-full blocks when
	// counts live in DRAM (VolatileCounts, or CrashSafe between acks);
	// retired blocks are otherwise exactly full.
	partialCnt map[int64]uint32
	// freeBlocks recycles compacted-away blocks by capacity, so repeated
	// compaction does not leak the bump-allocated arena.
	freeBlocks map[int][]int64

	// pendCur/pendPrev track blocks whose DRAM count is ahead of the
	// persisted slots: blocks changed since the last Ack and since the
	// one before it. Ack writes the union, so every count value lands in
	// both slots over two consecutive flush cycles.
	pendCur  map[int64]uint32
	pendPrev map[int64]uint32
	journal  int64 // offset of the compaction journal block; 0 = none

	// Checksum state (check.go; populated only with opts.Checksums):
	// crc mirrors the running CRC32-C of each block's appended payload,
	// caps remembers every block's capacity, chains the newest-first block
	// layout per vertex — so verification and repair never have to trust a
	// possibly-corrupt on-media header. suspects collects vertices whose
	// media payload disagreed with the acknowledged checksum at Recover.
	crc      map[int64]uint32
	caps     map[int64]uint32
	chains   map[graph.VID][]int64
	suspects []graph.VID
}

// New builds a store over m for vertices [0, maxV].
func New(m mem.Mem, lat *xpsim.LatencyModel, maxV graph.VID, opts Options) *Store {
	if opts.Sizing == nil {
		opts.Sizing = XPGraphSizing
	}
	if opts.CrashSafe && opts.VolatileCounts {
		panic("adj: CrashSafe and VolatileCounts are incompatible")
	}
	if opts.Checksums && !opts.CrashSafe {
		panic("adj: Checksums require CrashSafe (the CRC lifecycle rides the Ack slots)")
	}
	s := &Store{m: m, lat: lat, opts: opts}
	s.EnsureVertices(maxV + 1)
	return s
}

// Mem exposes the backing memory.
func (s *Store) Mem() mem.Mem { return s.m }

// EnsureVertices grows the index to hold at least n vertices.
func (s *Store) EnsureVertices(n graph.VID) {
	for uint32(len(s.tail)) < n {
		s.tail = append(s.tail, make([]int64, int(n)-len(s.tail))...)
		s.tailCnt = append(s.tailCnt, make([]uint32, int(n)-len(s.tailCnt))...)
		s.tailCap = append(s.tailCap, make([]uint32, int(n)-len(s.tailCap))...)
		s.records = append(s.records, make([]uint32, int(n)-len(s.records))...)
		s.tailFmt = append(s.tailFmt, make([]uint8, int(n)-len(s.tailFmt))...)
		s.tailBytes = append(s.tailBytes, make([]uint32, int(n)-len(s.tailBytes))...)
		s.lastVal = append(s.lastVal, make([]uint32, int(n)-len(s.lastVal))...)
	}
}

// NumVertices reports the index size.
func (s *Store) NumVertices() graph.VID { return graph.VID(len(s.tail)) }

// Records reports how many neighbor records (including deletion
// tombstones) vertex v stores.
func (s *Store) Records(v graph.VID) int {
	if int(v) >= len(s.records) {
		return 0
	}
	return int(s.records[v])
}

// Blocks reports total allocated blocks.
func (s *Store) Blocks() int64 { return s.blocks }

// Bytes reports total allocated block bytes (the paper's "Pblk" usage).
func (s *Store) Bytes() int64 { return s.bytes }

// EncodingStats reports cumulative payload bytes and records written
// through the append and compaction paths, per block format — the feed
// behind the xpgraph_adj_encoded_* metrics and the edges-per-XPLine
// accounting (records / (bytes/256)).
type EncodingStats struct {
	FixedBytes, FixedRecords   int64
	VarintBytes, VarintRecords int64
}

// Encoding reports the store's cumulative encoding statistics.
func (s *Store) Encoding() EncodingStats {
	return EncodingStats{
		FixedBytes:    s.encBytes[fmtFixed],
		FixedRecords:  s.encRecs[fmtFixed],
		VarintBytes:   s.encBytes[fmtVarint],
		VarintRecords: s.encRecs[fmtVarint],
	}
}

// LayoutStats describes the live on-media adjacency layout: visible
// records, the payload bytes they occupy, and total block bytes
// (headers + payload capacity, the real XPLine footprint).
type LayoutStats struct {
	Records      int64
	PayloadBytes int64
	BlockBytes   int64
}

// Layout walks every live chain and measures the current on-media
// layout. Varint payload extents are discovered by decoding, so this is
// a full read of the arena — a bench/diagnostic API, not a hot path.
func (s *Store) Layout(ctx *xpsim.Ctx) LayoutStats {
	var ls LayoutStats
	for v := range s.tail {
		off := s.tail[v]
		for off != 0 {
			var hdr [headerBytes]byte
			s.m.Read(ctx, off, hdr[:])
			capacity := binary.LittleEndian.Uint32(hdr[offCap:])
			format := uint8(binary.LittleEndian.Uint32(hdr[offFmt:]))
			cnt := s.blockCnt(graph.VID(v), off, binary.LittleEndian.Uint32(hdr[offCnt0:]), capacity)
			ls.Records += int64(cnt)
			ls.BlockBytes += headerBytes + 4*int64(capacity)
			if format == fmtVarint {
				vr := newVarintReader(func(o int64, p []byte) error {
					s.m.Read(ctx, o, p)
					return nil
				}, off+headerBytes, int64(capacity)*4, false)
				for i := uint32(0); i < cnt; i++ {
					if _, err := vr.next(); err != nil {
						break
					}
				}
				ls.PayloadBytes += vr.bytesConsumed()
			} else {
				ls.PayloadBytes += 4 * int64(cnt)
			}
			off = int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign
		}
	}
	return ls
}

// volatileReads reports whether record counts are resolved from DRAM
// mirrors rather than the persisted header (VolatileCounts always;
// CrashSafe because the persisted slots lag until the next Ack;
// DeferCounts because the slots are never written at all).
func (s *Store) volatileReads() bool {
	return s.opts.VolatileCounts || s.opts.CrashSafe || s.opts.DeferCounts
}

// pendAdd notes that block off's durable count slots no longer match its
// DRAM count cnt.
func (s *Store) pendAdd(off int64, cnt uint32) {
	if s.pendCur == nil {
		s.pendCur = make(map[int64]uint32)
	}
	s.pendCur[off] = cnt
}

// Append stores nbrs for vertex v. Contiguous neighbors are written with
// a single memory operation, so a 63-neighbor vertex-buffer flush costs
// one XPLine-sized write while single-neighbor appends behave like
// GraphOne's scattered 4-byte stores. The tail block's format decides
// the payload encoding; insertion order is preserved in both formats
// (snapshot-bounded reads take record-count prefixes of it).
func (s *Store) Append(ctx *xpsim.Ctx, v graph.VID, nbrs []uint32) error {
	s.EnsureVertices(v + 1)
	for len(nbrs) > 0 {
		if s.tail[v] == 0 {
			if err := s.newBlock(ctx, v, len(nbrs)); err != nil {
				return err
			}
		}
		var n int
		if s.tailFmt[v] == fmtVarint {
			n = s.appendVarint(ctx, v, nbrs)
		} else {
			n = s.appendFixed(ctx, v, nbrs)
		}
		if n == 0 {
			// Tail block full (fixed: no free slot; varint: the next
			// record's encoding does not fit the byte budget).
			if err := s.newBlock(ctx, v, len(nbrs)); err != nil {
				return err
			}
			continue
		}
		nbrs = nbrs[n:]
	}
	return nil
}

// appendFixed writes as many of nbrs as fit the fixed-width tail block,
// returning how many it stored.
func (s *Store) appendFixed(ctx *xpsim.Ctx, v graph.VID, nbrs []uint32) int {
	free := int(s.tailCap[v] - s.tailCnt[v])
	if free <= 0 {
		return 0
	}
	n := len(nbrs)
	if n > free {
		n = free
	}
	off := s.tail[v] + headerBytes + int64(s.tailCnt[v])*4
	buf := make([]byte, n*4)
	for i, nb := range nbrs[:n] {
		binary.LittleEndian.PutUint32(buf[i*4:], nb)
	}
	s.m.Write(ctx, off, buf)
	if s.opts.Checksums {
		s.crc[s.tail[v]] = crc32.Update(s.crc[s.tail[v]], castagnoli, buf)
	}
	s.tailCnt[v] += uint32(n)
	s.commitAppend(ctx, v, off, int64(len(buf)), n)
	s.encBytes[fmtFixed] += int64(len(buf))
	s.encRecs[fmtFixed] += int64(n)
	return n
}

// appendVarint encodes as many of nbrs as fit the varint tail block's
// byte budget — one delta chain continued from the block's last record —
// and writes them with a single memory operation.
func (s *Store) appendVarint(ctx *xpsim.Ctx, v graph.VID, nbrs []uint32) int {
	freeBytes := int(4*s.tailCap[v]) - int(s.tailBytes[v])
	if freeBytes <= 0 {
		return 0
	}
	enc := s.encScratch[:0]
	prev := s.lastVal[v]
	n := 0
	for _, val := range nbrs {
		var k int
		enc, k = putVarintRec(enc, prev, val)
		if len(enc) > freeBytes {
			enc = enc[:len(enc)-k]
			break
		}
		prev = val
		n++
	}
	s.encScratch = enc[:0]
	if n == 0 {
		return 0
	}
	off := s.tail[v] + headerBytes + int64(s.tailBytes[v])
	s.m.Write(ctx, off, enc)
	if s.opts.Checksums {
		s.crc[s.tail[v]] = crc32.Update(s.crc[s.tail[v]], castagnoli, enc)
	}
	s.tailBytes[v] += uint32(len(enc))
	s.lastVal[v] = prev
	s.tailCnt[v] += uint32(n)
	s.commitAppend(ctx, v, off, int64(len(enc)), n)
	s.encBytes[fmtVarint] += int64(len(enc))
	s.encRecs[fmtVarint] += int64(n)
	return n
}

// commitAppend is the shared tail of an append run: count persistence
// policy, proactive flushing, and record accounting. The caller has
// already advanced tailCnt (and, for varint, the byte cursor).
func (s *Store) commitAppend(ctx *xpsim.Ctx, v graph.VID, off, wrote int64, n int) {
	switch {
	case s.opts.CrashSafe:
		// The count stays in DRAM until the next Ack; recovery
		// replays anything not yet acknowledged.
		s.pendAdd(s.tail[v], s.tailCnt[v])
	case !s.opts.VolatileCounts && !s.opts.DeferCounts:
		// Persist the record count in the block header.
		mem.WriteU32(s.m, ctx, s.tail[v]+offCnt0, s.tailCnt[v])
	}
	if s.opts.ProactiveFlush && wrote >= xpsim.XPLineSize {
		s.m.Flush(ctx, off, wrote)
	}
	s.records[v] += uint32(n)
}

// Reserve ensures v's tail block has room for at least n more neighbors,
// allocating a fresh block sized by the sizing policy otherwise. GraphOne's
// archiving uses it to allocate each vertex's per-batch chunk up front
// (degree counting pass, §II-B) before appending neighbors one by one.
// The capacity check is exact for fixed-width blocks and conservative
// (worst-case record size) for varint tails; GraphOne stores never
// enable VarintBlocks, and Append handles overflow either way.
func (s *Store) Reserve(ctx *xpsim.Ctx, v graph.VID, n int) error {
	s.EnsureVertices(v + 1)
	if s.tail[v] != 0 {
		if s.tailFmt[v] == fmtVarint {
			if (int(4*s.tailCap[v])-int(s.tailBytes[v]))/maxVarintRec >= n {
				return nil
			}
		} else if int(s.tailCap[v]-s.tailCnt[v]) >= n {
			return nil
		}
	}
	return s.newBlock(ctx, v, n)
}

// blockCnt resolves a block's record count honoring DRAM-resident counts.
func (s *Store) blockCnt(v graph.VID, off int64, persisted, capacity uint32) uint32 {
	if !s.volatileReads() {
		return persisted
	}
	if off == s.tail[v] {
		return s.tailCnt[v]
	}
	if c, ok := s.partialCnt[off]; ok {
		return c
	}
	return capacity // retired blocks are full unless recorded otherwise
}

// allocBlock grabs a block of the given capacity from the free list or
// the arena, without writing its header.
func (s *Store) allocBlock(ctx *xpsim.Ctx, v graph.VID, capacity int) (int64, error) {
	size := int64(headerBytes + 4*capacity)
	var off int64
	if lst := s.freeBlocks[capacity]; len(lst) > 0 {
		off = lst[len(lst)-1]
		s.freeBlocks[capacity] = lst[:len(lst)-1]
		s.bytes -= size // re-added below; recycled blocks are not new bytes
		s.blocks--
	} else {
		var err error
		off, err = s.m.Alloc(ctx, size, headerAlign)
		if err != nil {
			return 0, fmt.Errorf("adj: block for vertex %d: %w", v, err)
		}
	}
	s.blocks++
	s.bytes += size
	return off, nil
}

func (s *Store) newBlock(ctx *xpsim.Ctx, v graph.VID, incoming int) error {
	// Retire the old tail. A fixed block whose count equals its capacity
	// needs no DRAM record — blockCnt's fallback is exact — but a varint
	// block's record count is unrelated to cap (cnt can exceed it), so
	// retired varint tails always keep their count in partialCnt.
	if s.volatileReads() && s.tail[v] != 0 &&
		(s.tailCnt[v] != s.tailCap[v] || s.tailFmt[v] == fmtVarint) {
		if s.partialCnt == nil {
			s.partialCnt = make(map[int64]uint32)
		}
		s.partialCnt[s.tail[v]] = s.tailCnt[v]
	}
	format := uint8(fmtFixed)
	if s.opts.VarintBlocks {
		format = fmtVarint
	}
	capacity := s.opts.Sizing(int(s.records[v]), incoming)
	if format == fmtVarint && capacity < 2 {
		// A varint block's byte budget (4*cap) must hold at least one
		// worst-case record (maxVarintRec bytes) or Append cannot make
		// progress.
		capacity = 2
	}
	off, err := s.allocBlock(ctx, v, capacity)
	if err != nil {
		return err
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[offVID:], v)
	binary.LittleEndian.PutUint32(hdr[offCap:], uint32(capacity))
	binary.LittleEndian.PutUint32(hdr[offPrev:], uint32(s.tail[v]/headerAlign))
	binary.LittleEndian.PutUint32(hdr[offFmt:], uint32(format))
	// cnt0/cnt1 stay zero: a recycled block's slots were durably zeroed
	// when it was killed, so even if this header write never becomes
	// durable, recovery sees zero visible records — never a stale count
	// from the block's previous owner.
	if s.opts.VolatileCounts {
		// GraphOne keeps chunk metadata (sizes, links) in its DRAM
		// vertex index, not in the chunk itself; charge a DRAM metadata
		// update and write the header bytes cost-free so the shared
		// on-media block format stays walkable in the simulation.
		free := &xpsim.Ctx{Cost: &xpsim.Cost{}, Node: ctx.Node, Worker: ctx.Worker, Workers: ctx.Workers}
		s.m.Write(free, off, hdr[:])
		s.lat.DRAM(ctx, headerBytes, true, false)
	} else {
		s.m.Write(ctx, off, hdr[:])
	}
	s.tail[v] = off
	s.tailCnt[v] = 0
	s.tailCap[v] = uint32(capacity)
	s.tailFmt[v] = format
	s.tailBytes[v] = 0
	s.lastVal[v] = 0
	if s.opts.Checksums {
		s.noteBlock(v, off, uint32(capacity), 0)
	}
	return nil
}

// Ack writes the DRAM counts of every block changed in this or the
// previous flush cycle into count slot `slot` — the first half of a
// crash-safe flushing phase. The caller must then (1) issue a machine-wide
// writeback barrier so the counts and the data they cover are on media,
// and (2) commit with elog.MarkFlushedSlot(..., slot). Writing two cycles'
// worth of blocks means each count value reaches both slots over two
// acks, so whichever slot a crash leaves selected is internally complete.
func (s *Store) Ack(ctx *xpsim.Ctx, slot int) {
	if !s.opts.CrashSafe {
		panic("adj: Ack on a store without CrashSafe")
	}
	if slot != 0 && slot != 1 {
		panic(fmt.Sprintf("adj: bad ack slot %d", slot))
	}
	slotOff := int64(offCnt0 + 8*slot)
	offs := make([]int64, 0, len(s.pendCur)+len(s.pendPrev))
	for off := range s.pendCur {
		offs = append(offs, off)
	}
	for off := range s.pendPrev {
		if _, dup := s.pendCur[off]; !dup {
			offs = append(offs, off)
		}
	}
	// Deterministic write order: map iteration order must not leak into
	// the simulated device's cache state.
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		cnt, ok := s.pendCur[off]
		if !ok {
			cnt = s.pendPrev[off]
		}
		if s.opts.Checksums {
			// {cnt, crc} share one 8-byte word, so powerfail atomicity
			// guarantees a count is never durable without its checksum.
			mem.WriteU64(s.m, ctx, off+slotOff, uint64(cnt)|uint64(s.crc[off])<<32)
		} else {
			mem.WriteU32(s.m, ctx, off+slotOff, cnt)
		}
	}
	s.pendPrev = s.pendCur
	s.pendCur = nil
}

// PendingAcks reports how many blocks still have DRAM counts ahead of at
// least one persisted slot.
func (s *Store) PendingAcks() int {
	n := len(s.pendCur)
	for off := range s.pendPrev {
		if _, dup := s.pendCur[off]; !dup {
			n++
		}
	}
	return n
}

// visitBlock streams the first cnt records of the block at off to fn,
// decoding the block's payload format. Fixed blocks read through a
// stack chunk; varint blocks stream through the chunked decoder. Decode
// errors (possible only on corrupt media) stop the walk — the checked
// paths in check.go surface them as typed errors instead.
func (s *Store) visitBlock(ctx *xpsim.Ctx, off int64, format uint8, capacity, cnt uint32, fn func(nbr uint32)) {
	if cnt == 0 {
		return
	}
	if format == fmtVarint {
		vr := newVarintReader(func(o int64, p []byte) error {
			s.m.Read(ctx, o, p)
			return nil
		}, off+headerBytes, int64(capacity)*4, false)
		for i := uint32(0); i < cnt; i++ {
			nb, err := vr.next()
			if err != nil {
				return
			}
			fn(nb)
		}
		return
	}
	var buf [4 * 256]byte
	data := off + headerBytes
	for cnt > 0 {
		n := cnt
		if n > uint32(len(buf)/4) {
			n = uint32(len(buf) / 4)
		}
		s.m.Read(ctx, data, buf[:4*n])
		for i := uint32(0); i < n; i++ {
			fn(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		data += int64(4 * n)
		cnt -= n
	}
}

// Neighbors appends vertex v's stored records to dst, newest block first
// (records inside a block stay in insertion order). Deletion tombstones
// are returned as-is; merging is the caller's concern.
func (s *Store) Neighbors(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	if int(v) >= len(s.tail) {
		return dst
	}
	off := s.tail[v]
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		cnt := s.blockCnt(v, off, binary.LittleEndian.Uint32(hdr[offCnt0:]), binary.LittleEndian.Uint32(hdr[offCap:]))
		prev := int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign
		s.visitBlock(ctx, off, uint8(binary.LittleEndian.Uint32(hdr[offFmt:])),
			binary.LittleEndian.Uint32(hdr[offCap:]), cnt, func(nb uint32) { dst = append(dst, nb) })
		off = prev
	}
	return dst
}

// Visit streams vertex v's stored records to fn, newest block first,
// without allocating. Deletion tombstones are streamed as-is; callers
// needing resolved views use Neighbors.
func (s *Store) Visit(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	if int(v) >= len(s.tail) {
		return
	}
	off := s.tail[v]
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		cnt := s.blockCnt(v, off, binary.LittleEndian.Uint32(hdr[offCnt0:]), binary.LittleEndian.Uint32(hdr[offCap:]))
		prev := int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign
		s.visitBlock(ctx, off, uint8(binary.LittleEndian.Uint32(hdr[offFmt:])),
			binary.LittleEndian.Uint32(hdr[offCap:]), cnt, fn)
		off = prev
	}
}

// NeighborsOldestFirst appends vertex v's stored records to dst in
// insertion order (oldest block first) — the order snapshot-bounded reads
// need.
func (s *Store) NeighborsOldestFirst(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	if int(v) >= len(s.tail) {
		return dst
	}
	// Collect the chain tail->head, then read blocks in reverse.
	var chain []int64
	off := s.tail[v]
	for off != 0 {
		chain = append(chain, off)
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		off = int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign
	}
	for i := len(chain) - 1; i >= 0; i-- {
		b := chain[i]
		var hdr [headerBytes]byte
		s.m.Read(ctx, b, hdr[:])
		cnt := s.blockCnt(v, b, binary.LittleEndian.Uint32(hdr[offCnt0:]), binary.LittleEndian.Uint32(hdr[offCap:]))
		s.visitBlock(ctx, b, uint8(binary.LittleEndian.Uint32(hdr[offFmt:])),
			binary.LittleEndian.Uint32(hdr[offCap:]), cnt, func(nb uint32) { dst = append(dst, nb) })
	}
	return dst
}

// Contains reports whether nbr already appears in v's stored records.
func (s *Store) Contains(ctx *xpsim.Ctx, v graph.VID, nbr uint32) bool {
	found := false
	s.Visit(ctx, v, func(n uint32) {
		if n == nbr {
			found = true
		}
	})
	return found
}

// Compact merges all of v's blocks (resolving deletion tombstones) into a
// single exactly-sized block — compact_adjs of Table I. The old blocks
// are marked dead on media (so scan recovery skips them) and recycled
// through per-capacity free lists. In CrashSafe mode the whole swap runs
// through a redo journal; see compactCrashSafe.
func (s *Store) Compact(ctx *xpsim.Ctx, v graph.VID) error {
	if int(v) >= len(s.tail) || s.tail[v] == 0 {
		return nil
	}
	recs := s.Neighbors(ctx, v, nil)
	live := resolveTombstones(recs)
	if s.opts.VarintBlocks {
		// Sorting is safe here — compaction fences live snapshots and any
		// later snapshot's record-count bound covers the whole compacted
		// block — and it is where the delta encoding earns its density:
		// a sorted run's deltas are small and non-negative.
		sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	}
	if s.opts.CrashSafe {
		return s.compactCrashSafe(ctx, v, live)
	}

	// Release the old chain.
	off := s.tail[v]
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		capacity := int(binary.LittleEndian.Uint32(hdr[offCap:]))
		prev := int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign
		s.free(ctx, off, capacity)
		off = prev
	}
	s.tail[v] = 0
	s.tailCnt[v] = 0
	s.tailCap[v] = 0
	s.records[v] = 0
	if len(live) == 0 {
		return nil
	}
	old := s.opts.Sizing
	s.opts.Sizing = ExactSizing
	err := s.Append(ctx, v, live)
	s.opts.Sizing = old
	return err
}

// compactCrashSafe swaps v's chain for one exactly-sized block via a redo
// journal, so a crash at any point either keeps the old chain or completes
// the swap on recovery — never both, never neither:
//
//  1. stage: write the new block fully (data + both count slots) with a
//     dead vid, flush it, and flush the allocation pointer covering it;
//  2. arm: journal wordA {v, newOff}, flush; wordB {oldTail, magic},
//     flush — the wordB flush is the commit point;
//  3. commit: rewrite the staged block's vid to v, flush;
//  4. kill: mark every old-chain block dead with durably zeroed count
//     slots (so recycling them can never resurrect stale counts), flush;
//  5. disarm: zero wordB, flush.
//
// Recovery rolls an armed journal forward idempotently (see Recover);
// an unarmed journal means the old chain is still authoritative and the
// staged block, if any, is just a dead block awaiting recycling.
//
// The caller must have flush-acknowledged all of v's records first
// (core.FlushAllVbufs): the compacted counts are written to both slots,
// which is only safe when the records they cover are below the log's
// flushed cursor at both parities.
func (s *Store) compactCrashSafe(ctx *xpsim.Ctx, v graph.VID, live []uint32) error {
	if err := s.ensureJournal(ctx); err != nil {
		return err
	}
	oldTail := s.tail[v]

	// 1. Stage the replacement block under a dead vid. The payload format
	// follows the store option; cnt counts records while cap keeps its
	// 4-bytes-per-unit size semantics, so a varint block is sized by its
	// encoded length.
	var newOff int64
	var capacity int
	format := uint8(fmtFixed)
	var payload []byte
	if len(live) > 0 {
		if s.opts.VarintBlocks {
			format = fmtVarint
			payload = encodeVarintRun(nil, 0, live)
			capacity = varintCapacity(len(payload))
		} else {
			payload = encodeU32s(live)
			capacity = len(live)
		}
		var err error
		newOff, err = s.allocBlock(ctx, v, capacity)
		if err != nil {
			return err
		}
		size := int64(headerBytes + 4*capacity)
		buf := make([]byte, size)
		binary.LittleEndian.PutUint32(buf[offVID:], deadVID)
		binary.LittleEndian.PutUint32(buf[offCap:], uint32(capacity))
		binary.LittleEndian.PutUint32(buf[offFmt:], uint32(format))
		binary.LittleEndian.PutUint32(buf[offCnt0:], uint32(len(live)))
		binary.LittleEndian.PutUint32(buf[offCnt1:], uint32(len(live)))
		copy(buf[headerBytes:], payload)
		if s.opts.Checksums {
			// The CRC covers exactly the visible payload extent — all
			// 4*cap bytes for fixed blocks, the encoded bytes for varint
			// ones (what a decode of cnt records consumes).
			crc := crc32.Checksum(payload, castagnoli)
			binary.LittleEndian.PutUint32(buf[offCRC0:], crc)
			binary.LittleEndian.PutUint32(buf[offCRC1:], crc)
		}
		s.m.Write(ctx, newOff, buf)
		s.m.Flush(ctx, newOff, size)
		// The journal will point at this block: its allocation must be
		// durable before arming or recovery's scan would stop short of it.
		s.m.Flush(ctx, 0, 8)
		s.encBytes[format] += int64(len(payload))
		s.encRecs[format] += int64(len(live))
	}

	// 2. Arm the journal. wordA must be durable before wordB's magic:
	// an armed journal with a torn target would roll garbage forward.
	wA := s.journal + headerBytes
	mem.WriteU64(s.m, ctx, wA, uint64(v)|uint64(newOff/headerAlign)<<32)
	s.m.Flush(ctx, wA, 8)
	mem.WriteU64(s.m, ctx, wA+8, uint64(oldTail/headerAlign)|uint64(journalMagic)<<32)
	s.m.Flush(ctx, wA+8, 8)

	// 3. Commit the staged block.
	if newOff != 0 {
		mem.WriteU32(s.m, ctx, newOff+offVID, v)
		s.m.Flush(ctx, newOff, headerBytes)
	}

	// 4. Kill the old chain.
	off := oldTail
	for off != 0 {
		var hdr [headerBytes]byte
		s.m.Read(ctx, off, hdr[:])
		capacity := int(binary.LittleEndian.Uint32(hdr[offCap:]))
		prev := int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign
		s.killBlock(ctx, off, capacity)
		off = prev
	}

	// 5. Disarm.
	mem.WriteU64(s.m, ctx, wA+8, 0)
	s.m.Flush(ctx, wA+8, 8)

	s.tail[v] = newOff
	s.tailCnt[v] = uint32(len(live))
	s.tailCap[v] = uint32(capacity)
	s.records[v] = uint32(len(live))
	s.tailFmt[v] = format
	s.tailBytes[v] = uint32(len(payload))
	s.lastVal[v] = 0
	if format == fmtVarint && len(live) > 0 {
		s.lastVal[v] = live[len(live)-1]
	}
	if s.opts.Checksums {
		delete(s.chains, v)
		if newOff != 0 {
			s.noteBlock(v, newOff, uint32(capacity), crc32.Checksum(payload, castagnoli))
		}
	}
	return nil
}

// ensureJournal allocates the compaction journal pseudo-block (header +
// two 8-byte words) and makes it durably reachable.
func (s *Store) ensureJournal(ctx *xpsim.Ctx) error {
	if s.journal != 0 {
		return nil
	}
	off, err := s.m.Alloc(ctx, headerBytes+16, headerAlign)
	if err != nil {
		return fmt.Errorf("adj: journal: %w", err)
	}
	var buf [headerBytes + 16]byte
	binary.LittleEndian.PutUint32(buf[offVID:], journalVID)
	binary.LittleEndian.PutUint32(buf[offCap:], 4) // 16 data bytes
	s.m.Write(ctx, off, buf[:])
	s.m.Flush(ctx, off, int64(len(buf)))
	s.m.Flush(ctx, 0, 8) // allocation pointer
	s.journal = off
	return nil
}

// free marks a block dead on media and recycles it (legacy path; counts
// in the dead header go stale but are only trusted behind a valid vid).
func (s *Store) free(ctx *xpsim.Ctx, off int64, capacity int) {
	mem.WriteU32(s.m, ctx, off, deadVID)
	s.recycle(off, capacity)
}

// killBlock durably marks a block dead with zeroed count slots and
// recycles it. Zeroing matters: a recycled block whose new header write
// has not reached media yet must read as zero visible records, not as its
// previous owner's counts.
func (s *Store) killBlock(ctx *xpsim.Ctx, off int64, capacity int) {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[offVID:], deadVID)
	binary.LittleEndian.PutUint32(hdr[offCap:], uint32(capacity))
	s.m.Write(ctx, off, hdr[:])
	s.m.Flush(ctx, off, headerBytes)
	s.recycle(off, capacity)
}

func (s *Store) recycle(off int64, capacity int) {
	if s.freeBlocks == nil {
		s.freeBlocks = make(map[int][]int64)
	}
	s.freeBlocks[capacity] = append(s.freeBlocks[capacity], off)
	delete(s.partialCnt, off)
	delete(s.pendCur, off)
	delete(s.pendPrev, off)
	delete(s.crc, off)
}

// resolveTombstones removes, for every deletion record, one matching
// neighbor record, returning the surviving neighbors.
func resolveTombstones(recs []uint32) []uint32 {
	var dels map[uint32]int
	for _, r := range recs {
		if r&graph.DelFlag != 0 {
			if dels == nil {
				dels = make(map[uint32]int)
			}
			dels[r&^graph.DelFlag]++
		}
	}
	if dels == nil {
		return recs
	}
	out := recs[:0]
	for _, r := range recs {
		if r&graph.DelFlag != 0 {
			continue
		}
		if n := dels[r]; n > 0 {
			dels[r] = n - 1
			continue
		}
		out = append(out, r)
	}
	return out
}

func align(x, a int64) int64 { return (x + a - 1) / a * a }
