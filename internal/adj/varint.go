package adj

// Delta-varint block payloads — the compressed adjacency encoding of the
// binary-ingest fast path (DESIGN.md §10.2).
//
// A block's format is negotiated per block through the previously unused
// header word at offset 12 (offFmt): 0 keeps the classic fixed-width
// 4-byte little-endian neighbor slots, 1 switches the payload to a byte
// stream of delta-varint records. Record i encodes
//
//	binary.PutUvarint(zigzag(int64(v_i) - int64(v_{i-1})))
//
// with v_{-1} = 0 at the start of the block, so decoding is a single
// forward walk carrying one predecessor value. Zigzag keeps appends
// order-preserving: snapshot-bounded reads take record-count prefixes of
// the insertion order, so the append path must not sort. Compaction MAY
// sort (it fences live snapshots and later snapshots always cover the
// whole compacted block), and does: a compacted block stores one sorted
// run whose deltas are small and non-negative — where the density win
// comes from.
//
// The cap header field keeps its size semantics — the payload occupies
// 4*cap bytes on media — so block sizing, the per-capacity free lists,
// ChainSpans, and recovery's size() arithmetic are format-independent.
// The count slots keep counting records; a varint record is at least one
// byte, so recovery's structural sanity bound becomes cnt <= 4*cap.
// CRCs (Checksums mode) cover exactly the encoded bytes of the visible
// records, i.e. the byte extent a decode of cnt records consumes.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
)

const (
	// offFmt is the header word holding the block's payload format.
	offFmt = 12

	fmtFixed  = 0 // 4-byte little-endian neighbor slots
	fmtVarint = 1 // zigzag delta-varint records

	// maxVarintRec bounds one encoded record: |delta| < 1<<32, so
	// zigzag(delta) < 1<<33, which uvarint encodes in at most 5 bytes.
	// Decoders reject longer runs as corruption; the encoder can never
	// produce them.
	maxVarintRec = 5

	// varintChunkBytes is the media-read granularity of the streaming
	// decoder. Chunks never cross the payload end, so a decode touches
	// only the block's own lines, but it may read up to a chunk beyond
	// the last acknowledged record's byte (slack inside the block).
	varintChunkBytes = 256
)

var errVarintCorrupt = errors.New("adj: corrupt delta-varint payload")

func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// putVarintRec appends one record's encoding to buf and returns the new
// buf and the encoded length.
func putVarintRec(buf []byte, prev, v uint32) ([]byte, int) {
	var tmp [maxVarintRec]byte
	n := binary.PutUvarint(tmp[:], zigzag(int64(v)-int64(prev)))
	return append(buf, tmp[:n]...), n
}

// encodeVarintRun encodes vals as one delta chain starting from prev,
// appending to buf.
func encodeVarintRun(buf []byte, prev uint32, vals []uint32) []byte {
	for _, v := range vals {
		buf, _ = putVarintRec(buf, prev, v)
		prev = v
	}
	return buf
}

// varintCapacity is the cap header value (payload bytes / 4, rounded up)
// for an exactly-sized block holding the given encoded payload.
func varintCapacity(encodedBytes int) int {
	c := (encodedBytes + 3) / 4
	if c < 1 {
		c = 1
	}
	return c
}

// varintReader streams records out of a block payload through a chunked
// read callback — the one decoder behind Neighbors, Visit, the checked
// walks, and recovery. When withCRC is set it accumulates the CRC32-C of
// exactly the consumed bytes (call sum after the last record).
type varintReader struct {
	read     func(off int64, p []byte) error
	off      int64 // next media offset to fetch
	end      int64 // payload end on media (never read past)
	buf      [varintChunkBytes]byte
	lo, hi   int
	prev     int64
	consumed int64
	crc      uint32
	withCRC  bool
}

func newVarintReader(read func(off int64, p []byte) error, payOff, payBytes int64, withCRC bool) *varintReader {
	return &varintReader{read: read, off: payOff, end: payOff + payBytes, withCRC: withCRC}
}

func (r *varintReader) fill() error {
	if r.withCRC && r.hi > 0 {
		// Refill only happens once the whole window is consumed, so the
		// running CRC covers exactly the consumed prefix.
		r.crc = crc32.Update(r.crc, castagnoli, r.buf[:r.hi])
	}
	n := r.end - r.off
	if n <= 0 {
		return errVarintCorrupt // records claimed beyond the payload
	}
	if n > int64(len(r.buf)) {
		n = int64(len(r.buf))
	}
	if err := r.read(r.off, r.buf[:n]); err != nil {
		return err
	}
	r.off += n
	r.lo, r.hi = 0, int(n)
	return nil
}

func (r *varintReader) readByte() (byte, error) {
	if r.lo == r.hi {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	b := r.buf[r.lo]
	r.lo++
	r.consumed++
	return b, nil
}

// next decodes one record.
func (r *varintReader) next() (uint32, error) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		if i == maxVarintRec {
			return 0, errVarintCorrupt // overlong varint
		}
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			x |= uint64(b) << shift
			break
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	v := r.prev + unzigzag(x)
	if v < 0 || v > math.MaxUint32 {
		return 0, errVarintCorrupt // delta walks outside uint32
	}
	r.prev = v
	return uint32(v), nil
}

// bytesConsumed reports the payload byte extent of the records decoded
// so far.
func (r *varintReader) bytesConsumed() int64 { return r.consumed }

// last reports the most recently decoded record value.
func (r *varintReader) last() uint32 { return uint32(r.prev) }

// sum finishes the CRC over the consumed bytes. Call at most once, after
// the final record.
func (r *varintReader) sum() uint32 {
	if r.withCRC && r.lo > 0 {
		r.crc = crc32.Update(r.crc, castagnoli, r.buf[:r.lo])
		r.hi = 0 // guard against double-counting if misused
		r.lo = 0
	}
	return r.crc
}
