package adj

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func testStore(t *testing.T) (*Store, *pmem.Region, *xpsim.Machine, *xpsim.Ctx) {
	t.Helper()
	m := xpsim.NewMachine(2, 64<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, err := h.Map("pblk", 16<<20, pmem.Placement{Kind: pmem.Bind, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	lat := &m.Lat
	return New(r, lat, 16, Options{}), r, m, xpsim.NewCtx(0)
}

func sorted(u []uint32) []uint32 {
	v := append([]uint32(nil), u...)
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v
}

func equalMultiset(a, b []uint32) bool {
	a, b = sorted(a), sorted(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAppendNeighbors(t *testing.T) {
	s, _, _, ctx := testStore(t)
	if err := s.Append(ctx, 3, []uint32{10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(ctx, 3, []uint32{13}); err != nil {
		t.Fatal(err)
	}
	got := s.Neighbors(ctx, 3, nil)
	if !equalMultiset(got, []uint32{10, 11, 12, 13}) {
		t.Fatalf("neighbors = %v", got)
	}
	if s.Records(3) != 4 {
		t.Fatalf("records = %d", s.Records(3))
	}
	if got := s.Neighbors(ctx, 9, nil); len(got) != 0 {
		t.Fatalf("vertex 9 neighbors = %v, want none", got)
	}
}

func TestChainAcrossBlocks(t *testing.T) {
	s, _, _, ctx := testStore(t)
	var want []uint32
	for i := uint32(0); i < 500; i++ {
		if err := s.Append(ctx, 1, []uint32{i}); err != nil {
			t.Fatal(err)
		}
		want = append(want, i)
	}
	if s.Blocks() < 2 {
		t.Fatalf("expected multiple blocks, got %d", s.Blocks())
	}
	if got := s.Neighbors(ctx, 1, nil); !equalMultiset(got, want) {
		t.Fatalf("%d neighbors back, want %d", len(got), len(want))
	}
}

func TestContains(t *testing.T) {
	s, _, _, ctx := testStore(t)
	s.Append(ctx, 2, []uint32{5, 6})
	if !s.Contains(ctx, 2, 5) || s.Contains(ctx, 2, 7) || s.Contains(ctx, 99, 5) {
		t.Fatal("Contains wrong")
	}
}

func TestCompactResolvesTombstones(t *testing.T) {
	s, _, _, ctx := testStore(t)
	s.Append(ctx, 4, []uint32{1, 2, 3, 2})
	s.Append(ctx, 4, []uint32{2 | graph.DelFlag})
	if err := s.Compact(ctx, 4); err != nil {
		t.Fatal(err)
	}
	got := s.Neighbors(ctx, 4, nil)
	if !equalMultiset(got, []uint32{1, 2, 3}) {
		t.Fatalf("after compact: %v", got)
	}
	// Everything now sits in one block.
	if s.tail[4] == 0 || s.tailCnt[4] != 3 {
		t.Fatalf("compact left tailCnt=%d", s.tailCnt[4])
	}
}

func TestCompactEmptiesFullyDeletedVertex(t *testing.T) {
	s, _, _, ctx := testStore(t)
	s.Append(ctx, 5, []uint32{9})
	s.Append(ctx, 5, []uint32{9 | graph.DelFlag})
	if err := s.Compact(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if got := s.Neighbors(ctx, 5, nil); len(got) != 0 {
		t.Fatalf("after full delete: %v", got)
	}
}

func TestRecoverRebuildsChains(t *testing.T) {
	s, r, _, ctx := testStore(t)
	want := map[graph.VID][]uint32{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		v := graph.VID(rng.Intn(50))
		nbr := rng.Uint32() >> 1
		if err := s.Append(ctx, v, []uint32{nbr}); err != nil {
			t.Fatal(err)
		}
		want[v] = append(want[v], nbr)
	}
	// Crash: all DRAM state is lost; rebuild from the region alone.
	rs, err := Recover(ctx, r, s.lat, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Blocks() != s.Blocks() || rs.Bytes() != s.Bytes() {
		t.Fatalf("recovered blocks=%d bytes=%d, want %d/%d", rs.Blocks(), rs.Bytes(), s.Blocks(), s.Bytes())
	}
	for v, w := range want {
		if got := rs.Neighbors(ctx, v, nil); !equalMultiset(got, w) {
			t.Fatalf("vertex %d: recovered %d nbrs, want %d", v, len(got), len(w))
		}
		if rs.Records(v) != s.Records(v) {
			t.Fatalf("vertex %d: records %d vs %d", v, rs.Records(v), s.Records(v))
		}
	}
}

// Property: Append then Neighbors is a multiset identity under random
// interleavings of vertices and batch sizes.
func TestAppendNeighborsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := xpsim.NewMachine(1, 32<<20, xpsim.DefaultLatency())
		h := pmem.NewHeap(m)
		r, err := h.Map("p", 8<<20, pmem.Placement{Kind: pmem.Bind, Node: 0})
		if err != nil {
			return false
		}
		s := New(r, &m.Lat, 8, Options{})
		ctx := xpsim.NewCtx(0)
		want := map[graph.VID][]uint32{}
		for i := 0; i < 120; i++ {
			v := graph.VID(rng.Intn(8))
			n := rng.Intn(70) + 1
			nbrs := make([]uint32, n)
			for j := range nbrs {
				nbrs[j] = rng.Uint32() >> 1
			}
			if err := s.Append(ctx, v, nbrs); err != nil {
				return false
			}
			want[v] = append(want[v], nbrs...)
		}
		for v, w := range want {
			if !equalMultiset(s.Neighbors(ctx, v, nil), w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedFlushCheaperThanPerEdge(t *testing.T) {
	// The core XPGraph claim (§III-B): flushing 63 buffered neighbors in
	// one contiguous write costs far less PMEM traffic than 63 separate
	// single-neighbor appends across many vertices.
	m := xpsim.NewMachine(1, 64<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	r, _ := h.Map("a", 32<<20, pmem.Placement{Kind: pmem.Bind, Node: 0})
	s := New(r, &m.Lat, 4096, Options{})
	ctx := xpsim.NewCtx(0)

	// Scattered: one neighbor to each of 63*64 distinct vertices.
	m.ResetStats()
	scattered := xpsim.NewCtx(0)
	for round := 0; round < 64; round++ {
		for v := graph.VID(0); v < 63; v++ {
			s.Append(scattered, v+graph.VID(round)*63, []uint32{1})
		}
	}
	scatterWrites := m.TotalStats().MediaWriteBytes()

	// Batched: the same edge count, 63 at a time.
	m.ResetStats()
	batched := xpsim.NewCtx(0)
	nbrs := make([]uint32, 63)
	for round := 0; round < 64; round++ {
		s.Append(batched, 5000, nbrs)
	}
	batchWrites := m.TotalStats().MediaWriteBytes()
	_ = ctx

	if batchWrites*2 > scatterWrites {
		t.Errorf("batched media writes %d vs scattered %d; want >=2x reduction", batchWrites, scatterWrites)
	}
	if batched.Cost.Ns()*2 > scattered.Cost.Ns() {
		t.Errorf("batched cost %dns vs scattered %dns; want >=2x cheaper", batched.Cost.Ns(), scattered.Cost.Ns())
	}
}

func TestCompactRecyclesBlocks(t *testing.T) {
	s, _, _, ctx := testStore(t)
	for i := uint32(0); i < 200; i++ {
		if err := s.Append(ctx, 1, []uint32{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(ctx, 1); err != nil {
		t.Fatal(err)
	}
	base := s.Mem().AllocBytes()
	// Repeated compaction of the same content must reuse the freed
	// exact-size block instead of growing the arena.
	for round := 0; round < 5; round++ {
		if err := s.Compact(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	if grew := s.Mem().AllocBytes() - base; grew != 0 {
		t.Fatalf("repeated compaction leaked %d arena bytes", grew)
	}
	got := s.Neighbors(ctx, 1, nil)
	if len(got) != 200 {
		t.Fatalf("after compactions: %d nbrs, want 200", len(got))
	}
}

func TestRecoverSkipsDeadBlocks(t *testing.T) {
	s, r, _, ctx := testStore(t)
	for i := uint32(0); i < 100; i++ {
		s.Append(ctx, 2, []uint32{i})
		s.Append(ctx, 3, []uint32{i + 1000})
	}
	if err := s.Compact(ctx, 2); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(ctx, r, s.lat, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Neighbors(ctx, 2, nil); len(got) != 100 {
		t.Fatalf("recovered vertex 2: %d nbrs, want 100 (dead blocks must not resurrect)", len(got))
	}
	if got := rs.Neighbors(ctx, 3, nil); len(got) != 100 {
		t.Fatalf("recovered vertex 3: %d nbrs, want 100", len(got))
	}
	// The recovered store keeps recycling the dead blocks.
	if len(rs.freeBlocks) == 0 {
		t.Fatal("recovered store lost the free-block lists")
	}
}

func TestRecoverAfterRecycleReorder(t *testing.T) {
	// Regression: a compacted vertex reuses a low-offset dead block, so
	// its chain is NOT offset-ordered; recovery must find the tail via
	// prev-links, not arena order.
	s, r, _, ctx := testStore(t)
	// Vertex 1 builds a chain, then compacts (freeing its blocks).
	for i := uint32(0); i < 100; i++ {
		s.Append(ctx, 1, []uint32{i})
	}
	if err := s.Compact(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Vertex 2 appends, compacts into a REUSED low-offset block, then
	// appends more so its tail is a fresh high-offset block... and then
	// compacts vertex 2 again so its single block is recycled and its
	// chain grows from a low offset.
	for i := uint32(0); i < 100; i++ {
		s.Append(ctx, 2, []uint32{1000 + i})
	}
	if err := s.Compact(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 50; i++ {
		s.Append(ctx, 2, []uint32{2000 + i})
	}
	want2 := s.Neighbors(ctx, 2, nil)

	rs, err := Recover(ctx, r, s.lat, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := rs.Neighbors(ctx, 2, nil)
	if !equalMultiset(got, want2) {
		t.Fatalf("recovered vertex 2: %d records, want %d", len(got), len(want2))
	}
	if rs.Records(2) != len(want2) {
		t.Fatalf("records = %d, want %d", rs.Records(2), len(want2))
	}
}

func TestVisitAndOldestFirst(t *testing.T) {
	s, _, _, ctx := testStore(t)
	var want []uint32
	for i := uint32(0); i < 300; i++ {
		s.Append(ctx, 7, []uint32{i})
		want = append(want, i)
	}
	var visited []uint32
	s.Visit(ctx, 7, func(n uint32) { visited = append(visited, n) })
	if !equalMultiset(visited, want) {
		t.Fatalf("Visit yielded %d records, want %d", len(visited), len(want))
	}
	old := s.NeighborsOldestFirst(ctx, 7, nil)
	if len(old) != len(want) {
		t.Fatalf("oldest-first %d records", len(old))
	}
	for i := range want {
		if old[i] != want[i] {
			t.Fatalf("oldest-first out of order at %d: %d != %d", i, old[i], want[i])
		}
	}
	// Out-of-range vertices are no-ops.
	s.Visit(ctx, 9999, func(uint32) { t.Fatal("visited missing vertex") })
	if got := s.NeighborsOldestFirst(ctx, 9999, nil); len(got) != 0 {
		t.Fatal("missing vertex has records")
	}
}

func TestReserveAndSizings(t *testing.T) {
	s, _, _, ctx := testStore(t)
	if err := s.Reserve(ctx, 3, 10); err != nil {
		t.Fatal(err)
	}
	blocks := s.Blocks()
	// Space already reserved: appending 10 must not allocate again.
	if err := s.Append(ctx, 3, make([]uint32, 10)); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != blocks {
		t.Fatal("Append allocated despite Reserve")
	}
	if err := s.Reserve(ctx, 3, 5); err != nil { // tail has only 2 free
		t.Fatal(err)
	}
	if s.Blocks() != blocks+1 {
		t.Fatal("Reserve beyond the tail's free space must allocate")
	}
	if s.NumVertices() == 0 {
		t.Fatal("NumVertices")
	}
	// GraphOneSizing doubles with degree and respects floors/caps.
	if GraphOneSizing(0, 1) != 4 || GraphOneSizing(5, 1) != 8 ||
		GraphOneSizing(100, 1) != 128 || GraphOneSizing(5000, 1) != 1024 ||
		GraphOneSizing(0, 50) != 50 {
		t.Fatal("GraphOneSizing shape wrong")
	}
}

func TestVolatileCountsVisit(t *testing.T) {
	s, _, _, ctx := testStore(t)
	s.opts.VolatileCounts = true
	// Fill past one block so retired-full and partial paths both run.
	for i := uint32(0); i < 30; i++ {
		s.Append(ctx, 1, []uint32{i})
	}
	s.Reserve(ctx, 1, 25) // retire a partial tail
	s.Append(ctx, 1, []uint32{999})
	var got []uint32
	s.Visit(ctx, 1, func(n uint32) { got = append(got, n) })
	if len(got) != 31 {
		t.Fatalf("volatile-count visit = %d records, want 31", len(got))
	}
}
