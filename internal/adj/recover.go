package adj

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/xpsim"
)

// RecoverableMem is the extra surface recovery needs: where the arena
// starts and how far it had grown before the crash.
type RecoverableMem interface {
	mem.Mem
	PersistedAllocOffset(ctx *xpsim.Ctx) int64
	UserStart() int64
}

// rewindableMem lets recovery give back an arena suffix that turned out
// to be garbage (pmem.Region implements it).
type rewindableMem interface {
	RewindAlloc(ctx *xpsim.Ctx, off int64)
}

// rawBlock is one parsed arena entry during recovery.
type rawBlock struct {
	off        int64
	vid        uint32
	capacity   uint32
	prev       int64
	format     uint8
	cnt0, cnt1 uint32
	crc0, crc1 uint32
}

// cntPlausible checks a count slot against the block's structural bound:
// fixed blocks hold at most cap records, varint blocks at most 4*cap
// (a record is at least one byte of the 4*cap-byte payload).
func (b *rawBlock) cntPlausible(cnt uint32) bool {
	if b.format == fmtVarint {
		return uint64(cnt) <= 4*uint64(b.capacity)
	}
	return cnt <= b.capacity
}

// maxScanVID bounds plausible vertex IDs during the arena scan. A header
// whose media lines rotted to pseudo-random garbage can pass the count
// sanity checks with a huge vid; indexing it verbatim would allocate
// per-vertex slices for billions of vertices. Anything above this bound is
// treated as corruption, like a zero capacity.
const maxScanVID = 1 << 28

func (b *rawBlock) size() int64 { return headerBytes + 4*int64(b.capacity) }

// Recover rebuilds the DRAM index (tails, counts, degrees) by scanning
// the arena sequentially from its start to the persisted allocation
// pointer. Chains come back because each block persists its prev link;
// the tail of a chain is the one block no other block points to (offset
// order is not enough once compaction recycles blocks).
//
// slot selects which persisted count slot is authoritative — the slot the
// edge log's flushed cursor carried at the crash (elog.AckSlot). For
// CrashSafe stores the scan additionally: completes an armed compaction
// journal (roll-forward), treats an unparsable header as the frontier of
// writes that never became durable (truncating and durably zeroing the
// garbage suffix so a later recovery cannot misparse it), remembers
// partially-visible retired blocks, and queues blocks with disagreeing
// slots for re-acknowledgment.
func Recover(ctx *xpsim.Ctx, m RecoverableMem, lat *xpsim.LatencyModel, opts Options, slot int) (*Store, error) {
	return RecoverWith(ctx, m, lat, opts, slot, nil)
}

// RecoverWith is Recover with a quarantine set: block offsets whose media
// was damaged and routed around by a scrub before the crash. Quarantined
// blocks carry valid dead headers (ReplaceChain rewrote them), so the scan
// parses straight over them — but they must never re-enter the free lists,
// or the allocator would hand known-bad lines to fresh data.
//
// With opts.Checksums the scan additionally rebuilds the DRAM checksum
// mirrors from the acknowledged {cnt, crc} slot words and recomputes every
// live block's payload CRC from the media: vertices whose stored bytes
// disagree with what was acknowledged are reported via Store.Suspects —
// corruption that happened while the store was down, caught before any
// read can serve it.
func RecoverWith(ctx *xpsim.Ctx, m RecoverableMem, lat *xpsim.LatencyModel, opts Options, slot int, quarantined map[int64]bool) (*Store, error) {
	if opts.VolatileCounts {
		return nil, fmt.Errorf("adj: stores with volatile counts are not scan-recoverable (GraphOne recovers by re-archiving)")
	}
	if opts.DeferCounts {
		return nil, fmt.Errorf("adj: stores with deferred counts are not scan-recoverable (battery-backed DRAM keeps them)")
	}
	if slot != 0 && slot != 1 {
		return nil, fmt.Errorf("adj: bad count slot %d", slot)
	}
	s := New(m, lat, 0, opts)
	end := m.PersistedAllocOffset(ctx)
	if end < m.UserStart() || end > m.Size() {
		return nil, fmt.Errorf("adj: corrupt allocation pointer %d (arena is [%d,%d])", end, m.UserStart(), m.Size())
	}

	// Pass 1: parse the arena.
	var raw []rawBlock
	off := align(m.UserStart(), headerAlign)
	stop := int64(-1)
	for off+headerBytes <= end {
		var hdr [headerBytes]byte
		m.Read(ctx, off, hdr[:])
		fmtWord := binary.LittleEndian.Uint32(hdr[offFmt:])
		b := rawBlock{
			off:      off,
			vid:      binary.LittleEndian.Uint32(hdr[offVID:]),
			capacity: binary.LittleEndian.Uint32(hdr[offCap:]),
			prev:     int64(binary.LittleEndian.Uint32(hdr[offPrev:])) * headerAlign,
			format:   uint8(fmtWord),
			cnt0:     binary.LittleEndian.Uint32(hdr[offCnt0:]),
			cnt1:     binary.LittleEndian.Uint32(hdr[offCnt1:]),
			crc0:     binary.LittleEndian.Uint32(hdr[offCRC0:]),
			crc1:     binary.LittleEndian.Uint32(hdr[offCRC1:]),
		}
		// A dead block's count slots are never authoritative, and they can
		// legitimately look implausible mid-kill: killBlock's fresh header
		// can straddle two XPLines, so a crash can leave vid=deadVID (and a
		// zeroed fmt word) durable while the previous owner's counts — a
		// varint count read against the fixed bound — survive in the second
		// line. Skip the count checks for dead blocks instead of treating
		// the whole suffix as garbage; pass 3 finishes the kill.
		cntOK := b.vid == deadVID || (b.cntPlausible(b.cnt0) && b.cntPlausible(b.cnt1))
		if b.capacity == 0 || off+b.size() > end || fmtWord > fmtVarint || !cntOK ||
			(b.vid > maxScanVID && b.vid != deadVID && b.vid != journalVID) {
			if opts.CrashSafe {
				stop = off
				break
			}
			return nil, fmt.Errorf("adj: corrupt block header at %d (cap=%d)", off, b.capacity)
		}
		raw = append(raw, b)
		off = align(off+b.size(), headerAlign)
	}
	if stop >= 0 {
		// Everything past stop was allocated after the last writeback
		// barrier and never became durably reachable: it holds no
		// acknowledged records. Zero it (so a later recovery cannot parse
		// leftover bytes as a block) and hand it back to the allocator.
		zero := make([]byte, end-stop)
		m.Write(ctx, stop, zero)
		m.Flush(ctx, stop, end-stop)
		if rw, ok := m.(rewindableMem); ok {
			rw.RewindAlloc(ctx, stop)
		}
		end = stop
	}

	// Pass 2: complete an armed compaction journal.
	if err := s.journalRollForward(ctx, m, raw); err != nil {
		return nil, err
	}

	// Pass 3: build the index.
	type blk struct {
		off      int64
		prev     int64
		cnt, cap uint32
		crc      uint32
		format   uint8
		mismatch bool
	}
	live := make(map[graph.VID][]blk)
	pointedTo := make(map[int64]int)
	for i := range raw {
		b := &raw[i]
		switch b.vid {
		case deadVID:
			if quarantined[b.off] {
				// Quarantined media with a scrub-written dead header:
				// parseable, never reusable.
				continue
			}
			if opts.CrashSafe && (b.cnt0 != 0 || b.cnt1 != 0 || b.prev != 0) {
				// Mid-kill: the dead vid became durable but the slot zeroing
				// did not. Finish the kill before recycling — newBlock relies
				// on recycled blocks having durably zeroed count slots so a
				// torn reuse header can never resurrect stale counts.
				s.killBlock(ctx, b.off, int(b.capacity))
				continue
			}
			// Recycled block awaiting reuse: skip, but remember it so
			// the recovered store keeps recycling.
			s.recycle(b.off, int(b.capacity))
			continue
		case journalVID:
			continue // already recorded by journalRollForward
		}
		visible, crc := b.cnt0, b.crc0
		if opts.CrashSafe && slot == 1 {
			visible, crc = b.cnt1, b.crc1
		}
		v := graph.VID(b.vid)
		s.EnsureVertices(v + 1)
		live[v] = append(live[v], blk{off: b.off, prev: b.prev, cnt: visible, cap: b.capacity, crc: crc, format: b.format, mismatch: b.cnt0 != b.cnt1})
		if b.prev != 0 {
			pointedTo[b.prev]++
		}
	}
	// Deterministic vertex order: pruning below writes to the device, and
	// map iteration order must not leak into simulated cache state.
	vids := make([]graph.VID, 0, len(live))
	for v := range live {
		vids = append(vids, v)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, v := range vids {
		blks := live[v]
		tails := 0
		for _, b := range blks {
			if pointedTo[b.off] == 0 {
				tails++
			}
		}
		for opts.CrashSafe && tails > 1 {
			// More than one chain end means some block's prev link never
			// became durable — a tail allocated right before the crash,
			// torn mid-header. Such a block cannot hold acknowledged
			// records: a count slot only becomes authoritative through a
			// flush commit, which orders after the barrier that made the
			// whole header (prev included) durable. So every zero-visible
			// dangling block is droppable; kill it durably and rescan (the
			// drop can expose another dangler it pointed to).
			dropped := false
			kept := blks[:0]
			for _, b := range blks {
				if pointedTo[b.off] == 0 && b.cnt == 0 {
					s.killBlock(ctx, b.off, int(b.cap))
					if b.prev != 0 {
						pointedTo[b.prev]--
					}
					dropped = true
					tails--
					continue
				}
				kept = append(kept, b)
			}
			blks = kept
			if !dropped {
				break
			}
			tails = 0
			for _, b := range blks {
				if pointedTo[b.off] == 0 {
					tails++
				}
			}
		}
		live[v] = blks
		if len(blks) == 0 {
			continue
		}
		for _, b := range blks {
			s.records[v] += b.cnt
			s.blocks++
			s.bytes += headerBytes + 4*int64(b.cap)
			if pointedTo[b.off] == 0 {
				s.tail[v] = b.off
				s.tailCnt[v] = b.cnt
				s.tailCap[v] = b.cap
				s.tailFmt[v] = b.format
				if b.format == fmtVarint && b.cnt > 0 {
					// Rebuild the append cursor (byte extent + delta
					// predecessor) by decoding the acknowledged records. The
					// count slot only became authoritative after the barrier
					// that persisted those payload bytes, so a decode failure
					// here is real corruption: fatal without Checksums; with
					// Checksums keep a best-effort cursor and let the CRC
					// walk below flag the vertex as suspect.
					vr := newVarintReader(func(o int64, p []byte) error {
						m.Read(ctx, o, p)
						return nil
					}, b.off+headerBytes, 4*int64(b.cap), false)
					var decErr error
					for i := uint32(0); i < b.cnt; i++ {
						if _, decErr = vr.next(); decErr != nil {
							break
						}
					}
					if decErr != nil && !opts.Checksums {
						return nil, fmt.Errorf("adj: vertex %d varint tail at %d undecodable: %v", v, b.off, decErr)
					}
					s.tailBytes[v] = uint32(vr.bytesConsumed())
					s.lastVal[v] = vr.last()
				}
			}
		}
		if tails != 1 {
			return nil, fmt.Errorf("adj: vertex %d chain has %d tails (corrupt prev links)", v, tails)
		}
		if !opts.CrashSafe {
			continue
		}
		if opts.Checksums {
			// Rebuild the DRAM mirrors from the acknowledged slot words —
			// never from recomputed media bytes, which would launder any
			// corruption into a self-consistent mirror. Then recompute each
			// payload's CRC from the media and flag disagreements.
			if s.crc == nil {
				s.crc = make(map[int64]uint32)
				s.caps = make(map[int64]uint32)
				s.chains = make(map[graph.VID][]int64)
			}
			byOff := make(map[int64]blk, len(blks))
			for _, b := range blks {
				byOff[b.off] = b
			}
			var chain []int64
			suspect := false
			for off := s.tail[v]; off != 0; {
				b, ok := byOff[off]
				if !ok {
					return nil, fmt.Errorf("adj: vertex %d chain prev link to unknown block %d", v, off)
				}
				chain = append(chain, off)
				s.caps[off] = b.cap
				s.crc[off] = b.crc
				if b.cnt > 0 && !suspect {
					if b.format == fmtVarint {
						vr := newVarintReader(func(o int64, p []byte) error {
							m.Read(ctx, o, p)
							return nil
						}, off+headerBytes, 4*int64(b.cap), true)
						decoded := true
						for i := uint32(0); i < b.cnt; i++ {
							if _, err := vr.next(); err != nil {
								decoded = false
								break
							}
						}
						if !decoded || vr.sum() != b.crc {
							suspect = true
						}
					} else {
						buf := make([]byte, 4*b.cnt)
						m.Read(ctx, off+headerBytes, buf)
						if crc32.Checksum(buf, castagnoli) != b.crc {
							suspect = true
						}
					}
				}
				off = b.prev
			}
			s.chains[v] = chain
			if suspect {
				s.suspects = append(s.suspects, v)
			}
		}
		for _, b := range blks {
			if b.off != s.tail[v] && b.cnt != b.cap {
				// Retired with a count differing from capacity — a fixed
				// block retired before filling up, or any varint block
				// (whose record count is unrelated to cap): pin the visible
				// count so reads stop at it.
				if s.partialCnt == nil {
					s.partialCnt = make(map[int64]uint32)
				}
				s.partialCnt[b.off] = b.cnt
			}
			if b.mismatch {
				// One slot is stale; make sure the next Ack rewrites it
				// even if no new records arrive for this block.
				if s.pendPrev == nil {
					s.pendPrev = make(map[int64]uint32)
				}
				s.pendPrev[b.off] = b.cnt
			}
		}
	}
	return s, nil
}

// journalRollForward finds the compaction journal among the scanned
// blocks and, if it is armed, idempotently finishes the interrupted
// compaction: commit the staged block, kill every other block of the
// vertex, disarm. It mutates raw in place to match the media.
func (s *Store) journalRollForward(ctx *xpsim.Ctx, m RecoverableMem, raw []rawBlock) error {
	ji := -1
	for i := range raw {
		if raw[i].vid == journalVID {
			if ji >= 0 {
				return fmt.Errorf("adj: two compaction journals (at %d and %d)", raw[ji].off, raw[i].off)
			}
			ji = i
		}
	}
	if ji < 0 {
		return nil
	}
	s.journal = raw[ji].off
	wA := s.journal + headerBytes
	wordA := mem.ReadU64(m, ctx, wA)
	wordB := mem.ReadU64(m, ctx, wA+8)
	if wordB>>32 != journalMagic {
		return nil // not armed: the old chain is authoritative
	}
	v := uint32(wordA)
	newOff := int64(wordA>>32) * headerAlign
	if !s.opts.CrashSafe {
		return fmt.Errorf("adj: armed compaction journal for vertex %d but store is not CrashSafe", v)
	}
	committed := false
	for i := range raw {
		b := &raw[i]
		switch {
		case newOff != 0 && b.off == newOff:
			if b.vid != v && b.vid != deadVID {
				return fmt.Errorf("adj: journal for vertex %d points at block owned by %d", v, b.vid)
			}
			mem.WriteU32(m, ctx, b.off+offVID, v)
			m.Flush(ctx, b.off, headerBytes)
			b.vid = v
			committed = true
		case b.vid == v:
			// Old-chain survivor: finish the kill.
			s.killBlock(ctx, b.off, int(b.capacity))
			// recycle() already queued it; pass 3 must see it dead but
			// must not queue it twice, so rewrite the raw entry and pull
			// it back out of the free list (pass 3 re-adds it).
			lst := s.freeBlocks[int(b.capacity)]
			s.freeBlocks[int(b.capacity)] = lst[:len(lst)-1]
			b.vid = deadVID
			b.prev = 0
			b.cnt0, b.cnt1 = 0, 0
		}
	}
	if newOff != 0 && !committed {
		return fmt.Errorf("adj: journal for vertex %d points at missing block %d", v, newOff)
	}
	mem.WriteU64(m, ctx, wA+8, 0)
	m.Flush(ctx, wA+8, 8)
	return nil
}
