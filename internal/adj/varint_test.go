package adj

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func TestZigzagRoundTrip(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64,
		int64(math.MaxUint32), -int64(math.MaxUint32)} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag round trip: %d -> %d", d, got)
		}
	}
	if err := quick.Check(func(d int64) bool { return unzigzag(zigzag(d)) == d }, nil); err != nil {
		t.Fatal(err)
	}
}

// decodeAll decodes cnt records from a raw payload slice.
func decodeAll(t *testing.T, payload []byte, cnt int) []uint32 {
	t.Helper()
	vr := newVarintReader(func(off int64, p []byte) error {
		copy(p, payload[off:off+int64(len(p))])
		return nil
	}, 0, int64(len(payload)), false)
	out := make([]uint32, 0, cnt)
	for i := 0; i < cnt; i++ {
		v, err := vr.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		out = append(out, v)
	}
	return out
}

func TestVarintEncodeDecodeRun(t *testing.T) {
	vals := []uint32{0, 1, math.MaxUint32, 5, 5, 1 << 30, 7, graph.DelFlag | 123}
	enc := encodeVarintRun(nil, 0, vals)
	got := decodeAll(t, enc, len(vals))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("record %d: got %d, want %d", i, got[i], vals[i])
		}
	}
	// Sorted small-delta runs must beat 4 bytes/record — the density claim.
	sortedRun := make([]uint32, 1000)
	for i := range sortedRun {
		sortedRun[i] = uint32(i * 3)
	}
	enc = encodeVarintRun(nil, 0, sortedRun)
	if len(enc) >= 4*len(sortedRun)/2 {
		t.Fatalf("sorted run encoded to %d bytes, expected < %d", len(enc), 4*len(sortedRun)/2)
	}
}

func varintStore(t *testing.T, opts Options) (*Store, *pmem.Region, *xpsim.Ctx) {
	t.Helper()
	opts.VarintBlocks = true
	_, r, m, ctx := testStore(t)
	return New(r, &m.Lat, 16, opts), r, ctx
}

func TestVarintAppendAndRead(t *testing.T) {
	s, _, ctx := varintStore(t, Options{})
	// Descending and jumping values: negative deltas, large zigzags.
	want := []uint32{100, 7, math.MaxUint32, 0, 50, 49, 48, 1 << 31}
	for _, v := range want {
		if err := s.Append(ctx, 3, []uint32{v}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NeighborsOldestFirst(ctx, 3, nil); !equalU32s(got, want) {
		t.Fatalf("oldest-first = %v, want %v", got, want)
	}
	if got := s.Neighbors(ctx, 3, nil); !equalMultiset(got, want) {
		t.Fatalf("neighbors = %v", got)
	}
	if s.Records(3) != len(want) {
		t.Fatalf("records = %d", s.Records(3))
	}
	if st := s.Encoding(); st.VarintRecords != int64(len(want)) || st.VarintBytes == 0 {
		t.Fatalf("encoding stats = %+v", st)
	}
}

func TestVarintChainAcrossBlocks(t *testing.T) {
	s, _, ctx := varintStore(t, Options{})
	rng := rand.New(rand.NewSource(42))
	var want []uint32
	for i := 0; i < 2000; i++ {
		v := uint32(rng.Int63())
		want = append(want, v)
		if err := s.Append(ctx, 1, []uint32{v}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Blocks() < 2 {
		t.Fatalf("expected multiple blocks, got %d", s.Blocks())
	}
	if got := s.NeighborsOldestFirst(ctx, 1, nil); !equalU32s(got, want) {
		t.Fatalf("%d neighbors back, want %d (order-preserving)", len(got), len(want))
	}
	visited := 0
	s.Visit(ctx, 1, func(uint32) { visited++ })
	if visited != len(want) {
		t.Fatalf("visit count = %d, want %d", visited, len(want))
	}
}

func TestMixedFormatChain(t *testing.T) {
	s, r, _, ctx := testStore(t)
	var want []uint32
	for i := uint32(0); i < 100; i++ {
		want = append(want, i*7)
		if err := s.Append(ctx, 5, []uint32{i * 7}); err != nil {
			t.Fatal(err)
		}
	}
	// Flip the store to varint mid-stream: the fixed tail keeps filling,
	// then fresh blocks come up varint — one chain, two formats.
	s.opts.VarintBlocks = true
	for i := uint32(0); i < 300; i++ {
		v := uint32(1<<24) - i
		want = append(want, v)
		if err := s.Append(ctx, 5, []uint32{v}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Encoding()
	if st.FixedRecords == 0 || st.VarintRecords == 0 {
		t.Fatalf("expected both formats in use: %+v", st)
	}
	if got := s.NeighborsOldestFirst(ctx, 5, nil); !equalU32s(got, want) {
		t.Fatalf("mixed chain read back %d records, want %d", len(got), len(want))
	}

	// The mixed chain must scan-recover, and the recovered varint tail must
	// keep appending (byte cursor + delta predecessor rebuilt from media).
	rs, err := Recover(ctx, r, s.lat, Options{VarintBlocks: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.NeighborsOldestFirst(ctx, 5, nil); !equalU32s(got, want) {
		t.Fatalf("recovered mixed chain mismatch: %d records, want %d", len(got), len(want))
	}
	more := []uint32{1, math.MaxUint32, 2, 2}
	if err := rs.Append(ctx, 5, more); err != nil {
		t.Fatal(err)
	}
	want = append(want, more...)
	if got := rs.NeighborsOldestFirst(ctx, 5, nil); !equalU32s(got, want) {
		t.Fatalf("post-recovery append mismatch: got %d records, want %d", len(got), len(want))
	}
}

func TestVarintCompactSortsAndResolves(t *testing.T) {
	s, _, ctx := varintStore(t, Options{})
	if err := s.Append(ctx, 1, []uint32{30, 10, 20, 10, 40}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(ctx, 1, []uint32{10 | graph.DelFlag}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(ctx, 1); err != nil {
		t.Fatal(err)
	}
	got := s.NeighborsOldestFirst(ctx, 1, nil)
	want := []uint32{10, 20, 30, 40} // sorted run, one tombstone resolved
	if !equalU32s(got, want) {
		t.Fatalf("compacted = %v, want %v", got, want)
	}
	if s.Records(1) != len(want) {
		t.Fatalf("records = %d", s.Records(1))
	}
}

func TestVarintCompactDensity(t *testing.T) {
	s, _, ctx := varintStore(t, Options{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		if err := s.Append(ctx, 2, []uint32{uint32(rng.Intn(1 << 16))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(ctx, 2); err != nil {
		t.Fatal(err)
	}
	lay := s.Layout(ctx)
	if lay.Records != 3000 {
		t.Fatalf("layout records = %d", lay.Records)
	}
	// A compacted sorted run over a dense value range must beat the fixed
	// encoding's 4 bytes/record.
	if lay.PayloadBytes*2 >= lay.Records*4 {
		t.Fatalf("compacted varint payload %d bytes for %d records — no density win", lay.PayloadBytes, lay.Records)
	}
}

func TestVarintRecoverTailCursor(t *testing.T) {
	opts := Options{VarintBlocks: true}
	s, r, ctx := varintStore(t, Options{})
	rng := rand.New(rand.NewSource(9))
	var want []uint32
	for i := 0; i < 700; i++ {
		v := uint32(rng.Int63())
		want = append(want, v)
		if err := s.Append(ctx, 4, []uint32{v}); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := Recover(ctx, r, s.lat, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.NeighborsOldestFirst(ctx, 4, nil); !equalU32s(got, want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	// Appends after recovery continue the tail's delta chain; a wrong byte
	// cursor or predecessor would garble every value from here on.
	for i := 0; i < 100; i++ {
		v := uint32(rng.Int63())
		want = append(want, v)
		if err := rs.Append(ctx, 4, []uint32{v}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rs.NeighborsOldestFirst(ctx, 4, nil); !equalU32s(got, want) {
		t.Fatalf("post-recovery appends garbled: got %d records, want %d", len(got), len(want))
	}
}

func TestVarintChecksumsDetectCorruption(t *testing.T) {
	opts := Options{CrashSafe: true, Checksums: true}
	s, r, ctx := varintStore(t, opts)
	rng := rand.New(rand.NewSource(11))
	var want []uint32
	for i := 0; i < 400; i++ {
		v := uint32(rng.Int63())
		want = append(want, v)
		if err := s.Append(ctx, 6, []uint32{v}); err != nil {
			t.Fatal(err)
		}
	}
	s.Ack(ctx, 0)
	if err := s.VerifyChain(ctx, 6); err != nil {
		t.Fatalf("clean chain: %v", err)
	}
	got, err := s.NeighborsChecked(ctx, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMultiset(got, want) {
		t.Fatalf("checked read %d records, want %d", len(got), len(want))
	}

	// Flip one payload byte of the oldest block behind the store's back.
	spans := s.ChainSpans(6)
	off := spans[len(spans)-1][0] + headerBytes
	var b [1]byte
	r.Read(ctx, off, b[:])
	b[0] ^= 0xFF
	r.Write(ctx, off, b[:])

	var ce *CorruptError
	if err := s.VerifyChain(ctx, 6); !errors.As(err, &ce) {
		t.Fatalf("VerifyChain after corruption = %v, want CorruptError", err)
	}
	if _, err := s.NeighborsOldestFirstChecked(ctx, 6, nil); !errors.As(err, &ce) {
		t.Fatalf("checked read after corruption = %v, want CorruptError", err)
	}

	// Recovery recomputes payload CRCs: the vertex must come back suspect.
	rs, err := RecoverWith(ctx, r, s.lat, Options{CrashSafe: true, Checksums: true, VarintBlocks: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rs.Suspects() {
		if v == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("suspects = %v, want vertex 6", rs.Suspects())
	}
}

func TestVarintReplaceChainRoundTrip(t *testing.T) {
	s, _, ctx := varintStore(t, Options{CrashSafe: true, Checksums: true})
	recs := []uint32{9, 2, 2 | graph.DelFlag, 100, 3} // tombstones stay, order kept
	if err := s.Append(ctx, 8, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	s.Ack(ctx, 0)
	if _, err := s.ReplaceChain(ctx, 8, recs); err != nil {
		t.Fatal(err)
	}
	got, err := s.NeighborsOldestFirstChecked(ctx, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32s(got, recs) {
		t.Fatalf("replaced chain = %v, want %v (as given)", got, recs)
	}
	if err := s.VerifyChain(ctx, 8); err != nil {
		t.Fatal(err)
	}
}

func equalU32s(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzVarintBlockDecode throws arbitrary payload bytes at the streaming
// decoder: truncated streams, overlong varints, and deltas that walk
// outside uint32 must all surface as errVarintCorrupt, never a panic or an
// out-of-bounds read, and whatever does decode must survive a re-encode
// round trip.
func FuzzVarintBlockDecode(f *testing.F) {
	f.Add(encodeVarintRun(nil, 0, []uint32{0, 1, math.MaxUint32, 5, 5}), uint32(5))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, uint32(1)) // overlong varint
	f.Add([]byte{0xFE, 0xFF, 0xFF, 0xFF, 0x1F}, uint32(2))       // max delta then truncation
	f.Add([]byte{0x01}, uint32(1))                               // delta -1 from 0: underflow
	f.Add([]byte{}, uint32(3))                                   // records claimed, no bytes
	f.Fuzz(func(t *testing.T, payload []byte, cnt uint32) {
		cnt %= 1 << 12
		end := int64(len(payload))
		vr := newVarintReader(func(off int64, p []byte) error {
			copy(p, payload[off:off+int64(len(p))])
			return nil
		}, 0, end, true)
		var vals []uint32
		for i := uint32(0); i < cnt; i++ {
			v, err := vr.next()
			if err != nil {
				if !errors.Is(err, errVarintCorrupt) {
					t.Fatalf("decode error %v, want errVarintCorrupt", err)
				}
				break
			}
			vals = append(vals, v)
		}
		if vr.bytesConsumed() > end {
			t.Fatalf("consumed %d of %d payload bytes", vr.bytesConsumed(), end)
		}
		vr.sum() // must not panic regardless of decode outcome
		if len(vals) > 0 {
			enc := encodeVarintRun(nil, 0, vals)
			vr2 := newVarintReader(func(off int64, p []byte) error {
				copy(p, enc[off:off+int64(len(p))])
				return nil
			}, 0, int64(len(enc)), false)
			for i, want := range vals {
				got, err := vr2.next()
				if err != nil || got != want {
					t.Fatalf("re-encode round trip record %d: got %d/%v, want %d", i, got, err, want)
				}
			}
		}
	})
}
