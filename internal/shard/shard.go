// Package shard implements the edge-sharding approach both stores use for
// load-balanced multi-threaded archiving (§IV-A, inherited from GraphOne):
// a batch of edges is split into many ranged edge lists keyed by vertex ID
// range — more lists than threads — and lists are assigned to workers
// greedily by size so every worker gets an approximately equal number of
// edges while staying free of atomics.
//
// The same idea generalized one level up is the cluster partition map
// (SlotMap): vertex IDs hash onto a fixed ring of slots — more slots than
// shards — and slots map to shard stores. Because both the hash and the
// slot table are pure functions of (vertex, slot count, shard count), the
// assignment is stable across process restarts and across reconfigurations
// that preserve the shard count; internal/cluster routes every edge and
// every read through it.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Entry is one (vertex, neighbor) update routed to a worker. Nbr may carry
// graph.DelFlag.
type Entry struct {
	V   graph.VID
	Nbr uint32
}

// RangesPerWorker is how many ranged lists are created per worker, so the
// greedy assignment can balance skewed batches.
const RangesPerWorker = 4

// Width returns the vertex-range width that splits numV vertices into
// nRanges ranges.
func Width(numV int64, nRanges int) int64 {
	w := (numV + int64(nRanges) - 1) / int64(nRanges)
	if w <= 0 {
		w = 1
	}
	return w
}

// RangeOf maps a vertex to its range index.
func RangeOf(v graph.VID, width int64, nRanges int) int {
	r := int(int64(v) / width)
	if r >= nRanges {
		r = nRanges - 1
	}
	return r
}

// DefaultSlots is the partition-ring size used when a SlotMap is built
// with slots <= 0. 256 slots over at most a few dozen shards keeps the
// per-shard slot count high enough that hash skew stays under a few
// percent, while the table itself stays a cache-line-scale array.
const DefaultSlots = 256

// Hash64 is the splitmix64 finalizer over a vertex ID: a fixed, seedless
// avalanche permutation of the 64-bit input. It is deliberately not
// seeded and not process-dependent — partition stability across restarts
// (same vid → same slot → same shard) is a correctness property of the
// cluster, not a tuning knob.
func Hash64(v graph.VID) uint64 {
	x := uint64(v)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// SlotMap is the cluster partition map: a fixed ring of hash slots, each
// owned by one shard. The slot table is filled round-robin, so it is a
// pure function of (slots, shards) — two processes that agree on those
// two integers agree on the owner of every vertex, which is what makes
// restarts and replica promotion safe without any coordination service.
type SlotMap struct {
	slots  []uint16
	shards int
}

// NewSlotMap builds the map for nShards shards over a ring of `slots`
// slots (DefaultSlots when slots <= 0). nShards must be in [1, 65536]
// and must not exceed the slot count, else every extra shard would own
// nothing.
func NewSlotMap(nShards, slots int) (*SlotMap, error) {
	if slots <= 0 {
		slots = DefaultSlots
	}
	if nShards < 1 || nShards > 1<<16 {
		return nil, fmt.Errorf("shard: slot map needs 1..65536 shards, got %d", nShards)
	}
	if nShards > slots {
		return nil, fmt.Errorf("shard: %d shards exceed %d slots", nShards, slots)
	}
	m := &SlotMap{slots: make([]uint16, slots), shards: nShards}
	for i := range m.slots {
		m.slots[i] = uint16(i % nShards)
	}
	return m, nil
}

// Shards reports the number of shards the map distributes over.
func (m *SlotMap) Shards() int { return m.shards }

// Slots reports the ring size.
func (m *SlotMap) Slots() int { return len(m.slots) }

// Slot maps a vertex to its hash slot.
func (m *SlotMap) Slot(v graph.VID) int {
	return int(Hash64(v) % uint64(len(m.slots)))
}

// Owner maps a vertex to the shard that owns it. Edges are partitioned
// by source vertex, so Owner(src) decides where an edge is applied and
// Owner(v) decides which shard answers v's out-neighbor reads.
func (m *SlotMap) Owner(v graph.VID) int {
	return int(m.slots[m.Slot(v)])
}

// Split partitions a batch of edges by owner shard, appending into per-
// shard buffers (buffers may be nil or recycled from a previous call;
// they are truncated first). The returned slices alias bufs. Deletes
// route like adds: graph.Target strips the tombstone flag before the
// destination is inspected, and the source carries no flag.
func (m *SlotMap) Split(edges []graph.Edge, bufs [][]graph.Edge) [][]graph.Edge {
	if len(bufs) < m.shards {
		bufs = append(bufs, make([][]graph.Edge, m.shards-len(bufs))...)
	}
	bufs = bufs[:m.shards]
	for i := range bufs {
		bufs[i] = bufs[i][:0]
	}
	for _, e := range edges {
		bufs[m.Owner(e.Src)] = append(bufs[m.Owner(e.Src)], e)
	}
	return bufs
}

// Balance assigns range indexes to workers greedily by descending size,
// returning per-worker range index lists.
func Balance[T any](ranges [][]T, workers int) [][]int {
	order := make([]int, len(ranges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(ranges[order[a]]) > len(ranges[order[b]]) })
	assign := make([][]int, workers)
	load := make([]int, workers)
	for _, ri := range order {
		if len(ranges[ri]) == 0 {
			continue
		}
		min := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[min] {
				min = w
			}
		}
		assign[min] = append(assign[min], ri)
		load[min] += len(ranges[ri])
	}
	return assign
}
