// Package shard implements the edge-sharding approach both stores use for
// load-balanced multi-threaded archiving (§IV-A, inherited from GraphOne):
// a batch of edges is split into many ranged edge lists keyed by vertex ID
// range — more lists than threads — and lists are assigned to workers
// greedily by size so every worker gets an approximately equal number of
// edges while staying free of atomics.
package shard

import (
	"sort"

	"repro/internal/graph"
)

// Entry is one (vertex, neighbor) update routed to a worker. Nbr may carry
// graph.DelFlag.
type Entry struct {
	V   graph.VID
	Nbr uint32
}

// RangesPerWorker is how many ranged lists are created per worker, so the
// greedy assignment can balance skewed batches.
const RangesPerWorker = 4

// Width returns the vertex-range width that splits numV vertices into
// nRanges ranges.
func Width(numV int64, nRanges int) int64 {
	w := (numV + int64(nRanges) - 1) / int64(nRanges)
	if w <= 0 {
		w = 1
	}
	return w
}

// RangeOf maps a vertex to its range index.
func RangeOf(v graph.VID, width int64, nRanges int) int {
	r := int(int64(v) / width)
	if r >= nRanges {
		r = nRanges - 1
	}
	return r
}

// Balance assigns range indexes to workers greedily by descending size,
// returning per-worker range index lists.
func Balance[T any](ranges [][]T, workers int) [][]int {
	order := make([]int, len(ranges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(ranges[order[a]]) > len(ranges[order[b]]) })
	assign := make([][]int, workers)
	load := make([]int, workers)
	for _, ri := range order {
		if len(ranges[ri]) == 0 {
			continue
		}
		min := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[min] {
				min = w
			}
		}
		assign[min] = append(assign[min], ri)
		load[min] += len(ranges[ri])
	}
	return assign
}
