package shard

import (
	"testing"

	"repro/internal/graph"
)

// TestHash64Golden pins the partition hash to golden values. This is a
// compatibility contract, not a tuning choice: the hash is seedless and
// process-independent precisely so that a restarted process (or a
// promoted replica) routes every vertex to the same shard. Changing
// these values silently reshuffles every deployed partition map.
func TestHash64Golden(t *testing.T) {
	golden := []struct {
		v    graph.VID
		want uint64
	}{
		{0, 0x0000000000000000},
		{1, 0x5692161D100B05E5},
		{2, 0xDBD238973A2B148A},
		{3, 0x1E535EEDE31428F0},
		{42, 0xA759EA27D4727622},
		{255, 0x33914DAE20F87536},
		{1 << 20, 0xB7C4539491951F72},
	}
	for _, g := range golden {
		if got := Hash64(g.v); got != g.want {
			t.Errorf("Hash64(%d) = %#016x, want %#016x", g.v, got, g.want)
		}
	}
}

// TestOwnerGolden pins concrete routing decisions of the default 4-shard
// deployment, the same restart-stability contract one level up.
func TestOwnerGolden(t *testing.T) {
	m, err := NewSlotMap(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		v    graph.VID
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 0}, {42, 2}, {255, 2}, {1 << 20, 2},
	}
	for _, g := range golden {
		if got := m.Owner(g.v); got != g.want {
			t.Errorf("Owner(%d) = %d, want %d", g.v, got, g.want)
		}
	}
}

// TestOwnerStableAcrossInstances: two independently built maps with the
// same (shards, slots) agree on every owner — the property that makes a
// process restart, or a reconfiguration that preserves the shard count,
// route identically with no coordination service.
func TestOwnerStableAcrossInstances(t *testing.T) {
	for _, tc := range []struct{ shards, slots int }{
		{1, 0}, {2, 0}, {4, 0}, {4, 1024}, {7, 0}, {16, 64},
	} {
		a, err := NewSlotMap(tc.shards, tc.slots)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSlotMap(tc.shards, tc.slots) // "restarted" instance
		if err != nil {
			t.Fatal(err)
		}
		for v := graph.VID(0); v < 1<<14; v++ {
			if a.Owner(v) != b.Owner(v) {
				t.Fatalf("(%d shards, %d slots): Owner(%d) differs across instances: %d vs %d",
					tc.shards, tc.slots, v, a.Owner(v), b.Owner(v))
			}
		}
	}
}

// TestOwnerRange: every owner is a valid shard index, and with the
// default ring every shard owns at least one vertex in a modest ID
// sweep (no silent empty partitions).
func TestOwnerRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8, 16} {
		m, err := NewSlotMap(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, shards)
		for v := graph.VID(0); v < 1<<14; v++ {
			o := m.Owner(v)
			if o < 0 || o >= shards {
				t.Fatalf("%d shards: Owner(%d) = %d out of range", shards, v, o)
			}
			seen[o]++
		}
		for s, n := range seen {
			if n == 0 {
				t.Errorf("%d shards: shard %d owns no vertex in the sweep", shards, s)
			}
		}
	}
}

// TestSlotBalance: the round-robin slot table gives every shard within
// one slot of slots/shards — the balance that bounds hash skew.
func TestSlotBalance(t *testing.T) {
	for _, tc := range []struct{ shards, slots int }{
		{4, 256}, {3, 256}, {7, 100}, {16, 256}, {5, 5},
	} {
		m, err := NewSlotMap(tc.shards, tc.slots)
		if err != nil {
			t.Fatal(err)
		}
		// Count slots per shard through the public surface: sweep vertex IDs
		// until every slot has been observed once, attributing each slot to
		// its owner.
		counts := make([]int, tc.shards)
		hit := make(map[int]bool)
		for v := graph.VID(0); len(hit) < m.Slots() && v < 1<<20; v++ {
			s := m.Slot(v)
			if hit[s] {
				continue
			}
			hit[s] = true
			counts[m.Owner(v)]++
		}
		if len(hit) != m.Slots() {
			t.Fatalf("(%d,%d): sweep hit only %d of %d slots", tc.shards, tc.slots, len(hit), m.Slots())
		}
		min, max := counts[0], counts[0]
		for _, n := range counts {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("(%d shards, %d slots): slot counts %v spread %d, want <= 1",
				tc.shards, tc.slots, counts, max-min)
		}
	}
}

// TestSplitMatchesOwner: Split partitions exactly by Owner of the edge
// source, preserving arrival order within each part and losing nothing.
func TestSplitMatchesOwner(t *testing.T) {
	m, err := NewSlotMap(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	state := uint64(1)
	for i := 0; i < 5000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		edges = append(edges, graph.Edge{
			Src: graph.VID(state>>33) % 512,
			Dst: uint32(state) % 512,
		})
	}
	parts := m.Split(edges, nil)
	if len(parts) != 4 {
		t.Fatalf("Split returned %d parts, want 4", len(parts))
	}
	total := 0
	idx := make([]int, 4)
	for p, part := range parts {
		total += len(part)
		for _, e := range part {
			if m.Owner(e.Src) != p {
				t.Fatalf("edge (%d,%d) in part %d, owner is %d", e.Src, e.Dst, p, m.Owner(e.Src))
			}
		}
	}
	if total != len(edges) {
		t.Fatalf("Split kept %d of %d edges", total, len(edges))
	}
	// Order within each part is arrival order.
	for _, e := range edges {
		p := m.Owner(e.Src)
		if parts[p][idx[p]] != e {
			t.Fatalf("part %d out of order at %d", p, idx[p])
		}
		idx[p]++
	}
	// Buffer reuse truncates and refills.
	again := m.Split(edges[:100], parts)
	n := 0
	for _, part := range again {
		n += len(part)
	}
	if n != 100 {
		t.Fatalf("recycled Split kept %d of 100 edges", n)
	}
}

// TestNewSlotMapErrors pins the constructor's validation.
func TestNewSlotMapErrors(t *testing.T) {
	if _, err := NewSlotMap(0, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewSlotMap(-1, 0); err == nil {
		t.Error("negative shards accepted")
	}
	if _, err := NewSlotMap(1<<16+1, 1<<17); err == nil {
		t.Error("65537 shards accepted")
	}
	if _, err := NewSlotMap(8, 4); err == nil {
		t.Error("more shards than slots accepted")
	}
	if m, err := NewSlotMap(1, 0); err != nil || m.Slots() != DefaultSlots {
		t.Errorf("default ring: m=%v err=%v", m, err)
	}
}
