package shard

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthAndRangeOf(t *testing.T) {
	w := Width(1000, 16)
	if w != 63 {
		t.Fatalf("Width(1000,16) = %d, want 63", w)
	}
	if RangeOf(0, w, 16) != 0 {
		t.Fatal("first vertex must land in range 0")
	}
	if RangeOf(999, w, 16) != 15 {
		t.Fatalf("last vertex lands in %d, want 15", RangeOf(999, w, 16))
	}
	// Out-of-range vertices clamp to the last range.
	if RangeOf(5000, w, 16) != 15 {
		t.Fatal("overflow vertex must clamp")
	}
	if Width(0, 4) < 1 {
		t.Fatal("width must stay positive")
	}
}

// Property: Balance assigns every non-empty range exactly once, and the
// heaviest worker carries at most the lightest worker's load plus the
// largest single range (the greedy bound).
func TestBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRanges := 1 + rng.Intn(64)
		workers := 1 + rng.Intn(16)
		ranges := make([][]Entry, nRanges)
		largest := 0
		total := 0
		for i := range ranges {
			n := rng.Intn(200)
			ranges[i] = make([]Entry, n)
			total += n
			if n > largest {
				largest = n
			}
		}
		assign := Balance(ranges, workers)
		if len(assign) != workers {
			return false
		}
		seen := map[int]bool{}
		loads := make([]int, workers)
		for w, list := range assign {
			for _, ri := range list {
				if seen[ri] || len(ranges[ri]) == 0 {
					return false
				}
				seen[ri] = true
				loads[w] += len(ranges[ri])
			}
		}
		assigned := 0
		for _, l := range loads {
			assigned += l
		}
		if assigned != total {
			return false
		}
		min, max := loads[0], loads[0]
		for _, l := range loads {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		return max <= min+largest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
