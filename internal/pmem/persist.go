package pmem

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/xpsim"
)

// heapImage is the serialized form of a heap: machine geometry, device
// contents, and the region table. It makes the simulated persistent
// memory actually persistent across process restarts, so the CLI can
// ingest in one invocation and crash-recover in another.
type heapImage struct {
	Magic   string
	Sockets int
	PerNode int64
	Lat     xpsim.LatencyModel
	Devices []xpsim.DeviceState
	Regions []regionImage
}

type regionImage struct {
	Name  string
	Size  int64
	Place Placement
	Bases []int64
	Nodes []int
	Alloc int64
}

const imageMagic = "xpgraph-heap-v1"

// Save serializes the heap (devices drained, regions included) to w.
func Save(w io.Writer, h *Heap) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	img := heapImage{
		Magic:   imageMagic,
		Sockets: h.machine.Sockets,
		Lat:     h.machine.Lat,
	}
	for _, d := range h.machine.Devices() {
		img.PerNode = d.Size()
		img.Devices = append(img.Devices, d.ExportState())
	}
	for _, r := range h.regions {
		ri := regionImage{Name: r.name, Size: r.size, Place: r.place,
			Bases: r.bases, Alloc: r.allocMirror}
		for _, d := range r.devs {
			ri.Nodes = append(ri.Nodes, d.Node())
		}
		img.Regions = append(img.Regions, ri)
	}
	return gob.NewEncoder(w).Encode(img)
}

// Load rebuilds a machine and heap from a Save image.
func Load(r io.Reader) (*xpsim.Machine, *Heap, error) {
	var img heapImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, nil, fmt.Errorf("pmem: decode heap image: %w", err)
	}
	if img.Magic != imageMagic {
		return nil, nil, fmt.Errorf("pmem: not a heap image (magic %q)", img.Magic)
	}
	m := xpsim.NewMachine(img.Sockets, img.PerNode, img.Lat)
	for i, st := range img.Devices {
		if i >= img.Sockets {
			return nil, nil, fmt.Errorf("pmem: image has %d devices for %d sockets", len(img.Devices), img.Sockets)
		}
		if err := m.Device(i).RestoreState(st); err != nil {
			return nil, nil, err
		}
	}
	h := NewHeap(m)
	for _, ri := range img.Regions {
		reg := &Region{heap: h, name: ri.Name, size: ri.Size, place: ri.Place,
			bases: ri.Bases, allocMirror: ri.Alloc}
		for _, n := range ri.Nodes {
			reg.devs = append(reg.devs, m.Device(n))
		}
		h.regions[ri.Name] = reg
	}
	return m, h, nil
}

// SaveFile and LoadFile are the file-path conveniences the CLI uses.
func SaveFile(path string, h *Heap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, h); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile rebuilds a machine and heap from a file written by SaveFile.
func LoadFile(path string) (*xpsim.Machine, *Heap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f)
}
