package pmem

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/xpsim"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := xpsim.NewMachine(2, 16<<20, xpsim.DefaultLatency())
	h := NewHeap(m)
	r1, err := h.Map("alpha", 1<<20, Placement{Kind: Interleave})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Map("beta", 1<<20, Placement{Kind: Bind, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	off1, err := r1.Alloc(ctx, 4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	payload1 := bytes.Repeat([]byte{0xAB}, 4096)
	r1.Write(ctx, off1, payload1)
	mem.WriteU64(r2, ctx, r2.UserStart(), 0xDEADBEEF)

	var buf bytes.Buffer
	if err := Save(&buf, h); err != nil {
		t.Fatal(err)
	}
	_, h2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lr1, ok := h2.Get("alpha")
	if !ok {
		t.Fatal("region alpha missing after load")
	}
	got := make([]byte, 4096)
	lr1.Read(ctx, off1, got)
	if !bytes.Equal(got, payload1) {
		t.Fatal("alpha contents corrupted across save/load")
	}
	if lr1.AllocBytes() != r1.AllocBytes() {
		t.Fatalf("alloc pointer %d, want %d", lr1.AllocBytes(), r1.AllocBytes())
	}
	lr2, _ := h2.Get("beta")
	if v := mem.ReadU64(lr2, ctx, lr2.UserStart()); v != 0xDEADBEEF {
		t.Fatalf("beta scalar = %#x", v)
	}
	if lr2.NodeOf(0) != 1 {
		t.Fatal("beta lost its binding")
	}
	// The loaded heap can map new regions without colliding with old ones.
	r3, err := h2.Map("gamma", 1<<20, Placement{Kind: Bind, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	probe := []byte{1, 2, 3}
	r3.Write(ctx, r3.UserStart(), probe)
	back := make([]byte, 4096)
	lr1.Read(ctx, off1, back)
	if !bytes.Equal(back, payload1) {
		t.Fatal("new region overlapped restored data (device alloc pointer lost)")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := xpsim.NewMachine(1, 4<<20, xpsim.DefaultLatency())
	h := NewHeap(m)
	r, err := h.Map("f", 1<<18, Placement{Kind: Bind, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	r.Write(ctx, r.UserStart(), []byte("durable"))

	path := filepath.Join(t.TempDir(), "heap.xpg")
	if err := SaveFile(path, h); err != nil {
		t.Fatal(err)
	}
	_, h2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lr, _ := h2.Get("f")
	got := make([]byte, 7)
	lr.Read(ctx, lr.UserStart(), got)
	if string(got) != "durable" {
		t.Fatalf("got %q", got)
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("not a heap"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
}
