package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xpsim"
)

func testHeap() *Heap {
	m := xpsim.NewMachine(2, 64<<20, xpsim.DefaultLatency())
	return NewHeap(m)
}

func TestMapBindAndInterleave(t *testing.T) {
	h := testHeap()
	rb, err := h.Map("bound", 1<<20, Placement{Kind: Bind, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := rb.NodeOf(12345); n != 1 {
		t.Fatalf("bound region NodeOf = %d, want 1", n)
	}
	ri, err := h.Map("striped", 1<<20, Placement{Kind: Interleave})
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved: consecutive stripes alternate nodes.
	if a, b := ri.NodeOf(0), ri.NodeOf(DefaultStripe); a == b {
		t.Fatalf("interleaved stripes on same node %d", a)
	}
}

func TestReattachSameRegion(t *testing.T) {
	h := testHeap()
	r1, err := h.Map("elog", 1<<20, Placement{Kind: Interleave})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Map("elog", 1<<20, Placement{Kind: Interleave})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("re-map should re-attach to the same region")
	}
	if _, err := h.Map("elog", 2<<20, Placement{Kind: Interleave}); err == nil {
		t.Fatal("mismatched re-map should fail")
	}
}

func TestRegionReadWriteAcrossStripes(t *testing.T) {
	h := testHeap()
	r, err := h.Map("data", 1<<20, Placement{Kind: Interleave})
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	// Straddle a stripe boundary.
	want := make([]byte, 3*DefaultStripe/2)
	rand.New(rand.NewSource(7)).Read(want)
	off := r.UserStart() + DefaultStripe/2
	r.Write(ctx, off, want)
	got := make([]byte, len(want))
	r.Read(ctx, off, got)
	if !bytes.Equal(got, want) {
		t.Fatal("stripe-straddling write corrupted data")
	}
}

func TestRegionMatchesShadow(t *testing.T) {
	f := func(seed int64) bool {
		h := testHeap()
		r, err := h.Map("p", 1<<16, Placement{Kind: Interleave, Stripe: 4096})
		if err != nil {
			return false
		}
		ctx := xpsim.NewCtx(0)
		rng := rand.New(rand.NewSource(seed))
		size := int64(1 << 16)
		shadow := make([]byte, size)
		start := r.UserStart()
		for i := 0; i < 200; i++ {
			off := start + rng.Int63n(size-start-700)
			n := 1 + rng.Int63n(600)
			if rng.Intn(2) == 0 {
				p := make([]byte, n)
				rng.Read(p)
				r.Write(ctx, off, p)
				copy(shadow[off:], p)
			} else {
				p := make([]byte, n)
				r.Read(ctx, off, p)
				if !bytes.Equal(p, shadow[off:off+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocPersistsPointer(t *testing.T) {
	h := testHeap()
	r, err := h.Map("arena", 1<<20, Placement{Kind: Bind, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	a, err := r.Alloc(ctx, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a < r.UserStart() || a%64 != 0 {
		t.Fatalf("bad alloc offset %d", a)
	}
	b, err := r.Alloc(ctx, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("alloc did not advance: %d then %d", a, b)
	}
	// The persisted pointer (what recovery reads) matches the mirror.
	if got := r.PersistedAllocOffset(ctx); got != r.AllocBytes() {
		t.Fatalf("persisted alloc = %d, mirror = %d", got, r.AllocBytes())
	}
}

func TestAllocFull(t *testing.T) {
	h := testHeap()
	r, err := h.Map("tiny", 4096, Placement{Kind: Bind, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	if _, err := r.Alloc(ctx, 1<<20, 1); err == nil {
		t.Fatal("expected region-full error")
	}
}

func TestBindLocalCheaperThanRemote(t *testing.T) {
	h := testHeap()
	r, err := h.Map("n0", 1<<20, Placement{Kind: Bind, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 8192)
	local := xpsim.NewCtx(0)
	remote := xpsim.NewCtx(1)
	r.Write(local, r.UserStart(), p)
	r.Write(remote, r.UserStart()+65536, p)
	if remote.Cost.Ns() <= local.Cost.Ns() {
		t.Fatalf("remote %dns <= local %dns", remote.Cost.Ns(), local.Cost.Ns())
	}
}
