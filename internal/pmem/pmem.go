// Package pmem provides app-direct persistent memory regions on top of the
// simulated Optane devices: the moral equivalent of pmem_map_file() on an
// Ext4-DAX file system (§II-C). Regions are named, survive simulated
// crashes, and may be placed on one NUMA node or interleaved across all of
// them — the placement choices behind the paper's NUMA-aware segregated
// graph storing (§III-D).
package pmem

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
	"repro/internal/xpsim"
)

// PlacementKind selects how a region maps onto the machine's devices.
type PlacementKind int

const (
	// Interleave stripes the region across all nodes' devices — the
	// default system configuration of the paper's testbed (and the
	// placement GraphOne-P runs on).
	Interleave PlacementKind = iota
	// Bind places the region entirely on one node's device — the
	// placement XPGraph uses for per-node sub-graphs.
	Bind
)

// Placement describes where a region lives.
type Placement struct {
	Kind   PlacementKind
	Node   int   // for Bind
	Stripe int64 // interleave stripe; 0 selects the 4 KiB default
}

// DefaultStripe is the interleave granularity of the simulated machine
// (Optane platforms interleave at 4 KiB).
const DefaultStripe = 4096

// regionHeader is the reserved prefix of every region holding the
// persistent allocation pointer, so a recovering process can find out how
// far the arena had grown before the crash.
const regionHeader = 64

// Heap hands out named regions of simulated PMEM.
type Heap struct {
	machine *xpsim.Machine

	mu      sync.Mutex
	regions map[string]*Region
}

// NewHeap builds a heap over the machine's devices.
func NewHeap(m *xpsim.Machine) *Heap {
	return &Heap{machine: m, regions: make(map[string]*Region)}
}

// Machine returns the underlying simulated machine.
func (h *Heap) Machine() *xpsim.Machine { return h.machine }

// Map creates the named region, or re-attaches to it if it already exists
// (which is how recovery finds its data after a crash). Size and placement
// must match on re-attach.
func (h *Heap) Map(name string, size int64, p Placement) (*Region, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if r, ok := h.regions[name]; ok {
		if r.size != size || r.place.Kind != p.Kind {
			return nil, fmt.Errorf("pmem: region %q exists with different geometry", name)
		}
		return r, nil
	}
	if p.Stripe == 0 {
		p.Stripe = DefaultStripe
	}
	r := &Region{heap: h, name: name, size: size, place: p}
	switch p.Kind {
	case Bind:
		d := h.machine.Device(p.Node)
		base, err := d.Reserve(size, xpsim.XPLineSize)
		if err != nil {
			return nil, fmt.Errorf("pmem: map %q: %w", name, err)
		}
		r.devs = []*xpsim.Device{d}
		r.bases = []int64{base}
	case Interleave:
		n := int64(h.machine.Sockets)
		per := (size + p.Stripe*n - 1) / n / p.Stripe * p.Stripe
		for _, d := range h.machine.Devices() {
			base, err := d.Reserve(per, xpsim.XPLineSize)
			if err != nil {
				return nil, fmt.Errorf("pmem: map %q: %w", name, err)
			}
			r.devs = append(r.devs, d)
			r.bases = append(r.bases, base)
		}
	default:
		return nil, fmt.Errorf("pmem: unknown placement %d", p.Kind)
	}
	// Initialize the persistent allocation pointer past the header.
	r.allocMirror = regionHeader
	ctx := xpsim.NewCtx(r.NodeOf(0))
	mem.WriteU64(r, ctx, 0, uint64(regionHeader))
	h.regions[name] = r
	return r, nil
}

// CrashClone snapshots the heap exactly as the device model says it was
// durable — the post-power-failure view of the machine. It returns a new
// heap on a fresh machine whose devices hold each device's DurableState:
// with fault tracking enabled that image excludes XPBuffer-resident lines
// never written back and keeps the crash line torn; without tracking it
// equals the eADR write-through contents. Every region is re-registered
// in the clone with its allocation mirror re-read from the durable header
// (what a recovering process would see), so core.Recover can re-attach by
// name. The live heap keeps running unharmed.
func (h *Heap) CrashClone() (*Heap, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	src := h.machine
	if len(src.Devices()) == 0 {
		return nil, fmt.Errorf("pmem: machine has no devices")
	}
	clone := xpsim.NewMachine(src.Sockets, src.Devices()[0].Size(), src.Lat)
	for _, d := range src.Devices() {
		if err := clone.Device(d.Node()).RestoreState(d.DurableState()); err != nil {
			return nil, fmt.Errorf("pmem: crash clone: %w", err)
		}
	}
	// Media damage survives a power cycle: UE-marked lines, slow regions
	// and dead devices are physical device state, not DRAM state, so the
	// clone inherits them (the durable image already holds the scrambled
	// bytes — this carries the poison marks that make checked reads err).
	if f := src.Faults(); f != nil {
		clone.TrackFaults().RestoreMediaState(f.ExportMediaState())
	}
	nh := NewHeap(clone)
	// Deterministic region order: re-reading each region's allocation
	// pointer touches the clone's devices, and map order must not leak
	// into their cache state.
	names := make([]string, 0, len(h.regions))
	for name := range h.regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := h.regions[name]
		nr := &Region{heap: nh, name: name, size: r.size, place: r.place}
		for i, d := range r.devs {
			nr.devs = append(nr.devs, clone.Device(d.Node()))
			nr.bases = append(nr.bases, r.bases[i])
		}
		// The allocation mirror comes from the durable header — it may
		// lag the live mirror if the crash beat the pointer's writeback.
		ctx := xpsim.NewCtx(nr.NodeOf(0))
		alloc := int64(mem.ReadU64(nr, ctx, 0))
		if alloc < regionHeader || alloc > nr.size {
			// The region was mapped but its header write never reached
			// the media: recover it as empty.
			alloc = regionHeader
			mem.WriteU64(nr, ctx, 0, uint64(alloc))
		}
		nr.allocMirror = alloc
		nh.regions[name] = nr
	}
	return nh, nil
}

// Get returns an existing region by name.
func (h *Heap) Get(name string) (*Region, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.regions[name]
	return r, ok
}

// Region is a named span of persistent memory. It implements mem.Mem.
type Region struct {
	heap  *Heap
	name  string
	size  int64
	place Placement
	devs  []*xpsim.Device
	bases []int64

	mu          sync.Mutex
	allocMirror int64 // DRAM mirror of the persisted allocation pointer
}

var (
	_ mem.Mem        = (*Region)(nil)
	_ mem.CheckedMem = (*Region)(nil)
)

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Size implements mem.Mem.
func (r *Region) Size() int64 { return r.size }

// Persistent implements mem.Mem.
func (r *Region) Persistent() bool { return true }

// NodeOf reports the NUMA node that owns the byte at off.
func (r *Region) NodeOf(off int64) int {
	if len(r.devs) == 1 {
		return r.devs[0].Node()
	}
	stripe := off / r.place.Stripe
	return r.devs[stripe%int64(len(r.devs))].Node()
}

// locate maps a logical offset to (device index, device-local offset,
// bytes remaining in this stripe).
func (r *Region) locate(off int64) (int, int64, int64) {
	if len(r.devs) == 1 {
		return 0, r.bases[0] + off, r.size - off
	}
	n := int64(len(r.devs))
	stripe := off / r.place.Stripe
	within := off % r.place.Stripe
	di := stripe % n
	local := r.bases[di] + (stripe/n)*r.place.Stripe + within
	return int(di), local, r.place.Stripe - within
}

// Read implements mem.Mem.
func (r *Region) Read(ctx *xpsim.Ctx, off int64, p []byte) {
	r.check(off, int64(len(p)))
	for len(p) > 0 {
		di, local, avail := r.locate(off)
		n := int64(len(p))
		if n > avail {
			n = avail
		}
		r.devs[di].Read(ctx, local, p[:n])
		p = p[n:]
		off += n
	}
}

// ReadChecked implements mem.CheckedMem: Read through the devices'
// media-error-aware path, returning the first *xpsim.MediaError hit. p is
// filled either way.
func (r *Region) ReadChecked(ctx *xpsim.Ctx, off int64, p []byte) error {
	r.check(off, int64(len(p)))
	var first error
	for len(p) > 0 {
		di, local, avail := r.locate(off)
		n := int64(len(p))
		if n > avail {
			n = avail
		}
		if err := r.devs[di].ReadChecked(ctx, local, p[:n]); err != nil && first == nil {
			first = err
		}
		p = p[n:]
		off += n
	}
	return first
}

// LineAt maps a region offset to the (NUMA node, device XPLine) that backs
// it — the coordinates a scrubber quarantines.
func (r *Region) LineAt(off int64) (node int, line int64) {
	r.check(off, 1)
	di, local, _ := r.locate(off)
	return r.devs[di].Node(), local / xpsim.XPLineSize
}

// Write implements mem.Mem.
func (r *Region) Write(ctx *xpsim.Ctx, off int64, p []byte) {
	r.check(off, int64(len(p)))
	for len(p) > 0 {
		di, local, avail := r.locate(off)
		n := int64(len(p))
		if n > avail {
			n = avail
		}
		r.devs[di].Write(ctx, local, p[:n])
		p = p[n:]
		off += n
	}
}

// Flush implements mem.Mem: clwb over the covered lines.
func (r *Region) Flush(ctx *xpsim.Ctx, off, n int64) {
	r.check(off, n)
	for n > 0 {
		di, local, avail := r.locate(off)
		c := n
		if c > avail {
			c = avail
		}
		r.devs[di].Flush(ctx, local, c)
		n -= c
		off += c
	}
}

// Alloc implements mem.Mem: a persistent bump allocator. The allocation
// pointer is persisted in the region header so recovery can scan exactly
// the allocated prefix.
func (r *Region) Alloc(ctx *xpsim.Ctx, n, align int64) (int64, error) {
	r.mu.Lock()
	base := r.allocMirror
	if align > 0 {
		base = (base + align - 1) / align * align
	}
	if base+n > r.size {
		r.mu.Unlock()
		return 0, fmt.Errorf("pmem: region %q full: need %d bytes, %d free", r.name, n, r.size-base)
	}
	r.allocMirror = base + n
	r.mu.Unlock()
	// Persist the bump pointer. Its header line is touched by every
	// allocation, so it permanently lives in the CPU caches / XPBuffer;
	// charge a contended cached store rather than media traffic.
	free := &xpsim.Ctx{Cost: &xpsim.Cost{}, Node: ctx.Node, Worker: ctx.Worker, Workers: ctx.Workers}
	mem.WriteU64(r, free, 0, uint64(base+n))
	ctx.Cost.Add(r.heap.machine.Lat.DRAMCached)
	return base, nil
}

// AllocBytes implements mem.Mem.
func (r *Region) AllocBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.allocMirror
}

// PersistedAllocOffset reads the allocation pointer from the device — what
// a recovering process sees before any DRAM state exists.
func (r *Region) PersistedAllocOffset(ctx *xpsim.Ctx) int64 {
	return int64(mem.ReadU64(r, ctx, 0))
}

// UserStart is the first offset usable by clients (past the header).
func (r *Region) UserStart() int64 { return regionHeader }

// RewindAlloc moves the allocation pointer back to off and persists it
// immediately. Recovery uses it after a crash truncated the arena mid-
// allocation: the bump pointer's writeback can land before the allocated
// block's header does, leaving a durable pointer that covers garbage. The
// scan stops at the garbage and rewinds here, so the region re-allocates
// (and overwrites) the unreachable suffix instead of leaking it — and so
// a later scan never trips over it.
func (r *Region) RewindAlloc(ctx *xpsim.Ctx, off int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < regionHeader || off > r.allocMirror {
		panic(fmt.Sprintf("pmem: rewind %q to %d outside [%d,%d]", r.name, off, regionHeader, r.allocMirror))
	}
	r.allocMirror = off
	mem.WriteU64(r, ctx, 0, uint64(off))
	r.Flush(ctx, 0, 8)
}

func (r *Region) check(off, n int64) {
	if off < 0 || off+n > r.size {
		panic(fmt.Sprintf("pmem: region %q access [%d,%d) out of bounds %d", r.name, off, off+n, r.size))
	}
}
