package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prop"
	"repro/internal/view"
	"repro/internal/xpsim"
)

// Compile-time proof that a snapshot satisfies the full serving
// contract — the ClusterView delegates to per-shard snapshots through
// exactly this interface.
var (
	_ view.Full = (*core.Snapshot)(nil)
	_ view.Full = (*ClusterView)(nil)
)

// PartitionDownError is returned by checked reads of a partition whose
// leader is down and which has no live replica to fail over to. The
// unchecked algorithm surface returns empty results for such a partition
// instead (analytics is health-gated at the HTTP layer, so this only
// shows up when the gate is bypassed deliberately).
type PartitionDownError struct {
	Shard int
}

func (e *PartitionDownError) Error() string {
	return fmt.Sprintf("cluster: partition %d is down and has no live replica", e.Shard)
}

// ClusterView is one consistent read view of the whole cluster: one
// pinned snapshot publication per partition, read through that
// partition's guard so every access is ordered against its writer. It
// implements view.Full, which is the entire point of the API redesign —
// the HTTP handlers and the analytics engine run over a 4-shard cluster
// through the same interface they run over a single snapshot.
//
// Consistency model: the view is per-shard consistent, cross-shard
// loose. Each partition is served at exactly one epoch (the pinned
// publication's), captured in the epoch vector; different partitions may
// be pinned at different points in time. Out-reads of v go to v's owner
// partition only; in-reads union every partition, because an edge (u,v)
// lives with u's owner and so v's in-records scatter across shards.
//
// Failover: a partition whose leader is down is served by its
// best-caught-up live replica; with no such replica the partition's
// sources are nil and reads of it degrade (empty / typed error), while
// every other partition keeps serving.
type ClusterView struct {
	c    *Cluster
	pins []*published // per shard; nil when the partition is unservable
	srcs []view.Full  // guarded views over pins; nil when unservable
	// epochs is the pinned epoch vector: the publication epoch each
	// partition is served at (0 for an unservable partition).
	epochs []uint64
	// numV is max over sources, captured at acquire so the view's vertex
	// space is stable even as shards publish newer snapshots.
	numV graph.VID
}

// bestReplica picks the follower to fail a dead shard's reads over to:
// the live (no apply error) replica with the highest shipped epoch.
func bestReplica(sh *Shard) *Replica {
	var best *Replica
	var bestEpoch uint64
	for _, r := range sh.replicas {
		if r.Err() != nil {
			continue
		}
		if e := r.Epoch(); best == nil || e > bestEpoch {
			best, bestEpoch = r, e
		}
	}
	return best
}

// AcquireView pins one publication per partition — the leader's, or the
// best live replica's when the leader is down — and returns the
// composite read view. The caller must Release it.
func (c *Cluster) AcquireView() *ClusterView {
	cv := &ClusterView{
		c:      c,
		pins:   make([]*published, len(c.shards)),
		srcs:   make([]view.Full, len(c.shards)),
		epochs: make([]uint64, len(c.shards)),
	}
	for i, sh := range c.shards {
		if !sh.down.Load() {
			p := sh.acquire()
			cv.pins[i] = p
			cv.srcs[i] = view.GuardFull(p.snap, &sh.mu)
			cv.epochs[i] = p.epoch
		} else if r := bestReplica(sh); r != nil {
			p := r.acquire()
			cv.pins[i] = p
			cv.srcs[i] = view.GuardFull(p.snap, &r.mu)
			cv.epochs[i] = p.epoch
		}
		if s := cv.srcs[i]; s != nil {
			if nv := s.NumVertices(); nv > cv.numV {
				cv.numV = nv
			}
		}
	}
	return cv
}

// Release unpins every publication. The view must not be used after.
func (cv *ClusterView) Release() {
	for i, p := range cv.pins {
		if p != nil {
			p.unref()
			cv.pins[i] = nil
			cv.srcs[i] = nil
		}
	}
}

// EpochVector is the pinned epoch vector (one entry per partition; 0 for
// an unservable one).
func (cv *ClusterView) EpochVector() []uint64 { return cv.epochs }

// Epoch is the scalar fold of the pinned epoch vector — what the
// X-Snapshot-Epoch header carries.
func (cv *ClusterView) Epoch() uint64 { return EpochScalar(cv.epochs) }

// owner returns the source serving v's owner partition (nil when that
// partition is unservable).
func (cv *ClusterView) owner(v graph.VID) view.Full {
	return cv.srcs[cv.c.pmap.Owner(v)]
}

// ---- view.View ----

// NumVertices is the max over partitions, captured at acquire time:
// vertex IDs are global, and every shard's store spans the same ID
// space (a shard simply holds no records for vertices it does not own).
func (cv *ClusterView) NumVertices() graph.VID { return cv.numV }

// NbrsOut reads v's out-neighbors from its owner partition — edges
// partition by source, so one shard holds all of them.
func (cv *ClusterView) NbrsOut(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	s := cv.owner(v)
	if s == nil {
		return dst[:0]
	}
	return s.NbrsOut(ctx, v, dst)
}

// NbrsIn unions v's in-neighbors across every partition: an edge (u,v)
// is recorded with u's owner, so v's in-records scatter. Concatenation
// preserves multi-edge multiplicity exactly like a single store; only
// the order differs (per-shard runs instead of global arrival order).
func (cv *ClusterView) NbrsIn(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	out := dst[:0]
	for _, s := range cv.srcs {
		if s == nil {
			continue
		}
		nbrs := s.NbrsIn(ctx, v, nil)
		out = append(out, nbrs...)
	}
	return out
}

// VisitOut streams v's out-neighbors from its owner partition.
func (cv *ClusterView) VisitOut(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	if s := cv.owner(v); s != nil {
		s.VisitOut(ctx, v, fn)
	}
}

// VisitIn streams v's in-neighbors from every partition in shard order.
// Each per-shard guard materializes under its own lock and calls back
// unlocked, so no lock is held across fn.
func (cv *ClusterView) VisitIn(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	for _, s := range cv.srcs {
		if s != nil {
			s.VisitIn(ctx, v, fn)
		}
	}
}

// OutNode reports the NUMA node of v's out-adjacency on its owner
// partition's machine (partitions are separate machines; the node index
// is only meaningful for binding queries on that shard).
func (cv *ClusterView) OutNode(v graph.VID) int {
	s := cv.owner(v)
	if s == nil {
		return xpsim.NodeUnbound
	}
	return s.OutNode(v)
}

// InNode reports v's in-adjacency node on its owner partition. In a
// cluster the in-records scatter, so this is a placement hint, not a
// location.
func (cv *ClusterView) InNode(v graph.VID) int {
	s := cv.owner(v)
	if s == nil {
		return xpsim.NodeUnbound
	}
	return s.InNode(v)
}

// OutDegree is the owner partition's stored out-record count.
func (cv *ClusterView) OutDegree(v graph.VID) int {
	s := cv.owner(v)
	if s == nil {
		return 0
	}
	return s.OutDegree(v)
}

// ---- view.Checked + InDegree ----

// NbrsOutChecked is the media-checked owner-partition read; it fails
// typed when the owner partition is unservable.
func (cv *ClusterView) NbrsOutChecked(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	o := cv.c.pmap.Owner(v)
	s := cv.srcs[o]
	if s == nil {
		return nil, &PartitionDownError{Shard: o}
	}
	return s.NbrsOutChecked(ctx, v, dst)
}

// NbrsInChecked unions the media-checked in-reads across partitions;
// the first media error (or unservable partition) fails the read, named.
func (cv *ClusterView) NbrsInChecked(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	out := dst[:0]
	for i, s := range cv.srcs {
		if s == nil {
			return nil, &PartitionDownError{Shard: i}
		}
		nbrs, err := s.NbrsInChecked(ctx, v, nil)
		if err != nil {
			return nil, &ShardError{Shard: i, Err: err}
		}
		out = append(out, nbrs...)
	}
	return out, nil
}

// InDegree sums v's stored in-record count over every servable
// partition.
func (cv *ClusterView) InDegree(v graph.VID) int {
	d := 0
	for _, s := range cv.srcs {
		if s != nil {
			d += s.InDegree(v)
		}
	}
	return d
}

// ---- view.Typed ----

// Labels reads the label table from the first servable partition: label
// registration broadcasts (id, name) to every shard and its replicas, so
// any live partition's table is authoritative.
func (cv *ClusterView) Labels() []string {
	for _, s := range cv.srcs {
		if s != nil {
			return s.Labels()
		}
	}
	return []string{""}
}

// LabelID resolves a label name on the first servable partition.
func (cv *ClusterView) LabelID(name string) (uint16, bool) {
	for _, s := range cv.srcs {
		if s != nil {
			return s.LabelID(name)
		}
	}
	return 0, false
}

// VProp reads vertex v's property from its owner partition — property
// writes route with the owner shard, so one shard holds the value.
func (cv *ClusterView) VProp(v graph.VID, key uint16) (int64, bool, error) {
	o := cv.c.pmap.Owner(v)
	s := cv.srcs[o]
	if s == nil {
		return 0, false, &PartitionDownError{Shard: o}
	}
	return s.VProp(v, key)
}

// VisitOutTyped streams v's filtered out-neighbors from its owner
// partition. The label half of the filter pushes down to v's owner —
// edge labels live with the edge — but a neighbor's property column
// lives with the NEIGHBOR's owner, so the vertex predicate routes each
// surviving neighbor through the cluster-level property read. An
// unservable partition fails the read typed (it is a checked read).
func (cv *ClusterView) VisitOutTyped(ctx *xpsim.Ctx, v graph.VID, f prop.Filter, fn func(nbr uint32, lbl uint16)) error {
	o := cv.c.pmap.Owner(v)
	s := cv.srcs[o]
	if s == nil {
		return &PartitionDownError{Shard: o}
	}
	if f.Op == prop.OpNone {
		return s.VisitOutTyped(ctx, v, f, fn)
	}
	var verr error
	err := s.VisitOutTyped(ctx, v, prop.Filter{Types: f.Types}, func(nbr uint32, lbl uint16) {
		if verr != nil {
			return
		}
		keep := f.MatchVertex(func(key uint16) (int64, bool) {
			val, ok, perr := cv.VProp(graph.VID(nbr), key)
			if perr != nil {
				verr = perr
				return 0, false
			}
			return val, ok
		})
		if verr == nil && keep {
			fn(nbr, lbl)
		}
	})
	if err != nil {
		return err
	}
	return verr
}

// VisitInTyped unions the filtered in-reads across partitions — an edge
// (u,v) and its label both live with u's owner, so each shard filters
// the in-records it holds. The first failing partition fails the read,
// named.
func (cv *ClusterView) VisitInTyped(ctx *xpsim.Ctx, v graph.VID, f prop.Filter, fn func(nbr uint32, lbl uint16)) error {
	for i, s := range cv.srcs {
		if s == nil {
			return &PartitionDownError{Shard: i}
		}
		if err := s.VisitInTyped(ctx, v, f, fn); err != nil {
			return &ShardError{Shard: i, Err: err}
		}
	}
	return nil
}
