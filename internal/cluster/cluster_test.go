package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

// newStore builds one store on its own machine — each shard and each
// replica of a cluster is its own simulated PM box.
func newStore(t *testing.T, name string) *core.Store {
	t.Helper()
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	st, err := core.New(m, pmem.NewHeap(m), nil, core.Options{
		Name: name, NumVertices: 1 << 10, LogCapacity: 1 << 16,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newCluster(t *testing.T, shards, replicas int, cfg Config) *Cluster {
	t.Helper()
	stores := make([]*core.Store, shards)
	for i := range stores {
		stores[i] = newStore(t, fmt.Sprintf("shard%d", i))
	}
	cfg.Replicas = replicas
	if replicas > 0 {
		cfg.ReplicaFactory = func(shardID, replica int) (*core.Store, error) {
			return newStore(t, fmt.Sprintf("shard%d-replica%d", shardID, replica)), nil
		}
	}
	cl, err := New(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func testEdges(n int64) []graph.Edge {
	return gen.Uniform(256, n, 42)
}

// ingestChunks pushes edges through the routed sync path in several
// batches, exercising the fan-out.
func ingestChunks(t *testing.T, cl *Cluster, edges []graph.Edge, chunk int) {
	t.Helper()
	for off := 0; off < len(edges); off += chunk {
		end := off + chunk
		if end > len(edges) {
			end = len(edges)
		}
		if _, err := cl.Ingest(edges[off:end], true); err != nil {
			t.Fatalf("ingest chunk at %d: %v", off, err)
		}
	}
}

// waitReplicasCaughtUp polls until every follower has published the
// leader's current epoch. In these tests every post-initial publication
// ships edges, so the epochs must meet exactly.
func waitReplicasCaughtUp(t *testing.T, cl *Cluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < cl.Shards(); i++ {
		sh := cl.Shard(i)
		want := sh.Epoch()
		for _, r := range sh.Replicas() {
			for r.Epoch() != want {
				if err := r.Err(); err != nil {
					t.Fatalf("shard %d replica failed: %v", i, err)
				}
				if time.Now().After(deadline) {
					t.Fatalf("shard %d replica stuck at epoch %d, want %d", i, r.Epoch(), want)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

func sorted(nbrs []uint32) []uint32 {
	out := append([]uint32(nil), nbrs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterDifferential is the acceptance differential: a 4-shard
// cluster with one follower per shard, fed through the routed pipelines,
// serves reads through its ClusterView identical to a single store fed
// the same edges — neighbor-for-neighbor, degree-for-degree, and
// algorithm-for-algorithm.
func TestClusterDifferential(t *testing.T) {
	edges := testEdges(4000)

	ref := newCluster(t, 1, 0, Config{Linger: time.Millisecond})
	if _, err := ref.IngestLocal(edges); err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, 4, 1, Config{Linger: time.Millisecond, BatchEdges: 512})
	ingestChunks(t, cl, edges, 700)

	rv := ref.AcquireView()
	defer rv.Release()
	cv := cl.AcquireView()
	defer cv.Release()
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)

	if got, want := cv.NumVertices(), rv.NumVertices(); got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
	if len(cv.EpochVector()) != 4 {
		t.Fatalf("epoch vector = %v, want length 4", cv.EpochVector())
	}
	for v := graph.VID(0); v < rv.NumVertices(); v++ {
		refOut := sorted(rv.NbrsOut(ctx, v, nil))
		gotOut := sorted(cv.NbrsOut(ctx, v, nil))
		if !equalU32(refOut, gotOut) {
			t.Fatalf("NbrsOut(%d): cluster %v, single %v", v, gotOut, refOut)
		}
		refIn := sorted(rv.NbrsIn(ctx, v, nil))
		gotIn := sorted(cv.NbrsIn(ctx, v, nil))
		if !equalU32(refIn, gotIn) {
			t.Fatalf("NbrsIn(%d): cluster %v, single %v", v, gotIn, refIn)
		}
		if cv.OutDegree(v) != rv.OutDegree(v) || cv.InDegree(v) != rv.InDegree(v) {
			t.Fatalf("degree(%d): cluster (%d,%d), single (%d,%d)",
				v, cv.OutDegree(v), cv.InDegree(v), rv.OutDegree(v), rv.InDegree(v))
		}
		co, err := cv.NbrsOutChecked(ctx, v, nil)
		if err != nil {
			t.Fatalf("NbrsOutChecked(%d): %v", v, err)
		}
		if !equalU32(sorted(co), refOut) {
			t.Fatalf("NbrsOutChecked(%d) diverges from NbrsOut", v)
		}
	}

	// Whole-graph algorithms over the two views, through the identical
	// view.View interface the analytics engine requires.
	lm := xpsim.DefaultLatency()
	refEng := analytics.NewEngine(rv, &lm, 4)
	clEng := analytics.NewEngine(cv, &lm, 4)

	rb, cb := refEng.BFS(1), clEng.BFS(1)
	if rb.Visited != cb.Visited || rb.Levels != cb.Levels {
		t.Fatalf("BFS: cluster (%d,%d), single (%d,%d)", cb.Visited, cb.Levels, rb.Visited, rb.Levels)
	}
	rc, cc := refEng.CC(), clEng.CC()
	if rc.Components != cc.Components {
		t.Fatalf("CC: cluster %d, single %d", cc.Components, rc.Components)
	}
	rp, cp := refEng.PageRank(10), clEng.PageRank(10)
	for v := range rp.Ranks {
		if math.Abs(rp.Ranks[v]-cp.Ranks[v]) > 1e-9 {
			t.Fatalf("PageRank[%d]: cluster %g, single %g", v, cp.Ranks[v], rp.Ranks[v])
		}
	}
}

// TestReplicaLagDifferential pins the log-shipping contract: once a
// follower has published shipped epoch E, its store holds edge-for-edge
// what the leader's store held at its publication E — same chunk
// sequence, same order.
func TestReplicaLagDifferential(t *testing.T) {
	cl := newCluster(t, 4, 2, Config{Linger: time.Millisecond, BatchEdges: 256})
	ingestChunks(t, cl, testEdges(3000), 500)
	waitReplicasCaughtUp(t, cl)

	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	for i := 0; i < cl.Shards(); i++ {
		sh := cl.Shard(i)
		leader := sh.Store()
		for ri, r := range sh.Replicas() {
			if got, want := r.Epoch(), sh.Epoch(); got != want {
				t.Fatalf("shard %d replica %d epoch %d, want %d", i, ri, got, want)
			}
			rep := r.Store()
			if got, want := rep.Log().Head(), leader.Log().Head(); got != want {
				t.Fatalf("shard %d replica %d logged %d edges, leader %d", i, ri, got, want)
			}
			for v := graph.VID(0); v < leader.NumVertices(); v++ {
				lo := append([]uint32(nil), leader.Nbrs(ctx, core.Out, v, nil)...)
				ro := rep.Nbrs(ctx, core.Out, v, nil)
				if !equalU32(lo, ro) { // same apply order: exact, unsorted
					t.Fatalf("shard %d replica %d out(%d) = %v, leader %v", i, ri, v, ro, lo)
				}
				li := append([]uint32(nil), leader.Nbrs(ctx, core.In, v, nil)...)
				rin := rep.Nbrs(ctx, core.In, v, nil)
				if !equalU32(li, rin) {
					t.Fatalf("shard %d replica %d in(%d) = %v, leader %v", i, ri, v, rin, li)
				}
			}
		}
	}
}

// ownedBy finds a vertex whose owner is the given shard.
func ownedBy(cl *Cluster, shard int) graph.VID {
	for v := graph.VID(0); ; v++ {
		if cl.Owner(v) == shard {
			return v
		}
	}
}

// TestFailoverToReplica kills one shard and asserts the cluster serves
// on: its partition's reads come from the follower (identical data), the
// other partitions stay writable, and health reports degraded — not
// down.
func TestFailoverToReplica(t *testing.T) {
	edges := testEdges(2000)
	ref := newCluster(t, 1, 0, Config{})
	if _, err := ref.IngestLocal(edges); err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, 4, 1, Config{Linger: time.Millisecond})
	ingestChunks(t, cl, edges, 512)
	waitReplicasCaughtUp(t, cl)

	const victim = 1
	cl.KillShard(victim)

	// Reads: every partition still answers, and the victim's partition is
	// served by its caught-up follower — identical to the single store.
	rv := ref.AcquireView()
	defer rv.Release()
	cv := cl.AcquireView()
	defer cv.Release()
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	for v := graph.VID(0); v < rv.NumVertices(); v++ {
		if !equalU32(sorted(cv.NbrsOut(ctx, v, nil)), sorted(rv.NbrsOut(ctx, v, nil))) {
			t.Fatalf("post-failover NbrsOut(%d) diverges", v)
		}
		if !equalU32(sorted(cv.NbrsIn(ctx, v, nil)), sorted(rv.NbrsIn(ctx, v, nil))) {
			t.Fatalf("post-failover NbrsIn(%d) diverges", v)
		}
		if _, err := cv.NbrsOutChecked(ctx, v, nil); err != nil {
			t.Fatalf("post-failover NbrsOutChecked(%d): %v", v, err)
		}
	}

	// Health: degraded (not down, not readonly), victim down and serving
	// through its replica.
	ch := cl.Health()
	if ch.State != core.HealthDegraded.String() {
		t.Fatalf("cluster state = %q, want degraded", ch.State)
	}
	if !ch.Shards[victim].Down || !ch.Shards[victim].ServingReplica {
		t.Fatalf("victim health = %+v", ch.Shards[victim])
	}
	for i, s := range ch.Shards {
		if i != victim && s.State != core.HealthOK.String() {
			t.Fatalf("surviving shard %d state = %q", i, s.State)
		}
	}

	// Writes: the victim's partition refuses, named; others keep landing.
	deadV := ownedBy(cl, victim)
	_, err := cl.Ingest([]graph.Edge{{Src: deadV, Dst: 9}}, true)
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != victim || !errors.Is(err, ErrShardDown) {
		t.Fatalf("write to dead partition: err = %v, want ShardError{%d, ErrShardDown}", err, victim)
	}
	liveV := ownedBy(cl, (victim+1)%4)
	if _, err := cl.Ingest([]graph.Edge{{Src: liveV, Dst: 9}}, true); err != nil {
		t.Fatalf("write to surviving partition: %v", err)
	}
}

// TestFailoverWithoutReplica: killing a shard with no followers degrades
// its partition typed — checked reads fail PartitionDownError, unchecked
// reads answer empty — while other partitions serve normally.
func TestFailoverWithoutReplica(t *testing.T) {
	cl := newCluster(t, 2, 0, Config{Linger: time.Millisecond})
	ingestChunks(t, cl, testEdges(500), 500)

	const victim = 0
	cl.KillShard(victim)
	cv := cl.AcquireView()
	defer cv.Release()
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)

	deadV, liveV := ownedBy(cl, victim), ownedBy(cl, 1)
	if _, err := cv.NbrsOutChecked(ctx, deadV, nil); err == nil {
		t.Fatal("checked read of dead partition succeeded")
	} else {
		var pd *PartitionDownError
		if !errors.As(err, &pd) || pd.Shard != victim {
			t.Fatalf("err = %v, want PartitionDownError{%d}", err, victim)
		}
	}
	if nbrs := cv.NbrsOut(ctx, deadV, nil); len(nbrs) != 0 {
		t.Fatalf("unchecked read of dead partition returned %v, want empty", nbrs)
	}
	if _, err := cv.NbrsOutChecked(ctx, liveV, nil); err != nil {
		t.Fatalf("surviving partition read: %v", err)
	}
	// In-reads must union every partition; with one down they fail typed
	// rather than answer a silently partial union.
	if _, err := cv.NbrsInChecked(ctx, liveV, nil); err == nil {
		t.Fatal("checked in-read with a dead partition must fail typed")
	}
}

// TestEpochVectorDegenerate pins the single-shard fix: the vector has
// length 1 and its sum is the scalar epoch the API always reported.
func TestEpochVectorDegenerate(t *testing.T) {
	cl := newCluster(t, 1, 0, Config{Linger: time.Millisecond})
	if _, err := cl.Ingest(testEdges(100), true); err != nil {
		t.Fatal(err)
	}
	vec := cl.EpochVector()
	if len(vec) != 1 {
		t.Fatalf("epoch vector = %v, want length 1", vec)
	}
	if got := EpochScalar(vec); got != vec[0] || got != cl.Shard(0).Epoch() {
		t.Fatalf("scalar = %d, vector %v, shard epoch %d", got, vec, cl.Shard(0).Epoch())
	}
}

// TestShutdownConvergence: a graceful Shutdown applies every accepted
// write and drains the followers, so leaders and replicas converge.
func TestShutdownConvergence(t *testing.T) {
	cl := newCluster(t, 2, 1, Config{Linger: time.Millisecond})
	edges := testEdges(1000)
	if _, err := cl.Ingest(edges, false); err != nil { // async: queued only
		t.Fatal(err)
	}
	cl.Shutdown()
	for i := 0; i < cl.Shards(); i++ {
		leader := cl.Shard(i).Store()
		for ri, r := range cl.Shard(i).Replicas() {
			if got, want := r.Store().Log().Head(), leader.Log().Head(); got != want {
				t.Fatalf("shard %d replica %d drained %d edges, leader %d", i, ri, got, want)
			}
		}
	}
}
