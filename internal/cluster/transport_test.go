package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/xpsim"
)

// waitReplicaRunning polls until the follower is running at the leader's
// epoch with no permanent error.
func waitReplicaRunning(t *testing.T, sh *Shard, r *Replica) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := r.Err(); err != nil {
			t.Fatalf("replica failed permanently: %v", err)
		}
		if r.State() == "running" && r.Epoch() == sh.Epoch() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck: state=%s epoch=%d leader=%d nextSeq=%d shipSeq=%d",
				r.State(), r.Epoch(), sh.Epoch(), r.NextSeq(), sh.ShipSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaFrozenFollowerDoesNotStallLeader is the PR-10 regression:
// before the lag breaker, a follower that stopped consuming froze the
// leader's writer goroutine on the 65th chunk. Now the leader exhausts
// its bounded retry budget, abandons the chunk, flips the follower into
// resync, and keeps ingesting; when the follower thaws it catches up
// through the resync path and converges.
func TestReplicaFrozenFollowerDoesNotStallLeader(t *testing.T) {
	cl := newCluster(t, 1, 1, Config{
		Linger: time.Millisecond,
		// Keep the abandon path fast: the frozen inbox refuses ~hundreds
		// of chunks and each one burns the full retry budget.
		ShipAttempts: 2,
		ShipBackoff:  50 * time.Microsecond,
		// Smaller than the 200 chunks shipped below, so the thawed
		// follower finds the stream gone past the retention ring and must
		// take the snapshot-rebuild path.
		ShipRetain: 32,
	})
	sh := cl.Shard(0)
	rep := sh.Replicas()[0]

	frozen := make(chan struct{})
	rep.mu.Lock()
	rep.applyGate = func() { <-frozen }
	rep.mu.Unlock()

	// 200 single-chunk ingests: far more than the inbox (64) plus the
	// retention ring can hide. Pre-PR-10 this deadlocked right here.
	edges := testEdges(2000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ingestChunks(t, cl, edges, 10)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("leader ingest stalled behind a frozen follower")
	}

	sc := sh.ShipCounters()
	if sc.GiveUps == 0 && sc.Skips == 0 {
		t.Fatalf("expected abandoned or skipped chunks behind a frozen follower, counters %+v", sc)
	}

	// Thaw. The stuck applyMsg finishes its chunk, the loop sees the
	// resyncing state, and the follower catches up from the leader.
	rep.mu.Lock()
	rep.applyGate = nil
	rep.mu.Unlock()
	close(frozen)

	waitReplicaRunning(t, sh, rep)
	rc := rep.Counters()
	if rc.Resyncs == 0 {
		t.Fatalf("follower converged without resyncing? counters %+v", rc)
	}
	// The stream moved ~200 chunks past a 32-chunk retention ring while
	// the follower was frozen: catching up required a snapshot rebuild.
	if rc.SnapReplays == 0 {
		t.Fatalf("deep lag recovered without a snapshot rebuild: %+v", rc)
	}
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	leader := sh.Store()
	for v := graph.VID(0); v < leader.NumVertices(); v++ {
		lo := sorted(append([]uint32(nil), leader.Nbrs(ctx, core.Out, v, nil)...))
		ro := sorted(rep.Store().Nbrs(ctx, core.Out, v, nil))
		if !equalU32(lo, ro) {
			t.Fatalf("thawed follower out(%d) = %v, leader %v", v, ro, lo)
		}
	}
}

// TestReplicaDuplicateDeliveryDedupe pins exactly-once apply under a
// transport that duplicates every chunk: the follower discards the
// second copies by sequence number, so its log holds each edge exactly
// once — byte-for-byte the leader's count.
func TestReplicaDuplicateDeliveryDedupe(t *testing.T) {
	plan := &chaos.Plan{Seed: 0xD0D0, DupProb: 1, DelayMax: 200 * time.Microsecond}
	cl := newCluster(t, 2, 1, Config{
		Linger:    time.Millisecond,
		Transport: NewChaosTransport(plan),
	})
	ingestChunks(t, cl, testEdges(2000), 100)

	var dedupes int64
	for i := 0; i < cl.Shards(); i++ {
		sh := cl.Shard(i)
		for _, r := range sh.Replicas() {
			waitReplicaRunning(t, sh, r)
			rc := r.Counters()
			dedupes += rc.Dedupes
			if got, want := r.Store().Log().Head(), sh.Store().Log().Head(); got != want {
				t.Fatalf("shard %d: follower logged %d edges under duplication, leader %d (dedupe broken)",
					i, got, want)
			}
		}
	}
	if dedupes == 0 {
		t.Fatal("DupProb=1 but no duplicate was deduped")
	}
	if st := plan.Snapshot(); st.Dups == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", st)
	}
}

// TestReplicaApplyErrorClassification pins the transient/permanent
// split: a recoverable apply failure sends the follower through resync
// with Err() still nil, while true data damage (a media error on the
// follower's own device) is terminal.
func TestReplicaApplyErrorClassification(t *testing.T) {
	t.Run("transient", func(t *testing.T) {
		cl := newCluster(t, 1, 1, Config{Linger: time.Millisecond})
		sh := cl.Shard(0)
		rep := sh.Replicas()[0]

		tripped := false
		rep.mu.Lock()
		rep.applyErrHook = func(seq uint64) error {
			if seq == 3 && !tripped {
				tripped = true
				return fmt.Errorf("injected transient apply failure at seq %d", seq)
			}
			return nil
		}
		rep.mu.Unlock()

		ingestChunks(t, cl, testEdges(1000), 100)
		waitReplicaRunning(t, sh, rep)

		if err := rep.Err(); err != nil {
			t.Fatalf("transient failure surfaced as permanent: %v", err)
		}
		rc := rep.Counters()
		if rc.TransientApplyErrors == 0 {
			t.Fatalf("transient counter not bumped: %+v", rc)
		}
		// A possibly half-applied chunk must rebuild from a snapshot, not
		// replay the retained log (double-apply hazard).
		if rc.SnapReplays == 0 {
			t.Fatalf("transient failure recovered without a snapshot rebuild: %+v", rc)
		}
		if got, want := rep.Store().Log().Head(), sh.Store().Log().Head(); got != want {
			t.Fatalf("recovered follower logged %d edges, leader %d", got, want)
		}
	})

	t.Run("permanent", func(t *testing.T) {
		cl := newCluster(t, 1, 1, Config{Linger: time.Millisecond})
		sh := cl.Shard(0)
		rep := sh.Replicas()[0]

		rep.mu.Lock()
		rep.applyErrHook = func(seq uint64) error {
			if seq == 2 {
				return &xpsim.MediaError{Node: 0, Line: -1}
			}
			return nil
		}
		rep.mu.Unlock()

		ingestChunks(t, cl, testEdges(500), 100)
		deadline := time.Now().Add(5 * time.Second)
		for rep.State() != "damaged" {
			if time.Now().After(deadline) {
				t.Fatalf("replica state = %s, want damaged", rep.State())
			}
			time.Sleep(time.Millisecond)
		}
		err := rep.Err()
		var me *xpsim.MediaError
		if !errors.As(err, &me) {
			t.Fatalf("Err() = %v, want the media error", err)
		}
		// A damaged follower is never selected for failover.
		cl.KillShard(0)
		if bestReplica(sh) != nil {
			t.Fatal("damaged replica offered for failover")
		}
		// Health names the state.
		ch := cl.Health()
		if got := ch.Shards[0].ReplicaStates; len(got) != 1 || got[0] != "damaged" {
			t.Fatalf("health replica states = %v, want [damaged]", got)
		}
	})
}

// TestReplicaGapResyncAfterDrops: a transport that drops everything for
// a while opens sequence holes the reorder buffer cannot close; the
// follower detects the gap, resyncs from the leader, and converges
// edge-for-edge once the chaos heals.
func TestReplicaGapResyncAfterDrops(t *testing.T) {
	plan := &chaos.Plan{Seed: 0xBAD, DropProb: 1}
	cl := newCluster(t, 1, 1, Config{
		Linger:       time.Millisecond,
		Transport:    NewChaosTransport(plan),
		ShipAttempts: 2,
		ShipBackoff:  50 * time.Microsecond,
		GapWait:      2 * time.Millisecond,
	})
	sh := cl.Shard(0)
	rep := sh.Replicas()[0]

	edges := testEdges(1500)
	ingestChunks(t, cl, edges[:1000], 100)
	plan.Heal()
	ingestChunks(t, cl, edges[1000:], 100)

	waitReplicaRunning(t, sh, rep)
	rc := rep.Counters()
	if rc.Resyncs == 0 {
		t.Fatalf("follower converged through total loss without resync: %+v", rc)
	}
	if got, want := rep.Store().Log().Head(), sh.Store().Log().Head(); got != want {
		t.Fatalf("resynced follower logged %d edges, leader %d", got, want)
	}
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	leader := sh.Store()
	for v := graph.VID(0); v < leader.NumVertices(); v++ {
		lo := sorted(append([]uint32(nil), leader.Nbrs(ctx, core.Out, v, nil)...))
		ro := sorted(rep.Store().Nbrs(ctx, core.Out, v, nil))
		if !equalU32(lo, ro) {
			t.Fatalf("out(%d): follower %v, leader %v", v, ro, lo)
		}
	}
}

// TestBreakerOverloadArm pins the overload side of the breaker state
// machine: consecutive queue-full sheds trip it, the cooldown admits a
// half-open probe, an admitted write closes it, and the transition
// counters record the full open → half-open → closed cycle.
func TestBreakerOverloadArm(t *testing.T) {
	b := NewBreaker(3, 2, time.Second)
	t0 := time.Unix(2000, 0)

	b.NoteShed(t0)
	if v := b.View(t0); v.Open {
		t.Fatal("one shed tripped the breaker below the threshold")
	}
	b.NoteAdmit() // an admit between sheds resets the streak
	b.NoteShed(t0)
	if v := b.View(t0); v.Open {
		t.Fatal("streak survived an admit")
	}
	b.NoteShed(t0)
	if v := b.View(t0); !v.Open || v.Trips != 1 {
		t.Fatalf("two consecutive sheds should trip: %+v", v)
	}
	if ok, wait := b.Allow(t0); ok || wait <= 0 {
		t.Fatalf("open breaker admitted a write: ok=%v wait=%v", ok, wait)
	}

	// Cooldown over: a probe is admitted; shedding it re-opens at once.
	t1 := t0.Add(2 * time.Second)
	if ok, _ := b.Allow(t1); !ok {
		t.Fatal("half-open probe refused after cooldown")
	}
	b.NoteShed(t1)
	if ok, _ := b.Allow(t1); ok {
		t.Fatal("breaker should re-open when the probe is shed")
	}

	// Second probe gets through the queue: closed, streak reset.
	t2 := t1.Add(2 * time.Second)
	if ok, _ := b.Allow(t2); !ok {
		t.Fatal("second probe refused")
	}
	b.NoteAdmit()
	v := b.View(t2)
	if v.Open {
		t.Fatal("breaker still open after an admitted probe")
	}
	if v.Trips != 2 || v.Closes != 1 || v.Probes != 2 || v.Rejected == 0 {
		t.Fatalf("transition counters = %+v, want 2 trips, 1 close, 2 probes", v)
	}
	b.NoteShed(t2)
	if vv := b.View(t2); vv.Open {
		t.Fatal("shed streak should have reset on close")
	}
}
