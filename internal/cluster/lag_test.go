package cluster

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/xpsim"
)

// copyAdj deep-copies an adjacency accumulator so per-epoch expectations
// stay frozen as later chunks land.
func copyAdj(adj map[graph.VID][]uint32) map[graph.VID][]uint32 {
	out := make(map[graph.VID][]uint32, len(adj))
	for v, nbrs := range adj {
		out[v] = append([]uint32(nil), nbrs...)
	}
	return out
}

// TestFailoverMidLagEpochMonotonic is the satellite-3 regression test:
// kill a shard leader while its only replica is mid-lag (stalled with
// shipped chunks queued), then watch the failed-over partition catch up
// through repeated AcquireView calls. Two properties are pinned:
//
//  1. the epoch vector never regresses — each acquired view's pinned
//     epoch is >= the previous one's, from the stale mid-lag epoch all
//     the way to convergence on the last shipped epoch;
//  2. every view is edge-for-edge correct *at its pinned epoch*: the
//     replica serves exactly the chunk prefix that epoch covers, never
//     a torn or reordered application.
func TestFailoverMidLagEpochMonotonic(t *testing.T) {
	cl := newCluster(t, 1, 1, Config{Linger: time.Millisecond, BatchEdges: 512})
	sh := cl.Shard(0)
	rep := sh.Replicas()[0]

	// Stall the replica's apply goroutine before any write: the gate
	// blocks it ahead of each chunk's application (outside the replica's
	// lock, so reads and epoch queries keep flowing) while shipped
	// chunks queue in its channel.
	release := make(chan struct{})
	rep.mu.Lock()
	rep.applyGate = func() { <-release }
	rep.mu.Unlock()
	stalled := true
	defer func() {
		if stalled {
			close(release)
		}
	}()

	// Feed chunks synchronously, recording the leader epoch and the
	// cumulative expected adjacency after each one. Each chunk is one
	// Apply (chunk < BatchEdges, sync round-trips), so these are exactly
	// the epochs the replica will publish while catching up. Keep the
	// chunk count under ReplicaQueue so the stalled follower never
	// backpressures the leader.
	all := testEdges(3000)
	adjOut := map[graph.VID][]uint32{}
	adjIn := map[graph.VID][]uint32{}
	outAt := map[uint64]map[graph.VID][]uint32{1: {}} // epoch 1: initial empty publication
	inAt := map[uint64]map[graph.VID][]uint32{1: {}}
	const chunk = 300
	for off := 0; off < len(all); off += chunk {
		end := off + chunk
		if end > len(all) {
			end = len(all)
		}
		if _, err := cl.Ingest(all[off:end], true); err != nil {
			t.Fatalf("ingest chunk at %d: %v", off, err)
		}
		for _, e := range all[off:end] {
			adjOut[e.Src] = append(adjOut[e.Src], e.Dst)
			adjIn[graph.VID(e.Dst)] = append(adjIn[graph.VID(e.Dst)], uint32(e.Src))
		}
		epoch := sh.Epoch()
		outAt[epoch] = copyAdj(adjOut)
		inAt[epoch] = copyAdj(adjIn)
	}
	finalEpoch := sh.Epoch()
	if finalEpoch == 1 {
		t.Fatal("no chunks applied")
	}
	if got := rep.Epoch(); got != 1 {
		t.Fatalf("replica advanced to epoch %d while stalled", got)
	}

	// Leader dies with the replica maximally behind.
	cl.KillShard(0)

	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	checkAtEpoch := func(cv *ClusterView, epoch uint64) {
		t.Helper()
		wantOut, ok := outAt[epoch]
		if !ok {
			t.Fatalf("view pinned at epoch %d, which no applied chunk produced", epoch)
		}
		wantIn := inAt[epoch]
		for v := graph.VID(0); v < 256; v++ {
			if got := sorted(cv.NbrsOut(ctx, v, nil)); !equalU32(got, sorted(wantOut[v])) {
				t.Fatalf("epoch %d: NbrsOut(%d) = %v, want %v", epoch, v, got, sorted(wantOut[v]))
			}
			if got := sorted(cv.NbrsIn(ctx, v, nil)); !equalU32(got, sorted(wantIn[v])) {
				t.Fatalf("epoch %d: NbrsIn(%d) = %v, want %v", epoch, v, got, sorted(wantIn[v]))
			}
		}
	}

	// Mid-lag view: the partition serves through the stalled replica at
	// its stale epoch — old data, but consistent old data.
	cv := cl.AcquireView()
	if got := cv.EpochVector()[0]; got != 1 {
		cv.Release()
		t.Fatalf("mid-lag view pinned epoch %d, want the replica's stale 1", got)
	}
	checkAtEpoch(cv, 1)
	cv.Release()

	// Unstall and watch the catch-up: epochs climb monotonically to the
	// last shipped epoch, and every intermediate view serves exactly its
	// pinned epoch's chunk prefix.
	close(release)
	stalled = false
	var last uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		cv := cl.AcquireView()
		epoch := cv.EpochVector()[0]
		if epoch < last {
			cv.Release()
			t.Fatalf("epoch vector regressed: %d -> %d", last, epoch)
		}
		last = epoch
		checkAtEpoch(cv, epoch)
		cv.Release()
		if epoch == finalEpoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failed-over partition stuck at epoch %d, want %d", epoch, finalEpoch)
		}
		time.Sleep(time.Millisecond)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("replica apply failed during catch-up: %v", err)
	}
}
