package cluster

import (
	"errors"
	"time"

	"repro/internal/chaos"
)

// The transport boundary between a shard leader and its followers
// (DESIGN.md §14). Until PR 10 the leader called straight into the
// replica's inbox channel and blocked forever when it was full; now
// every shipped chunk crosses an explicit, fallible Transport carrying
// a monotonic per-shard sequence number and a chunk id, the leader
// retries failed attempts with bounded exponential backoff, and a
// chunk that cannot be delivered is *abandoned* — the follower detects
// the sequence hole and resyncs instead of the leader waiting.
//
// Transport semantics are deliberately weak, like a real fabric:
//   - an attempt can fail with the message never arriving (drop,
//     partition, full inbox), and the sender knows;
//   - an attempt can "fail" with the message arriving anyway (a delay
//     past the sender's patience), and the sender cannot know — which
//     is why the receiver dedupes by sequence number;
//   - duplicated and reordered deliveries are legal.
// The replica's sequence/dedupe/resync machinery (replica.go) is the
// reliability layer on top; the transport stays dumb.

// Transport is one delivery fabric for leader→replica shipping.
// Implementations must not block the caller beyond a bounded, small
// time: injected delays are realized asynchronously.
type Transport interface {
	// Ship makes one delivery attempt (attempt is 1-based) of the
	// chunk with sequence number seq on link. deliver runs the
	// receiver's inbox admission and reports whether the message was
	// accepted; the transport may invoke it zero times (drop), once,
	// or more than once (duplication), synchronously or later.
	// A nil return means the sender may consider the chunk delivered;
	// an error means it should retry or give up — even though the
	// message may still arrive (delayed delivery).
	Ship(link chaos.Link, seq uint64, attempt int, deliver func() bool) error
}

// Typed transport failures (all transient by construction — the
// sender's retry/give-up policy decides what to do with them).
var (
	// ErrShipDropped: the message was lost in flight.
	ErrShipDropped = errors.New("transport: message dropped")
	// ErrShipPartitioned: the link is partitioned; retries will keep
	// failing until the partition heals.
	ErrShipPartitioned = errors.New("transport: link partitioned")
	// ErrShipBusy: the receiver's inbox refused the message
	// (backpressure — the follower is not consuming).
	ErrShipBusy = errors.New("transport: receiver inbox full")
	// ErrShipTimeout: the delivery did not complete within the
	// sender's patience; the message may or may not arrive later.
	ErrShipTimeout = errors.New("transport: delivery timed out")
)

// perfectTransport is the default in-process fabric: one synchronous
// delivery attempt, failing only on receiver backpressure.
type perfectTransport struct{}

func (perfectTransport) Ship(_ chaos.Link, _ uint64, _ int, deliver func() bool) error {
	if !deliver() {
		return ErrShipBusy
	}
	return nil
}

// ChaosTransport injects faults from a seeded chaos.Plan: drops,
// duplicates, delays (realized on goroutines so the sender never
// blocks), and seq-window partitions. Deterministic per
// (seed, link, seq, attempt) — see internal/chaos.
type ChaosTransport struct {
	plan *chaos.Plan
}

// NewChaosTransport wraps a plan as a Transport. A nil or healed plan
// behaves like the perfect transport.
func NewChaosTransport(plan *chaos.Plan) *ChaosTransport {
	return &ChaosTransport{plan: plan}
}

// Plan returns the underlying chaos plan (harnesses heal and inspect
// it).
func (t *ChaosTransport) Plan() *chaos.Plan { return t.plan }

func (t *ChaosTransport) Ship(link chaos.Link, seq uint64, attempt int, deliver func() bool) error {
	verdict, d := t.plan.Fate(link, seq, attempt)
	switch verdict {
	case chaos.Drop:
		return ErrShipDropped
	case chaos.Partition:
		return ErrShipPartitioned
	case chaos.Duplicate:
		// One copy now, one later. The payload is immutable and shared,
		// so the late copy needs no deep clone; the receiver dedupes.
		go func() {
			time.Sleep(d)
			deliver()
		}()
		if !deliver() {
			return ErrShipBusy
		}
		return nil
	case chaos.Delay:
		// The message will arrive after d, but the sender has already
		// lost patience: it sees a timeout and may retry, producing a
		// duplicate the receiver dedupes. This is the classic ambiguous
		// RPC outcome.
		go func() {
			time.Sleep(d)
			deliver()
		}()
		return ErrShipTimeout
	default:
		if !deliver() {
			return ErrShipBusy
		}
		return nil
	}
}
