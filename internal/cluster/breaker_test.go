package cluster

import (
	"testing"
	"time"
)

// TestBreakerStateMachine pins the per-shard failure-shedding policy:
// threshold consecutive media failures open the breaker, the cooldown
// admits a half-open probe, a failed probe re-opens immediately, a
// successful one closes and resets the streak.
func TestBreakerStateMachine(t *testing.T) {
	b := Breaker{threshold: 3, cooldown: time.Second}
	t0 := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		b.recordFailure(t0)
	}
	if ok, _ := b.allow(t0); !ok {
		t.Fatal("breaker opened before the threshold")
	}
	b.recordFailure(t0) // third consecutive failure trips it
	if ok, wait := b.allow(t0); ok || wait <= 0 {
		t.Fatalf("breaker should be open: ok=%v wait=%v", ok, wait)
	}
	if v := b.view(t0); !v.Open || v.Trips != 1 || v.Rejected != 1 {
		t.Fatalf("view = %+v", v)
	}

	// After the cooldown a half-open probe is admitted; its failure
	// re-opens immediately, without a fresh threshold's worth of failures.
	t1 := t0.Add(2 * time.Second)
	if ok, _ := b.allow(t1); !ok {
		t.Fatal("half-open probe refused after cooldown")
	}
	b.recordFailure(t1)
	if ok, _ := b.allow(t1); ok {
		t.Fatal("breaker should re-open on a failed half-open probe")
	}

	// A successful probe closes it fully.
	t2 := t1.Add(2 * time.Second)
	if ok, _ := b.allow(t2); !ok {
		t.Fatal("second probe refused")
	}
	b.recordSuccess()
	if v := b.view(t2); v.Open {
		t.Fatal("breaker still open after a successful probe")
	}
	b.recordFailure(t2)
	b.recordFailure(t2)
	if ok, _ := b.allow(t2); !ok {
		t.Fatal("failure streak should have reset on success")
	}
}
