package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/prop"
	"repro/internal/xpsim"
)

// newTypedStore is newStore with the property layer attached.
func newTypedStore(t *testing.T, name string) *core.Store {
	t.Helper()
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	st, err := core.New(m, pmem.NewHeap(m), nil, core.Options{
		Name: name, NumVertices: 1 << 10, LogCapacity: 1 << 16,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 2, Props: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newTypedCluster(t *testing.T, shards, replicas int, cfg Config) *Cluster {
	t.Helper()
	stores := make([]*core.Store, shards)
	for i := range stores {
		stores[i] = newTypedStore(t, fmt.Sprintf("tshard%d", i))
	}
	cfg.Replicas = replicas
	if replicas > 0 {
		cfg.ReplicaFactory = func(shardID, replica int) (*core.Store, error) {
			return newTypedStore(t, fmt.Sprintf("tshard%d-replica%d", shardID, replica)), nil
		}
	}
	cl, err := New(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// typedWorkload builds distinct typed edges spanning every shard's vertex
// range, plus one property per source vertex.
func typedWorkload(follows, blocks uint16) ([]graph.Edge, []uint16, []graph.PropSet) {
	const n = 600
	edges := make([]graph.Edge, n)
	labels := make([]uint16, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: uint32(i % 200), Dst: uint32(200 + i/200)}
		if i%2 == 0 {
			labels[i] = follows
		} else {
			labels[i] = blocks
		}
	}
	props := make([]graph.PropSet, 200)
	for v := range props {
		props[v] = graph.PropSet{V: uint32(v), Key: 1, Val: int64(v % 50)}
	}
	return edges, labels, props
}

// typedOutOf collects v's filtered out-neighbors as a nbr→label map.
func typedOutOf(t *testing.T, tv interface {
	VisitOutTyped(*xpsim.Ctx, graph.VID, prop.Filter, func(uint32, uint16)) error
}, v graph.VID, f prop.Filter) map[uint32]uint16 {
	t.Helper()
	got := map[uint32]uint16{}
	err := tv.VisitOutTyped(xpsim.NewCtx(xpsim.NodeUnbound), v, f, func(nbr uint32, lbl uint16) {
		got[nbr] = lbl
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func sameLabeled(a, b map[uint32]uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestClusterTypedDifferential: a 4-shard cluster with one follower per
// shard, fed typed batches through the routed synchronous path, serves
// the typed view identical to a single store fed the same stream — and
// every follower converges label-for-label and property-for-property
// with its leader.
func TestClusterTypedDifferential(t *testing.T) {
	cl := newTypedCluster(t, 4, 1, Config{})
	single := newTypedStore(t, "tsingle")

	follows, err := cl.RegisterLabel("follows")
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := cl.RegisterLabel("blocks")
	if err != nil {
		t.Fatal(err)
	}
	if sf, err := single.RegisterLabel("follows"); err != nil || sf != follows {
		t.Fatalf("single follows = %d,%v, cluster %d", sf, err, follows)
	}
	if sb, err := single.RegisterLabel("blocks"); err != nil || sb != blocks {
		t.Fatalf("single blocks = %d,%v, cluster %d", sb, err, blocks)
	}

	edges, labels, props := typedWorkload(follows, blocks)
	const chunk = 130
	for off := 0; off < len(edges); off += chunk {
		end := off + chunk
		if end > len(edges) {
			end = len(edges)
		}
		if _, err := cl.IngestTyped(edges[off:end], labels[off:end], nil); err != nil {
			t.Fatalf("typed chunk at %d: %v", off, err)
		}
		if _, err := single.IngestTyped(edges[off:end], labels[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.IngestTyped(nil, nil, props); err != nil {
		t.Fatal(err)
	}
	if err := single.SetProps(props); err != nil {
		t.Fatal(err)
	}
	// Untyped edges ride the plain routed path into the same stores.
	plain := testEdges(300)
	ingestChunks(t, cl, plain, 100)
	if _, err := single.Ingest(plain); err != nil {
		t.Fatal(err)
	}

	cv := cl.AcquireView()
	defer cv.Release()
	if got := cv.Labels(); len(got) != 3 || got[follows] != "follows" || got[blocks] != "blocks" {
		t.Fatalf("cluster label table = %v", got)
	}
	if id, ok := cv.LabelID("blocks"); !ok || id != blocks {
		t.Fatalf("LabelID(blocks) = %d,%v", id, ok)
	}
	filters := []prop.Filter{
		{},
		{Types: []uint16{follows}},
		{Types: []uint16{follows, blocks}},
		{Key: 1, Op: prop.OpGe, Val: 25},
		{Types: []uint16{blocks}, Key: 1, Op: prop.OpLt, Val: 10},
	}
	for v := graph.VID(0); v < 256; v++ {
		for _, f := range filters {
			got := typedOutOf(t, cv, v, f)
			want := typedOutOf(t, single, v, f)
			if !sameLabeled(got, want) {
				t.Fatalf("out(%d) filter %+v: cluster %v, single %v", v, f, got, want)
			}
		}
		cval, cok, err := cv.VProp(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		sval, sok, err := single.VProp(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cval != sval || cok != sok {
			t.Fatalf("VProp(%d) = %d,%v, single %d,%v", v, cval, cok, sval, sok)
		}
	}

	// Followers converge typed-for-typed with their leaders.
	waitReplicasCaughtUp(t, cl)
	for i := 0; i < cl.Shards(); i++ {
		leader := cl.Shard(i).Store()
		for _, r := range cl.Shard(i).Replicas() {
			rs := r.Store()
			lt := leader.Labels()
			if rt := rs.Labels(); len(rt) != len(lt) || rt[follows] != lt[follows] || rt[blocks] != lt[blocks] {
				t.Fatalf("shard %d replica label table = %v, leader %v", i, rt, lt)
			}
			for v := graph.VID(0); v < 256; v++ {
				if cl.Owner(v) != i {
					continue
				}
				got := typedOutOf(t, rs, v, prop.Filter{})
				want := typedOutOf(t, leader, v, prop.Filter{})
				if !sameLabeled(got, want) {
					t.Fatalf("shard %d replica out(%d) = %v, leader %v", i, v, got, want)
				}
				rval, rok, err := rs.VProp(v, 1)
				if err != nil {
					t.Fatal(err)
				}
				lval, lok, err := leader.VProp(v, 1)
				if err != nil {
					t.Fatal(err)
				}
				if rval != lval || rok != lok {
					t.Fatalf("shard %d replica VProp(%d) = %d,%v, leader %d,%v", i, v, rval, rok, lval, lok)
				}
			}
		}
	}
}

// TestClusterTypedFailClosed pins the down-shard behavior of the typed
// write path: label registration refuses while any shard is down, and a
// typed batch routed to the dead shard names it.
func TestClusterTypedFailClosed(t *testing.T) {
	cl := newTypedCluster(t, 2, 0, Config{})
	if _, err := cl.RegisterLabel("follows"); err != nil {
		t.Fatal(err)
	}
	cl.KillShard(1)

	var se *ShardError
	if _, err := cl.RegisterLabel("blocks"); !errors.As(err, &se) || !errors.Is(err, ErrShardDown) {
		t.Fatalf("RegisterLabel with dead shard = %v, want ShardError{ErrShardDown}", err)
	}
	// An edge owned by the dead shard fails with its name; one owned by
	// the live shard still lands.
	var deadV, liveV graph.VID
	for v := graph.VID(0); v < 256; v++ {
		if cl.Owner(v) == 1 {
			deadV = v
		} else {
			liveV = v
		}
	}
	if _, err := cl.IngestTyped([]graph.Edge{{Src: uint32(deadV), Dst: 1}}, []uint16{1}, nil); !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("typed ingest to dead shard = %v, want ShardError{Shard: 1}", err)
	}
	if _, err := cl.IngestTyped([]graph.Edge{{Src: uint32(liveV), Dst: 1}}, []uint16{1}, nil); err != nil {
		t.Fatalf("typed ingest to live shard: %v", err)
	}
}
