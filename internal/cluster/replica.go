package cluster

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/view"
	"repro/internal/xpsim"
)

// ReplicaQueue bounds each follower's shipping channel in batches. The
// leader's writer goroutine blocks when a follower falls this far
// behind, so replica lag is bounded instead of unbounded — the cluster's
// flow-control choice, documented in DESIGN.md §11.
const ReplicaQueue = 64

// shipEntry is one applied leader chunk on its way to a follower,
// tagged with the leader epoch whose publication it produced. Typed
// entries additionally carry per-edge labels, vertex-property writes,
// and label-table broadcasts (DESIGN.md §13), so a follower's property
// columns converge with its leader's exactly like its adjacency does.
type shipEntry struct {
	edges []graph.Edge
	epoch uint64

	typed  bool
	labels []uint16        // labels[i] types edges[i]
	props  []graph.PropSet // vertex-property writes in the same window
	defs   []labelDef      // label-table (id, name) broadcasts
}

// labelDef is one broadcast label-table assignment.
type labelDef struct {
	id   uint16
	name string
}

// Replica is one log-shipping follower of a shard: its own core.Store
// fed the leader's applied chunks in application order, publishing a
// snapshot stamped with the shipped leader epoch after each one. A
// replica's published view at epoch E is edge-for-edge identical to the
// leader's published view at epoch E, because both stores applied the
// identical chunk sequence — the property the replica-lag differential
// test pins.
//
// Replicas only lag on epochs, never on content: leader publications
// that carry no edges (explicit snapshot, flush, compact, scrub) bump
// the leader epoch without shipping anything, so a caught-up replica's
// epoch can trail the leader's while its logical content is identical.
// The read-scaling path therefore treats a replica as eligible only
// when its epoch matches the leader's latest *shipped* epoch.
type Replica struct {
	shardID int
	id      int
	store   *core.Store

	// mu orders the apply goroutine's store mutation against snapshot
	// reads, exactly like a shard leader's mu.
	mu  sync.RWMutex
	cur *published // guarded by mu

	ch   chan shipEntry
	done chan struct{}

	applyErr error // first apply failure; guarded by mu

	// applyGate, when set, runs before each shipped chunk is applied —
	// outside mu, so reads keep flowing. Tests use it to stall the apply
	// goroutine and create replica lag deterministically. Guarded by mu.
	applyGate func()
}

// newReplica builds a follower over an empty store and starts its apply
// goroutine.
func newReplica(shardID, id int, store *core.Store) *Replica {
	r := &Replica{
		shardID: shardID,
		id:      id,
		store:   store,
		ch:      make(chan shipEntry, ReplicaQueue),
		done:    make(chan struct{}),
	}
	// Publish the initial empty snapshot at the leader's initial epoch
	// (1), so a view acquired before any write still has something to
	// pin.
	r.mu.Lock()
	r.cur = &published{snap: store.Snapshot(xpsim.NewCtx(xpsim.NodeUnbound)), epoch: 1}
	r.mu.Unlock()
	go r.loop()
	return r
}

// Store returns the follower's store (tests and telemetry).
func (r *Replica) Store() *core.Store { return r.store }

// Epoch reads the shipped leader epoch the replica has published up to.
func (r *Replica) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur.epoch
}

// Err reports the first apply failure, if any (a failed replica stops
// advancing and is never selected for serving).
func (r *Replica) Err() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.applyErr
}

// ship hands one chunk to the apply goroutine; called from the leader's
// writer goroutine. Blocks when the replica is ReplicaQueue batches
// behind.
func (r *Replica) ship(e shipEntry) {
	select {
	case <-r.done:
		ingest.PutEdgeBuf(e.edges)
	case r.ch <- e:
	}
}

// close stops the apply goroutine after draining everything already
// shipped, so a graceful cluster shutdown leaves followers caught up.
func (r *Replica) close() {
	close(r.ch)
	<-r.done
}

// loop applies shipped chunks in order, republishing after each one
// stamped with the shipped leader epoch.
func (r *Replica) loop() {
	defer close(r.done)
	for e := range r.ch {
		r.mu.RLock()
		gate := r.applyGate
		r.mu.RUnlock()
		if gate != nil {
			gate()
		}
		r.mu.Lock()
		if r.applyErr == nil {
			if err := r.apply(e); err != nil {
				r.applyErr = err
			} else {
				old := r.cur
				r.cur = &published{
					snap:  r.store.Snapshot(xpsim.NewCtx(xpsim.NodeUnbound)),
					epoch: e.epoch,
				}
				old.retire()
			}
		}
		r.mu.Unlock()
		ingest.PutEdgeBuf(e.edges)
	}
}

// apply replays one shipped entry into the follower store (callers hold
// mu exclusively). Plain entries are a straight Ingest; typed entries
// replay label-table broadcasts first (so shipped ids always resolve),
// then the typed edges, then the property writes — the same order the
// leader applied them in.
func (r *Replica) apply(e shipEntry) error {
	if !e.typed {
		_, err := r.store.Ingest(e.edges)
		return err
	}
	for _, d := range e.defs {
		if err := r.store.SetLabelDef(d.id, d.name); err != nil {
			return err
		}
	}
	if len(e.edges) > 0 {
		if _, err := r.store.IngestTyped(e.edges, e.labels); err != nil {
			return err
		}
	}
	if len(e.props) > 0 {
		if err := r.store.SetProps(e.props); err != nil {
			return err
		}
	}
	return nil
}

// acquire pins the replica's current publication.
func (r *Replica) acquire() *published {
	r.mu.RLock()
	p := r.cur
	p.refs.Add(1)
	r.mu.RUnlock()
	return p
}

// View pins the replica's current publication and returns a guarded
// read view over it plus the shipped epoch it represents. Release the
// view by calling the returned release func. Test and failover surface.
func (r *Replica) View() (v view.Full, epoch uint64, release func()) {
	p := r.acquire()
	return view.GuardFull(p.snap, &r.mu), p.epoch, p.unref
}
