package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prop"
	"repro/internal/view"
	"repro/internal/xpsim"
)

// ReplicaQueue bounds each follower's shipping inbox in chunks. A full
// inbox refuses delivery (the transport reports ErrShipBusy); the
// leader retries briefly and then abandons the chunk, flipping the
// follower into resync — bounded lag with shed-to-resync instead of
// the pre-PR-10 behavior of blocking the leader's writer goroutine.
const ReplicaQueue = 64

// shipEntry is one applied leader chunk's immutable payload. One copy
// is made when the leader assigns the chunk its sequence number; the
// retention ring and every delivery attempt (including chaos-injected
// duplicates) share it read-only. Typed entries additionally carry
// per-edge labels, vertex-property writes, and label-table broadcasts
// (DESIGN.md §13).
type shipEntry struct {
	edges []graph.Edge
	epoch uint64

	typed  bool
	labels []uint16        // labels[i] types edges[i]
	props  []graph.PropSet // vertex-property writes in the same window
	defs   []labelDef      // label-table (id, name) broadcasts
}

// labelDef is one broadcast label-table assignment.
type labelDef struct {
	id   uint16
	name string
}

// shipMsg is one framed chunk on the wire: the per-shard stream
// sequence number, the derived chunk id (an integrity tag the receiver
// verifies), and the shared immutable payload.
type shipMsg struct {
	seq uint64
	id  uint64
	e   *shipEntry
}

// chunkID derives the integrity tag for (shard, seq). A message whose
// tag does not match its claimed seq was corrupted or misrouted and is
// discarded on receive.
func chunkID(shard int, seq uint64) uint64 {
	return splitmix64(uint64(uint32(shard))<<48 ^ seq)
}

// splitmix64 is the repo's deterministic PRNG step (backoff jitter and
// chunk ids here).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// rstate is a replica's serving state (DESIGN.md §14.3).
type rstate int32

const (
	// replicaRunning: applying the shipped stream in sequence order.
	replicaRunning rstate = iota
	// replicaResyncing: fell behind (sequence gap, abandoned chunk, or
	// transient apply failure) and is catching up from the leader —
	// still serving reads at its last published epoch.
	replicaResyncing
	// replicaDamaged: a permanent apply failure (true data damage);
	// the replica stops advancing and is never selected for serving.
	replicaDamaged
)

func (s rstate) String() string {
	switch s {
	case replicaRunning:
		return "running"
	case replicaResyncing:
		return "resyncing"
	case replicaDamaged:
		return "damaged"
	}
	return fmt.Sprintf("rstate(%d)", int32(s))
}

// ReplicaCounters is one consistent copy of a follower's transport and
// resync counters for metrics and tests.
type ReplicaCounters struct {
	// Dedupes: duplicate deliveries discarded (seq already applied) —
	// the exactly-once-apply counter.
	Dedupes int64
	// Misroutes: deliveries whose chunk id did not match their seq.
	Misroutes int64
	// Reorders: out-of-order deliveries held in the reorder buffer.
	Reorders int64
	// Resyncs: times the replica entered the resyncing state.
	Resyncs int64
	// LogReplays: catch-up rounds served from the leader's retention
	// ring; SnapReplays: rounds that rebuilt from a leader snapshot.
	LogReplays  int64
	SnapReplays int64
	// TransientApplyErrors: apply failures classified transient and
	// recovered via resync instead of killing the replica.
	TransientApplyErrors int64
}

// Replica is one log-shipping follower of a shard: its own core.Store
// fed the leader's applied chunks in sequence order, publishing a
// snapshot stamped with the shipped leader epoch after each one. A
// replica's published view at epoch E is edge-for-edge identical to the
// leader's published view at epoch E, because both stores applied the
// identical chunk sequence — the property the replica-lag and chaos
// differential tests pin.
//
// Unlike the pre-PR-10 follower, delivery is fallible: chunks arrive
// through a Transport that may drop, duplicate, delay, or reorder them.
// The replica dedupes by sequence number (exactly-once apply), holds
// early arrivals in a bounded reorder buffer, and treats an unfilled
// sequence hole — or a transient apply failure — as a signal to enter
// the resyncing state and catch up from the leader (retention-ring
// replay, or a full snapshot rebuild) rather than dying. Permanent
// applyErr is reserved for true data damage.
type Replica struct {
	shardID int
	id      int
	sh      *Shard
	// factory provisions a fresh store for a snapshot rebuild — the
	// same constructor that built the follower at Start.
	factory func() (*core.Store, error)

	gapWait       time.Duration
	reorderWindow int
	resyncLimit   int

	// mu orders the apply goroutine's store mutation (and the snapshot-
	// resync store swap) against snapshot reads, exactly like a shard
	// leader's mu.
	mu    sync.RWMutex
	store *core.Store // guarded by mu; swapped by snapshot resync
	cur   *published  // guarded by mu

	// sendMu orders deliveries against close: chaos-delayed deliveries
	// can fire from timer goroutines long after the replica shut down.
	sendMu   sync.Mutex
	chClosed bool
	ch       chan shipMsg
	nudge    chan struct{}
	done     chan struct{}

	state   atomic.Int32  // rstate
	nextSeq atomic.Uint64 // next sequence number to apply

	applyErr error // first PERMANENT apply failure; guarded by mu

	// Apply-goroutine-owned resync bookkeeping.
	stash         map[uint64]shipMsg // reorder buffer
	forceSnapshot bool               // a chunk may be half-applied: log replay unsafe
	resyncFails   int                // consecutive failed resync rounds

	dedupes     atomic.Int64
	misroutes   atomic.Int64
	reorders    atomic.Int64
	resyncs     atomic.Int64
	logReplays  atomic.Int64
	snapReplays atomic.Int64
	transients  atomic.Int64

	// applyGate, when set, runs before each shipped chunk is applied —
	// outside mu, so reads keep flowing. Tests use it to stall the apply
	// goroutine and create replica lag deterministically. Guarded by mu.
	applyGate func()
	// applyErrHook, when set, may inject an apply error for a seq before
	// the store is touched (error-classification tests). Guarded by mu.
	applyErrHook func(seq uint64) error
}

// newReplica builds a follower over an empty store and starts its apply
// goroutine.
func newReplica(sh *Shard, id int, store *core.Store, factory func() (*core.Store, error), cfg Config) *Replica {
	r := &Replica{
		shardID:       sh.id,
		id:            id,
		sh:            sh,
		factory:       factory,
		gapWait:       cfg.GapWait,
		reorderWindow: cfg.ReorderWindow,
		resyncLimit:   cfg.ResyncLimit,
		store:         store,
		ch:            make(chan shipMsg, ReplicaQueue),
		nudge:         make(chan struct{}, 1),
		done:          make(chan struct{}),
		stash:         make(map[uint64]shipMsg),
	}
	r.nextSeq.Store(1)
	// Publish the initial empty snapshot at the leader's initial epoch
	// (1), so a view acquired before any write still has something to
	// pin.
	r.mu.Lock()
	r.cur = &published{snap: store.Snapshot(xpsim.NewCtx(xpsim.NodeUnbound)), epoch: 1}
	r.mu.Unlock()
	go r.loop()
	return r
}

// Store returns the follower's current store (tests and telemetry; a
// snapshot resync replaces it).
func (r *Replica) Store() *core.Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store
}

// Epoch reads the shipped leader epoch the replica has published up to.
func (r *Replica) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur.epoch
}

// Err reports the first PERMANENT apply failure, if any. Transient
// faults — dropped chunks, reorders, recoverable apply errors — never
// surface here; they resolve through resync. A replica with a non-nil
// Err has stopped advancing and is never selected for serving.
func (r *Replica) Err() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.applyErr
}

// State reports the replica's serving state: running, resyncing, or
// damaged.
func (r *Replica) State() string { return r.stateNow().String() }

func (r *Replica) stateNow() rstate { return rstate(r.state.Load()) }

// NextSeq reports the next stream sequence number the replica expects
// (tests and metrics).
func (r *Replica) NextSeq() uint64 { return r.nextSeq.Load() }

// Counters reads the follower's transport/resync counters.
func (r *Replica) Counters() ReplicaCounters {
	return ReplicaCounters{
		Dedupes:              r.dedupes.Load(),
		Misroutes:            r.misroutes.Load(),
		Reorders:             r.reorders.Load(),
		Resyncs:              r.resyncs.Load(),
		LogReplays:           r.logReplays.Load(),
		SnapReplays:          r.snapReplays.Load(),
		TransientApplyErrors: r.transients.Load(),
	}
}

// deliver is the receiver side of the transport: non-blocking inbox
// admission. False means the inbox is full or the replica is closed —
// the transport surfaces that to the sender as ErrShipBusy.
func (r *Replica) deliver(m shipMsg) bool {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	if r.chClosed {
		return false
	}
	select {
	case r.ch <- m:
		return true
	default:
		return false
	}
}

// fellBehind is the leader's lag breaker: after exhausting its retry
// budget on a chunk it stops shipping to this follower and flips it
// into resync, instead of blocking the writer goroutine forever.
func (r *Replica) fellBehind() {
	r.toResync()
	select {
	case r.nudge <- struct{}{}:
	default:
	}
}

// toResync moves running → resyncing (damaged is terminal).
func (r *Replica) toResync() {
	for {
		s := r.state.Load()
		if rstate(s) == replicaDamaged || rstate(s) == replicaResyncing {
			return
		}
		if r.state.CompareAndSwap(s, int32(replicaResyncing)) {
			return
		}
	}
}

// setDamaged records a permanent apply failure and stops the replica.
func (r *Replica) setDamaged(err error) {
	r.mu.Lock()
	if r.applyErr == nil {
		r.applyErr = err
	}
	r.mu.Unlock()
	r.state.Store(int32(replicaDamaged))
}

// permanentApplyError classifies a replica apply failure. Media errors
// (the follower's own PMEM device dying) and damaged property columns
// are true data damage — no replay can fix them. Everything else is
// transient and recoverable by rebuilding from the leader.
func permanentApplyError(err error) bool {
	var me *xpsim.MediaError
	return errors.As(err, &me) || errors.Is(err, prop.ErrDamaged)
}

// close stops the apply goroutine. The goroutine first converges with
// the leader's shipped stream (resyncing if chunks were abandoned), so
// a graceful cluster shutdown leaves followers caught up.
func (r *Replica) close() {
	r.sendMu.Lock()
	if !r.chClosed {
		r.chClosed = true
		close(r.ch)
	}
	r.sendMu.Unlock()
	<-r.done
}

// loop is the apply goroutine: the in-order apply path, the reorder
// buffer's gap timer, and the resync state machine.
func (r *Replica) loop() {
	defer close(r.done)
	for {
		switch r.stateNow() {
		case replicaDamaged:
			for range r.ch { // discard deliveries until close
			}
			return
		case replicaResyncing:
			r.resync()
			continue
		}
		// Arm the gap timer only while the reorder buffer holds early
		// arrivals: if the missing seq does not show up within gapWait,
		// stop waiting and resync.
		var gap <-chan time.Time
		if len(r.stash) > 0 {
			gap = time.After(r.gapWait)
		}
		select {
		case m, ok := <-r.ch:
			if !ok {
				r.finalCatchUp()
				return
			}
			r.handle(m)
		case <-r.nudge:
			// State re-checked at the top of the loop.
		case <-gap:
			r.toResync()
		}
	}
}

// handle processes one delivery: integrity check, dedupe, in-order
// apply, or reorder-buffer stash with gap detection.
func (r *Replica) handle(m shipMsg) {
	if m.id != chunkID(r.shardID, m.seq) {
		r.misroutes.Add(1)
		return
	}
	next := r.nextSeq.Load()
	if m.seq < next {
		// Duplicate delivery (a retried chunk whose first copy arrived
		// late, or a chaos-injected dup): already applied, discard.
		r.dedupes.Add(1)
		return
	}
	if m.seq > next {
		// Sequence hole: hold the early arrival for reordering. A hole
		// wider than the reorder window will never close (the leader
		// abandoned a chunk) — resync immediately instead of waiting out
		// the gap timer.
		r.reorders.Add(1)
		r.stash[m.seq] = m
		if len(r.stash) > r.reorderWindow || m.seq-next > uint64(r.reorderWindow) {
			r.toResync()
		}
		return
	}
	if !r.applyMsg(m) {
		return
	}
	// Drain any stashed successors the apply just unblocked.
	for {
		m2, ok := r.stash[r.nextSeq.Load()]
		if !ok {
			return
		}
		delete(r.stash, m2.seq)
		if !r.applyMsg(m2) {
			return
		}
	}
}

// applyMsg applies one in-sequence chunk and republishes at its epoch.
// False means the replica left the running path (resyncing or damaged).
func (r *Replica) applyMsg(m shipMsg) bool {
	r.mu.RLock()
	gate, hook := r.applyGate, r.applyErrHook
	r.mu.RUnlock()
	if gate != nil {
		gate()
	}
	var err error
	if hook != nil {
		err = hook(m.seq)
	}
	if err == nil {
		r.mu.Lock()
		if err = r.apply(m.e); err == nil {
			r.nextSeq.Store(m.seq + 1)
			old := r.cur
			r.cur = &published{
				snap:  r.store.Snapshot(xpsim.NewCtx(xpsim.NodeUnbound)),
				epoch: m.e.epoch,
			}
			old.retire()
		}
		r.mu.Unlock()
	}
	if err == nil {
		return true
	}
	if permanentApplyError(err) {
		r.setDamaged(err)
		return false
	}
	// Transient apply failure: the chunk may be half-applied, so replaying
	// it from the retention ring would double-apply its landed prefix.
	// Rebuild from a leader snapshot instead.
	r.transients.Add(1)
	r.forceSnapshot = true
	r.toResync()
	return false
}

// apply replays one shipped entry into the follower store (callers hold
// mu exclusively). Plain entries are a straight Ingest; typed entries
// replay label-table broadcasts first (so shipped ids always resolve),
// then the typed edges, then the property writes — the same order the
// leader applied them in.
func (r *Replica) apply(e *shipEntry) error {
	if !e.typed {
		_, err := r.store.Ingest(e.edges)
		return err
	}
	for _, d := range e.defs {
		if err := r.store.SetLabelDef(d.id, d.name); err != nil {
			return err
		}
	}
	if len(e.edges) > 0 {
		if _, err := r.store.IngestTyped(e.edges, e.labels); err != nil {
			return err
		}
	}
	if len(e.props) > 0 {
		if err := r.store.SetProps(e.props); err != nil {
			return err
		}
	}
	return nil
}

// resync is the catch-up state machine (DESIGN.md §14.3). Each round
// pins the leader's ship watermark; chunks still inside the leader's
// retention ring replay from it, anything older (or a possibly
// half-applied chunk) triggers a full snapshot rebuild. The replica
// keeps serving reads at its last published epoch throughout. The
// resyncing → running transition happens under the shard's exclusive
// lock, so no sequence number can be assigned between the caught-up
// check and the flip — a chunk shipped after it sees a running replica.
func (r *Replica) resync() {
	r.resyncs.Add(1)
	// The catch-up supersedes anything stashed; late stragglers dedupe.
	clear(r.stash)
	for {
		if r.stateNow() == replicaDamaged {
			return
		}
		r.sh.mu.Lock()
		head := r.sh.shipSeq
		if !r.forceSnapshot && r.nextSeq.Load() > head {
			r.state.Store(int32(replicaRunning))
			r.sh.mu.Unlock()
			return
		}
		var msgs []shipMsg
		if !r.forceSnapshot {
			msgs = r.sh.retainedFromLocked(r.nextSeq.Load())
		}
		r.sh.mu.Unlock()

		if len(msgs) > 0 {
			r.logReplays.Add(1)
			for _, m := range msgs {
				if !r.applyMsg(m) {
					break // damaged (checked at top) or forceSnapshot set
				}
			}
			continue
		}

		// The stream has moved past the retention ring, or a chunk is
		// half-applied: rebuild from a leader snapshot.
		r.snapReplays.Add(1)
		if err := r.snapshotResync(); err != nil {
			if permanentApplyError(err) {
				r.setDamaged(err)
				return
			}
			r.resyncFails++
			if r.resyncFails >= r.resyncLimit {
				r.setDamaged(fmt.Errorf("cluster: replica %d/%d: %d consecutive resync rounds failed: %w",
					r.shardID, r.id, r.resyncFails, err))
				return
			}
			continue
		}
		r.resyncFails = 0
		r.forceSnapshot = false
	}
}

// snapshotResync rebuilds the follower from the leader's pinned
// publication: provision a fresh store, transfer the label table and
// property index, stream every vertex's net adjacency, then swap the
// store in, publish at the pinned leader epoch, and fast-forward the
// sequence cursor to the pinned ship watermark. Chunks shipped after
// the pin replay on top — adjacency is snapshot-exact at the pin, and
// the property transfer is read-latest LWW state, idempotent under the
// replay (the same weaker-but-documented property contract every
// property read already has; DESIGN.md §13).
func (r *Replica) snapshotResync() error {
	// Pin the publication and the watermark in one lock window so they
	// describe the same moment.
	r.sh.mu.RLock()
	p := r.sh.cur
	p.refs.Add(1)
	head := r.sh.shipSeq
	r.sh.mu.RUnlock()
	defer p.unref()

	fresh, err := r.factory()
	if err != nil {
		return fmt.Errorf("provisioning rebuild store: %w", err)
	}
	src := view.GuardFull(p.snap, &r.sh.mu)

	leader := r.sh.store
	if fresh.PropsEnabled() && leader.PropsEnabled() {
		for id, name := range leader.Labels() {
			if id == 0 || name == "" {
				continue
			}
			if err := fresh.SetLabelDef(uint16(id), name); err != nil {
				return err
			}
		}
		pe, pl, ps := leader.ExportPropState()
		if err := fresh.RestorePropState(pe, pl, ps); err != nil {
			return err
		}
	}

	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	batch := make([]graph.Edge, 0, 4096)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, ferr := fresh.Ingest(batch)
		batch = batch[:0]
		return ferr
	}
	for v, n := graph.VID(0), src.NumVertices(); v < n; v++ {
		src.VisitOut(ctx, v, func(nbr uint32) {
			batch = append(batch, graph.Edge{Src: v, Dst: nbr})
		})
		if len(batch) >= 4096 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	r.mu.Lock()
	old := r.cur
	r.store = fresh
	r.cur = &published{snap: fresh.Snapshot(xpsim.NewCtx(xpsim.NodeUnbound)), epoch: p.epoch}
	old.retire()
	r.mu.Unlock()
	r.nextSeq.Store(head + 1)
	return nil
}

// finalCatchUp converges the follower with everything its leader
// shipped before the inbox closed, resyncing if chunks were abandoned
// mid-stream — a graceful shutdown leaves no follower behind.
func (r *Replica) finalCatchUp() {
	if r.stateNow() == replicaDamaged {
		return
	}
	r.sh.mu.RLock()
	head := r.sh.shipSeq
	r.sh.mu.RUnlock()
	if r.nextSeq.Load() <= head {
		r.toResync()
		r.resync()
	}
}

// acquire pins the replica's current publication.
func (r *Replica) acquire() *published {
	r.mu.RLock()
	p := r.cur
	p.refs.Add(1)
	r.mu.RUnlock()
	return p
}

// View pins the replica's current publication and returns a guarded
// read view over it plus the shipped epoch it represents. Release the
// view by calling the returned release func. Test and failover surface.
func (r *Replica) View() (v view.Full, epoch uint64, release func()) {
	p := r.acquire()
	return view.GuardFull(p.snap, &r.mu), p.epoch, p.unref
}
