// Package cluster is the partitioned multi-shard layer over N XPGraph
// stores — the ROADMAP's "N stores behind a router that partitions
// vertices" north-star item, built by composing the pieces the earlier
// PRs proved out rather than replacing them:
//
//   - partitioning: a stable hash-slot map (shard.SlotMap) routes every
//     edge by its source vertex and every out-read by its vertex;
//   - per-shard serving: each shard runs its own core.Store, its own
//     single-writer ingest.Pipeline, its own refcounted snapshot
//     publication chain, and its own media circuit breaker — exactly the
//     single-store server stack, one copy per partition;
//   - replication: each shard ships every applied chunk to its follower
//     replicas in application order (log shipping at batch granularity),
//     so followers converge on edge-for-edge identical views;
//   - reads: ClusterView pins one publication per shard (leader, or the
//     best replica once a shard is down) and implements view.Full over
//     the resulting epoch vector, so analytics and the HTTP handlers
//     cannot tell one store from sixteen.
//
// Failure semantics: a dead or readonly shard degrades its partition,
// never the cluster. Writes are per-shard atomic — a batch spanning
// shards may land on some and be refused by others, and the error names
// the refusing shard — while reads keep serving every surviving
// partition, through replicas when the leader is gone. See DESIGN.md
// §11.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/xpsim"
)

// Config tunes the cluster. The zero value is usable: one shard, no
// replicas, the single-store server's pipeline defaults.
type Config struct {
	// Replicas is the number of log-shipping followers per shard.
	Replicas int
	// ReplicaFactory builds one empty follower store; required when
	// Replicas > 0. It must configure the store like the leader (same
	// vertex space and options), typically on its own machine — each
	// follower is its own failure domain.
	ReplicaFactory func(shardID, replica int) (*core.Store, error)
	// Slots is the partition-ring size (default shard.DefaultSlots).
	Slots int

	// Pipeline knobs, one pipeline per shard (defaults as in
	// internal/ingest).
	QueueCap   int
	BatchEdges int
	Linger     time.Duration
	FlushEvery time.Duration
	ScrubEvery time.Duration
	BatchDelay time.Duration // test hook: pause between chunks

	// Adaptive attaches the AIMD admission controller to every shard's
	// pipeline: BatchEdges/Linger/QueueCap become ceilings and the live
	// knobs tune down under congestion (DESIGN.md §12.3).
	Adaptive bool
	// AdaptiveTarget overrides the controller's applied-batch latency
	// target (default 2ms host time).
	AdaptiveTarget time.Duration

	// Breaker knobs, one breaker per shard.
	BreakerThreshold int           // consecutive media failures that open it (default 3)
	BreakerCooldown  time.Duration // open duration before the half-open probe (default 5s)
	// BreakerSheds arms the overload side: consecutive queue-full sheds
	// that open the breaker (0 disables the arm — the default, matching
	// the pre-PR-10 behavior where only media failures tripped it).
	BreakerSheds int

	// Shipping transport knobs (DESIGN.md §14). Transport is the
	// leader→replica delivery fabric; nil means the in-process perfect
	// transport. Chaos harnesses pass NewChaosTransport(plan).
	Transport Transport
	// ShipAttempts bounds delivery attempts per (chunk, replica) before
	// the leader gives up and flips the follower into resync (default 4).
	ShipAttempts int
	// ShipBackoff/ShipBackoffMax bound the exponential retry backoff
	// (defaults 200µs and 2ms).
	ShipBackoff    time.Duration
	ShipBackoffMax time.Duration
	// ShipRetain is the per-shard retention ring length in chunks: a
	// resyncing follower within this window replays the log tail instead
	// of a full snapshot rebuild (default 256).
	ShipRetain int
	// ReorderWindow bounds how far ahead of the next expected sequence a
	// follower stashes out-of-order chunks; a wider hole triggers resync
	// (default ReplicaQueue/2).
	ReorderWindow int
	// GapWait is how long a follower sits on a sequence hole before
	// declaring the chunk lost and resyncing (default 5ms).
	GapWait time.Duration
	// ResyncLimit is the consecutive failed snapshot-resync attempts
	// before a follower is declared damaged (default 3).
	ResyncLimit int
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 16
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Transport == nil {
		c.Transport = perfectTransport{}
	}
	if c.ShipAttempts <= 0 {
		c.ShipAttempts = 4
	}
	if c.ShipBackoff <= 0 {
		c.ShipBackoff = 200 * time.Microsecond
	}
	if c.ShipBackoffMax <= 0 {
		c.ShipBackoffMax = 2 * time.Millisecond
	}
	if c.ShipRetain <= 0 {
		c.ShipRetain = 256
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = ReplicaQueue / 2
	}
	if c.GapWait <= 0 {
		c.GapWait = 5 * time.Millisecond
	}
	if c.ResyncLimit <= 0 {
		c.ResyncLimit = 3
	}
	return c
}

// Typed routing errors. The server maps them onto the /v1 error
// envelope; ShardError carries which partition refused.
var (
	// ErrShardDown: the write's owner shard was killed and writes have
	// no failover (followers are read replicas, not leaders).
	ErrShardDown = errors.New("cluster: shard is down")
)

// BreakerOpenError is returned when a shard's circuit breaker sheds the
// write; Wait is the time until its half-open probe is admitted.
type BreakerOpenError struct {
	Wait time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("cluster: ingest circuit breaker is open; retry in %v", e.Wait.Round(time.Millisecond))
}

// ShardError wraps a per-shard failure with the shard that produced it,
// so callers (and the HTTP error envelope) can name the partition.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// Cluster is the router: it owns the partition map and the shards.
type Cluster struct {
	cfg    Config
	pmap   *shard.SlotMap
	shards []*Shard

	started sync.Once
	closed  sync.Once
}

// New builds a stopped cluster over pre-built leader stores, one per
// shard (a single store makes a degenerate one-shard cluster — the
// single-store HTTP server is exactly that). Followers are built with
// cfg.ReplicaFactory when cfg.Replicas > 0. Call Start before serving.
func New(stores []*core.Store, cfg Config) (*Cluster, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("cluster: need at least one store")
	}
	cfg = cfg.withDefaults()
	pmap, err := shard.NewSlotMap(len(stores), cfg.Slots)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas > 0 && cfg.ReplicaFactory == nil {
		return nil, fmt.Errorf("cluster: %d replicas requested without a ReplicaFactory", cfg.Replicas)
	}
	c := &Cluster{cfg: cfg, pmap: pmap}
	for i, st := range stores {
		sh := &Shard{
			id:    i,
			store: st,
			br: Breaker{
				threshold: cfg.BreakerThreshold,
				overload:  cfg.BreakerSheds,
				cooldown:  cfg.BreakerCooldown,
			},
			tr:             cfg.Transport,
			shipAttempts:   cfg.ShipAttempts,
			shipBackoff:    cfg.ShipBackoff,
			shipBackoffMax: cfg.ShipBackoffMax,
			retCap:         cfg.ShipRetain,
		}
		icfg := ingest.Config{
			QueueCap:   cfg.QueueCap,
			BatchEdges: cfg.BatchEdges,
			Linger:     cfg.Linger,
			FlushEvery: cfg.FlushEvery,
			ScrubEvery: cfg.ScrubEvery,
			BatchDelay: cfg.BatchDelay,
		}
		if cfg.Adaptive {
			icfg.Adaptive = &ingest.AdaptiveConfig{Target: cfg.AdaptiveTarget}
		}
		sh.pipe = ingest.New(icfg, &shardApplier{sh: sh})
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Start publishes every shard's initial snapshot (epoch 1), starts the
// follower apply goroutines, and launches the per-shard writer
// goroutines. Idempotent. Attach tracers to the shard stores before
// calling it so the initial snapshots' spans are recorded.
func (c *Cluster) Start() error {
	var err error
	c.started.Do(func() {
		for _, sh := range c.shards {
			if c.cfg.Replicas > 0 {
				for ri := 0; ri < c.cfg.Replicas; ri++ {
					st, ferr := c.cfg.ReplicaFactory(sh.id, ri)
					if ferr != nil {
						err = fmt.Errorf("cluster: shard %d replica %d: %w", sh.id, ri, ferr)
						return
					}
					ri := ri
					factory := func() (*core.Store, error) { return c.cfg.ReplicaFactory(sh.id, ri) }
					sh.replicas = append(sh.replicas, newReplica(sh, ri, st, factory, c.cfg))
				}
			}
			sh.mu.Lock()
			sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
			sh.mu.Unlock()
			sh.pipe.Start()
		}
	})
	return err
}

// Shards reports the number of partitions.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns partition i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Owner maps a vertex to the shard that owns it (edges partition by
// source).
func (c *Cluster) Owner(v graph.VID) int { return c.pmap.Owner(v) }

// QueueCap is the per-shard ingest queue bound in edges.
func (c *Cluster) QueueCap() int { return c.cfg.QueueCap }

// Replicas is the configured follower count per shard.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// EpochVector reads every shard's current snapshot epoch. The scalar
// epoch the API reports is its sum, so it is monotone under any single
// shard's publication and degenerates to the old single-store epoch at
// one shard.
func (c *Cluster) EpochVector() []uint64 {
	vec := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		vec[i] = sh.Epoch()
	}
	return vec
}

// EpochScalar folds an epoch vector into the scalar the wire protocol
// reports alongside it.
func EpochScalar(vec []uint64) uint64 {
	var s uint64
	for _, e := range vec {
		s += e
	}
	return s
}

// ---- writes ----

// IngestResult reports one routed ingest.
type IngestResult struct {
	Accepted int64
	// SimNs is the simulated wall time of the slowest shard's
	// application — shards are independent machines applying their
	// partitions in parallel.
	SimNs   int64
	Batches int64
	// Epochs is the epoch vector after the write: the epoch at which the
	// write became readable on the shards it touched, and the current
	// epoch on the ones it did not.
	Epochs []uint64
}

// Epoch is the scalar fold of the result's epoch vector.
func (r IngestResult) Epoch() uint64 { return EpochScalar(r.Epochs) }

// Ingest routes one batch: splits it by owner shard, checks each owner's
// breaker and queue, and enqueues. With sync=true it waits until every
// shard has applied and published its part (read-your-writes across the
// whole batch); with sync=false it returns once every part is queued.
//
// The caller keeps ownership of edges (each shard gets a pooled copy).
//
// Writes are per-shard atomic, not cluster-atomic: when a shard refuses
// (queue full, breaker open, down, draining) or fails mid-apply, the
// parts routed to other shards still land, and the returned *ShardError
// names the refusing shard. Cross-shard rollback would need distributed
// transactions the evolving-graph workload does not ask for.
func (c *Cluster) Ingest(edges []graph.Edge, sync bool) (IngestResult, error) {
	res := IngestResult{}
	parts := c.splitPooled(edges)
	defer func() {
		for _, p := range parts {
			if p != nil {
				ingest.PutEdgeBuf(p)
			}
		}
	}()

	reqs := make([]*ingest.Request, len(parts))
	enq := make([][]graph.Edge, len(parts)) // buffers the pipelines own
	var firstErr *ShardError
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		sh := c.shards[i]
		if sh.down.Load() {
			firstErr = &ShardError{Shard: i, Err: ErrShardDown}
			break
		}
		if ok, wait := sh.br.allow(time.Now()); !ok {
			firstErr = &ShardError{Shard: i, Err: &BreakerOpenError{Wait: wait}}
			break
		}
		req := ingest.NewRequest(part)
		if err := sh.pipe.Enqueue(req); err != nil {
			if errors.Is(err, ingest.ErrQueueFull) {
				// Feed the overload arm: sustained queue-full streaks trip
				// the breaker so the 429 storm becomes typed 503s.
				sh.br.NoteShed(time.Now())
			}
			firstErr = &ShardError{Shard: i, Err: err}
			break
		}
		sh.br.NoteAdmit()
		// The pipeline owns the part until its Result is delivered.
		parts[i], enq[i] = nil, part
		reqs[i] = req
	}

	// Wait for whatever was enqueued — even on a partial routing failure,
	// so sync callers always know the fate of the parts that did land and
	// the pooled buffers can be accounted. Async callers return
	// immediately; their parts' buffers go to the GC with the pipeline.
	if !sync {
		if firstErr != nil {
			return res, firstErr
		}
		res.Accepted = int64(len(edges))
		res.Epochs = c.EpochVector()
		return res, nil
	}

	for i, req := range reqs {
		if req == nil {
			continue
		}
		sh := c.shards[i]
		var r ingest.Result
		select {
		case r = <-req.Done():
		case <-sh.pipe.Stopping():
			if !sh.pipe.Draining() {
				// Abrupt stop: the pipeline may still hold the buffer; let
				// the GC take it.
				if firstErr == nil {
					firstErr = &ShardError{Shard: i, Err: ingest.ErrShuttingDown}
				}
				continue
			}
			// Graceful drain: every accepted request is applied and
			// answered.
			r = <-req.Done()
		}
		// Result delivered: the pipeline is done with the part's buffer.
		parts[i] = enq[i]
		if r.Err != nil {
			if firstErr == nil {
				firstErr = &ShardError{Shard: i, Err: r.Err}
			}
			continue
		}
		res.Accepted += r.Accepted
		res.Batches += r.Batches
		if r.SimNs > res.SimNs {
			res.SimNs = r.SimNs // shards apply in parallel: slowest wins
		}
	}
	res.Epochs = c.EpochVector()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// splitPooled partitions edges by owner into pooled per-shard buffers.
func (c *Cluster) splitPooled(edges []graph.Edge) [][]graph.Edge {
	parts := make([][]graph.Edge, len(c.shards))
	if len(c.shards) == 1 {
		buf := ingest.GetEdgeBuf()
		parts[0] = append(buf, edges...)
		return parts
	}
	for i := range parts {
		parts[i] = ingest.GetEdgeBuf()
	}
	for _, e := range edges {
		o := c.pmap.Owner(e.Src)
		parts[o] = append(parts[o], e)
	}
	return parts
}

// IngestLocal applies edges synchronously, bypassing the pipelines — the
// bulk-load path (bench, preload). Each shard applies its partition
// under its own lock, republishes, and ships to its followers; the
// returned simulated time is the slowest shard's, since every shard is
// its own machine applying in parallel.
func (c *Cluster) IngestLocal(edges []graph.Edge) (simNs int64, err error) {
	parts := c.splitPooled(edges)
	defer func() {
		for _, p := range parts {
			if p != nil {
				ingest.PutEdgeBuf(p)
			}
		}
	}()
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		sh := c.shards[i]
		if sh.down.Load() {
			return simNs, &ShardError{Shard: i, Err: ErrShardDown}
		}
		sh.mu.Lock()
		rep, ierr := sh.store.Ingest(part)
		var msg shipMsg
		if ierr == nil {
			epoch := sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
			msg = sh.recordShipLocked(shipEntry{edges: part, epoch: epoch})
		}
		sh.mu.Unlock()
		if ierr != nil {
			return simNs, &ShardError{Shard: i, Err: ierr}
		}
		sh.dispatch(msg)
		if ns := rep.TotalNs(); ns > simNs {
			simNs = ns
		}
	}
	return simNs, nil
}

// ---- admin ops (exclusive per-shard lock, then republish) ----

// PublishAll publishes a fresh snapshot on every live shard and returns
// the resulting epoch vector.
func (c *Cluster) PublishAll() []uint64 {
	for _, sh := range c.shards {
		if sh.down.Load() {
			continue
		}
		sh.mu.Lock()
		sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
		sh.mu.Unlock()
	}
	return c.EpochVector()
}

// FlushAll drains every live shard's vertex buffers to PMEM and
// republishes. The first failure is returned, named.
func (c *Cluster) FlushAll() error {
	for _, sh := range c.shards {
		if sh.down.Load() {
			continue
		}
		sh.mu.Lock()
		err := sh.store.FlushAllVbufs()
		if err == nil {
			sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
		}
		sh.mu.Unlock()
		if err != nil {
			return &ShardError{Shard: sh.id, Err: err}
		}
	}
	return nil
}

// CompactVertex compacts v's adjacency chains on its owner shard and
// republishes there, returning the simulated cost.
func (c *Cluster) CompactVertex(v graph.VID) (simNs int64, err error) {
	sh := c.shards[c.pmap.Owner(v)]
	if sh.down.Load() {
		return 0, &ShardError{Shard: sh.id, Err: ErrShardDown}
	}
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	sh.mu.Lock()
	cerr := sh.store.CompactAdjs(ctx, v)
	if cerr == nil {
		sh.publishLocked(ctx)
	}
	sh.mu.Unlock()
	if cerr != nil {
		return 0, &ShardError{Shard: sh.id, Err: cerr}
	}
	return ctx.Cost.Ns(), nil
}

// ScrubAll runs one synchronous media-scrub pass on every live shard,
// returning the summed report. The first failure is returned, named.
func (c *Cluster) ScrubAll() (core.ScrubReport, error) {
	var total core.ScrubReport
	for _, sh := range c.shards {
		if sh.down.Load() {
			continue
		}
		sh.mu.Lock()
		rep, serr := sh.store.Scrub()
		if serr == nil {
			sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
		}
		sh.mu.Unlock()
		if serr != nil {
			return total, &ShardError{Shard: sh.id, Err: serr}
		}
		total.VerticesScanned += rep.VerticesScanned
		total.Damaged += rep.Damaged
		total.Repaired += rep.Repaired
		total.Unrecoverable += rep.Unrecoverable
		total.SpansQuarantined += rep.SpansQuarantined
		total.BytesQuarantined += rep.BytesQuarantined
		total.LogBadRecords += rep.LogBadRecords
		total.PropBlocksScrubbed += rep.PropBlocksScrubbed
		total.PropBlocksBad += rep.PropBlocksBad
		total.PropBlocksRebuilt += rep.PropBlocksRebuilt
		total.PropUnrecoverable += rep.PropUnrecoverable
		if rep.SimNs > total.SimNs {
			total.SimNs = rep.SimNs // shards scrub in parallel
		}
	}
	return total, nil
}

// ---- failure injection / failover ----

// KillShard simulates partition i's leader process dying: its pipeline
// stops abruptly (queued writers get ErrShuttingDown), new writes to the
// partition are refused with ErrShardDown, and reads fail over to the
// partition's best replica — or fail typed when it has none. The rest of
// the cluster keeps serving: degraded, not down.
func (c *Cluster) KillShard(i int) {
	sh := c.shards[i]
	if sh.down.Swap(true) {
		return
	}
	sh.pipe.Close()
}

// ---- stats & health ----

// Stats is the cluster-wide aggregate the /v1/stats endpoint serves.
type Stats struct {
	NumVertices     graph.VID // max over shards: vertex IDs are global
	LoggedEdges     int64
	MetaDRAMBytes   int64
	VbufDRAMBytes   int64
	ElogPMEMBytes   int64
	PblkPMEMBytes   int64
	MediaReadBytes  int64
	MediaWriteBytes int64
	Epochs          []uint64
}

// Stats aggregates store and machine statistics across live shards,
// under each shard's shared lock.
func (c *Cluster) Stats() Stats {
	st := Stats{Epochs: c.EpochVector()}
	for _, sh := range c.shards {
		if sh.down.Load() {
			continue
		}
		sh.mu.RLock()
		if nv := sh.store.NumVertices(); nv > st.NumVertices {
			st.NumVertices = nv
		}
		st.LoggedEdges += sh.store.Log().Head()
		u := sh.store.MemUsage()
		st.MetaDRAMBytes += u.MetaDRAM
		st.VbufDRAMBytes += u.VbufDRAM
		st.ElogPMEMBytes += u.ElogPMEM
		st.PblkPMEMBytes += u.PblkPMEM
		ms := sh.store.Machine().SnapshotStats()
		st.MediaReadBytes += ms.MediaReadBytes()
		st.MediaWriteBytes += ms.MediaWriteBytes()
		sh.mu.RUnlock()
	}
	return st
}

// RLockAll takes every live shard's shared lock, runs fn, and releases.
// The metrics gather uses it: store gauge callbacks read live cursors
// that writers mutate under the exclusive locks.
func (c *Cluster) RLockAll(fn func()) {
	for _, sh := range c.shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range c.shards {
			sh.mu.RUnlock()
		}
	}()
	fn()
}

// ShardHealth is one partition's health in the cluster report.
type ShardHealth struct {
	Shard int
	// State is the shard's serving state: the store's ok/degraded/
	// readonly machine, or "down" once killed.
	State string
	Down  bool
	// ServingReplica is set when reads of this partition come from a
	// follower because the leader is down.
	ServingReplica bool
	Health         core.Health // zero when down
	Epoch          uint64
	ReplicaEpochs  []uint64
	// ReplicaStates mirrors ReplicaEpochs: "running", "resyncing", or
	// "damaged" per follower (DESIGN.md §14.3).
	ReplicaStates []string
	Breaker       BreakerView
}

// ClusterHealth aggregates: the cluster is "ok" only when every
// partition is; any non-ok partition (including a killed one that a
// replica still serves) makes it "degraded"; it is "readonly" only when
// no partition accepts writes.
type ClusterHealth struct {
	State  string
	Shards []ShardHealth
}

// Health reports per-shard and aggregate health.
func (c *Cluster) Health() ClusterHealth {
	ch := ClusterHealth{}
	now := time.Now()
	allReadonly := true
	anyBad := false
	for _, sh := range c.shards {
		s := ShardHealth{Shard: sh.id, Breaker: sh.br.view(now), Epoch: sh.Epoch()}
		for _, r := range sh.replicas {
			s.ReplicaEpochs = append(s.ReplicaEpochs, r.Epoch())
			s.ReplicaStates = append(s.ReplicaStates, r.State())
		}
		if sh.down.Load() {
			s.State = "down"
			s.Down = true
			s.ServingReplica = bestReplica(sh) != nil
			anyBad = true
		} else {
			h := sh.health()
			s.Health = h
			s.State = h.State.String()
			if h.State != core.HealthOK {
				anyBad = true
			}
			if h.State != core.HealthReadonly {
				allReadonly = false
			}
		}
		ch.Shards = append(ch.Shards, s)
	}
	switch {
	case allReadonly:
		ch.State = core.HealthReadonly.String()
	case anyBad:
		ch.State = core.HealthDegraded.String()
	default:
		ch.State = core.HealthOK.String()
	}
	return ch
}

// RegisterMetrics registers the cluster's observability surface with a
// registry: per-shard store gauges, device telemetry, pipeline counters
// and breaker state. With one shard everything registers unlabeled —
// byte-for-byte the single-store exposition; with more, every series
// carries a shard label (replica stores are not scraped; their state is
// the leader's, shifted in time).
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	for _, sh := range c.shards {
		sh := sh
		r := reg
		if len(c.shards) > 1 {
			r = reg.Sub(obs.Label{Key: "shard", Value: fmt.Sprintf("%d", sh.id)})
		}
		r.Register(obs.NewMachineCollector(sh.store.Machine()))
		sh.store.RegisterMetrics(r)
		r.Register(obs.CollectorFunc(func(emit func(obs.Sample)) {
			v := sh.pipe.Stats()
			sample := func(name, help string, kind obs.Kind, val float64) {
				emit(obs.Sample{Name: name, Help: help, Kind: kind, Value: val})
			}
			sample("xpgraph_ingest_queue_depth_edges", "Edges accepted but not yet applied or dropped.", obs.KindGauge, float64(v.Queued))
			sample("xpgraph_ingest_queue_cap_edges", "Bounded ingest queue capacity in edges.", obs.KindGauge, float64(c.cfg.QueueCap))
			sample("xpgraph_ingest_edges_accepted_total", "Edges admitted past the queue-capacity check.", obs.KindCounter, float64(v.EdgesAccepted))
			sample("xpgraph_ingest_edges_applied_total", "Edges applied to the store.", obs.KindCounter, float64(v.EdgesApplied))
			sample("xpgraph_ingest_edges_dropped_total", "Accepted edges dequeued without application (failure or shutdown).", obs.KindCounter, float64(v.EdgesDropped))
			sample("xpgraph_ingest_batches_total", "Ingest batches applied under the write lock.", obs.KindCounter, float64(v.BatchesApplied))
			sample("xpgraph_ingest_rejected_writes_total", "Write requests shed with 429 queue_full.", obs.KindCounter, float64(v.Rejected))
			sample("xpgraph_snapshot_epoch", "Epoch of the currently published snapshot.", obs.KindGauge, float64(v.Epoch))
			sample("xpgraph_snapshot_age_seconds", "Host seconds since the last snapshot publication.", obs.KindGauge,
				float64(time.Now().UnixNano()-v.PublishedAtNs)/1e9)
			sample("xpgraph_last_batch_host_seconds", "Host latency of the most recent ingest batch.", obs.KindGauge, float64(v.LastBatchHostNs)/1e9)
			sample("xpgraph_last_batch_sim_seconds", "Simulated store time of the most recent ingest batch.", obs.KindGauge, float64(v.LastBatchSimNs)/1e9)
			sample("xpgraph_last_batch_edges", "Size of the most recent ingest batch.", obs.KindGauge, float64(v.LastBatchEdges))
			sample("xpgraph_ingest_batch_edges_live", "Live write-window cap (static config, or the adaptive controller's current value).", obs.KindGauge, float64(v.CurBatchEdges))
			sample("xpgraph_ingest_linger_seconds_live", "Live batching linger.", obs.KindGauge, float64(v.CurLingerNs)/1e9)
			sample("xpgraph_ingest_admit_edges_live", "Live 429 admission threshold in queued edges.", obs.KindGauge, float64(v.AdmitEdges))
			sample("xpgraph_ingest_tune_decreases_total", "Multiplicative decreases taken by the adaptive admission controller.", obs.KindCounter, float64(v.TuneDecreases))
			sample("xpgraph_ingest_tune_increases_total", "Additive increases taken by the adaptive admission controller.", obs.KindCounter, float64(v.TuneIncreases))

			b := sh.br.view(time.Now())
			open := 0.0
			if b.Open {
				open = 1
			}
			sample("xpgraph_breaker_open", "Ingest circuit breaker state (1 = shedding writes).", obs.KindGauge, open)
			sample("xpgraph_breaker_trips_total", "Times the ingest circuit breaker opened (media failures or overload sheds).", obs.KindCounter, float64(b.Trips))
			sample("xpgraph_breaker_closes_total", "Times a half-open probe closed the ingest circuit breaker.", obs.KindCounter, float64(b.Closes))
			sample("xpgraph_breaker_probes_total", "Half-open probe writes admitted through the ingest circuit breaker.", obs.KindCounter, float64(b.Probes))
			sample("xpgraph_breaker_rejected_writes_total", "Write requests shed with 503 circuit_open.", obs.KindCounter, float64(b.Rejected))

			sc := sh.ShipCounters()
			sample("xpgraph_ship_attempts_total", "Transport delivery attempts for shipped chunks (first tries and retries).", obs.KindCounter, float64(sc.Attempts))
			sample("xpgraph_ship_retries_total", "Shipped-chunk delivery attempts after the first (retry with backoff).", obs.KindCounter, float64(sc.Retries))
			sample("xpgraph_ship_giveups_total", "Chunks abandoned after the retry budget; the follower resyncs.", obs.KindCounter, float64(sc.GiveUps))
			sample("xpgraph_ship_skips_total", "Chunks not shipped because the follower was resyncing or damaged.", obs.KindCounter, float64(sc.Skips))

			down := 0.0
			if sh.down.Load() {
				down = 1
			}
			sample("xpgraph_shard_down", "Partition leader killed (reads fail over to replicas).", obs.KindGauge, down)
			for ri, rep := range sh.replicas {
				lbl := []obs.Label{{Key: "replica", Value: fmt.Sprintf("%d", ri)}}
				rsample := func(name, help string, kind obs.Kind, val float64) {
					emit(obs.Sample{Name: name, Help: help, Kind: kind, Labels: lbl, Value: val})
				}
				rsample("xpgraph_replica_epoch", "Shipped leader epoch the follower has published up to.", obs.KindGauge, float64(rep.Epoch()))
				running := 0.0
				if rep.State() == "running" {
					running = 1
				}
				rsample("xpgraph_replica_running", "Follower apply state (1 = running, 0 = resyncing or damaged).", obs.KindGauge, running)
				rc := rep.Counters()
				rsample("xpgraph_replica_dedupes_total", "Duplicate chunk deliveries discarded by sequence number.", obs.KindCounter, float64(rc.Dedupes))
				rsample("xpgraph_replica_reorders_total", "Out-of-order chunk deliveries stashed for in-order apply.", obs.KindCounter, float64(rc.Reorders))
				rsample("xpgraph_replica_misroutes_total", "Chunks dropped on chunk-id verification failure.", obs.KindCounter, float64(rc.Misroutes))
				rsample("xpgraph_replica_resyncs_total", "Times the follower entered the resyncing state.", obs.KindCounter, float64(rc.Resyncs))
				rsample("xpgraph_replica_resync_log_total", "Resyncs satisfied by retained-log replay.", obs.KindCounter, float64(rc.LogReplays))
				rsample("xpgraph_replica_resync_snapshot_total", "Resyncs satisfied by full snapshot rebuild.", obs.KindCounter, float64(rc.SnapReplays))
				rsample("xpgraph_replica_transient_apply_errors_total", "Apply errors classified transient (resync, not damage).", obs.KindCounter, float64(rc.TransientApplyErrors))
			}
		}))
	}
}

// ---- lifecycle ----

// Close stops every shard's pipeline abruptly (queued writers get
// ErrShuttingDown) and stops the followers after they drain what was
// already shipped. Idempotent.
func (c *Cluster) Close() {
	c.closed.Do(func() {
		for _, sh := range c.shards {
			sh.pipe.Close()
		}
		for _, sh := range c.shards {
			for _, r := range sh.replicas {
				r.close()
			}
		}
	})
}

// Shutdown drains gracefully: every accepted write on every shard is
// applied, flushed, and shipped; followers then drain their queues, so
// the whole cluster — leaders and replicas — converges before return.
func (c *Cluster) Shutdown() {
	c.closed.Do(func() {
		for _, sh := range c.shards {
			sh.pipe.SetDraining()
		}
		for _, sh := range c.shards {
			sh.pipe.Close()
		}
		for _, sh := range c.shards {
			for _, r := range sh.replicas {
				r.close()
			}
		}
	})
}
