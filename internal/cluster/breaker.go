package cluster

import (
	"sync"
	"time"
)

// Breaker is the per-shard ingest circuit breaker. It has two arms:
//
//   - media: repeated media-write failures (the shard's store reporting
//     *xpsim.MediaError from Ingest) open it, so a dying device sheds
//     new writes up front with a BreakerOpenError instead of queueing
//     them into a pipeline that will drop them anyway;
//   - overload: sustained queue-full sheds (consecutive ErrQueueFull
//     refusals with no admit between them) open it too, so a shard
//     drowning in offered load converts the 429 storm into typed 503s
//     with a Retry-After instead of letting every caller hammer the
//     full queue (DESIGN.md §12.4).
//
// After the cooldown the breaker goes half-open: the next write is
// admitted as a probe; a success (applied, or at least admitted past
// the queue) closes the breaker, another failure re-opens it
// immediately. It moved here from internal/server (PR 5) because
// failure shedding is a property of one shard, not of the HTTP
// frontend; the soak harness reuses the same policy on its virtual
// clock, which is why every method takes an explicit now.
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive media failures that open the breaker
	overload  int           // consecutive queue-full sheds that open it (0 = arm disabled)
	cooldown  time.Duration // open duration before the half-open probe
	fails     int           // consecutive media failures while closed
	sheds     int           // consecutive queue-full sheds while closed
	openUntil time.Time     // zero when closed
	halfOpen  bool          // a probe write is in flight
	trips     int64
	closes    int64
	probes    int64
	rejected  int64
}

// NewBreaker builds a breaker for the soak harness's virtual admission
// model (the cluster builds its shards' breakers from Config directly).
func NewBreaker(mediaThreshold, overloadThreshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: mediaThreshold, overload: overloadThreshold, cooldown: cooldown}
}

// allow reports whether a write may enter the pipeline; when refused it
// also reports how long until the half-open probe is admitted.
func (b *Breaker) allow(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true, 0
	}
	if now.Before(b.openUntil) {
		b.rejected++
		return false, b.openUntil.Sub(now)
	}
	if !b.halfOpen {
		b.halfOpen = true
		b.probes++
	}
	return true, 0
}

// Allow is the exported admission check (soak's virtual model).
func (b *Breaker) Allow(now time.Time) (bool, time.Duration) { return b.allow(now) }

// openLocked trips the breaker (callers hold mu).
func (b *Breaker) openLocked(now time.Time) {
	b.openUntil = now.Add(b.cooldown)
	b.trips++
	b.fails = 0
	b.sheds = 0
	b.halfOpen = false
}

// closeLocked closes an open or half-open breaker (callers hold mu).
func (b *Breaker) closeLocked() {
	if !b.openUntil.IsZero() || b.halfOpen {
		b.closes++
	}
	b.fails = 0
	b.sheds = 0
	b.openUntil = time.Time{}
	b.halfOpen = false
}

// recordFailure counts one media-write failure. The breaker opens at
// threshold consecutive failures, or immediately when a half-open probe
// fails.
func (b *Breaker) recordFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.threshold || b.halfOpen {
		b.openLocked(now)
	}
}

// recordSuccess closes the breaker and clears both failure streaks.
func (b *Breaker) recordSuccess() {
	b.mu.Lock()
	b.closeLocked()
	b.mu.Unlock()
}

// NoteShed counts one queue-full refusal on the overload arm. The
// breaker opens at `overload` consecutive sheds, or immediately when a
// half-open probe is shed again.
func (b *Breaker) NoteShed(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.overload <= 0 {
		return
	}
	b.sheds++
	if b.sheds >= b.overload || b.halfOpen {
		b.openLocked(now)
	}
}

// NoteAdmit records a write admitted past the queue: it clears the
// overload streak and closes a half-open breaker (the probe got
// through, so the queue is draining again).
func (b *Breaker) NoteAdmit() {
	b.mu.Lock()
	b.sheds = 0
	if b.halfOpen {
		b.closeLocked()
	}
	b.mu.Unlock()
}

// BreakerView is one consistent copy of a shard breaker's state for
// metrics and the health endpoint.
type BreakerView struct {
	Open bool
	// Trips counts open transitions (either arm); Closes counts
	// half-open → closed recoveries; Probes counts half-open probe
	// admissions. Together they pin the open/half-open/close cycle.
	Trips    int64
	Closes   int64
	Probes   int64
	Rejected int64
}

func (b *Breaker) view(now time.Time) BreakerView {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerView{
		Open:     !b.openUntil.IsZero() && now.Before(b.openUntil),
		Trips:    b.trips,
		Closes:   b.closes,
		Probes:   b.probes,
		Rejected: b.rejected,
	}
}

// View is the exported state read (soak's virtual model).
func (b *Breaker) View(now time.Time) BreakerView { return b.view(now) }
