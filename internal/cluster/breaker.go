package cluster

import (
	"sync"
	"time"
)

// breaker is the per-shard ingest circuit breaker: repeated media-write
// failures (the shard's store reporting *xpsim.MediaError from Ingest)
// open it, and while open every new write routed to the shard is refused
// up front with a BreakerOpenError instead of being queued into a
// pipeline that will drop it anyway. After the cooldown the breaker goes
// half-open: the next write is admitted as a probe, a success closes the
// breaker, another media failure re-opens it immediately.
//
// It moved here from internal/server (PR 5) because failure shedding is
// a property of one shard, not of the HTTP frontend: in a cluster, one
// shard's dying device must open one breaker and leave the other
// partitions writable.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before the half-open probe
	fails     int           // consecutive media failures while closed
	openUntil time.Time     // zero when closed
	halfOpen  bool          // a probe write is in flight
	trips     int64
	rejected  int64
}

// allow reports whether a write may enter the pipeline; when refused it
// also reports how long until the half-open probe is admitted.
func (b *breaker) allow(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true, 0
	}
	if now.Before(b.openUntil) {
		b.rejected++
		return false, b.openUntil.Sub(now)
	}
	b.halfOpen = true
	return true, 0
}

// recordFailure counts one media-write failure. The breaker opens at
// threshold consecutive failures, or immediately when a half-open probe
// fails.
func (b *breaker) recordFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.threshold || b.halfOpen {
		b.openUntil = now.Add(b.cooldown)
		b.trips++
		b.fails = 0
		b.halfOpen = false
	}
}

// recordSuccess closes the breaker and clears the failure streak.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.halfOpen = false
	b.mu.Unlock()
}

// BreakerView is one consistent copy of a shard breaker's state for
// metrics and the health endpoint.
type BreakerView struct {
	Open     bool
	Trips    int64
	Rejected int64
}

func (b *breaker) view(now time.Time) BreakerView {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerView{
		Open:     !b.openUntil.IsZero() && now.Before(b.openUntil),
		Trips:    b.trips,
		Rejected: b.rejected,
	}
}
