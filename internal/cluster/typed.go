package cluster

import (
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/xpsim"
)

// The typed write path of the cluster (DESIGN.md §13). Typed batches are
// applied synchronously under each owner shard's exclusive lock — they
// bypass the async pipeline on purpose: a typed edge's adjacency record
// and its label record must land in the same lock window, or a reader
// could see the edge with a stale label. The deliberate tradeoff is that
// typed writes pay per-batch lock latency instead of pipeline batching;
// mixed workloads keep the plain async path for their untyped edges.
//
// Routing follows the plain path exactly: a typed edge lives — adjacency
// and label both — with its source's owner shard, and a vertex property
// lives with the vertex's owner. Replicas receive labels and properties
// in the same shipped entry as the edges they ride with, so a follower's
// view converges typed-for-typed with its leader.

// RegisterLabel assigns one cluster-wide label id for name: shard 0's
// store assigns it (durable before this returns), every other shard
// installs the identical (id, name), and every replica receives it via
// log shipping. Registering an existing name returns its id.
//
// Registration is refused while any shard is down: a missed broadcast
// would leave that partition resolving the name to nothing after it
// comes back, and label registration is rare enough that fail-closed
// beats a repair protocol.
func (c *Cluster) RegisterLabel(name string) (uint16, error) {
	for _, sh := range c.shards {
		if sh.down.Load() {
			return 0, &ShardError{Shard: sh.id, Err: ErrShardDown}
		}
	}
	var id uint16
	for i, sh := range c.shards {
		sh.mu.Lock()
		var err error
		if i == 0 {
			id, err = sh.store.RegisterLabel(name)
		} else {
			err = sh.store.SetLabelDef(id, name)
		}
		var msg shipMsg
		if err == nil {
			msg = sh.recordShipLocked(shipEntry{
				epoch: sh.pipe.Epoch(),
				typed: true,
				defs:  []labelDef{{id: id, name: name}},
			})
		}
		sh.mu.Unlock()
		if err != nil {
			return 0, &ShardError{Shard: i, Err: err}
		}
		sh.dispatch(msg)
	}
	return id, nil
}

// IngestTyped routes one typed batch synchronously: edges[i] carries
// labels[i] (default label when the labels slice is short), props are
// vertex-property writes. Each owner shard applies its part — adjacency,
// labels, and properties — under its exclusive lock, republishes, and
// ships the typed entry to its followers. Per-shard atomic like Ingest:
// a failing shard is named and the parts routed elsewhere still land.
func (c *Cluster) IngestTyped(edges []graph.Edge, labels []uint16, props []graph.PropSet) (IngestResult, error) {
	res := IngestResult{}
	n := len(c.shards)
	eparts := make([][]graph.Edge, n)
	lparts := make([][]uint16, n)
	pparts := make([][]graph.PropSet, n)
	for i := range eparts {
		eparts[i] = ingest.GetEdgeBuf()
	}
	defer func() {
		for _, p := range eparts {
			if p != nil {
				ingest.PutEdgeBuf(p)
			}
		}
	}()
	for i, e := range edges {
		o := c.pmap.Owner(e.Src)
		eparts[o] = append(eparts[o], e)
		lbl := uint16(graph.DefaultLabel)
		if i < len(labels) {
			lbl = labels[i]
		}
		lparts[o] = append(lparts[o], lbl)
	}
	for _, p := range props {
		o := c.pmap.Owner(p.V)
		pparts[o] = append(pparts[o], p)
	}

	for i, sh := range c.shards {
		if len(eparts[i]) == 0 && len(pparts[i]) == 0 {
			continue
		}
		if sh.down.Load() {
			return res, &ShardError{Shard: i, Err: ErrShardDown}
		}
		wctx := xpsim.NewCtx(xpsim.NodeUnbound)
		sh.mu.Lock()
		var err error
		var simNs int64
		if len(eparts[i]) > 0 {
			rep, ierr := sh.store.IngestTyped(eparts[i], lparts[i])
			if ierr != nil {
				err = ierr
			} else {
				simNs = rep.TotalNs()
			}
		}
		if err == nil && len(pparts[i]) > 0 {
			err = sh.store.SetProps(pparts[i])
		}
		var msg shipMsg
		if err == nil {
			epoch := sh.publishLocked(wctx)
			msg = sh.recordShipLocked(shipEntry{
				epoch:  epoch,
				typed:  true,
				edges:  eparts[i],
				labels: lparts[i],
				props:  pparts[i],
			})
		}
		sh.mu.Unlock()
		if err != nil {
			return res, &ShardError{Shard: i, Err: err}
		}
		sh.dispatch(msg)
		res.Accepted += int64(len(eparts[i]))
		res.Batches++
		if simNs > res.SimNs {
			res.SimNs = simNs // shards apply in parallel: slowest wins
		}
	}
	res.Epochs = c.EpochVector()
	return res, nil
}
