package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/xpsim"
)

// published is one snapshot publication of a shard leader or replica.
// Readers pin it with a refcount under the owner's shared lock; the
// snapshot is closed (deregistered from compaction fencing) once it is
// both retired by a newer publication and unreferenced. This is the
// refcounted-publication protocol the single-store server ran (PR 2);
// it moved here so every shard — and every replica — runs its own copy.
type published struct {
	snap    *core.Snapshot
	epoch   uint64
	refs    atomic.Int64
	retired atomic.Bool
}

func (p *published) unref() {
	if p.refs.Add(-1) == 0 && p.retired.Load() {
		p.snap.Close()
	}
}

// retire marks p replaced by a newer publication, closing it when no
// reader holds it. Snapshot.Close is idempotent, so the benign race with
// a releasing reader's zero-check is harmless.
func (p *published) retire() {
	if p == nil {
		return
	}
	p.retired.Store(true)
	if p.refs.Load() == 0 {
		p.snap.Close()
	}
}

// ShipCounters is one consistent copy of a shard's leader-side shipping
// counters (DESIGN.md §14.2).
type ShipCounters struct {
	// Attempts: transport Ship calls (first tries and retries).
	Attempts int64
	// Retries: attempts after the first for a (chunk, replica) pair.
	Retries int64
	// GiveUps: chunks abandoned after the retry budget — the follower
	// was flipped into resync.
	GiveUps int64
	// Skips: chunks not shipped because the follower was already
	// resyncing or damaged (the lag breaker's steady state).
	Skips int64
}

// Shard is one partition leader: a core.Store, its single-writer ingest
// pipeline, its snapshot publication chain, its circuit breaker, and the
// log-shipping fan-out to its follower replicas over the transport.
//
// The store itself is not goroutine-safe; mu orders the pipeline's write
// windows against snapshot reads exactly as the single-store server's
// stateMu did. All reads of the shard go through a pinned publication
// wrapped in view.GuardFull(pub.snap, &sh.mu).
type Shard struct {
	id    int
	store *core.Store

	// mu orders store mutation against snapshot reads: the writer holds
	// it exclusively per batch; readers take it shared per neighbor
	// access and when pinning the published snapshot.
	mu  sync.RWMutex
	cur *published // guarded by mu; swapped only under the write lock

	pipe *ingest.Pipeline
	br   Breaker

	replicas []*Replica

	// Shipping stream state, guarded by mu: the sequence number is
	// assigned in the same exclusive window that applies and publishes
	// the chunk, so the stream order IS the application order, and the
	// retention ring holds the recent tail for resync replay.
	shipSeq uint64
	ret     []shipMsg
	retCap  int

	// Transport policy (from Config).
	tr             Transport
	shipAttempts   int
	shipBackoff    time.Duration
	shipBackoffMax time.Duration

	shipsTotal  atomic.Int64
	shipRetries atomic.Int64
	shipGiveUps atomic.Int64
	shipSkips   atomic.Int64

	// down simulates the shard process dying (KillShard): writes are
	// refused up front and reads fail over to the best replica.
	down atomic.Bool
}

// ID returns the shard's index in the partition map.
func (sh *Shard) ID() int { return sh.id }

// Store returns the leader store (tests and telemetry; serving code goes
// through pinned publications).
func (sh *Shard) Store() *core.Store { return sh.store }

// Epoch reads the shard's current snapshot epoch.
func (sh *Shard) Epoch() uint64 { return sh.pipe.Epoch() }

// Down reports whether the shard was killed.
func (sh *Shard) Down() bool { return sh.down.Load() }

// PipeStats reads one consistent copy of the shard's pipeline counters.
func (sh *Shard) PipeStats() ingest.Stats { return sh.pipe.Stats() }

// Breaker reads one consistent copy of the shard's breaker state.
func (sh *Shard) Breaker() BreakerView { return sh.br.View(time.Now()) }

// Replicas returns the shard's followers.
func (sh *Shard) Replicas() []*Replica { return sh.replicas }

// ShipSeq reads the last assigned stream sequence number.
func (sh *Shard) ShipSeq() uint64 {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.shipSeq
}

// ShipCounters reads the leader-side shipping counters.
func (sh *Shard) ShipCounters() ShipCounters {
	return ShipCounters{
		Attempts: sh.shipsTotal.Load(),
		Retries:  sh.shipRetries.Load(),
		GiveUps:  sh.shipGiveUps.Load(),
		Skips:    sh.shipSkips.Load(),
	}
}

// publishLocked captures a fresh leader snapshot, makes it the served
// view, and returns the new epoch. Callers must hold mu exclusively.
func (sh *Shard) publishLocked(ctx *xpsim.Ctx) uint64 {
	old := sh.cur
	epoch := sh.pipe.Publish()
	sh.cur = &published{snap: sh.store.Snapshot(ctx), epoch: epoch}
	old.retire()
	return epoch
}

// acquire pins the current leader publication. The ref is taken under
// the shared lock, so it cannot race with retirement: a reader either
// increments before the writer's zero-check or sees the newer
// publication.
func (sh *Shard) acquire() *published {
	sh.mu.RLock()
	p := sh.cur
	p.refs.Add(1)
	sh.mu.RUnlock()
	return p
}

// health reads the leader store's media-health summary under the shared
// lock (the damage sets are mutated under the exclusive lock).
func (sh *Shard) health() core.Health {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.store.Health()
}

// recordShipLocked assigns the next stream sequence number to one
// applied chunk, deep-copies its payload into an immutable entry, and
// appends it to the retention ring. Callers must hold mu exclusively —
// in the SAME window that applied and published the chunk, so sequence
// order is application order even when the pipeline and the synchronous
// typed path interleave. Returns the framed message to dispatch after
// the lock is released; the zero shipMsg (no replicas) dispatches as a
// no-op.
func (sh *Shard) recordShipLocked(e shipEntry) shipMsg {
	if len(sh.replicas) == 0 {
		return shipMsg{}
	}
	ent := &shipEntry{
		epoch:  e.epoch,
		typed:  e.typed,
		edges:  append([]graph.Edge(nil), e.edges...),
		labels: append([]uint16(nil), e.labels...),
		props:  append([]graph.PropSet(nil), e.props...),
		defs:   append([]labelDef(nil), e.defs...),
	}
	sh.shipSeq++
	m := shipMsg{seq: sh.shipSeq, id: chunkID(sh.id, sh.shipSeq), e: ent}
	sh.ret = append(sh.ret, m)
	if len(sh.ret) > sh.retCap {
		n := copy(sh.ret, sh.ret[1:])
		sh.ret[n] = shipMsg{} // release the dropped entry
		sh.ret = sh.ret[:n]
	}
	return m
}

// retainedFromLocked returns the retained stream tail starting at seq,
// or nil when the ring no longer reaches back that far (callers hold
// mu). The returned messages share the ring's immutable entries.
func (sh *Shard) retainedFromLocked(seq uint64) []shipMsg {
	if len(sh.ret) == 0 || seq < sh.ret[0].seq {
		return nil
	}
	idx := int(seq - sh.ret[0].seq)
	if idx >= len(sh.ret) {
		return nil
	}
	return append([]shipMsg(nil), sh.ret[idx:]...)
}

// backoff derives the bounded, jittered sleep before retry `attempt+1`:
// exponential from shipBackoff, capped at shipBackoffMax, with seeded
// jitter in [d/2, d) so concurrent shippers do not retry in lockstep.
func (sh *Shard) backoff(seq uint64, attempt int) time.Duration {
	d := sh.shipBackoff << (attempt - 1)
	if d > sh.shipBackoffMax {
		d = sh.shipBackoffMax
	}
	h := splitmix64(uint64(uint32(sh.id))<<40 ^ seq<<8 ^ uint64(attempt))
	return d/2 + time.Duration(h%uint64(d/2+1))
}

// dispatch ships one recorded chunk to every running follower through
// the transport: bounded retries with exponential backoff + jitter per
// follower, and on exhaustion the follower is flipped into resync (the
// lag breaker) instead of blocking the caller. Runs OUTSIDE the shard
// lock; per-link ordering comes from the sequence numbers, not from
// delivery order.
func (sh *Shard) dispatch(m shipMsg) {
	if m.e == nil {
		return
	}
	for _, r := range sh.replicas {
		if r.stateNow() != replicaRunning {
			// Already resyncing (it will replay this seq from the
			// retention ring) or damaged: don't burn the retry budget.
			sh.shipSkips.Add(1)
			continue
		}
		link := chaos.Link{Shard: sh.id, Replica: r.id}
		delivered := false
		for attempt := 1; attempt <= sh.shipAttempts; attempt++ {
			sh.shipsTotal.Add(1)
			if err := sh.tr.Ship(link, m.seq, attempt, func() bool { return r.deliver(m) }); err == nil {
				delivered = true
				break
			}
			if attempt < sh.shipAttempts {
				sh.shipRetries.Add(1)
				time.Sleep(sh.backoff(m.seq, attempt))
			}
		}
		if !delivered {
			sh.shipGiveUps.Add(1)
			r.fellBehind()
		}
	}
}

// shardApplier is the shard's side of the ingest.Applier contract. It
// runs on the pipeline's single writer goroutine and owns the lock
// ordering: every application takes the shard's exclusive lock, ends in
// a snapshot publication plus a ship-stream record, feeds the circuit
// breaker, and dispatches the chunk to the followers outside the lock.
type shardApplier struct {
	sh *Shard
}

// Apply ingests one chunk under the exclusive lock and, on success,
// republishes the snapshot, records the chunk on the ship stream, and
// dispatches it.
func (a *shardApplier) Apply(chunk []graph.Edge) (int64, uint64, error) {
	sh := a.sh
	wctx := xpsim.NewCtx(xpsim.NodeUnbound)
	sh.mu.Lock()
	rep, err := sh.store.Ingest(chunk)
	var epoch uint64
	var msg shipMsg
	if err == nil {
		epoch = sh.publishLocked(wctx)
		msg = sh.recordShipLocked(shipEntry{edges: chunk, epoch: epoch})
	}
	sh.mu.Unlock()

	if err != nil {
		// Media-write failures feed the circuit breaker so repeated ones
		// shed new writes up front instead of queueing them into a
		// failing pipeline.
		var me *xpsim.MediaError
		if errors.As(err, &me) {
			sh.br.recordFailure(time.Now())
		}
		return 0, 0, err
	}
	sh.br.recordSuccess()
	sh.dispatch(msg)
	return rep.TotalNs(), epoch, nil
}

// Flush is the pipeline's background archive step: it drains every
// vertex buffer to PMEM and republishes. It also runs once at the end of
// a graceful drain.
func (a *shardApplier) Flush() {
	sh := a.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.store.FlushAllVbufs(); err != nil {
		return // surfaced through the flush admin op or the next write
	}
	sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
}

// Scrub is the background scrubber: it walks the heap verifying
// checksums under the exclusive lock and republishes when the pass
// changed anything.
func (a *shardApplier) Scrub() {
	sh := a.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rep, err := sh.store.Scrub()
	if err != nil {
		return
	}
	if rep.Damaged > 0 || rep.Repaired > 0 {
		sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
	}
}
