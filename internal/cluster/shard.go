package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/xpsim"
)

// published is one snapshot publication of a shard leader or replica.
// Readers pin it with a refcount under the owner's shared lock; the
// snapshot is closed (deregistered from compaction fencing) once it is
// both retired by a newer publication and unreferenced. This is the
// refcounted-publication protocol the single-store server ran (PR 2);
// it moved here so every shard — and every replica — runs its own copy.
type published struct {
	snap    *core.Snapshot
	epoch   uint64
	refs    atomic.Int64
	retired atomic.Bool
}

func (p *published) unref() {
	if p.refs.Add(-1) == 0 && p.retired.Load() {
		p.snap.Close()
	}
}

// retire marks p replaced by a newer publication, closing it when no
// reader holds it. Snapshot.Close is idempotent, so the benign race with
// a releasing reader's zero-check is harmless.
func (p *published) retire() {
	if p == nil {
		return
	}
	p.retired.Store(true)
	if p.refs.Load() == 0 {
		p.snap.Close()
	}
}

// Shard is one partition leader: a core.Store, its single-writer ingest
// pipeline, its snapshot publication chain, its circuit breaker, and the
// log-shipping fan-out to its follower replicas.
//
// The store itself is not goroutine-safe; mu orders the pipeline's write
// windows against snapshot reads exactly as the single-store server's
// stateMu did. All reads of the shard go through a pinned publication
// wrapped in view.GuardFull(pub.snap, &sh.mu).
type Shard struct {
	id    int
	store *core.Store

	// mu orders store mutation against snapshot reads: the writer holds
	// it exclusively per batch; readers take it shared per neighbor
	// access and when pinning the published snapshot.
	mu  sync.RWMutex
	cur *published // guarded by mu; swapped only under the write lock

	pipe *ingest.Pipeline
	br   breaker

	replicas []*Replica

	// down simulates the shard process dying (KillShard): writes are
	// refused up front and reads fail over to the best replica.
	down atomic.Bool
}

// ID returns the shard's index in the partition map.
func (sh *Shard) ID() int { return sh.id }

// Store returns the leader store (tests and telemetry; serving code goes
// through pinned publications).
func (sh *Shard) Store() *core.Store { return sh.store }

// Epoch reads the shard's current snapshot epoch.
func (sh *Shard) Epoch() uint64 { return sh.pipe.Epoch() }

// Down reports whether the shard was killed.
func (sh *Shard) Down() bool { return sh.down.Load() }

// PipeStats reads one consistent copy of the shard's pipeline counters.
func (sh *Shard) PipeStats() ingest.Stats { return sh.pipe.Stats() }

// Breaker reads one consistent copy of the shard's breaker state.
func (sh *Shard) Breaker() BreakerView { return sh.br.view(time.Now()) }

// Replicas returns the shard's followers.
func (sh *Shard) Replicas() []*Replica { return sh.replicas }

// publishLocked captures a fresh leader snapshot, makes it the served
// view, and returns the new epoch. Callers must hold mu exclusively.
func (sh *Shard) publishLocked(ctx *xpsim.Ctx) uint64 {
	old := sh.cur
	epoch := sh.pipe.Publish()
	sh.cur = &published{snap: sh.store.Snapshot(ctx), epoch: epoch}
	old.retire()
	return epoch
}

// acquire pins the current leader publication. The ref is taken under
// the shared lock, so it cannot race with retirement: a reader either
// increments before the writer's zero-check or sees the newer
// publication.
func (sh *Shard) acquire() *published {
	sh.mu.RLock()
	p := sh.cur
	p.refs.Add(1)
	sh.mu.RUnlock()
	return p
}

// health reads the leader store's media-health summary under the shared
// lock (the damage sets are mutated under the exclusive lock).
func (sh *Shard) health() core.Health {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.store.Health()
}

// ship fans one applied chunk out to every replica, tagged with the
// leader epoch it produced. Each replica gets its own pooled copy (the
// caller's chunk is recycled by the pipeline). Runs on the single writer
// goroutine; a full replica channel blocks it, which bounds replica lag
// at ReplicaQueue batches instead of letting a slow follower fall
// arbitrarily behind.
func (sh *Shard) ship(chunk []graph.Edge, epoch uint64) {
	for _, r := range sh.replicas {
		buf := ingest.GetEdgeBuf()
		buf = append(buf, chunk...)
		r.ship(shipEntry{edges: buf, epoch: epoch})
	}
}

// shardApplier is the shard's side of the ingest.Applier contract. It
// runs on the pipeline's single writer goroutine and owns the lock
// ordering: every application takes the shard's exclusive lock, ends in
// a snapshot publication, feeds the circuit breaker, and ships the
// applied chunk to the followers.
type shardApplier struct {
	sh *Shard
}

// Apply ingests one chunk under the exclusive lock and, on success,
// republishes the snapshot and ships the chunk.
func (a *shardApplier) Apply(chunk []graph.Edge) (int64, uint64, error) {
	sh := a.sh
	wctx := xpsim.NewCtx(xpsim.NodeUnbound)
	sh.mu.Lock()
	rep, err := sh.store.Ingest(chunk)
	var epoch uint64
	if err == nil {
		epoch = sh.publishLocked(wctx)
	}
	sh.mu.Unlock()

	if err != nil {
		// Media-write failures feed the circuit breaker so repeated ones
		// shed new writes up front instead of queueing them into a
		// failing pipeline.
		var me *xpsim.MediaError
		if errors.As(err, &me) {
			sh.br.recordFailure(time.Now())
		}
		return 0, 0, err
	}
	sh.br.recordSuccess()
	sh.ship(chunk, epoch)
	return rep.TotalNs(), epoch, nil
}

// Flush is the pipeline's background archive step: it drains every
// vertex buffer to PMEM and republishes. It also runs once at the end of
// a graceful drain.
func (a *shardApplier) Flush() {
	sh := a.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.store.FlushAllVbufs(); err != nil {
		return // surfaced through the flush admin op or the next write
	}
	sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
}

// Scrub is the background scrubber: it walks the heap verifying
// checksums under the exclusive lock and republishes when the pass
// changed anything.
func (a *shardApplier) Scrub() {
	sh := a.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rep, err := sh.store.Scrub()
	if err != nil {
		return
	}
	if rep.Damaged > 0 || rep.Repaired > 0 {
		sh.publishLocked(xpsim.NewCtx(xpsim.NodeUnbound))
	}
}
