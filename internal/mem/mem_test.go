package mem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xpsim"
)

func TestBudgetChargeRelease(t *testing.T) {
	b := NewBudget(100)
	if err := b.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(50); !errors.Is(err, ErrOOM) {
		t.Fatalf("overcharge err = %v, want ErrOOM", err)
	}
	b.Release(30)
	if err := b.Charge(50); err != nil {
		t.Fatalf("charge after release: %v", err)
	}
	if b.Used() != 80 {
		t.Fatalf("used = %d, want 80", b.Used())
	}
	if b.Peak() != 80 {
		t.Fatalf("peak = %d, want 80", b.Peak())
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	if err := b.Charge(1 << 40); err != nil {
		t.Fatal(err)
	}
	var nilBudget *Budget
	if err := nilBudget.Charge(1); err != nil {
		t.Fatal("nil budget must be unlimited")
	}
}

func TestSpaceReadWrite(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := NewDRAM(&lat, 1<<20, nil)
	ctx := xpsim.NewCtx(0)
	want := []byte("volatile but fast")
	s.Write(ctx, 4242, want)
	got := make([]byte, len(want))
	s.Read(ctx, 4242, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	if s.Persistent() {
		t.Fatal("DRAM space must not claim persistence")
	}
}

func TestSpaceAllocBudgetOOM(t *testing.T) {
	lat := xpsim.DefaultLatency()
	b := NewBudget(1000)
	s := NewDRAM(&lat, 1<<20, b)
	ctx := xpsim.NewCtx(0)
	if _, err := s.Alloc(ctx, 900, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(ctx, 900, 8); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestSpaceAllocAlignment(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := NewDRAM(&lat, 1<<20, nil)
	ctx := xpsim.NewCtx(0)
	if _, err := s.Alloc(ctx, 10, 1); err != nil {
		t.Fatal(err)
	}
	off, err := s.Alloc(ctx, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if off%256 != 0 {
		t.Fatalf("off = %d, want 256-aligned", off)
	}
}

func TestMemoryModeSlowerThanDRAM(t *testing.T) {
	lat := xpsim.DefaultLatency()
	d := NewDRAM(&lat, 1<<20, nil)
	m := NewMemoryMode(&lat, 1<<20)
	p := make([]byte, 4096)
	cd, cm := xpsim.NewCtx(0), xpsim.NewCtx(0)
	d.Write(cd, 0, p)
	m.Write(cm, 0, p)
	if cm.Cost.Ns() <= cd.Cost.Ns() {
		t.Fatalf("memory mode write %dns <= DRAM %dns", cm.Cost.Ns(), cd.Cost.Ns())
	}
}

func TestScalarRoundTrip(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := NewDRAM(&lat, 1<<16, nil)
	ctx := xpsim.NewCtx(0)
	f := func(off16 uint16, v32 uint32, v64 uint64) bool {
		off := int64(off16)
		WriteU32(s, ctx, off, v32)
		if ReadU32(s, ctx, off) != v32 {
			return false
		}
		WriteU64(s, ctx, off, v64)
		return ReadU64(s, ctx, off) == v64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceMatchesShadow(t *testing.T) {
	lat := xpsim.DefaultLatency()
	const size = 1 << 14
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewDRAM(&lat, size, nil)
		ctx := xpsim.NewCtx(0)
		shadow := make([]byte, size)
		for i := 0; i < 200; i++ {
			off := rng.Int63n(size - 1)
			n := 1 + rng.Int63n(min64(256, size-off))
			if rng.Intn(2) == 0 {
				p := make([]byte, n)
				rng.Read(p)
				s.Write(ctx, off, p)
				copy(shadow[off:], p)
			} else {
				p := make([]byte, n)
				s.Read(ctx, off, p)
				if !bytes.Equal(p, shadow[off:off+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
