// Package mem defines the memory abstraction the graph stores are written
// against. A Mem is a flat byte space with an allocator; the concrete
// implementations are DRAM (this package), Optane Memory-Mode (this
// package) and app-direct PMEM regions (package pmem). Writing the stores
// against Mem is what lets the same code run as XPGraph / XPGraph-D and
// GraphOne-D / GraphOne-P, exactly like the paper's variants (§IV-C).
package mem

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/xpsim"
)

// ErrOOM is returned when a DRAM allocation exceeds the machine's DRAM
// budget — the out-of-memory condition the paper hits on YahooWeb and the
// Kron graphs for DRAM-only systems (Fig. 12, Fig. 16).
var ErrOOM = errors.New("mem: out of DRAM")

// Mem is a byte-addressable memory space with simulated access costs.
type Mem interface {
	// Read copies len(p) bytes at off into p.
	Read(ctx *xpsim.Ctx, off int64, p []byte)
	// Write copies p to off.
	Write(ctx *xpsim.Ctx, off int64, p []byte)
	// Flush forces [off, off+n) toward the persistence domain (no-op for
	// volatile spaces).
	Flush(ctx *xpsim.Ctx, off, n int64)
	// Alloc reserves n bytes aligned to align and returns the offset.
	Alloc(ctx *xpsim.Ctx, n, align int64) (int64, error)
	// AllocBytes reports total bytes allocated so far.
	AllocBytes() int64
	// Size reports the capacity of the space.
	Size() int64
	// NodeOf reports the NUMA home of an offset (-1 when uniform).
	NodeOf(off int64) int
	// Persistent reports whether contents survive a crash.
	Persistent() bool
}

// CheckedMem is implemented by spaces whose reads can fail with a media
// error (app-direct PMEM regions over a fault-injected machine). Mem.Read
// keeps its infallible signature — most call sites run over DRAM or a
// healthy device — and media-aware readers upgrade via this interface.
type CheckedMem interface {
	Mem
	// ReadChecked is Read that reports an *xpsim.MediaError when the
	// access touched an uncorrectable line or a failed device. p is
	// filled either way (with whatever the media holds).
	ReadChecked(ctx *xpsim.Ctx, off int64, p []byte) error
}

// ReadChecked reads through m's checked path when it has one and falls
// back to the infallible Read (volatile spaces cannot take media errors).
func ReadChecked(m Mem, ctx *xpsim.Ctx, off int64, p []byte) error {
	if cm, ok := m.(CheckedMem); ok {
		return cm.ReadChecked(ctx, off, p)
	}
	m.Read(ctx, off, p)
	return nil
}

// Budget tracks a machine-wide DRAM budget shared by every DRAM consumer
// (spaces, vertex-buffer pools, metadata accounting).
type Budget struct {
	mu   sync.Mutex
	cap  int64 // <=0 means unlimited
	used int64
	peak int64
}

// NewBudget returns a budget capped at capBytes (<=0: unlimited).
func NewBudget(capBytes int64) *Budget { return &Budget{cap: capBytes} }

// Charge reserves n bytes, failing with ErrOOM if the cap would be
// exceeded.
func (b *Budget) Charge(n int64) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cap > 0 && b.used+n > b.cap {
		return fmt.Errorf("%w: want %d bytes, %d of %d in use", ErrOOM, n, b.used, b.cap)
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	return nil
}

// Release returns n bytes to the budget.
func (b *Budget) Release(n int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.used -= n
	b.mu.Unlock()
}

// Used reports currently charged bytes.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak reports the high-water mark of charged bytes.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Space is a volatile memory space: plain DRAM, or Optane in Memory Mode
// (slower, but vast). Accesses of at least a cache line are charged at the
// streaming rate; smaller accesses are charged as random.
type Space struct {
	lat        *xpsim.LatencyModel
	mulR, mulW float64
	size       int64
	budget     *Budget

	mu      sync.Mutex
	store   *xpsim.ChunkStore
	alloc   int64
	lastEnd int64 // end offset of the previous access (stream detection)
}

var _ Mem = (*Space)(nil)

// spaceHeader reserves the first bytes of every space so that offset 0 is
// never handed out by Alloc — callers use 0 as a "no block" sentinel.
const spaceHeader = 64

// NewDRAM builds a DRAM space of `size` bytes drawing allocations from
// `budget` (nil: unaccounted).
func NewDRAM(lat *xpsim.LatencyModel, size int64, budget *Budget) *Space {
	return &Space{lat: lat, mulR: 1, mulW: 1, size: size, budget: budget,
		store: xpsim.NewChunkStore(size), alloc: spaceHeader}
}

// NewMemoryMode builds a space modelling Optane configured in Memory Mode:
// DRAM semantics (volatile, uniform) at Optane-ish latency (Fig. 12 "MM").
func NewMemoryMode(lat *xpsim.LatencyModel, size int64) *Space {
	return &Space{lat: lat, mulR: lat.MemModeReadMul, mulW: lat.MemModeWriteMul,
		size: size, store: xpsim.NewChunkStore(size), alloc: spaceHeader}
}

// Read implements Mem.
func (s *Space) Read(ctx *xpsim.Ctx, off int64, p []byte) {
	s.check(off, int64(len(p)))
	s.mu.Lock()
	s.store.ReadAt(p, off)
	seq := off == s.lastEnd
	s.lastEnd = off + int64(len(p))
	s.mu.Unlock()
	s.charge(ctx, off, int64(len(p)), false, seq)
}

// Write implements Mem.
func (s *Space) Write(ctx *xpsim.Ctx, off int64, p []byte) {
	s.check(off, int64(len(p)))
	s.mu.Lock()
	s.store.WriteAt(p, off)
	seq := off == s.lastEnd
	s.lastEnd = off + int64(len(p))
	s.mu.Unlock()
	s.charge(ctx, off, int64(len(p)), true, seq)
}

// charge prices an access. Streaming continuations (the access starts
// exactly where the previous one ended, e.g. edge-log appends or batch
// scans) pay the sequential rate per newly-entered cache line; everything
// else pays the random rate per touched line.
func (s *Space) charge(ctx *xpsim.Ctx, off, n int64, write, seq bool) {
	mul := s.mulR
	if write {
		mul = s.mulW
	}
	const cl = xpsim.CacheLineSize
	if seq || n >= cl {
		per := s.lat.DRAMSeqRead
		if write {
			per = s.lat.DRAMSeqWrite
		}
		newLines := (off+n+cl-1)/cl - (off+cl-1)/cl
		if off%cl == 0 {
			newLines++
		}
		cost := float64(newLines*per) * mul
		if cost < 2 {
			cost = 2 // in-line continuation: a cached store/load
		}
		ctx.Cost.AddF(cost)
		return
	}
	lines := (n + cl - 1) / cl
	per := s.lat.DRAMRead
	if write {
		per = s.lat.DRAMWrite
	}
	ctx.Cost.AddF(float64(lines*per) * mul)
}

// Flush implements Mem; volatile spaces have nothing to flush.
func (s *Space) Flush(*xpsim.Ctx, int64, int64) {}

// Alloc implements Mem.
func (s *Space) Alloc(_ *xpsim.Ctx, n, align int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.alloc
	if align > 0 {
		base = (base + align - 1) / align * align
	}
	if base+n > s.size {
		return 0, fmt.Errorf("%w: space full: need %d, have %d", ErrOOM, n, s.size-base)
	}
	if s.budget != nil {
		if err := s.budget.Charge(base + n - s.alloc); err != nil {
			return 0, err
		}
	}
	s.alloc = base + n
	return base, nil
}

// AllocBytes implements Mem.
func (s *Space) AllocBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc
}

// Size implements Mem.
func (s *Space) Size() int64 { return s.size }

// NodeOf implements Mem; volatile spaces are modelled as uniform.
func (s *Space) NodeOf(int64) int { return -1 }

func (s *Space) check(off, n int64) {
	if off < 0 || off+n > s.size {
		panic(fmt.Sprintf("mem: access [%d,%d) out of space bounds %d", off, off+n, s.size))
	}
}

// Persistent implements Mem.
func (s *Space) Persistent() bool { return false }
