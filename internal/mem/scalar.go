package mem

import (
	"encoding/binary"

	"repro/internal/xpsim"
)

// Little-endian scalar helpers over a Mem. These model the 4- and 8-byte
// loads/stores graph stores issue for vertex IDs, counters and pointers.

// ReadU32 loads a 4-byte value at off.
func ReadU32(m Mem, ctx *xpsim.Ctx, off int64) uint32 {
	var b [4]byte
	m.Read(ctx, off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 stores a 4-byte value at off.
func WriteU32(m Mem, ctx *xpsim.Ctx, off int64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(ctx, off, b[:])
}

// ReadU64 loads an 8-byte value at off.
func ReadU64(m Mem, ctx *xpsim.Ctx, off int64) uint64 {
	var b [8]byte
	m.Read(ctx, off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 stores an 8-byte value at off.
func WriteU64(m Mem, ctx *xpsim.Ctx, off int64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(ctx, off, b[:])
}
