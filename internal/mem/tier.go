package mem

import (
	"fmt"

	"repro/internal/xpsim"
)

// Tiered glues a fast space and a slow space into one address range:
// offsets below the fast space's size go to the fast tier, offsets at or
// above the (alignment-padded) split go to the slow tier. Allocations
// fill the fast tier first and overflow to the slow one — the mechanism
// behind the SSD-supported XPGraph extension (graphs whose adjacency
// exceeds PMEM capacity, §V-F future work).
//
// The split is rounded up to an XPLine so slow-tier offsets keep every
// alignment the fast tier guaranteed; the padding bytes form a dead gap
// no allocation ever returns.
type Tiered struct {
	fast  Mem
	slow  Mem
	split int64
}

var _ Mem = (*Tiered)(nil)

// NewTiered builds the two-tier space.
func NewTiered(fast, slow Mem) *Tiered {
	split := (fast.Size() + xpsim.XPLineSize - 1) / xpsim.XPLineSize * xpsim.XPLineSize
	return &Tiered{fast: fast, slow: slow, split: split}
}

// route splits [off, off+n) at the tier boundary.
func (t *Tiered) route(off, n int64, fast, slow func(off, n int64)) {
	fs := t.fast.Size()
	if off < fs {
		c := n
		if off+c > fs {
			c = fs - off
		}
		fast(off, c)
		off += c
		n -= c
	}
	if n > 0 {
		if off < t.split {
			panic(fmt.Sprintf("mem: tiered access [%d,%d) crosses the dead gap [%d,%d)",
				off, off+n, fs, t.split))
		}
		slow(off-t.split, n)
	}
}

// Read implements Mem.
func (t *Tiered) Read(ctx *xpsim.Ctx, off int64, p []byte) {
	t.route(off, int64(len(p)), func(o, n int64) {
		t.fast.Read(ctx, o, p[:n])
		p = p[n:]
	}, func(o, n int64) {
		t.slow.Read(ctx, o, p[:n])
	})
}

// Write implements Mem.
func (t *Tiered) Write(ctx *xpsim.Ctx, off int64, p []byte) {
	t.route(off, int64(len(p)), func(o, n int64) {
		t.fast.Write(ctx, o, p[:n])
		p = p[n:]
	}, func(o, n int64) {
		t.slow.Write(ctx, o, p[:n])
	})
}

// Flush implements Mem.
func (t *Tiered) Flush(ctx *xpsim.Ctx, off, n int64) {
	t.route(off, n, func(o, c int64) {
		t.fast.Flush(ctx, o, c)
	}, func(o, c int64) {
		t.slow.Flush(ctx, o, c)
	})
}

// Alloc implements Mem: fast tier first, slow tier on overflow. A
// too-large remnant of the fast tier is abandoned (bump allocators do not
// split); slow-tier offsets are rebased past the aligned split.
func (t *Tiered) Alloc(ctx *xpsim.Ctx, n, align int64) (int64, error) {
	if off, err := t.fast.Alloc(ctx, n, align); err == nil {
		return off, nil
	}
	off, err := t.slow.Alloc(ctx, n, align)
	if err != nil {
		return 0, fmt.Errorf("mem: tiered allocation failed: %w", err)
	}
	return t.split + off, nil
}

// AllocBytes implements Mem.
func (t *Tiered) AllocBytes() int64 { return t.fast.AllocBytes() + t.slow.AllocBytes() }

// SlowBytes reports bytes allocated on the slow tier.
func (t *Tiered) SlowBytes() int64 { return t.slow.AllocBytes() }

// Size implements Mem.
func (t *Tiered) Size() int64 { return t.split + t.slow.Size() }

// NodeOf implements Mem.
func (t *Tiered) NodeOf(off int64) int {
	if off < t.fast.Size() {
		return t.fast.NodeOf(off)
	}
	return t.slow.NodeOf(off - t.split)
}

// Persistent implements Mem.
func (t *Tiered) Persistent() bool { return t.fast.Persistent() && t.slow.Persistent() }
