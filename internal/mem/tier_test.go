package mem

import (
	"bytes"
	"testing"

	"repro/internal/xpsim"
)

// slowStub is a second DRAM space standing in for the SSD, with a marker
// cost so tier routing is observable.
func tierUnderTest() (*Tiered, *Space, *Space) {
	lat := xpsim.DefaultLatency()
	fast := NewDRAM(&lat, 1000, nil) // deliberately unaligned size
	slow := NewDRAM(&lat, 1<<16, nil)
	return NewTiered(fast, slow), fast, slow
}

func TestTieredSplitAligned(t *testing.T) {
	tier, fast, slow := tierUnderTest()
	ctx := xpsim.NewCtx(0)
	// Exhaust the fast tier.
	var offs []int64
	for {
		off, err := tier.Alloc(ctx, 64, 16)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		if off >= fast.Size() {
			break
		}
	}
	over := offs[len(offs)-1]
	// Overflow offsets are 16-aligned even though fast.Size() is not.
	if over%16 != 0 {
		t.Fatalf("overflow offset %d not aligned", over)
	}
	if over < 1024 { // fast size 1000 rounds up to the 1024 XPLine boundary
		t.Fatalf("overflow offset %d below the aligned split", over)
	}
	if tier.NodeOf(offs[0]) != fast.NodeOf(offs[0]) {
		t.Fatal("fast-range NodeOf should delegate")
	}
	_ = slow
	if tier.Persistent() {
		t.Fatal("DRAM-backed tiers are volatile")
	}
	if tier.Size() <= fast.Size() {
		t.Fatal("tier size must include the slow space")
	}
	if tier.AllocBytes() == 0 || tier.SlowBytes() == 0 {
		t.Fatal("allocation accounting missing")
	}
}

func TestTieredDataPlacement(t *testing.T) {
	tier, _, slow := tierUnderTest()
	ctx := xpsim.NewCtx(0)
	// Write through the tier at a slow-range offset; the bytes must land
	// in the slow space at the rebased offset.
	want := []byte("spilled")
	tier.Write(ctx, 1024+128, want)
	got := make([]byte, len(want))
	slow.Read(ctx, 128, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("slow tier holds %q, want %q", got, want)
	}
	back := make([]byte, len(want))
	tier.Read(ctx, 1024+128, back)
	if !bytes.Equal(back, want) {
		t.Fatal("tier read mismatch")
	}
	tier.Flush(ctx, 1024+128, int64(len(want))) // must route without panic
}

func TestTieredGapAccessPanics(t *testing.T) {
	tier, _, _ := tierUnderTest()
	ctx := xpsim.NewCtx(0)
	defer func() {
		if recover() == nil {
			t.Fatal("access crossing the dead gap must panic")
		}
	}()
	tier.Write(ctx, 990, make([]byte, 64)) // straddles [1000,1024)
}

func TestTieredExhaustion(t *testing.T) {
	lat := xpsim.DefaultLatency()
	tier := NewTiered(NewDRAM(&lat, 256, nil), NewDRAM(&lat, 256, nil))
	ctx := xpsim.NewCtx(0)
	for i := 0; i < 2; i++ {
		if _, err := tier.Alloc(ctx, 128, 16); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := tier.Alloc(ctx, 4096, 16); err == nil {
		t.Fatal("expected both tiers exhausted")
	}
}
