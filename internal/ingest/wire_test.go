package ingest

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func randomEdges(n int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.Edge, n)
	for i := range out {
		e := graph.Edge{Src: uint32(rng.Intn(1 << 20)), Dst: uint32(rng.Intn(1 << 20))}
		if rng.Intn(5) == 0 {
			e.Dst |= graph.DelFlag
		}
		out[i] = e
	}
	return out
}

func TestBatchRoundTripFixed(t *testing.T) {
	want := randomEdges(5000, 1)
	buf := EncodeBatch(want, false)
	got, err := DecodeBatch(bytes.NewReader(buf), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBatchRoundTripCompact(t *testing.T) {
	want := randomEdges(5000, 2)
	buf := EncodeBatch(want, true)
	if len(buf) >= len(want)*graph.EdgeBytes {
		t.Fatalf("compact encoding %d bytes >= fixed %d", len(buf), len(want)*graph.EdgeBytes)
	}
	got, err := DecodeBatch(bytes.NewReader(buf), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBatchEmptyStream(t *testing.T) {
	got, err := DecodeBatch(strings.NewReader(BatchMagic), nil, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestBatchBadInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"wrong magic":    []byte("NOPE"),
		"unknown op":     append([]byte(BatchMagic), 0x7F, 1, 0, 0, 0),
		"zero count":     append([]byte(BatchMagic), opAddFixed, 0, 0, 0, 0),
		"huge count":     append([]byte(BatchMagic), opAddFixed, 0xFF, 0xFF, 0xFF, 0xFF),
		"truncated hdr":  append([]byte(BatchMagic), opAddFixed, 1, 0),
		"truncated body": append([]byte(BatchMagic), opAddFixed, 1, 0, 0, 0, 9, 9),
		"del bit set":    append([]byte(BatchMagic), opAddFixed, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80),
		"overlong varint": append([]byte(BatchMagic),
			opCompact, 1, 0, 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01),
		"truncated varint": append([]byte(BatchMagic), opCompact, 1, 0, 0, 0, 0x80),
		"src underflow":    append([]byte(BatchMagic), opCompact, 1, 0, 0, 0, 0x01, 0x00),
	}
	for name, in := range cases {
		if _, err := DecodeBatch(bytes.NewReader(in), nil, 0); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestBatchTooLarge(t *testing.T) {
	buf := EncodeBatch(randomEdges(100, 3), false)
	if _, err := DecodeBatch(bytes.NewReader(buf), nil, 50); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
}

func TestDecodeJSONEdges(t *testing.T) {
	body := `{"note":"ignored","edges":[{"src":1,"dst":2},{"src":3,"dst":4}],"extra":{"a":[1,2]}}`
	got, err := DecodeJSONEdges(strings.NewReader(body), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}

	got, err = DecodeJSONEdges(strings.NewReader(`{"edges":[{"src":7,"dst":8}]}`), nil, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].IsDelete() || got[0].Target() != 8 {
		t.Fatalf("delete decode = %v", got)
	}

	if _, err := DecodeJSONEdges(strings.NewReader(`{"edges":[{"src":1,"dst":2},{"src":3,"dst":4}]}`), nil, false, 1); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}

	for _, bad := range []string{``, `[]`, `{"edges":{}}`, `{"edges":[1]}`, `{"edges":[{"src":"x"}]}`} {
		if _, err := DecodeJSONEdges(strings.NewReader(bad), nil, false, 0); err == nil {
			t.Errorf("input %q decoded without error", bad)
		}
	}
}

// FuzzBinaryBatchDecode throws arbitrary bytes at the batch decoder:
// truncated frames, overlong varints, and zigzag edge cases must all
// fail typed (ErrBadFrame / ErrBatchTooLarge), never panic, and any
// edges that do decode must survive an encode/decode round trip.
func FuzzBinaryBatchDecode(f *testing.F) {
	f.Add(EncodeBatch(randomEdges(50, 4), false))
	f.Add(EncodeBatch(randomEdges(50, 5), true))
	f.Add([]byte(BatchMagic))
	f.Add(append([]byte(BatchMagic), opCompact, 2, 0, 0, 0, 0xFE, 0xFF, 0xFF, 0xFF, 0x1F, 0x00))
	f.Add(append([]byte(BatchMagic), opAddFixed, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0))
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := DecodeBatch(bytes.NewReader(in), nil, 1<<16)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrBatchTooLarge) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		for _, compact := range []bool{false, true} {
			again, err := DecodeBatch(bytes.NewReader(EncodeBatch(got, compact)), nil, 0)
			if err != nil {
				t.Fatalf("re-decode (compact=%v): %v", compact, err)
			}
			if len(again) != len(got) {
				t.Fatalf("round trip length %d, want %d", len(again), len(got))
			}
			for i := range got {
				if again[i] != got[i] {
					t.Fatalf("round trip edge %d: %v != %v", i, again[i], got[i])
				}
			}
		}
	})
}
