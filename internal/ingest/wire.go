package ingest

// The binary batch wire format (DESIGN.md §10.1) — the allocation-free
// fast path behind POST /v1/ingest/bin:
//
//	batch = magic frame*              magic = "XPB1"
//	frame = op u8 · count u32le · payload
//
//	op 0x01 add, fixed:     payload = count × (src u32le · dst u32le)
//	op 0x02 delete, fixed:  payload = count × (src u32le · dst u32le)
//	op 0x03 compact varint: payload = count ×
//	          (uvarint zigzag(int64(src) - int64(prevSrc)) ·
//	           uvarint (dst<<1 | del))
//	op 0x04 typed add:      payload = count × (src u32le · dst u32le · lbl u16le)
//	op 0x05 property set:   payload = count × (vid u32le · key u16le · val i64le)
//
// count is 1..MaxFrameEdges. Fixed payloads require the destination's
// top bit (graph.DelFlag) clear — the op carries deletion, so a set flag
// bit is a malformed frame, not a covert delete. The compact op resets
// prevSrc to 0 at each frame start and carries the delete bit in the
// destination word's low bit, so a source-sorted batch (the natural
// output of an edge-list loader) costs ~3 bytes/edge instead of 8.
//
// Ops 0x04/0x05 are the property-graph extension (DESIGN.md §13): a
// typed add carries the edge's label id and a property frame carries
// last-write-wins vertex-property records. They decode only through
// DecodeBatchTyped — the plain DecodeBatch rejects them like any unknown
// op, so a store without the property layer refuses typed batches with
// bad_frame instead of silently dropping the labels.
//
// Versioning: the magic's trailing byte is the format version ("XPB1");
// a future layout bumps it and servers reject unknown magics as
// ErrBadFrame before reading any frame. Unknown ops likewise. Errors
// travel back in the server's standard JSON error envelope with code
// "bad_frame".

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/graph"
)

// ContentTypeBatch is the media type of the binary batch format.
const ContentTypeBatch = "application/x-xpgraph-batch"

// BatchMagic opens every binary batch stream.
const BatchMagic = "XPB1"

const (
	opAddFixed = 0x01
	opDelFixed = 0x02
	opCompact  = 0x03
	opTypedAdd = 0x04
	opPropSet  = 0x05

	typedRecBytes = 10 // src u32le · dst u32le · lbl u16le
	propRecBytes  = 14 // vid u32le · key u16le · val i64le

	// MaxFrameEdges bounds one frame's count word, so a corrupt count
	// cannot make the decoder attempt a multi-gigabyte allocation.
	MaxFrameEdges = 1 << 20

	// maxWireVarint bounds one uvarint field: zigzag of a source delta is
	// < 1<<33 and a destination word is < 1<<32, both <= 5 bytes.
	maxWireVarint = 5
)

var (
	// ErrBadFrame reports a malformed binary batch: wrong magic, unknown
	// op, zero or oversized count, truncated payload, overlong varint, or
	// a fixed destination carrying the deletion bit.
	ErrBadFrame = errors.New("ingest: malformed batch frame")
	// ErrBatchTooLarge reports a batch whose decoded edge count exceeds
	// the caller's limit.
	ErrBatchTooLarge = errors.New("ingest: batch exceeds edge limit")
)

// readerPool recycles the decoder's buffered readers so each request
// costs no allocation beyond the edge slice growth.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64<<10) },
}

// TypedBatch is a decoded binary batch together with its property-graph
// payload. Labels is nil until a typed frame appears; once non-nil it is
// index-aligned with Edges (edges from untyped frames carry the default
// label).
type TypedBatch struct {
	Edges  []graph.Edge
	Labels []uint16
	Props  []graph.PropSet
}

// DecodeBatch decodes a binary batch stream, appending to dst. It stops
// at clean EOF (the stream may hold any number of frames) and returns
// ErrBadFrame for structural corruption and ErrBatchTooLarge once more
// than maxEdges records accumulate (maxEdges <= 0 means unlimited).
// Typed frames (ops 0x04/0x05) are rejected; see DecodeBatchTyped.
func DecodeBatch(r io.Reader, dst []graph.Edge, maxEdges int) ([]graph.Edge, error) {
	b := TypedBatch{Edges: dst}
	err := decodeFrames(r, &b, maxEdges, false)
	return b.Edges, err
}

// DecodeBatchTyped decodes a binary batch stream including the typed ops,
// appending to b (b.Edges may carry a pooled buffer). maxEdges bounds
// edges and property records together — both are attacker-controlled
// allocation.
func DecodeBatchTyped(r io.Reader, b *TypedBatch, maxEdges int) error {
	return decodeFrames(r, b, maxEdges, true)
}

func decodeFrames(r io.Reader, b *TypedBatch, maxEdges int, typed bool) error {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	defer func() {
		br.Reset(nil)
		readerPool.Put(br)
	}()

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: missing magic: %v", ErrBadFrame, err)
	}
	if string(magic[:]) != BatchMagic {
		return fmt.Errorf("%w: magic %q", ErrBadFrame, magic[:])
	}

	var scratch [4096]byte
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return fmt.Errorf("%w: truncated frame header: %v", ErrBadFrame, err)
		}
		count := int(binary.LittleEndian.Uint32(scratch[:4]))
		if count == 0 || count > MaxFrameEdges {
			return fmt.Errorf("%w: frame count %d", ErrBadFrame, count)
		}
		if maxEdges > 0 && len(b.Edges)+len(b.Props)+count > maxEdges {
			return ErrBatchTooLarge
		}
		switch op {
		case opAddFixed, opDelFixed:
			b.Edges, err = decodeFixedFrame(br, b.Edges, count, op == opDelFixed, scratch[:])
		case opCompact:
			b.Edges, err = decodeCompactFrame(br, b.Edges, count)
		case opTypedAdd:
			if !typed {
				return fmt.Errorf("%w: typed op 0x%02x outside a typed decode", ErrBadFrame, op)
			}
			err = decodeTypedFrame(br, b, count, scratch[:])
		case opPropSet:
			if !typed {
				return fmt.Errorf("%w: typed op 0x%02x outside a typed decode", ErrBadFrame, op)
			}
			err = decodePropFrame(br, b, count, scratch[:])
		default:
			return fmt.Errorf("%w: unknown op 0x%02x", ErrBadFrame, op)
		}
		if err != nil {
			return err
		}
		// Keep Labels index-aligned with Edges once any typed frame
		// materialized it: untyped frames' edges carry the default label.
		if b.Labels != nil && len(b.Labels) < len(b.Edges) {
			b.Labels = append(b.Labels, make([]uint16, len(b.Edges)-len(b.Labels))...)
		}
	}
}

// decodeTypedFrame reads count 10-byte typed-add records.
func decodeTypedFrame(br *bufio.Reader, b *TypedBatch, count int, scratch []byte) error {
	if b.Labels == nil {
		b.Labels = make([]uint16, len(b.Edges))
	}
	for count > 0 {
		n := count
		if n > len(scratch)/typedRecBytes {
			n = len(scratch) / typedRecBytes
		}
		chunk := scratch[:n*typedRecBytes]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return fmt.Errorf("%w: truncated typed payload: %v", ErrBadFrame, err)
		}
		for i := 0; i < n; i++ {
			rec := chunk[i*typedRecBytes:]
			e := graph.Edge{
				Src: binary.LittleEndian.Uint32(rec[0:4]),
				Dst: binary.LittleEndian.Uint32(rec[4:8]),
			}
			if e.Dst&graph.DelFlag != 0 {
				return fmt.Errorf("%w: typed destination %d carries the delete bit", ErrBadFrame, e.Dst)
			}
			b.Edges = append(b.Edges, e)
			b.Labels = append(b.Labels, binary.LittleEndian.Uint16(rec[8:10]))
		}
		count -= n
	}
	return nil
}

// decodePropFrame reads count 14-byte property-set records.
func decodePropFrame(br *bufio.Reader, b *TypedBatch, count int, scratch []byte) error {
	for count > 0 {
		n := count
		if n > len(scratch)/propRecBytes {
			n = len(scratch) / propRecBytes
		}
		chunk := scratch[:n*propRecBytes]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return fmt.Errorf("%w: truncated property payload: %v", ErrBadFrame, err)
		}
		for i := 0; i < n; i++ {
			rec := chunk[i*propRecBytes:]
			b.Props = append(b.Props, graph.PropSet{
				V:   binary.LittleEndian.Uint32(rec[0:4]),
				Key: binary.LittleEndian.Uint16(rec[4:6]),
				Val: int64(binary.LittleEndian.Uint64(rec[6:14])),
			})
		}
		count -= n
	}
	return nil
}

// decodeFixedFrame reads count 8-byte records through a reused scratch
// buffer — no per-edge allocation, no reflection.
func decodeFixedFrame(br *bufio.Reader, dst []graph.Edge, count int, del bool, scratch []byte) ([]graph.Edge, error) {
	for count > 0 {
		n := count
		if n > len(scratch)/graph.EdgeBytes {
			n = len(scratch) / graph.EdgeBytes
		}
		chunk := scratch[:n*graph.EdgeBytes]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return dst, fmt.Errorf("%w: truncated fixed payload: %v", ErrBadFrame, err)
		}
		for i := 0; i < n; i++ {
			e := graph.DecodeEdge(chunk[i*graph.EdgeBytes:])
			if e.Dst&graph.DelFlag != 0 {
				return dst, fmt.Errorf("%w: fixed destination %d carries the delete bit", ErrBadFrame, e.Dst)
			}
			if del {
				e.Dst |= graph.DelFlag
			}
			dst = append(dst, e)
		}
		count -= n
	}
	return dst, nil
}

// decodeCompactFrame reads count delta-varint records. prevSrc resets
// per frame, matching the encoder.
func decodeCompactFrame(br *bufio.Reader, dst []graph.Edge, count int) ([]graph.Edge, error) {
	var prevSrc int64
	for i := 0; i < count; i++ {
		d, err := readWireUvarint(br)
		if err != nil {
			return dst, err
		}
		src := prevSrc + unzigzag(d)
		if src < 0 || src > int64(^uint32(0)) {
			return dst, fmt.Errorf("%w: source delta walks outside uint32", ErrBadFrame)
		}
		prevSrc = src
		w, err := readWireUvarint(br)
		if err != nil {
			return dst, err
		}
		if w >= 1<<32 {
			return dst, fmt.Errorf("%w: destination word overflows", ErrBadFrame)
		}
		e := graph.Edge{Src: uint32(src), Dst: uint32(w >> 1)}
		if w&1 != 0 {
			e.Dst |= graph.DelFlag
		}
		dst = append(dst, e)
	}
	return dst, nil
}

// readWireUvarint reads one bounded uvarint field.
func readWireUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; i < maxWireVarint; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: truncated varint: %v", ErrBadFrame, err)
		}
		if b < 0x80 {
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("%w: overlong varint", ErrBadFrame)
}

// unzigzag undoes zigzag coding (shared with internal/adj's block
// encoding; duplicated two-liner to keep the packages independent).
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// EncodeBatch builds a binary batch stream. With compact=false adds and
// deletes go out as fixed frames (op runs preserved in order); with
// compact=true everything goes through op 0x03. The encoding is what
// clients send; see the README example.
func EncodeBatch(edges []graph.Edge, compact bool) []byte {
	buf := append(make([]byte, 0, 5+len(edges)*graph.EdgeBytes), BatchMagic...)
	if compact {
		for off := 0; off < len(edges); off += MaxFrameEdges {
			end := off + MaxFrameEdges
			if end > len(edges) {
				end = len(edges)
			}
			buf = appendCompactFrame(buf, edges[off:end])
		}
		return buf
	}
	for off := 0; off < len(edges); {
		del := edges[off].IsDelete()
		end := off
		for end < len(edges) && edges[end].IsDelete() == del && end-off < MaxFrameEdges {
			end++
		}
		buf = appendFixedFrame(buf, edges[off:end], del)
		off = end
	}
	return buf
}

// EncodeTypedBatch builds a typed binary batch stream: adds go out as
// typed frames carrying labels[i] (default label when labels is short),
// deletes as plain delete frames (deletions never carry labels), and
// props as property frames after the edges. Decode with
// DecodeBatchTyped; a server without the property layer rejects the
// stream as bad_frame.
func EncodeTypedBatch(edges []graph.Edge, labels []uint16, props []graph.PropSet) []byte {
	buf := append(make([]byte, 0, 5+len(edges)*typedRecBytes+len(props)*propRecBytes), BatchMagic...)
	lbl := func(i int) uint16 {
		if i < len(labels) {
			return labels[i]
		}
		return uint16(graph.DefaultLabel)
	}
	for off := 0; off < len(edges); {
		del := edges[off].IsDelete()
		end := off
		for end < len(edges) && edges[end].IsDelete() == del && end-off < MaxFrameEdges {
			end++
		}
		if del {
			buf = appendFixedFrame(buf, edges[off:end], true)
		} else {
			buf = append(buf, opTypedAdd)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(end-off))
			for i := off; i < end; i++ {
				buf = binary.LittleEndian.AppendUint32(buf, edges[i].Src)
				buf = binary.LittleEndian.AppendUint32(buf, edges[i].Dst&^graph.DelFlag)
				buf = binary.LittleEndian.AppendUint16(buf, lbl(i))
			}
		}
		off = end
	}
	for off := 0; off < len(props); off += MaxFrameEdges {
		end := off + MaxFrameEdges
		if end > len(props) {
			end = len(props)
		}
		buf = append(buf, opPropSet)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(end-off))
		for _, p := range props[off:end] {
			buf = binary.LittleEndian.AppendUint32(buf, p.V)
			buf = binary.LittleEndian.AppendUint16(buf, p.Key)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Val))
		}
	}
	return buf
}

func appendFixedFrame(buf []byte, edges []graph.Edge, del bool) []byte {
	op := byte(opAddFixed)
	if del {
		op = opDelFixed
	}
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, e.Src)
		buf = binary.LittleEndian.AppendUint32(buf, e.Dst&^graph.DelFlag)
	}
	return buf
}

func appendCompactFrame(buf []byte, edges []graph.Edge) []byte {
	buf = append(buf, opCompact)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	var prevSrc int64
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, zigzag(int64(e.Src)-prevSrc))
		prevSrc = int64(e.Src)
		w := uint64(e.Dst&^graph.DelFlag) << 1
		if e.IsDelete() {
			w |= 1
		}
		buf = binary.AppendUvarint(buf, w)
	}
	return buf
}

// DecodeJSONEdges streams the {"edges":[{"src":..,"dst":..},...]} body
// into dst without buffering the request or materializing an
// intermediate struct slice. With del set every edge becomes a deletion
// record. Unknown top-level keys are skipped; more than maxEdges edges
// return ErrBatchTooLarge (maxEdges <= 0 means unlimited).
func DecodeJSONEdges(r io.Reader, dst []graph.Edge, del bool, maxEdges int) ([]graph.Edge, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return dst, err
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return dst, err
		}
		key, _ := tok.(string)
		if key != "edges" {
			if err := skipJSONValue(dec); err != nil {
				return dst, err
			}
			continue
		}
		if err := expectDelim(dec, '['); err != nil {
			return dst, err
		}
		var e struct {
			Src graph.VID `json:"src"`
			Dst graph.VID `json:"dst"`
		}
		for dec.More() {
			if maxEdges > 0 && len(dst) >= maxEdges {
				return dst, ErrBatchTooLarge
			}
			e.Src, e.Dst = 0, 0
			if err := dec.Decode(&e); err != nil {
				return dst, err
			}
			edge := graph.Edge{Src: e.Src, Dst: e.Dst}
			if del {
				edge.Dst |= graph.DelFlag
			}
			dst = append(dst, edge)
		}
		if err := expectDelim(dec, ']'); err != nil {
			return dst, err
		}
	}
	return dst, expectDelim(dec, '}')
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("ingest: expected %q in JSON body, got %v", want, tok)
	}
	return nil
}

// skipJSONValue consumes one JSON value (scalar, object, or array) from
// the token stream.
func skipJSONValue(dec *json.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
		if depth == 0 {
			return nil
		}
	}
}
