package ingest

import (
	"testing"
	"time"
)

// TestConfigWithDefaults pins the defaulting rules: zero and negative
// fields take the documented defaults, set fields survive untouched.
func TestConfigWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "zero value takes every default",
			in:   Config{},
			want: Config{QueueCap: 1 << 16, BatchEdges: 4096, Linger: 2 * time.Millisecond},
		},
		{
			name: "negative fields are treated as unset",
			in:   Config{QueueCap: -1, BatchEdges: -4096, Linger: -time.Second},
			want: Config{QueueCap: 1 << 16, BatchEdges: 4096, Linger: 2 * time.Millisecond},
		},
		{
			name: "already-set fields survive",
			in:   Config{QueueCap: 128, BatchEdges: 16, Linger: time.Microsecond},
			want: Config{QueueCap: 128, BatchEdges: 16, Linger: time.Microsecond},
		},
		{
			name: "partial: only the unset fields default",
			in:   Config{BatchEdges: 512},
			want: Config{QueueCap: 1 << 16, BatchEdges: 512, Linger: 2 * time.Millisecond},
		},
		{
			name: "optional periods and hooks stay zero (disabled)",
			in:   Config{FlushEvery: 0, ScrubEvery: 0, BatchDelay: 0},
			want: Config{QueueCap: 1 << 16, BatchEdges: 4096, Linger: 2 * time.Millisecond},
		},
		{
			name: "set periods pass through",
			in:   Config{FlushEvery: time.Second, ScrubEvery: time.Minute, BatchDelay: time.Millisecond},
			want: Config{QueueCap: 1 << 16, BatchEdges: 4096, Linger: 2 * time.Millisecond,
				FlushEvery: time.Second, ScrubEvery: time.Minute, BatchDelay: time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.withDefaults(); got != tc.want {
				t.Fatalf("withDefaults(%+v)\n got %+v\nwant %+v", tc.in, got, tc.want)
			}
		})
	}
}

// TestAdaptiveConfigWithDefaults does the same for the AIMD
// controller's knob set.
func TestAdaptiveConfigWithDefaults(t *testing.T) {
	def := AdaptiveConfig{
		Target:        2 * time.Millisecond,
		LowWater:      0.25,
		HighWater:     0.75,
		MinBatchEdges: 256,
		MinAdmitFrac:  0.125,
		Hold:          3,
	}
	cases := []struct {
		name string
		in   AdaptiveConfig
		want AdaptiveConfig
	}{
		{name: "zero value takes every default", in: AdaptiveConfig{}, want: def},
		{
			name: "negative fields are treated as unset",
			in: AdaptiveConfig{Target: -time.Second, LowWater: -1, HighWater: -1,
				MinBatchEdges: -5, MinAdmitFrac: -0.5, Hold: -2},
			want: def,
		},
		{
			name: "already-set fields survive",
			in: AdaptiveConfig{Target: time.Millisecond, LowWater: 0.1, HighWater: 0.9,
				MinBatchEdges: 64, MinAdmitFrac: 0.25, Hold: 5},
			want: AdaptiveConfig{Target: time.Millisecond, LowWater: 0.1, HighWater: 0.9,
				MinBatchEdges: 64, MinAdmitFrac: 0.25, Hold: 5},
		},
		{
			name: "partial: only the unset fields default",
			in:   AdaptiveConfig{Target: 10 * time.Millisecond, Hold: 1},
			want: AdaptiveConfig{Target: 10 * time.Millisecond, LowWater: 0.25, HighWater: 0.75,
				MinBatchEdges: 256, MinAdmitFrac: 0.125, Hold: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.withDefaults(); got != tc.want {
				t.Fatalf("withDefaults(%+v)\n got %+v\nwant %+v", tc.in, got, tc.want)
			}
		})
	}
}
