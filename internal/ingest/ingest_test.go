package ingest

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// fakeApplier counts applied edges and can be told to fail.
type fakeApplier struct {
	mu      sync.Mutex
	applied []graph.Edge
	batches int
	flushes int
	scrubs  int
	failErr error
}

func (a *fakeApplier) Apply(chunk []graph.Edge) (int64, uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failErr != nil {
		return 0, 0, a.failErr
	}
	a.applied = append(a.applied, chunk...)
	a.batches++
	return int64(len(chunk)) * 100, uint64(a.batches), nil
}

func (a *fakeApplier) Flush() {
	a.mu.Lock()
	a.flushes++
	a.mu.Unlock()
}

func (a *fakeApplier) Scrub() {
	a.mu.Lock()
	a.scrubs++
	a.mu.Unlock()
}

func (a *fakeApplier) snapshot() ([]graph.Edge, int, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]graph.Edge(nil), a.applied...), a.batches, a.flushes
}

func edges(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{Src: uint32(i), Dst: uint32(i + 1)}
	}
	return out
}

func TestPipelineAppliesAndCredits(t *testing.T) {
	ap := &fakeApplier{}
	p := New(Config{BatchEdges: 64, Linger: time.Millisecond}, ap)
	p.Start()
	defer p.Close()

	req := NewRequest(edges(200)) // spans multiple chunks
	if err := p.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	res := <-req.Done()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Accepted != 200 || res.Batches < 3 || res.SimNs == 0 || res.Epoch == 0 {
		t.Fatalf("result = %+v", res)
	}
	applied, _, _ := ap.snapshot()
	if len(applied) != 200 {
		t.Fatalf("applied %d edges", len(applied))
	}
	st := p.Stats()
	if st.EdgesAccepted != 200 || st.EdgesApplied != 200 || st.Queued != 0 || st.EdgesDropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPipelineQueueFull(t *testing.T) {
	ap := &fakeApplier{}
	p := New(Config{QueueCap: 8, Linger: time.Millisecond}, ap)
	// Not started: the queue only fills.
	if err := p.Enqueue(NewRequest(edges(8))); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue(NewRequest(edges(1))); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d", st.Rejected)
	}
	p.Start()
	p.Close()
}

func TestPipelineApplyFailureDropsTail(t *testing.T) {
	ap := &fakeApplier{failErr: errors.New("media gone")}
	p := New(Config{Linger: time.Millisecond}, ap)
	p.Start()
	defer p.Close()

	req := NewRequest(edges(10))
	if err := p.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	res := <-req.Done()
	if res.Err == nil || res.Accepted != 0 {
		t.Fatalf("result = %+v", res)
	}
	st := p.Stats()
	if st.EdgesDropped != 10 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPipelineShutdownDrainsAndFlushes(t *testing.T) {
	ap := &fakeApplier{}
	p := New(Config{Linger: time.Millisecond}, ap)
	p.Start()
	req := NewRequest(edges(32))
	if err := p.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	p.Shutdown()
	select {
	case res := <-req.Done():
		if res.Err != nil {
			t.Fatalf("drained request failed: %v", res.Err)
		}
	default:
		t.Fatal("request not completed by shutdown drain")
	}
	if err := p.Enqueue(NewRequest(edges(1))); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown enqueue = %v", err)
	}
	if _, _, flushes := ap.snapshot(); flushes == 0 {
		t.Fatal("shutdown did not flush")
	}
}

func TestPipelineCloseFailsQueued(t *testing.T) {
	ap := &fakeApplier{}
	p := New(Config{Linger: time.Millisecond}, ap)
	req := NewRequest(edges(5))
	if err := p.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Close()
	res := <-req.Done()
	// The writer either applied it before stop won the select, or failed
	// it with ErrShuttingDown; both leave the queue empty.
	if res.Err != nil && !errors.Is(res.Err, ErrShuttingDown) {
		t.Fatalf("result = %+v", res)
	}
	if st := p.Stats(); st.Queued != 0 {
		t.Fatalf("queued = %d after close", st.Queued)
	}
}

func TestPublishBumpsEpoch(t *testing.T) {
	p := New(Config{}, &fakeApplier{})
	if e := p.Publish(); e != 1 {
		t.Fatalf("first publish = %d", e)
	}
	if e := p.Epoch(); e != 1 {
		t.Fatalf("epoch = %d", e)
	}
	if st := p.Stats(); st.PublishedAtNs == 0 {
		t.Fatal("publish did not stamp time")
	}
}

func TestEdgeBufPoolRoundTrip(t *testing.T) {
	buf := GetEdgeBuf()
	if len(buf) != 0 {
		t.Fatalf("pooled buffer not empty: %d", len(buf))
	}
	buf = append(buf, graph.Edge{Src: 1, Dst: 2})
	PutEdgeBuf(buf)
	again := GetEdgeBuf()
	if len(again) != 0 {
		t.Fatalf("reused buffer not reset: %d", len(again))
	}
	PutEdgeBuf(again)
}
