package ingest

import (
	"testing"
	"time"
)

func newTestController() *Controller {
	return NewController(1<<14, Tuning{BatchEdges: 4096, Linger: 2 * time.Millisecond},
		AdaptiveConfig{Target: time.Millisecond, Hold: 3})
}

// TestControllerDecreaseCascade pins the multiplicative-decrease rule:
// Hold consecutive over-target batches halve every knob, repeated
// congestion walks them down to their floors and no further.
func TestControllerDecreaseCascade(t *testing.T) {
	c := newTestController()
	slow := 5 * time.Millisecond

	// Two over-target batches are not enough (Hold = 3).
	for i := 0; i < 2; i++ {
		if c.Observe(0, 4096, slow) {
			t.Fatal("controller moved before Hold consecutive signals")
		}
	}
	if !c.Observe(0, 4096, slow) {
		t.Fatal("third consecutive congestion signal did not decrease")
	}
	tun := c.Tuning()
	if tun.BatchEdges != 2048 || tun.Linger != time.Millisecond || tun.AdmitEdges != 1<<13 {
		t.Fatalf("first decrease did not halve the knobs: %+v", tun)
	}

	// Sustained congestion bottoms out at the floors: MinBatchEdges,
	// base.Linger/8, MinAdmitFrac*queueCap.
	for i := 0; i < 60; i++ {
		c.Observe(0, 4096, slow)
	}
	tun = c.Tuning()
	if tun.BatchEdges != 256 {
		t.Fatalf("BatchEdges floor: got %d, want 256", tun.BatchEdges)
	}
	if tun.Linger != 2*time.Millisecond/8 {
		t.Fatalf("Linger floor: got %v, want %v", tun.Linger, 2*time.Millisecond/8)
	}
	if tun.AdmitEdges != (1<<14)/8 {
		t.Fatalf("AdmitEdges floor: got %d, want %d", tun.AdmitEdges, (1<<14)/8)
	}
	// At the floors, further congestion is a no-op (not counted as a step).
	dec, _ := c.Steps()
	for i := 0; i < 3; i++ {
		if c.Observe(0, 4096, slow) {
			t.Fatal("controller claimed to move while pinned at the floors")
		}
	}
	if d, _ := c.Steps(); d != dec {
		t.Fatalf("floored decreases still counted: %d -> %d", dec, d)
	}
}

// TestControllerHysteresisBand pins that batches inside the band — not
// clearly congested, not clearly idle — hold position and reset both
// streak counters.
func TestControllerHysteresisBand(t *testing.T) {
	c := newTestController()
	before := c.Tuning()

	// In-band: latency between Target/2 and Target at moderate depth.
	for i := 0; i < 20; i++ {
		if c.Observe(100, 4096, 700*time.Microsecond) {
			t.Fatal("in-band batch moved the tuning")
		}
	}
	if c.Tuning() != before {
		t.Fatalf("hysteresis band did not hold position: %+v -> %+v", before, c.Tuning())
	}

	// Streak reset: 2 congestion signals, then an in-band batch, then 2
	// more congestion signals — never Hold consecutive, so no movement.
	slow := 5 * time.Millisecond
	c.Observe(0, 4096, slow)
	c.Observe(0, 4096, slow)
	c.Observe(100, 4096, 700*time.Microsecond)
	c.Observe(0, 4096, slow)
	if c.Observe(0, 4096, slow) {
		t.Fatal("in-band batch did not reset the congestion streak")
	}
	if c.Tuning() != before {
		t.Fatalf("broken streak still moved the tuning: %+v", c.Tuning())
	}
}

// TestControllerIncreaseToCeiling pins the additive-increase rule: after
// congestion clears, Hold consecutive fast-and-shallow batches step the
// knobs back up, converging exactly to the static ceiling and never past
// it.
func TestControllerIncreaseToCeiling(t *testing.T) {
	c := newTestController()
	slow, fast := 5*time.Millisecond, 100*time.Microsecond

	// Drive all the way down...
	for i := 0; i < 60; i++ {
		c.Observe(0, 4096, slow)
	}
	// ...then feed clear signals until the controller stops moving.
	moved, rounds := true, 0
	for moved && rounds < 1000 {
		moved = false
		for i := 0; i < 3; i++ {
			if c.Observe(0, 256, fast) {
				moved = true
			}
		}
		rounds++
	}
	tun := c.Tuning()
	if tun.BatchEdges != 4096 || tun.Linger != 2*time.Millisecond || tun.AdmitEdges != 1<<14 {
		t.Fatalf("recovery did not converge to the static ceiling: %+v", tun)
	}
	// Pinned at the ceiling, further clear signals are a no-op.
	_, inc := c.Steps()
	for i := 0; i < 3; i++ {
		if c.Observe(0, 256, fast) {
			t.Fatal("controller exceeded or re-reported the static ceiling")
		}
	}
	if _, i2 := c.Steps(); i2 != inc {
		t.Fatalf("ceiling increases still counted: %d -> %d", inc, i2)
	}
	dec, _ := c.Steps()
	if dec == 0 || inc == 0 {
		t.Fatalf("steps not counted: decreases=%d increases=%d", dec, inc)
	}
}

// TestControllerDepthSignals pins that queue depth alone drives both
// directions: a deep queue is congestion even when batches are fast, and
// a clear signal requires a shallow queue even when batches are fast.
func TestControllerDepthSignals(t *testing.T) {
	c := newTestController()
	fast := 100 * time.Microsecond

	// Depth above HighWater*cap (0.75 * 1<<14 = 12288) congests.
	deep := int64(13000)
	c.Observe(deep, 4096, fast)
	c.Observe(deep, 4096, fast)
	if !c.Observe(deep, 4096, fast) {
		t.Fatal("deep queue with fast batches did not signal congestion")
	}

	// Fast batches over a queue between the watermarks are in-band: they
	// must not step back up.
	mid := int64(8000)
	before := c.Tuning()
	for i := 0; i < 10; i++ {
		if c.Observe(mid, 4096, fast) {
			t.Fatal("mid-depth queue produced a clear signal")
		}
	}
	if c.Tuning() != before {
		t.Fatalf("mid-depth batches moved the tuning: %+v", c.Tuning())
	}
}

// TestNewControllerClamping pins the constructor's sanitation: AdmitEdges
// defaults to (and never exceeds) the queue capacity, and MinBatchEdges
// is clamped down to the base batch size so the floor is reachable.
func TestNewControllerClamping(t *testing.T) {
	c := NewController(1000, Tuning{BatchEdges: 4096, Linger: time.Millisecond, AdmitEdges: 5000},
		AdaptiveConfig{})
	if got := c.AdmitEdges(); got != 1000 {
		t.Fatalf("AdmitEdges not clamped to queueCap: got %d", got)
	}

	c = NewController(1000, Tuning{BatchEdges: 64, Linger: time.Millisecond}, AdaptiveConfig{})
	if got := c.BatchEdges(); got != 64 {
		t.Fatalf("base BatchEdges not honored: got %d", got)
	}
	// With base below the default MinBatchEdges floor, the floor clamps
	// to base: sustained congestion must leave BatchEdges at base, not
	// try to halve below it.
	for i := 0; i < 30; i++ {
		c.Observe(0, 64, time.Minute)
	}
	if got := c.BatchEdges(); got != 64 {
		t.Fatalf("MinBatchEdges floor not clamped to base: got %d", got)
	}
}
