package ingest

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomTyped(n int, seed int64) ([]graph.Edge, []uint16, []graph.PropSet) {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, n)
	labels := make([]uint16, n)
	for i := range edges {
		e := graph.Edge{Src: uint32(rng.Intn(1 << 20)), Dst: uint32(rng.Intn(1 << 20))}
		if rng.Intn(5) == 0 {
			e.Dst |= graph.DelFlag
		} else {
			labels[i] = uint16(rng.Intn(8))
		}
		edges[i] = e
	}
	props := make([]graph.PropSet, n/4)
	for i := range props {
		props[i] = graph.PropSet{
			V:   uint32(rng.Intn(1 << 20)),
			Key: uint16(rng.Intn(16)),
			Val: rng.Int63() - rng.Int63(),
		}
	}
	return edges, labels, props
}

func TestTypedBatchRoundTrip(t *testing.T) {
	edges, labels, props := randomTyped(5000, 1)
	buf := EncodeTypedBatch(edges, labels, props)
	var b TypedBatch
	if err := DecodeBatchTyped(bytes.NewReader(buf), &b, 0); err != nil {
		t.Fatal(err)
	}
	if len(b.Edges) != len(edges) || len(b.Labels) != len(edges) || len(b.Props) != len(props) {
		t.Fatalf("decoded %d/%d/%d, want %d/%d/%d",
			len(b.Edges), len(b.Labels), len(b.Props), len(edges), len(edges), len(props))
	}
	for i := range edges {
		if b.Edges[i] != edges[i] {
			t.Fatalf("edge %d: got %v, want %v", i, b.Edges[i], edges[i])
		}
		want := labels[i]
		if edges[i].IsDelete() {
			want = uint16(graph.DefaultLabel) // deletions never carry labels
		}
		if b.Labels[i] != want {
			t.Fatalf("label %d: got %d, want %d", i, b.Labels[i], want)
		}
	}
	for i := range props {
		if b.Props[i] != props[i] {
			t.Fatalf("prop %d: got %v, want %v", i, b.Props[i], props[i])
		}
	}
}

// TestTypedBatchLabelAlignment pins the mixed-frame rule: once any typed
// frame materializes Labels, edges from untyped frames carry the default
// label at their index.
func TestTypedBatchLabelAlignment(t *testing.T) {
	buf := EncodeBatch([]graph.Edge{{Src: 1, Dst: 2}}, false)
	buf = append(buf, EncodeTypedBatch([]graph.Edge{{Src: 3, Dst: 4}}, []uint16{7}, nil)[4:]...)
	buf = append(buf, EncodeBatch([]graph.Edge{{Src: 5, Dst: 6}}, false)[4:]...)
	var b TypedBatch
	if err := DecodeBatchTyped(bytes.NewReader(buf), &b, 0); err != nil {
		t.Fatal(err)
	}
	if len(b.Edges) != 3 || len(b.Labels) != 3 {
		t.Fatalf("decoded %d edges, %d labels", len(b.Edges), len(b.Labels))
	}
	if b.Labels[0] != 0 || b.Labels[1] != 7 || b.Labels[2] != 0 {
		t.Fatalf("labels = %v, want [0 7 0]", b.Labels)
	}
}

// TestTypedBatchPlainStaysUntyped: a batch with no typed frames decodes
// with Labels nil, which is how the server tells the async pipeline path
// from the synchronous typed one.
func TestTypedBatchPlainStaysUntyped(t *testing.T) {
	buf := EncodeBatch(randomEdges(100, 6), false)
	var b TypedBatch
	if err := DecodeBatchTyped(bytes.NewReader(buf), &b, 0); err != nil {
		t.Fatal(err)
	}
	if b.Labels != nil || b.Props != nil {
		t.Fatalf("plain batch decoded typed: labels=%v props=%v", b.Labels, b.Props)
	}
}

// TestPlainDecodeRejectsTypedOps pins the downgrade guard: DecodeBatch
// must refuse typed frames as bad_frame, never silently drop labels.
func TestPlainDecodeRejectsTypedOps(t *testing.T) {
	typed := EncodeTypedBatch([]graph.Edge{{Src: 1, Dst: 2}}, []uint16{3}, nil)
	if _, err := DecodeBatch(bytes.NewReader(typed), nil, 0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("typed frame: err = %v, want ErrBadFrame", err)
	}
	props := EncodeTypedBatch(nil, nil, []graph.PropSet{{V: 1, Key: 2, Val: 3}})
	if _, err := DecodeBatch(bytes.NewReader(props), nil, 0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("prop frame: err = %v, want ErrBadFrame", err)
	}
}

func TestTypedBatchBadInputs(t *testing.T) {
	cases := map[string][]byte{
		"truncated typed":  append([]byte(BatchMagic), opTypedAdd, 1, 0, 0, 0, 9, 9),
		"typed del bit":    append([]byte(BatchMagic), opTypedAdd, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80, 5, 0),
		"truncated prop":   append([]byte(BatchMagic), opPropSet, 1, 0, 0, 0, 1, 2, 3),
		"zero typed count": append([]byte(BatchMagic), opTypedAdd, 0, 0, 0, 0),
	}
	for name, in := range cases {
		var b TypedBatch
		if err := DecodeBatchTyped(bytes.NewReader(in), &b, 0); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
	// Props count toward the maxEdges allocation bound too.
	_, _, props := randomTyped(400, 2)
	buf := EncodeTypedBatch(nil, nil, props)
	var b TypedBatch
	if err := DecodeBatchTyped(bytes.NewReader(buf), &b, 50); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
}

// FuzzTypedBatchDecode throws arbitrary bytes at the typed decoder with
// the same contract as FuzzBinaryBatchDecode: fail typed, never panic,
// never over-read — and anything that decodes must survive an
// encode/decode round trip, label-for-label and prop-for-prop.
func FuzzTypedBatchDecode(f *testing.F) {
	e1, l1, p1 := randomTyped(50, 4)
	f.Add(EncodeTypedBatch(e1, l1, p1))
	f.Add(EncodeTypedBatch(nil, nil, p1[:3]))
	f.Add(EncodeBatch(randomEdges(20, 5), true))
	f.Add([]byte(BatchMagic))
	f.Add(append([]byte(BatchMagic), opTypedAdd, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0))
	f.Fuzz(func(t *testing.T, in []byte) {
		var b TypedBatch
		if err := DecodeBatchTyped(bytes.NewReader(in), &b, 1<<16); err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrBatchTooLarge) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if b.Labels != nil && len(b.Labels) != len(b.Edges) {
			t.Fatalf("labels misaligned: %d labels for %d edges", len(b.Labels), len(b.Edges))
		}
		again := TypedBatch{}
		buf := EncodeTypedBatch(b.Edges, b.Labels, b.Props)
		if err := DecodeBatchTyped(bytes.NewReader(buf), &again, 0); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again.Edges) != len(b.Edges) || len(again.Props) != len(b.Props) {
			t.Fatalf("round trip %d/%d, want %d/%d",
				len(again.Edges), len(again.Props), len(b.Edges), len(b.Props))
		}
		for i := range b.Edges {
			if again.Edges[i] != b.Edges[i] {
				t.Fatalf("round trip edge %d: %v != %v", i, again.Edges[i], b.Edges[i])
			}
			var want uint16
			if b.Labels != nil && !b.Edges[i].IsDelete() {
				want = b.Labels[i]
			}
			var got uint16
			if again.Labels != nil {
				got = again.Labels[i]
			}
			if got != want {
				t.Fatalf("round trip label %d: %d != %d", i, got, want)
			}
		}
		for i := range b.Props {
			if again.Props[i] != b.Props[i] {
				t.Fatalf("round trip prop %d: %v != %v", i, again.Props[i], b.Props[i])
			}
		}
	})
}
