// Adaptive admission control: an AIMD controller with hysteresis that
// tunes the pipeline's batching and admission knobs from what the writer
// actually observes — applied-batch latency and queue depth — instead of
// trusting the static Config values under every load shape.
//
// The control loop (DESIGN.md §12.3):
//
//   - congestion signal: an applied batch ran longer than the target
//     latency, or the queue sits above the high-water mark. Hold
//     consecutive signals halve BatchEdges, Linger, and the 429
//     admission threshold (multiplicative decrease) — shorter write
//     windows mean readers wait less behind the exclusive lock, and a
//     lower admission threshold sheds load before the queue drowns.
//   - clear signal: a batch finished well under target with the queue
//     near empty. Hold consecutive signals step every knob an additive
//     increment back toward its static configured value.
//   - anything in between is the hysteresis band: both counters reset,
//     nothing moves. The Hold requirement plus the band keep the
//     controller from flapping on a single outlier batch.
//
// The static Config values are the ceiling: under light load the
// controller converges back to them and behaves exactly like a static
// pipeline. It only ever tunes *down* from there, so enabling it cannot
// make an uncongested deployment slower.
package ingest

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tuning is the dynamic knob set the controller manages. The pipeline
// reads it before every gather and admission check.
type Tuning struct {
	// BatchEdges caps one write window (one Applier.Apply call).
	BatchEdges int
	// Linger is how long a partial batch waits for company.
	Linger time.Duration
	// AdmitEdges is the 429 admission threshold: a write is shed once
	// queued+new exceeds it. At most the queue capacity.
	AdmitEdges int
}

// AdaptiveConfig tunes the controller. Zero fields take the defaults.
type AdaptiveConfig struct {
	// Target is the applied-batch latency the controller steers toward;
	// batches slower than it signal congestion (default 2ms). The
	// pipeline observes host latency; the soak harness feeds simulated
	// latency — the rules are clock-agnostic.
	Target time.Duration
	// LowWater and HighWater bound the hysteresis band as fractions of
	// the queue capacity: depth above HighWater*cap signals congestion,
	// and a clear signal additionally needs depth below LowWater*cap
	// (defaults 0.25 and 0.75).
	LowWater, HighWater float64
	// MinBatchEdges floors the multiplicative decrease (default 256).
	MinBatchEdges int
	// MinAdmitFrac floors the admission threshold as a fraction of the
	// queue capacity (default 1/8).
	MinAdmitFrac float64
	// Hold is how many consecutive same-direction signals are required
	// before the controller acts (default 3).
	Hold int
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Target <= 0 {
		c.Target = 2 * time.Millisecond
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.25
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.75
	}
	if c.MinBatchEdges <= 0 {
		c.MinBatchEdges = 256
	}
	if c.MinAdmitFrac <= 0 {
		c.MinAdmitFrac = 0.125
	}
	if c.Hold <= 0 {
		c.Hold = 3
	}
	return c
}

// Controller is the AIMD admission controller. Observe runs on the
// single writer goroutine (or the soak harness's event loop); the knob
// reads are lock-free atomics so admission checks on request goroutines
// never contend with it.
type Controller struct {
	cfg      AdaptiveConfig
	queueCap int
	base     Tuning // the static configured ceiling

	batchEdges atomic.Int64
	lingerNs   atomic.Int64
	admitEdges atomic.Int64

	mu               sync.Mutex
	congestN, clearN int
	decreases        atomic.Int64
	increases        atomic.Int64
}

// NewController builds a controller starting at the static ceiling
// (base), which it never exceeds. queueCap bounds AdmitEdges.
func NewController(queueCap int, base Tuning, cfg AdaptiveConfig) *Controller {
	cfg = cfg.withDefaults()
	if base.AdmitEdges <= 0 || base.AdmitEdges > queueCap {
		base.AdmitEdges = queueCap
	}
	if base.BatchEdges < cfg.MinBatchEdges {
		cfg.MinBatchEdges = base.BatchEdges
	}
	c := &Controller{cfg: cfg, queueCap: queueCap, base: base}
	c.batchEdges.Store(int64(base.BatchEdges))
	c.lingerNs.Store(int64(base.Linger))
	c.admitEdges.Store(int64(base.AdmitEdges))
	return c
}

// Tuning reads the current knob set.
func (c *Controller) Tuning() Tuning {
	return Tuning{
		BatchEdges: int(c.batchEdges.Load()),
		Linger:     time.Duration(c.lingerNs.Load()),
		AdmitEdges: int(c.admitEdges.Load()),
	}
}

// BatchEdges reads the current write-window cap.
func (c *Controller) BatchEdges() int { return int(c.batchEdges.Load()) }

// Linger reads the current batching linger.
func (c *Controller) Linger() time.Duration { return time.Duration(c.lingerNs.Load()) }

// AdmitEdges reads the current 429 admission threshold.
func (c *Controller) AdmitEdges() int { return int(c.admitEdges.Load()) }

// Steps reports how many multiplicative decreases and additive
// increases the controller has taken.
func (c *Controller) Steps() (decreases, increases int64) {
	return c.decreases.Load(), c.increases.Load()
}

// Observe feeds one applied batch: the queue depth after it drained,
// its size in edges, and its latency (host or simulated — whichever
// clock Target was written for). Returns true when the tuning moved.
func (c *Controller) Observe(queued int64, batchEdges int, latency time.Duration) bool {
	congested := latency > c.cfg.Target ||
		float64(queued) > c.cfg.HighWater*float64(c.queueCap)
	clear := latency < c.cfg.Target/2 &&
		float64(queued) < c.cfg.LowWater*float64(c.queueCap)
	_ = batchEdges // size rides along for telemetry; the rules key on latency+depth

	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case congested:
		c.congestN++
		c.clearN = 0
		if c.congestN >= c.cfg.Hold {
			c.congestN = 0
			return c.decrease()
		}
	case clear:
		c.clearN++
		c.congestN = 0
		if c.clearN >= c.cfg.Hold {
			c.clearN = 0
			return c.increase()
		}
	default:
		// Hysteresis band: hold position.
		c.congestN, c.clearN = 0, 0
	}
	return false
}

// decrease halves every knob toward its floor. Called under mu.
func (c *Controller) decrease() bool {
	moved := false
	if b := int(c.batchEdges.Load()); b > c.cfg.MinBatchEdges {
		nb := b / 2
		if nb < c.cfg.MinBatchEdges {
			nb = c.cfg.MinBatchEdges
		}
		c.batchEdges.Store(int64(nb))
		moved = true
	}
	minLinger := c.base.Linger / 8
	if l := time.Duration(c.lingerNs.Load()); l > minLinger {
		nl := l / 2
		if nl < minLinger {
			nl = minLinger
		}
		c.lingerNs.Store(int64(nl))
		moved = true
	}
	minAdmit := int(c.cfg.MinAdmitFrac * float64(c.queueCap))
	if minAdmit < 1 {
		minAdmit = 1
	}
	if a := int(c.admitEdges.Load()); a > minAdmit {
		na := a / 2
		if na < minAdmit {
			na = minAdmit
		}
		c.admitEdges.Store(int64(na))
		moved = true
	}
	if moved {
		c.decreases.Add(1)
	}
	return moved
}

// increase steps every knob an additive increment back toward the
// static ceiling. Called under mu.
func (c *Controller) increase() bool {
	moved := false
	if b := int(c.batchEdges.Load()); b < c.base.BatchEdges {
		step := c.base.BatchEdges / 8
		if step < 1 {
			step = 1
		}
		nb := b + step
		if nb > c.base.BatchEdges {
			nb = c.base.BatchEdges
		}
		c.batchEdges.Store(int64(nb))
		moved = true
	}
	if l := time.Duration(c.lingerNs.Load()); l < c.base.Linger {
		step := c.base.Linger / 8
		if step < 1 {
			step = 1
		}
		nl := l + step
		if nl > c.base.Linger {
			nl = c.base.Linger
		}
		c.lingerNs.Store(int64(nl))
		moved = true
	}
	if a := int(c.admitEdges.Load()); a < c.base.AdmitEdges {
		step := c.queueCap / 8
		if step < 1 {
			step = 1
		}
		na := a + step
		if na > c.base.AdmitEdges {
			na = c.base.AdmitEdges
		}
		c.admitEdges.Store(int64(na))
		moved = true
	}
	if moved {
		c.increases.Add(1)
	}
	return moved
}
