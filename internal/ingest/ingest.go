// Package ingest is the transport-independent batched write pipeline:
// bounded admission, linger-based batching, single-writer application,
// and graceful drain — extracted from the HTTP server so any transport
// (JSON handlers, the binary batch endpoint, CLI loaders, tests) feeds
// the same machinery.
//
// The pipeline owns the write queue and the ingest counters. What it
// does NOT own is the store: application, snapshot publication, and
// failure policy (circuit breaking) stay behind the Applier interface,
// so the pipeline never takes the caller's state lock itself and the
// lock ordering remains the caller's business.
//
// Lifecycle: New builds the pipeline stopped; the caller publishes its
// initial snapshot (epoch 1) and then calls Start. Close stops abruptly
// (queued writes fail with ErrShuttingDown); Shutdown drains — every
// accepted write is applied and Flush is called once the queue is empty.
package ingest

import (
	"errors"
	"sync"
	"time"

	"repro/internal/graph"
)

// Config sizes the pipeline. Zero fields take the defaults.
type Config struct {
	QueueCap   int           // max queued edges admitted (default 1<<16)
	BatchEdges int           // max edges applied per write window (default 4096)
	Linger     time.Duration // how long a batch waits for company (default 2ms)
	FlushEvery time.Duration // background vertex-buffer flush period; 0 = off
	ScrubEvery time.Duration // background scrub period; 0 = off
	BatchDelay time.Duration // test-only pause between chunks; 0 = none
	// Adaptive enables the AIMD admission controller (adaptive.go): the
	// static BatchEdges/Linger/QueueCap values become the ceiling and the
	// controller tunes the live knobs down under congestion. Nil keeps
	// the classic fully-static pipeline.
	Adaptive *AdaptiveConfig
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 16
	}
	if c.BatchEdges <= 0 {
		c.BatchEdges = 4096
	}
	if c.Linger <= 0 {
		c.Linger = 2 * time.Millisecond
	}
	return c
}

// Applier is the store-side surface the pipeline drives. Apply ingests
// one chunk and, on success, publishes a fresh snapshot, returning the
// simulated batch cost and the published epoch. It runs on the single
// writer goroutine; implementations do their own locking. Flush and
// Scrub are the periodic background steps; failures are surfaced through
// their own endpoints, so they return nothing.
type Applier interface {
	Apply(chunk []graph.Edge) (simNs int64, epoch uint64, err error)
	Flush()
	Scrub()
}

// Result is what a write waits for.
type Result struct {
	Accepted int64
	SimNs    int64
	Batches  int64
	Epoch    uint64
	Err      error
}

// Request is one enqueued write. Its done channel is buffered (capacity
// 1) and receives exactly one Result when the request's last edge is
// applied or the request is dropped.
type Request struct {
	edges []graph.Edge
	done  chan Result
}

// NewRequest wraps edges for enqueueing. The pipeline owns the slice
// until the Result is delivered.
func NewRequest(edges []graph.Edge) *Request {
	return &Request{edges: edges, done: make(chan Result, 1)}
}

// Done is the request's completion channel.
func (r *Request) Done() <-chan Result { return r.done }

var (
	ErrShuttingDown = errors.New("ingest: pipeline is shutting down")
	ErrQueueFull    = errors.New("ingest: queue is full")
)

// Stats is one consistent copy of the pipeline counters: a scrape can
// never observe applied > accepted, or a queue depth that disagrees with
// accepted - applied - dropped.
type Stats struct {
	Queued          int64
	Epoch           uint64
	EdgesAccepted   int64
	EdgesApplied    int64
	EdgesDropped    int64
	BatchesApplied  int64
	Rejected        int64
	LastBatchHostNs int64
	LastBatchSimNs  int64
	LastBatchEdges  int64
	PublishedAtNs   int64
	// Live tuning: the static Config values, or the adaptive
	// controller's current knobs when one is attached.
	CurBatchEdges int64
	CurLingerNs   int64
	AdmitEdges    int64
	TuneDecreases int64
	TuneIncreases int64
}

// Pipeline is the single-writer batched ingest engine.
type Pipeline struct {
	cfg   Config
	ap    Applier
	ctl   *Controller // nil: static knobs
	queue chan *Request

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	mu sync.Mutex
	st Stats
	// draining: graceful shutdown — reject new writes, apply queued ones.
	draining bool
}

// New builds a stopped pipeline. Call Start after the initial snapshot
// publication so readers never observe epoch 0.
func New(cfg Config, ap Applier) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:   cfg,
		ap:    ap,
		queue: make(chan *Request, cfg.QueueCap),
		stop:  make(chan struct{}),
	}
	if cfg.Adaptive != nil {
		p.ctl = NewController(cfg.QueueCap, Tuning{
			BatchEdges: cfg.BatchEdges,
			Linger:     cfg.Linger,
			AdmitEdges: cfg.QueueCap,
		}, *cfg.Adaptive)
	}
	return p
}

// Controller returns the adaptive admission controller, nil when the
// pipeline runs static knobs.
func (p *Pipeline) Controller() *Controller { return p.ctl }

// batchEdges reads the live write-window cap.
func (p *Pipeline) batchEdges() int {
	if p.ctl != nil {
		return p.ctl.BatchEdges()
	}
	return p.cfg.BatchEdges
}

// linger reads the live batching linger.
func (p *Pipeline) linger() time.Duration {
	if p.ctl != nil {
		return p.ctl.Linger()
	}
	return p.cfg.Linger
}

// admitEdges reads the live 429 admission threshold.
func (p *Pipeline) admitEdges() int64 {
	if p.ctl != nil {
		return int64(p.ctl.AdmitEdges())
	}
	return int64(p.cfg.QueueCap)
}

// Start launches the writer goroutine.
func (p *Pipeline) Start() {
	p.wg.Add(1)
	go p.loop()
}

// Stats snapshots every counter under one lock acquisition, plus the
// live tuning knobs (atomics; consistent enough for telemetry).
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	st := p.st
	p.mu.Unlock()
	st.CurBatchEdges = int64(p.batchEdges())
	st.CurLingerNs = int64(p.linger())
	st.AdmitEdges = p.admitEdges()
	if p.ctl != nil {
		st.TuneDecreases, st.TuneIncreases = p.ctl.Steps()
	}
	return st
}

// Epoch reads the current snapshot epoch.
func (p *Pipeline) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.Epoch
}

// Publish bumps the epoch and stamps the publication time — called by
// the Applier whenever it publishes a snapshot.
func (p *Pipeline) Publish() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.st.Epoch++
	p.st.PublishedAtNs = time.Now().UnixNano()
	return p.st.Epoch
}

// SetDraining flips the pipeline into graceful-shutdown mode: new writes
// are rejected while queued ones still apply.
func (p *Pipeline) SetDraining() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// Draining reports graceful-shutdown mode.
func (p *Pipeline) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Stopping is closed when the pipeline begins stopping; synchronous
// waiters select on it alongside their Result channel.
func (p *Pipeline) Stopping() <-chan struct{} { return p.stop }

// Close stops the pipeline abruptly: queued writes fail with
// ErrShuttingDown. Returns once the writer goroutine has exited;
// idempotent.
func (p *Pipeline) Close() {
	p.stopped.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Shutdown drains gracefully: new writes are fenced off, every accepted
// write is applied, then the Applier's Flush runs one last time.
func (p *Pipeline) Shutdown() {
	p.SetDraining()
	p.Close()
}

// Enqueue reserves queue space for the request's edges and hands them to
// the writer. Reservation and acceptance counting share one critical
// section, so accepted >= applied + dropped + queued can never be
// violated by an interleaved scrape. Returns ErrQueueFull when the
// bounded queue is full — or, with the adaptive controller attached,
// when the queue sits above its current admission threshold (always at
// most QueueCap, so the channel reservation stays safe) — and
// ErrShuttingDown once draining started.
func (p *Pipeline) Enqueue(req *Request) error {
	n := int64(len(req.edges))
	admit := p.admitEdges()
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return ErrShuttingDown
	}
	if p.st.Queued+n > admit {
		p.st.Rejected++
		p.mu.Unlock()
		return ErrQueueFull
	}
	p.st.Queued += n
	p.st.EdgesAccepted += n
	p.mu.Unlock()
	// Cannot block: every request holds at least one edge's worth of
	// reserved capacity and the channel is QueueCap deep.
	p.queue <- req
	return nil
}

// loop is the single writer: it gathers queued requests into batches,
// applies them through the Applier, and relies on the Applier to
// republish after every batch so reads converge on fresh data.
func (p *Pipeline) loop() {
	defer p.wg.Done()
	var flushC <-chan time.Time
	if p.cfg.FlushEvery > 0 {
		t := time.NewTicker(p.cfg.FlushEvery)
		defer t.Stop()
		flushC = t.C
	}
	var scrubC <-chan time.Time
	if p.cfg.ScrubEvery > 0 {
		t := time.NewTicker(p.cfg.ScrubEvery)
		defer t.Stop()
		scrubC = t.C
	}
	for {
		select {
		case <-p.stop:
			if p.Draining() {
				p.drainApplyOnStop()
			} else {
				p.drainOnStop()
			}
			return
		case req := <-p.queue:
			p.gatherAndApply(req)
		case <-flushC:
			// A tick racing shutdown is dropped: the graceful drain runs
			// its own final Flush, and the abrupt path wants out now.
			if p.stopRequested() {
				continue
			}
			p.ap.Flush()
		case <-scrubC:
			// Same guard for background scrubs: a scrub is minutes of
			// exclusive-lock work on a big store, and a tick that lands
			// while stop/draining is already decided must not race the
			// drain — it is cancelled, and an in-flight one (started
			// before the drain) finishes on this goroutine before the
			// stop case can be selected, so drain always waits for it.
			if p.stopRequested() {
				continue
			}
			p.ap.Scrub()
		}
	}
}

// stopRequested reports whether stop has been closed or a graceful
// drain has begun — without blocking.
func (p *Pipeline) stopRequested() bool {
	select {
	case <-p.stop:
		return true
	default:
	}
	return p.Draining()
}

// gatherAndApply batches more requests behind the first one — up to
// the live BatchEdges cap or until the live Linger expires — then
// applies them.
func (p *Pipeline) gatherAndApply(first *Request) {
	reqs := []*Request{first}
	total := len(first.edges)
	linger := time.NewTimer(p.linger())
	defer linger.Stop()
gather:
	for total < p.batchEdges() {
		select {
		case r := <-p.queue:
			reqs = append(reqs, r)
			total += len(r.edges)
		case <-linger.C:
			break gather
		case <-p.stop:
			break gather
		}
	}
	p.applyAll(reqs)
}

// applyAll applies the gathered requests in arrival order, chunked into
// BatchEdges-sized batches. Each chunk is one Applier.Apply call (one
// write window ending in a snapshot publication), so a large ingest
// becomes a sequence of short write windows with reads interleaving
// between them.
func (p *Pipeline) applyAll(reqs []*Request) {
	var all []graph.Edge
	for _, r := range reqs {
		all = append(all, r.edges...)
	}
	results := make([]Result, len(reqs))
	remaining := make([]int, len(reqs))
	for i, r := range reqs {
		remaining[i] = len(r.edges)
	}
	ri := 0 // first request not yet fully applied

	fail := func(err error, lost int64) {
		p.mu.Lock()
		p.st.Queued -= lost
		p.st.EdgesDropped += lost
		p.mu.Unlock()
		for ; ri < len(reqs); ri++ {
			res := results[ri]
			res.Err = err
			reqs[ri].done <- res
		}
	}

	for off := 0; off < len(all); {
		// Re-read the live cap per chunk so adaptive tuning takes effect
		// mid-request: a long ingest shrinks its own write windows once
		// the controller reacts to the first slow chunks.
		end := off + p.batchEdges()
		if end > len(all) {
			end = len(all)
		}
		chunk := all[off:end]
		off = end

		hostStart := time.Now()
		simNs, epoch, err := p.ap.Apply(chunk)
		if err != nil {
			// The failed chunk and everything behind it is dropped:
			// dequeued without application.
			fail(err, int64(len(all)-(off-len(chunk))))
			return
		}

		hostNs := time.Since(hostStart).Nanoseconds()
		p.mu.Lock()
		p.st.Queued -= int64(len(chunk))
		p.st.EdgesApplied += int64(len(chunk))
		p.st.BatchesApplied++
		p.st.LastBatchHostNs = hostNs
		p.st.LastBatchSimNs = simNs
		p.st.LastBatchEdges = int64(len(chunk))
		queued := p.st.Queued
		p.mu.Unlock()
		if p.ctl != nil {
			p.ctl.Observe(queued, len(chunk), time.Duration(hostNs))
		}

		// Credit the chunk to the requests it covered; a request is done
		// when its last edge has been applied and published.
		for n := len(chunk); n > 0 && ri < len(reqs); {
			take := remaining[ri]
			if take > n {
				take = n
			}
			remaining[ri] -= take
			n -= take
			results[ri].SimNs += simNs
			results[ri].Batches++
			results[ri].Epoch = epoch
			if remaining[ri] == 0 {
				results[ri].Accepted = int64(len(reqs[ri].edges))
				reqs[ri].done <- results[ri]
				ri++
			}
		}

		if p.cfg.BatchDelay > 0 && end < len(all) {
			time.Sleep(p.cfg.BatchDelay)
		}
	}
}

// drainOnStop releases every queued writer with a shutdown error — the
// abrupt Close path.
func (p *Pipeline) drainOnStop() {
	for {
		select {
		case req := <-p.queue:
			p.mu.Lock()
			p.st.Queued -= int64(len(req.edges))
			p.st.EdgesDropped += int64(len(req.edges))
			p.mu.Unlock()
			req.done <- Result{Err: ErrShuttingDown}
		default:
			return
		}
	}
}

// drainApplyOnStop is the graceful Shutdown path: every accepted write
// — including one whose enqueuing goroutine is still between capacity
// reservation and channel send — is applied normally, then a final
// Flush makes everything durable. New writes were already fenced off by
// the draining flag before stop closed, so the queued-edge count can
// only fall.
func (p *Pipeline) drainApplyOnStop() {
	for {
		select {
		case req := <-p.queue:
			p.applyAll([]*Request{req})
		default:
			if p.Stats().Queued == 0 {
				p.ap.Flush()
				return
			}
			// An accepted request is mid-enqueue; its channel send is
			// imminent.
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// edgeBufPool recycles decode scratch for the hot ingest handlers. Only
// return a buffer once its Result has been delivered (the pipeline owns
// request slices until then); async enqueues must let theirs go to the GC.
var edgeBufPool = sync.Pool{
	New: func() any { b := make([]graph.Edge, 0, 4096); return &b },
}

// GetEdgeBuf fetches an empty edge scratch buffer from the pool.
func GetEdgeBuf() []graph.Edge { return (*edgeBufPool.Get().(*[]graph.Edge))[:0] }

// PutEdgeBuf recycles an edge scratch buffer. Oversized buffers are
// dropped so one pathological request cannot pin memory forever.
func PutEdgeBuf(buf []graph.Edge) {
	if cap(buf) > 1<<17 {
		return
	}
	buf = buf[:0]
	edgeBufPool.Put(&buf)
}
