package ingest

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// hookApplier lets a test block inside Apply or Scrub to pin down how
// the writer goroutine interleaves background work with shutdown.
type hookApplier struct {
	fakeApplier
	onApply func()
	onScrub func()
}

func (a *hookApplier) Apply(chunk []graph.Edge) (int64, uint64, error) {
	if a.onApply != nil {
		a.onApply()
	}
	return a.fakeApplier.Apply(chunk)
}

func (a *hookApplier) Scrub() {
	if a.onScrub != nil {
		a.onScrub()
	}
	a.fakeApplier.Scrub()
}

// TestShutdownWaitsForInFlightScrub is the satellite-4 regression test
// at the pipeline layer: a graceful Shutdown that lands while a
// background scrub is mid-flight must wait for the scrub to finish (it
// runs on the writer goroutine, holding the store's exclusive work),
// and the final drain Flush must run after it — never concurrently.
func TestShutdownWaitsForInFlightScrub(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	ap := &hookApplier{onScrub: func() {
		started <- struct{}{}
		<-release
	}}
	p := New(Config{ScrubEvery: time.Millisecond}, ap)
	p.Start()

	// Wait for a background scrub to begin, then ask for a graceful
	// shutdown while it is still blocked.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("background scrub never started")
	}
	done := make(chan struct{})
	go func() {
		p.Shutdown()
		close(done)
	}()

	// Shutdown must not return while the scrub is in flight.
	select {
	case <-done:
		t.Fatal("Shutdown returned while a scrub was still running")
	case <-time.After(20 * time.Millisecond):
	}
	if _, _, flushes := ap.snapshot(); flushes != 0 {
		t.Fatalf("drain Flush ran while the scrub was still in flight (%d flushes)", flushes)
	}

	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the scrub finished")
	}

	ap.mu.Lock()
	scrubs, flushes := ap.scrubs, ap.flushes
	ap.mu.Unlock()
	if scrubs == 0 {
		t.Fatal("scrub count lost")
	}
	if flushes != 1 {
		t.Fatalf("graceful drain ran %d final flushes, want exactly 1", flushes)
	}
	// The pipeline is fully stopped: no late ticks can fire more scrubs.
	time.Sleep(5 * time.Millisecond)
	ap.mu.Lock()
	after := ap.scrubs
	ap.mu.Unlock()
	if after != scrubs {
		t.Fatalf("scrubs kept running after Shutdown returned: %d -> %d", scrubs, after)
	}
}

// TestDrainCancelsPendingScrubTick pins the other half of the fix: a
// scrub tick that becomes runnable only after draining has begun is
// cancelled, not started — the drain must not queue minutes of
// exclusive-lock scrub work behind an already-decided shutdown.
func TestDrainCancelsPendingScrubTick(t *testing.T) {
	applyStarted := make(chan struct{})
	applyRelease := make(chan struct{})
	ap := &hookApplier{onApply: func() {
		applyStarted <- struct{}{}
		<-applyRelease
	}}
	p := New(Config{ScrubEvery: 200 * time.Microsecond}, ap)
	p.Start()

	// Occupy the writer goroutine in a long Apply so scrub ticks pile up
	// behind it, then start draining before the writer gets back to the
	// select loop.
	req := NewRequest(edges(8))
	if err := p.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	select {
	case <-applyStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("apply never started")
	}
	time.Sleep(2 * time.Millisecond) // several scrub ticks are now pending
	p.SetDraining()
	close(applyRelease)
	if res := <-req.Done(); res.Err != nil {
		t.Fatalf("drained write failed: %v", res.Err)
	}
	// Give the writer a chance to (incorrectly) pick up the pending tick
	// before the stop channel closes.
	time.Sleep(2 * time.Millisecond)
	p.Shutdown()

	ap.mu.Lock()
	scrubs, flushes := ap.scrubs, ap.flushes
	ap.mu.Unlock()
	if scrubs != 0 {
		t.Fatalf("%d scrubs started after draining began; want 0", scrubs)
	}
	if flushes != 1 {
		t.Fatalf("graceful drain ran %d final flushes, want exactly 1", flushes)
	}
}
