package chaos

import (
	"testing"
	"time"
)

// TestFateDeterministic pins the seeded-replay property the chaostest
// workflow depends on: the same seed yields the identical injected
// fault sequence, fate by fate, independent of evaluation order.
func TestFateDeterministic(t *testing.T) {
	mk := func() *Plan {
		return &Plan{
			Seed:      0xC0FFEE,
			DropProb:  0.1,
			DupProb:   0.05,
			DelayProb: 0.2,
			DelayMax:  time.Millisecond,
			Partitions: RandomPartitions(0xC0FFEE,
				[]Link{{0, 0}, {1, 0}, {2, 1}}, 2, 16, 256),
		}
	}
	a, b := mk(), mk()
	links := []Link{{0, 0}, {1, 0}, {2, 1}}

	type fate struct {
		v Verdict
		d time.Duration
	}
	record := func(p *Plan, reverse bool) []fate {
		var out []fate
		for i := 0; i < len(links)*300*2; i++ {
			// Walk (link, seq, attempt) space in two different orders.
			idx := i
			if reverse {
				idx = len(links)*300*2 - 1 - i
			}
			link := links[idx%len(links)]
			seq := uint64(idx/len(links))%300 + 1
			attempt := idx%2 + 1
			v, d := p.Fate(link, seq, attempt)
			out = append(out, fate{v, d})
		}
		return out
	}
	fa := record(a, false)
	fb := record(b, true)
	// b was recorded in reverse order; flip it back before comparing.
	for i, j := 0, len(fb)-1; i < j; i, j = i+1, j-1 {
		fb[i], fb[j] = fb[j], fb[i]
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fate %d differs across evaluation orders: %v vs %v", i, fa[i], fb[i])
		}
	}

	// Some chaos must actually have been injected at these rates.
	st := a.Snapshot()
	if st.Drops == 0 || st.Dups == 0 || st.Delays == 0 || st.Partitions == 0 {
		t.Fatalf("expected every fault kind at these probabilities, got %+v", st)
	}
}

// TestFateSeedsDiffer sanity-checks that different seeds give different
// schedules (the randomized sweep would be pointless otherwise).
func TestFateSeedsDiffer(t *testing.T) {
	a := &Plan{Seed: 1, DropProb: 0.3}
	b := &Plan{Seed: 2, DropProb: 0.3}
	same := true
	for seq := uint64(1); seq <= 256; seq++ {
		va, _ := a.Fate(Link{0, 0}, seq, 1)
		vb, _ := b.Fate(Link{0, 0}, seq, 1)
		if va != vb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 256-fate prefixes")
	}
}

// TestPartitionWindowRefusesAllAttempts pins the partition semantics:
// inside the window every attempt fails (retries cannot punch through),
// outside it the same link delivers.
func TestPartitionWindowRefusesAllAttempts(t *testing.T) {
	p := &Plan{Seed: 9, Partitions: []Window{{Link: Link{0, 0}, From: 10, To: 20}}}
	for seq := uint64(10); seq < 20; seq++ {
		for attempt := 1; attempt <= 5; attempt++ {
			if v, _ := p.Fate(Link{0, 0}, seq, attempt); v != Partition {
				t.Fatalf("seq %d attempt %d inside window: got %v, want Partition", seq, attempt, v)
			}
		}
	}
	if v, _ := p.Fate(Link{0, 0}, 20, 1); v != Deliver {
		t.Fatalf("seq 20 is outside the window: got %v, want Deliver", v)
	}
	if v, _ := p.Fate(Link{0, 1}, 15, 1); v != Deliver {
		t.Fatalf("other link inside window seqs: got %v, want Deliver", v)
	}
}

// TestHeal pins that a healed plan injects nothing more.
func TestHeal(t *testing.T) {
	p := &Plan{Seed: 3, DropProb: 1}
	if v, _ := p.Fate(Link{0, 0}, 1, 1); v != Drop {
		t.Fatalf("pre-heal: got %v, want Drop", v)
	}
	p.Heal()
	for seq := uint64(1); seq < 64; seq++ {
		if v, _ := p.Fate(Link{0, 0}, seq, 1); v != Deliver {
			t.Fatalf("post-heal seq %d: got %v, want Deliver", seq, v)
		}
	}
	if !p.Healed() {
		t.Fatal("Healed() = false after Heal")
	}
}

// TestParse pins the schedule grammar.
func TestParse(t *testing.T) {
	p, ps, err := Parse("seed=7,drop=0.05,dup=0.02,delay=0.1:2ms,part=2x40@400")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.DropProb != 0.05 || p.DupProb != 0.02 || p.DelayProb != 0.1 {
		t.Fatalf("parsed plan = %+v", p)
	}
	if p.DelayMax != 2*time.Millisecond {
		t.Fatalf("DelayMax = %v, want 2ms", p.DelayMax)
	}
	if ps == nil || ps.Count != 2 || ps.Length != 40 || ps.Horizon != 400 {
		t.Fatalf("partition spec = %+v", ps)
	}
	links := []Link{{0, 0}, {1, 0}}
	ps.Finish(p, links)
	if len(p.Partitions) != 4 {
		t.Fatalf("materialized %d windows, want 4", len(p.Partitions))
	}
	for _, w := range p.Partitions {
		if w.To-w.From != 40 || w.From < 1 || w.To > 401 {
			t.Fatalf("bad window %+v", w)
		}
	}

	if _, _, err := Parse("drop=1.5"); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, _, err := Parse("bogus=1"); err == nil {
		t.Fatal("unknown term accepted")
	}
	if _, _, err := Parse("part=2y40"); err == nil {
		t.Fatal("malformed partition spec accepted")
	}
	if p, ps, err := Parse(""); err != nil || ps != nil || p.DropProb != 0 {
		t.Fatal("empty spec should parse to a no-op plan")
	}
}

// TestZeroPlanDelivers pins that a nil/zero plan is a perfect network.
func TestZeroPlanDelivers(t *testing.T) {
	var p *Plan
	if v, _ := p.Fate(Link{0, 0}, 1, 1); v != Deliver {
		t.Fatal("nil plan must deliver")
	}
	z := &Plan{}
	for seq := uint64(1); seq < 128; seq++ {
		if v, _ := z.Fate(Link{0, 0}, seq, 1); v != Deliver {
			t.Fatal("zero plan must deliver")
		}
	}
}
