// Package chaos is the seeded fault model for the cluster's transport
// boundary (DESIGN.md §14). It decides the fate of every message
// delivery attempt on every link — deliver, drop, duplicate, delay, or
// partition-refuse — from a pure function of (seed, link, seq, attempt),
// the same way xpsim's FaultPlan derives tear geometry from
// (seed, event): no global state, no wall clock, so the injected fault
// sequence for a given seed is identical run to run regardless of
// goroutine interleaving. That is what makes a failing chaostest seed
// replayable.
//
// A Plan combines per-attempt probabilities (drop, duplicate, delay)
// with per-link partition windows expressed in sequence space: while a
// link's seq falls inside a window, every attempt is refused —
// modelling a network partition that heals only when the stream has
// moved past the window. Probabilistic faults are attempt-keyed, so a
// sender's retry of a dropped chunk can succeed; partition windows are
// attempt-independent, so retries during a partition always fail and
// the sender must give up and let the receiver resync.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Link identifies one directed transport link: a shard leader shipping
// to one of its followers. (Replica < 0 is reserved for router→shard
// links, which share the fate model.)
type Link struct {
	Shard   int
	Replica int
}

func (l Link) String() string { return fmt.Sprintf("s%d→r%d", l.Shard, l.Replica) }

// Verdict is the fate of one delivery attempt.
type Verdict int

const (
	// Deliver: the attempt goes through unharmed.
	Deliver Verdict = iota
	// Drop: the message vanishes; the sender sees a transport error.
	Drop
	// Duplicate: the message is delivered twice (the second copy after
	// a delay), and the sender sees success.
	Duplicate
	// Delay: the message is held for Plan delay duration before
	// delivery. A delay longer than the sender's call timeout surfaces
	// to the sender as an error even though the message later arrives —
	// exactly the ambiguity that forces receiver-side dedupe.
	Delay
	// Partition: the link is partitioned at this seq; every attempt is
	// refused until the stream passes the window.
	Partition
)

func (v Verdict) String() string {
	switch v {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Duplicate:
		return "dup"
	case Delay:
		return "delay"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Window is one partition window on a link, in sequence space: attempts
// for seqs in [From, To) are refused.
type Window struct {
	Link Link
	From uint64
	To   uint64
}

// Plan is one seeded chaos schedule. The zero Plan injects nothing
// (every Fate is Deliver). Plans are safe for concurrent use; Heal
// flips the plan into a no-op atomically, which is how a harness closes
// the chaos window before asserting convergence.
type Plan struct {
	// Seed drives every fate decision.
	Seed uint64
	// DropProb, DupProb, DelayProb are per-attempt probabilities in
	// [0,1], evaluated in that order from one seeded draw.
	DropProb  float64
	DupProb   float64
	DelayProb float64
	// DelayMax bounds injected delivery delays (default 2ms). The
	// actual delay is seed-derived in [DelayMax/4, DelayMax).
	DelayMax time.Duration
	// Partitions are the scheduled partition windows.
	Partitions []Window

	healed atomic.Bool

	mu sync.Mutex
	st Stats
}

// Stats counts injected faults by verdict, for metrics and test logs.
type Stats struct {
	Attempts   int64
	Drops      int64
	Dups       int64
	Delays     int64
	Partitions int64
}

// splitmix64 is the repo's deterministic PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix folds a link, seq and attempt into one seeded draw.
func (p *Plan) mix(link Link, seq uint64, attempt int) uint64 {
	h := p.Seed
	h = splitmix64(h ^ uint64(uint32(link.Shard))<<32 ^ uint64(uint32(link.Replica)))
	h = splitmix64(h ^ seq)
	h = splitmix64(h ^ uint64(attempt))
	return h
}

// unit maps a draw onto [0,1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Fate decides one delivery attempt (attempt is 1-based) and returns
// the verdict plus the injected delay for Delay/Duplicate verdicts.
// Pure in (plan, link, seq, attempt): the same inputs always yield the
// same verdict, so a seed fully determines the fault schedule.
func (p *Plan) Fate(link Link, seq uint64, attempt int) (Verdict, time.Duration) {
	if p == nil || p.healed.Load() {
		return Deliver, 0
	}
	p.count(func(s *Stats) { s.Attempts++ })
	for _, w := range p.Partitions {
		if w.Link == link && seq >= w.From && seq < w.To {
			p.count(func(s *Stats) { s.Partitions++ })
			return Partition, 0
		}
	}
	r := p.mix(link, seq, attempt)
	u := unit(r)
	switch {
	case u < p.DropProb:
		p.count(func(s *Stats) { s.Drops++ })
		return Drop, 0
	case u < p.DropProb+p.DupProb:
		p.count(func(s *Stats) { s.Dups++ })
		return Duplicate, p.delay(r)
	case u < p.DropProb+p.DupProb+p.DelayProb:
		p.count(func(s *Stats) { s.Delays++ })
		return Delay, p.delay(r)
	}
	return Deliver, 0
}

// delay derives a bounded delay from a fate draw.
func (p *Plan) delay(r uint64) time.Duration {
	max := p.DelayMax
	if max <= 0 {
		max = 2 * time.Millisecond
	}
	lo := max / 4
	return lo + time.Duration(splitmix64(r)%uint64(max-lo))
}

// Heal closes the chaos window: every later Fate is Deliver. Used by
// harnesses to stop injection before asserting convergence.
func (p *Plan) Heal() {
	if p != nil {
		p.healed.Store(true)
	}
}

// Healed reports whether the plan has been closed.
func (p *Plan) Healed() bool { return p != nil && p.healed.Load() }

func (p *Plan) count(fn func(*Stats)) {
	p.mu.Lock()
	fn(&p.st)
	p.mu.Unlock()
}

// Snapshot reads one consistent copy of the injection counters.
func (p *Plan) Snapshot() Stats {
	if p == nil {
		return Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// RandomPartitions derives n seq-space partition windows of the given
// length for each of the links, placed deterministically from the
// plan's seed within [1, horizon]. Harnesses use it to schedule full
// partitions without hand-writing windows.
func RandomPartitions(seed uint64, links []Link, n int, length, horizon uint64) []Window {
	if horizon <= length {
		horizon = length + 1
	}
	var out []Window
	for _, l := range links {
		h := splitmix64(seed ^ uint64(uint32(l.Shard))<<32 ^ uint64(uint32(l.Replica)))
		for i := 0; i < n; i++ {
			h = splitmix64(h)
			from := 1 + h%(horizon-length)
			out = append(out, Window{Link: l, From: from, To: from + length})
		}
	}
	return out
}

// Parse builds a Plan from the compact schedule grammar (DESIGN.md
// §14.4):
//
//	spec    = term { "," term }
//	term    = "seed=" uint
//	        | "drop=" prob | "dup=" prob | "delay=" prob [":" duration]
//	        | "part=" count "x" length [ "@" horizon ]
//	prob    = float in [0,1]
//
// Example: "seed=7,drop=0.05,dup=0.02,delay=0.1:2ms,part=2x40@400"
// drops 5% of attempts, duplicates 2%, delays 10% by up to 2ms, and
// cuts 2 partition windows of 40 seqs per link inside the first 400
// seqs. The partition windows are materialized per link by Finish.
func Parse(spec string) (*Plan, *PartitionSpec, error) {
	p := &Plan{}
	var ps *PartitionSpec
	if strings.TrimSpace(spec) == "" {
		return p, nil, nil
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, nil, fmt.Errorf("chaos: bad term %q (want key=value)", term)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			p.Seed = n
		case "drop", "dup", "delay":
			probStr := val
			if key == "delay" {
				if ps, ds, ok := strings.Cut(val, ":"); ok {
					probStr = ps
					d, err := time.ParseDuration(ds)
					if err != nil {
						return nil, nil, fmt.Errorf("chaos: bad delay bound %q: %v", ds, err)
					}
					p.DelayMax = d
				}
			}
			f, err := strconv.ParseFloat(probStr, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, nil, fmt.Errorf("chaos: bad probability %q for %s", probStr, key)
			}
			switch key {
			case "drop":
				p.DropProb = f
			case "dup":
				p.DupProb = f
			case "delay":
				p.DelayProb = f
			}
		case "part":
			spec, horizon := val, uint64(4096)
			if body, hs, ok := strings.Cut(val, "@"); ok {
				spec = body
				h, err := strconv.ParseUint(hs, 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("chaos: bad partition horizon %q: %v", hs, err)
				}
				horizon = h
			}
			cs, ls, ok := strings.Cut(spec, "x")
			if !ok {
				return nil, nil, fmt.Errorf("chaos: bad partition spec %q (want COUNTxLENGTH)", val)
			}
			count, err1 := strconv.Atoi(cs)
			length, err2 := strconv.ParseUint(ls, 10, 64)
			if err1 != nil || err2 != nil || count < 0 || length == 0 {
				return nil, nil, fmt.Errorf("chaos: bad partition spec %q", val)
			}
			ps = &PartitionSpec{Count: count, Length: length, Horizon: horizon}
		default:
			return nil, nil, fmt.Errorf("chaos: unknown term %q", key)
		}
	}
	return p, ps, nil
}

// PartitionSpec is a parsed-but-unmaterialized partition schedule: the
// links are only known once the cluster shape is. Finish attaches the
// concrete windows to the plan.
type PartitionSpec struct {
	Count   int
	Length  uint64
	Horizon uint64
}

// Finish materializes the spec's windows over links onto p.
func (s *PartitionSpec) Finish(p *Plan, links []Link) {
	if s == nil || p == nil {
		return
	}
	p.Partitions = append(p.Partitions, RandomPartitions(p.Seed, links, s.Count, s.Length, s.Horizon)...)
}
