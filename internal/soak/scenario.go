// Scenario and SLO specs for the soak harness (DESIGN.md §12.1–§12.2).
//
// A Scenario is a complete, JSON-serializable description of one soak
// run: the cluster shape, the open-loop load mix (zipfian reads,
// bursty batched ingest, tenant skew), the virtual ingest-pipeline
// knobs under test, a fault schedule, and the SLO the run is judged
// against. Everything is derived from one seed, so a failing run's
// dump replays bit-identically with `xpgraph soak -scenario X -seed N`.
package soak

import (
	"fmt"
	"time"
)

// FaultOp is one scheduled fault-injection step (DESIGN.md §12.1).
type FaultOp struct {
	// At is the virtual time the fault fires.
	At time.Duration `json:"at"`
	// Kind selects the fault: "ue" injects uncorrectable media errors
	// under the Vertices hottest vertices' adjacency lines, "slow"
	// marks the same lines latency-degraded by Mult, "kill" kills
	// shard leader Shard, "scrub" runs a cluster-wide media scrub.
	Kind string `json:"kind"`
	// Shard is the target leader for "kill".
	Shard int `json:"shard,omitempty"`
	// Vertices is how many of the hottest vertices "ue"/"slow" damage.
	Vertices int `json:"vertices,omitempty"`
	// Mult is the latency multiplier for "slow".
	Mult float64 `json:"mult,omitempty"`
}

// SLO is the per-scenario service-level objective (DESIGN.md §12.2).
// A negative field is unchecked; zero is a real (strict) budget.
type SLO struct {
	// ReadP99Us bounds the p99 read latency in simulated microseconds
	// (lock wait + media cost).
	ReadP99Us float64 `json:"read_p99_us"`
	// WriteP99Ms bounds the p99 write (arrival → applied) latency in
	// simulated milliseconds.
	WriteP99Ms float64 `json:"write_p99_ms"`
	// Max429Frac bounds shed write parts / offered write parts.
	Max429Frac float64 `json:"max_429_frac"`
	// MaxErrorFrac bounds error-envelope read responses / read attempts.
	MaxErrorFrac float64 `json:"max_error_frac"`
	// MaxReplicaLag bounds the worst leader−follower epoch gap seen at
	// any scrape.
	MaxReplicaLag int64 `json:"max_replica_lag"`
	// TailReadP99Us bounds the p99 read latency over the post-overload
	// tail only (reads arriving after OverloadAt+OverloadFor): the
	// recovery-to-SLO assertion for overload scenarios. Zero is
	// normalized to unchecked by withDefaults so pre-overload scenario
	// literals keep their meaning.
	TailReadP99Us float64 `json:"tail_read_p99_us"`
}

// Scenario fully describes one soak run. The zero value is not usable;
// start from a builtin (ByName) or fill every field.
type Scenario struct {
	Name string `json:"name"`
	// Seed drives every random choice in the run; same seed, same
	// scenario ⇒ bit-identical Report.
	Seed uint64 `json:"seed"`

	// Cluster shape.
	Shards        int    `json:"shards"`
	Replicas      int    `json:"replicas"`
	Vertices      uint32 `json:"vertices"`
	PMEMPerNodeMB int64  `json:"pmem_per_node_mb"`
	MediaGuard    bool   `json:"media_guard"`

	// Horizon is the virtual run length; WarmEdges are bulk-loaded
	// before the clock starts.
	Horizon   time.Duration `json:"horizon"`
	WarmEdges int           `json:"warm_edges"`

	// Open-loop load mix. Rates are arrivals per virtual second with
	// ±50% deterministic jitter; each write arrival carries WriteBatch
	// edges. KHopFrac of reads run a 2-hop exploration instead of a
	// neighbor lookup; DeleteFrac of write arrivals are deletions.
	ReadsPerSec  int     `json:"reads_per_sec"`
	WritesPerSec int     `json:"writes_per_sec"`
	WriteBatch   int     `json:"write_batch"`
	KHopFrac     float64 `json:"khop_frac"`
	// FilteredKHopFrac of reads run a typed 2-hop exploration through
	// the property layer (types=["hot"], pushed down; DESIGN.md §13).
	// Setting it attaches property columns to every store and warm-loads
	// a typed edge set alongside the plain warm edges.
	FilteredKHopFrac float64 `json:"filtered_khop_frac"`
	DeleteFrac       float64 `json:"delete_frac"`

	// ZipfSkew skews vertex popularity inside a tenant's range (0 =
	// uniform; larger = hotter head). Tenants partitions the vertex
	// space; TenantSkew skews which tenant each request hits.
	ZipfSkew   float64 `json:"zipf_skew"`
	Tenants    int     `json:"tenants"`
	TenantSkew float64 `json:"tenant_skew"`

	// Bursts: every BurstEvery the write arrival rate multiplies by
	// BurstMult for BurstLen (0 disables).
	BurstEvery time.Duration `json:"burst_every"`
	BurstLen   time.Duration `json:"burst_len"`
	BurstMult  int           `json:"burst_mult"`

	// Sustained overload: one long over-capacity window (unlike the
	// periodic bursts) — from OverloadAt the write arrival rate
	// multiplies by OverloadMult for OverloadFor (0 disables). The SLO's
	// TailReadP99Us judges the reads after the window ends.
	OverloadAt   time.Duration `json:"overload_at,omitempty"`
	OverloadFor  time.Duration `json:"overload_for,omitempty"`
	OverloadMult int           `json:"overload_mult,omitempty"`

	// BreakerSheds arms the per-shard overload circuit breaker in the
	// virtual admission model (cluster.Breaker on the simulated clock,
	// the same policy code the live pipeline runs): that many consecutive
	// queue-full sheds open it, converting the 429 storm into typed
	// circuit_open 503s until a half-open probe after BreakerCooldown is
	// admitted. 0 leaves the breaker out of the model.
	BreakerSheds    int           `json:"breaker_sheds,omitempty"`
	BreakerCooldown time.Duration `json:"breaker_cooldown,omitempty"`

	// Virtual ingest-pipeline knobs under test (the admission model the
	// harness enforces on the virtual clock; DESIGN.md §12.3). With
	// Adaptive they are the AIMD controller's ceiling.
	QueueCap   int           `json:"queue_cap"`
	BatchEdges int           `json:"batch_edges"`
	Linger     time.Duration `json:"linger"`
	Adaptive   bool          `json:"adaptive"`
	// Target is the AIMD applied-batch latency target on the simulated
	// clock (only with Adaptive).
	Target time.Duration `json:"target"`

	// ScrapeEvery is the metrics/health scrape cadence.
	ScrapeEvery time.Duration `json:"scrape_every"`

	Faults []FaultOp `json:"faults,omitempty"`
	SLO    SLO       `json:"slo"`
}

// withDefaults fills the knobs a hand-built scenario may omit.
func (sc Scenario) withDefaults() Scenario {
	if sc.Shards <= 0 {
		sc.Shards = 1
	}
	if sc.Vertices == 0 {
		sc.Vertices = 1 << 16
	}
	if sc.PMEMPerNodeMB <= 0 {
		sc.PMEMPerNodeMB = 256
	}
	if sc.Horizon <= 0 {
		sc.Horizon = time.Second
	}
	if sc.WriteBatch <= 0 {
		sc.WriteBatch = 256
	}
	if sc.Tenants <= 0 {
		sc.Tenants = 1
	}
	if sc.QueueCap <= 0 {
		sc.QueueCap = 1 << 14
	}
	if sc.BatchEdges <= 0 {
		sc.BatchEdges = 4096
	}
	if sc.Linger <= 0 {
		sc.Linger = 2 * time.Millisecond
	}
	if sc.Target <= 0 {
		sc.Target = 200 * time.Microsecond
	}
	if sc.ScrapeEvery <= 0 {
		sc.ScrapeEvery = 500 * time.Millisecond
	}
	if sc.BreakerSheds > 0 && sc.BreakerCooldown <= 0 {
		sc.BreakerCooldown = 100 * time.Millisecond
	}
	if sc.SLO.TailReadP99Us == 0 {
		sc.SLO.TailReadP99Us = -1
	}
	return sc
}

// Builtin scenario names.
const (
	// ShortMix is the deterministic CI scenario: a small cluster under
	// a mixed read/write load with mild bursts and no faults. Fixed
	// seed ⇒ identical Report across runs; its SLO passes.
	ShortMix = "short-mix"
	// BurstyIngest is the adaptive-admission benchmark scenario: one
	// shard under heavy periodic ingest bursts with a zipfian read
	// load. Run static vs adaptive to measure the p99 read-latency win
	// (BENCH_8, `xpgraph bench -exp soak`).
	BurstyIngest = "bursty-ingest"
	// FaultStorm schedules media UEs under the hottest vertices, a
	// shard-leader kill, and a late scrub. Its strict SLO fails by
	// design: the run demonstrates violation reporting and dumps
	// seed + scenario + Chrome trace for replay.
	FaultStorm = "fault-storm"
	// SustainedOverload drives one long over-capacity ingest window into
	// a small admission queue: queue-full 429 sheds trip the overload
	// circuit breaker, refused writes become typed circuit_open 503s,
	// half-open probes re-test the queue each cooldown, and once the
	// window ends the breaker closes and the post-overload read tail
	// must recover to its TailReadP99Us budget (ROADMAP item 2).
	SustainedOverload = "sustained-overload"
)

// ByName returns a builtin scenario, seeded with its default seed.
func ByName(name string) (Scenario, error) {
	switch name {
	case ShortMix:
		return Scenario{
			Name:             ShortMix,
			Seed:             0x50A6_0001,
			Shards:           2,
			Vertices:         1 << 16,
			PMEMPerNodeMB:    256,
			Horizon:          2 * time.Second,
			WarmEdges:        30_000,
			ReadsPerSec:      2000,
			WritesPerSec:     40,
			WriteBatch:       512,
			KHopFrac:         0.02,
			FilteredKHopFrac: 0.02,
			DeleteFrac:       0.05,
			ZipfSkew:         0.8,
			Tenants:          4,
			TenantSkew:       0.6,
			BurstEvery:       500 * time.Millisecond,
			BurstLen:         150 * time.Millisecond,
			BurstMult:        6,
			QueueCap:         1 << 14,
			BatchEdges:       4096,
			Linger:           2 * time.Millisecond,
			ScrapeEvery:      250 * time.Millisecond,
			SLO: SLO{
				ReadP99Us:     2000,
				WriteP99Ms:    50,
				Max429Frac:    0.05,
				MaxErrorFrac:  0,
				MaxReplicaLag: -1,
			},
		}, nil
	case BurstyIngest:
		// WarmEdges deliberately overshoots the store's first big
		// elog-archive event (~1.05M edges) so the measured window is
		// spike-free: the read tail is then driven by routine apply
		// windows, whose length the live BatchEdges knob controls —
		// the effect the static-vs-adaptive comparison measures.
		return Scenario{
			Name:          BurstyIngest,
			Seed:          0x50A6_0002,
			Shards:        1,
			Vertices:      1 << 18,
			PMEMPerNodeMB: 384,
			Horizon:       2 * time.Second,
			WarmEdges:     1_200_000,
			ReadsPerSec:   2500,
			WritesPerSec:  4,
			WriteBatch:    4096,
			ZipfSkew:      0.3,
			Tenants:       1,
			BurstEvery:    500 * time.Millisecond,
			BurstLen:      200 * time.Millisecond,
			BurstMult:     50,
			QueueCap:      1 << 15,
			BatchEdges:    4096,
			Linger:        2 * time.Millisecond,
			Target:        100 * time.Microsecond,
			ScrapeEvery:   250 * time.Millisecond,
			SLO: SLO{
				ReadP99Us:     1000,
				WriteP99Ms:    50,
				Max429Frac:    0.05,
				MaxErrorFrac:  0,
				MaxReplicaLag: -1,
			},
		}, nil
	case FaultStorm:
		return Scenario{
			Name:          FaultStorm,
			Seed:          0x50A6_0003,
			Shards:        2,
			Replicas:      1,
			Vertices:      1 << 15,
			PMEMPerNodeMB: 256,
			MediaGuard:    true,
			Horizon:       3 * time.Second,
			WarmEdges:     40_000,
			ReadsPerSec:   1500,
			WritesPerSec:  20,
			WriteBatch:    512,
			KHopFrac:      0.01,
			ZipfSkew:      0.9,
			Tenants:       2,
			TenantSkew:    0.5,
			QueueCap:      1 << 14,
			BatchEdges:    4096,
			Linger:        2 * time.Millisecond,
			ScrapeEvery:   250 * time.Millisecond,
			Faults: []FaultOp{
				{At: 500 * time.Millisecond, Kind: "ue", Vertices: 64},
				{At: 1200 * time.Millisecond, Kind: "slow", Vertices: 32, Mult: 8},
				{At: 1500 * time.Millisecond, Kind: "kill", Shard: 1},
				{At: 2 * time.Second, Kind: "scrub"},
			},
			SLO: SLO{
				ReadP99Us:     2000,
				WriteP99Ms:    50,
				Max429Frac:    0.05,
				MaxErrorFrac:  0.002,
				MaxReplicaLag: -1,
			},
		}, nil
	case SustainedOverload:
		return Scenario{
			Name:          SustainedOverload,
			Seed:          0x50A6_0004,
			Shards:        1,
			Vertices:      1 << 16,
			PMEMPerNodeMB: 256,
			Horizon:       2 * time.Second,
			WarmEdges:     30_000,
			ReadsPerSec:   1500,
			WritesPerSec:  40,
			WriteBatch:    512,
			ZipfSkew:      0.8,
			Tenants:       1,
			// Overload: 40x the offered write rate for 600ms against a
			// queue that holds only two write batches — arrivals outrun
			// the linger-bound drain, so refusals come in streaks.
			OverloadAt:   500 * time.Millisecond,
			OverloadFor:  600 * time.Millisecond,
			OverloadMult: 40,
			QueueCap:     1 << 10,
			BatchEdges:   4096,
			Linger:       2 * time.Millisecond,
			// Two consecutive queue-full sheds trip the breaker; a probe
			// re-tests the queue every 100ms.
			BreakerSheds:    2,
			BreakerCooldown: 100 * time.Millisecond,
			ScrapeEvery:     250 * time.Millisecond,
			SLO: SLO{
				// The window is over capacity by design: the overall shed
				// rate and write tail are unchecked. The assertion is the
				// recovery — the post-overload read tail back inside 2ms.
				ReadP99Us:     -1,
				WriteP99Ms:    -1,
				Max429Frac:    -1,
				MaxErrorFrac:  0,
				MaxReplicaLag: -1,
				TailReadP99Us: 2000,
			},
		}, nil
	}
	return Scenario{}, fmt.Errorf("soak: unknown scenario %q (builtins: %s, %s, %s, %s)",
		name, ShortMix, BurstyIngest, FaultStorm, SustainedOverload)
}

// Names lists the builtin scenarios.
func Names() []string {
	return []string{ShortMix, BurstyIngest, FaultStorm, SustainedOverload}
}
