package soak

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestDeterministicReport pins the harness's replayability contract:
// the same scenario with the same seed produces a bit-identical Report
// — every latency quantile, counter, epoch and tuning step — across
// two full runs of the real server/cluster/ingest/core stack.
func TestDeterministicReport(t *testing.T) {
	sc, err := ByName(ShortMix)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		sc.Horizon = time.Second
	}
	a, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		t.Fatalf("same seed, different reports:\n run 1: %s\n run 2: %s", aj, bj)
	}
	if a.Failed() {
		t.Fatalf("%s violated its SLO: %v", sc.Name, a.Violations)
	}
	if a.Reads == 0 || a.EdgesAccepted == 0 {
		t.Fatalf("degenerate run: %d reads, %d edges accepted", a.Reads, a.EdgesAccepted)
	}
	if a.Scrapes == 0 {
		t.Fatal("no metrics/health scrapes ran")
	}
}

// TestSeedChangesReport guards against the opposite failure: a report
// that is "deterministic" because the load generator ignores the seed.
func TestSeedChangesReport(t *testing.T) {
	sc, err := ByName(ShortMix)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = 500 * time.Millisecond
	a, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	b, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical reports; the seed is not driving the load")
	}
}

// TestFaultScenarioFailsSLO runs the builtin fault-injection scenario
// (UEs under the hottest vertices, a slow-line region, a shard-leader
// kill, a late scrub) and requires that it fails its strict SLO spec
// and dumps the replay artifacts: scenario + seed + report JSON, a
// Chrome trace of the virtual timeline, and the metrics exposition.
func TestFaultScenarioFailsSLO(t *testing.T) {
	sc, err := ByName(FaultStorm)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, err := Run(sc, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("fault scenario met its SLO; injected faults had no effect: %+v", rep)
	}
	var sawErrRate bool
	for _, v := range rep.Violations {
		if strings.Contains(v, "read error rate") {
			sawErrRate = true
		}
	}
	if !sawErrRate {
		t.Fatalf("expected a read-error-rate violation, got %v", rep.Violations)
	}
	if rep.Errors["media_error"] == 0 {
		t.Fatalf("UE injection produced no media_error reads: %v", rep.Errors)
	}
	if rep.Errors["shard_down"] == 0 {
		t.Fatalf("shard kill produced no shard_down writes: %v", rep.Errors)
	}

	files := sc.DumpFiles(dir)
	for _, f := range files {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("missing dump artifact: %v", err)
		}
	}
	// The report artifact must carry the seed and full scenario so the
	// run replays with `xpgraph soak -scenario fault-storm -seed N`.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Scenario Scenario `json:"scenario"`
		Report   Report   `json:"report"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("report dump is not valid JSON: %v", err)
	}
	if dump.Scenario.Seed != sc.Seed || dump.Scenario.Name != sc.Name {
		t.Fatalf("dump does not identify the run: %+v", dump.Scenario)
	}
	if len(dump.Report.Violations) == 0 {
		t.Fatal("dumped report lost its violations")
	}
	// The trace artifact must be valid Chrome trace-event JSON with a
	// non-empty virtual timeline.
	raw, err = os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace dump is not valid Chrome trace JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace dump has no events")
	}
}

// TestSustainedOverloadBreaker runs the builtin sustained-overload
// scenario and requires the full breaker story: the over-capacity
// window fills the queue (429s), consecutive sheds trip the overload
// breaker (typed circuit_open 503s), half-open probes re-test the
// queue each cooldown, the breaker closes again, and the post-overload
// read tail recovers to its SLO budget.
func TestSustainedOverloadBreaker(t *testing.T) {
	sc, err := ByName(SustainedOverload)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("overload scenario violated its SLO: %v", rep.Violations)
	}
	if rep.Shed429 == 0 {
		t.Fatalf("overload window never filled the queue: %+v", rep)
	}
	if rep.BreakerTrips == 0 {
		t.Fatalf("queue-full sheds never tripped the breaker: %+v", rep)
	}
	if rep.Shed503 == 0 || rep.Errors["circuit_open"] == 0 {
		t.Fatalf("open breaker refused nothing: shed503=%d errors=%v", rep.Shed503, rep.Errors)
	}
	if rep.BreakerProbes == 0 || rep.BreakerCloses == 0 {
		t.Fatalf("breaker never completed a half-open probe cycle: probes=%d closes=%d",
			rep.BreakerProbes, rep.BreakerCloses)
	}
	if rep.TailReadP99Us <= 0 {
		t.Fatalf("no post-overload tail reads were sampled: %+v", rep)
	}
	// Writes must flow again once the window ends: the last accepted
	// edges cannot all predate the overload.
	if rep.EdgesAccepted == 0 {
		t.Fatalf("no writes were ever accepted: %+v", rep)
	}
	// Same seed replays bit-identically, breaker transitions included.
	again, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		aj, _ := json.Marshal(rep)
		bj, _ := json.Marshal(again)
		t.Fatalf("same seed, different overload reports:\n run 1: %s\n run 2: %s", aj, bj)
	}
}

// TestAdaptiveBeatsStatic is the tentpole claim at test scale: under
// the bursty-ingest scenario the AIMD admission controller must cut
// the p99 read latency by at least 1.2x vs the static defaults (the
// committed BENCH_8.json gates the same comparison at bench scale).
func TestAdaptiveBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale comparison; run without -short or via xpgraph bench -exp soak")
	}
	sc, err := ByName(BurstyIngest)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	sc.Adaptive = true
	adaptive, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if static.Failed() || adaptive.Failed() {
		t.Fatalf("bursty scenario violated its own SLO: static %v adaptive %v",
			static.Violations, adaptive.Violations)
	}
	if adaptive.ReadP99Us*1.2 > static.ReadP99Us {
		t.Fatalf("adaptive p99 %.1fus is not >=1.2x better than static %.1fus",
			adaptive.ReadP99Us, static.ReadP99Us)
	}
	var tuned bool
	for _, tr := range adaptive.FinalTuning {
		if tr.Decreases > 0 {
			tuned = true
		}
	}
	if !tuned {
		t.Fatal("adaptive run never tuned; the comparison is vacuous")
	}
}

// TestScenarioRoundTrip pins that a scenario survives JSON (the dump
// format) unchanged, so a replayed dump runs exactly what failed.
func TestScenarioRoundTrip(t *testing.T) {
	for _, name := range Names() {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		var back Scenario
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("%s does not round-trip: %+v vs %+v", name, sc, back)
		}
	}
}

// TestUnknownScenario pins the error path CLI users hit.
func TestUnknownScenario(t *testing.T) {
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
}
