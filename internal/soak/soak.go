// Package soak is the million-user soak harness (DESIGN.md §12): an
// open-loop load driver on the simulated clock that runs configurable
// scenarios — zipfian neighbor/k-hop reads, bursty batched ingest,
// tenant skew, scheduled fault injection — against a full server/
// cluster/ingest/core stack for long simulated horizons, then judges
// the run against a per-scenario SLO spec.
//
// # Determinism
//
// The driver is a single-threaded discrete-event simulation. Every
// request is served synchronously through the real server.ServeHTTP
// (no network, no goroutine races on the driver side), every random
// choice comes from one splitmix64 stream seeded by Scenario.Seed, and
// every latency is computed on the simulated clock from the store's
// own cost model. Same scenario + same seed ⇒ bit-identical Report —
// which is what makes a failing soak replayable: the failure dump
// carries the seed, the full scenario spec, and a Chrome trace of the
// virtual timeline.
//
// # The virtual pipeline model
//
// The real per-shard ingest pipeline batches on the host clock, which
// would make latencies scheduling-dependent. The harness instead pins
// the real pipeline wide open (one Apply per request, no background
// ticks) and enforces the batching/admission knobs under test — Queue
// Cap, BatchEdges, Linger, and optionally the AIMD adaptive controller
// (ingest.Controller, the same policy code the live pipeline runs) —
// on the virtual clock: each admitted write part becomes one or more
// exclusive write windows on its owner shard, sized by the live
// BatchEdges knob and costed by the store's real simulated apply time;
// reads arriving inside a window wait for its end. That is exactly the
// reader-behind-the-write-lock wait the adaptive controller exists to
// shrink, reproduced deterministically.
package soak

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/xpsim"
)

// Trace lanes of the virtual timeline (Chrome tid values): one lane
// per shard for write windows, plus event lanes.
const (
	laneShed   = 90
	laneFault  = 91
	laneScrape = 92
	laneRead   = 93
	laneShard  = 100 // + shard id
)

// TuningReport is one shard's final knob set (static or adaptively
// tuned) plus the controller's step counts.
type TuningReport struct {
	Shard      int   `json:"shard"`
	BatchEdges int   `json:"batch_edges"`
	LingerUs   int64 `json:"linger_us"`
	AdmitEdges int   `json:"admit_edges"`
	Decreases  int64 `json:"decreases"`
	Increases  int64 `json:"increases"`
}

// Report is the outcome of one soak run. Every field is computed on
// the simulated clock from deterministic inputs: running the same
// scenario with the same seed twice yields reflect.DeepEqual reports.
type Report struct {
	Scenario string  `json:"scenario"`
	Seed     uint64  `json:"seed"`
	Adaptive bool    `json:"adaptive"`
	HorizonS float64 `json:"horizon_s"`

	Reads         int64 `json:"reads"`
	KHops         int64 `json:"khops"`
	FilteredKHops int64 `json:"filtered_khops"`
	ReadErrors    int64 `json:"read_errors"`

	WriteParts    int64 `json:"write_parts"`
	EdgesOffered  int64 `json:"edges_offered"`
	EdgesAccepted int64 `json:"edges_accepted"`
	Shed429       int64 `json:"shed_429"`
	Shed503       int64 `json:"shed_503"`
	EdgesShed     int64 `json:"edges_shed"`
	WriteErrors   int64 `json:"write_errors"`

	// Virtual overload-breaker transitions (Scenario.BreakerSheds).
	BreakerTrips  int64 `json:"breaker_trips,omitempty"`
	BreakerCloses int64 `json:"breaker_closes,omitempty"`
	BreakerProbes int64 `json:"breaker_probes,omitempty"`

	// Errors histograms error-envelope codes across reads and writes.
	Errors map[string]int64 `json:"errors,omitempty"`

	ReadP50Us float64 `json:"read_p50_us"`
	ReadP95Us float64 `json:"read_p95_us"`
	ReadP99Us float64 `json:"read_p99_us"`
	ReadMaxUs float64 `json:"read_max_us"`
	// TailReadP99Us is the p99 over reads arriving after the sustained
	// overload window closed (0 without an overload phase).
	TailReadP99Us float64 `json:"tail_read_p99_us,omitempty"`
	WriteP50Ms    float64 `json:"write_p50_ms"`
	WriteP99Ms    float64 `json:"write_p99_ms"`
	WriteMaxMs    float64 `json:"write_max_ms"`

	Scrapes             int64    `json:"scrapes"`
	MaxQueueDepthEdges  int64    `json:"max_queue_depth_edges"`
	MaxReplicaLagEpochs int64    `json:"max_replica_lag_epochs"`
	BreakerOpenScrapes  int64    `json:"breaker_open_scrapes"`
	FinalHealth         string   `json:"final_health"`
	FinalEpochVector    []uint64 `json:"final_epoch_vector"`

	FinalTuning []TuningReport `json:"final_tuning"`

	// Violations lists every SLO assertion the run failed; empty means
	// the scenario met its spec.
	Violations []string `json:"violations,omitempty"`
}

// Failed reports whether the run violated its SLO spec.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// splitmix64 is the repo's deterministic PRNG.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// zipfIdx picks an index in [0,n) with a power-law head: skew 0 is
// uniform, larger skews concentrate mass on the low indices.
func (r *rng) zipfIdx(n int, skew float64) int {
	if n <= 1 {
		return 0
	}
	i := int(float64(n) * math.Pow(r.float(), 1+3*skew))
	if i >= n {
		i = n - 1
	}
	return i
}

// window is one exclusive write (or scrub) hold on a shard's virtual
// timeline: a read arriving inside it waits for end.
type window struct{ start, end int64 }

// pend is an admitted write part that has not virtually completed:
// its edges count toward queue depth until done.
type pend struct {
	done  int64
	edges int
}

// shardModel is one shard's virtual writer state.
type shardModel struct {
	busyUntil int64
	windows   []window
	pend      []pend
	ctl       *ingest.Controller // nil when the scenario is static
}

// Runner executes one scenario. Build with newRunner via Run.
type runner struct {
	sc  Scenario
	srv *server.Server
	cl  *cluster.Cluster
	// faults holds each shard leader's armed fault-injection handle
	// (MediaGuard scenarios only).
	faults []*xpsim.Faults
	shards []*shardModel
	// vbr holds each shard's virtual overload breaker (BreakerSheds
	// scenarios only): the real cluster.Breaker policy clocked by the
	// simulated time, so its trips are deterministic.
	vbr []*cluster.Breaker
	// tailStart is when the sustained-overload window closes (-1 when
	// the scenario has none); reads at or after it feed TailReadP99Us.
	tailStart int64
	rng       rng
	now       int64 // virtual ns

	// Observability surface: the soak registry carries the driver-side
	// SLO histograms the scrape events gather; the tracer records the
	// virtual timeline for the failure dump.
	reg       *obs.Registry
	tracer    *obs.Tracer
	latHist   *obs.HistogramVec
	shedCtr   *obs.Counter
	brShedCtr *obs.Counter
	errCtr    *obs.CounterVec
	readLatNs []int64
	tailLatNs []int64
	writeLat  []int64

	rep Report
}

// Run executes the scenario and returns its report. dumpDir, when
// non-empty, receives a replayable failure dump (report + scenario,
// Chrome trace, metrics) if the run violates its SLO.
func Run(sc Scenario, dumpDir string) (Report, error) {
	sc = sc.withDefaults()
	r, err := newRunner(sc)
	if err != nil {
		return Report{}, err
	}
	defer r.srv.Shutdown()
	r.drive()
	r.finish()
	if r.rep.Failed() && dumpDir != "" {
		if err := r.dump(dumpDir); err != nil {
			return r.rep, fmt.Errorf("soak: writing failure dump: %w", err)
		}
	}
	return r.rep, nil
}

func newRunner(sc Scenario) (*runner, error) {
	perNode := sc.PMEMPerNodeMB << 20
	newNode := func(name string) (*core.Store, *xpsim.Faults, error) {
		m := xpsim.NewMachine(2, perNode, xpsim.DefaultLatency())
		var f *xpsim.Faults
		if sc.MediaGuard {
			f = m.TrackFaults()
		}
		st, err := core.New(m, pmem.NewHeap(m), nil, core.Options{
			Name:           name,
			NumVertices:    sc.Vertices,
			ArchiveThreads: 8,
			NUMA:           core.NUMASubgraph,
			AdjBytes:       perNode / 4,
			MediaGuard:     sc.MediaGuard,
			Props:          sc.FilteredKHopFrac > 0,
		})
		return st, f, err
	}

	stores := make([]*core.Store, sc.Shards)
	faults := make([]*xpsim.Faults, sc.Shards)
	for i := range stores {
		var err error
		stores[i], faults[i], err = newNode(fmt.Sprintf("soak-s%d", i))
		if err != nil {
			return nil, fmt.Errorf("soak: building shard %d: %w", i, err)
		}
	}
	// The real pipeline is pinned wide open — one Apply per request, no
	// background ticks — so the harness's virtual model is the only
	// batching in play and every request's simulated cost is exact.
	ccfg := cluster.Config{
		Replicas:   sc.Replicas,
		QueueCap:   1 << 20,
		BatchEdges: 1 << 20,
		Linger:     time.Nanosecond,
	}
	if sc.Replicas > 0 {
		ccfg.ReplicaFactory = func(shardID, replica int) (*core.Store, error) {
			st, _, err := newNode(fmt.Sprintf("soak-s%d-r%d", shardID, replica))
			return st, err
		}
	}
	cl, err := cluster.New(stores, ccfg)
	if err != nil {
		return nil, fmt.Errorf("soak: building cluster: %w", err)
	}
	if err := cl.Start(); err != nil {
		return nil, fmt.Errorf("soak: starting cluster: %w", err)
	}

	r := &runner{
		sc:        sc,
		cl:        cl,
		faults:    faults,
		tailStart: -1,
		rng:       rng{s: sc.Seed},
		tracer:    obs.NewTracer(1 << 15),
		reg:       obs.NewRegistry(),
	}
	if sc.OverloadFor > 0 {
		r.tailStart = int64(sc.OverloadAt + sc.OverloadFor)
	}
	if sc.BreakerSheds > 0 {
		// The media arm is irrelevant on the virtual path (Ingest
		// failures surface as write errors, not recordFailure calls);
		// only the overload arm is exercised.
		r.vbr = make([]*cluster.Breaker, sc.Shards)
		for i := range r.vbr {
			r.vbr[i] = cluster.NewBreaker(1<<30, sc.BreakerSheds, sc.BreakerCooldown)
		}
	}
	r.latHist = obs.NewHistogramVec("soak_latency_seconds",
		"Driver-observed request latency on the simulated clock.",
		"op", obs.LogBuckets(1e-6, 2, 24))
	r.shedCtr = obs.NewCounter("soak_shed_writes_total",
		"Write parts shed by the virtual admission threshold (429).")
	r.brShedCtr = obs.NewCounter("soak_breaker_shed_writes_total",
		"Write parts refused by the open overload breaker (503 circuit_open).")
	r.errCtr = obs.NewCounterVec("soak_errors_total",
		"Error-envelope responses by code.", "code")
	r.reg.Register(r.latHist)
	r.reg.Register(r.shedCtr)
	r.reg.Register(r.brShedCtr)
	r.reg.Register(r.errCtr)

	r.shards = make([]*shardModel, sc.Shards)
	for i := range r.shards {
		sm := &shardModel{}
		if sc.Adaptive {
			sm.ctl = ingest.NewController(sc.QueueCap, ingest.Tuning{
				BatchEdges: sc.BatchEdges,
				Linger:     sc.Linger,
				AdmitEdges: sc.QueueCap,
			}, ingest.AdaptiveConfig{Target: sc.Target})
		}
		r.shards[i] = sm
	}

	// Warm the graph before the clock starts so the zipfian head has
	// real adjacency (and, under MediaGuard, real PMEM lines to damage).
	if sc.WarmEdges > 0 {
		warm := make([]graph.Edge, sc.WarmEdges)
		for i := range warm {
			warm[i] = graph.Edge{Src: r.pickVertex(), Dst: graph.VID(r.rng.intn(int(sc.Vertices)))}
		}
		if _, err := cl.IngestLocal(warm); err != nil {
			cl.Close()
			return nil, fmt.Errorf("soak: warm load: %w", err)
		}
	}
	// Typed warm set for the filtered-khop read fraction: one "hot"
	// label over a tenth of the warm volume, so the typed traversals have
	// real labeled adjacency to prune against.
	if sc.FilteredKHopFrac > 0 {
		hot, err := cl.RegisterLabel(soakLabel)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("soak: registering warm label: %w", err)
		}
		n := sc.WarmEdges/10 + 1
		typed := make([]graph.Edge, n)
		labels := make([]uint16, n)
		for i := range typed {
			typed[i] = graph.Edge{Src: r.pickVertex(), Dst: graph.VID(r.rng.intn(int(sc.Vertices)))}
			labels[i] = hot
		}
		if _, err := cl.IngestTyped(typed, labels, nil); err != nil {
			cl.Close()
			return nil, fmt.Errorf("soak: typed warm load: %w", err)
		}
	}

	r.srv = server.NewCluster(cl, server.Config{
		QueryThreads: 8,
		QueueCap:     1 << 20,
		Tracer:       obs.NewTracer(1 << 14),
	})
	r.rep = Report{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Adaptive: sc.Adaptive,
		HorizonS: sc.Horizon.Seconds(),
		Errors:   map[string]int64{},
	}
	return r, nil
}

// ---- load generation ----

// pickVertex draws a vertex: tenant-skewed range, zipf-skewed rank
// inside it. The hottest vertices of the hottest tenant are the low
// IDs, which is what the "ue"/"slow" faults target.
func (r *runner) pickVertex() graph.VID {
	sc := &r.sc
	span := int(sc.Vertices) / sc.Tenants
	tenant := r.rng.zipfIdx(sc.Tenants, sc.TenantSkew)
	return graph.VID(tenant*span + r.rng.zipfIdx(span, sc.ZipfSkew))
}

// jitter draws a deterministic inter-arrival gap with mean base:
// uniform over [base/2, 3*base/2).
func (r *rng) jitter(base int64) int64 {
	if base <= 0 {
		return math.MaxInt64
	}
	return base/2 + int64(r.next()%uint64(base))
}

// inBurst reports whether virtual time t falls inside a burst.
func (r *runner) inBurst(t int64) bool {
	sc := &r.sc
	if sc.BurstEvery <= 0 || sc.BurstLen <= 0 || sc.BurstMult <= 1 {
		return false
	}
	return t%int64(sc.BurstEvery) < int64(sc.BurstLen)
}

// inOverload reports whether virtual time t falls inside the sustained
// overload window.
func (r *runner) inOverload(t int64) bool {
	sc := &r.sc
	if sc.OverloadFor <= 0 || sc.OverloadMult <= 1 {
		return false
	}
	return t >= int64(sc.OverloadAt) && t < int64(sc.OverloadAt+sc.OverloadFor)
}

// vclock materializes the virtual ns clock as a time.Time for the
// breaker policy (which takes explicit nows for exactly this reason).
func (r *runner) vclock() time.Time { return time.Unix(0, r.now) }

// drive runs the discrete-event loop to the horizon. Streams are
// merged by next-fire time with a fixed tie order (faults, scrapes,
// writes, reads) so the event sequence — and therefore the rng
// consumption — is identical run to run.
func (r *runner) drive() {
	sc := &r.sc
	horizon := int64(sc.Horizon)
	readBase, writeBase := int64(0), int64(0)
	if sc.ReadsPerSec > 0 {
		readBase = int64(time.Second) / int64(sc.ReadsPerSec)
	}
	if sc.WritesPerSec > 0 {
		writeBase = int64(time.Second) / int64(sc.WritesPerSec)
	}
	const never = int64(math.MaxInt64)
	nextRead, nextWrite, nextScrape := never, never, never
	if readBase > 0 {
		nextRead = r.rng.jitter(readBase)
	}
	if writeBase > 0 {
		nextWrite = r.rng.jitter(writeBase)
	}
	if sc.ScrapeEvery > 0 {
		nextScrape = int64(sc.ScrapeEvery)
	}
	faultIdx := 0
	for {
		nextFault := never
		if faultIdx < len(sc.Faults) {
			nextFault = int64(sc.Faults[faultIdx].At)
		}
		t := nextFault
		kind := 0
		if nextScrape < t {
			t, kind = nextScrape, 1
		}
		if nextWrite < t {
			t, kind = nextWrite, 2
		}
		if nextRead < t {
			t, kind = nextRead, 3
		}
		if t > horizon {
			r.now = horizon
			return
		}
		r.now = t
		switch kind {
		case 0:
			r.fault(sc.Faults[faultIdx])
			faultIdx++
		case 1:
			r.scrape()
			nextScrape += int64(sc.ScrapeEvery)
		case 2:
			r.write()
			base := writeBase
			if r.inOverload(t) {
				base /= int64(sc.OverloadMult)
			} else if r.inBurst(t) {
				base /= int64(sc.BurstMult)
			}
			if base < 1 {
				base = 1
			}
			nextWrite += r.rng.jitter(base)
		case 3:
			r.read()
			nextRead += r.rng.jitter(readBase)
		}
	}
}

// ---- HTTP plumbing (synchronous, in-process) ----

// errEnvelope mirrors the server's uniform error body.
type errEnvelope struct {
	Error struct {
		Code string `json:"code"`
	} `json:"error"`
}

// call serves one request through the real server stack and decodes
// the response into out. A non-2xx response returns its envelope code.
func (r *runner) call(method, path, contentType string, body []byte, out any) (code string) {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	r.srv.ServeHTTP(w, req)
	if w.Code/100 != 2 {
		var env errEnvelope
		if json.Unmarshal(w.Body.Bytes(), &env) == nil && env.Error.Code != "" {
			return env.Error.Code
		}
		return fmt.Sprintf("http_%d", w.Code)
	}
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			return "bad_body"
		}
	}
	return ""
}

// ---- virtual shard model ----

// tuning reads shard si's live knob set.
func (r *runner) tuning(si int) ingest.Tuning {
	if ctl := r.shards[si].ctl; ctl != nil {
		return ctl.Tuning()
	}
	return ingest.Tuning{
		BatchEdges: r.sc.BatchEdges,
		Linger:     r.sc.Linger,
		AdmitEdges: r.sc.QueueCap,
	}
}

// depthAt returns shard si's virtual queue depth (admitted edges not
// yet applied) at time t, retiring completed parts.
func (r *runner) depthAt(si int, t int64) int64 {
	sm := r.shards[si]
	keep := sm.pend[:0]
	var depth int64
	for _, p := range sm.pend {
		if p.done > t {
			keep = append(keep, p)
			depth += int64(p.edges)
		}
	}
	sm.pend = keep
	return depth
}

// waitAt returns how long a read arriving at t waits behind shard si's
// exclusive write/scrub windows, pruning fully past ones.
func (r *runner) waitAt(si int, pruneBefore, t int64) int64 {
	sm := r.shards[si]
	i := 0
	for i < len(sm.windows) && sm.windows[i].end <= pruneBefore {
		i++
	}
	if i > 0 {
		sm.windows = append(sm.windows[:0], sm.windows[i:]...)
	}
	for _, w := range sm.windows {
		if t >= w.start && t < w.end {
			return w.end - t
		}
		if w.start > t {
			break
		}
	}
	return 0
}

// ---- events ----

// soakLabel is the edge label the typed warm set and the filtered-khop
// reads share.
const soakLabel = "hot"

func (r *runner) read() {
	sc := &r.sc
	v := r.pickVertex()
	khop := sc.KHopFrac > 0 && r.rng.float() < sc.KHopFrac
	filtered := false
	if !khop && sc.FilteredKHopFrac > 0 && r.rng.float() < sc.FilteredKHopFrac {
		khop, filtered = true, true
	}

	var costNs, waitNs int64
	var code string
	if khop {
		kreq := server.KHopRequest{Root: v, K: 2}
		if filtered {
			r.rep.FilteredKHops++
			kreq.Types = []string{soakLabel}
		} else {
			r.rep.KHops++
		}
		body, _ := json.Marshal(kreq)
		var resp server.KHopResponse
		code = r.call("POST", "/v1/query/khop", "application/json", body, &resp)
		if code == "" {
			costNs = int64(math.Round(resp.SimMs * 1e6))
		}
		// A k-hop touches every partition: it waits for the longest
		// write hold in flight anywhere.
		for si := range r.shards {
			if w := r.waitAt(si, r.now, r.now); w > waitNs {
				waitNs = w
			}
		}
	} else {
		var resp server.NeighborsResponse
		code = r.call("GET", fmt.Sprintf("/v1/vertices/%d/out", v), "", nil, &resp)
		if code == "" {
			costNs = int64(math.Round(resp.SimUs * 1e3))
		}
		waitNs = r.waitAt(r.cl.Owner(v), r.now, r.now)
	}
	r.rep.Reads++
	if code != "" {
		r.rep.ReadErrors++
		r.rep.Errors[code]++
		r.errCtr.With(code).Inc()
		return
	}
	lat := waitNs + costNs
	r.readLatNs = append(r.readLatNs, lat)
	if r.tailStart >= 0 && r.now >= r.tailStart {
		r.tailLatNs = append(r.tailLatNs, lat)
	}
	r.latHist.With("read").Observe(float64(lat) / 1e9)
	if waitNs > 0 {
		r.tracer.EmitPhase("read-wait", laneRead, r.now, lat)
	}
}

func (r *runner) write() {
	sc := &r.sc
	del := sc.DeleteFrac > 0 && r.rng.float() < sc.DeleteFrac
	// Split the arrival by owner shard; each part is admitted (or shed)
	// against its shard's live threshold independently, like the real
	// router does.
	parts := make([][]graph.Edge, sc.Shards)
	for i := 0; i < sc.WriteBatch; i++ {
		src := r.pickVertex()
		dst := graph.VID(r.rng.intn(int(sc.Vertices)))
		e := graph.Edge{Src: src, Dst: dst}
		if del {
			e = graph.Del(src, dst)
		}
		si := r.cl.Owner(src)
		parts[si] = append(parts[si], e)
	}
	for si, part := range parts {
		if len(part) == 0 {
			continue
		}
		r.rep.WriteParts++
		r.rep.EdgesOffered += int64(len(part))
		// An open overload breaker refuses the part up front — the typed
		// 503 the live handler maps BreakerOpenError to — before the
		// queue is even consulted.
		if r.vbr != nil {
			if ok, _ := r.vbr[si].Allow(r.vclock()); !ok {
				r.rep.Shed503++
				r.rep.EdgesShed += int64(len(part))
				r.rep.Errors["circuit_open"]++
				r.errCtr.With("circuit_open").Inc()
				r.brShedCtr.Inc()
				r.tracer.EmitPhase("shed-503", laneShed, r.now, 0)
				continue
			}
		}
		tun := r.tuning(si)
		depth := r.depthAt(si, r.now)
		if depth+int64(len(part)) > int64(tun.AdmitEdges) {
			r.rep.Shed429++
			r.rep.EdgesShed += int64(len(part))
			r.shedCtr.Inc()
			r.tracer.EmitPhase("shed-429", laneShed, r.now, 0)
			if r.vbr != nil {
				r.vbr[si].NoteShed(r.vclock())
			}
			continue
		}
		if r.vbr != nil {
			r.vbr[si].NoteAdmit()
		}
		if d := depth + int64(len(part)); d > r.rep.MaxQueueDepthEdges {
			r.rep.MaxQueueDepthEdges = d
		}
		sm := r.shards[si]
		start := r.now + int64(tun.Linger)
		if sm.busyUntil > start {
			start = sm.busyUntil
		}
		failed := false
		for off := 0; off < len(part); {
			end := off + tun.BatchEdges
			if end > len(part) {
				end = len(part)
			}
			chunk := part[off:end]
			var resp server.IngestResponse
			code := r.call("POST", "/v1/ingest/bin", ingest.ContentTypeBatch,
				ingest.EncodeBatch(chunk, false), &resp)
			if code != "" {
				r.rep.WriteErrors++
				r.rep.Errors[code]++
				r.errCtr.With(code).Inc()
				failed = true
				break
			}
			simNs := int64(math.Round(resp.SimMs * 1e6))
			sm.windows = append(sm.windows, window{start, start + simNs})
			r.tracer.EmitPhase("apply", int64(laneShard+si), start, simNs)
			if sm.ctl != nil {
				sm.ctl.Observe(depth, len(chunk), time.Duration(simNs))
			}
			start += simNs
			off = end
		}
		if start > sm.busyUntil {
			sm.busyUntil = start
		}
		if failed {
			continue
		}
		sm.pend = append(sm.pend, pend{done: start, edges: len(part)})
		r.rep.EdgesAccepted += int64(len(part))
		lat := start - r.now
		r.writeLat = append(r.writeLat, lat)
		r.latHist.With("write").Observe(float64(lat) / 1e9)
	}
}

// scrape polls the server's health and metrics surfaces — the same
// endpoints a production scraper hits — and folds them into the
// report's queue/breaker/replica-lag aggregates.
func (r *runner) scrape() {
	r.rep.Scrapes++
	var m server.MetricsResponse
	r.call("GET", "/v1/metrics", "", nil, &m)
	var h server.HealthzResponse
	r.call("GET", "/v1/healthz", "", nil, &h)
	if h.Status == "" {
		// healthz answers 503 when readonly; re-read the body anyway.
		h.Status = "unknown"
	}
	r.rep.FinalHealth = h.Status
	if h.BreakerOpen {
		r.rep.BreakerOpenScrapes++
	}
	for _, sh := range h.Shards {
		if len(sh.ReplicaEpochs) == 0 {
			continue
		}
		minRep := sh.ReplicaEpochs[0]
		for _, e := range sh.ReplicaEpochs[1:] {
			if e < minRep {
				minRep = e
			}
		}
		if sh.Epoch > minRep {
			if lag := int64(sh.Epoch - minRep); lag > r.rep.MaxReplicaLagEpochs {
				r.rep.MaxReplicaLagEpochs = lag
			}
		}
	}
	r.tracer.EmitPhase("scrape", laneScrape, r.now, 0)
}

func (r *runner) fault(op FaultOp) {
	switch op.Kind {
	case "ue", "slow":
		// Materialize adjacency into PMEM lines, then damage (or slow)
		// the lines under the hottest vertices — the ones the zipfian
		// read head keeps hitting.
		r.call("POST", "/v1/flush", "", nil, nil)
		for v := graph.VID(0); v < graph.VID(op.Vertices); v++ {
			si := r.cl.Owner(v)
			if r.faults[si] == nil {
				continue
			}
			for _, ln := range r.cl.Shard(si).Store().VertexMediaLines(core.Out, v) {
				if op.Kind == "ue" {
					r.faults[si].InjectUE(ln.Node, ln.Line)
				} else {
					r.faults[si].MarkSlow(ln.Node, ln.Line, op.Mult)
				}
			}
		}
	case "kill":
		r.cl.KillShard(op.Shard)
	case "scrub":
		var resp server.ScrubResponse
		if code := r.call("POST", "/v1/scrub", "", nil, &resp); code != "" {
			r.rep.Errors[code]++
			r.errCtr.With(code).Inc()
			break
		}
		// A scrub holds every shard's write lock; model it as one
		// exclusive window per shard (they scrub in parallel).
		simNs := int64(math.Round(resp.SimMs * 1e6))
		for _, sm := range r.shards {
			start := r.now
			if sm.busyUntil > start {
				start = sm.busyUntil
			}
			sm.windows = append(sm.windows, window{start, start + simNs})
			if start+simNs > sm.busyUntil {
				sm.busyUntil = start + simNs
			}
		}
	}
	r.tracer.EmitPhase("fault:"+op.Kind, laneFault, r.now, 0)
}

// ---- report assembly ----

// quantile returns the q-quantile of ns samples (exact, from the
// sorted copy — not a histogram estimate, so it is deterministic).
func quantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

func (r *runner) finish() {
	rep := &r.rep
	rep.ReadP50Us = float64(quantile(r.readLatNs, 0.50)) / 1e3
	rep.ReadP95Us = float64(quantile(r.readLatNs, 0.95)) / 1e3
	rep.ReadP99Us = float64(quantile(r.readLatNs, 0.99)) / 1e3
	rep.ReadMaxUs = float64(quantile(r.readLatNs, 1)) / 1e3
	rep.TailReadP99Us = float64(quantile(r.tailLatNs, 0.99)) / 1e3
	rep.WriteP50Ms = float64(quantile(r.writeLat, 0.50)) / 1e6
	rep.WriteP99Ms = float64(quantile(r.writeLat, 0.99)) / 1e6
	rep.WriteMaxMs = float64(quantile(r.writeLat, 1)) / 1e6
	rep.FinalEpochVector = r.cl.EpochVector()
	if rep.FinalHealth == "" {
		rep.FinalHealth = "ok"
	}
	for _, b := range r.vbr {
		v := b.View(r.vclock())
		rep.BreakerTrips += v.Trips
		rep.BreakerCloses += v.Closes
		rep.BreakerProbes += v.Probes
	}
	for si, sm := range r.shards {
		tr := TuningReport{Shard: si}
		tun := r.tuning(si)
		tr.BatchEdges = tun.BatchEdges
		tr.LingerUs = int64(tun.Linger / time.Microsecond)
		tr.AdmitEdges = tun.AdmitEdges
		if sm.ctl != nil {
			tr.Decreases, tr.Increases = sm.ctl.Steps()
		}
		rep.FinalTuning = append(rep.FinalTuning, tr)
	}
	rep.Violations = r.sc.SLO.check(*rep)
}

// check evaluates the SLO spec against a finished report.
func (s SLO) check(rep Report) []string {
	var v []string
	if s.ReadP99Us >= 0 && rep.ReadP99Us > s.ReadP99Us {
		v = append(v, fmt.Sprintf("read p99 %.1fus exceeds the %.1fus budget", rep.ReadP99Us, s.ReadP99Us))
	}
	if s.WriteP99Ms >= 0 && rep.WriteP99Ms > s.WriteP99Ms {
		v = append(v, fmt.Sprintf("write p99 %.2fms exceeds the %.2fms budget", rep.WriteP99Ms, s.WriteP99Ms))
	}
	if s.Max429Frac >= 0 && rep.WriteParts > 0 {
		frac := float64(rep.Shed429) / float64(rep.WriteParts)
		if frac > s.Max429Frac {
			v = append(v, fmt.Sprintf("429 shed rate %.4f exceeds the %.4f budget (%d/%d parts)",
				frac, s.Max429Frac, rep.Shed429, rep.WriteParts))
		}
	}
	if s.MaxErrorFrac >= 0 && rep.Reads > 0 {
		frac := float64(rep.ReadErrors) / float64(rep.Reads)
		if frac > s.MaxErrorFrac {
			v = append(v, fmt.Sprintf("read error rate %.4f exceeds the %.4f budget (%d/%d reads)",
				frac, s.MaxErrorFrac, rep.ReadErrors, rep.Reads))
		}
	}
	if s.MaxReplicaLag >= 0 && rep.MaxReplicaLagEpochs > s.MaxReplicaLag {
		v = append(v, fmt.Sprintf("replica lag %d epochs exceeds the %d budget",
			rep.MaxReplicaLagEpochs, s.MaxReplicaLag))
	}
	if s.TailReadP99Us >= 0 && rep.TailReadP99Us > s.TailReadP99Us {
		v = append(v, fmt.Sprintf("post-overload read p99 %.1fus exceeds the %.1fus recovery budget",
			rep.TailReadP99Us, s.TailReadP99Us))
	}
	return v
}

// dumpBase names the failure artifacts: scenario plus seed, so the
// printed replay command is just `xpgraph soak -scenario X -seed N`.
func (sc Scenario) dumpBase() string {
	return fmt.Sprintf("%s-seed%d", sc.Name, sc.Seed)
}

// dump writes the replayable failure artifacts into dir: the scenario
// + report JSON, the virtual-timeline Chrome trace, and the soak
// registry's Prometheus exposition.
func (r *runner) dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, r.sc.dumpBase())

	repJSON, err := json.MarshalIndent(struct {
		Scenario Scenario `json:"scenario"`
		Report   Report   `json:"report"`
	}{r.sc, r.rep}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(base+".report.json", append(repJSON, '\n'), 0o644); err != nil {
		return err
	}

	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, r.tracer.Snapshot()); err != nil {
		return err
	}
	if err := os.WriteFile(base+".trace.json", trace.Bytes(), 0o644); err != nil {
		return err
	}

	var prom bytes.Buffer
	if err := r.reg.WritePrometheus(&prom); err != nil {
		return err
	}
	return os.WriteFile(base+".metrics.prom", prom.Bytes(), 0o644)
}

// DumpFiles lists the artifact paths a failing run writes into dir.
func (sc Scenario) DumpFiles(dir string) []string {
	base := filepath.Join(dir, sc.withDefaults().dumpBase())
	return []string{base + ".report.json", base + ".trace.json", base + ".metrics.prom"}
}
