// Package ssd simulates an NVMe SSD as a byte space with page-granular
// access costs. It is the substrate for the paper's stated future-work
// extension (§V-F): "For larger graphs that can not fit in PMEM, we will
// consider extending the SSD-supported XPGraph". Cold adjacency blocks
// overflow onto this tier through mem.Tiered once the PMEM arena fills.
package ssd

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/xpsim"
)

// PageSize is the device access granularity.
const PageSize = 4096

// Latencies of one 4 KiB page operation, loosely matching a datacenter
// NVMe drive (the testbed's 3.84 TB Intel NVMe SSD). Roughly 30-50x the
// cost of the equivalent PMEM traffic — which is the point of the tier.
const (
	readPageNs  = 18_000
	writePageNs = 11_000
)

// Space is one simulated SSD namespace. It implements mem.Mem.
type Space struct {
	lat  *xpsim.LatencyModel
	size int64

	mu    sync.Mutex
	store *xpsim.ChunkStore
	alloc int64

	pagesRead    int64
	pagesWritten int64
}

var _ mem.Mem = (*Space)(nil)

// spaceHeader keeps offset 0 out of Alloc's reach ("no block" sentinel).
const spaceHeader = 64

// New builds an SSD space of `size` bytes.
func New(lat *xpsim.LatencyModel, size int64) *Space {
	return &Space{lat: lat, size: size, store: xpsim.NewChunkStore(size), alloc: spaceHeader}
}

func (s *Space) pages(off, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (off+n-1)/PageSize - off/PageSize + 1
}

// Read implements mem.Mem: one page read per touched page.
func (s *Space) Read(ctx *xpsim.Ctx, off int64, p []byte) {
	s.check(off, int64(len(p)))
	s.mu.Lock()
	s.store.ReadAt(p, off)
	n := s.pages(off, int64(len(p)))
	s.pagesRead += n
	s.mu.Unlock()
	ctx.Cost.Add(n * readPageNs)
}

// Write implements mem.Mem: one page write per touched page (the FTL
// absorbs sub-page writes, but they still cost a page program).
func (s *Space) Write(ctx *xpsim.Ctx, off int64, p []byte) {
	s.check(off, int64(len(p)))
	s.mu.Lock()
	s.store.WriteAt(p, off)
	n := s.pages(off, int64(len(p)))
	s.pagesWritten += n
	s.mu.Unlock()
	ctx.Cost.Add(n * writePageNs)
}

// Flush implements mem.Mem: writes are durable once acknowledged here.
func (s *Space) Flush(*xpsim.Ctx, int64, int64) {}

// Alloc implements mem.Mem.
func (s *Space) Alloc(_ *xpsim.Ctx, n, align int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.alloc
	if align > 0 {
		base = (base + align - 1) / align * align
	}
	if base+n > s.size {
		return 0, fmt.Errorf("ssd: namespace full: need %d bytes, %d free", n, s.size-base)
	}
	s.alloc = base + n
	return base, nil
}

// AllocBytes implements mem.Mem.
func (s *Space) AllocBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc
}

// Size implements mem.Mem.
func (s *Space) Size() int64 { return s.size }

// NodeOf implements mem.Mem: the SSD hangs off the PCIe fabric, not a
// memory controller; access cost dwarfs any NUMA asymmetry.
func (s *Space) NodeOf(int64) int { return -1 }

// Persistent implements mem.Mem.
func (s *Space) Persistent() bool { return true }

// Pages reports (read, written) page counts.
func (s *Space) Pages() (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pagesRead, s.pagesWritten
}

func (s *Space) check(off, n int64) {
	if off < 0 || off+n > s.size {
		panic(fmt.Sprintf("ssd: access [%d,%d) out of bounds %d", off, off+n, s.size))
	}
}
