package ssd

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/xpsim"
)

func testSpace() (*Space, *xpsim.Ctx) {
	lat := xpsim.DefaultLatency()
	return New(&lat, 16<<20), xpsim.NewCtx(0)
}

func TestReadAfterWrite(t *testing.T) {
	s, ctx := testSpace()
	want := []byte("cold adjacency block")
	s.Write(ctx, 8192, want)
	got := make([]byte, len(want))
	s.Read(ctx, 8192, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	r, w := s.Pages()
	if r == 0 || w == 0 {
		t.Fatalf("page counters not tracked: r=%d w=%d", r, w)
	}
}

func TestPageGranularCosts(t *testing.T) {
	s, _ := testSpace()
	small := xpsim.NewCtx(0)
	s.Write(small, 0, make([]byte, 8))
	big := xpsim.NewCtx(0)
	s.Write(big, PageSize*4, make([]byte, PageSize))
	// A sub-page write costs a full page program.
	if small.Cost.Ns() != big.Cost.Ns() {
		t.Fatalf("8B write %dns vs 4K write %dns; both should cost one page", small.Cost.Ns(), big.Cost.Ns())
	}
	span := xpsim.NewCtx(0)
	s.Write(span, PageSize*8+100, make([]byte, PageSize)) // straddles two pages
	if span.Cost.Ns() != 2*big.Cost.Ns() {
		t.Fatalf("straddling write %dns, want two pages (%dns)", span.Cost.Ns(), 2*big.Cost.Ns())
	}
}

func TestMuchSlowerThanPMEMFlush(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := New(&lat, 1<<20)
	ctx := xpsim.NewCtx(0)
	p := make([]byte, 256)
	s.Write(ctx, 0, p)
	// One XPLine-sized write: SSD should be ~an order of magnitude
	// above the PMEM line-write cost.
	if ctx.Cost.Ns() < 10*lat.LineWrite {
		t.Fatalf("SSD write %dns too cheap vs PMEM line %dns", ctx.Cost.Ns(), lat.LineWrite)
	}
}

func TestAllocBounds(t *testing.T) {
	s, ctx := testSpace()
	off, err := s.Alloc(ctx, 100, 16)
	if err != nil || off == 0 || off%16 != 0 {
		t.Fatalf("alloc: %d, %v", off, err)
	}
	if _, err := s.Alloc(ctx, 32<<20, 1); err == nil {
		t.Fatal("expected namespace-full error")
	}
}

func TestMatchesShadow(t *testing.T) {
	f := func(seed int64) bool {
		lat := xpsim.DefaultLatency()
		s := New(&lat, 1<<16)
		ctx := xpsim.NewCtx(0)
		rng := rand.New(rand.NewSource(seed))
		shadow := make([]byte, 1<<16)
		for i := 0; i < 100; i++ {
			off := rng.Int63n(1<<16 - 600)
			n := 1 + rng.Int63n(599)
			if rng.Intn(2) == 0 {
				p := make([]byte, n)
				rng.Read(p)
				s.Write(ctx, off, p)
				copy(shadow[off:], p)
			} else {
				p := make([]byte, n)
				s.Read(ctx, off, p)
				if !bytes.Equal(p, shadow[off:off+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTieredOverflow(t *testing.T) {
	lat := xpsim.DefaultLatency()
	fast := mem.NewDRAM(&lat, 4096, nil)
	slow := New(&lat, 1<<20)
	tier := mem.NewTiered(fast, slow)
	ctx := xpsim.NewCtx(0)

	// Fill the fast tier, then overflow.
	a, err := tier.Alloc(ctx, 3000, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tier.Alloc(ctx, 3000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a >= fast.Size() {
		t.Fatalf("first alloc (%d) should land on the fast tier", a)
	}
	if b < fast.Size() {
		t.Fatalf("second alloc (%d) should overflow to the slow tier", b)
	}
	if tier.SlowBytes() == 0 {
		t.Fatal("slow tier bytes not accounted")
	}

	// Data round-trips on both tiers and across the boundary.
	for _, off := range []int64{a, b} {
		want := []byte("tiered payload 1234")
		tier.Write(ctx, off, want)
		got := make([]byte, len(want))
		tier.Read(ctx, off, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("tier round trip at %d failed", off)
		}
	}
	// Straddle the boundary explicitly.
	want := make([]byte, 200)
	rand.New(rand.NewSource(1)).Read(want)
	off := fast.Size() - 100
	tier.Write(ctx, off, want)
	got := make([]byte, len(want))
	tier.Read(ctx, off, got)
	if !bytes.Equal(got, want) {
		t.Fatal("boundary-straddling access corrupted data")
	}

	// Slow-tier accesses cost more.
	cFast, cSlow := xpsim.NewCtx(0), xpsim.NewCtx(0)
	tier.Write(cFast, a, want[:64])
	tier.Write(cSlow, b, want[:64])
	if cSlow.Cost.Ns() <= cFast.Cost.Ns() {
		t.Fatalf("slow tier write %dns <= fast %dns", cSlow.Cost.Ns(), cFast.Cost.Ns())
	}
}
