package ssd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xpsim"
)

// mustPanic runs f and fails the test unless it panics with a message
// containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want message containing %q", r, want)
		}
	}()
	f()
}

// TestOutOfBoundsAccess pins the bounds contract: any access past the
// namespace or at a negative offset is a programming error and panics
// rather than silently truncating (a short read would hand the caller a
// buffer that is part data, part stale garbage).
func TestOutOfBoundsAccess(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := New(&lat, 1<<16)
	ctx := xpsim.NewCtx(0)

	mustPanic(t, "out of bounds", func() { s.Read(ctx, 1<<16-8, make([]byte, 16)) })
	mustPanic(t, "out of bounds", func() { s.Write(ctx, 1<<16, make([]byte, 1)) })
	mustPanic(t, "out of bounds", func() { s.Read(ctx, -1, make([]byte, 1)) })

	// One byte inside the end is fine.
	s.Write(ctx, 1<<16-1, []byte{0xAB})
	p := make([]byte, 1)
	s.Read(ctx, 1<<16-1, p)
	if p[0] != 0xAB {
		t.Fatalf("last-byte round trip: %#x", p[0])
	}
}

// TestAllocOverflow exercises the namespace-full path: the error names
// the shortfall, a failed Alloc must not move the allocator, and the
// space that was free before the failure stays allocatable.
func TestAllocOverflow(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := New(&lat, 8192)
	ctx := xpsim.NewCtx(0)

	if _, err := s.Alloc(ctx, 4096, 1); err != nil {
		t.Fatal(err)
	}
	before := s.AllocBytes()
	if _, err := s.Alloc(ctx, 8192, 1); err == nil {
		t.Fatal("oversized alloc succeeded")
	} else if !strings.Contains(err.Error(), "namespace full") {
		t.Fatalf("error %v; want namespace full", err)
	}
	if got := s.AllocBytes(); got != before {
		t.Fatalf("failed alloc moved the allocator: %d -> %d", before, got)
	}
	// The remaining tail is still usable after the failure.
	off, err := s.Alloc(ctx, 1024, 1)
	if err != nil || off != before {
		t.Fatalf("post-failure alloc: off=%d err=%v (want %d)", off, err, before)
	}
}

// TestAllocAlignmentOverflow: an allocation that fits by size but not
// once aligned must fail, not wrap or overlap.
func TestAllocAlignmentOverflow(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := New(&lat, 4096+64)
	ctx := xpsim.NewCtx(0)
	if _, err := s.Alloc(ctx, 100, 1); err != nil { // move past the header
		t.Fatal(err)
	}
	if _, err := s.Alloc(ctx, 4096, 4096); err == nil {
		t.Fatal("aligned alloc fit where only unaligned space remains")
	}
}

// TestPartialWriteThenReopen covers the reopen-after-partial-write shape
// the archive depends on: a writer that stopped mid-page leaves the
// written prefix intact and the unwritten tail deterministically zero, so
// a reader attaching later sees no stale garbage.
func TestPartialWriteThenReopen(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := New(&lat, 1<<16)
	w := xpsim.NewCtx(0)

	prefix := bytes.Repeat([]byte{0x5A}, 1000) // not page aligned
	s.Write(w, PageSize, prefix)

	// "Reopen": a fresh reader context over the same space reads the
	// whole page the partial write touched.
	r := xpsim.NewCtx(0)
	page := make([]byte, PageSize)
	s.Read(r, PageSize, page)
	if !bytes.Equal(page[:1000], prefix) {
		t.Fatal("written prefix lost")
	}
	for i, b := range page[1000:] {
		if b != 0 {
			t.Fatalf("unwritten tail byte %d = %#x; want zero", 1000+i, b)
		}
	}

	// Never-written regions read fully zero too.
	far := make([]byte, 512)
	s.Read(r, 1<<15, far)
	if !bytes.Equal(far, make([]byte, 512)) {
		t.Fatal("unwritten region not zero")
	}
}

// TestZeroLengthAccess: empty reads and writes are no-ops — no panic, no
// page charge, no simulated cost.
func TestZeroLengthAccess(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := New(&lat, 4096)
	ctx := xpsim.NewCtx(0)
	s.Write(ctx, 100, nil)
	s.Read(ctx, 100, nil)
	if r, w := s.Pages(); r != 0 || w != 0 {
		t.Fatalf("zero-length access charged pages: r=%d w=%d", r, w)
	}
	if ctx.Cost.Ns() != 0 {
		t.Fatalf("zero-length access cost %dns", ctx.Cost.Ns())
	}
}

// TestPagesAccounting pins the page-counter arithmetic across aligned,
// sub-page, and straddling accesses.
func TestPagesAccounting(t *testing.T) {
	lat := xpsim.DefaultLatency()
	s := New(&lat, 1<<20)
	ctx := xpsim.NewCtx(0)

	s.Write(ctx, 0, make([]byte, PageSize))      // exactly one page
	s.Write(ctx, PageSize*2+100, []byte{1})      // sub-page: still one page
	s.Write(ctx, PageSize*4-8, make([]byte, 16)) // straddles two pages
	s.Read(ctx, PageSize*4-8, make([]byte, 16))  // straddles two pages

	r, w := s.Pages()
	if w != 4 {
		t.Fatalf("pages written = %d, want 4", w)
	}
	if r != 2 {
		t.Fatalf("pages read = %d, want 2", r)
	}
}
