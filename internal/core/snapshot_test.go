package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xpsim"
)

func TestSnapshotIsolation(t *testing.T) {
	s := newStore(t, Options{Name: "snap", NumVertices: 64, LogCapacity: 1 << 10,
		ArchiveThreshold: 8, ArchiveThreads: 2})
	first := []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 4, Dst: 1}}
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := s.Snapshot(ctx)
	if snap.Edges(Out) != 3 {
		t.Fatalf("snapshot edges = %d", snap.Edges(Out))
	}

	// Updates after the snapshot are invisible through it.
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 9}, {Src: 1, Dst: 10}}); err != nil {
		t.Fatal(err)
	}
	got, err := snap.NbrsOut(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("snapshot out(1) = %v, want {2,3}", got)
	}
	// The live view sees everything.
	if live := s.NbrsOut(ctx, 1, nil); !sameMultiset(live, []uint32{2, 3, 9, 10}) {
		t.Fatalf("live out(1) = %v", live)
	}
	// A fresh snapshot sees the new state.
	snap2 := s.Snapshot(ctx)
	got2, err := snap2.NbrsOut(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got2, []uint32{2, 3, 9, 10}) {
		t.Fatalf("snapshot2 out(1) = %v", got2)
	}
}

func TestSnapshotSurvivesFlush(t *testing.T) {
	// Flushing buffers to PMEM must not change what a snapshot sees:
	// order is preserved end to end.
	s := newStore(t, Options{Name: "snapf", NumVertices: 64, LogCapacity: 1 << 10,
		ArchiveThreshold: 8, ArchiveThreads: 2})
	if _, err := s.Ingest(gen.RMAT(6, 300, 31)); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := s.Snapshot(ctx)
	want := map[graph.VID][]uint32{}
	for v := graph.VID(0); v < 64; v++ {
		nbrs, err := snap.NbrsOut(ctx, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[v] = append([]uint32(nil), nbrs...)
	}
	if err := s.FlushAllVbufs(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(gen.RMAT(6, 200, 32)); err != nil {
		t.Fatal(err)
	}
	for v := graph.VID(0); v < 64; v++ {
		got, err := snap.NbrsOut(ctx, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(got, want[v]) {
			t.Fatalf("vertex %d: snapshot changed after flush+ingest: %v vs %v", v, got, want[v])
		}
	}
}

func TestSnapshotInvalidatedByCompaction(t *testing.T) {
	s := newStore(t, Options{Name: "snapc", NumVertices: 16, LogCapacity: 256,
		ArchiveThreshold: 4, ArchiveThreads: 2})
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := s.Snapshot(ctx)
	if err := s.CompactAdjs(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.NbrsOut(ctx, 1, nil); err == nil {
		t.Fatal("snapshot must be invalidated by compaction")
	}
}

// Property: a snapshot taken after a random ingest prefix always equals
// the reference built from exactly that prefix, regardless of how much
// more is ingested afterwards.
func TestSnapshotPrefixProperty(t *testing.T) {
	all := gen.RMAT(8, 2000, 33)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cut := 1 + rng.Intn(len(all)-1)
		m, h := testMachine()
		s, err := New(m, h, nil, Options{Name: "snapp",
			NumVertices: 256, LogCapacity: 1 << 11, ArchiveThreshold: 1 << 6, ArchiveThreads: 3})
		if err != nil {
			return false
		}
		if _, err := s.Ingest(all[:cut]); err != nil {
			return false
		}
		ctx := xpsim.NewCtx(0)
		snap := s.Snapshot(ctx)
		if _, err := s.Ingest(all[cut:]); err != nil {
			return false
		}
		ref := buildReference(all[:cut])
		for v := graph.VID(0); v < 256; v++ {
			got, err := snap.NbrsOut(ctx, v, nil)
			if err != nil || !sameMultiset(got, ref.out[v]) {
				return false
			}
			gotIn, err := snap.NbrsIn(ctx, v, nil)
			if err != nil || !sameMultiset(gotIn, ref.in[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
