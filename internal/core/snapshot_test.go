package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xpsim"
)

func TestSnapshotIsolation(t *testing.T) {
	s := newStore(t, Options{Name: "snap", NumVertices: 64, LogCapacity: 1 << 10,
		ArchiveThreshold: 8, ArchiveThreads: 2})
	first := []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 4, Dst: 1}}
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := s.Snapshot(ctx)
	defer snap.Close()
	if snap.Edges(Out) != 3 {
		t.Fatalf("snapshot edges = %d", snap.Edges(Out))
	}

	// Updates after the snapshot are invisible through it.
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 9}, {Src: 1, Dst: 10}}); err != nil {
		t.Fatal(err)
	}
	if got := snap.NbrsOut(ctx, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("snapshot out(1) = %v, want {2,3}", got)
	}
	// The live view sees everything.
	if live := s.NbrsOut(ctx, 1, nil); !sameMultiset(live, []uint32{2, 3, 9, 10}) {
		t.Fatalf("live out(1) = %v", live)
	}
	// A fresh snapshot sees the new state.
	snap2 := s.Snapshot(ctx)
	defer snap2.Close()
	if got2 := snap2.NbrsOut(ctx, 1, nil); !sameMultiset(got2, []uint32{2, 3, 9, 10}) {
		t.Fatalf("snapshot2 out(1) = %v", got2)
	}
}

func TestSnapshotSurvivesFlush(t *testing.T) {
	// Flushing buffers to PMEM must not change what a snapshot sees:
	// order is preserved end to end.
	s := newStore(t, Options{Name: "snapf", NumVertices: 64, LogCapacity: 1 << 10,
		ArchiveThreshold: 8, ArchiveThreads: 2})
	if _, err := s.Ingest(gen.RMAT(6, 300, 31)); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := s.Snapshot(ctx)
	defer snap.Close()
	want := map[graph.VID][]uint32{}
	for v := graph.VID(0); v < 64; v++ {
		want[v] = append([]uint32(nil), snap.NbrsOut(ctx, v, nil)...)
	}
	if err := s.FlushAllVbufs(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(gen.RMAT(6, 200, 32)); err != nil {
		t.Fatal(err)
	}
	for v := graph.VID(0); v < 64; v++ {
		if got := snap.NbrsOut(ctx, v, nil); !sameMultiset(got, want[v]) {
			t.Fatalf("vertex %d: snapshot changed after flush+ingest: %v vs %v", v, got, want[v])
		}
	}
}

func TestSnapshotSurvivesCompaction(t *testing.T) {
	// Compaction rewrites chains and resolves tombstones; registered
	// snapshots must keep answering with their pre-compaction view
	// (copy-on-invalidate fencing).
	s := newStore(t, Options{Name: "snapc", NumVertices: 16, LogCapacity: 256,
		ArchiveThreshold: 4, ArchiveThreads: 2})
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := s.Snapshot(ctx)
	defer snap.Close()

	// More records plus a deletion, then compact: the live store resolves
	// the tombstone in place, while the snapshot keeps its prefix.
	if err := s.AddEdges([]graph.Edge{{Src: 1, Dst: 5}, graph.Del(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.CompactAdjs(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := snap.NbrsOut(ctx, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("snapshot out(1) after compaction = %v, want {2,3}", got)
	}
	if live := s.NbrsOut(ctx, 1, nil); !sameMultiset(live, []uint32{3, 5}) {
		t.Fatalf("live out(1) after compaction = %v, want {3,5}", live)
	}
	// Repeated compaction of the same vertex stays stable.
	if err := s.CompactAdjs(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := snap.NbrsOut(ctx, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("snapshot out(1) after second compaction = %v, want {2,3}", got)
	}
}

func TestSnapshotVertexBornLater(t *testing.T) {
	// Regression: a vertex created after the snapshot was captured must
	// read as empty through the snapshot (and must not panic), even though
	// the live store has since grown its records slices past the
	// snapshot's captured length.
	s := newStore(t, Options{Name: "snapb", NumVertices: 4, LogCapacity: 256,
		ArchiveThreshold: 4, ArchiveThreads: 2})
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	snap := s.Snapshot(ctx)
	defer snap.Close()
	numV := snap.NumVertices()

	// Grow the store: vertex 100 is born after the capture.
	if _, err := s.Ingest([]graph.Edge{{Src: 100, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() <= numV {
		t.Fatalf("store did not grow: %d <= %d", s.NumVertices(), numV)
	}
	for _, v := range []graph.VID{100, numV, graph.VID(s.NumVertices()), 1 << 30} {
		if got := snap.NbrsOut(ctx, v, nil); len(got) != 0 {
			t.Fatalf("snapshot out(%d) = %v, want empty", v, got)
		}
		if got := snap.NbrsIn(ctx, v, nil); len(got) != 0 {
			t.Fatalf("snapshot in(%d) = %v, want empty", v, got)
		}
		if d := snap.OutDegree(v); d != 0 {
			t.Fatalf("snapshot OutDegree(%d) = %d, want 0", v, d)
		}
	}
	if snap.NumVertices() != numV {
		t.Fatalf("snapshot NumVertices changed: %d != %d", snap.NumVertices(), numV)
	}
	// The snapshot's pre-existing data is unaffected.
	if got := snap.NbrsOut(ctx, 1, nil); !sameMultiset(got, []uint32{2}) {
		t.Fatalf("snapshot out(1) = %v, want {2}", got)
	}
}

// Property: a snapshot taken after a random ingest prefix always equals
// the reference built from exactly that prefix, regardless of how much
// more is ingested afterwards.
func TestSnapshotPrefixProperty(t *testing.T) {
	all := gen.RMAT(8, 2000, 33)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cut := 1 + rng.Intn(len(all)-1)
		m, h := testMachine()
		s, err := New(m, h, nil, Options{Name: "snapp",
			NumVertices: 256, LogCapacity: 1 << 11, ArchiveThreshold: 1 << 6, ArchiveThreads: 3})
		if err != nil {
			return false
		}
		if _, err := s.Ingest(all[:cut]); err != nil {
			return false
		}
		ctx := xpsim.NewCtx(0)
		snap := s.Snapshot(ctx)
		if _, err := s.Ingest(all[cut:]); err != nil {
			return false
		}
		ref := buildReference(all[:cut])
		for v := graph.VID(0); v < 256; v++ {
			if got := snap.NbrsOut(ctx, v, nil); !sameMultiset(got, ref.out[v]) {
				return false
			}
			if gotIn := snap.NbrsIn(ctx, v, nil); !sameMultiset(gotIn, ref.in[v]) {
				return false
			}
		}
		snap.Close()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
