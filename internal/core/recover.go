package core

import (
	"fmt"

	"repro/internal/elog"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

// RecoveryReport summarizes a crash recovery.
type RecoveryReport struct {
	SimNs         int64 // simulated recovery time
	BlocksScanned int64 // adjacency blocks reloaded from PMEM
	Replayed      int64 // log edges replayed into fresh vertex buffers
	DedupSkipped  int64 // replayed records already found in PMEM (§III-B)
}

// Recover re-attaches to the PMEM of a crashed store and rebuilds all
// DRAM state: the adjacency arenas are scanned sequentially to reload the
// vertex index, then the edge-log window [flushing, head) is replayed into
// fresh vertex buffers, checking each record against the PMEM adjacency
// list to avoid duplicating edges whose buffers had already been flushed
// (the recovery scheme of §III-B / §V-D).
//
// opts must describe the same geometry the crashed store was created
// with (name, log capacity, NUMA mode, region sizes).
func Recover(machine *xpsim.Machine, heap *pmem.Heap, budget *mem.Budget, opts Options) (*Store, RecoveryReport, error) {
	opts = opts.withDefaults()
	if opts.Medium != MediumPMEM {
		return nil, RecoveryReport{}, fmt.Errorf("core: only PMEM stores are recoverable")
	}
	if opts.SSDOverflow > 0 {
		return nil, RecoveryReport{}, fmt.Errorf("core: SSD-tiered stores are not yet recoverable (extension prototype)")
	}
	if opts.Battery {
		// XPGraph-B's persistence domain includes DRAM (battery-backed):
		// a power failure does not lose the vertex buffers, so there is
		// nothing to replay — and the edge log may legitimately have
		// overwritten buffered-but-unflushed edges, so log replay would
		// be wrong as well as unnecessary (§IV-C).
		return nil, RecoveryReport{}, fmt.Errorf("core: battery-backed stores (XPGraph-B) keep DRAM across power loss; crash recovery does not apply")
	}
	s := &Store{
		opts:    opts,
		machine: machine,
		heap:    heap,
		budget:  budget,
		lat:     &machine.Lat,
	}
	if opts.NUMA == NUMASubgraph {
		s.nparts = machine.Sockets
	} else {
		s.nparts = 1
	}

	ctx := xpsim.NewCtx(xpsim.NodeUnbound)
	if err := s.mapMemories(ctx, true); err != nil {
		return nil, RecoveryReport{}, err
	}

	// Re-attach the edge log: its header and ring sit at deterministic
	// offsets inside the dedicated log region.
	logRegion, ok := s.heap.Get(opts.Name + "-elog")
	if !ok {
		return nil, RecoveryReport{}, fmt.Errorf("core: log region for %q not found", opts.Name)
	}
	hdr := alignUp(logRegion.UserStart(), xpsim.XPLineSize)
	base := alignUp(hdr+elog.HeaderBytes, xpsim.XPLineSize)
	var err error
	s.log, err = elog.Attach(ctx, logRegion, hdr, base, opts.Battery)
	if err != nil {
		return nil, RecoveryReport{}, err
	}

	s.initPool()
	s.delsUnknown = true // pre-crash tombstones cannot be re-discovered cheaply
	var rep RecoveryReport

	// Rebuild vertex-level DRAM state from the recovered arenas.
	maxV := opts.NumVertices
	for d := 0; d < 2; d++ {
		for _, g := range s.groups[d] {
			if n := g.adj.NumVertices(); n > maxV {
				maxV = n
			}
			rep.BlocksScanned += g.adj.Blocks()
		}
	}
	s.ensureVertices(maxV)
	for d := 0; d < 2; d++ {
		for p, g := range s.groups[d] {
			for v := graph.VID(0); v < g.adj.NumVertices(); v++ {
				if s.partOf(v) == p {
					s.records[d][v] += uint32(g.adj.Records(v))
				}
			}
		}
	}

	// Replay the window that may have lived in lost DRAM vertex buffers.
	// Some of these edges already reached PMEM through buffer-full
	// flushes before the crash; to avoid duplicating them (§III-B) each
	// window vertex's stored adjacency is scanned once and matching
	// records consume "skip credits" against the window's occurrences.
	replay := s.log.Read(ctx, s.log.Flushed(), s.log.Head(), nil)
	s.ensureVertices(graph.MaxVID(replay) + 1)
	scratch := make([]uint32, 0, opts.maxBufNeighbors())
	for d := 0; d < 2; d++ {
		need := make(map[uint64]int32, len(replay))
		for _, e := range replay {
			v, nbr := replayRecord(Direction(d), e)
			need[packVN(v, nbr)]++
		}
		// Scan each window vertex once; existing records convert window
		// occurrences into skips.
		skip := make(map[uint64]int32)
		seen := make(map[graph.VID]bool)
		var nbrScratch []uint32
		for _, e := range replay {
			v, _ := replayRecord(Direction(d), e)
			if seen[v] {
				continue
			}
			seen[v] = true
			nbrScratch = s.groups[d][s.partOf(v)].adj.Neighbors(ctx, v, nbrScratch[:0])
			for _, nbr := range nbrScratch {
				k := packVN(v, nbr)
				if need[k] > skip[k] {
					skip[k]++
				}
			}
		}
		for _, e := range replay {
			v, nbr := replayRecord(Direction(d), e)
			k := packVN(v, nbr)
			if skip[k] > 0 {
				skip[k]--
				rep.DedupSkipped++
				continue
			}
			if err := s.bufferInsert(ctx, 0, Direction(d), s.partOf(v), v, nbr, &scratch); err != nil {
				return nil, RecoveryReport{}, err
			}
		}
	}
	rep.Replayed = int64(len(replay))
	s.log.MarkBuffered(ctx, s.log.Head())
	rep.SimNs = ctx.Cost.Ns()
	return s, rep, nil
}

// replayRecord extracts the (vertex, neighbor-record) pair an edge
// contributes in direction d.
func replayRecord(d Direction, e graph.Edge) (graph.VID, uint32) {
	if d == Out {
		return e.Src, e.Dst
	}
	return e.Target(), e.Src | (e.Dst & graph.DelFlag)
}

func packVN(v graph.VID, nbr uint32) uint64 { return uint64(v)<<32 | uint64(nbr) }

func alignUp(x, a int64) int64 { return (x + a - 1) / a * a }
