package core

import (
	"fmt"

	"repro/internal/elog"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

// RecoveryReport summarizes a crash recovery.
type RecoveryReport struct {
	SimNs         int64 // simulated recovery time
	BlocksScanned int64 // adjacency blocks reloaded from PMEM
	Replayed      int64 // log edges replayed into fresh vertex buffers
	DedupSkipped  int64 // always 0: the slot protocol makes replay exact (kept for report compatibility)
}

// Recover re-attaches to the PMEM of a crashed store and rebuilds all
// DRAM state: the edge log is attached first (its flushed cursor carries
// the authoritative count slot), the adjacency arenas are scanned
// sequentially to reload the vertex index — completing any interrupted
// compaction via its journal — and the log window [flushed, head) is
// replayed into fresh vertex buffers (the recovery scheme of §III-B /
// §V-D).
//
// The replay is a straight re-insertion with no content dedup: counts
// acknowledged under the selected slot cover exactly the edges below the
// flushed cursor, so nothing in the window is visible in the recovered
// adjacency lists and nothing below it is missing. (The seed's
// content-based dedup was both lossy — a legitimately duplicated edge in
// the window was skipped against a single stored copy — and unsound
// across compaction, which rewrites the stored records the dedup matched
// against.)
//
// opts must describe the same geometry the crashed store was created
// with (name, log capacity, NUMA mode, region sizes); mismatches are
// reported as errors rather than producing a silently wrong store.
func Recover(machine *xpsim.Machine, heap *pmem.Heap, budget *mem.Budget, opts Options) (*Store, RecoveryReport, error) {
	opts = opts.withDefaults()
	if opts.Medium != MediumPMEM {
		return nil, RecoveryReport{}, fmt.Errorf("core: only PMEM stores are recoverable")
	}
	if opts.SSDOverflow > 0 {
		return nil, RecoveryReport{}, fmt.Errorf("core: SSD-tiered stores are not yet recoverable (extension prototype)")
	}
	if opts.Battery {
		// XPGraph-B's persistence domain includes DRAM (battery-backed):
		// a power failure does not lose the vertex buffers, so there is
		// nothing to replay — and the edge log may legitimately have
		// overwritten buffered-but-unflushed edges, so log replay would
		// be wrong as well as unnecessary (§IV-C).
		return nil, RecoveryReport{}, fmt.Errorf("core: battery-backed stores (XPGraph-B) keep DRAM across power loss; crash recovery does not apply")
	}
	if opts.RelaxedDurability {
		return nil, RecoveryReport{}, fmt.Errorf("core: relaxed-durability stores skip the ordering protocol recovery depends on; they are not recoverable")
	}
	s := &Store{
		opts:    opts,
		machine: machine,
		heap:    heap,
		budget:  budget,
		lat:     &machine.Lat,
		tracer:  opts.Tracer,
	}
	if opts.NUMA == NUMASubgraph {
		s.nparts = machine.Sockets
	} else {
		s.nparts = 1
	}

	ctx := xpsim.NewCtx(xpsim.NodeUnbound)

	// Re-attach the edge log first: its header and ring sit at
	// deterministic offsets inside the dedicated log region, and its
	// flushed cursor selects the adjacency count slot the arena scans
	// must trust.
	logRegion, ok := heap.Get(opts.Name + "-elog")
	if !ok {
		return nil, RecoveryReport{}, fmt.Errorf("core: log region for %q not found", opts.Name)
	}
	hdr := alignUp(logRegion.UserStart(), xpsim.XPLineSize)
	base := alignUp(hdr+elog.HeaderBytes, xpsim.XPLineSize)
	var err error
	s.log, err = elog.AttachWith(ctx, logRegion, hdr, base,
		elog.Config{Battery: opts.Battery, Checksums: opts.MediaGuard})
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	if s.log.Cap() != opts.LogCapacity {
		return nil, RecoveryReport{}, fmt.Errorf("core: log capacity is %d edges, options say %d (wrong geometry)", s.log.Cap(), opts.LogCapacity)
	}
	s.logMem = logRegion

	if opts.MediaGuard {
		// Load the persisted quarantine before the arenas are scanned:
		// mapMemories must know which block spans to keep off the free
		// lists, and the damaged/unrecoverable vertex sets survive the
		// crash with it.
		if err := s.initMediaGuard(ctx, true); err != nil {
			return nil, RecoveryReport{}, err
		}
	}

	if err := s.mapMemories(ctx, s.log.AckSlot()); err != nil {
		return nil, RecoveryReport{}, err
	}

	s.initPool()
	s.delsUnknown = true // pre-crash tombstones cannot be re-discovered cheaply
	var rep RecoveryReport

	// Rebuild vertex-level DRAM state from the recovered arenas.
	maxV := opts.NumVertices
	for d := 0; d < 2; d++ {
		for _, g := range s.groups[d] {
			if n := g.adj.NumVertices(); n > maxV {
				maxV = n
			}
			rep.BlocksScanned += g.adj.Blocks()
		}
	}
	s.ensureVertices(maxV)
	for d := 0; d < 2; d++ {
		for p, g := range s.groups[d] {
			for v := graph.VID(0); v < g.adj.NumVertices(); v++ {
				if s.partOf(v) == p {
					s.records[d][v] += uint32(g.adj.Records(v))
				}
			}
		}
	}
	if opts.MediaGuard {
		// Vertices whose media payload failed checksum verification while
		// the arena scan rebuilt the CRC mirrors join the damaged set; the
		// next scrub repairs or quarantines them.
		for d := 0; d < 2; d++ {
			for _, g := range s.groups[d] {
				for _, v := range g.adj.Suspects() {
					s.markDamaged(Direction(d), v)
				}
			}
		}
	}

	// Replay the window that may have lived in lost DRAM vertex buffers.
	// Every record in it is invisible in the recovered adjacency lists
	// (its count was never acknowledged under the selected slot), so each
	// edge is re-inserted exactly once.
	replay := s.log.Read(ctx, s.log.Flushed(), s.log.Head(), nil)
	s.ensureVertices(graph.MaxVID(replay) + 1)
	scratch := make([]uint32, 0, opts.maxBufNeighbors())
	for d := 0; d < 2; d++ {
		for _, e := range replay {
			v, nbr := replayRecord(Direction(d), e)
			if err := s.bufferInsert(ctx, 0, Direction(d), s.partOf(v), v, nbr, &scratch); err != nil {
				return nil, RecoveryReport{}, err
			}
		}
	}
	rep.Replayed = int64(len(replay))
	s.log.MarkBuffered(ctx, s.log.Head())

	if opts.Props {
		// Re-attach the property columns last: their CRC-guarded blocks
		// replay into the DRAM index, truncating a torn tail (unflushed
		// records roll back to defaults) and flagging unrecoverable
		// mid-log damage so typed reads fail closed instead of serving
		// silently-default labels.
		if err := s.attachProps(ctx, true); err != nil {
			return nil, RecoveryReport{}, err
		}
	}
	rep.SimNs = ctx.Cost.Ns()
	s.emitSpan("recover", obs.LaneRecovery, rep.SimNs)
	return s, rep, nil
}

// replayRecord extracts the (vertex, neighbor-record) pair an edge
// contributes in direction d.
func replayRecord(d Direction, e graph.Edge) (graph.VID, uint32) {
	if d == Out {
		return e.Src, e.Dst
	}
	return e.Target(), e.Src | (e.Dst & graph.DelFlag)
}

func alignUp(x, a int64) int64 { return (x + a - 1) / a * a }
