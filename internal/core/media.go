package core

// Media-error tolerance (Options.MediaGuard): checksummed self-describing
// blocks, a scrubber, a persisted bad-block quarantine, and degraded-mode
// health reporting.
//
// Detection is layered. Every adjacency block payload and edge-log record
// carries a CRC32-C (stored per count-acknowledgment slot for adjacency
// blocks, in a per-record strip for the log), and every media read on the
// checked paths goes through xpsim's uncorrectable-error model, so a read
// of a bad line surfaces as a typed *xpsim.MediaError instead of silently
// wrong bytes. Repair is scrub-driven: Scrub verifies every chain on the
// simulated clock, rebuilds damaged vertices from the SSD edge archive
// (preferred: it holds the full accepted stream) or the resident edge-log
// window (exact only when every one of the vertex's records is still
// resident), rewrites them onto fresh blocks with adj.ReplaceChain, and
// quarantines the old spans so the arena never recycles them. The
// quarantine — spans plus the damaged/unrecoverable vertex sets — is
// persisted in its own PMEM region and reloaded by Recover, so a crash
// cannot resurrect a bad block into the free lists.
//
// Health is a three-state machine: ok → degraded (detected damage awaiting
// repair, or vertices no rebuild source could restore) → readonly (a whole
// NUMA node failed; ingestion would write into the void, so it is refused,
// while reads on healthy partitions keep answering).

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ssd"
	"repro/internal/xpsim"
)

var coreCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// UnrecoverableError reports a read of a vertex whose adjacency data was
// damaged by media errors and could not be rebuilt from any source. The
// serving layer maps it to a distinct 503 instead of returning wrong data.
type UnrecoverableError struct {
	Dir Direction
	V   graph.VID
}

func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("core: vertex %d (%s) is quarantined and unrecoverable", e.V, dirName(int(e.Dir)))
}

// ---- persisted quarantine ----

const (
	quarMagic       = uint64(0x5850_5155_4152_0001) // "XPQUAR" v1
	quarRegionBytes = int64(64 << 10)
)

// initMediaGuard maps the quarantine region (creating or re-attaching)
// and sets up the SSD edge archive. On the recovery path it runs before
// mapMemories so the loaded block spans can fence the arena scans.
func (s *Store) initMediaGuard(ctx *xpsim.Ctx, reattach bool) error {
	name := s.opts.Name + "-quar"
	if reattach {
		r, ok := s.heap.Get(name)
		if !ok {
			return fmt.Errorf("core: quarantine region %q not found: the crashed store was not MediaGuard-enabled", name)
		}
		s.quarMem = r
		s.loadQuarantine(ctx)
	} else {
		r, err := s.heap.Map(name, quarRegionBytes, pmem.Placement{Kind: pmem.Interleave})
		if err != nil {
			return err
		}
		s.quarMem = r
		if err := s.persistQuarantine(ctx); err != nil {
			return err
		}
	}

	sp := s.opts.Archive
	if sp == nil && s.opts.ArchiveSSDBytes > 0 {
		sp = ssd.New(s.lat, s.opts.ArchiveSSDBytes)
	}
	if sp != nil {
		a, err := openArchive(ctx, sp)
		if err != nil {
			return err
		}
		s.arch = a
		if reattach {
			s.archiveCatchUp(ctx)
		}
	}
	return nil
}

func (s *Store) quarBase() int64 {
	return alignUp(s.quarMem.UserStart(), xpsim.XPLineSize)
}

// persistQuarantine writes the quarantine state — block spans plus the
// damaged/unrecoverable vertex sets — as one checksummed record:
// magic, {len,crc} word, payload. The payload CRC makes a torn or
// media-damaged record read back as empty (conservative: the next scrub
// rediscovers), never as garbage spans.
func (s *Store) persistQuarantine(ctx *xpsim.Ctx) error {
	var buf []byte
	putU64 := func(x uint64) {
		buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
			byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
	}
	var nSpans uint64
	for d := 0; d < 2; d++ {
		for _, m := range s.quarSpans[d] {
			nSpans += uint64(len(m))
		}
	}
	putU64(nSpans)
	for d := 0; d < 2; d++ {
		for p, m := range s.quarSpans[d] {
			for off, bytes := range m {
				putU64(uint64(d)<<56 | uint64(p)<<48 | uint64(off))
				putU64(uint64(bytes))
			}
		}
	}
	for _, set := range []*[2]map[graph.VID]struct{}{&s.damaged, &s.unrec} {
		var n uint64
		for d := 0; d < 2; d++ {
			n += uint64(len(set[d]))
		}
		putU64(n)
		for d := 0; d < 2; d++ {
			for v := range set[d] {
				putU64(uint64(d)<<32 | uint64(v))
			}
		}
	}

	base := s.quarBase()
	if base+16+int64(len(buf)) > s.quarMem.Size() {
		return fmt.Errorf("core: quarantine state (%d bytes) exceeds the quarantine region", len(buf))
	}
	s.quarMem.Write(ctx, base+16, buf)
	crc := crc32.Checksum(buf, coreCastagnoli)
	mem.WriteU64(s.quarMem, ctx, base+8, uint64(uint32(len(buf)))|uint64(crc)<<32)
	mem.WriteU64(s.quarMem, ctx, base, quarMagic)
	s.quarMem.Flush(ctx, base, 16+int64(len(buf)))
	return nil
}

// loadQuarantine reads the persisted quarantine back. Any damage to the
// record itself — bad magic, CRC mismatch, an uncorrectable line under it
// — degrades to an empty quarantine rather than an error: quarantined
// blocks were rewritten with valid dead headers before they were
// quarantined, so losing the span list can only re-expose bad lines to
// recycling, where the next checked read or scrub re-detects them.
func (s *Store) loadQuarantine(ctx *xpsim.Ctx) {
	base := s.quarBase()
	var hdr [16]byte
	if mem.ReadChecked(s.quarMem, ctx, base, hdr[:]) != nil {
		return
	}
	if leU64(hdr[:8]) != quarMagic {
		return
	}
	word := leU64(hdr[8:])
	ln := int64(uint32(word))
	crc := uint32(word >> 32)
	if ln < 0 || base+16+ln > s.quarMem.Size() {
		return
	}
	buf := make([]byte, ln)
	if mem.ReadChecked(s.quarMem, ctx, base+16, buf) != nil {
		return
	}
	if crc32.Checksum(buf, coreCastagnoli) != crc {
		return
	}

	pos := 0
	next := func() (uint64, bool) {
		if pos+8 > len(buf) {
			return 0, false
		}
		x := leU64(buf[pos:])
		pos += 8
		return x, true
	}
	nSpans, ok := next()
	if !ok {
		return
	}
	for i := uint64(0); i < nSpans; i++ {
		key, ok1 := next()
		bytes, ok2 := next()
		if !ok1 || !ok2 {
			return
		}
		d := int(key >> 56)
		p := int(key >> 48 & 0xFF)
		off := int64(key & (1<<48 - 1))
		if d > 1 || p >= s.nparts {
			continue
		}
		s.noteQuarSpan(d, p, off, int64(bytes))
	}
	for _, set := range []*[2]map[graph.VID]struct{}{&s.damaged, &s.unrec} {
		n, ok := next()
		if !ok {
			return
		}
		for i := uint64(0); i < n; i++ {
			key, ok := next()
			if !ok {
				return
			}
			d := int(key >> 32)
			if d > 1 {
				continue
			}
			if set[d] == nil {
				set[d] = make(map[graph.VID]struct{})
			}
			set[d][graph.VID(uint32(key))] = struct{}{}
		}
	}
}

func leU64(p []byte) uint64 {
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func (s *Store) noteQuarSpan(d, p int, off, bytes int64) {
	if s.quarSpans[d] == nil {
		s.quarSpans[d] = make([]map[int64]int64, s.nparts)
	}
	if s.quarSpans[d][p] == nil {
		s.quarSpans[d][p] = make(map[int64]int64)
	}
	s.quarSpans[d][p][off] = bytes
}

func (s *Store) markDamaged(d Direction, v graph.VID) {
	s.mediaMu.Lock()
	defer s.mediaMu.Unlock()
	if s.damaged[d] == nil {
		s.damaged[d] = make(map[graph.VID]struct{})
	}
	s.damaged[d][v] = struct{}{}
}

func (s *Store) markUnrec(d Direction, v graph.VID) {
	s.mediaMu.Lock()
	defer s.mediaMu.Unlock()
	if s.unrec[d] == nil {
		s.unrec[d] = make(map[graph.VID]struct{})
	}
	s.unrec[d][v] = struct{}{}
}

// clearDamage removes v from the damaged and unrecoverable sets (the
// scrubber verified or rebuilt its chain).
func (s *Store) clearDamage(d Direction, v graph.VID) {
	s.mediaMu.Lock()
	defer s.mediaMu.Unlock()
	delete(s.damaged[d], v)
	delete(s.unrec[d], v)
}

// isUnrec reports whether v is quarantined as unrecoverable in d.
func (s *Store) isUnrec(d Direction, v graph.VID) bool {
	s.mediaMu.RLock()
	defer s.mediaMu.RUnlock()
	_, bad := s.unrec[d][v]
	return bad
}

// noteReadDamage records a failed checked read as detected damage, so
// Health flips to degraded the moment wrong data is first refused — an
// operator watching /v1/healthz sees the problem without waiting for a
// scrub. Dead-device errors are not chain damage (the node, not the
// block, is the problem) and readonly state already reports them.
func (s *Store) noteReadDamage(d Direction, v graph.VID, err error) {
	var me *xpsim.MediaError
	if errors.As(err, &me) && me.Line < 0 {
		return
	}
	s.markDamaged(d, v)
}

// ---- SSD edge archive ----

// archive tees every accepted edge onto a simulated SSD namespace: a
// persisted count at a fixed offset, then the raw edge records. It is the
// scrubber's rebuild source of last resort — unlike the circular edge
// log, it never rotates records out.
type archive struct {
	sp   *ssd.Space
	hdr  int64 // persisted edge count (u64)
	base int64 // edge records
	cap  int64 // capacity in edges
	cnt  int64
	full bool
}

const (
	archHdrOff  = 64  // first 64-aligned offset past the namespace header
	archBaseOff = 128 // records start (64-aligned past the count)
)

// openArchive initializes or re-attaches the archive layout on sp. The
// layout is deterministic (count at 64, records at 128), so attach just
// reads the count back; a fresh namespace reads zero from its zeroed
// store, which is exactly right.
func openArchive(ctx *xpsim.Ctx, sp *ssd.Space) (*archive, error) {
	a := &archive{sp: sp, hdr: archHdrOff, base: archBaseOff}
	a.cap = (sp.Size() - archBaseOff) / graph.EdgeBytes
	if a.cap <= 0 {
		return nil, fmt.Errorf("core: archive SSD of %d bytes is too small", sp.Size())
	}
	a.cnt = int64(mem.ReadU64(sp, ctx, a.hdr))
	if a.cnt < 0 || a.cnt > a.cap {
		return nil, fmt.Errorf("core: archive count %d exceeds capacity %d (corrupt archive)", a.cnt, a.cap)
	}
	return a, nil
}

// tee appends edges to the archive. Once the namespace fills, the archive
// stops (full) and can no longer vouch for completeness, so the scrubber
// ignores it.
func (a *archive) tee(ctx *xpsim.Ctx, edges []graph.Edge) {
	if a.full || len(edges) == 0 {
		return
	}
	if a.cnt+int64(len(edges)) > a.cap {
		a.full = true
		return
	}
	a.sp.Write(ctx, a.base+a.cnt*graph.EdgeBytes, graph.EncodeEdges(edges))
	a.cnt += int64(len(edges))
	mem.WriteU64(a.sp, ctx, a.hdr, uint64(a.cnt))
}

// collect replays the whole archive and extracts vertex v's raw record
// stream in direction d.
func (a *archive) collect(ctx *xpsim.Ctx, d Direction, v graph.VID) []uint32 {
	const chunk = 8192 // edges per read
	var recs []uint32
	buf := make([]byte, chunk*graph.EdgeBytes)
	for at := int64(0); at < a.cnt; at += chunk {
		n := a.cnt - at
		if n > chunk {
			n = chunk
		}
		p := buf[:n*graph.EdgeBytes]
		a.sp.Read(ctx, a.base+at*graph.EdgeBytes, p)
		for i := int64(0); i < n; i++ {
			e := graph.DecodeEdge(p[i*graph.EdgeBytes:])
			if vv, nbr := replayRecord(d, e); vv == v {
				recs = append(recs, nbr)
			}
		}
	}
	return recs
}

// archiveCatchUp re-tees edges that reached the log but not the archive
// before a crash (the tee follows the log append, so the archive count
// can trail the head by at most the in-flight chunk). Edges that have
// already rotated out of the ring cannot be recovered; the archive then
// stays permanently incomplete and is disabled.
func (s *Store) archiveCatchUp(ctx *xpsim.Ctx) {
	a := s.arch
	head := s.log.Head()
	if a.cnt >= head {
		return
	}
	if head-a.cnt > s.log.Cap() || a.full {
		a.full = true
		return
	}
	missing := s.log.Read(ctx, a.cnt, head, nil)
	a.tee(ctx, missing)
}

// Archive exposes the SSD edge archive namespace (nil when disabled), so
// recovery can re-attach it via Options.Archive — the simulated SSD
// survives a machine crash.
func (s *Store) Archive() *ssd.Space {
	if s.arch == nil {
		return nil
	}
	return s.arch.sp
}

// ---- health ----

// HealthState is the store's degraded-mode state machine.
type HealthState int

const (
	// HealthOK: no detected damage, all devices answering.
	HealthOK HealthState = iota
	// HealthDegraded: detected damage awaiting repair, or vertices no
	// rebuild source could restore. Reads of healthy data keep working;
	// reads touching unrecoverable data fail typed.
	HealthDegraded
	// HealthReadonly: a whole NUMA node failed. Ingestion is refused
	// (writes would land on a dead device); reads on healthy partitions
	// keep answering.
	HealthReadonly
)

func (h HealthState) String() string {
	switch h {
	case HealthDegraded:
		return "degraded"
	case HealthReadonly:
		return "readonly"
	default:
		return "ok"
	}
}

// Health is the store's media-health summary.
type Health struct {
	State                 HealthState
	DamagedVertices       int
	UnrecoverableVertices int
	QuarantinedSpans      int
	QuarantinedBytes      int64
	DeadNodes             []int
	UELines               int // uncorrectable lines currently marked in the fault model
}

// Health reports the current media-health state. Without MediaGuard the
// store still reports dead NUMA nodes (the fault is machine-level), but
// damage detection is off, so damaged counts stay zero.
func (s *Store) Health() Health {
	var h Health
	s.mediaMu.RLock()
	for d := 0; d < 2; d++ {
		h.DamagedVertices += len(s.damaged[d])
		h.UnrecoverableVertices += len(s.unrec[d])
	}
	s.mediaMu.RUnlock()
	for d := 0; d < 2; d++ {
		for _, m := range s.quarSpans[d] {
			h.QuarantinedSpans += len(m)
			for _, b := range m {
				h.QuarantinedBytes += b
			}
		}
	}
	if f := s.machine.Faults(); f != nil {
		h.DeadNodes = f.DeadNodes()
		h.UELines = f.UECount()
	}
	switch {
	case len(h.DeadNodes) > 0:
		h.State = HealthReadonly
	case h.DamagedVertices > 0 || h.UnrecoverableVertices > 0:
		h.State = HealthDegraded
	default:
		h.State = HealthOK
	}
	return h
}

// ---- checked reads ----

// NbrsChecked is Nbrs with media-error detection: adjacency blocks are
// read through the checked path (UE lines and checksum mismatches error
// instead of returning scrambled bytes), and quarantined-unrecoverable
// vertices fail fast with *UnrecoverableError. DRAM vertex buffers need
// no checking — the error model covers persistent media only.
func (s *Store) NbrsChecked(ctx *xpsim.Ctx, d Direction, v graph.VID, dst []uint32) ([]uint32, error) {
	if v >= s.NumVertices() {
		return dst, nil
	}
	if s.isUnrec(d, v) {
		return dst, &UnrecoverableError{Dir: d, V: v}
	}
	start := len(dst)
	dst, err := s.groups[d][s.partOf(v)].adj.NeighborsChecked(ctx, v, dst)
	if err != nil {
		s.noteReadDamage(d, v, err)
		return dst[:start], err
	}
	dst = s.nbrsBufRaw(ctx, d, v, dst)
	return resolveInPlace(dst, start), nil
}

// MediaLine locates one XPLine on the simulated machine.
type MediaLine struct {
	Node int
	Line int64
}

// VertexMediaLines reports the machine lines backing v's adjacency chain
// in direction d (MediaGuard PMEM stores; nil otherwise). Fault-injection
// harnesses use it to aim uncorrectable-error injection at lines that
// hold real graph data instead of guessing offsets.
func (s *Store) VertexMediaLines(d Direction, v graph.VID) []MediaLine {
	if !s.opts.MediaGuard || v >= s.NumVertices() {
		return nil
	}
	g := s.groups[d][s.partOf(v)]
	r, ok := g.adj.Mem().(*pmem.Region)
	if !ok {
		return nil
	}
	var out []MediaLine
	for _, span := range g.adj.ChainSpans(v) {
		for off := span[0]; off < span[0]+span[1]; off += xpsim.XPLineSize {
			node, line := r.LineAt(off)
			out = append(out, MediaLine{Node: node, Line: line})
		}
	}
	return out
}

// PropMediaLines reports the machine lines backing the written property
// column blocks, one per block in physical order (MediaGuard stores with
// Options.Props; nil otherwise). Like VertexMediaLines, it exists so
// fault-injection harnesses can aim UEs at live column data.
func (s *Store) PropMediaLines() []MediaLine {
	if !s.opts.MediaGuard || s.props == nil {
		return nil
	}
	r, ok := s.heap.Get(s.opts.Name + "-prop")
	if !ok {
		return nil
	}
	var out []MediaLine
	for _, off := range s.props.BlockOffsets() {
		node, line := r.LineAt(off)
		out = append(out, MediaLine{Node: node, Line: line})
	}
	return out
}

// ---- scrubbing ----

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	VerticesScanned  int64
	Damaged          int64 // vertices found with corrupt or unreadable chains
	Repaired         int64
	Unrecoverable    int64 // no rebuild source covered the vertex
	SpansQuarantined int64
	BytesQuarantined int64
	LogBadRecords    int64 // edge-log window records failing CRC or unreadable
	// Property-column counters (Options.Props stores; see internal/prop).
	PropBlocksBad      int64 // column blocks failing checksum or unreadable
	PropBlocksRebuilt  int64 // rebuilt as patch blocks from the DRAM mirror
	PropUnrecoverable  int64 // no mirror or log full: typed reads fail closed
	PropBlocksScrubbed int64
	SimNs              int64
}

// ScrubStats accumulates scrub activity across runs (for metrics).
type ScrubStats struct {
	Runs             int64
	Damaged          int64
	Repaired         int64
	Unrecoverable    int64
	SpansQuarantined int64
	LogBadRecords    int64
}

// ScrubStats reports the accumulated scrub counters.
func (s *Store) ScrubStats() ScrubStats { return s.scrubStats }

// Scrub walks the heap on the simulated clock, verifies every adjacency
// chain against its checksums, rebuilds damaged vertices from the SSD
// edge archive or the resident edge-log window, and quarantines the
// replaced spans. It requires MediaGuard and must be externally ordered
// against ingestion and reads (the server runs it under the exclusive
// state lock).
//
// Partitions on dead NUMA nodes are skipped — there is no device to
// verify or rewrite; their damage is re-examined once the node revives.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	if !s.opts.MediaGuard {
		return rep, fmt.Errorf("core: scrubbing requires Options.MediaGuard")
	}
	// Stage and flush everything first: after a full flush the acked
	// chains are the complete authority for every accepted record, which
	// is what makes count comparisons against rebuild sources sound.
	if err := s.BufferAllEdges(); err != nil {
		return rep, err
	}
	if err := s.FlushAllVbufs(); err != nil {
		return rep, err
	}
	ctx := xpsim.NewCtx(xpsim.NodeUnbound)

	badLog := s.log.VerifyWindow(ctx)
	rep.LogBadRecords = int64(len(badLog))

	deadNodes := make(map[int]bool)
	if f := s.machine.Faults(); f != nil {
		for _, n := range f.DeadNodes() {
			deadNodes[n] = true
		}
	}

	for d := 0; d < 2; d++ {
		for p, g := range s.groups[d] {
			if deadNodes[g.node] {
				continue
			}
			for v := graph.VID(0); v < g.adj.NumVertices(); v++ {
				if s.partOf(v) != p {
					continue
				}
				rep.VerticesScanned++
				if g.adj.VerifyChain(ctx, v) == nil {
					s.clearDamage(Direction(d), v)
					continue
				}
				rep.Damaged++
				s.markDamaged(Direction(d), v)
				recs, ok := s.rebuildRecords(ctx, Direction(d), v, len(badLog) == 0)
				if !ok {
					s.markUnrec(Direction(d), v)
					rep.Unrecoverable++
					continue
				}
				// The rewrite destroys the damaged chain; fence live
				// snapshots first (their view of v is already damaged, so
				// the freeze records an error for checked readers).
				for _, sn := range s.liveSnapshots() {
					sn.freezeVertex(ctx, v)
				}
				// Blocks are 64-byte aligned but UEs poison whole 256-byte
				// XPLines, so a replacement can land on the same bad line
				// as the chain it replaces (or decay can strike it). Retry
				// a few times — each failed attempt quarantines its spans
				// and the allocator moves past them; a vertex still bad
				// after the attempts stays damaged for the next pass.
				repaired := false
				for attempt := 0; attempt < 4; attempt++ {
					spans, err := g.adj.ReplaceChain(ctx, v, recs)
					if err != nil {
						s.markUnrec(Direction(d), v)
						rep.Unrecoverable++
						break
					}
					for _, span := range spans {
						s.noteQuarSpan(d, p, span[0], span[1])
						rep.SpansQuarantined++
						rep.BytesQuarantined += span[1]
					}
					s.records[d][v] = uint32(g.adj.Records(v))
					if g.adj.VerifyChain(ctx, v) == nil {
						repaired = true
						break
					}
				}
				if !repaired {
					continue
				}
				s.clearDamage(Direction(d), v)
				rep.Repaired++
			}
		}
	}

	if s.props != nil {
		// The property columns scrub on the same pass: bad blocks are
		// re-published as patch blocks from the DRAM mirror and the
		// damaged lines retired; a block with no mirror leaves the layer
		// damaged, and checked property reads fail instead of serving
		// silently-default values.
		pr, err := s.props.Scrub(ctx)
		if err != nil {
			return rep, err
		}
		rep.PropBlocksScrubbed = pr.BlocksScanned
		rep.PropBlocksBad = pr.BadBlocks
		rep.PropBlocksRebuilt = pr.Rebuilt
		rep.PropUnrecoverable = pr.Unrecoverable
	}

	s.persistBarrier(ctx)
	if err := s.persistQuarantine(ctx); err != nil {
		return rep, err
	}
	s.persistBarrier(ctx)

	rep.SimNs = ctx.Cost.Ns()
	s.scrubStats.Runs++
	s.scrubStats.Damaged += rep.Damaged
	s.scrubStats.Repaired += rep.Repaired
	s.scrubStats.Unrecoverable += rep.Unrecoverable
	s.scrubStats.SpansQuarantined += rep.SpansQuarantined
	s.scrubStats.LogBadRecords += rep.LogBadRecords
	s.emitSpan("scrub", obs.LaneRecovery, rep.SimNs)
	return rep, nil
}

// rebuildRecords reconstructs vertex v's record stream in direction d,
// preferring the SSD archive (complete whenever its count matches the log
// head: every accepted edge was teed) and falling back to the resident
// edge-log window (exact only when the window verified clean and holds
// every one of v's raw records). Returns ok=false when neither source can
// vouch for completeness — a partial rebuild would be silently wrong data,
// the one thing this subsystem exists to prevent.
func (s *Store) rebuildRecords(ctx *xpsim.Ctx, d Direction, v graph.VID, logOK bool) ([]uint32, bool) {
	if s.arch != nil && !s.arch.full && s.arch.cnt == s.log.Head() {
		// The archive holds the raw stream; resolve tombstones the same
		// way compaction does (the rebuilt chain is a resolved rewrite).
		recs := s.arch.collect(ctx, d, v)
		return resolveInPlace(recs, 0), true
	}
	if logOK {
		lo := s.log.Head() - s.log.Cap()
		if lo < 0 {
			lo = 0
		}
		edges := s.log.Read(ctx, lo, s.log.Head(), nil)
		var recs []uint32
		for _, e := range edges {
			if vv, nbr := replayRecord(d, e); vv == v {
				recs = append(recs, nbr)
			}
		}
		if len(recs) == int(s.records[d][v]) {
			return recs, true
		}
	}
	return nil, false
}
