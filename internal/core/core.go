package core
