package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mempool"
	"repro/internal/xpsim"
)

// Snapshot is a consistent point-in-time view of the graph. Because both
// the PMEM adjacency chains and the DRAM vertex buffers are append-only
// per vertex (flushes preserve order), capturing today's per-vertex record
// counts is enough: a snapshot query returns exactly the first `count`
// records of each vertex's stream, no matter how many updates arrive
// later. This is the role snapshot metadata plays in GraphOne (§II-B);
// XPGraph's hybrid store supports it the same way.
//
// Compaction rewrites chains and resolves tombstones in place, so it
// invalidates outstanding snapshots; snapshot queries detect this through
// a store generation counter and report an error.
type Snapshot struct {
	store   *Store
	gen     uint64
	records [2][]uint32
}

// Snapshot captures the current view. O(V) DRAM copy, no PMEM traffic —
// the same cost class as GraphOne's per-epoch snapshot metadata.
func (s *Store) Snapshot(ctx *xpsim.Ctx) *Snapshot {
	snap := &Snapshot{store: s, gen: s.compactGen}
	for d := 0; d < 2; d++ {
		snap.records[d] = append([]uint32(nil), s.records[d]...)
		s.lat.DRAM(ctx, int64(4*len(s.records[d])), false, true)
		s.lat.DRAM(ctx, int64(4*len(s.records[d])), true, true)
	}
	return snap
}

// Edges reports how many edge records the snapshot covers in direction d.
func (sn *Snapshot) Edges(d Direction) int64 {
	var n int64
	for _, c := range sn.records[d] {
		n += int64(c)
	}
	return n
}

// Nbrs returns v's neighbors as of the snapshot, tombstones resolved.
// Records ingested after the snapshot are invisible.
func (sn *Snapshot) Nbrs(ctx *xpsim.Ctx, d Direction, v graph.VID, dst []uint32) ([]uint32, error) {
	s := sn.store
	if sn.gen != s.compactGen {
		return dst, fmt.Errorf("core: snapshot invalidated by compaction")
	}
	if int(v) >= len(sn.records[d]) || v >= s.NumVertices() {
		return dst, nil
	}
	want := int(sn.records[d][v])
	if want == 0 {
		return dst, nil
	}
	start := len(dst)

	// The vertex's record stream is: PMEM chain blocks oldest->newest,
	// then the live vertex buffer. Neighbors/Visit walk newest-first, so
	// materialize and trim from the front of the reconstructed order.
	g := s.groups[d][s.partOf(v)]
	pmemRecs := g.adj.NeighborsOldestFirst(ctx, v, nil)
	var all []uint32
	all = append(all, pmemRecs...)
	if h := s.vbH[d][v]; h != mempool.None {
		all = s.bufs.Neighbors(ctx, h, int(s.vbC[d][v]), all)
	}
	if want > len(all) {
		// More records at snapshot time than visible now: impossible in
		// an append-only store unless a compaction slipped through.
		return dst, fmt.Errorf("core: snapshot sees %d records, store has %d (vertex %d)", want, len(all), v)
	}
	dst = append(dst, all[:want]...)
	return resolveInPlace(dst, start), nil
}

// NbrsOut and NbrsIn are direction-fixed conveniences.
func (sn *Snapshot) NbrsOut(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	return sn.Nbrs(ctx, Out, v, dst)
}

// NbrsIn returns v's in-neighbors as of the snapshot.
func (sn *Snapshot) NbrsIn(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	return sn.Nbrs(ctx, In, v, dst)
}
