package core

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/mempool"
	"repro/internal/xpsim"
)

// Snapshot is a consistent point-in-time view of the graph. Because both
// the PMEM adjacency chains and the DRAM vertex buffers are append-only
// per vertex (flushes preserve order), capturing today's per-vertex record
// counts is enough: a snapshot query returns exactly the first `count`
// records of each vertex's stream, no matter how many updates arrive
// later. This is the role snapshot metadata plays in GraphOne (§II-B);
// XPGraph's hybrid store supports it the same way.
//
// Snapshot implements view.View, so the analytics engine and the HTTP
// server run unchanged over a snapshot — the basis of the serving stack's
// snapshot-isolated reads.
//
// Compaction rewrites chains and resolves tombstones in place, which
// would break the first-count-records rule. Instead of invalidating
// outstanding snapshots, the store fences compaction with
// copy-on-invalidate: before a vertex's chains are rewritten, every live
// snapshot materializes its view of that vertex into a private frozen
// copy. Snapshots therefore survive compaction; call Close when done so
// the store stops fencing for them.
//
// Concurrency: a Snapshot may serve many readers at once, and readers
// may interleave with ingestion provided reads and writes are externally
// ordered (e.g. via view.Guard over a sync.RWMutex, as the server does).
// The frozen-copy map has its own internal lock, so compaction fencing
// is safe against concurrent snapshot reads under that discipline.
type Snapshot struct {
	store   *Store
	numV    graph.VID // vertex-ID space at capture time
	records [2][]uint32

	// frozen holds per-vertex views materialized by compaction fencing;
	// mu guards the maps (readers take RLock on every lookup).
	mu     sync.RWMutex
	frozen [2]map[graph.VID][]uint32
	// frozenErr records vertices whose view was already media-damaged
	// when fencing tried to freeze it (MediaGuard stores): checked reads
	// of the snapshot return the error instead of scrambled bytes.
	frozenErr [2]map[graph.VID]error
}

// Snapshot captures the current view. O(V) DRAM copy, no PMEM traffic —
// the same cost class as GraphOne's per-epoch snapshot metadata. The
// snapshot stays registered with the store (for compaction fencing)
// until Close is called.
func (s *Store) Snapshot(ctx *xpsim.Ctx) *Snapshot {
	snap := &Snapshot{store: s, numV: s.NumVertices()}
	for d := 0; d < 2; d++ {
		snap.records[d] = append([]uint32(nil), s.records[d]...)
		s.lat.DRAM(ctx, int64(4*len(s.records[d])), false, true)
		s.lat.DRAM(ctx, int64(4*len(s.records[d])), true, true)
	}
	s.snapMu.Lock()
	if s.snaps == nil {
		s.snaps = make(map[*Snapshot]struct{})
	}
	s.snaps[snap] = struct{}{}
	s.snapMu.Unlock()
	return snap
}

// liveSnapshots returns the snapshots currently registered for
// compaction fencing.
func (s *Store) liveSnapshots() []*Snapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if len(s.snaps) == 0 {
		return nil
	}
	out := make([]*Snapshot, 0, len(s.snaps))
	for sn := range s.snaps {
		out = append(out, sn)
	}
	return out
}

// Close deregisters the snapshot from the store. The snapshot stays
// readable (frozen copies are kept), but compaction no longer fences for
// it, so post-Close reads of vertices compacted after Close may reflect
// the compacted (resolved) stream. Close is idempotent.
func (sn *Snapshot) Close() {
	s := sn.store
	s.snapMu.Lock()
	delete(s.snaps, sn)
	s.snapMu.Unlock()
}

// NumVertices reports the vertex-ID space the snapshot covers; vertices
// created after capture read as empty.
func (sn *Snapshot) NumVertices() graph.VID { return sn.numV }

// Edges reports how many edge records the snapshot covers in direction d.
func (sn *Snapshot) Edges(d Direction) int64 {
	var n int64
	for _, c := range sn.records[d] {
		n += int64(c)
	}
	return n
}

// Degree reports the record count (tombstones included) of v as of the
// snapshot — the snapshot analogue of Store.Degree.
func (sn *Snapshot) Degree(d Direction, v graph.VID) int {
	if v >= sn.numV || int(v) >= len(sn.records[d]) {
		return 0
	}
	return int(sn.records[d][v])
}

// OutDegree reports the out-record count of v as of the snapshot.
func (sn *Snapshot) OutDegree(v graph.VID) int { return sn.Degree(Out, v) }

// InDegree reports the in-record count of v as of the snapshot.
func (sn *Snapshot) InDegree(v graph.VID) int { return sn.Degree(In, v) }

// OutNode and InNode report the NUMA home of v's adjacency data; the
// placement is fixed at store creation, so delegating to the live store
// is snapshot-safe.
func (sn *Snapshot) OutNode(v graph.VID) int { return sn.store.PartitionNode(Out, v) }

// InNode reports the NUMA home of v's in-adjacency.
func (sn *Snapshot) InNode(v graph.VID) int { return sn.store.PartitionNode(In, v) }

// Nbrs returns v's neighbors as of the snapshot, tombstones resolved.
// Records ingested after the snapshot are invisible; vertices created
// after the snapshot read as empty.
func (sn *Snapshot) Nbrs(ctx *xpsim.Ctx, d Direction, v graph.VID, dst []uint32) []uint32 {
	// Bounds first, against the snapshot's own captured space: the live
	// store may have grown since capture, and the captured records slice
	// must never be indexed for a vertex born later.
	if v >= sn.numV || int(v) >= len(sn.records[d]) {
		return dst
	}
	sn.mu.RLock()
	f, ok := sn.frozen[d][v]
	sn.mu.RUnlock()
	if ok {
		sn.store.lat.DRAM(ctx, int64(4*len(f)), false, true)
		return append(dst, f...)
	}
	return sn.materialize(ctx, d, v, dst)
}

// materialize reconstructs the snapshot view of v from the live chains:
// the first records[d][v] entries of the vertex's append-only stream,
// tombstones resolved.
func (sn *Snapshot) materialize(ctx *xpsim.Ctx, d Direction, v graph.VID, dst []uint32) []uint32 {
	want := int(sn.records[d][v])
	if want == 0 {
		return dst
	}
	start := len(dst)

	// The vertex's record stream is: PMEM chain blocks oldest->newest,
	// then the live vertex buffer. Neighbors/Visit walk newest-first, so
	// materialize and trim from the front of the reconstructed order.
	s := sn.store
	g := s.groups[d][s.partOf(v)]
	all := g.adj.NeighborsOldestFirst(ctx, v, nil)
	if h := s.vbH[d][v]; h != mempool.None {
		all = s.bufs.Neighbors(ctx, h, int(s.vbC[d][v]), all)
	}
	if want > len(all) {
		// Fewer records visible than captured: only possible if a
		// compaction slipped past the fencing (e.g. on a snapshot read
		// after Close). Degrade to the resolved stream rather than fail.
		want = len(all)
	}
	dst = append(dst, all[:want]...)
	return resolveInPlace(dst, start)
}

// freezeVertex materializes the snapshot's view of v into a private
// copy — the copy-on-invalidate half of compaction fencing. The store
// calls it for every live snapshot before rewriting v's chains.
func (sn *Snapshot) freezeVertex(ctx *xpsim.Ctx, v graph.VID) {
	if v >= sn.numV {
		return
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	for d := 0; d < 2; d++ {
		if int(v) >= len(sn.records[d]) {
			continue
		}
		if _, done := sn.frozen[d][v]; done {
			continue
		}
		if _, bad := sn.frozenErr[d][v]; bad {
			continue
		}
		if sn.store.opts.MediaGuard {
			// Freeze through the checked path: if v's chain is already
			// media-damaged, the freeze must not launder scrambled bytes
			// into a trusted frozen copy — record the error instead, so
			// checked readers of this snapshot keep failing typed.
			rec, err := sn.materializeChecked(ctx, Direction(d), v, nil)
			if err != nil {
				if sn.frozenErr[d] == nil {
					sn.frozenErr[d] = make(map[graph.VID]error)
				}
				sn.frozenErr[d][v] = err
				continue
			}
			if sn.frozen[d] == nil {
				sn.frozen[d] = make(map[graph.VID][]uint32)
			}
			sn.frozen[d][v] = rec
			continue
		}
		if sn.frozen[d] == nil {
			sn.frozen[d] = make(map[graph.VID][]uint32)
		}
		sn.frozen[d][v] = sn.materialize(ctx, Direction(d), v, nil)
	}
}

// materializeChecked is materialize through the media-checked read path:
// a damaged or unrecoverable chain returns a typed error instead of
// scrambled records.
func (sn *Snapshot) materializeChecked(ctx *xpsim.Ctx, d Direction, v graph.VID, dst []uint32) ([]uint32, error) {
	want := int(sn.records[d][v])
	if want == 0 {
		return dst, nil
	}
	s := sn.store
	if s.isUnrec(d, v) {
		return dst, &UnrecoverableError{Dir: d, V: v}
	}
	start := len(dst)
	g := s.groups[d][s.partOf(v)]
	all, err := g.adj.NeighborsOldestFirstChecked(ctx, v, nil)
	if err != nil {
		s.noteReadDamage(d, v, err)
		return dst, err
	}
	if h := s.vbH[d][v]; h != mempool.None {
		all = s.bufs.Neighbors(ctx, h, int(s.vbC[d][v]), all)
	}
	if want > len(all) {
		want = len(all)
	}
	dst = append(dst, all[:want]...)
	return resolveInPlace(dst, start), nil
}

// NbrsChecked is Nbrs with media-error detection: reads that touch
// uncorrectable lines or checksum-mismatched blocks return a typed error
// instead of wrong data, and views frozen over already-damaged chains
// replay the freeze-time error.
func (sn *Snapshot) NbrsChecked(ctx *xpsim.Ctx, d Direction, v graph.VID, dst []uint32) ([]uint32, error) {
	if v >= sn.numV || int(v) >= len(sn.records[d]) {
		return dst, nil
	}
	sn.mu.RLock()
	ferr := sn.frozenErr[d][v]
	f, ok := sn.frozen[d][v]
	sn.mu.RUnlock()
	if ferr != nil {
		return dst, ferr
	}
	if ok {
		sn.store.lat.DRAM(ctx, int64(4*len(f)), false, true)
		return append(dst, f...), nil
	}
	return sn.materializeChecked(ctx, d, v, dst)
}

// NbrsOutChecked and NbrsInChecked are direction-fixed conveniences used
// by the serving layer's checked read path.
func (sn *Snapshot) NbrsOutChecked(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	return sn.NbrsChecked(ctx, Out, v, dst)
}

// NbrsInChecked returns v's in-neighbors through the checked path.
func (sn *Snapshot) NbrsInChecked(ctx *xpsim.Ctx, v graph.VID, dst []uint32) ([]uint32, error) {
	return sn.NbrsChecked(ctx, In, v, dst)
}

// NbrsOut and NbrsIn are direction-fixed conveniences.
func (sn *Snapshot) NbrsOut(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	return sn.Nbrs(ctx, Out, v, dst)
}

// NbrsIn returns v's in-neighbors as of the snapshot.
func (sn *Snapshot) NbrsIn(ctx *xpsim.Ctx, v graph.VID, dst []uint32) []uint32 {
	return sn.Nbrs(ctx, In, v, dst)
}

// VisitOut streams v's resolved out-neighbors as of the snapshot.
// Snapshot reads must trim and resolve against the captured counts, so
// the stream materializes internally; the callback contract matches
// Store.VisitOut.
func (sn *Snapshot) VisitOut(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	for _, nbr := range sn.Nbrs(ctx, Out, v, nil) {
		fn(nbr)
	}
}

// VisitIn streams v's resolved in-neighbors as of the snapshot.
func (sn *Snapshot) VisitIn(ctx *xpsim.Ctx, v graph.VID, fn func(nbr uint32)) {
	for _, nbr := range sn.Nbrs(ctx, In, v, nil) {
		fn(nbr)
	}
}
