package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func testMachine() (*xpsim.Machine, *pmem.Heap) {
	m := xpsim.NewMachine(2, 256<<20, xpsim.DefaultLatency())
	return m, pmem.NewHeap(m)
}

func newStore(t *testing.T, opts Options) *Store {
	t.Helper()
	m, h := testMachine()
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// reference builds plain adjacency maps from an edge stream with multiset
// deletion semantics.
type reference struct {
	out, in map[graph.VID][]uint32
}

func buildReference(edges []graph.Edge) *reference {
	r := &reference{out: map[graph.VID][]uint32{}, in: map[graph.VID][]uint32{}}
	for _, e := range edges {
		if e.IsDelete() {
			r.out[e.Src] = removeOne(r.out[e.Src], e.Target())
			r.in[e.Target()] = removeOne(r.in[e.Target()], e.Src)
			continue
		}
		r.out[e.Src] = append(r.out[e.Src], e.Dst)
		r.in[e.Dst] = append(r.in[e.Dst], e.Src)
	}
	return r
}

func removeOne(s []uint32, v uint32) []uint32 {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func sortedU32(u []uint32) []uint32 {
	v := append([]uint32(nil), u...)
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v
}

func sameMultiset(a, b []uint32) bool {
	a, b = sortedU32(a), sortedU32(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkAgainstReference(t *testing.T, s *Store, ref *reference, numV graph.VID) {
	t.Helper()
	ctx := xpsim.NewCtx(0)
	for v := graph.VID(0); v < numV; v++ {
		if got, want := s.NbrsOut(ctx, v, nil), ref.out[v]; !sameMultiset(got, want) {
			t.Fatalf("vertex %d out: got %d nbrs %v, want %d %v", v, len(got), got, len(want), want)
		}
		if got, want := s.NbrsIn(ctx, v, nil), ref.in[v]; !sameMultiset(got, want) {
			t.Fatalf("vertex %d in: got %d nbrs, want %d", v, len(got), len(want))
		}
	}
}

func TestIngestSmall(t *testing.T) {
	s := newStore(t, Options{Name: "t1", NumVertices: 8, LogCapacity: 64, ArchiveThreshold: 8, ArchiveThreads: 4})
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 0, Dst: 3}, {Src: 3, Dst: 1}}
	rep, err := s.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges != int64(len(edges)) {
		t.Fatalf("report edges = %d", rep.Edges)
	}
	if rep.TotalNs() <= 0 {
		t.Fatal("ingest must cost simulated time")
	}
	checkAgainstReference(t, s, buildReference(edges), 8)
}

func TestIngestRMATAllNUMAModes(t *testing.T) {
	edges := gen.RMAT(10, 20000, 123)
	ref := buildReference(edges)
	for name, mode := range map[string]NUMAMode{"none": NUMANone, "outin": NUMAOutIn, "subgraph": NUMASubgraph} {
		t.Run(name, func(t *testing.T) {
			s := newStore(t, Options{Name: "n-" + name, NumVertices: 1024, LogCapacity: 1 << 14,
				ArchiveThreshold: 1 << 10, NUMA: mode, ArchiveThreads: 8})
			if _, err := s.Ingest(edges); err != nil {
				t.Fatal(err)
			}
			checkAgainstReference(t, s, ref, 1024)
		})
	}
}

func TestIngestBufferModes(t *testing.T) {
	edges := gen.RMAT(9, 8000, 5)
	ref := buildReference(edges)
	cases := map[string]Options{
		"hier":    {Buffer: BufferHierarchical},
		"fixed64": {Buffer: BufferFixed, MaxBufBytes: 64},
		"fixed8":  {Buffer: BufferFixed, MaxBufBytes: 8},
		"none":    {Buffer: BufferNone},
		"big":     {Buffer: BufferHierarchical, MaxBufBytes: 512},
	}
	for name, o := range cases {
		t.Run(name, func(t *testing.T) {
			o.Name = "b-" + name
			o.NumVertices = 512
			o.LogCapacity = 1 << 13
			o.ArchiveThreshold = 1 << 9
			o.ArchiveThreads = 4
			s := newStore(t, o)
			if _, err := s.Ingest(edges); err != nil {
				t.Fatal(err)
			}
			checkAgainstReference(t, s, ref, 512)
		})
	}
}

func TestIngestVolatileMedia(t *testing.T) {
	edges := gen.RMAT(9, 8000, 6)
	ref := buildReference(edges)
	for name, medium := range map[string]Medium{"dram": MediumDRAM, "memmode": MediumMemoryMode} {
		t.Run(name, func(t *testing.T) {
			m, _ := testMachine()
			s, err := New(m, nil, nil, Options{Name: "v-" + name, NumVertices: 512,
				LogCapacity: 1 << 13, ArchiveThreshold: 1 << 9, Medium: medium, ArchiveThreads: 4})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Ingest(edges); err != nil {
				t.Fatal(err)
			}
			checkAgainstReference(t, s, ref, 512)
		})
	}
}

func TestDeletions(t *testing.T) {
	s := newStore(t, Options{Name: "del", NumVertices: 8, LogCapacity: 64, ArchiveThreshold: 4, ArchiveThreads: 2})
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 1}, graph.Del(0, 1), {Src: 1, Dst: 0}, graph.Del(0, 9)}
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	got := s.NbrsOut(ctx, 0, nil)
	// One of the two 0->1 edges is deleted; del(0,9) has no match.
	if !sameMultiset(got, []uint32{1, 2}) {
		t.Fatalf("out(0) = %v, want {1,2}", got)
	}
	if in := s.NbrsIn(ctx, 1, nil); !sameMultiset(in, []uint32{0}) {
		t.Fatalf("in(1) = %v, want {0}", in)
	}
}

func TestLogWrapsAndFlushes(t *testing.T) {
	// A log far smaller than the edge stream forces many buffering and
	// flush-all phases and log wraparound.
	edges := gen.RMAT(8, 6000, 7)
	s := newStore(t, Options{Name: "wrap", NumVertices: 256, LogCapacity: 512,
		ArchiveThreshold: 128, ArchiveThreads: 4})
	rep, err := s.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlushAlls == 0 {
		t.Fatal("tiny log must force flush-all phases")
	}
	checkAgainstReference(t, s, buildReference(edges), 256)
}

func TestPoolPressureForcesFlush(t *testing.T) {
	edges := gen.RMAT(10, 20000, 8)
	s := newStore(t, Options{Name: "pool", NumVertices: 1024, LogCapacity: 1 << 15,
		ArchiveThreshold: 1 << 10, PoolBulk: 1 << 14, PoolMax: 1 << 16, ArchiveThreads: 4})
	rep, err := s.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlushAlls == 0 {
		t.Fatal("tiny pool must trigger pressure flushes")
	}
	checkAgainstReference(t, s, buildReference(edges), 1024)
}

func TestCrashRecovery(t *testing.T) {
	m, h := testMachine()
	opts := Options{Name: "rec", NumVertices: 512, LogCapacity: 1 << 12,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 4}
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	edges := gen.RMAT(9, 5000, 42)
	edges = dedupEdges(edges) // recovery dedup assumes no duplicate live edges
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}

	// Crash: drop the Store (all DRAM state); PMEM survives in the heap.
	s = nil
	rs, rep, err := Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimNs <= 0 || rep.BlocksScanned == 0 {
		t.Fatalf("suspicious recovery report: %+v", rep)
	}
	checkAgainstReference(t, rs, buildReference(edges), 512)

	// The recovered store keeps ingesting.
	more := []graph.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	if _, err := rs.Ingest(more); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, rs, buildReference(append(edges, more...)), 512)
}

// Property: crash after an arbitrary ingest prefix loses nothing — the
// recovered neighbor sets equal the reference built from exactly the
// logged prefix (§III-B edge-level consistency).
func TestCrashRecoveryProperty(t *testing.T) {
	all := dedupEdges(gen.RMAT(8, 3000, 77))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cut := 1 + rng.Intn(len(all)-1)
		prefix := all[:cut]

		m, h := testMachine()
		opts := Options{Name: "p", NumVertices: 256, LogCapacity: 1 << 11,
			ArchiveThreshold: 1 << 7, ArchiveThreads: 3,
			NUMA: NUMAMode(rng.Intn(3))}
		s, err := New(m, h, nil, opts)
		if err != nil {
			return false
		}
		// Ingest in two calls; crash strikes after the first commit
		// point plus whatever the second call logged.
		mid := cut / 2
		if _, err := s.Ingest(prefix[:mid]); err != nil {
			return false
		}
		if _, err := s.Ingest(prefix[mid:]); err != nil {
			return false
		}
		rs, _, err := Recover(m, h, nil, opts)
		if err != nil {
			return false
		}
		ref := buildReference(prefix)
		ctx := xpsim.NewCtx(0)
		for v := graph.VID(0); v < 256; v++ {
			if !sameMultiset(rs.NbrsOut(ctx, v, nil), ref.out[v]) {
				return false
			}
			if !sameMultiset(rs.NbrsIn(ctx, v, nil), ref.in[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func dedupEdges(edges []graph.Edge) []graph.Edge {
	seen := make(map[graph.Edge]bool, len(edges))
	out := edges[:0]
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func TestViewInterfaces(t *testing.T) {
	s := newStore(t, Options{Name: "view", NumVertices: 16, LogCapacity: 256,
		ArchiveThreshold: 64, ArchiveThreads: 2})
	ctx := xpsim.NewCtx(0)
	// Log a few edges below the archive threshold: they stay in the log.
	for _, e := range []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 4, Dst: 1}} {
		if _, err := s.log.Append(ctx, []graph.Edge{e}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.LoggedEdges(ctx); len(got) != 3 {
		t.Fatalf("logged edges = %d, want 3", len(got))
	}
	if got := s.NbrsLog(ctx, Out, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("log out(1) = %v", got)
	}
	if got := s.NbrsLog(ctx, In, 1, nil); !sameMultiset(got, []uint32{4}) {
		t.Fatalf("log in(1) = %v", got)
	}
	// Buffer them: they move to vertex buffers.
	if err := s.BufferAllEdges(); err != nil {
		t.Fatal(err)
	}
	if got := s.NbrsBuf(ctx, Out, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("buf out(1) = %v", got)
	}
	if got := s.NbrsFlush(ctx, Out, 1, nil); len(got) != 0 {
		t.Fatalf("flush out(1) = %v before any flush", got)
	}
	// Flush all: they land in PMEM.
	if err := s.FlushAllVbufs(); err != nil {
		t.Fatal(err)
	}
	if got := s.NbrsFlush(ctx, Out, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("flush out(1) = %v after flush", got)
	}
	if got := s.NbrsBuf(ctx, Out, 1, nil); len(got) != 0 {
		t.Fatalf("buf out(1) = %v after flush", got)
	}
	// The merged view is stable throughout.
	if got := s.NbrsOut(ctx, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("merged out(1) = %v", got)
	}
}

func TestCompact(t *testing.T) {
	s := newStore(t, Options{Name: "cmp", NumVertices: 8, LogCapacity: 64, ArchiveThreshold: 4, ArchiveThreads: 2})
	var edges []graph.Edge
	for i := uint32(0); i < 100; i++ {
		edges = append(edges, graph.Edge{Src: 1, Dst: i})
	}
	edges = append(edges, graph.Del(1, 50))
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	if err := s.CompactAdjs(ctx, 1); err != nil {
		t.Fatal(err)
	}
	got := s.NbrsOut(ctx, 1, nil)
	if len(got) != 99 {
		t.Fatalf("after compact: %d nbrs, want 99", len(got))
	}
	for _, n := range got {
		if n == 50 {
			t.Fatal("deleted neighbor survived compact")
		}
	}
}

func TestDegreeTracking(t *testing.T) {
	s := newStore(t, Options{Name: "deg", NumVertices: 8, LogCapacity: 64, ArchiveThreshold: 4, ArchiveThreads: 2})
	if _, err := s.Ingest([]graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 3, Dst: 0}}); err != nil {
		t.Fatal(err)
	}
	if s.Degree(Out, 0) != 2 || s.Degree(In, 0) != 1 || s.Degree(Out, 7) != 0 {
		t.Fatalf("degrees: out0=%d in0=%d", s.Degree(Out, 0), s.Degree(In, 0))
	}
}

func TestMemUsageBreakdown(t *testing.T) {
	s := newStore(t, Options{Name: "mu", NumVertices: 512, LogCapacity: 1 << 12,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 4})
	if _, err := s.Ingest(gen.RMAT(9, 5000, 3)); err != nil {
		t.Fatal(err)
	}
	u := s.MemUsage()
	if u.MetaDRAM <= 0 || u.VbufDRAM <= 0 || u.ElogPMEM <= 0 || u.PblkPMEM < 0 {
		t.Fatalf("incomplete breakdown: %+v", u)
	}
}

func TestDRAMBudgetOOM(t *testing.T) {
	// A DRAM-only store with a tiny budget must fail with ErrOOM, the
	// way GraphOne-D/XPGraph-D fail on large graphs (Fig. 12).
	m, _ := testMachine()
	budget := mem.NewBudget(64 << 10)
	s, err := New(m, nil, budget, Options{Name: "oom", NumVertices: 512,
		LogCapacity: 1 << 12, ArchiveThreshold: 1 << 8, Medium: MediumDRAM, ArchiveThreads: 2})
	if err != nil {
		// Construction itself may exhaust the budget; that's an
		// acceptable OOM point too.
		return
	}
	_, err = s.Ingest(gen.RMAT(10, 30000, 4))
	if err == nil {
		t.Fatal("expected OOM with a 64 KiB DRAM budget")
	}
}

func TestBatteryVariantIngests(t *testing.T) {
	edges := gen.RMAT(9, 8000, 11)
	s := newStore(t, Options{Name: "bat", NumVertices: 512, LogCapacity: 1 << 10,
		ArchiveThreshold: 1 << 8, Battery: true, ArchiveThreads: 4})
	rep, err := s.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, s, buildReference(edges), 512)

	// The battery variant should flush less: compare against standard.
	s2 := newStore(t, Options{Name: "nobat", NumVertices: 512, LogCapacity: 1 << 10,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 4})
	rep2, err := s2.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlushAlls > rep2.FlushAlls {
		t.Errorf("battery variant ran %d flush-alls vs %d without battery", rep.FlushAlls, rep2.FlushAlls)
	}
}

func TestSSDOverflowExtension(t *testing.T) {
	// SSD-supported XPGraph (§V-F future work): with a deliberately tiny
	// PMEM adjacency arena, ingestion overflows blocks onto the SSD tier
	// and still answers queries correctly — just slower.
	edges := gen.RMAT(10, 30000, 19)
	ref := buildReference(edges)

	m1, h1 := testMachine()
	small, err := New(m1, h1, nil, Options{Name: "ssd", NumVertices: 1024,
		LogCapacity: 1 << 14, ArchiveThreshold: 1 << 10, ArchiveThreads: 4,
		AdjBytes: 96 << 10, SSDOverflow: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	repTier, err := small.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, small, ref, 1024)
	if small.SSDBytes() == 0 {
		t.Fatal("expected adjacency blocks to spill onto the SSD tier")
	}

	// Without the SSD tier the same arena must fail...
	m2, h2 := testMachine()
	bare, err := New(m2, h2, nil, Options{Name: "bare", NumVertices: 1024,
		LogCapacity: 1 << 14, ArchiveThreshold: 1 << 10, ArchiveThreads: 4,
		AdjBytes: 96 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Ingest(edges); err == nil {
		t.Fatal("tiny PMEM arena without SSD overflow should run out of space")
	}

	// ...and a PMEM-sufficient store must be faster than the tiered one.
	m3, h3 := testMachine()
	big, err := New(m3, h3, nil, Options{Name: "big", NumVertices: 1024,
		LogCapacity: 1 << 14, ArchiveThreshold: 1 << 10, ArchiveThreads: 4,
		AdjBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	repPMEM, err := big.Ingest(edges)
	if err != nil {
		t.Fatal(err)
	}
	if repTier.TotalNs() <= repPMEM.TotalNs() {
		t.Errorf("tiered ingest %dns should cost more than pure PMEM %dns",
			repTier.TotalNs(), repPMEM.TotalNs())
	}

	// Tiered stores refuse recovery (documented extension limitation).
	if _, _, err := Recover(m1, h1, nil, Options{Name: "ssd", SSDOverflow: 1}); err == nil {
		t.Fatal("tiered recovery should be rejected")
	}
}

// Property: a random mix of insertions and deletions matches the
// reference multiset semantics across buffer modes.
func TestDeletionMixProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var edges []graph.Edge
		var live []graph.Edge
		for i := 0; i < 1500; i++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				j := rng.Intn(len(live))
				e := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				edges = append(edges, graph.Del(e.Src, e.Dst))
				continue
			}
			e := graph.Edge{Src: uint32(rng.Intn(64)), Dst: uint32(rng.Intn(64))}
			edges = append(edges, e)
			live = append(live, e)
		}
		mode := []BufferMode{BufferHierarchical, BufferFixed, BufferNone}[rng.Intn(3)]
		m, h := testMachine()
		s, err := New(m, h, nil, Options{Name: "delmix", NumVertices: 64,
			LogCapacity: 1 << 10, ArchiveThreshold: 1 << 6, ArchiveThreads: 3, Buffer: mode})
		if err != nil {
			return false
		}
		if _, err := s.Ingest(edges); err != nil {
			return false
		}
		ref := buildReference(edges)
		ctx := xpsim.NewCtx(0)
		for v := graph.VID(0); v < 64; v++ {
			if !sameMultiset(s.NbrsOut(ctx, v, nil), ref.out[v]) {
				return false
			}
			if !sameMultiset(s.NbrsIn(ctx, v, nil), ref.in[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicVertexGrowth(t *testing.T) {
	// Edges referencing IDs far beyond NumVertices must grow the store.
	s := newStore(t, Options{Name: "grow", NumVertices: 4, LogCapacity: 64,
		ArchiveThreshold: 8, ArchiveThreads: 2})
	if err := s.AddEdge(100, 2000); err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() < 2001 {
		t.Fatalf("store did not grow: %d vertices", s.NumVertices())
	}
	ctx := xpsim.NewCtx(0)
	if got := s.NbrsOut(ctx, 100, nil); !sameMultiset(got, []uint32{2000}) {
		t.Fatalf("out(100) = %v", got)
	}
}

func TestBufferEdgesInterface(t *testing.T) {
	s := newStore(t, Options{Name: "bufe", NumVertices: 8, LogCapacity: 64,
		ArchiveThreshold: 32, ArchiveThreads: 2})
	n, err := s.BufferEdges([]graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}})
	if err != nil || n != 2 {
		t.Fatalf("BufferEdges = %d, %v", n, err)
	}
	// buffer_edges leaves nothing pending in the log window.
	if s.Log().PendingBuffer() != 0 {
		t.Fatalf("pending after BufferEdges = %d", s.Log().PendingBuffer())
	}
	ctx := xpsim.NewCtx(0)
	if got := s.NbrsBuf(ctx, Out, 1, nil); !sameMultiset(got, []uint32{2, 3}) {
		t.Fatalf("buffered out(1) = %v", got)
	}
}

func TestVisitMatchesNbrs(t *testing.T) {
	edges := gen.RMAT(9, 8000, 23)
	edges = append(edges, graph.Del(edges[0].Src, edges[0].Dst), graph.Del(1, 999999))
	s := newStore(t, Options{Name: "visit", NumVertices: 512, LogCapacity: 1 << 13,
		ArchiveThreshold: 1 << 9, ArchiveThreads: 4})
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	for v := graph.VID(0); v < 512; v++ {
		for d := Out; d <= In; d++ {
			want := s.Nbrs(ctx, d, v, nil)
			var got []uint32
			s.VisitNbrs(ctx, d, v, func(n uint32) { got = append(got, n) })
			if !sameMultiset(got, want) {
				t.Fatalf("vertex %d dir %d: visit %d records, Nbrs %d", v, d, len(got), len(want))
			}
		}
	}
	// Out of range is a no-op.
	s.VisitOut(ctx, 1<<30, func(uint32) { t.Fatal("visited out-of-range vertex") })
}

func TestVisitAfterRecoveryResolvesTombstones(t *testing.T) {
	m, h := testMachine()
	opts := Options{Name: "vrec", NumVertices: 16, LogCapacity: 1 << 8,
		ArchiveThreshold: 4, ArchiveThreads: 2}
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Force the tombstone to PMEM before the crash.
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, graph.Del(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAllVbufs(); err != nil {
		t.Fatal(err)
	}
	s = nil
	rs, _, err := Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	var got []uint32
	rs.VisitOut(ctx, 1, func(n uint32) { got = append(got, n) })
	if !sameMultiset(got, []uint32{3}) {
		t.Fatalf("post-recovery visit out(1) = %v, want {3}", got)
	}
}

func TestFourSocketMachine(t *testing.T) {
	// §III-D: the sub-graph strategy generalizes to P-socket systems.
	m := xpsim.NewMachine(4, 128<<20, xpsim.DefaultLatency())
	h := pmem.NewHeap(m)
	s, err := New(m, h, nil, Options{Name: "quad", NumVertices: 1024,
		LogCapacity: 1 << 13, ArchiveThreshold: 1 << 9, ArchiveThreads: 16,
		NUMA: NUMASubgraph, AdjBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPartitions() != 4 {
		t.Fatalf("partitions = %d, want 4", s.NumPartitions())
	}
	edges := gen.RMAT(10, 15000, 55)
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, s, buildReference(edges), 1024)
	// Vertex v's data lives on node v%4.
	for v := graph.VID(0); v < 8; v++ {
		if got := s.PartitionNode(Out, v); got != int(v%4) {
			t.Fatalf("vertex %d on node %d, want %d", v, got, v%4)
		}
	}
}

func TestEdgesExport(t *testing.T) {
	stream := dedupEdges(gen.RMAT(8, 1200, 61))
	stream = append(stream, graph.Del(stream[0].Src, stream[0].Dst))
	s := newStore(t, Options{Name: "exp", NumVertices: 256, LogCapacity: 1 << 11,
		ArchiveThreshold: 1 << 6, ArchiveThreads: 2})
	if _, err := s.Ingest(stream); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	got := map[graph.Edge]int{}
	s.Edges(ctx, func(e graph.Edge) { got[e]++ })
	ref := buildReference(stream)
	var want int
	for v, outs := range ref.out {
		want += len(outs)
		for _, d := range outs {
			if got[graph.Edge{Src: v, Dst: d}] == 0 {
				t.Fatalf("exported edges missing %d->%d", v, d)
			}
		}
	}
	var total int
	for _, c := range got {
		total += c
	}
	if total != want {
		t.Fatalf("exported %d edges, want %d", total, want)
	}
}

func TestVerifyHealthyStore(t *testing.T) {
	edges := gen.RMAT(9, 6000, 71)
	s := newStore(t, Options{Name: "fsck", NumVertices: 512, LogCapacity: 1 << 12,
		ArchiveThreshold: 1 << 8, ArchiveThreads: 4})
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	rep, err := s.Verify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdjRecords+rep.BufRecords != int64(len(edges))*2 {
		t.Fatalf("verify found %d records, want %d", rep.AdjRecords+rep.BufRecords, len(edges)*2)
	}
	// After flush-all, everything is in PMEM.
	if err := s.FlushAllVbufs(); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Verify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BufRecords != 0 || rep.AdjRecords != int64(len(edges))*2 {
		t.Fatalf("post-flush verify: %+v", rep)
	}
	// And after recovery.
	m, h := s.Machine(), s.Heap()
	opts := s.Options()
	s = nil
	rs, _, err := Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Verify(ctx); err != nil {
		t.Fatalf("recovered store fails verify: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	s := newStore(t, Options{Name: "fsck2", NumVertices: 16, LogCapacity: 256,
		ArchiveThreshold: 4, ArchiveThreads: 2})
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the DRAM vertex index.
	s.records[Out][1] = 99
	ctx := xpsim.NewCtx(0)
	if _, err := s.Verify(ctx); err == nil {
		t.Fatal("verify must detect index/record mismatch")
	}
}

func TestSmallAPISurface(t *testing.T) {
	s := newStore(t, Options{Name: "api2", NumVertices: 16, LogCapacity: 256,
		ArchiveThreshold: 4, ArchiveThreads: 2})
	if err := s.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.DelEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	if got := s.NbrsOut(ctx, 1, nil); len(got) != 0 {
		t.Fatalf("out(1) after del = %v", got)
	}
	if s.OutNode(1) != s.PartitionNode(Out, 1) || s.InNode(1) != s.PartitionNode(In, 1) {
		t.Fatal("node accessors disagree")
	}
	if s.OutDegree(1) != s.Degree(Out, 1) {
		t.Fatal("degree accessors disagree")
	}
	if s.Degree(Out, 9999) != 0 {
		t.Fatal("out-of-range degree should be 0")
	}
	// Vertex 2 is tombstoned, so VisitIn takes the resolving path: the
	// add and its deletion cancel.
	var in []uint32
	s.VisitIn(ctx, 2, func(n uint32) { in = append(in, n) })
	if len(in) != 0 {
		t.Fatalf("VisitIn resolved records = %v, want none", in)
	}
	if err := s.AddEdge(3, 2); err != nil {
		t.Fatal(err)
	}
	s.VisitIn(ctx, 2, func(n uint32) { in = append(in, n) })
	if len(in) != 1 || in[0] != 3 {
		t.Fatalf("VisitIn after re-add = %v, want [3]", in)
	}
	if s.Pool() == nil {
		t.Fatal("pool accessor nil")
	}
	rep := s.Report()
	var agg IngestReport
	agg.Add(rep)
	agg.Add(rep)
	if agg.Edges != 2*rep.Edges || agg.TotalNs() < rep.TotalNs() {
		t.Fatalf("report aggregation wrong: %+v vs %+v", agg, rep)
	}
	s.ResetReport()
	if s.Report().Edges != 0 {
		t.Fatal("ResetReport did not clear")
	}
}

func TestCompactAllAdjs(t *testing.T) {
	edges := gen.RMAT(8, 2000, 73)
	s := newStore(t, Options{Name: "call", NumVertices: 256, LogCapacity: 1 << 11,
		ArchiveThreshold: 1 << 6, ArchiveThreads: 2})
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	if err := s.CompactAllAdjs(ctx); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, s, buildReference(edges), 256)
	if _, err := s.Verify(ctx); err != nil {
		t.Fatalf("verify after compact-all: %v", err)
	}
}

// Property: the simulated clock is deterministic — the same workload on
// the same configuration costs exactly the same simulated time.
func TestDeterministicSimulation(t *testing.T) {
	edges := gen.RMAT(9, 5000, 99)
	run := func() (int64, int64) {
		m, h := testMachine()
		s, err := New(m, h, nil, Options{Name: "det", NumVertices: 512,
			LogCapacity: 1 << 12, ArchiveThreshold: 1 << 8, ArchiveThreads: 8})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Ingest(edges)
		if err != nil {
			t.Fatal(err)
		}
		st := m.TotalStats()
		return rep.TotalNs(), st.MediaWriteLines
	}
	t1, w1 := run()
	t2, w2 := run()
	if t1 != t2 || w1 != w2 {
		t.Fatalf("non-deterministic simulation: %d/%d vs %d/%d", t1, w1, t2, w2)
	}
}
