package core

import (
	"fmt"

	"repro/internal/obs"
)

// SetTracer attaches (or, with nil, detaches) a phase tracer. Spans are
// recorded on the simulated clock: each pipeline lane (logging,
// buffering, flushing, compaction, recovery) keeps a cursor that
// advances by the simulated duration of every phase placed on it, so
// the exported timeline reproduces the Fig. 3a phase split. A nil
// tracer costs one branch per phase boundary — the ingest hot loop
// itself is never instrumented per edge.
func (s *Store) SetTracer(t *obs.Tracer) { s.tracer = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (s *Store) Tracer() *obs.Tracer { return s.tracer }

// emitSpan places a span of durNs at the current end of lane and
// advances the lane cursor. It returns the span's start so callers can
// co-locate per-worker sub-spans with the parent phase.
func (s *Store) emitSpan(name string, lane int64, durNs int64) int64 {
	start := s.laneEnd[lane]
	s.laneEnd[lane] += durNs
	s.tracer.EmitPhase(name, lane, start, durNs)
	return start
}

// dirName labels the two adjacency directions in span and metric names.
func dirName(d int) string {
	if Direction(d) == Out {
		return "out"
	}
	return "in"
}

// workerSpan emits a per-group worker-lane sub-span aligned with its
// parent phase (nil-safe; only called at phase boundaries).
func (s *Store) workerSpan(phase string, d, p int, startNs, durNs int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(obs.Span{
		Name:    fmt.Sprintf("%s %s/p%d", phase, dirName(d), p),
		Cat:     "worker",
		Lane:    obs.LaneWorkerBase + int64(d*s.nparts+p),
		StartNs: startNs,
		DurNs:   durNs,
	})
}

// RegisterMetrics registers the store's occupancy gauges and pipeline
// counters with a registry. The gauge callbacks read live store state,
// so on a concurrently-served store the scrape must run under the same
// lock that serializes writes (the server holds its state lock around
// Gather).
func (s *Store) RegisterMetrics(r *obs.Registry) {
	gauge := func(name, help string, fn func() float64) {
		r.Register(obs.NewGaugeFunc(name, help, fn))
	}
	gauge("xpgraph_vertices", "Current vertex-ID space of the store.",
		func() float64 { return float64(s.NumVertices()) })

	// Edge-log occupancy (the circular log of §III-B / Fig. 7).
	gauge("xpgraph_elog_capacity_edges", "Circular edge log capacity in edges.",
		func() float64 { return float64(s.log.Cap()) })
	gauge("xpgraph_elog_logged_edges", "Total edges ever appended to the log (head cursor).",
		func() float64 { return float64(s.log.Head()) })
	gauge("xpgraph_elog_buffered_edges", "Edges staged into DRAM vertex buffers (buffered cursor).",
		func() float64 { return float64(s.log.Buffered()) })
	gauge("xpgraph_elog_flushed_edges", "Edges durable in PMEM adjacency lists (flushed cursor).",
		func() float64 { return float64(s.log.Flushed()) })
	gauge("xpgraph_elog_pending_buffer_edges", "Edges logged but not yet buffered.",
		func() float64 { return float64(s.log.PendingBuffer()) })
	gauge("xpgraph_elog_pending_flush_edges", "Edges buffered but not yet flush-acknowledged.",
		func() float64 { return float64(s.log.PendingFlush()) })
	gauge("xpgraph_elog_occupancy_ratio", "Unflushed log window / capacity (1.0 = head caught the flushing cursor).",
		func() float64 {
			if c := s.log.Cap(); c > 0 {
				return float64(s.log.Head()-s.log.Flushed()) / float64(c)
			}
			return 0
		})

	// DRAM vertex-buffer pool (§III-C).
	gauge("xpgraph_pool_used_bytes", "Vertex-buffer pool bytes currently allocated.",
		func() float64 { return float64(s.pool.Used()) })
	gauge("xpgraph_pool_peak_bytes", "Vertex-buffer pool high-water mark.",
		func() float64 { return float64(s.pool.Peak()) })
	gauge("xpgraph_pool_footprint_bytes", "Vertex-buffer pool bulk footprint (allocated from the OS).",
		func() float64 { return float64(s.pool.Footprint()) })

	// Table III memory breakdown.
	gauge("xpgraph_meta_dram_bytes", "DRAM metadata bytes (vertex indexes, batch counters, shard scratch).",
		func() float64 { return float64(s.MemUsage().MetaDRAM) })
	gauge("xpgraph_elog_pmem_bytes", "PMEM bytes of the circular edge log.",
		func() float64 { return float64(s.MemUsage().ElogPMEM) })
	gauge("xpgraph_pblk_pmem_bytes", "PMEM bytes of persistent adjacency blocks.",
		func() float64 { return float64(s.MemUsage().PblkPMEM) })

	// Pipeline counters from the accumulated ingest report, including
	// the per-phase simulated seconds behind the Fig. 3a split.
	r.Register(obs.CollectorFunc(func(emit func(obs.Sample)) {
		rep := s.Report()
		counter := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v})
		}
		counter("xpgraph_ingested_edges_total", "Edges accepted through the logging pipeline.", float64(rep.Edges))
		counter("xpgraph_buffer_phases_total", "Buffering phases executed.", float64(rep.Batches))
		counter("xpgraph_flush_phases_total", "Full flushing phases executed.", float64(rep.FlushAlls))
		counter("xpgraph_pool_fallbacks_total", "Buffer allocations that fell back to direct adjacency writes.", float64(rep.PoolFallbacks))
		phase := func(name string, ns int64) {
			counter("xpgraph_phase_seconds_total", "Simulated seconds spent per pipeline phase (Fig. 3a split).",
				float64(ns)/1e9, obs.Label{Key: "phase", Value: name})
		}
		phase("logging", rep.LogNs)
		phase("buffering", rep.BufferNs)
		phase("flushing", rep.FlushNs)

		// Adjacency block encoding (fixed vs delta-varint): cumulative
		// payload bytes and records per format, plus the derived
		// edges-per-256B-XPLine density each format achieves.
		es := s.AdjEncoding()
		byFormat := func(name, help string, fixed, varint float64) {
			counter(name, help, fixed, obs.Label{Key: "format", Value: "fixed"})
			counter(name, help, varint, obs.Label{Key: "format", Value: "varint"})
		}
		byFormat("xpgraph_adj_encoded_bytes_total", "Adjacency payload bytes written, by block format.",
			float64(es.FixedBytes), float64(es.VarintBytes))
		byFormat("xpgraph_adj_encoded_records_total", "Adjacency records written, by block format.",
			float64(es.FixedRecords), float64(es.VarintRecords))
		epl := func(recs, bytes int64) float64 {
			if bytes == 0 {
				return 0
			}
			return float64(recs) * 256 / float64(bytes) // 256 = xpsim.XPLineSize
		}
		density := func(v float64, format string) {
			emit(obs.Sample{Name: "xpgraph_adj_edges_per_xpline",
				Help: "Adjacency records per 256 B XPLine of written payload, by block format.",
				Kind: obs.KindGauge, Labels: []obs.Label{{Key: "format", Value: format}}, Value: v})
		}
		density(epl(es.FixedRecords, es.FixedBytes), "fixed")
		density(epl(es.VarintRecords, es.VarintBytes), "varint")

		// Media-error tolerance: scrub activity and quarantine occupancy
		// (all zero unless Options.MediaGuard is on — see media.go).
		sc := s.ScrubStats()
		counter("xpgraph_scrub_runs_total", "Scrub passes executed.", float64(sc.Runs))
		counter("xpgraph_scrub_damaged_vertices_total", "Vertices found with corrupt or unreadable chains.", float64(sc.Damaged))
		counter("xpgraph_scrub_repaired_vertices_total", "Damaged vertices rebuilt onto fresh blocks.", float64(sc.Repaired))
		counter("xpgraph_scrub_unrecoverable_vertices_total", "Damaged vertices no rebuild source covered.", float64(sc.Unrecoverable))
		counter("xpgraph_scrub_log_bad_records_total", "Edge-log window records failing CRC or unreadable.", float64(sc.LogBadRecords))
		h := s.Health()
		g := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Kind: obs.KindGauge, Value: v})
		}
		g("xpgraph_health_state", "Media-health state machine: 0=ok, 1=degraded, 2=readonly.", float64(h.State))
		g("xpgraph_damaged_vertices", "Vertices with detected damage awaiting repair.", float64(h.DamagedVertices))
		g("xpgraph_unrecoverable_vertices", "Vertices quarantined as unrecoverable.", float64(h.UnrecoverableVertices))
		g("xpgraph_quarantined_spans", "Adjacency block spans quarantined off the free lists.", float64(h.QuarantinedSpans))
		g("xpgraph_quarantined_bytes", "PMEM bytes held in quarantine.", float64(h.QuarantinedBytes))
		g("xpgraph_media_ue_lines", "XPLines currently marked uncorrectable in the fault model.", float64(h.UELines))
		g("xpgraph_dead_numa_nodes", "Failed NUMA nodes (whole-device failures).", float64(len(h.DeadNodes)))
	}))
}
