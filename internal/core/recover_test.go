package core

import (
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pmem"
	"repro/internal/xpsim"
)

func TestRecoveryAllNUMAModes(t *testing.T) {
	edges := dedupEdges(gen.RMAT(9, 4000, 91))
	for name, mode := range map[string]NUMAMode{"none": NUMANone, "outin": NUMAOutIn, "subgraph": NUMASubgraph} {
		t.Run(name, func(t *testing.T) {
			m, h := testMachine()
			opts := Options{Name: "rm-" + name, NumVertices: 512,
				LogCapacity: 1 << 11, ArchiveThreshold: 1 << 7, ArchiveThreads: 4, NUMA: mode}
			s, err := New(m, h, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Ingest(edges); err != nil {
				t.Fatal(err)
			}
			s = nil
			rs, _, err := Recover(m, h, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstReference(t, rs, buildReference(edges), 512)
		})
	}
}

func TestRecoveryWithDeletions(t *testing.T) {
	// Deletion tombstones in the replay window must survive recovery
	// with the same multiset semantics.
	m, h := testMachine()
	opts := Options{Name: "rdel", NumVertices: 64,
		LogCapacity: 1 << 10, ArchiveThreshold: 16, ArchiveThreads: 2}
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	edges := []graph.Edge{
		{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 1, Dst: 4},
		graph.Del(1, 3),
		{Src: 2, Dst: 1}, {Src: 3, Dst: 1},
		graph.Del(3, 1),
	}
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	s = nil
	rs, _, err := Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := xpsim.NewCtx(0)
	if got := rs.NbrsOut(ctx, 1, nil); !sameMultiset(got, []uint32{2, 4}) {
		t.Fatalf("out(1) after recovery = %v, want {2,4}", got)
	}
	if got := rs.NbrsIn(ctx, 1, nil); !sameMultiset(got, []uint32{2}) {
		t.Fatalf("in(1) after recovery = %v, want {2}", got)
	}
}

func TestRecoverEmptyStore(t *testing.T) {
	m, h := testMachine()
	opts := Options{Name: "rempty", NumVertices: 8}
	if _, err := New(m, h, nil, opts); err != nil {
		t.Fatal(err)
	}
	rs, rep, err := Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 || rep.BlocksScanned != 0 {
		t.Fatalf("empty recovery report: %+v", rep)
	}
	ctx := xpsim.NewCtx(0)
	if got := rs.NbrsOut(ctx, 1, nil); len(got) != 0 {
		t.Fatalf("empty store has neighbors: %v", got)
	}
}

func TestRecoverMissingRegions(t *testing.T) {
	m, h := testMachine()
	if _, _, err := Recover(m, h, nil, Options{Name: "never-created"}); err == nil {
		t.Fatal("recovering a store that never existed should fail")
	}
}

func TestRecoverRejectsVolatile(t *testing.T) {
	m, _ := testMachine()
	if _, _, err := Recover(m, nil, nil, Options{Name: "x", Medium: MediumDRAM}); err == nil {
		t.Fatal("volatile media must not be recoverable")
	}
}

func TestRecoveryRepeatedCrashes(t *testing.T) {
	// Crash, recover, ingest more, crash again, recover again.
	m, h := testMachine()
	opts := Options{Name: "r2", NumVertices: 256,
		LogCapacity: 1 << 10, ArchiveThreshold: 1 << 6, ArchiveThreads: 2}
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	part1 := dedupEdges(gen.RMAT(8, 1000, 92))
	if _, err := s.Ingest(part1); err != nil {
		t.Fatal(err)
	}
	s = nil
	r1, _, err := Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	part2 := []graph.Edge{{Src: 250, Dst: 251}, {Src: 251, Dst: 252}}
	if _, err := r1.Ingest(part2); err != nil {
		t.Fatal(err)
	}
	r1 = nil
	r2, _, err := Recover(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, r2, buildReference(append(part1, part2...)), 256)
}

func TestCrossProcessRecovery(t *testing.T) {
	// Full durability cycle: ingest, serialize the simulated PMEM to a
	// file ("power off"), load it in a fresh machine ("power on"), and
	// recover the store from the image alone.
	edges := dedupEdges(gen.RMAT(9, 4000, 81))
	opts := Options{Name: "xproc", NumVertices: 512,
		LogCapacity: 1 << 11, ArchiveThreshold: 1 << 7, ArchiveThreads: 4}

	m, h := testMachine()
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.xpg")
	if err := pmem.SaveFile(path, h); err != nil {
		t.Fatal(err)
	}

	// "New process": nothing survives but the file.
	m2, h2, err := pmem.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, rep, err := Recover(m2, h2, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksScanned == 0 {
		t.Fatal("recovery scanned nothing")
	}
	checkAgainstReference(t, rs, buildReference(edges), 512)
	if _, err := rs.Verify(xpsim.NewCtx(0)); err != nil {
		t.Fatalf("verify after cross-process recovery: %v", err)
	}
}

func TestRecoverRejectsBattery(t *testing.T) {
	m, h := testMachine()
	if _, _, err := Recover(m, h, nil, Options{Name: "bat", Battery: true}); err == nil {
		t.Fatal("battery-backed stores must not be crash-recovered")
	}
}

func TestRecoverRejectsSSDOverflow(t *testing.T) {
	m, h := testMachine()
	if _, _, err := Recover(m, h, nil, Options{Name: "ssd", SSDOverflow: 1 << 20}); err == nil {
		t.Fatal("SSD-tiered stores must not be crash-recovered")
	}
}

func TestRecoverRejectsRelaxedDurability(t *testing.T) {
	m, h := testMachine()
	if _, _, err := Recover(m, h, nil, Options{Name: "rlx", RelaxedDurability: true}); err == nil {
		t.Fatal("relaxed-durability stores must not be crash-recovered")
	}
}

func TestRecoverRejectsWrongLogCapacity(t *testing.T) {
	// Same store name, wrong geometry: the persisted log capacity is
	// authoritative and a mismatched Options must be rejected, not
	// silently reinterpreted.
	m, h := testMachine()
	opts := Options{Name: "geom", NumVertices: 64, LogCapacity: 1 << 10, ArchiveThreshold: 16, ArchiveThreads: 2}
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.LogCapacity = 1 << 11
	if _, _, err := Recover(m, h, nil, bad); err == nil {
		t.Fatal("wrong log capacity must fail recovery")
	}
	if rs, _, err := Recover(m, h, nil, opts); err != nil {
		t.Fatalf("correct geometry must still recover: %v", err)
	} else if got := rs.NbrsOut(xpsim.NewCtx(0), 1, nil); !sameMultiset(got, []uint32{2}) {
		t.Fatalf("out(1) = %v, want {2}", got)
	}
}

func TestRecoverRejectsWrongNUMAMode(t *testing.T) {
	// A store created with one NUMA mode has differently-named adjacency
	// regions than another mode expects; recovery must report the missing
	// region instead of recovering a partial graph.
	m, h := testMachine()
	opts := Options{Name: "numa-geom", NumVertices: 64, LogCapacity: 1 << 10,
		ArchiveThreshold: 16, ArchiveThreads: 2, NUMA: NUMASubgraph}
	s, err := New(m, h, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.NUMA = NUMANone
	if _, _, err := Recover(m, h, nil, bad); err == nil {
		t.Fatal("wrong NUMA mode must fail recovery")
	}
}
